// Quickstart: load (or generate) a graph, run one ResAcc SSRWR query, and
// print the ten most relevant nodes.
//
// Usage:
//   quickstart [edge_list_path [source_id]]
//
// Without arguments a synthetic social graph is generated, so the example
// always runs out of the box.

#include <cstdio>
#include <cstdlib>

#include "resacc/core/resacc_solver.h"
#include "resacc/graph/generators.h"
#include "resacc/graph/graph_io.h"
#include "resacc/util/table.h"
#include "resacc/util/top_k.h"

int main(int argc, char** argv) {
  using namespace resacc;

  // 1. Obtain a graph.
  Graph graph;
  if (argc > 1) {
    StatusOr<Graph> loaded = LoadEdgeList(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
  } else {
    std::printf("no edge list given; generating a 10k-node power-law graph\n");
    graph = ChungLuPowerLaw(/*num_nodes=*/10000, /*num_edges=*/80000,
                            /*exponent=*/2.2, /*seed=*/42);
  }
  std::printf("graph: %u nodes, %llu edges\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));

  // 2. Configure the query. ForGraphSize applies the paper's defaults
  //    (alpha = 0.2, epsilon = 0.5, delta = p_f = 1/n).
  const RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());

  NodeId source = 0;
  if (argc > 2) source = static_cast<NodeId>(std::strtoul(argv[2], nullptr, 10));
  while (source < graph.num_nodes() && graph.OutDegree(source) == 0) ++source;

  // 3. Run the query.
  ResAccSolver solver(graph, config, ResAccOptions{});
  const std::vector<Score> scores = solver.Query(source);

  // 4. Report.
  const ResAccQueryStats& stats = solver.last_stats();
  std::printf("\nSSRWR from node %u finished in %s "
              "(h-HopFWD %s, OMFWD %s, remedy %s, %llu walks)\n\n",
              source, FmtSeconds(stats.total_seconds).c_str(),
              FmtSeconds(stats.hhop_seconds).c_str(),
              FmtSeconds(stats.omfwd_seconds).c_str(),
              FmtSeconds(stats.remedy_seconds).c_str(),
              static_cast<unsigned long long>(stats.remedy.walks));

  TextTable table({"rank", "node", "rwr score"});
  int rank = 1;
  for (const auto& [node, score] : TopKPairs(scores, 10)) {
    table.AddRow({std::to_string(rank++), std::to_string(node), Fmt(score)});
  }
  table.Print(stdout);
  return 0;
}

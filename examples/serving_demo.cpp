// serving_demo — embedding the QueryService in an application.
//
// Loads (generates) a graph, starts an in-process serving layer, warms the
// result cache with the expected hot sources, then issues a mix of top-k
// queries from several client threads — the "friend suggestion service"
// shape: a few celebrity accounts dominate the query stream.

#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "resacc/graph/generators.h"
#include "resacc/serve/query_service.h"
#include "resacc/serve/workload.h"

using namespace resacc;

int main() {
  // A scale-free social-network stand-in.
  const Graph graph = ChungLuPowerLaw(20000, 160000, 2.2, /*seed=*/42);
  RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());
  config.seed = 7;

  ServeOptions options;
  options.num_workers = 4;
  options.queue_capacity = 256;
  options.cache_bytes = static_cast<std::size_t>(32) << 20;
  options.coalesce = true;
  options.default_deadline_seconds = 2.0;  // shed queries stuck > 2s

  QueryService service(graph, config, options);
  std::printf("service up: %zu workers, %u nodes\n", service.num_workers(),
              graph.num_nodes());

  // Warm the cache for the known-hot sources before opening the doors:
  // the first real user of a hot source then gets a sub-millisecond hit.
  const std::vector<NodeId> hot = graph.NodesByOutDegreeDesc();
  std::vector<std::future<QueryResponse>> warmup;
  for (std::size_t i = 0; i < 8 && i < hot.size(); ++i) {
    warmup.push_back(service.Submit(QueryRequest{hot[i], 0, 0.0}));
  }
  for (auto& f : warmup) f.get();
  std::printf("cache warmed with %zu hot sources\n", warmup.size());

  // Mixed traffic: 4 clients, Zipfian over the whole graph, top-10.
  ZipfianSources zipf(graph.num_nodes(), 0.99, /*seed=*/3);
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&service, &zipf, c] {
      Rng rng(100 + static_cast<std::uint64_t>(c));
      for (int i = 0; i < 32; ++i) {
        QueryRequest request;
        request.source = zipf.Next(rng);
        request.top_k = 10;
        const QueryResponse response = service.Query(request);
        if (!response.status.ok()) {
          std::fprintf(stderr, "client %d: %s\n", c,
                       response.status.ToString().c_str());
        } else if (i == 0) {
          std::printf(
              "client %d first answer: source=%u best=%u (%.3e) %s\n", c,
              request.source, response.top[0].first,
              response.top[0].second,
              response.cache_hit ? "[cache hit]" : "[computed]");
        }
      }
    });
  }
  for (auto& client : clients) client.join();

  std::printf("\n%s\n", service.Snapshot().ToString().c_str());
  return 0;
}

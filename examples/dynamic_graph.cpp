// Index-free means update-free: on a changing graph, ResAcc answers the
// next query against the new topology immediately, while index-oriented
// methods must rebuild. This example applies a stream of edge updates and
// compares "time to next correct answer" for ResAcc vs FORA+ (Appendix I's
// point, as a runnable program).

#include <cstdio>
#include <utility>
#include <vector>

#include "resacc/algo/fora_plus.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/graph/generators.h"
#include "resacc/graph/graph_builder.h"
#include "resacc/util/rng.h"
#include "resacc/util/table.h"
#include "resacc/util/timer.h"

namespace {

// Rebuilds the graph with `removed` node's edges dropped — simulating a
// user deleting their account.
resacc::Graph RemoveNode(const resacc::Graph& g, resacc::NodeId removed) {
  resacc::GraphBuilder builder(g.num_nodes());
  for (resacc::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u == removed) continue;
    for (resacc::NodeId v : g.OutNeighbors(u)) {
      if (v != removed) builder.AddEdge(u, v);
    }
  }
  return std::move(builder).Build();
}

}  // namespace

int main() {
  using namespace resacc;

  Graph graph = ChungLuPowerLaw(15000, 120000, 2.2, 17);
  RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;

  std::printf("initial graph: %u nodes, %llu edges\n\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));

  Rng rng(5);
  TextTable table({"update#", "deleted node", "ResAcc next-answer",
                   "FORA+ rebuild", "FORA+ next-answer"});

  const NodeId query_source = 42;
  for (int update = 1; update <= 5; ++update) {
    const NodeId removed = static_cast<NodeId>(
        rng.NextBounded32(graph.num_nodes()));
    graph = RemoveNode(graph, removed);

    // ResAcc: no index; the next query is immediately correct.
    Timer resacc_timer;
    ResAccSolver resacc(graph, config, ResAccOptions{});
    resacc.Query(query_source);
    const double resacc_seconds = resacc_timer.ElapsedSeconds();

    // FORA+: must rebuild the walk index first.
    Timer rebuild_timer;
    ForaPlus fora_plus(graph, config);
    const Status status = fora_plus.BuildIndex();
    const double rebuild_seconds = rebuild_timer.ElapsedSeconds();
    double fora_total = rebuild_seconds;
    if (status.ok()) {
      Timer query_timer;
      fora_plus.Query(query_source);
      fora_total += query_timer.ElapsedSeconds();
    }

    table.AddRow({std::to_string(update), std::to_string(removed),
                  FmtSeconds(resacc_seconds), FmtSeconds(rebuild_seconds),
                  FmtSeconds(fora_total)});
  }
  table.Print(stdout);
  std::printf("\nResAcc's zero update cost is what makes it suitable for\n"
              "dynamic graphs (paper, Section VII-B / Appendix I).\n");
  return 0;
}

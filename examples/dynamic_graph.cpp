// Index-free means update-free: on a changing graph, ResAcc answers the
// next query against the new topology immediately, while index-oriented
// methods must rebuild. This example applies a stream of edge updates
// through the live-graph layer (graph/dynamic/mutable_graph_view.h) and
// compares "time to next correct answer" for ResAcc vs FORA+ (Appendix
// I's point, as a runnable program). Each update deletes one node's
// edges — a user deleting their account — as a single ApplyBatch: one
// epoch, one row rewrite per touched neighbor, no CSR rebuild.

#include <cstdio>
#include <utility>
#include <vector>

#include "resacc/algo/fora_plus.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/graph/dynamic/mutable_graph_view.h"
#include "resacc/graph/generators.h"
#include "resacc/util/rng.h"
#include "resacc/util/table.h"
#include "resacc/util/timer.h"

int main() {
  using namespace resacc;

  MutableGraphView view(ChungLuPowerLaw(15000, 120000, 2.2, 17));
  Graph snapshot = view.Snapshot();
  RwrConfig config = RwrConfig::ForGraphSize(snapshot.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;

  std::printf("initial graph: %u nodes, %llu edges\n\n",
              snapshot.num_nodes(),
              static_cast<unsigned long long>(snapshot.num_edges()));

  Rng rng(5);
  TextTable table({"update#", "deleted node", "mutation apply",
                   "ResAcc next-answer", "FORA+ rebuild",
                   "FORA+ next-answer"});

  const NodeId query_source = 42;
  for (int update = 1; update <= 5; ++update) {
    const NodeId removed = static_cast<NodeId>(
        rng.NextBounded32(snapshot.num_nodes()));

    // Drop every edge incident to `removed`, as one epoch.
    std::vector<EdgeMutation> batch;
    for (const NodeId v : snapshot.OutNeighbors(removed)) {
      batch.push_back(EdgeMutation{removed, v, /*remove=*/true});
    }
    for (const NodeId u : snapshot.InNeighbors(removed)) {
      if (u != removed) {
        batch.push_back(EdgeMutation{u, removed, /*remove=*/true});
      }
    }
    Timer mutate_timer;
    (void)view.ApplyBatch(batch);
    snapshot = view.Snapshot();
    const double mutate_seconds = mutate_timer.ElapsedSeconds();

    // ResAcc: no index; the next query over the live view is immediately
    // correct (bit-identical to a fresh build of the mutated edge set).
    Timer resacc_timer;
    ResAccSolver resacc(snapshot, config, ResAccOptions{});
    resacc.Query(query_source);
    const double resacc_seconds = resacc_timer.ElapsedSeconds();

    // FORA+: must rebuild the walk index first.
    Timer rebuild_timer;
    ForaPlus fora_plus(snapshot, config);
    const Status status = fora_plus.BuildIndex();
    const double rebuild_seconds = rebuild_timer.ElapsedSeconds();
    double fora_total = rebuild_seconds;
    if (status.ok()) {
      Timer query_timer;
      fora_plus.Query(query_source);
      fora_total += query_timer.ElapsedSeconds();
    }

    table.AddRow({std::to_string(update), std::to_string(removed),
                  FmtSeconds(mutate_seconds), FmtSeconds(resacc_seconds),
                  FmtSeconds(rebuild_seconds), FmtSeconds(fora_total)});
  }
  const MutableGraphStats stats = view.stats();
  table.Print(stdout);
  std::printf("\n%llu edges removed across %llu epochs; overlay holds %zu "
              "dirty rows\n(`Compact()` would fold them into a fresh base).\n"
              "ResAcc's zero update cost is what makes it suitable for\n"
              "dynamic graphs (paper, Section VII-B / Appendix I).\n",
              static_cast<unsigned long long>(stats.edges_removed),
              static_cast<unsigned long long>(stats.epoch),
              stats.overlay_rows);
  return 0;
}

// Friend suggestion on a social network — the paper's motivating
// application: recommend to a user the non-neighbours with the highest
// RWR relevance.
//
// Builds a synthetic social graph with planted friend circles, picks a few
// users, and prints their top suggestions, annotating mutual friends. With
// strong community structure, suggestions should come from the user's own
// circle and share many mutual friends.

#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_set>

#include "resacc/core/resacc_solver.h"
#include "resacc/graph/generators.h"
#include "resacc/util/table.h"
#include "resacc/util/top_k.h"

namespace {

// Mutual-friend count between u and v (common neighbours).
std::size_t MutualFriends(const resacc::Graph& g, resacc::NodeId u,
                          resacc::NodeId v) {
  const auto nu = g.OutNeighbors(u);
  const auto nv = g.OutNeighbors(v);
  std::size_t count = 0;
  auto it = nv.begin();
  for (resacc::NodeId w : nu) {
    while (it != nv.end() && *it < w) ++it;
    if (it != nv.end() && *it == w) ++count;
  }
  return count;
}

}  // namespace

int main() {
  using namespace resacc;

  // A 20k-user network of ~200-person circles with sparse cross links.
  const Graph graph = PlantedPartition(/*num_nodes=*/20000, /*num_blocks=*/100,
                                       /*deg_in=*/25.0, /*deg_out=*/3.0,
                                       /*seed=*/7);
  std::printf("social graph: %u users, %llu friendship edges\n\n",
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges() / 2));

  const RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());
  ResAccSolver solver(graph, config, ResAccOptions{});

  for (NodeId user : {NodeId{150}, NodeId{9001}}) {
    const std::vector<Score> scores = solver.Query(user);

    // Exclude the user and existing friends from suggestions.
    std::unordered_set<NodeId> known(graph.OutNeighbors(user).begin(),
                                     graph.OutNeighbors(user).end());
    known.insert(user);

    std::printf("top friend suggestions for user %u (circle %u), "
                "query took %s:\n",
                user, user / 200,
                FmtSeconds(solver.last_stats().total_seconds).c_str());
    TextTable table({"suggested user", "circle", "rwr score", "mutual friends"});
    std::size_t shown = 0;
    for (const auto& [candidate, score] :
         TopKPairs(scores, known.size() + 25)) {
      if (known.count(candidate) != 0) continue;
      table.AddRow({std::to_string(candidate),
                    std::to_string(candidate / 200), Fmt(score),
                    std::to_string(MutualFriends(graph, user, candidate))});
      if (++shown == 8) break;
    }
    table.Print(stdout);
    std::printf("\n");
  }
  return 0;
}

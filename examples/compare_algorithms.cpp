// Side-by-side comparison of every SSRWR solver in the library on one
// graph: query time, walk/push effort, and accuracy against ground truth.
// A miniature of the paper's Table III + Figure 4 pipeline.

#include <cstdio>
#include <memory>
#include <vector>

#include "resacc/algo/fora.h"
#include "resacc/algo/fora_plus.h"
#include "resacc/algo/forward_search_solver.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/algo/particle_filter.h"
#include "resacc/algo/power.h"
#include "resacc/algo/topppr.h"
#include "resacc/algo/tpa.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/eval/metrics.h"
#include "resacc/eval/sources.h"
#include "resacc/graph/generators.h"
#include "resacc/util/table.h"
#include "resacc/util/timer.h"

int main() {
  using namespace resacc;

  const Graph graph = ChungLuPowerLaw(/*num_nodes=*/20000,
                                      /*num_edges=*/200000,
                                      /*exponent=*/2.15, /*seed=*/3);
  RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;  // exact for indexed solvers too
  std::printf("graph: %u nodes, %llu edges; alpha=%.2f eps=%.2f "
              "delta=pf=1/n\n\n",
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()),
              config.alpha, config.epsilon);

  GroundTruthCache truth(graph, config);
  const std::vector<NodeId> sources = PickUniformSources(graph, 5, 99);

  std::vector<std::unique_ptr<SsrwrAlgorithm>> algorithms;
  algorithms.push_back(std::make_unique<PowerIteration>(graph, config, 1e-9));
  algorithms.push_back(
      std::make_unique<ForwardSearchSolver>(graph, config, 1e-9));
  algorithms.push_back(std::make_unique<MonteCarlo>(graph, config));
  algorithms.push_back(std::make_unique<Fora>(graph, config));
  algorithms.push_back(std::make_unique<TopPpr>(graph, config));
  algorithms.push_back(std::make_unique<ParticleFilter>(graph, config));
  algorithms.push_back(std::make_unique<ResAccSolver>(graph, config,
                                                      ResAccOptions{}));

  auto fora_plus = std::make_unique<ForaPlus>(graph, config);
  auto tpa = std::make_unique<Tpa>(graph, config);
  {
    Timer t;
    if (fora_plus->BuildIndex().ok()) {
      std::printf("FORA+ index: %s built in %s\n",
                  FmtBytes(static_cast<double>(fora_plus->IndexBytes())).c_str(),
                  FmtSeconds(t.ElapsedSeconds()).c_str());
      algorithms.push_back(std::move(fora_plus));
    }
    t.Restart();
    if (tpa->BuildIndex().ok()) {
      std::printf("TPA index:   %s built in %s\n\n",
                  FmtBytes(static_cast<double>(tpa->IndexBytes())).c_str(),
                  FmtSeconds(t.ElapsedSeconds()).c_str());
      algorithms.push_back(std::move(tpa));
    }
  }

  TextTable table({"algorithm", "avg query", "mean abs err", "ndcg@100",
                   "max rel err (pi>delta)"});
  for (const auto& algo : algorithms) {
    double seconds = 0.0;
    double abs_err = 0.0;
    double ndcg = 0.0;
    double rel_err = 0.0;
    for (NodeId s : sources) {
      Timer t;
      const std::vector<Score> estimate = algo->Query(s);
      seconds += t.ElapsedSeconds();
      const std::vector<Score>& exact = truth.Get(s);
      abs_err += MeanAbsError(estimate, exact);
      ndcg += NdcgAtK(estimate, exact, 100);
      rel_err = std::max(
          rel_err, MaxRelativeErrorAboveDelta(estimate, exact, config.delta));
    }
    const double inv = 1.0 / static_cast<double>(sources.size());
    table.AddRow({algo->name(), FmtSeconds(seconds * inv),
                  Fmt(abs_err * inv), Fmt(ndcg * inv), Fmt(rel_err)});
  }
  table.Print(stdout);
  return 0;
}

// Overlapping community detection with NISE + ResAcc (the paper's
// application experiment, Section VII-H): seed by spread hubs, expand each
// seed with an SSRWR query, cut by conductance, and report quality.

#include <cstdio>

#include "resacc/algo/fora.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/community_metrics.h"
#include "resacc/graph/generators.h"
#include "resacc/nise/nise.h"
#include "resacc/util/table.h"

int main() {
  using namespace resacc;

  // A network with 25 planted communities of 400 nodes each.
  const Graph graph = PlantedPartition(/*num_nodes=*/10000, /*num_blocks=*/25,
                                       /*deg_in=*/16.0, /*deg_out=*/2.0,
                                       /*seed=*/11);
  std::printf("graph: %u nodes, %llu edges, 25 planted communities\n\n",
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));

  RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;

  NiseOptions options;
  options.num_communities = 25;

  TextTable table({"solver", "ssrwr time", "avg ncut", "avg conductance",
                   "communities", "avg size"});
  auto report = [&](const char* label, SsrwrAlgorithm& solver,
                    bool use_ssrwr) {
    NiseOptions run_options = options;
    run_options.use_ssrwr_ordering = use_ssrwr;
    const NiseResult result = Nise(graph, run_options).Detect(solver);
    std::size_t total_size = 0;
    for (const auto& community : result.communities) {
      total_size += community.size();
    }
    table.AddRow(
        {label, FmtSeconds(result.ssrwr_seconds),
         Fmt(AverageNormalizedCut(graph, result.communities)),
         Fmt(AverageConductance(graph, result.communities)),
         std::to_string(result.communities.size()),
         std::to_string(result.communities.empty()
                            ? 0
                            : total_size / result.communities.size())});
  };

  ResAccSolver resacc(graph, config, ResAccOptions{});
  Fora fora(graph, config, ForaOptions{});
  report("NISE + ResAcc", resacc, /*use_ssrwr=*/true);
  report("NISE + FORA", fora, /*use_ssrwr=*/true);
  report("NISE w/o SSRWR", resacc, /*use_ssrwr=*/false);

  // Neighbourhood-inflated expansion (the published NISE's variant):
  // each seed expands from {seed} + N(seed) via a seed-set query.
  {
    const NiseResult inflated = Nise(graph, options).DetectInflated(config);
    std::size_t total_size = 0;
    for (const auto& community : inflated.communities) {
      total_size += community.size();
    }
    table.AddRow(
        {"NISE inflated", FmtSeconds(inflated.ssrwr_seconds),
         Fmt(AverageNormalizedCut(graph, inflated.communities)),
         Fmt(AverageConductance(graph, inflated.communities)),
         std::to_string(inflated.communities.size()),
         std::to_string(inflated.communities.empty()
                            ? 0
                            : total_size / inflated.communities.size())});
  }
  table.Print(stdout);

  std::printf("\nlower cut/conductance = better communities; the SSRWR-driven\n"
              "orderings should clearly beat the BFS-distance ordering.\n");
  return 0;
}

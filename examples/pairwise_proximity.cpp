// Pairwise proximity with BiPPR: when only pi(s, t) for specific pairs is
// needed (e.g. "how related are these two papers?"), BiPPR's backward push
// + forward walks beat computing the full single-source vector. This
// example compares BiPPR's pair estimates against a full ResAcc query and
// the exact values.

#include <cstdio>

#include "resacc/algo/bippr.h"
#include "resacc/algo/power.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/graph/generators.h"
#include "resacc/util/rng.h"
#include "resacc/util/table.h"
#include "resacc/util/timer.h"

int main() {
  using namespace resacc;

  const Graph graph = ChungLuPowerLaw(/*num_nodes=*/30000,
                                      /*num_edges=*/240000,
                                      /*exponent=*/2.2, /*seed=*/21,
                                      /*symmetrize=*/true);
  RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;  // required by backward push
  std::printf("graph: %u nodes, %llu edges\n\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));

  const NodeId source = 77;
  PowerIteration power(graph, config, 1e-12);
  const std::vector<Score> exact = power.Query(source);

  // Targets: a close neighbour, a mid-ranked node, and a far node.
  Rng rng(5);
  std::vector<NodeId> targets = {graph.OutNeighbors(source)[0]};
  targets.push_back(rng.NextBounded32(graph.num_nodes()));
  targets.push_back(rng.NextBounded32(graph.num_nodes()));

  BiPpr bippr(graph, config);
  Timer full_timer;
  ResAccSolver resacc(graph, config, ResAccOptions{});
  const std::vector<Score> full = resacc.Query(source);
  const double full_seconds = full_timer.ElapsedSeconds();

  TextTable table({"pair", "exact", "BiPPR estimate", "BiPPR time",
                   "ResAcc (full vector)"});
  for (NodeId target : targets) {
    Timer pair_timer;
    const Score estimate = bippr.EstimatePair(source, target);
    const double pair_seconds = pair_timer.ElapsedSeconds();
    char pair[48];
    std::snprintf(pair, sizeof(pair), "pi(%u, %u)", source, target);
    table.AddRow({pair, Fmt(exact[target]), Fmt(estimate),
                  FmtSeconds(pair_seconds), Fmt(full[target])});
  }
  table.Print(stdout);
  std::printf(
      "\nfull ResAcc vector took %s; each BiPPR pair is independent and\n"
      "needs no index — use it when you only care about a handful of "
      "pairs.\n",
      FmtSeconds(full_seconds).c_str());
  return 0;
}

#include <vector>

#include <gtest/gtest.h>

#include "resacc/algo/inverse.h"
#include "resacc/core/seed_set_query.h"
#include "resacc/eval/community_metrics.h"
#include "resacc/graph/generators.h"
#include "resacc/nise/nise.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

RwrConfig Config(NodeId n) {
  RwrConfig config = RwrConfig::ForGraphSize(n);
  config.dangling = DanglingPolicy::kAbsorb;
  config.p_f = 1e-7;
  config.seed = 31;
  return config;
}

// By linearity of the chain, a uniform-start query equals the average of
// the per-seed RWR vectors.
TEST(SeedSetQueryTest, EqualsAverageOfPerSeedQueries) {
  const Graph g = ErdosRenyi(200, 1200, 6);
  const RwrConfig config = Config(g.num_nodes());
  const std::vector<NodeId> seeds = {3, 50, 120};

  ExactInverse oracle(g, config);
  std::vector<Score> expected(g.num_nodes(), 0.0);
  for (NodeId seed : seeds) {
    const std::vector<Score> from_seed = oracle.Query(seed);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      expected[v] += from_seed[v] / static_cast<Score>(seeds.size());
    }
  }

  Rng rng(9);
  const SeedSetQueryResult result =
      SeedSetSsrwr(g, config, seeds, /*r_max=*/0.0, rng);

  // The guarantee: relative error <= eps above delta, and a distribution.
  Score total = 0.0;
  for (Score s : result.scores) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (expected[v] > config.delta) {
      EXPECT_LE(std::abs(result.scores[v] - expected[v]) / expected[v],
                config.epsilon)
          << "node " << v;
    }
  }
}

TEST(SeedSetQueryTest, SingleSeedMatchesSingleSource) {
  const Graph g = testing::Figure3Graph();
  const RwrConfig config = Config(3);
  ExactInverse oracle(g, config);
  const std::vector<Score> exact = oracle.Query(0);

  Rng rng(4);
  const SeedSetQueryResult result =
      SeedSetSsrwr(g, config, {0}, /*r_max=*/1e-8, rng);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_NEAR(result.scores[v], exact[v], 1e-4) << "node " << v;
  }
}

TEST(SeedSetQueryTest, DuplicateSeedsWeightTheStart) {
  // {0, 0, 1}: node 0 carries 2/3 of the start mass.
  const Graph g = testing::CycleGraph(8);
  const RwrConfig config = Config(8);
  ExactInverse oracle(g, config);
  const std::vector<Score> from0 = oracle.Query(0);
  const std::vector<Score> from1 = oracle.Query(1);

  Rng rng(5);
  const SeedSetQueryResult result =
      SeedSetSsrwr(g, config, {0, 0, 1}, /*r_max=*/1e-9, rng);
  for (NodeId v = 0; v < 8; ++v) {
    const Score expected = (2.0 * from0[v] + from1[v]) / 3.0;
    EXPECT_NEAR(result.scores[v], expected, 1e-4) << "node " << v;
  }
}

TEST(NiseInflatedTest, ProducesGoodCommunities) {
  const Graph g = PlantedPartition(800, 8, 14.0, 1.0, 12);
  const RwrConfig config = Config(g.num_nodes());
  NiseOptions options;
  options.num_communities = 8;
  options.propagate_uncovered = false;

  const NiseResult result = Nise(g, options).DetectInflated(config);
  ASSERT_GE(result.communities.size(), 6u);
  EXPECT_LT(AverageConductance(g, result.communities), 0.25);
  EXPECT_GT(result.ssrwr_seconds, 0.0);
}

}  // namespace
}  // namespace resacc

// Regression + round-trip coverage for the storage layer: the edge-list
// parser rewrite (long lines, CRLF, header comment, parallel chunking),
// the RESACC01 binary cross-checks, and the RESACC02 mmap snapshot
// (graph_snapshot.h) including corruption detection and the borrowed-span
// ownership model.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "resacc/core/resacc_solver.h"
#include "resacc/graph/datasets.h"
#include "resacc/graph/generators.h"
#include "resacc/graph/graph_builder.h"
#include "resacc/graph/graph_io.h"
#include "resacc/graph/graph_snapshot.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fwrite(contents.data(), 1, contents.size(), file),
            contents.size());
  std::fclose(file);
}

void FlipByteAt(const std::string& path, long offset) {
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(file, nullptr);
  if (offset < 0) {
    std::fseek(file, 0, SEEK_END);
    offset = std::ftell(file) + offset;
  }
  std::fseek(file, offset, SEEK_SET);
  const int byte = std::fgetc(file);
  ASSERT_NE(byte, EOF);
  std::fseek(file, offset, SEEK_SET);
  std::fputc(byte ^ 0xff, file);
  std::fclose(file);
}

void ExpectSameCsr(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  const auto expect_eq = [](auto lhs, auto rhs, const char* what) {
    ASSERT_EQ(lhs.size(), rhs.size()) << what;
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      ASSERT_EQ(lhs[i], rhs[i]) << what << "[" << i << "]";
    }
  };
  expect_eq(a.raw_out_offsets(), b.raw_out_offsets(), "out_offsets");
  expect_eq(a.raw_out_targets(), b.raw_out_targets(), "out_targets");
  expect_eq(a.raw_in_offsets(), b.raw_in_offsets(), "in_offsets");
  expect_eq(a.raw_in_sources(), b.raw_in_sources(), "in_sources");
}

// --- Edge-list parser ----------------------------------------------------

// The old fgets parser silently split any line longer than 255 bytes,
// turning one edge into garbage tokens. The buffer-based parser has no
// line-length limit.
TEST(EdgeListTest, AcceptsLinesLongerThan256Bytes) {
  const std::string path = TempPath("long_lines.txt");
  std::string contents = "# " + std::string(500, 'x') + "\n";
  contents += "0 1\n";
  contents += std::string(300, ' ') + "1" + std::string(200, ' ') + "2\n";
  contents += "2\t0   trailing tokens are ignored\n";
  WriteFile(path, contents);

  const StatusOr<Graph> graph = LoadEdgeList(path);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph.value().num_nodes(), 3u);
  EXPECT_EQ(graph.value().num_edges(), 3u);
  EXPECT_TRUE(graph.value().HasEdge(0, 1));
  EXPECT_TRUE(graph.value().HasEdge(1, 2));
  EXPECT_TRUE(graph.value().HasEdge(2, 0));
  std::remove(path.c_str());
}

TEST(EdgeListTest, AcceptsCrlfLineEndings) {
  const std::string path = TempPath("crlf.txt");
  WriteFile(path, "# exported on Windows\r\n0 1\r\n\r\n1 2\r\n2 0\r\n");

  const StatusOr<Graph> graph = LoadEdgeList(path);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph.value().num_nodes(), 3u);
  EXPECT_EQ(graph.value().num_edges(), 3u);
  std::remove(path.c_str());
}

// Node 5 (and 4) have no edges; without the header comment the loader
// would shrink the graph to max_id + 1 = 4 nodes.
TEST(EdgeListTest, RoundTripPreservesTrailingIsolatedNodes) {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  const Graph graph = std::move(builder).Build();
  ASSERT_EQ(graph.num_nodes(), 6u);

  const std::string path = TempPath("isolated_tail.txt");
  ASSERT_TRUE(SaveEdgeList(graph, path).ok());
  const StatusOr<Graph> loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_nodes(), 6u);
  ExpectSameCsr(graph, loaded.value());
  std::remove(path.c_str());
}

TEST(EdgeListTest, ParallelParseMatchesSequential) {
  const Graph graph = ChungLuPowerLaw(3000, 30000, 2.2, 7);
  const std::string path = TempPath("parallel_parse.txt");
  ASSERT_TRUE(SaveEdgeList(graph, path).ok());

  const StatusOr<Graph> seq = LoadEdgeList(path, false, 1);
  const StatusOr<Graph> par = LoadEdgeList(path, false, 4);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  ExpectSameCsr(graph, seq.value());
  ExpectSameCsr(seq.value(), par.value());
  std::remove(path.c_str());
}

// A bad line in a late chunk must still be reported with its global line
// number (chunk-local counts are summed across the preceding chunks).
TEST(EdgeListTest, ParallelParseReportsGlobalLineNumbers) {
  const std::string path = TempPath("bad_line.txt");
  std::string contents;
  for (int i = 0; i < 30; ++i) contents += "1 2\n";
  contents += "completely bogus\n";  // line 31
  WriteFile(path, contents);

  const StatusOr<Graph> graph = LoadEdgeList(path, false, 4);
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(graph.status().ToString().find("line 31"), std::string::npos)
      << graph.status().ToString();
  std::remove(path.c_str());
}

TEST(EdgeListTest, RejectsNodeIdAtInvalidNode) {
  const std::string path = TempPath("huge_id.txt");
  WriteFile(path, "0 1\n4294967295 1\n");
  const StatusOr<Graph> graph = LoadEdgeList(path);
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(graph.status().ToString().find("line 2"), std::string::npos)
      << graph.status().ToString();
  std::remove(path.c_str());
}

// --- RESACC01 binary -----------------------------------------------------

// A file truncated exactly at a node-record boundary passes every
// per-node read; the header edge count is the only cross-check. The old
// loader skipped it and returned a silently smaller graph.
TEST(BinaryGraphTest, RejectsEdgeCountMismatch) {
  const std::string path = TempPath("edge_count_mismatch.bin");
  std::string bytes;
  const auto append = [&bytes](const void* data, std::size_t n) {
    bytes.append(static_cast<const char*>(data), n);
  };
  const std::uint64_t magic = 0x52455341'43433031ULL;  // "RESACC01"
  const std::uint64_t num_nodes = 2;
  const std::uint64_t num_edges = 3;  // adjacency below only carries 1
  append(&magic, sizeof(magic));
  append(&num_nodes, sizeof(num_nodes));
  append(&num_edges, sizeof(num_edges));
  const std::uint32_t degree0 = 1;
  const std::uint32_t target = 1;
  const std::uint32_t degree1 = 0;
  append(&degree0, sizeof(degree0));
  append(&target, sizeof(target));
  append(&degree1, sizeof(degree1));
  WriteFile(path, bytes);

  const StatusOr<Graph> graph = LoadBinary(path);
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(graph.status().ToString().find("edge count mismatch"),
            std::string::npos)
      << graph.status().ToString();
  std::remove(path.c_str());
}

// --- RESACC02 snapshot ---------------------------------------------------

TEST(SnapshotTest, MmapRoundTripIsBitIdentical) {
  const Graph graph = ChungLuPowerLaw(2000, 20000, 2.2, 5);
  const std::string path = TempPath("roundtrip.rsg");
  ASSERT_TRUE(SaveSnapshot(graph, path).ok());

  SnapshotLoadInfo info;
  const StatusOr<Graph> loaded = LoadSnapshot(path, {}, &info);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(info.mmap_used);
  EXPECT_GT(info.file_bytes, 128u);
  EXPECT_TRUE(loaded.value().borrows_storage());
  ExpectSameCsr(graph, loaded.value());
  std::remove(path.c_str());
}

TEST(SnapshotTest, BufferedLoadMatchesMmap) {
  const Graph graph = ChungLuPowerLaw(800, 6400, 2.2, 6);
  const std::string path = TempPath("buffered.rsg");
  ASSERT_TRUE(SaveSnapshot(graph, path).ok());

  const StatusOr<Graph> mapped = LoadSnapshot(path);
  SnapshotLoadOptions buffered_options;
  buffered_options.prefer_mmap = false;
  buffered_options.verify_section_checksum = true;
  const StatusOr<Graph> buffered = LoadSnapshot(path, buffered_options);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  EXPECT_FALSE(buffered.value().borrows_storage());
  ExpectSameCsr(mapped.value(), buffered.value());

  // Same bytes in, same scores out: a solved query over the mapped graph
  // is bit-identical to one over the buffered copy.
  RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = 11;
  ResAccSolver mapped_solver(mapped.value(), config, ResAccOptions{});
  ResAccSolver buffered_solver(buffered.value(), config, ResAccOptions{});
  const std::vector<Score> a = mapped_solver.Query(3);
  const std::vector<Score> b = buffered_solver.Query(3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t v = 0; v < a.size(); ++v) {
    ASSERT_DOUBLE_EQ(a[v], b[v]) << "node " << v;
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, DetectsHeaderCorruption) {
  const std::string path = TempPath("bad_header.rsg");
  ASSERT_TRUE(SaveSnapshot(testing::Figure1Graph(), path).ok());
  FlipByteAt(path, 32);  // inside the section table
  const StatusOr<Graph> loaded = LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, DetectsSectionCorruptionWhenVerifying) {
  const std::string path = TempPath("bad_section.rsg");
  ASSERT_TRUE(SaveSnapshot(testing::Figure1Graph(), path).ok());
  FlipByteAt(path, -1);  // last byte of the in_sources section

  // The default O(header) load cannot see a payload flip...
  ASSERT_TRUE(LoadSnapshot(path).ok());
  // ...but the optional O(m) section checksum does.
  SnapshotLoadOptions options;
  options.verify_section_checksum = true;
  const StatusOr<Graph> verified = LoadSnapshot(path, options);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(verified.status().ToString().find("section checksum"),
            std::string::npos)
      << verified.status().ToString();
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsBadMagic) {
  const std::string path = TempPath("bad_magic.rsg");
  WriteFile(path, std::string(256, 'x'));
  const StatusOr<Graph> loaded = LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsTruncatedFile) {
  const std::string path = TempPath("truncated.rsg");
  ASSERT_TRUE(SaveSnapshot(testing::Figure1Graph(), path).ok());
  std::FILE* file = std::fopen(path.c_str(), "rb");
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fclose(file);
  ASSERT_EQ(truncate(path.c_str(), size - 8), 0);
  ASSERT_FALSE(LoadSnapshot(path).ok());
  // Shorter than the header entirely.
  ASSERT_EQ(truncate(path.c_str(), 64), 0);
  ASSERT_FALSE(LoadSnapshot(path).ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, EmptyAndEdgelessGraphsRoundTrip) {
  GraphBuilder builder(5);
  const Graph edgeless = std::move(builder).Build();
  const std::string path = TempPath("edgeless.rsg");
  ASSERT_TRUE(SaveSnapshot(edgeless, path).ok());
  const StatusOr<Graph> loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_nodes(), 5u);
  EXPECT_EQ(loaded.value().num_edges(), 0u);
  ExpectSameCsr(edgeless, loaded.value());
  std::remove(path.c_str());
}

// Copying a mapped graph must materialize owned arrays: the copy's spans
// may not point into storage the original keeps alive.
TEST(SnapshotTest, CopyOfMappedGraphOwnsItsStorage) {
  const Graph graph = testing::Figure1Graph();
  const std::string path = TempPath("copy.rsg");
  ASSERT_TRUE(SaveSnapshot(graph, path).ok());
  StatusOr<Graph> loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const Graph copy = loaded.value();
  EXPECT_FALSE(copy.borrows_storage());
  ExpectSameCsr(graph, copy);

  // Moves keep the storage handle with the moved-to graph.
  const Graph moved = std::move(loaded).value();
  EXPECT_TRUE(moved.borrows_storage());
  ExpectSameCsr(graph, moved);
  std::remove(path.c_str());
}

// --- Dataset snapshot cache ----------------------------------------------

TEST(DatasetCacheTest, SecondLoadHitsSnapshotCache) {
  const StatusOr<DatasetSpec> spec = FindDataset("facebook-sim");
  ASSERT_TRUE(spec.ok());
  const std::string cache_dir = ::testing::TempDir();

  const StatusOr<Graph> first =
      LoadOrBuildDataset(spec.value(), 0.05, 77, cache_dir);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  const std::string cached = cache_dir + "/facebook-sim-s0.05-77.rsg";
  std::FILE* file = std::fopen(cached.c_str(), "rb");
  ASSERT_NE(file, nullptr) << "cache file not written: " << cached;
  std::fclose(file);

  const StatusOr<Graph> second =
      LoadOrBuildDataset(spec.value(), 0.05, 77, cache_dir);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second.value().borrows_storage());  // came from the snapshot
  ExpectSameCsr(first.value(), second.value());
  std::remove(cached.c_str());
}

}  // namespace
}  // namespace resacc

// Tests of the batched multi-source solver: per-lane bit-identity against
// the serial solvers across batch sizes, epsilon accounting per lane, lane
// detach on cancellation, and the serve-layer batch formation path.

#include "resacc/core/batch_solver.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "resacc/algo/fora.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/graph/generators.h"
#include "resacc/graph/graph.h"
#include "resacc/util/cancellation.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

// Exact (bitwise) equality, element by element: the batch solver's
// contract is that completed lanes replay the serial solver's FP operation
// sequence, so no tolerance is allowed.
void ExpectBitIdentical(const std::vector<Score>& serial,
                        const std::vector<Score>& batched,
                        const char* label) {
  ASSERT_EQ(serial.size(), batched.size()) << label;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], batched[i])
        << label << ": node " << i << " differs";
  }
}

std::vector<NodeId> PickSources(const Graph& graph, std::size_t count) {
  std::vector<NodeId> sources;
  const NodeId stride = std::max<NodeId>(1, graph.num_nodes() / 17);
  NodeId v = 1;
  while (sources.size() < count) {
    sources.push_back(v % graph.num_nodes());
    v += stride;
  }
  return sources;
}

RwrConfig TestConfig(NodeId num_nodes, DanglingPolicy dangling) {
  // delta well above 1/n keeps the remedy walk counts small enough for a
  // multi-size sweep while still exercising every phase.
  RwrConfig config;
  config.delta = 1e-3;
  config.p_f = 1e-3;
  config.dangling = dangling;
  config.seed = 0x7357 + num_nodes;
  return config;
}

class BatchBitIdentityTest
    : public ::testing::TestWithParam<DanglingPolicy> {};

INSTANTIATE_TEST_SUITE_P(Dangling, BatchBitIdentityTest,
                         ::testing::Values(DanglingPolicy::kAbsorb,
                                           DanglingPolicy::kBackToSource));

TEST_P(BatchBitIdentityTest, ResAccMatchesSerialAcrossBatchSizes) {
  const Graph graph = ChungLuPowerLaw(2000, 12000, 2.5, /*seed=*/42);
  const RwrConfig config = TestConfig(graph.num_nodes(), GetParam());
  ResAccOptions options;
  options.walk_scale = 0.2;

  ResAccSolver serial(graph, config, options);
  BatchSolver batch(graph, config, options);
  const std::vector<NodeId> sources = PickSources(graph, 16);

  std::vector<ControlledQueryResult> expected;
  for (NodeId s : sources) {
    expected.push_back(serial.QueryControlled(s, QueryControl{}));
  }
  for (std::size_t batch_size : {std::size_t{1}, std::size_t{4},
                                 std::size_t{16}}) {
    const auto got = batch.QueryAllChunked(sources, batch_size);
    ASSERT_EQ(got.size(), sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      SCOPED_TRACE(::testing::Message()
                   << "batch_size=" << batch_size << " source="
                   << sources[i]);
      EXPECT_TRUE(got[i].status.ok());
      EXPECT_FALSE(got[i].degraded);
      EXPECT_DOUBLE_EQ(got[i].achieved_epsilon, config.epsilon);
      ExpectBitIdentical(expected[i].scores, got[i].scores, "resacc");
    }
  }
}

TEST_P(BatchBitIdentityTest, ForaMatchesSerialAcrossBatchSizes) {
  const Graph graph = ChungLuPowerLaw(1500, 9000, 2.3, /*seed=*/7);
  const RwrConfig config = TestConfig(graph.num_nodes(), GetParam());
  ForaOptions options;
  options.walk_scale = 0.2;

  Fora serial(graph, config, options);
  BatchSolver batch(graph, config, options);
  const std::vector<NodeId> sources = PickSources(graph, 16);

  std::vector<ControlledQueryResult> expected;
  for (NodeId s : sources) {
    expected.push_back(serial.QueryControlled(s, QueryControl{}));
  }
  for (std::size_t batch_size : {std::size_t{1}, std::size_t{4},
                                 std::size_t{16}}) {
    const auto got = batch.QueryAllChunked(sources, batch_size);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      SCOPED_TRACE(::testing::Message()
                   << "batch_size=" << batch_size << " source="
                   << sources[i]);
      EXPECT_TRUE(got[i].status.ok());
      ExpectBitIdentical(expected[i].scores, got[i].scores, "fora");
    }
  }
}

TEST_P(BatchBitIdentityTest, MonteCarloMatchesSerialAcrossBatchSizes) {
  const Graph graph = ChungLuPowerLaw(800, 4000, 2.5, /*seed=*/11);
  const RwrConfig config = TestConfig(graph.num_nodes(), GetParam());
  MonteCarloBatchOptions options;
  options.walk_scale = 0.1;

  MonteCarlo serial(graph, config, options.walk_scale);
  BatchSolver batch(graph, config, options);
  const std::vector<NodeId> sources = PickSources(graph, 16);

  std::vector<ControlledQueryResult> expected;
  for (NodeId s : sources) {
    expected.push_back(serial.QueryControlled(s, QueryControl{}));
  }
  for (std::size_t batch_size : {std::size_t{1}, std::size_t{4},
                                 std::size_t{16}}) {
    const auto got = batch.QueryAllChunked(sources, batch_size);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      SCOPED_TRACE(::testing::Message()
                   << "batch_size=" << batch_size << " source="
                   << sources[i]);
      ExpectBitIdentical(expected[i].scores, got[i].scores, "mc");
    }
  }
}

TEST(BatchSolverTest, AblationsMatchSerial) {
  // The ablation pipelines exercise the No-SG whole-graph accumulating
  // phase and the no-loop seed path — both have their own seed/round
  // structure in the batch solver.
  const Graph graph = ChungLuPowerLaw(1000, 5000, 2.5, /*seed=*/5);
  const RwrConfig config =
      TestConfig(graph.num_nodes(), DanglingPolicy::kBackToSource);
  const std::vector<NodeId> sources = PickSources(graph, 8);

  for (int ablation = 0; ablation < 3; ++ablation) {
    ResAccOptions options;
    options.walk_scale = 0.2;
    if (ablation == 0) options.use_loop_accumulation = false;
    if (ablation == 1) options.use_hop_subgraph = false;
    if (ablation == 2) options.use_omfwd = false;
    ResAccSolver serial(graph, config, options);
    BatchSolver batch(graph, config, options);
    std::vector<BatchLane> lanes;
    for (NodeId s : sources) lanes.push_back(BatchLane{s, nullptr});
    const auto got = batch.QueryBatch(lanes);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      SCOPED_TRACE(::testing::Message()
                   << "ablation=" << ablation << " source=" << sources[i]);
      const auto expected =
          serial.QueryControlled(sources[i], QueryControl{});
      ExpectBitIdentical(expected.scores, got[i].scores, "ablation");
    }
  }
}

TEST(BatchSolverTest, HubSourcesTakeAdaptiveHopPath) {
  // A star hub's 1-hop set is the whole graph, so the adaptive cap kicks
  // in (effective_hops shrinks) — the batch must replicate the per-lane
  // shrink decision.
  const Graph graph = testing::StarGraph(600);
  const RwrConfig config =
      TestConfig(graph.num_nodes(), DanglingPolicy::kAbsorb);
  ResAccOptions options;
  options.walk_scale = 0.2;
  ResAccSolver serial(graph, config, options);
  BatchSolver batch(graph, config, options);

  const std::vector<NodeId> sources = {0, 1, 300, 599};  // hub + leaves
  std::vector<BatchLane> lanes;
  for (NodeId s : sources) lanes.push_back(BatchLane{s, nullptr});
  const auto got = batch.QueryBatch(lanes);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const auto expected = serial.QueryControlled(sources[i], QueryControl{});
    ExpectBitIdentical(expected.scores, got[i].scores, "hub");
  }
}

TEST(BatchSolverTest, DuplicateSourcesProduceIdenticalLanes) {
  const Graph graph = ChungLuPowerLaw(500, 2500, 2.5, /*seed=*/3);
  const RwrConfig config =
      TestConfig(graph.num_nodes(), DanglingPolicy::kAbsorb);
  ResAccOptions options;
  options.walk_scale = 0.2;
  BatchSolver batch(graph, config, options);
  const std::vector<BatchLane> lanes = {
      {7, nullptr}, {7, nullptr}, {123, nullptr}, {7, nullptr}};
  const auto got = batch.QueryBatch(lanes);
  ExpectBitIdentical(got[0].scores, got[1].scores, "dup");
  ExpectBitIdentical(got[0].scores, got[3].scores, "dup");
}

TEST(BatchSolverTest, RepeatedBatchesAreReproducible) {
  // Workspace reuse across QueryBatch calls must not leak state, and the
  // rng must not advance (same contract as the serial solvers).
  const Graph graph = ChungLuPowerLaw(800, 4000, 2.5, /*seed=*/21);
  const RwrConfig config =
      TestConfig(graph.num_nodes(), DanglingPolicy::kBackToSource);
  ResAccOptions options;
  options.walk_scale = 0.2;
  BatchSolver batch(graph, config, options);
  const std::vector<BatchLane> lanes = {
      {1, nullptr}, {50, nullptr}, {200, nullptr}};
  const auto first = batch.QueryBatch(lanes);
  // A different-size batch in between reshapes the lane arrays.
  const std::vector<BatchLane> other = {{3, nullptr}};
  (void)batch.QueryBatch(other);
  const auto second = batch.QueryBatch(lanes);
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    ExpectBitIdentical(first[i].scores, second[i].scores, "repeat");
  }
}

TEST(BatchSolverTest, PreCancelledLaneDetachesWithoutPerturbingOthers) {
  const Graph graph = ChungLuPowerLaw(1000, 6000, 2.5, /*seed=*/13);
  const RwrConfig config =
      TestConfig(graph.num_nodes(), DanglingPolicy::kBackToSource);
  ResAccOptions options;
  options.walk_scale = 0.2;
  ResAccSolver serial(graph, config, options);
  BatchSolver batch(graph, config, options);

  CancellationToken cancelled;
  cancelled.Cancel();
  const std::vector<BatchLane> lanes = {
      {5, nullptr}, {77, &cancelled}, {300, nullptr}, {450, nullptr}};
  const auto got = batch.QueryBatch(lanes);

  // The detached lane reports the serial dead-on-arrival contract: zero
  // scores, the whole unit of mass uncorrected, honest epsilon tag.
  EXPECT_FALSE(got[1].status.ok());
  EXPECT_TRUE(got[1].degraded);
  EXPECT_DOUBLE_EQ(got[1].uncorrected_mass, 1.0);
  EXPECT_DOUBLE_EQ(got[1].achieved_epsilon,
                   config.epsilon + 1.0 / config.delta);
  for (Score s : got[1].scores) EXPECT_EQ(s, 0.0);

  // Survivors are bit-identical to serial — the detach must not perturb
  // their operation sequences.
  for (std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
    const auto expected =
        serial.QueryControlled(lanes[i].source, QueryControl{});
    EXPECT_TRUE(got[i].status.ok());
    ExpectBitIdentical(expected.scores, got[i].scores, "survivor");
  }
}

TEST(BatchSolverTest, MidBatchDeadlineDetachesOnlyThatLane) {
  // A deadline that fires mid-run detaches its lane at an unpredictable
  // point; whatever the timing, the survivors must stay bit-identical and
  // the detached lane must carry an honest epsilon tag.
  const Graph graph = ChungLuPowerLaw(20000, 120000, 2.2, /*seed=*/29);
  RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());
  config.dangling = DanglingPolicy::kBackToSource;
  config.seed = 99;
  ResAccOptions options;
  options.walk_scale = 0.05;
  ResAccSolver serial(graph, config, options);
  BatchSolver batch(graph, config, options);

  CancellationToken deadline = CancellationToken::WithDeadline(1e-4);
  const std::vector<BatchLane> lanes = {
      {11, nullptr}, {2222, &deadline}, {3333, nullptr}, {4444, nullptr}};
  const auto got = batch.QueryBatch(lanes);

  if (!got[1].status.ok()) {
    EXPECT_TRUE(got[1].degraded);
    EXPECT_GT(got[1].achieved_epsilon, config.epsilon);
    EXPECT_GT(got[1].uncorrected_mass, 0.0);
  }
  for (std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
    const auto expected =
        serial.QueryControlled(lanes[i].source, QueryControl{});
    EXPECT_TRUE(got[i].status.ok());
    ExpectBitIdentical(expected.scores, got[i].scores, "deadline-survivor");
  }
}

TEST(BatchSolverTest, MidBatchExplicitCancelFromAnotherThread) {
  const Graph graph = ChungLuPowerLaw(20000, 120000, 2.2, /*seed=*/31);
  RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = 17;
  ResAccOptions options;
  options.walk_scale = 0.05;
  ResAccSolver serial(graph, config, options);
  BatchSolver batch(graph, config, options);

  CancellationToken token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    token.Cancel();
  });
  const std::vector<BatchLane> lanes = {
      {100, nullptr}, {5000, &token}, {9000, nullptr}};
  const auto got = batch.QueryBatch(lanes);
  canceller.join();

  // Lane 1 was cancelled at some point (possibly after completion); lanes
  // 0 and 2 must be exact regardless.
  for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    const auto expected =
        serial.QueryControlled(lanes[i].source, QueryControl{});
    EXPECT_TRUE(got[i].status.ok());
    ExpectBitIdentical(expected.scores, got[i].scores, "cancel-survivor");
  }
}

TEST(BatchSolverTest, SmallFixtureGraphsCoverDanglingAndLoops) {
  // Figure-1 (sink node) and Figure-3 (3-cycle, pure looping) graphs:
  // tiny shapes where dangling handling and loop accumulation dominate.
  for (const Graph& graph :
       {testing::Figure1Graph(), testing::Figure3Graph()}) {
    for (DanglingPolicy dangling :
         {DanglingPolicy::kAbsorb, DanglingPolicy::kBackToSource}) {
      RwrConfig config;
      config.delta = 0.05;
      config.p_f = 0.05;
      config.dangling = dangling;
      ResAccOptions options;
      ResAccSolver serial(graph, config, options);
      BatchSolver batch(graph, config, options);
      std::vector<BatchLane> lanes;
      for (NodeId s = 0; s < graph.num_nodes(); ++s) {
        lanes.push_back(BatchLane{s, nullptr});
      }
      const auto got = batch.QueryBatch(lanes);
      for (NodeId s = 0; s < graph.num_nodes(); ++s) {
        const auto expected = serial.QueryControlled(s, QueryControl{});
        ExpectBitIdentical(expected.scores, got[s].scores, "fixture");
      }
    }
  }
}

TEST(BatchSolverTest, StatsReportAmortization) {
  const Graph graph = ChungLuPowerLaw(2000, 12000, 2.5, /*seed=*/42);
  const RwrConfig config =
      TestConfig(graph.num_nodes(), DanglingPolicy::kAbsorb);
  ResAccOptions options;
  options.walk_scale = 0.2;
  BatchSolver batch(graph, config, options);
  const std::vector<NodeId> sources = PickSources(graph, 16);
  std::vector<BatchLane> lanes;
  for (NodeId s : sources) lanes.push_back(BatchLane{s, nullptr});
  (void)batch.QueryBatch(lanes);
  const BatchQueryStats& stats = batch.last_stats();
  EXPECT_GT(stats.push_operations, 0u);
  EXPECT_GT(stats.shared_node_pops, 0u);
  // The shared sweep must serve more than one lane push per node pop on
  // average — otherwise batching amortizes nothing.
  EXPECT_GT(static_cast<double>(stats.push_operations),
            static_cast<double>(stats.shared_node_pops));
}

}  // namespace
}  // namespace resacc

// End-to-end workload harness tests against an in-process QueryService:
// a four-tenant mixed-class spec on a churning graph must only ever
// produce the outcomes documented in docs/QUERY_MODES.md, and the
// weighted fair queue must turn ServeOptions::tenant_weights into a
// proportional throughput split under saturation. Runs under TSAN in CI
// (driver threads + workers + mutation thread race by design).

#include <algorithm>
#include <future>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "resacc/core/rwr_config.h"
#include "resacc/graph/dynamic/mutable_graph_view.h"
#include "resacc/graph/generators.h"
#include "resacc/serve/query_service.h"
#include "resacc/workload/driver.h"
#include "resacc/workload/op_stream.h"
#include "resacc/workload/workload_spec.h"

namespace resacc {
namespace {

// A four-tenant spec with every op class. Durations here are irrelevant —
// the tests replay a fixed number of ops from the stream, they do not run
// wall-clock loops (except the fairness test, which uses the driver).
const char kMixedSpec[] = R"(
seed 1234
source zipfian 0.99
top_k 5
deadline_ms 15

tenant gold
  weight 4
  concurrency 4
  class full 0.5
  class topk 0.5
end

tenant bronze
  weight 1
  concurrency 4
  class full 0.5
  class topk 0.5
end

tenant paced
  weight 2
  rate 10
  class full 0.4
  class topk 0.2
  class deadline 0.2
  class degraded 0.2
end

tenant churn
  weight 1
  concurrency 2
  class full 0.3
  class topk 0.2
  class deadline 0.1
  class degraded 0.1
  class mutation 0.3
end
)";

bool IsDocumentedQueryOutcome(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

// Replays a prefix of the merged op stream against a real service while
// mutations churn the graph through MutableGraphView + UpdateGraph, and
// checks every single response against the documented outcome contract.
TEST(WorkloadTest, MixedClassStreamYieldsOnlyDocumentedOutcomes) {
  const StatusOr<WorkloadSpec> parsed = WorkloadSpec::Parse(kMixedSpec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const WorkloadSpec& spec = parsed.value();

  const Graph graph = ChungLuPowerLaw(/*num_nodes=*/2000, /*num_edges=*/10000,
                                      /*exponent=*/2.1, /*seed=*/7);
  const RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());
  ServeOptions options;
  options.num_workers = 2;
  options.queue_capacity = 8;  // small enough to see kResourceExhausted
  for (const TenantSpec& tenant : spec.tenants) {
    options.tenant_weights.emplace_back(tenant.name, tenant.weight);
  }

  MutableGraphView view(graph.ShallowView());
  QueryService service(view.Snapshot(), config, options);

  MergedOpStream stream(spec, graph.num_nodes());
  struct Pending {
    WorkloadOp op;
    std::future<QueryResponse> future;
  };
  std::vector<Pending> window;
  std::size_t checked = 0;
  std::size_t mutations = 0;
  std::array<std::size_t, kNumOpClasses> seen{};

  auto settle = [&](Pending pending) {
    const QueryResponse response = pending.future.get();
    ++checked;
    ASSERT_TRUE(IsDocumentedQueryOutcome(response.status))
        << "undocumented outcome: " << response.status.ToString();
    if (!response.status.ok()) return;
    if (pending.op.cls == OpClass::kTopK) {
      // Top-k responses must carry the k entries asked for, or be an
      // explicitly degraded/certified-shorter prefix (topk->k tells how
      // far the certificate reaches).
      ASSERT_NE(response.topk, nullptr);
      EXPECT_FALSE(response.top.empty());
      if (!response.degraded) {
        EXPECT_TRUE(response.top.size() >= pending.op.top_k ||
                    response.topk->k >= pending.op.top_k)
            << "top-k response carries " << response.top.size()
            << " entries, certified k=" << response.topk->k
            << ", asked for " << pending.op.top_k;
      }
    } else if (pending.op.cls != OpClass::kMutation) {
      if (response.degraded) {
        EXPECT_TRUE(pending.op.allow_degraded);
        EXPECT_GT(response.achieved_epsilon, 0.0);
      } else {
        ASSERT_NE(response.scores, nullptr);
        EXPECT_EQ(response.scores->size(), graph.num_nodes());
      }
    }
  };

  for (int i = 0; i < 600; ++i) {
    const WorkloadOp op = stream.Next();
    seen[static_cast<std::size_t>(op.cls)]++;
    if (op.cls == OpClass::kMutation) {
      GraphDelta delta;
      const Status status =
          op.remove ? view.RemoveEdge(op.source, op.target, &delta)
                    : view.AddEdge(op.source, op.target, &delta);
      if (status.ok()) {
        service.UpdateGraph(view.Snapshot(), delta);
        ++mutations;
      } else {
        // The ledger guarantees adds/removes are consistent with the ops
        // the stream itself issued, but edges may collide with the base
        // graph: those surface as the documented no-op statuses.
        ASSERT_TRUE(status.code() == StatusCode::kAlreadyExists ||
                    status.code() == StatusCode::kNotFound)
            << status.ToString();
      }
      continue;
    }
    QueryRequest request;
    request.source = op.source;
    request.top_k = op.cls == OpClass::kTopK ? op.top_k : 0;
    request.deadline_seconds = op.deadline_seconds;
    request.allow_degraded = op.allow_degraded;
    request.tenant = spec.tenants[op.tenant].name;
    window.push_back(Pending{op, service.Submit(request)});
    if (window.size() >= 8) {
      settle(std::move(window.front()));
      window.erase(window.begin());
    }
  }
  for (Pending& pending : window) settle(std::move(pending));

  EXPECT_GE(checked, 400u);
  EXPECT_GT(mutations, 0u) << "the churn tenant never mutated the graph";
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    EXPECT_GT(seen[c], 0u) << "class " << OpClassName(static_cast<OpClass>(c))
                           << " never generated";
  }
}

// Under saturation (1 worker, no cache, no coalescing, two closed-loop
// tenants), the weight-4 tenant must complete at least 2x the computed
// queries of the weight-1 tenant. The scheduler's exact share is 4x; the
// 2x floor leaves room for edge effects at the run boundaries.
TEST(WorkloadTest, WeightFourTenantGetsTwiceWeightOneThroughput) {
  const StatusOr<WorkloadSpec> parsed = WorkloadSpec::Parse(R"(
duration_seconds 2.5
seed 77
source uniform

tenant gold
  weight 4
  concurrency 6
  class full 1
end

tenant bronze
  weight 1
  concurrency 6
  class full 1
end
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const WorkloadSpec& spec = parsed.value();

  const Graph graph = ChungLuPowerLaw(/*num_nodes=*/5000, /*num_edges=*/25000,
                                      /*exponent=*/2.1, /*seed=*/7);
  const RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());
  ServeOptions options;
  options.num_workers = 1;   // a single contended resource
  options.cache_bytes = 0;   // every OK response is a real computation
  options.coalesce = false;  // no piggybacking across tenants
  options.queue_capacity = 64;
  for (const TenantSpec& tenant : spec.tenants) {
    options.tenant_weights.emplace_back(tenant.name, tenant.weight);
  }
  QueryService service(graph, config, options);

  WorkloadDriver driver(spec, &service, /*view=*/nullptr);
  const WorkloadReport report = driver.Run();

  ASSERT_EQ(report.tenant_names.size(), 2u);
  const std::uint64_t gold = report.computed_ok[0];
  const std::uint64_t bronze = report.computed_ok[1];
  ASSERT_GT(bronze, 0u) << "weight-1 tenant starved outright";
  EXPECT_GE(static_cast<double>(gold), 2.0 * static_cast<double>(bronze))
      << "gold=" << gold << " bronze=" << bronze
      << " — weighted fair queueing is not delivering proportional service";
  EXPECT_EQ(report.TotalErrors(), 0u);
}

// The driver's report carries latency percentiles for every class that
// sent traffic, and CheckBounds enforces documented bound files against
// it — including catching violations.
TEST(WorkloadTest, ReportFeedsBoundsChecker) {
  const StatusOr<WorkloadSpec> parsed = WorkloadSpec::Parse(R"(
duration_seconds 1
seed 5
source uniform

tenant solo
  weight 1
  concurrency 2
  class full 0.5
  class topk 0.5
end
)");
  ASSERT_TRUE(parsed.ok());

  const Graph graph = ChungLuPowerLaw(1000, 5000, 2.1, 7);
  const RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());
  ServeOptions options;
  options.num_workers = 1;
  QueryService service(graph, config, options);
  WorkloadDriver driver(parsed.value(), &service, nullptr);
  const WorkloadReport report = driver.Run();
  ASSERT_GT(report.TotalOk(), 0u);

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"classes\""), std::string::npos);
  EXPECT_NE(json.find("\"p999_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"solo\""), std::string::npos);

  EXPECT_TRUE(CheckBounds(report, "max_error_rate 0.5\nmin_ok_total 1\n")
                  .ok());
  const Status violated =
      CheckBounds(report, "min_ok_total 1000000000\n", "strict.bounds");
  ASSERT_FALSE(violated.ok());
  EXPECT_EQ(violated.code(), StatusCode::kFailedPrecondition);
  // Malformed bound files are InvalidArgument with a line number, and
  // unknown directives never pass silently.
  const Status malformed = CheckBounds(report, "max_p99_ms warp 1\n");
  ASSERT_FALSE(malformed.ok());
  EXPECT_EQ(malformed.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace resacc

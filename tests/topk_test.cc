// Tests of the top-k query mode (PR 8): separation certificates audited
// against power-iteration ground truth, parity between QueryTopK and the
// full-vector solve for the bracket-only solvers, tie handling at rank k,
// degenerate k, batched-lane bit-identity with the serial solver, the
// result cache's k-superset reuse rules, and mixed-shape serving under
// concurrent clients (the TSAN target for shape-aware coalescing).

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "resacc/algo/fora.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/core/batch_solver.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/core/topk.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/graph/generators.h"
#include "resacc/graph/graph.h"
#include "resacc/serve/query_service.h"
#include "resacc/serve/result_cache.h"
#include "resacc/util/top_k.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

RwrConfig TestConfig(const Graph& graph) {
  RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = 7;
  return config;
}

// Bitwise equality of two top-k results: the batched lanes' contract is a
// replay of the serial solver's FP operation sequence, so no tolerance.
void ExpectTopKBitIdentical(const TopKResult& serial, const TopKResult& batched,
                            const char* label) {
  EXPECT_EQ(serial.status.ok(), batched.status.ok()) << label;
  EXPECT_EQ(serial.k, batched.k) << label;
  EXPECT_EQ(serial.certified, batched.certified) << label;
  EXPECT_EQ(serial.degraded, batched.degraded) << label;
  EXPECT_EQ(serial.outsider_upper, batched.outsider_upper) << label;
  EXPECT_EQ(serial.bound_gap, batched.bound_gap) << label;
  EXPECT_EQ(serial.achieved_epsilon, batched.achieved_epsilon) << label;
  EXPECT_EQ(serial.uncorrected_mass, batched.uncorrected_mass) << label;
  ASSERT_EQ(serial.entries.size(), batched.entries.size()) << label;
  for (std::size_t i = 0; i < serial.entries.size(); ++i) {
    EXPECT_EQ(serial.entries[i].node, batched.entries[i].node)
        << label << ": rank " << i;
    EXPECT_EQ(serial.entries[i].estimate, batched.entries[i].estimate)
        << label << ": rank " << i;
    EXPECT_EQ(serial.entries[i].lower, batched.entries[i].lower)
        << label << ": rank " << i;
    EXPECT_EQ(serial.entries[i].upper, batched.entries[i].upper)
        << label << ": rank " << i;
  }
}

// --- Certificates against ground truth ------------------------------------

TEST(TopKSolveTest, CertificateBracketsGroundTruth) {
  const Graph graph = ChungLuPowerLaw(500, 3000, 2.2, /*seed=*/10);
  const RwrConfig config = TestConfig(graph);
  ResAccOptions options;
  // Generous refinement budgets: on a graph this small the solver must be
  // able to push until rank k separates instead of giving up and walking.
  options.topk.min_r_max_factor = 1e-12;
  options.topk.max_refine_edge_factor = 1e6;
  options.topk.profit_slack = 1e9;
  ResAccSolver solver(graph, config, options);
  GroundTruthCache truth(graph, config);

  constexpr std::size_t kK = 10;
  constexpr double kSlop = 1e-12;
  for (const NodeId source : {NodeId{1}, NodeId{42}, NodeId{137},
                              NodeId{256}}) {
    SCOPED_TRACE(::testing::Message() << "source=" << source);
    const TopKResult result = solver.QueryTopK(source, kK);
    ASSERT_TRUE(result.status.ok());
    ASSERT_TRUE(result.certified);
    ASSERT_EQ(result.entries.size(), kK);

    const std::vector<Score>& exact = truth.Get(source);
    std::vector<std::uint8_t> returned(graph.num_nodes(), 0);
    for (const TopKEntry& entry : result.entries) {
      // The deterministic push invariant: lower <= pi(v) <= upper.
      EXPECT_LE(entry.lower - kSlop, exact[entry.node]);
      EXPECT_GE(entry.upper + kSlop, exact[entry.node]);
      // The separation certificate: every returned entry's lower bound
      // dominates the bound on every excluded node.
      EXPECT_GE(entry.lower, result.outsider_upper);
      returned[entry.node] = 1;
    }
    EXPECT_GE(result.bound_gap, 0.0);

    // Every excluded node really sits below the outsider bound, and the
    // returned set is an exact top-k of the ground truth (modulo ties).
    const Score kth_exact = exact[TopKIndices(exact, kK).back()];
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      if (returned[v]) {
        EXPECT_GE(exact[v] + kSlop, kth_exact)
            << "node " << v << " returned but not in the exact top-" << kK;
      } else {
        EXPECT_LE(exact[v], result.outsider_upper + kSlop)
            << "excluded node " << v << " above the outsider bound";
      }
    }
  }
}

// --- Parity with the full-vector solve -------------------------------------

TEST(TopKSolveTest, BracketSolversMatchTheirFullVector) {
  // FORA and Monte-Carlo answer top-k through the SsrwrAlgorithm default:
  // a full controlled solve plus an epsilon bracket. Queries are
  // deterministic per source, so the entries must mirror TopKPairs of the
  // solver's own full vector exactly.
  const Graph graph = ChungLuPowerLaw(400, 2400, 2.5, /*seed=*/13);
  const RwrConfig config = TestConfig(graph);
  Fora fora(graph, config);
  MonteCarlo monte_carlo(graph, config);
  SsrwrAlgorithm* const solvers[] = {&fora, &monte_carlo};

  constexpr std::size_t kK = 10;
  for (SsrwrAlgorithm* solver : solvers) {
    for (const NodeId source : {NodeId{2}, NodeId{77}}) {
      SCOPED_TRACE(::testing::Message()
                   << solver->name() << " source=" << source);
      const std::vector<Score> full = solver->Query(source);
      const auto expected = TopKPairs(full, kK);
      const TopKResult result = solver->QueryTopK(source, kK);
      ASSERT_TRUE(result.status.ok());
      EXPECT_FALSE(result.certified);  // bracket path, never a certificate
      ASSERT_EQ(result.entries.size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(result.entries[i].node, expected[i].first);
        EXPECT_EQ(result.entries[i].estimate, expected[i].second);
        EXPECT_LE(result.entries[i].lower, result.entries[i].estimate);
        EXPECT_GE(result.entries[i].upper, result.entries[i].estimate);
      }
    }
  }
}

// --- Ties at rank k ---------------------------------------------------------

TEST(TopKSolveTest, TieAtRankKStaysDeterministicAndValid) {
  // Star from a leaf source: the 7 non-source leaves are exactly tied by
  // symmetry, and k = 5 cuts through that tied class. No certificate can
  // separate an exact tie, so the solver must fall back — and the result
  // must still be a valid top-k (any tied subset is) and repeatable.
  const Graph graph = testing::StarGraph(8);
  const RwrConfig config = TestConfig(graph);
  ResAccSolver solver(graph, config, ResAccOptions{});
  GroundTruthCache truth(graph, config);

  constexpr NodeId kSource = 3;
  constexpr std::size_t kK = 5;
  const TopKResult result = solver.QueryTopK(kSource, kK);
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(result.certified);
  ASSERT_EQ(result.entries.size(), kK);

  // Descending estimates; exact ties broken by ascending node id.
  for (std::size_t i = 1; i < result.entries.size(); ++i) {
    const TopKEntry& prev = result.entries[i - 1];
    const TopKEntry& cur = result.entries[i];
    EXPECT_GE(prev.estimate, cur.estimate);
    if (prev.estimate == cur.estimate) {
      EXPECT_LT(prev.node, cur.node);
    }
  }

  // Any tied subset is a correct answer: every returned node's exact
  // value reaches the exact k-th value (up to the tie tolerance).
  const std::vector<Score>& exact = truth.Get(kSource);
  const Score kth_exact = exact[TopKIndices(exact, kK).back()];
  for (const TopKEntry& entry : result.entries) {
    EXPECT_GE(exact[entry.node] + 1e-9, kth_exact);
  }

  // Repeatable: the tie-break must not depend on hidden mutable state.
  const TopKResult again = solver.QueryTopK(kSource, kK);
  ExpectTopKBitIdentical(result, again, "repeat query");
}

// --- Degenerate k -----------------------------------------------------------

TEST(TopKSolveTest, DegenerateKValues) {
  const Graph graph = testing::Figure1Graph();
  const RwrConfig config = TestConfig(graph);
  ResAccSolver solver(graph, config, ResAccOptions{});

  // k >= n: everything is returned, there is no outsider to separate
  // from, and the result is trivially certified.
  const TopKResult all = solver.QueryTopK(0, 10);
  ASSERT_TRUE(all.status.ok());
  EXPECT_TRUE(all.certified);
  ASSERT_EQ(all.entries.size(), graph.num_nodes());
  EXPECT_EQ(all.outsider_upper, 0.0);
  std::vector<std::uint8_t> seen(graph.num_nodes(), 0);
  for (const TopKEntry& entry : all.entries) {
    ASSERT_LT(entry.node, graph.num_nodes());
    EXPECT_EQ(seen[entry.node]++, 0u);  // each node exactly once
  }

  // k = 1: agrees with the head of the everything-returned result.
  const TopKResult one = solver.QueryTopK(0, 1);
  ASSERT_TRUE(one.status.ok());
  ASSERT_EQ(one.entries.size(), 1u);
  EXPECT_EQ(one.entries[0].node, all.entries[0].node);

  // k = 0: an empty answer is vacuously certified.
  const TopKResult none = solver.QueryTopK(0, 0);
  ASSERT_TRUE(none.status.ok());
  EXPECT_TRUE(none.certified);
  EXPECT_TRUE(none.entries.empty());
}

// --- Batched lanes ----------------------------------------------------------

TEST(TopKBatchTest, MixedLanesBitIdenticalToSerialAcrossBatchSizes) {
  const Graph graph = ChungLuPowerLaw(2000, 12000, 2.5, /*seed=*/42);
  RwrConfig config;
  config.delta = 1e-3;
  config.p_f = 1e-3;
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = 0x7357;
  ResAccOptions options;
  options.walk_scale = 0.2;

  ResAccSolver serial(graph, config, options);
  BatchSolver batch(graph, config, options);

  std::vector<NodeId> sources;
  for (NodeId v = 1; sources.size() < 16; v += 117) {
    sources.push_back(v % graph.num_nodes());
  }

  // Every odd lane asks for top-10, even lanes stay full-vector: the mix
  // is the shape the serve layer produces, and the full lanes pin down
  // that top-k lanes do not perturb their neighbours.
  std::vector<TopKResult> expected_topk(sources.size());
  std::vector<ControlledQueryResult> expected_full(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (i % 2 == 1) {
      expected_topk[i] = serial.QueryTopK(sources[i], 10);
    } else {
      expected_full[i] = serial.QueryControlled(sources[i], QueryControl{});
    }
  }

  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{4},
                                       std::size_t{16}}) {
    for (std::size_t begin = 0; begin < sources.size(); begin += batch_size) {
      const std::size_t end = std::min(begin + batch_size, sources.size());
      std::vector<BatchLane> lanes;
      for (std::size_t i = begin; i < end; ++i) {
        BatchLane lane;
        lane.source = sources[i];
        lane.top_k = (i % 2 == 1) ? 10 : 0;
        lanes.push_back(lane);
      }
      std::vector<TopKResult> topks;
      const auto got = batch.QueryBatch(lanes, &topks);
      ASSERT_EQ(got.size(), lanes.size());
      ASSERT_EQ(topks.size(), lanes.size());
      for (std::size_t i = begin; i < end; ++i) {
        SCOPED_TRACE(::testing::Message()
                     << "batch_size=" << batch_size << " source="
                     << sources[i]);
        if (i % 2 == 1) {
          ExpectTopKBitIdentical(expected_topk[i], topks[i - begin],
                                 "top-k lane");
          EXPECT_TRUE(got[i - begin].scores.empty());
        } else {
          ASSERT_TRUE(got[i - begin].status.ok());
          EXPECT_EQ(got[i - begin].scores, expected_full[i].scores);
          EXPECT_TRUE(topks[i - begin].entries.empty());
        }
      }
    }
  }
}

TEST(TopKBatchTest, BracketBackendsMatchSerialDefault) {
  const Graph graph = ChungLuPowerLaw(800, 4800, 2.5, /*seed=*/21);
  RwrConfig config;
  config.delta = 1e-3;
  config.p_f = 1e-3;
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = 0xf0a;

  Fora serial_fora(graph, config);
  MonteCarlo serial_mc(graph, config);
  BatchSolver batch_fora(graph, config, ForaOptions{});
  BatchSolver batch_mc(graph, config, MonteCarloBatchOptions{});
  struct Pair {
    SsrwrAlgorithm* serial;
    BatchSolver* batch;
  } pairs[] = {{&serial_fora, &batch_fora}, {&serial_mc, &batch_mc}};

  const std::vector<NodeId> sources = {3, 71, 200, 555};
  for (Pair& pair : pairs) {
    std::vector<BatchLane> lanes;
    for (const NodeId s : sources) {
      BatchLane lane;
      lane.source = s;
      lane.top_k = 10;
      lanes.push_back(lane);
    }
    std::vector<TopKResult> topks;
    pair.batch->QueryBatch(lanes, &topks);
    ASSERT_EQ(topks.size(), sources.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      SCOPED_TRACE(::testing::Message() << pair.serial->name() << " source="
                                        << sources[i]);
      const TopKResult expected = pair.serial->QueryTopK(sources[i], 10);
      ExpectTopKBitIdentical(expected, topks[i], "bracket backend lane");
    }
  }
}

// --- Cache k-superset rules -------------------------------------------------

std::shared_ptr<const TopKResult> SyntheticTopK(std::size_t k, bool certified,
                                                Score bracket_slack) {
  auto result = std::make_shared<TopKResult>();
  result->k = k;
  result->certified = certified;
  result->outsider_upper = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const Score estimate = 1.0 / static_cast<Score>(i + 1);
    result->entries.push_back({static_cast<NodeId>(i), estimate,
                               estimate - bracket_slack,
                               estimate + bracket_slack});
  }
  return result;
}

TEST(TopKCacheTest, KSupersetReuseNeverDowngrades) {
  ResultCache cache(1 << 20, /*num_shards=*/1);
  const CacheKey key{0x123, 7, 0};

  // A certified top-100 with tight brackets answers any k <= 100 whose
  // prefix separates — which tight brackets on 1/(i+1) always do.
  cache.InsertTopK(key, SyntheticTopK(100, /*certified=*/true,
                                      /*bracket_slack=*/0.0));
  const auto hit10 = cache.LookupTopK(key, 10);
  ASSERT_NE(hit10.topk, nullptr);
  EXPECT_EQ(hit10.scores, nullptr);
  EXPECT_EQ(hit10.topk->k, 100u);  // caller cuts the prefix
  ASSERT_NE(cache.LookupTopK(key, 100).topk, nullptr);
  // Wider than stored: a miss, the entry cannot answer k = 101.
  EXPECT_EQ(cache.LookupTopK(key, 101).topk, nullptr);
  // Top-k-only entries never satisfy a full-vector probe.
  EXPECT_EQ(cache.Lookup(key), nullptr);

  // Inserting a narrower top-k under the same key is a no-op.
  cache.InsertTopK(key, SyntheticTopK(10, true, 0.0));
  ASSERT_NE(cache.LookupTopK(key, 50).topk, nullptr);

  // A full vector upgrades the entry in place and answers both shapes.
  auto full = std::make_shared<const std::vector<Score>>(
      std::vector<Score>(200, 0.001));
  cache.Insert(key, full);
  EXPECT_EQ(cache.Lookup(key), full);
  const auto after = cache.LookupTopK(key, 10);
  EXPECT_EQ(after.scores, full);
  EXPECT_EQ(after.topk, nullptr);
  // ... and a later top-k insert never downgrades it back.
  cache.InsertTopK(key, SyntheticTopK(100, true, 0.0));
  EXPECT_EQ(cache.Lookup(key), full);
}

TEST(TopKCacheTest, UnseparatedCertifiedPrefixMisses) {
  ResultCache cache(1 << 20, /*num_shards=*/1);
  const CacheKey key{0x9, 1, 0};

  // Wide brackets: rank 5's lower cannot dominate rank 6's upper, so the
  // certified top-10 cannot certify a top-5 — the probe must miss.
  cache.InsertTopK(key, SyntheticTopK(10, /*certified=*/true,
                                      /*bracket_slack=*/0.5));
  EXPECT_EQ(cache.LookupTopK(key, 5).topk, nullptr);
  ASSERT_NE(cache.LookupTopK(key, 10).topk, nullptr);

  // An approximate (bracket-only) result makes no separation claim; any
  // prefix of it is exactly as good, so the same probe hits.
  const CacheKey key2{0x9, 2, 0};
  cache.InsertTopK(key2, SyntheticTopK(10, /*certified=*/false,
                                       /*bracket_slack=*/0.5));
  ASSERT_NE(cache.LookupTopK(key2, 5).topk, nullptr);
}

// --- Serving ----------------------------------------------------------------

TEST(TopKServeTest, MixedShapeConcurrentClients) {
  const Graph graph = ChungLuPowerLaw(500, 3000, 2.2, /*seed=*/10);
  ServeOptions options;
  options.num_workers = 2;
  QueryService service(graph, TestConfig(graph), options);

  // Concurrent clients mixing full, top-5, and top-50 probes over a small
  // source set: shape-aware coalescing, the either-or cache entries, and
  // the response bridging all race here (the TSAN target).
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 12;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        QueryRequest request;
        request.source = static_cast<NodeId>((t + i) % 3);
        const int shape = (t + i) % 3;
        request.top_k = shape == 0 ? 0 : (shape == 1 ? 5 : 50);
        const QueryResponse response = service.Query(request);
        if (!response.status.ok()) {
          ++failures;
          continue;
        }
        if (request.top_k > 0) {
          // Top-k mode: a payload with at least k entries (a coalesced or
          // cached wider top-k' may legitimately carry more), no vector.
          if (response.topk == nullptr || response.scores != nullptr ||
              response.top.size() < request.top_k) {
            ++failures;
          }
        } else {
          if (response.scores == nullptr || response.topk != nullptr) {
            ++failures;
          }
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.Snapshot().completed,
            static_cast<std::uint64_t>(kThreads * kQueriesPerThread));
}

}  // namespace
}  // namespace resacc

#include <algorithm>

#include <gtest/gtest.h>

#include "resacc/algo/fora.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/community_metrics.h"
#include "resacc/graph/generators.h"
#include "resacc/graph/graph_builder.h"
#include "resacc/nise/nise.h"

namespace resacc {
namespace {

RwrConfig CommunityConfig(NodeId n) {
  RwrConfig config = RwrConfig::ForGraphSize(n);
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = 99;
  return config;
}

TEST(NiseTest, SeedsAreSpreadHubs) {
  const Graph g = PlantedPartition(600, 6, 12.0, 1.0, 5);
  NiseOptions options;
  options.num_communities = 6;
  Nise nise(g, options);
  const std::vector<NodeId> seeds = nise.SelectSeeds();
  ASSERT_EQ(seeds.size(), 6u);
  // Spread: no seed may be a neighbour of an earlier seed.
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      EXPECT_FALSE(g.HasEdge(seeds[i], seeds[j]))
          << seeds[i] << " adj " << seeds[j];
    }
  }
}

TEST(NiseTest, RecoversPlantedCommunities) {
  const NodeId n = 800;
  const NodeId blocks = 8;
  const Graph g = PlantedPartition(n, blocks, 14.0, 1.0, 6);
  const RwrConfig config = CommunityConfig(n);

  NiseOptions options;
  options.num_communities = blocks;
  // Purity is a property of the sweep cuts; propagation intentionally
  // dilutes it by absorbing uncovered far-away nodes (tested separately).
  options.propagate_uncovered = false;
  Nise nise(g, options);
  ResAccSolver solver(g, config, {});
  const NiseResult result = nise.Detect(solver);

  ASSERT_GE(result.communities.size(), blocks - 2u);
  // Planted blocks have conductance about deg_out/(deg_in+deg_out) ~ 0.07;
  // detected communities must be far below random (0.5+).
  EXPECT_LT(AverageConductance(g, result.communities), 0.25);
  EXPECT_LT(AverageNormalizedCut(g, result.communities), 0.25);
  EXPECT_GT(result.ssrwr_seconds, 0.0);

  // Communities should roughly align with planted blocks: majority of each
  // community in one block.
  const NodeId block_size = n / blocks;
  for (const auto& community : result.communities) {
    std::vector<std::size_t> votes(blocks, 0);
    for (NodeId v : community) ++votes[v / block_size];
    const std::size_t top = *std::max_element(votes.begin(), votes.end());
    EXPECT_GE(top * 10, community.size() * 6)  // >= 60% purity
        << "community of size " << community.size();
  }
}

TEST(NiseTest, PropagationCoversTheConnectedGraph) {
  const Graph g = PlantedPartition(600, 6, 12.0, 1.5, 9);
  const RwrConfig config = CommunityConfig(600);
  NiseOptions options;
  options.num_communities = 6;
  options.propagate_uncovered = true;
  ResAccSolver solver(g, config, {});
  const NiseResult result = Nise(g, options).Detect(solver);

  std::vector<char> covered(g.num_nodes(), 0);
  for (const auto& community : result.communities) {
    for (NodeId v : community) covered[v] = 1;
  }
  // Every node with at least one edge must end up in some community
  // (isolated nodes have no neighbours to vote with).
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.OutDegree(v) > 0) {
      EXPECT_TRUE(covered[v]) << "node " << v;
    }
  }
}

TEST(NiseTest, FilteringSkipsSatelliteComponents) {
  // Giant SBM plus a detached triangle: seeds must avoid the triangle.
  Graph base = PlantedPartition(300, 3, 10.0, 1.0, 4);
  GraphBuilder builder(base.num_nodes() + 3, /*symmetrize=*/true);
  for (NodeId u = 0; u < base.num_nodes(); ++u) {
    for (NodeId v : base.OutNeighbors(u)) {
      if (u < v) builder.AddEdge(u, v);
    }
  }
  const NodeId t = base.num_nodes();
  builder.AddEdge(t, t + 1);
  builder.AddEdge(t + 1, t + 2);
  builder.AddEdge(t + 2, t);
  const Graph g = std::move(builder).Build();

  NiseOptions options;
  options.num_communities = 50;  // more than available spread hubs
  options.filter_to_largest_component = true;
  const std::vector<NodeId> seeds = Nise(g, options).SelectSeeds();
  for (NodeId seed : seeds) {
    EXPECT_LT(seed, t) << "seed in satellite component";
  }
}

TEST(NiseTest, SsrwrOrderingBeatsDistanceOrdering) {
  const Graph g = PlantedPartition(800, 8, 14.0, 1.5, 7);
  const RwrConfig config = CommunityConfig(800);

  NiseOptions with_ssrwr;
  with_ssrwr.num_communities = 8;
  with_ssrwr.use_ssrwr_ordering = true;

  NiseOptions without_ssrwr = with_ssrwr;
  without_ssrwr.use_ssrwr_ordering = false;

  ResAccSolver solver(g, config, {});
  const NiseResult good = Nise(g, with_ssrwr).Detect(solver);
  const NiseResult bad = Nise(g, without_ssrwr).Detect(solver);

  // Table V's shape: NISE with SSRWR produces better (lower) cuts.
  EXPECT_LT(AverageConductance(g, good.communities),
            AverageConductance(g, bad.communities));
}

TEST(NiseTest, SolverChoiceDoesNotChangeQualityMuch) {
  const Graph g = PlantedPartition(600, 6, 12.0, 1.0, 8);
  const RwrConfig config = CommunityConfig(600);
  NiseOptions options;
  options.num_communities = 6;

  ResAccSolver resacc(g, config, {});
  Fora fora(g, config, {});
  const NiseResult via_resacc = Nise(g, options).Detect(resacc);
  const NiseResult via_fora = Nise(g, options).Detect(fora);

  const double qa = AverageConductance(g, via_resacc.communities);
  const double qb = AverageConductance(g, via_fora.communities);
  EXPECT_NEAR(qa, qb, 0.1);
}

}  // namespace
}  // namespace resacc

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "resacc/obs/metrics_registry.h"
#include "resacc/obs/stats_reporter.h"
#include "resacc/obs/trace.h"

namespace resacc {
namespace {

TEST(MetricsRegistryTest, CounterAndGaugeBasics) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("requests_total");
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);

  Gauge& gauge = registry.GetGauge("depth");
  gauge.Set(3.0);
  gauge.Add(-1.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 1.5);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentPerNameAndLabels) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("hits_total", "", "first help wins");
  Counter& b = registry.GetCounter("hits_total", "", "ignored");
  EXPECT_EQ(&a, &b);

  // Different labels are a different series under the same family.
  Counter& c = registry.GetCounter("hits_total", "shard=\"1\"");
  EXPECT_NE(&a, &c);
  EXPECT_EQ(registry.size(), 2u);

  a.Increment(7);
  const auto samples = registry.TakeSnapshot();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "hits_total");
  EXPECT_EQ(samples[0].help, "first help wins");
  EXPECT_DOUBLE_EQ(samples[0].value, 7.0);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByNameThenLabels) {
  MetricsRegistry registry;
  registry.GetCounter("zebra_total");
  registry.GetGauge("alpha");
  registry.GetCounter("mid_total", "phase=\"b\"");
  registry.GetCounter("mid_total", "phase=\"a\"");
  const auto samples = registry.TakeSnapshot();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "alpha");
  EXPECT_EQ(samples[1].labels, "phase=\"a\"");
  EXPECT_EQ(samples[2].labels, "phase=\"b\"");
  EXPECT_EQ(samples[3].name, "zebra_total");
}

TEST(MetricsRegistryTest, HistogramSampleCarriesSumAndQuantiles) {
  MetricsRegistry registry;
  LatencyHistogram& histogram = registry.GetHistogram("latency_seconds");
  histogram.Record(0.010);
  histogram.Record(0.020);
  const auto samples = registry.TakeSnapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].kind, MetricKind::kHistogram);
  EXPECT_NEAR(samples[0].value, 0.030, 1e-12);  // _sum
  EXPECT_EQ(samples[0].histogram.count, 2u);
  EXPECT_GT(samples[0].histogram.p50, 0.0);
}

TEST(MetricsRegistryTest, CallbackMetricsEvaluateAtScrapeTime) {
  MetricsRegistry registry;
  double state = 1.0;
  const std::uint64_t id = registry.RegisterCallback(
      MetricKind::kGauge, "live_value", "", "", [&state] { return state; });
  state = 5.0;  // changed after registration, read at scrape
  auto samples = registry.TakeSnapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].value, 5.0);

  registry.UnregisterCallback(id);
  EXPECT_TRUE(registry.TakeSnapshot().empty());
}

TEST(MetricsRegistryTest, RenderPrometheusShape) {
  MetricsRegistry registry;
  registry.GetCounter("req_total", "", "Requests.").Increment(3);
  registry.GetGauge("depth").Set(2.0);
  registry.GetHistogram("lat_seconds").Record(0.5);
  const std::string text = registry.RenderPrometheus();

  EXPECT_NE(text.find("# HELP req_total Requests.\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("req_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_seconds summary\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 0.5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 1\n"), std::string::npos);
}

TEST(MetricsRegistryTest, SharedFamilyEmitsOneTypeLine) {
  MetricsRegistry registry;
  registry.GetCounter("phase_total", "phase=\"a\"").Increment();
  registry.GetCounter("phase_total", "phase=\"b\"").Increment(2);
  const std::string text = registry.RenderPrometheus();
  std::size_t type_lines = 0;
  for (std::size_t pos = text.find("# TYPE phase_total");
       pos != std::string::npos;
       pos = text.find("# TYPE phase_total", pos + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(text.find("phase_total{phase=\"a\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("phase_total{phase=\"b\"} 2\n"), std::string::npos);
}

TEST(MetricsRegistryTest, SnapshotConsistentUnderConcurrentWrites) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, t] {
      // Half the threads hammer one shared series, half register fresh
      // series concurrently with the scrapes below.
      Counter& counter = registry.GetCounter("shared_total");
      LatencyHistogram& histogram = registry.GetHistogram(
          "lat_seconds", "thread=\"" + std::to_string(t) + "\"");
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.Increment();
        histogram.Record(1e-4);
      }
    });
  }
  std::thread scraper([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto samples = registry.TakeSnapshot();
      std::uint64_t shared = 0;
      for (const auto& sample : samples) {
        if (sample.name == "shared_total") {
          shared = static_cast<std::uint64_t>(sample.value);
        }
      }
      EXPECT_LE(shared, kThreads * kPerThread);
    }
  });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  const auto samples = registry.TakeSnapshot();
  std::uint64_t shared = 0;
  std::uint64_t recorded = 0;
  for (const auto& sample : samples) {
    if (sample.name == "shared_total") {
      shared = static_cast<std::uint64_t>(sample.value);
    }
    if (sample.name == "lat_seconds") recorded += sample.histogram.count;
  }
  EXPECT_EQ(shared, kThreads * kPerThread);
  EXPECT_EQ(recorded, kThreads * kPerThread);
}

TEST(TraceTest, DisabledRecordsNothing) {
  Trace::Disable();
  { RESACC_SPAN("ignored"); }
  EXPECT_TRUE(Trace::DrainThreadEvents().empty());
}

TEST(TraceTest, RecordsNestedSpansWithParents) {
  Trace::Enable();
  {
    RESACC_SPAN("outer");
    {
      RESACC_SPAN("inner");
    }
    { RESACC_SPAN("sibling"); }
  }
  Trace::Disable();
  const std::vector<TraceEvent> events = Trace::DrainThreadEvents();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].parent, -1);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[1].parent, 0);
  EXPECT_STREQ(events[2].name, "sibling");
  EXPECT_EQ(events[2].parent, 0);
  EXPECT_GE(events[0].duration_seconds, events[1].duration_seconds);
  EXPECT_GE(events[1].start_seconds, events[0].start_seconds);
}

TEST(TraceTest, DrainResetsBuffer) {
  Trace::Enable();
  { RESACC_SPAN("once"); }
  Trace::Disable();
  EXPECT_EQ(Trace::DrainThreadEvents().size(), 1u);
  EXPECT_TRUE(Trace::DrainThreadEvents().empty());
}

TEST(TraceTest, OverflowDropsAndCounts) {
  Trace::Enable();
  for (std::size_t i = 0; i < Trace::kMaxThreadEvents + 10; ++i) {
    RESACC_SPAN("tick");
  }
  Trace::Disable();
  EXPECT_EQ(Trace::DroppedThreadEvents(), 10u);
  EXPECT_EQ(Trace::DrainThreadEvents().size(), Trace::kMaxThreadEvents);
  EXPECT_EQ(Trace::DroppedThreadEvents(), 0u);  // drain resets the count
}

TEST(TraceTest, SpanOpenAcrossDrainIsAbandonedSafely) {
  Trace::Enable();
  {
    RESACC_SPAN("open");
    const auto events = Trace::DrainThreadEvents();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].duration_seconds, 0.0);  // still open when drained
  }  // close after drain must not touch the reset buffer
  Trace::Disable();
  EXPECT_TRUE(Trace::DrainThreadEvents().empty());
}

TEST(TraceTest, ToJsonBuildsForest) {
  std::vector<TraceEvent> events;
  events.push_back({"root", -1, 0.0, 2.0});
  events.push_back({"child", 0, 0.5, 1.0});
  const std::string json = Trace::ToJson(events);
  EXPECT_NE(json.find("\"name\": \"root\""), std::string::npos);
  EXPECT_NE(json.find("\"children\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"child\""), std::string::npos);
  EXPECT_EQ(Trace::ToJson({}), "[]");
}

TEST(TraceTest, PerThreadBuffersAreIndependent) {
  Trace::Enable();
  { RESACC_SPAN("main_thread"); }
  std::thread other([] {
    { RESACC_SPAN("other_thread"); }
    const auto events = Trace::DrainThreadEvents();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "other_thread");
  });
  other.join();
  Trace::Disable();
  const auto events = Trace::DrainThreadEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "main_thread");
}

TEST(StatsReporterTest, WritesLinesPeriodically) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  std::atomic<int> calls{0};
  {
    StatsReporter reporter(
        0.005, [&calls] { return "line " + std::to_string(++calls); }, sink);
    while (reporter.lines_written() < 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    reporter.Stop();
    reporter.Stop();  // idempotent
    const std::uint64_t written = reporter.lines_written();
    EXPECT_GE(written, 3u);
    EXPECT_EQ(reporter.lines_written(), written);  // no lines after Stop
  }
  std::fclose(sink);
}

TEST(StatsReporterTest, EmptyProducerOutputSuppressesLine) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  std::atomic<int> calls{0};
  {
    StatsReporter reporter(
        0.002,
        [&calls] {
          ++calls;
          return std::string();
        },
        sink);
    while (calls.load() < 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(reporter.lines_written(), 0u);
  }
  std::fclose(sink);
}

}  // namespace
}  // namespace resacc

// Chaos regression tests (PR 4): the deterministic fault-injection
// framework itself, and the system invariants that must survive injected
// faults — every Submit future resolves, the result cache stays
// internally consistent through forced misses/evictions, and walk-engine
// bit-identity is unaffected by injected worker stalls. Runs under TSAN
// in CI (fault injection is runtime-gated, so the sanitizer build carries
// the sites).

#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "resacc/core/resacc_solver.h"
#include "resacc/core/walk_engine.h"
#include "resacc/graph/generators.h"
#include "resacc/serve/query_service.h"
#include "resacc/serve/result_cache.h"
#include "resacc/util/fault_injection.h"
#include "resacc/util/rng.h"

namespace resacc {
namespace {

RwrConfig TestConfig(const Graph& graph) {
  RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = 7;
  return config;
}

// Every test disarms on exit so a failure cannot leak chaos into whatever
// runs next in the same process.
class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Disarm(); }
};

// --- FaultInjection framework ---------------------------------------------

TEST_F(ChaosTest, DisarmedSitesNeverFail) {
  FaultInjection::Disarm();
  EXPECT_FALSE(FaultInjection::enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(RESACC_FAULT("chaos_test.disarmed"));
  }
}

TEST_F(ChaosTest, DecisionsReplayExactlyUnderTheSameSeed) {
  std::vector<bool> first;
  FaultInjection::Arm(/*seed=*/123, /*probability=*/0.5);
  for (int i = 0; i < 200; ++i) {
    first.push_back(FaultInjection::ShouldFail("chaos_test.replay"));
  }
  EXPECT_EQ(FaultInjection::Hits("chaos_test.replay"), 200u);

  FaultInjection::Arm(123, 0.5);  // re-arm resets counters
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(FaultInjection::ShouldFail("chaos_test.replay"), first[i])
        << "hit " << i;
  }
  // Sites count independently: interleaving another site does not shift
  // the replayed site's sequence.
  FaultInjection::Arm(123, 0.5);
  for (int i = 0; i < 200; ++i) {
    FaultInjection::ShouldFail("chaos_test.other");
    EXPECT_EQ(FaultInjection::ShouldFail("chaos_test.replay"), first[i])
        << "hit " << i;
  }
}

TEST_F(ChaosTest, ProbabilityEndpointsAndPerSiteOverride) {
  FaultInjection::Arm(/*seed=*/9, /*probability=*/1.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(FaultInjection::ShouldFail("chaos_test.always"));
  }
  EXPECT_EQ(FaultInjection::Failures("chaos_test.always"), 50u);

  FaultInjection::ArmSite("chaos_test.never", 0.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(FaultInjection::ShouldFail("chaos_test.never"));
  }
  EXPECT_EQ(FaultInjection::Hits("chaos_test.never"), 50u);
  EXPECT_EQ(FaultInjection::Failures("chaos_test.never"), 0u);
}

TEST_F(ChaosTest, ArmedFractionTracksProbability) {
  FaultInjection::Arm(/*seed=*/77, /*probability=*/0.25);
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    FaultInjection::ShouldFail("chaos_test.fraction");
  }
  const double fraction =
      static_cast<double>(FaultInjection::Failures("chaos_test.fraction")) /
      trials;
  // 5-sigma band around 0.25 (sigma ~ 0.0068).
  EXPECT_NEAR(fraction, 0.25, 0.035);
}

TEST_F(ChaosTest, EnvironmentArmsBeforeMain) {
  // The pre-main initializer already ran; exercise the public re-apply
  // path both ways and restore.
  ::setenv("RESACC_FAULTS", "1", 1);
  ::setenv("RESACC_FAULT_PROB", "0.125", 1);
  ::setenv("RESACC_FAULT_SEED", "99", 1);
  FaultInjection::InitFromEnv();
  EXPECT_TRUE(FaultInjection::enabled());

  ::setenv("RESACC_FAULTS", "0", 1);
  FaultInjection::InitFromEnv();
  EXPECT_FALSE(FaultInjection::enabled());
  ::unsetenv("RESACC_FAULTS");
  ::unsetenv("RESACC_FAULT_PROB");
  ::unsetenv("RESACC_FAULT_SEED");
}

// --- Service liveness under chaos -----------------------------------------

TEST_F(ChaosTest, EverySubmitResolvesWithFaultsArmed) {
  const Graph graph = ChungLuPowerLaw(300, 1500, 2.5, /*seed=*/21);
  const RwrConfig config = TestConfig(graph);

  // Reference answers computed before arming — chaos must never change an
  // OK answer, only availability.
  ResAccSolver reference(graph, config, ResAccOptions{});
  std::vector<std::vector<Score>> expected;
  for (NodeId s = 0; s < 8; ++s) expected.push_back(reference.Query(s));

  FaultInjection::Arm(/*seed=*/4242, /*probability=*/0.05);

  ServeOptions options;
  options.num_workers = 2;
  options.queue_capacity = 8;  // small: injected + real rejections both hit
  options.cache_bytes = 1 << 20;
  QueryService service(graph, config, options);

  std::vector<std::future<QueryResponse>> futures;
  for (int round = 0; round < 25; ++round) {
    for (NodeId s = 0; s < 8; ++s) {
      QueryRequest request;
      request.source = s;
      futures.push_back(service.Submit(request));
    }
  }

  std::size_t ok = 0;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(60)),
              std::future_status::ready)
        << "future " << i << " never resolved";
    const QueryResponse response = futures[i].get();
    if (response.status.ok()) {
      ++ok;
      ASSERT_NE(response.scores, nullptr);
      const std::vector<Score>& exact = expected[i % 8];
      ASSERT_EQ(response.scores->size(), exact.size());
      for (std::size_t v = 0; v < exact.size(); ++v) {
        ASSERT_DOUBLE_EQ((*response.scores)[v], exact[v])
            << "source " << i % 8 << " node " << v;
      }
    } else {
      ASSERT_EQ(response.status.code(), StatusCode::kResourceExhausted)
          << response.status.ToString();
      ++rejected;
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(ok + rejected, futures.size());

  // Disarmed, the same service answers normally again.
  FaultInjection::Disarm();
  QueryRequest request;
  request.source = 3;
  const QueryResponse after = service.Query(request);
  ASSERT_TRUE(after.status.ok());
  for (std::size_t v = 0; v < expected[3].size(); ++v) {
    ASSERT_DOUBLE_EQ((*after.scores)[v], expected[3][v]);
  }
}

// --- Result cache consistency under injected evictions/misses -------------

TEST_F(ChaosTest, CacheStaysConsistentThroughInjectedEvictionsAndMisses) {
  FaultInjection::Arm(/*seed=*/5150, /*probability=*/0.0);
  FaultInjection::ArmSite("result_cache.evict", 0.5);
  FaultInjection::ArmSite("result_cache.lookup_miss", 0.3);

  static constexpr std::size_t kVectorLength = 16;
  static constexpr std::size_t kEntryBytes = kVectorLength * sizeof(Score);
  ResultCache cache(/*max_bytes=*/64 * kEntryBytes, /*num_shards=*/4);

  auto make_value = [](NodeId source) {
    auto value = std::make_shared<std::vector<Score>>(kVectorLength);
    for (std::size_t i = 0; i < kVectorLength; ++i) {
      (*value)[i] = static_cast<Score>(source) + static_cast<Score>(i) * 1e-3;
    }
    return value;
  };

  Rng rng(33);
  for (int step = 0; step < 2000; ++step) {
    const NodeId source = static_cast<NodeId>(rng.NextBounded(48));
    const CacheKey key{0xabcdef, source};
    if (step % 3 == 0) {
      cache.Insert(key, make_value(source));
    } else {
      const ResultCache::Value hit = cache.Lookup(key);
      if (hit != nullptr) {
        // A hit — through any schedule of injected faults — is always the
        // exact vector inserted for that key, never a torn/stale mix.
        ASSERT_EQ(hit->size(), kVectorLength);
        EXPECT_DOUBLE_EQ((*hit)[0], static_cast<Score>(source));
        EXPECT_DOUBLE_EQ((*hit)[5],
                         static_cast<Score>(source) + 5e-3);
      }
    }
    // Byte accounting survives every injected eviction: entries all have
    // the same payload, so bytes must equal entries x entry size.
    const ResultCache::Counters counters = cache.counters();
    ASSERT_EQ(counters.bytes, counters.entries * kEntryBytes)
        << "step " << step;
    ASSERT_LE(counters.bytes, cache.max_bytes());
  }
  const ResultCache::Counters final_counters = cache.counters();
  EXPECT_GT(final_counters.evictions, 0u);  // the chaos site actually fired
  EXPECT_GT(final_counters.misses, 0u);

  FaultInjection::Disarm();
  // With faults gone, a fresh insert is immediately visible.
  const CacheKey key{0xabcdef, 7};
  cache.Insert(key, make_value(7));
  EXPECT_NE(cache.Lookup(key), nullptr);
}

// --- Walk engine bit-identity under injected stalls -----------------------

TEST_F(ChaosTest, WalkEngineBitIdentitySurvivesInjectedStalls) {
  const Graph graph = ChungLuPowerLaw(400, 2400, 2.5, /*seed=*/31);
  const RwrConfig config = TestConfig(graph);
  const Rng root(config.seed);

  std::vector<WalkSlice> slices;
  for (NodeId v = 0; v < 40; ++v) {
    slices.push_back(WalkSlice{v, /*num_walks=*/3000, /*weight=*/1e-4, v});
  }

  // Reference: single-threaded, no faults.
  FaultInjection::Disarm();
  std::vector<Score> expected(graph.num_nodes(), 0.0);
  WalkEngine sequential(1);
  const WalkEngineStats ref_stats = sequential.Run(
      graph, config, /*restart_node=*/0, root, slices, expected);
  EXPECT_FALSE(ref_stats.cancelled);
  EXPECT_DOUBLE_EQ(ref_stats.skipped_mass, 0.0);

  // Chaos: four threads, every block stalled with probability 0.5. The
  // stalls perturb scheduling/merge timing as hard as a busy machine
  // would; the deposits must not move by a single bit.
  FaultInjection::Arm(/*seed=*/61, /*probability=*/0.0);
  FaultInjection::ArmSite("walk_engine.block_stall", 0.5);
  std::vector<Score> chaotic(graph.num_nodes(), 0.0);
  WalkEngine parallel(4);
  const WalkEngineStats chaos_stats = parallel.Run(
      graph, config, /*restart_node=*/0, root, slices, chaotic);
  EXPECT_GT(FaultInjection::Hits("walk_engine.block_stall"), 0u);
  EXPECT_EQ(chaos_stats.walks, ref_stats.walks);

  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    ASSERT_DOUBLE_EQ(chaotic[v], expected[v]) << "node " << v;
  }
}

}  // namespace
}  // namespace resacc

// Live graphs (DESIGN.md "Dynamic graphs"): MutableGraphView's delta
// overlay, epoch snapshots, compaction, and the serving layer's
// guarantee-preserving cache invalidation.
//
// The load-bearing contract is *bit-identity*: a mutated view's Snapshot()
// must be indistinguishable — row by row, and through every solver — from
// a fresh GraphBuilder build of the same edge set. The solvers are
// deterministic given (graph, config, seed), so graph equality is checked
// both structurally and through ResAcc/FORA/MC score vectors.

#include <algorithm>
#include <atomic>
#include <future>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "resacc/algo/fora.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/graph/dynamic/invalidation.h"
#include "resacc/graph/dynamic/mutable_graph_view.h"
#include "resacc/graph/generators.h"
#include "resacc/graph/graph_builder.h"
#include "resacc/graph/graph_snapshot.h"
#include "resacc/serve/query_service.h"
#include "resacc/util/rng.h"

namespace resacc {
namespace {

// The edge set of a graph, read through the public accessors (i.e. the
// merged view when an overlay is present).
std::set<std::pair<NodeId, NodeId>> EdgeSet(const Graph& graph) {
  std::set<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (const NodeId v : graph.OutNeighbors(u)) edges.insert({u, v});
  }
  return edges;
}

Graph Rebuild(NodeId num_nodes,
              const std::set<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder builder(num_nodes);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return std::move(builder).Build();
}

// Row-by-row equality through the public accessors, both directions.
void ExpectGraphsIdentical(const Graph& got, const Graph& want) {
  ASSERT_EQ(got.num_nodes(), want.num_nodes());
  ASSERT_EQ(got.num_edges(), want.num_edges());
  for (NodeId u = 0; u < want.num_nodes(); ++u) {
    const auto got_out = got.OutNeighbors(u);
    const auto want_out = want.OutNeighbors(u);
    ASSERT_TRUE(std::equal(got_out.begin(), got_out.end(), want_out.begin(),
                           want_out.end()))
        << "out-row mismatch at node " << u;
    const auto got_in = got.InNeighbors(u);
    const auto want_in = want.InNeighbors(u);
    ASSERT_TRUE(std::equal(got_in.begin(), got_in.end(), want_in.begin(),
                           want_in.end()))
        << "in-row mismatch at node " << u;
  }
}

// --- Mutation API semantics ----------------------------------------------

TEST(MutableGraphViewTest, AddAndRemoveEdgeMergeIntoRows) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  MutableGraphView view(std::move(builder).Build());

  GraphDelta delta;
  ASSERT_TRUE(view.AddEdge(0, 3, &delta).ok());
  EXPECT_EQ(delta.epoch, 1u);
  EXPECT_EQ(delta.dirty_out, std::vector<NodeId>{0});
  EXPECT_EQ(delta.edges_added, 1u);
  EXPECT_FALSE(delta.nodes_added);

  const Graph snapshot = view.Snapshot();
  EXPECT_TRUE(snapshot.has_overlay());
  EXPECT_EQ(snapshot.num_edges(), 3u);
  EXPECT_EQ(snapshot.OutDegree(0), 2u);
  EXPECT_TRUE(snapshot.HasEdge(0, 3));
  EXPECT_EQ(snapshot.InDegree(3), 1u);
  // Untouched rows still come from the base spans.
  EXPECT_EQ(snapshot.OutDegree(1), 1u);

  ASSERT_TRUE(view.RemoveEdge(0, 1, &delta).ok());
  EXPECT_EQ(delta.epoch, 2u);
  EXPECT_EQ(delta.edges_removed, 1u);
  const Graph after = view.Snapshot();
  EXPECT_FALSE(after.HasEdge(0, 1));
  EXPECT_TRUE(after.HasEdge(0, 3));
  EXPECT_EQ(after.num_edges(), 2u);
}

TEST(MutableGraphViewTest, MutationValidation) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  MutableGraphView view(std::move(builder).Build());

  EXPECT_EQ(view.AddEdge(0, 3).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(view.AddEdge(1, 1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(view.AddEdge(0, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(view.RemoveEdge(1, 0).code(), StatusCode::kNotFound);
  // None of the rejected mutations published an epoch.
  EXPECT_EQ(view.epoch(), 0u);
  EXPECT_FALSE(view.Snapshot().has_overlay());
}

TEST(MutableGraphViewTest, ApplyBatchIsOneEpochAndSkipsInvalid) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1);
  MutableGraphView view(std::move(builder).Build());

  const EdgeMutation batch[] = {
      {1, 2, false}, {0, 1, false},  // duplicate: skipped
      {2, 3, false}, {3, 3, false},  // self loop: skipped
      {0, 1, true},
  };
  GraphDelta delta;
  std::size_t skipped = 0;
  ASSERT_TRUE(view.ApplyBatch(batch, &delta, &skipped).ok());
  EXPECT_EQ(skipped, 2u);
  EXPECT_EQ(view.epoch(), 1u);  // the whole batch is one epoch
  EXPECT_EQ(delta.edges_added, 2u);
  EXPECT_EQ(delta.edges_removed, 1u);
  EXPECT_EQ(delta.dirty_out, (std::vector<NodeId>{0, 1, 2}));

  const Graph snapshot = view.Snapshot();
  EXPECT_EQ(EdgeSet(snapshot),
            (std::set<std::pair<NodeId, NodeId>>{{1, 2}, {2, 3}}));

  // A batch where nothing applies returns the first error, no new epoch.
  const EdgeMutation bad[] = {{0, 1, true}, {2, 2, false}};
  EXPECT_EQ(view.ApplyBatch(bad, &delta, &skipped).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(skipped, 2u);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(view.epoch(), 1u);
}

TEST(MutableGraphViewTest, AddNodeGrowsTail) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  MutableGraphView view(std::move(builder).Build());

  GraphDelta delta;
  const NodeId id = view.AddNode(&delta);
  EXPECT_EQ(id, 2u);
  EXPECT_TRUE(delta.nodes_added);

  Graph snapshot = view.Snapshot();
  EXPECT_EQ(snapshot.num_nodes(), 3u);
  EXPECT_EQ(snapshot.OutDegree(id), 0u);
  EXPECT_EQ(snapshot.InDegree(id), 0u);

  // The tail node is immediately connectable, in both directions.
  ASSERT_TRUE(view.AddEdge(id, 0).ok());
  ASSERT_TRUE(view.AddEdge(1, id).ok());
  snapshot = view.Snapshot();
  EXPECT_TRUE(snapshot.HasEdge(id, 0));
  EXPECT_TRUE(snapshot.HasEdge(1, id));
  EXPECT_EQ(snapshot.InDegree(id), 1u);
  EXPECT_EQ(snapshot.num_edges(), 3u);
}

TEST(MutableGraphViewTest, SnapshotsPinTheirEpoch) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  MutableGraphView view(std::move(builder).Build());

  const Graph before = view.Snapshot();
  ASSERT_TRUE(view.AddEdge(1, 2).ok());
  ASSERT_TRUE(view.RemoveEdge(0, 1).ok());
  const Graph after = view.Snapshot();

  // The pinned snapshot still shows the old epoch's rows.
  EXPECT_TRUE(before.HasEdge(0, 1));
  EXPECT_FALSE(before.HasEdge(1, 2));
  EXPECT_EQ(before.num_edges(), 1u);
  EXPECT_FALSE(after.HasEdge(0, 1));
  EXPECT_TRUE(after.HasEdge(1, 2));
}

// --- Equivalence with a fresh build --------------------------------------

// A random churn stream: the merged view must equal a GraphBuilder build
// of the same surviving edge set at every checkpoint, including after
// compaction and across AddNode.
TEST(MutableGraphViewTest, RandomChurnMatchesRebuiltGraph) {
  Graph base = ErdosRenyi(120, 600, /*seed=*/3);
  NodeId num_nodes = base.num_nodes();
  std::set<std::pair<NodeId, NodeId>> edges = EdgeSet(base);
  MutableGraphView view(std::move(base));

  Rng rng(0xc0ffee);
  for (int step = 0; step < 600; ++step) {
    const int kind = static_cast<int>(rng.NextBounded(20));
    if (kind == 0) {
      const NodeId id = view.AddNode();
      ASSERT_EQ(id, num_nodes);
      ++num_nodes;
    } else if (kind < 8 && !edges.empty()) {
      auto it = edges.begin();
      std::advance(it, static_cast<long>(rng.NextBounded(edges.size())));
      ASSERT_TRUE(view.RemoveEdge(it->first, it->second).ok());
      edges.erase(it);
    } else {
      const NodeId u = static_cast<NodeId>(rng.NextBounded(num_nodes));
      const NodeId v = static_cast<NodeId>(rng.NextBounded(num_nodes));
      const Status status = view.AddEdge(u, v);
      if (u == v) {
        EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
      } else if (edges.count({u, v}) > 0) {
        EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
      } else {
        ASSERT_TRUE(status.ok());
        edges.insert({u, v});
      }
    }
    if (step % 150 == 149) {
      ExpectGraphsIdentical(view.Snapshot(), Rebuild(num_nodes, edges));
    }
  }

  // Compaction folds the overlay without changing the merged graph.
  const CompactionInfo info = view.Compact();
  EXPECT_EQ(info.generation, 1u);
  EXPECT_GT(info.folded_rows, 0u);
  const Graph folded = view.Snapshot();
  EXPECT_FALSE(folded.has_overlay());
  ExpectGraphsIdentical(folded, Rebuild(num_nodes, edges));

  // And the view stays mutable on the new generation.
  ASSERT_TRUE(view.RemoveEdge(edges.begin()->first, edges.begin()->second)
                  .ok());
  edges.erase(edges.begin());
  ExpectGraphsIdentical(view.Snapshot(), Rebuild(num_nodes, edges));
}

// Every solver must produce bit-identical scores on the live view and on
// a fresh build of the same edge list — the acceptance criterion of the
// dynamic subsystem (a solver silently reading stale rows would diverge).
TEST(MutableGraphViewTest, SolversBitIdenticalToFreshLoad) {
  Graph base = ChungLuPowerLaw(200, 1200, 2.5, /*seed=*/11);
  std::set<std::pair<NodeId, NodeId>> edges = EdgeSet(base);
  const NodeId num_nodes = base.num_nodes();
  MutableGraphView view(std::move(base));

  Rng rng(0xd1ce);
  for (int step = 0; step < 80; ++step) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(num_nodes));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(num_nodes));
    if (u == v) continue;
    if (edges.count({u, v}) > 0) {
      ASSERT_TRUE(view.RemoveEdge(u, v).ok());
      edges.erase({u, v});
    } else {
      ASSERT_TRUE(view.AddEdge(u, v).ok());
      edges.insert({u, v});
    }
  }

  const Graph live = view.Snapshot();
  ASSERT_TRUE(live.has_overlay());
  const Graph fresh = Rebuild(num_nodes, edges);
  ExpectGraphsIdentical(live, fresh);

  RwrConfig config = RwrConfig::ForGraphSize(num_nodes);
  config.seed = 99;
  config.dangling = DanglingPolicy::kAbsorb;
  const NodeId sources[] = {0, 7, 42};

  {
    ResAccSolver on_live(live, config, ResAccOptions{});
    ResAccSolver on_fresh(fresh, config, ResAccOptions{});
    for (const NodeId s : sources) {
      EXPECT_EQ(on_live.Query(s), on_fresh.Query(s))
          << "ResAcc diverged at source " << s;
    }
  }
  {
    Fora on_live(live, config);
    Fora on_fresh(fresh, config);
    for (const NodeId s : sources) {
      EXPECT_EQ(on_live.Query(s), on_fresh.Query(s))
          << "FORA diverged at source " << s;
    }
  }
  {
    MonteCarlo on_live(live, config);
    MonteCarlo on_fresh(fresh, config);
    for (const NodeId s : sources) {
      EXPECT_EQ(on_live.Query(s), on_fresh.Query(s))
          << "MC diverged at source " << s;
    }
  }
}

// --- Compaction persistence ----------------------------------------------

TEST(MutableGraphViewTest, CompactionPersistsGenerationInSnapshot) {
  GraphBuilder builder(10);
  for (NodeId u = 0; u + 1 < 10; ++u) builder.AddEdge(u, u + 1);

  MutableGraphOptions options;
  options.snapshot_path_prefix =
      ::testing::TempDir() + "dynamic_gen_roundtrip";
  options.initial_generation = 4;
  MutableGraphView view(std::move(builder).Build(), options);
  EXPECT_EQ(view.generation(), 4u);

  ASSERT_TRUE(view.AddEdge(9, 0).ok());
  const CompactionInfo info = view.Compact();
  EXPECT_EQ(info.generation, 5u);
  ASSERT_TRUE(info.snapshot_status.ok()) << info.snapshot_status.ToString();
  ASSERT_FALSE(info.snapshot_path.empty());

  SnapshotLoadInfo load_info;
  const StatusOr<Graph> reloaded =
      LoadSnapshot(info.snapshot_path, SnapshotLoadOptions{}, &load_info);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(load_info.generation, 5u);
  EXPECT_EQ(load_info.format_version, 2u);
  ExpectGraphsIdentical(reloaded.value(), view.Snapshot());
}

TEST(MutableGraphViewTest, SaveSnapshotMaterializesOverlayGraphs) {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  MutableGraphView view(std::move(builder).Build());
  ASSERT_TRUE(view.AddEdge(2, 3).ok());

  const Graph live = view.Snapshot();
  ASSERT_TRUE(live.has_overlay());
  const std::string path = ::testing::TempDir() + "overlay_save.rsg";
  ASSERT_TRUE(SaveSnapshot(live, path, /*generation=*/7).ok());

  SnapshotLoadInfo info;
  const StatusOr<Graph> reloaded =
      LoadSnapshot(path, SnapshotLoadOptions{}, &info);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(info.generation, 7u);
  ExpectGraphsIdentical(reloaded.value(), live);
}

// --- Concurrency (exercised under TSAN in CI) -----------------------------

TEST(MutableGraphViewTest, ConcurrentMutatorsAndReaders) {
  Graph base = ErdosRenyi(150, 900, /*seed=*/21);
  const NodeId n = base.num_nodes();
  MutableGraphOptions options;
  options.compact_threshold_rows = 64;  // background compactor in the mix
  MutableGraphView view(std::move(base), options);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&view, &stop, &reads, n] {
      while (!stop.load(std::memory_order_relaxed)) {
        const Graph snapshot = view.Snapshot();
        // A pinned snapshot must be internally consistent: the merged
        // out-degrees sum to its edge count even while mutations land.
        std::uint64_t sum = 0;
        for (NodeId u = 0; u < snapshot.num_nodes(); ++u) {
          sum += snapshot.OutDegree(u);
        }
        ASSERT_EQ(sum, snapshot.num_edges());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> mutators;
  for (int t = 0; t < 2; ++t) {
    mutators.emplace_back([&view, t, n] {
      Rng rng(0xbeef + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 400; ++i) {
        const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
        const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
        if (u == v) continue;
        if (rng.Bernoulli(0.5)) {
          (void)view.AddEdge(u, v);  // kAlreadyExists races are expected
        } else {
          (void)view.RemoveEdge(u, v);
        }
      }
    });
  }
  for (auto& t : mutators) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);

  // Settle: one final fold and the stats must reconcile.
  view.Compact();
  const MutableGraphStats stats = view.stats();
  EXPECT_EQ(stats.overlay_rows, 0u);
  EXPECT_GE(stats.compactions, 1u);
  ExpectGraphsIdentical(view.Snapshot(),
                        Rebuild(n, EdgeSet(view.Snapshot())));
}

// --- Influence bound ------------------------------------------------------

TEST(InvalidationTest, MutationInfluenceSumsDirtyMass) {
  GraphDelta delta;
  delta.dirty_out = {1, 3};
  const std::vector<Score> scores = {0.5f, 0.25f, 0.1f, 0.05f};
  // 2 * (1 - 0.2) / 0.2 * (0.25 + 0.05) = 8 * 0.3
  EXPECT_NEAR(MutationInfluence(delta, 0.2, scores), 2.4, 1e-6);

  GraphDelta grew;
  grew.nodes_added = true;
  EXPECT_TRUE(std::isinf(MutationInfluence(grew, 0.2, scores)));

  GraphDelta out_of_range;
  out_of_range.dirty_out = {9};
  EXPECT_TRUE(std::isinf(MutationInfluence(out_of_range, 0.2, scores)));
}

// --- ResultCache epoch transitions ---------------------------------------

ResultCache::Value MakeScores(std::initializer_list<Score> values) {
  return std::make_shared<const std::vector<Score>>(values);
}

TEST(ResultCacheEpochTest, LookupIsEpochPinned) {
  ResultCache cache(1 << 20, 2);
  cache.Insert(CacheKey{1, 5, 0}, MakeScores({0.5f}));
  EXPECT_NE(cache.Lookup(CacheKey{1, 5, 0}), nullptr);
  EXPECT_EQ(cache.Lookup(CacheKey{1, 5, 1}), nullptr);
}

TEST(ResultCacheEpochTest, InvalidateEpochPromotesWithinBudgetDropsBeyond) {
  ResultCache cache(1 << 20, 2);
  // Entry A: no mass on the dirty node -> influence 0, promoted.
  cache.Insert(CacheKey{1, 10, 0}, MakeScores({0.9f, 0.0f}));
  // Entry B: heavy mass on the dirty node -> dropped.
  cache.Insert(CacheKey{1, 11, 0}, MakeScores({0.1f, 0.8f}));
  // Entry C: different config hash -> untouched.
  cache.Insert(CacheKey{2, 10, 0}, MakeScores({0.9f, 0.1f}));

  const auto stats = cache.InvalidateEpoch(
      /*config_hash=*/1, /*old_epoch=*/0, /*new_epoch=*/1,
      /*drift_budget=*/0.01,
      [](const std::vector<Score>& scores) {
        return static_cast<double>(scores[1]);  // dirty node = 1
      });
  EXPECT_EQ(stats.promoted, 1u);
  EXPECT_EQ(stats.dropped, 1u);

  EXPECT_NE(cache.Lookup(CacheKey{1, 10, 1}), nullptr);  // promoted
  EXPECT_EQ(cache.Lookup(CacheKey{1, 10, 0}), nullptr);  // old key gone
  EXPECT_EQ(cache.Lookup(CacheKey{1, 11, 1}), nullptr);  // dropped
  EXPECT_NE(cache.Lookup(CacheKey{2, 10, 0}), nullptr);  // other config
}

TEST(ResultCacheEpochTest, DriftAccumulatesAcrossPromotions) {
  ResultCache cache(1 << 20, 1);
  cache.Insert(CacheKey{1, 0, 0}, MakeScores({1.0f}));
  // Each transition adds 0.4 of drift against a budget of 1.0: the entry
  // survives two transitions and dies on the third — cumulative, not
  // per-batch, exactly the offset-tracking argument.
  const auto influence = [](const std::vector<Score>&) { return 0.4; };
  EXPECT_EQ(cache.InvalidateEpoch(1, 0, 1, 1.0, influence).promoted, 1u);
  EXPECT_EQ(cache.InvalidateEpoch(1, 1, 2, 1.0, influence).promoted, 1u);
  EXPECT_EQ(cache.InvalidateEpoch(1, 2, 3, 1.0, influence).dropped, 1u);
  EXPECT_EQ(cache.Lookup(CacheKey{1, 0, 3}), nullptr);
}

TEST(ResultCacheEpochTest, RefreshResetsAccumulatedDrift) {
  ResultCache cache(1 << 20, 1);
  cache.Insert(CacheKey{1, 0, 0}, MakeScores({1.0f}));
  const auto influence = [](const std::vector<Score>&) { return 0.6; };
  // First transition: 0.6 of the 1.0 budget, promoted carrying drift 0.6.
  EXPECT_EQ(cache.InvalidateEpoch(1, 0, 1, 1.0, influence).promoted, 1u);

  // A recompute against epoch 1 refreshes the entry (the serving layer's
  // batched and serial insert paths both land here). The new vector never
  // saw the epoch-0 perturbation, so its drift must restart at zero —
  // carrying the old 0.6 over would charge it for a batch it postdates.
  cache.Insert(CacheKey{1, 0, 1}, MakeScores({2.0f}));

  // Second transition: another 0.6. With stale drift the cumulative bound
  // would read 1.2 > 1.0 and wrongly drop the fresh entry.
  const auto stats = cache.InvalidateEpoch(1, 1, 2, 1.0, influence);
  EXPECT_EQ(stats.promoted, 1u);
  EXPECT_EQ(stats.dropped, 0u);
  const auto hit = cache.Lookup(CacheKey{1, 0, 2});
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ((*hit)[0], 2.0);
}

TEST(ResultCacheEpochTest, FlushAllDropsEverythingAtOldEpoch) {
  ResultCache cache(1 << 20, 2);
  cache.Insert(CacheKey{1, 0, 0}, MakeScores({0.0f}));
  cache.Insert(CacheKey{1, 1, 0}, MakeScores({0.0f}));
  const auto stats =
      cache.InvalidateEpoch(1, 0, 1, /*drift_budget=*/1e9, nullptr,
                            /*flush_all=*/true);
  EXPECT_EQ(stats.dropped, 2u);
  EXPECT_EQ(stats.promoted, 0u);
  EXPECT_EQ(cache.counters().entries, 0u);
}

// --- QueryService over a live graph --------------------------------------

ServeOptions DynamicServeOptions() {
  ServeOptions options;
  options.num_workers = 2;
  options.coalesce = true;
  return options;
}

TEST(DynamicServeTest, MutationInvalidatesAffectedEntriesOnly) {
  Graph base = ChungLuPowerLaw(150, 900, 2.5, /*seed=*/31);
  RwrConfig config = RwrConfig::ForGraphSize(base.num_nodes());
  config.seed = 17;
  config.dangling = DanglingPolicy::kAbsorb;
  MutableGraphView view(std::move(base));
  const Graph serving = view.Snapshot();
  QueryService service(serving, config, DynamicServeOptions());

  // Warm the cache for one source.
  QueryRequest request;
  request.source = 3;
  ASSERT_TRUE(service.Query(request).status.ok());

  // AddNode changes score-vector lengths: cached entries cannot be
  // repaired and the epoch transition must flush regardless of mode.
  GraphDelta delta;
  const NodeId a = view.AddNode(&delta);
  const NodeId b = view.AddNode(&delta);
  service.UpdateGraph(view.Snapshot(), delta);

  QueryResponse response = service.Query(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_FALSE(response.cache_hit);  // AddNode flushed (length change)

  // Re-warm at the new epoch, then apply a mutation with zero influence
  // on source 3's walk: an edge between the two isolated fresh nodes —
  // no walk from source 3 has any mass on either, so the influence bound
  // is exactly 0 and the entry must be promoted, not dropped.
  ASSERT_TRUE(service.Query(request).status.ok());
  GraphDelta edge_delta;
  ASSERT_TRUE(view.AddEdge(a, b, &edge_delta).ok());
  service.UpdateGraph(view.Snapshot(), edge_delta);

  response = service.Query(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(response.cache_hit)
      << "zero-influence mutation must not invalidate source 3's entry";
  EXPECT_EQ(service.metrics()
                .GetCounter("resacc_serve_cache_kept_total", "")
                .Value(),
            1u);
}

TEST(DynamicServeTest, FlushModeDropsEverythingOnAnyMutation) {
  Graph base = ErdosRenyi(100, 600, /*seed=*/41);
  RwrConfig config = RwrConfig::ForGraphSize(base.num_nodes());
  config.seed = 23;
  MutableGraphView view(std::move(base));
  const Graph serving = view.Snapshot();
  ServeOptions options = DynamicServeOptions();
  options.invalidation = ServeOptions::InvalidationMode::kFlushAll;
  QueryService service(serving, config, options);

  QueryRequest request;
  request.source = 5;
  ASSERT_TRUE(service.Query(request).status.ok());

  const NodeId u = 90;
  const NodeId v = 91;
  GraphDelta delta;
  const Status mutated = view.Snapshot().HasEdge(u, v)
                             ? view.RemoveEdge(u, v, &delta)
                             : view.AddEdge(u, v, &delta);
  ASSERT_TRUE(mutated.ok());
  service.UpdateGraph(view.Snapshot(), delta);

  const QueryResponse response = service.Query(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_FALSE(response.cache_hit);
  EXPECT_GE(service.metrics()
                .GetCounter("resacc_serve_invalidated_total", "")
                .Value(),
            1u);
}

TEST(DynamicServeTest, CompactionSwapKeepsCacheAndAnswers) {
  Graph base = ChungLuPowerLaw(120, 700, 2.5, /*seed=*/51);
  RwrConfig config = RwrConfig::ForGraphSize(base.num_nodes());
  config.seed = 29;
  MutableGraphView view(std::move(base));
  Graph serving = view.Snapshot();
  QueryService service(serving, config, DynamicServeOptions());

  GraphDelta delta;
  ASSERT_TRUE(view.AddEdge(0, 100, &delta).ok());
  service.UpdateGraph(view.Snapshot(), delta);

  QueryRequest request;
  request.source = 2;
  const QueryResponse first = service.Query(request);
  ASSERT_TRUE(first.status.ok());

  // Compact: physical base changes, content does not.
  const CompactionInfo info = view.Compact();
  EXPECT_EQ(info.folded_rows, 2u);
  service.UpdateGraph(view.Snapshot(), GraphDelta{});
  EXPECT_EQ(service.graph_epoch(), delta.epoch);

  const QueryResponse second = service.Query(request);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit) << "compaction must not invalidate";
  EXPECT_EQ(*second.scores, *first.scores);

  // And a fresh compute on the folded base is still bit-identical.
  QueryRequest other;
  other.source = 9;
  const QueryResponse folded_answer = service.Query(other);
  ASSERT_TRUE(folded_answer.status.ok());
  ResAccSolver reference(view.Snapshot(), config, ResAccOptions{});
  EXPECT_EQ(*folded_answer.scores, reference.Query(other.source));
}

TEST(DynamicServeTest, QueriesAgainstLiveViewMatchFreshBuild) {
  Graph base = ErdosRenyi(130, 800, /*seed=*/61);
  const NodeId n = base.num_nodes();
  RwrConfig config = RwrConfig::ForGraphSize(n);
  config.seed = 31;
  std::set<std::pair<NodeId, NodeId>> edges = EdgeSet(base);
  MutableGraphView view(std::move(base));
  const Graph serving = view.Snapshot();
  QueryService service(serving, config, DynamicServeOptions());

  Rng rng(0xfeed);
  for (int step = 0; step < 30; ++step) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    GraphDelta delta;
    if (edges.count({u, v}) > 0) {
      ASSERT_TRUE(view.RemoveEdge(u, v, &delta).ok());
      edges.erase({u, v});
    } else {
      ASSERT_TRUE(view.AddEdge(u, v, &delta).ok());
      edges.insert({u, v});
    }
    service.UpdateGraph(view.Snapshot(), delta);
  }

  const Graph fresh = Rebuild(n, edges);
  ResAccSolver reference(fresh, config, ResAccOptions{});
  for (const NodeId source : {NodeId{1}, NodeId{17}, NodeId{64}}) {
    QueryRequest request;
    request.source = source;
    const QueryResponse response = service.Query(request);
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(*response.scores, reference.Query(source))
        << "served answer diverged from fresh build at source " << source;
  }
}

TEST(DynamicServeTest, PostMutationSubmitNeverCoalescesOntoStaleCompute) {
  Graph base = ErdosRenyi(120, 700, /*seed=*/71);
  RwrConfig config = RwrConfig::ForGraphSize(base.num_nodes());
  config.seed = 37;
  MutableGraphView view(std::move(base));
  const Graph serving = view.Snapshot();

  // One worker, parked inside the dequeue hook for the first job only —
  // after it pinned its graph state, i.e. mid-compute as far as the
  // coalescing decision is concerned.
  std::atomic<int> dequeues{0};
  std::promise<void> first_job_pinned;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  ServeOptions options;
  options.num_workers = 1;
  options.coalesce = true;
  options.dequeue_hook = [&](NodeId) {
    if (dequeues.fetch_add(1) == 0) {
      first_job_pinned.set_value();
      release_future.wait();
    }
  };
  QueryService service(serving, config, options);

  QueryRequest request;
  request.source = 3;
  std::future<QueryResponse> before = service.Submit(request);
  first_job_pinned.get_future().wait();

  // Mutate while the worker is stalled on the pre-mutation state: an
  // out-edge of the source itself, so the answer provably changes.
  GraphDelta delta;
  NodeId v = 100;
  while (!view.AddEdge(request.source, v, &delta).ok()) ++v;
  service.UpdateGraph(view.Snapshot(), delta);

  // This request arrives after the mutation. Coalescing it onto the
  // stalled job would answer it with pre-mutation scores.
  std::future<QueryResponse> after = service.Submit(request);
  release.set_value();

  const QueryResponse stale_side = before.get();
  const QueryResponse fresh_side = after.get();
  ASSERT_TRUE(stale_side.status.ok());
  ASSERT_TRUE(fresh_side.status.ok());
  EXPECT_FALSE(fresh_side.coalesced)
      << "post-mutation request coalesced onto a pre-mutation compute";
  ResAccSolver reference(view.Snapshot(), config, ResAccOptions{});
  EXPECT_EQ(*fresh_side.scores, reference.Query(request.source));
  EXPECT_NE(*stale_side.scores, *fresh_side.scores)
      << "mutation was supposed to change the source's own out-row";
}

}  // namespace
}  // namespace resacc

#include <cstdio>
#include <unistd.h>
#include <string>

#include <gtest/gtest.h>

#include "resacc/algo/fora_plus.h"
#include "resacc/graph/generators.h"
#include "resacc/graph/graph_io.h"
#include "resacc/util/args.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(BinaryGraphTest, RoundTripsExactly) {
  const Graph g = ChungLuPowerLaw(2000, 20000, 2.2, 5);
  const std::string path = TempPath("graph_roundtrip.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  const StatusOr<Graph> loaded = LoadBinary(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().num_nodes(), g.num_nodes());
  ASSERT_EQ(loaded.value().num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto a = g.OutNeighbors(v);
    const auto b = loaded.value().OutNeighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "node " << v;
    for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
  }
  std::remove(path.c_str());
}

TEST(BinaryGraphTest, RejectsGarbage) {
  const std::string path = TempPath("graph_garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("this is not a graph", f);
  std::fclose(f);
  const StatusOr<Graph> loaded = LoadBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(BinaryGraphTest, RejectsTruncation) {
  const Graph g = testing::Figure1Graph();
  const std::string path = TempPath("graph_truncated.bin");
  ASSERT_TRUE(SaveBinary(g, path).ok());
  // Truncate the adjacency body.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 4), 0);
  const StatusOr<Graph> loaded = LoadBinary(path);
  ASSERT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(ForaPlusIndexTest, SaveLoadRoundTrip) {
  const Graph g = ChungLuPowerLaw(800, 6400, 2.2, 6);
  RwrConfig config = RwrConfig::ForGraphSize(g.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = 11;

  ForaPlus original(g, config);
  ASSERT_TRUE(original.BuildIndex().ok());
  const std::string path = TempPath("foraplus.idx");
  ASSERT_TRUE(original.SaveIndex(path).ok());

  ForaPlus reloaded(g, config);
  ASSERT_TRUE(reloaded.LoadIndex(path).ok());
  ASSERT_TRUE(reloaded.IndexReady());
  EXPECT_EQ(reloaded.IndexBytes(), original.IndexBytes());

  // Same pools + same query RNG fork => identical answers.
  const std::vector<Score> a = original.Query(3);
  const std::vector<Score> b = reloaded.Query(3);
  for (std::size_t v = 0; v < a.size(); ++v) {
    ASSERT_DOUBLE_EQ(a[v], b[v]) << "node " << v;
  }
  std::remove(path.c_str());
}

TEST(ForaPlusIndexTest, RejectsMismatchedGraph) {
  const Graph g1 = ChungLuPowerLaw(800, 6400, 2.2, 6);
  const Graph g2 = ChungLuPowerLaw(900, 6400, 2.2, 6);
  RwrConfig config = RwrConfig::ForGraphSize(g1.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;

  ForaPlus original(g1, config);
  ASSERT_TRUE(original.BuildIndex().ok());
  const std::string path = TempPath("foraplus_mismatch.idx");
  ASSERT_TRUE(original.SaveIndex(path).ok());

  ForaPlus other(g2, config);
  const Status status = other.LoadIndex(path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(ForaPlusIndexTest, SaveWithoutBuildFails) {
  const Graph g = testing::CycleGraph(10);
  const RwrConfig config = RwrConfig::ForGraphSize(10);
  ForaPlus fora_plus(g, config);
  EXPECT_EQ(fora_plus.SaveIndex(TempPath("nope.idx")).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ArgParserTest, ParsesAllForms) {
  const char* argv[] = {"prog",        "query",      "graph.txt",
                        "--source=5",  "--topk",     "10",
                        "--undirected", "--sources=1,2,3"};
  ArgParser args(8, const_cast<char**>(argv));
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "query");
  EXPECT_EQ(args.GetInt("source", 0), 5);
  EXPECT_EQ(args.GetInt("topk", 0), 10);
  EXPECT_TRUE(args.HasFlag("undirected"));
  EXPECT_FALSE(args.HasFlag("missing"));
  EXPECT_EQ(args.GetString("missing", "dft"), "dft");
  EXPECT_EQ(args.GetIntList("sources"),
            (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_TRUE(args.UnusedOptions().empty());
}

TEST(ArgParserTest, TracksUnusedOptions) {
  const char* argv[] = {"prog", "--typo=1"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.UnusedOptions(), (std::vector<std::string>{"typo"}));
}

}  // namespace
}  // namespace resacc

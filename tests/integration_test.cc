#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "resacc/algo/fora.h"
#include "resacc/algo/fora_plus.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/algo/topppr.h"
#include "resacc/algo/tpa.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/eval/metrics.h"
#include "resacc/eval/sources.h"
#include "resacc/graph/datasets.h"

namespace resacc {
namespace {

// End-to-end: a scaled dataset stand-in, multiple sources, every major
// solver — the same pipeline the benches run, at test size.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const DatasetSpec spec = FindDataset("dblp-sim").value();
    graph_ = new Graph(MakeDataset(spec, /*scale=*/0.05));
    config_ = new RwrConfig(RwrConfig::ForGraphSize(graph_->num_nodes()));
    config_->dangling = DanglingPolicy::kAbsorb;
    config_->p_f = 1e-7;
    config_->seed = 123;
    truth_ = new GroundTruthCache(*graph_, *config_);
    sources_ = new std::vector<NodeId>(PickUniformSources(*graph_, 3, 17));
  }
  static void TearDownTestSuite() {
    delete sources_;
    delete truth_;
    delete config_;
    delete graph_;
  }

  static Graph* graph_;
  static RwrConfig* config_;
  static GroundTruthCache* truth_;
  static std::vector<NodeId>* sources_;
};

Graph* PipelineTest::graph_ = nullptr;
RwrConfig* PipelineTest::config_ = nullptr;
GroundTruthCache* PipelineTest::truth_ = nullptr;
std::vector<NodeId>* PipelineTest::sources_ = nullptr;

TEST_F(PipelineTest, GuaranteedSolversMeetEpsilonOnRealisticGraph) {
  ResAccSolver resacc(*graph_, *config_, {});
  Fora fora(*graph_, *config_, {});
  MonteCarlo mc(*graph_, *config_);
  for (NodeId s : *sources_) {
    const std::vector<Score>& exact = truth_->Get(s);
    for (SsrwrAlgorithm* algo :
         std::initializer_list<SsrwrAlgorithm*>{&resacc, &fora, &mc}) {
      const std::vector<Score> estimate = algo->Query(s);
      EXPECT_LE(
          MaxRelativeErrorAboveDelta(estimate, exact, config_->delta),
          config_->epsilon)
          << algo->name() << " source " << s;
      EXPECT_GT(NdcgAtK(estimate, exact, 100), 0.99)
          << algo->name() << " source " << s;
    }
  }
}

TEST_F(PipelineTest, ResAccBeatsForaOnPushWork) {
  // The headline claim, in operation counts (machine-independent): to reach
  // the same guarantee, ResAcc leaves less residue mass per push than
  // plain FORA, i.e. fewer remedy walks for comparable push effort.
  ResAccSolver resacc(*graph_, *config_, {});
  Fora fora(*graph_, *config_, {});
  std::uint64_t resacc_walks = 0;
  std::uint64_t fora_walks = 0;
  for (NodeId s : *sources_) {
    resacc.Query(s);
    fora.Query(s);
    resacc_walks += resacc.last_stats().remedy.walks;
    fora_walks += fora.last_stats().remedy.walks;
  }
  EXPECT_LT(resacc_walks, fora_walks);
}

TEST_F(PipelineTest, IndexedSolversAgree) {
  ForaPlus fora_plus(*graph_, *config_);
  ASSERT_TRUE(fora_plus.BuildIndex().ok());
  Tpa tpa(*graph_, *config_);
  ASSERT_TRUE(tpa.BuildIndex().ok());

  const NodeId s = (*sources_)[0];
  const std::vector<Score>& exact = truth_->Get(s);
  EXPECT_LE(MaxRelativeErrorAboveDelta(fora_plus.Query(s), exact,
                                       config_->delta),
            config_->epsilon);
  EXPECT_GT(NdcgAtK(tpa.Query(s), exact, 100), 0.95);
}

TEST_F(PipelineTest, TopPprOrdersHeadCorrectly) {
  TopPprOptions options;
  options.top_k = 200;
  TopPpr topppr(*graph_, *config_, options);
  const NodeId s = (*sources_)[0];
  const std::vector<Score>& exact = truth_->Get(s);
  EXPECT_GE(PrecisionAtK(topppr.Query(s), exact, 200), 0.85);
}

TEST_F(PipelineTest, MsrwrMatchesPerSourceQueries) {
  ResAccSolver solver(*graph_, *config_, {});
  const auto many = solver.QueryMany(*sources_);
  ASSERT_EQ(many.size(), sources_->size());
  for (std::size_t i = 0; i < sources_->size(); ++i) {
    const std::vector<Score>& exact = truth_->Get((*sources_)[i]);
    EXPECT_LE(MaxRelativeErrorAboveDelta(many[i], exact, config_->delta),
              config_->epsilon);
  }
}

}  // namespace
}  // namespace resacc

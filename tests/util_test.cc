#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "resacc/util/alias_table.h"
#include "resacc/util/env.h"
#include "resacc/util/fair_queue.h"
#include "resacc/util/histogram.h"
#include "resacc/util/rng.h"
#include "resacc/util/stats.h"
#include "resacc/util/status.h"
#include "resacc/util/table.h"
#include "resacc/util/top_k.h"

namespace resacc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedStaysInRangeAndCoversAll) {
  Rng rng(3);
  std::vector<int> histogram(7, 0);
  for (int i = 0; i < 7000; ++i) {
    const std::uint64_t x = rng.NextBounded(7);
    ASSERT_LT(x, 7u);
    ++histogram[x];
  }
  for (int count : histogram) EXPECT_GT(count, 700);  // ~1000 expected
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.2) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.2, 0.01);
}

TEST(RngTest, ForkProducesIndependentButReproducibleStreams) {
  const Rng base(99);
  Rng fork1 = base.Fork(1);
  Rng fork2 = base.Fork(2);
  EXPECT_NE(fork1.Next(), fork2.Next());
  // Forking again with the same stream id reproduces the stream exactly.
  Rng fork1_a = base.Fork(1);
  Rng fork1_b = base.Fork(1);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fork1_a.Next(), fork1_b.Next());
}

TEST(AliasTableTest, MatchesWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  Rng rng(5);
  std::vector<int> histogram(4, 0);
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) ++histogram[table.Sample(rng)];
  for (int i = 0; i < 4; ++i) {
    const double expected = weights[i] / 10.0;
    EXPECT_NEAR(histogram[i] / static_cast<double>(trials), expected, 0.01)
        << "bucket " << i;
  }
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable table({0.0, 1.0, 0.0, 1.0});
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const std::size_t s = table.Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTableTest, SingleBucket) {
  AliasTable table({3.5});
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(StatsTest, SummaryOfKnownSample) {
  const SampleSummary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.q1, 2.0);
  EXPECT_DOUBLE_EQ(s.q3, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(StatsTest, EmptyAndSingleton) {
  EXPECT_EQ(Summarize({}).count, 0u);
  const SampleSummary one = Summarize({7.0});
  EXPECT_DOUBLE_EQ(one.min, 7.0);
  EXPECT_DOUBLE_EQ(one.median, 7.0);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> sorted = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 1.0), 10.0);
}

TEST(StatsTest, RunningStatMatchesBatch) {
  RunningStat rs;
  std::vector<double> values = {2.5, -1.0, 7.0, 3.25, 0.0};
  for (double v : values) rs.Add(v);
  const SampleSummary batch = Summarize(values);
  EXPECT_NEAR(rs.mean(), batch.mean, 1e-12);
  EXPECT_NEAR(rs.stddev(), batch.stddev, 1e-12);
}

TEST(TopKTest, OrdersByScoreThenId) {
  const std::vector<Score> scores = {0.5, 0.9, 0.5, 0.1};
  const std::vector<NodeId> top = TopKIndices(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 0u);  // ties break toward lower id
  EXPECT_EQ(top[2], 2u);
}

TEST(TopKTest, KLargerThanSize) {
  const std::vector<Score> scores = {0.2, 0.8};
  EXPECT_EQ(TopKIndices(scores, 10).size(), 2u);
}

TEST(TopKTest, PairsCarryScores) {
  const auto pairs = TopKPairs({0.1, 0.3, 0.2}, 2);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].first, 1u);
  EXPECT_DOUBLE_EQ(pairs[0].second, 0.3);
}

TEST(StatusTest, OkAndErrorRendering) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status err = Status::NotFound("missing thing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, StatusOrHoldsValue) {
  StatusOr<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  StatusOr<int> bad(Status::InvalidArgument("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, AlignsColumns) {
  TextTable table({"a", "bb"});
  table.AddRow({"xxx", "y"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("a    bb"), std::string::npos);
  EXPECT_NE(out.find("xxx  y"), std::string::npos);
}

TEST(TableTest, FormattersProduceReadableUnits) {
  EXPECT_EQ(FmtSeconds(2.5), "2.500 s");
  EXPECT_EQ(FmtSeconds(0.002), "2.000 ms");
  EXPECT_EQ(FmtBytes(1536.0), "1.54 KB");
  EXPECT_EQ(FmtBytes(2.5e9), "2.50 GB");
  EXPECT_EQ(Fmt(1.5e-9), "1.500e-09");
}

TEST(LatencyHistogramTest, QuantileEdgesAndEmpty) {
  LatencyHistogram histogram;
  // Empty: every quantile is zero, as is the snapshot.
  EXPECT_EQ(histogram.Quantile(0.0), 0.0);
  EXPECT_EQ(histogram.Quantile(1.0), 0.0);
  EXPECT_EQ(histogram.TakeSnapshot().count, 0u);

  histogram.Record(0.001);
  histogram.Record(0.100);
  // q outside [0,1] clamps rather than reading out of range.
  EXPECT_EQ(histogram.Quantile(-1.0), histogram.Quantile(0.0));
  EXPECT_EQ(histogram.Quantile(2.0), histogram.Quantile(1.0));
  // q=0 resolves to the first occupied bucket, q=1 to the last; bucket
  // bounds overestimate by at most the ~8.5% bucket growth factor.
  EXPECT_GE(histogram.Quantile(0.0), 0.001);
  EXPECT_LE(histogram.Quantile(0.0), 0.001 * 1.1);
  EXPECT_GE(histogram.Quantile(1.0), 0.100);
  EXPECT_LE(histogram.Quantile(1.0), 0.100 * 1.1);
}

TEST(LatencyHistogramTest, UnderflowAndOverflowBuckets) {
  LatencyHistogram histogram;
  histogram.Record(0.0);     // <= 0 lands in the underflow bucket
  histogram.Record(-5.0);    // negative too, and must not poison the sum
  histogram.Record(1e-9);    // below the 1us floor
  histogram.Record(5e3);     // above the 1000s ceiling
  const LatencyHistogram::Snapshot snapshot = histogram.TakeSnapshot();
  EXPECT_EQ(snapshot.count, 4u);
  // Underflow reads back as the floor, overflow as the ceiling.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.0), 1e-6);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 1e3);
  EXPECT_DOUBLE_EQ(snapshot.max, 5e3);
  EXPECT_NEAR(snapshot.mean, (1e-9 + 5e3) / 4.0, 1e-6);
}

TEST(LatencyHistogramTest, ResetForgetsEverything) {
  LatencyHistogram histogram;
  histogram.Record(0.5);
  histogram.Record(2.0);
  ASSERT_EQ(histogram.count(), 2u);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  const LatencyHistogram::Snapshot snapshot = histogram.TakeSnapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.mean, 0.0);
  EXPECT_EQ(snapshot.max, 0.0);
  EXPECT_EQ(histogram.Quantile(0.5), 0.0);
  // Usable after Reset.
  histogram.Record(0.25);
  EXPECT_EQ(histogram.count(), 1u);
}

TEST(LatencyHistogramTest, ConcurrentRecordVsSnapshot) {
  LatencyHistogram histogram;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;
  std::atomic<bool> stop{false};
  std::thread reader([&histogram, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const LatencyHistogram::Snapshot snapshot = histogram.TakeSnapshot();
      // A mid-update snapshot may be short but never corrupt: count within
      // range, quantiles within the recorded value span.
      EXPECT_LE(snapshot.count, kThreads * kPerThread);
      if (snapshot.count > 0) {
        EXPECT_GE(snapshot.p50, 1e-4);
        EXPECT_LE(snapshot.p99, 1e-2 * 1.1);
      }
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&histogram] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        histogram.Record(i % 2 == 0 ? 1e-4 : 1e-2);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  EXPECT_NEAR(histogram.TakeSnapshot().mean, (1e-4 + 1e-2) / 2.0, 1e-5);
}

TEST(WeightedFairQueueTest, SingleLaneIsFifoWithCapacity) {
  WeightedFairQueue<int> queue(3, {});
  EXPECT_EQ(queue.num_lanes(), 1u);
  EXPECT_EQ(queue.capacity(), 3u);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_FALSE(queue.TryPush(4));  // lane full
  int out = 0;
  EXPECT_TRUE(queue.TryPop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.TryPop(out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(queue.TryPush(4));  // slot freed
  EXPECT_TRUE(queue.TryPop(out));
  EXPECT_EQ(out, 3);
  EXPECT_TRUE(queue.TryPop(out));
  EXPECT_EQ(out, 4);
  EXPECT_FALSE(queue.TryPop(out));
}

TEST(WeightedFairQueueTest, BackloggedLanesDrainByWeight) {
  // Two saturated lanes at 4:1 — the drain order must interleave 4 heavy
  // items per light item, and the light lane must never starve (the
  // enqueue-time tag stamping is what guarantees this).
  WeightedFairQueue<int> queue(64, {4.0, 1.0});
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(queue.TryPush(/*heavy marker*/ 1, 0));
  }
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(queue.TryPush(/*light marker*/ 2, 1));
  }
  int heavy = 0;
  int light = 0;
  int out = 0;
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(queue.TryPop(out));
    (out == 1 ? heavy : light) += 1;
  }
  EXPECT_EQ(heavy, 20);  // 4/5 of 25
  EXPECT_EQ(light, 5);   // 1/5 of 25
}

TEST(WeightedFairQueueTest, IdleLaneGetsNoCatchUpBurst) {
  // Lane 1 idles while lane 0 is served, then starts pushing: it must get
  // its steady-state half share, not a burst repaying the idle time.
  WeightedFairQueue<int> queue(64, {1.0, 1.0});
  int out = 0;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(queue.TryPush(1, 0));
    ASSERT_TRUE(queue.TryPop(out));
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(queue.TryPush(1, 0));
    ASSERT_TRUE(queue.TryPush(2, 1));
  }
  int first = 0;
  int second = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(queue.TryPop(out));
    (out == 1 ? first : second) += 1;
  }
  EXPECT_EQ(first, 5);
  EXPECT_EQ(second, 5);
}

TEST(WeightedFairQueueTest, PromoteIfSoonerReLanesQueuedItem) {
  WeightedFairQueue<int> queue(8, {4.0, 1.0});
  // Backlog the light lane; the item of interest (99) sits at its tail.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.TryPush(100 + i, 1));
  ASSERT_TRUE(queue.TryPush(99, 1));
  // Promoting into the empty heavy lane gives 99 an earlier finish: it
  // must now be served before the light lane's older backlog.
  EXPECT_TRUE(queue.PromoteIfSooner(99, 0));
  int out = 0;
  ASSERT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 99);
  // A second promote finds nothing (already popped).
  EXPECT_FALSE(queue.PromoteIfSooner(99, 0));
  // A full target lane refuses the move (the item keeps its old slot).
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(queue.TryPush(i, 0));
  EXPECT_FALSE(queue.PromoteIfSooner(100, 0));
  EXPECT_EQ(queue.lane_size(1), 5u);
  // Promoting an item into the lane it already occupies is a no-op.
  EXPECT_FALSE(queue.PromoteIfSooner(100, 1));
  EXPECT_EQ(queue.size(), 13u);
}

TEST(WeightedFairQueueTest, CloseDrainsThenReturnsFalse) {
  WeightedFairQueue<int> queue(8, {2.0, 1.0});
  ASSERT_TRUE(queue.TryPush(10, 0));
  ASSERT_TRUE(queue.TryPush(20, 1));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(30, 0));  // closed rejects pushes
  int out = 0;
  EXPECT_TRUE(queue.Pop(out));  // queued items still drain
  EXPECT_TRUE(queue.Pop(out));
  EXPECT_FALSE(queue.Pop(out));  // drained + closed
}

TEST(WeightedFairQueueTest, PopUnblocksOnConcurrentPush) {
  WeightedFairQueue<int> queue(4, {1.0, 3.0});
  std::thread producer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.TryPush(7, 1);
  });
  int out = 0;
  EXPECT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 7);
  producer.join();
}

TEST(EnvTest, ParsesAndDefaults) {
  ::setenv("RESACC_TEST_ENV_D", "2.5", 1);
  ::setenv("RESACC_TEST_ENV_I", "42", 1);
  ::setenv("RESACC_TEST_ENV_BAD", "oops", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("RESACC_TEST_ENV_D", 1.0), 2.5);
  EXPECT_EQ(GetEnvInt("RESACC_TEST_ENV_I", 7), 42);
  EXPECT_EQ(GetEnvInt("RESACC_TEST_ENV_BAD", 7), 7);
  EXPECT_EQ(GetEnvInt("RESACC_TEST_ENV_UNSET", 9), 9);
  EXPECT_EQ(GetEnvString("RESACC_TEST_ENV_UNSET", "dft"), "dft");
}

}  // namespace
}  // namespace resacc

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "resacc/graph/datasets.h"
#include "resacc/graph/generators.h"
#include "resacc/graph/graph.h"
#include "resacc/graph/graph_builder.h"
#include "resacc/graph/graph_io.h"
#include "resacc/graph/hop_layers.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

using ::resacc::testing::Figure1Graph;
using ::resacc::testing::FromEdges;

TEST(GraphBuilderTest, BuildsCsrWithSortedNeighbors) {
  const Graph g = FromEdges(4, {{2, 1}, {0, 3}, {0, 1}, {2, 0}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  ASSERT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutNeighbors(0)[0], 1u);
  EXPECT_EQ(g.OutNeighbors(0)[1], 3u);
  EXPECT_EQ(g.InDegree(1), 2u);
  EXPECT_EQ(g.InNeighbors(1)[0], 0u);
  EXPECT_EQ(g.InNeighbors(1)[1], 2u);
}

TEST(GraphBuilderTest, DropsSelfLoopsAndDuplicates) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 1);  // self loop
  builder.AddEdge(1, 2);
  const Graph g = std::move(builder).Build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(1), 1u);
}

TEST(GraphBuilderTest, SymmetrizeAddsBothDirections) {
  GraphBuilder builder(3, /*symmetrize=*/true);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  const Graph g = std::move(builder).Build();
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 1));
}

TEST(GraphTest, InOutDegreeSumsMatchEdges) {
  const Graph g = Figure1Graph();
  EdgeId out_sum = 0;
  EdgeId in_sum = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out_sum += g.OutDegree(v);
    in_sum += g.InDegree(v);
  }
  EXPECT_EQ(out_sum, g.num_edges());
  EXPECT_EQ(in_sum, g.num_edges());
}

TEST(GraphTest, HasEdgeAndMaxDegree) {
  const Graph g = Figure1Graph();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_EQ(g.MaxOutDegree(), 2u);
  EXPECT_EQ(g.NodesByOutDegreeDesc()[0], 0u);
}

TEST(GraphTest, MemoryBytesPositive) {
  EXPECT_GT(Figure1Graph().MemoryBytes(), 0u);
}

TEST(GraphIoTest, RoundTripsEdgeList) {
  const Graph g = Figure1Graph();
  const std::string path = ::testing::TempDir() + "/resacc_io_test.txt";
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  const StatusOr<Graph> loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.value().num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(loaded.value().OutDegree(v), g.OutDegree(v));
  }
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileIsNotFound) {
  const StatusOr<Graph> result = LoadEdgeList("/nonexistent/path/graph.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(GraphIoTest, MalformedLineIsInvalidArgument) {
  const std::string path = ::testing::TempDir() + "/resacc_io_bad.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "# comment\n0 1\nnot numbers\n");
  std::fclose(f);
  const StatusOr<Graph> result = LoadEdgeList(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(HopLayersTest, LayersOfFigure1) {
  const Graph g = Figure1Graph();
  const HopLayers layers = ComputeHopLayers(g, NodeId{0}, 3);
  ASSERT_EQ(layers.layers.size(), 4u);
  EXPECT_EQ(layers.layers[0], std::vector<NodeId>{0});
  EXPECT_EQ(layers.layers[1].size(), 2u);  // v2, v3
  EXPECT_EQ(layers.layers[2], std::vector<NodeId>{3});
  EXPECT_TRUE(layers.layers[3].empty());
  EXPECT_EQ(layers.distance[0], 0u);
  EXPECT_EQ(layers.distance[3], 2u);
  EXPECT_EQ(layers.HopSetSize(1), 3u);
  EXPECT_TRUE(layers.InHopSet(1, 1));
  EXPECT_FALSE(layers.InHopSet(3, 1));
}

TEST(HopLayersTest, TruncationLeavesUnreached) {
  const Graph g = testing::CycleGraph(10);
  const HopLayers layers = ComputeHopLayers(g, NodeId{0}, 3);
  EXPECT_EQ(layers.distance[4], HopLayers::kUnreached);
  EXPECT_EQ(layers.distance[3], 3u);
}

TEST(HopLayersTest, MultiSourceTakesNearest) {
  const Graph g = testing::CycleGraph(10);
  const HopLayers layers = ComputeHopLayers(g, {NodeId{0}, NodeId{5}}, 2);
  EXPECT_EQ(layers.layers[0].size(), 2u);
  EXPECT_EQ(layers.distance[6], 1u);
  EXPECT_EQ(layers.distance[1], 1u);
  EXPECT_EQ(layers.distance[7], 2u);
}

TEST(DatasetsTest, RegistryIsComplete) {
  EXPECT_EQ(AllDatasets().size(), 8u);
  EXPECT_TRUE(FindDataset("dblp-sim").ok());
  EXPECT_TRUE(FindDataset("twitter-sim").ok());
  EXPECT_FALSE(FindDataset("no-such-dataset").ok());
}

TEST(DatasetsTest, StandInsMatchSpecShape) {
  const DatasetSpec spec = FindDataset("dblp-sim").value();
  const Graph g = MakeDataset(spec, /*scale=*/0.1);
  EXPECT_NEAR(static_cast<double>(g.num_nodes()),
              0.1 * static_cast<double>(spec.base_nodes),
              0.1 * static_cast<double>(spec.base_nodes) * 0.05 + 65);
  // Undirected stand-in: in-degree equals out-degree everywhere.
  for (NodeId v = 0; v < g.num_nodes(); v += 97) {
    EXPECT_EQ(g.OutDegree(v), g.InDegree(v));
  }
}

TEST(DatasetsTest, DeterministicAcrossCalls) {
  const DatasetSpec spec = FindDataset("webstan-sim").value();
  const Graph a = MakeDataset(spec, 0.05, 7);
  const Graph b = MakeDataset(spec, 0.05, 7);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); v += 131) {
    ASSERT_EQ(a.OutDegree(v), b.OutDegree(v));
  }
}

}  // namespace
}  // namespace resacc

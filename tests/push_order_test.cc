#include <tuple>

#include <gtest/gtest.h>

#include "resacc/core/forward_push.h"
#include "resacc/core/push_state.h"
#include "resacc/graph/generators.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

RwrConfig TestConfig(DanglingPolicy policy) {
  RwrConfig config;
  config.alpha = 0.2;
  config.dangling = policy;
  return config;
}

class PushOrderTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, DanglingPolicy>> {};

// Both work-list policies must land in the same terminal condition: mass
// conserved, every node below the push threshold. (The *values* differ —
// push results depend on processing order — but both satisfy the same
// invariant, which is all the algorithms rely on.)
TEST_P(PushOrderTest, BothOrdersReachQuiescence) {
  const auto [seed, policy] = GetParam();
  const Graph g = ChungLuPowerLaw(300, 1800, 2.2, seed);
  const RwrConfig config = TestConfig(policy);
  const Score r_max = 1e-6;

  for (PushOrder order : {PushOrder::kFifo, PushOrder::kMaxResidueFirst}) {
    PushState state(g.num_nodes());
    state.SetResidue(0, 1.0);
    const NodeId seeds[] = {NodeId{0}};
    RunForwardSearch(g, config, 0, r_max, seeds,
                     /*push_seeds_unconditionally=*/false, state, order);
    EXPECT_NEAR(state.ReserveSum() + state.ResidueSum(), 1.0, 1e-12);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_FALSE(SatisfiesPushCondition(g, state, v, r_max))
          << "order=" << static_cast<int>(order) << " node " << v;
    }
  }
}

// Documented negative result (see PushOrder in forward_push.h): a strict
// max-residue-first discipline is *worse* than FIFO on these graphs —
// FIFO's level-synchronous wavefronts let a node collect from its whole
// in-frontier before being popped, while the greedy heap re-pushes hub
// nodes repeatedly. This test pins the measured relationship so a future
// "optimization" to max-first gets flagged.
TEST_P(PushOrderTest, FifoPushesNoMoreThanMaxFirst) {
  const auto [seed, policy] = GetParam();
  const Graph g = ChungLuPowerLaw(400, 2400, 2.2, seed);
  const RwrConfig config = TestConfig(policy);
  const Score r_max = 1e-7;
  const NodeId seeds[] = {NodeId{0}};

  PushState fifo_state(g.num_nodes());
  fifo_state.SetResidue(0, 1.0);
  const PushStats fifo = RunForwardSearch(g, config, 0, r_max, seeds, false,
                                          fifo_state, PushOrder::kFifo);

  PushState max_state(g.num_nodes());
  max_state.SetResidue(0, 1.0);
  const PushStats max_first = RunForwardSearch(
      g, config, 0, r_max, seeds, false, max_state,
      PushOrder::kMaxResidueFirst);

  EXPECT_LE(fifo.push_operations, max_first.push_operations);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PushOrderTest,
    ::testing::Combine(::testing::Values(2u, 19u, 77u),
                       ::testing::Values(DanglingPolicy::kAbsorb,
                                         DanglingPolicy::kBackToSource)));

TEST(PushOrderTest, SeedsPushedUnconditionallyInMaxFirstMode) {
  // A seed far below the threshold must still be pushed exactly once.
  const Graph g = testing::CycleGraph(6);
  const RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);
  PushState state(g.num_nodes());
  state.SetResidue(2, 1e-9);
  const NodeId seeds[] = {NodeId{2}};
  const PushStats stats = RunForwardSearch(
      g, config, 0, /*r_max=*/1.0, seeds,
      /*push_seeds_unconditionally=*/true, state,
      PushOrder::kMaxResidueFirst);
  EXPECT_EQ(stats.push_operations, 1u);
  EXPECT_DOUBLE_EQ(state.residue(2), 0.0);
  EXPECT_GT(state.residue(3), 0.0);
}

}  // namespace
}  // namespace resacc

// Edge cases and pathological inputs across modules: tiny graphs, extreme
// parameters, degenerate topologies. Cheap insurance against the corners
// the property sweeps sample past.

#include <cmath>

#include <gtest/gtest.h>

#include "resacc/algo/fora.h"
#include "resacc/algo/inverse.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/algo/particle_filter.h"
#include "resacc/algo/power.h"
#include "resacc/algo/slashburn.h"
#include "resacc/algo/tpa.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/graph/graph_builder.h"
#include "resacc/la/dense_matrix.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

RwrConfig TinyConfig(NodeId n, DanglingPolicy policy) {
  RwrConfig config = RwrConfig::ForGraphSize(n);
  config.dangling = policy;
  config.p_f = 1e-6;
  return config;
}

// Two nodes, one edge, source side: the smallest interesting graph.
TEST(EdgeCasesTest, TwoNodeGraphAllSolvers) {
  const Graph g = testing::FromEdges(2, {{0, 1}});
  for (DanglingPolicy policy :
       {DanglingPolicy::kAbsorb, DanglingPolicy::kBackToSource}) {
    const RwrConfig config = TinyConfig(2, policy);
    ExactInverse oracle(g, config);
    const std::vector<Score> exact = oracle.Query(0);
    // kAbsorb: walk reaches node 1 w.p. (1-alpha) and sticks there.
    if (policy == DanglingPolicy::kAbsorb) {
      EXPECT_NEAR(exact[0], config.alpha, 1e-12);
      EXPECT_NEAR(exact[1], 1.0 - config.alpha, 1e-12);
    }
    PowerIteration power(g, config, 1e-12);
    ResAccSolver resacc(g, config, ResAccOptions{});
    const std::vector<Score> via_power = power.Query(0);
    const std::vector<Score> via_resacc = resacc.Query(0);
    for (NodeId v = 0; v < 2; ++v) {
      EXPECT_NEAR(via_power[v], exact[v], 1e-9);
      EXPECT_NEAR(via_resacc[v], exact[v], 0.05);
    }
  }
}

// A source with no out-edges: pi(s, .) = e_s under kAbsorb; under
// kBackToSource the walk restarts into itself forever, so also e_s.
TEST(EdgeCasesTest, IsolatedSourceIsItsOwnDistribution) {
  const Graph g = testing::FromEdges(3, {{1, 2}});
  for (DanglingPolicy policy :
       {DanglingPolicy::kAbsorb, DanglingPolicy::kBackToSource}) {
    const RwrConfig config = TinyConfig(3, policy);
    PowerIteration power(g, config, 1e-12);
    const std::vector<Score> scores = power.Query(0);
    EXPECT_NEAR(scores[0], 1.0, 1e-9);
    EXPECT_NEAR(scores[1], 0.0, 1e-9);

    ResAccSolver resacc(g, config, ResAccOptions{});
    const std::vector<Score> via_resacc = resacc.Query(0);
    EXPECT_NEAR(via_resacc[0], 1.0, 1e-9);
  }
}

// Extreme alpha values.
TEST(EdgeCasesTest, AlphaNearOneTerminatesImmediately) {
  const Graph g = testing::CycleGraph(10);
  RwrConfig config = TinyConfig(10, DanglingPolicy::kAbsorb);
  config.alpha = 0.999;
  ResAccSolver resacc(g, config, ResAccOptions{});
  const std::vector<Score> scores = resacc.Query(0);
  EXPECT_GT(scores[0], 0.99);
}

TEST(EdgeCasesTest, AlphaNearZeroStillConverges) {
  const Graph g = testing::CycleGraph(10);
  RwrConfig config = TinyConfig(10, DanglingPolicy::kAbsorb);
  config.alpha = 0.01;
  PowerIteration power(g, config, 1e-10);
  const std::vector<Score> exact = power.Query(0);
  // Nearly uniform on a cycle.
  for (NodeId v = 0; v < 10; ++v) EXPECT_NEAR(exact[v], 0.1, 0.05);

  ResAccSolver resacc(g, config, ResAccOptions{});
  const std::vector<Score> scores = resacc.Query(0);
  Score total = 0.0;
  for (Score s : scores) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// Complete bipartite-ish star queried from a leaf: one hop to the hub,
// then fan-out; exercises h-HopFWD layers of very different sizes.
TEST(EdgeCasesTest, StarFromLeaf) {
  const Graph g = testing::StarGraph(50);
  const RwrConfig config = TinyConfig(51, DanglingPolicy::kAbsorb);
  ExactInverse oracle(g, config);
  const std::vector<Score> exact = oracle.Query(1);
  ResAccSolver resacc(g, config, ResAccOptions{});
  const std::vector<Score> scores = resacc.Query(1);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (exact[v] > config.delta) {
      EXPECT_LE(std::abs(scores[v] - exact[v]) / exact[v], config.epsilon);
    }
  }
}

// All-sink graph except the source: every walk ends at distance <= 1.
TEST(EdgeCasesTest, AllNeighborsAreSinks) {
  GraphBuilder builder(5);
  for (NodeId v = 1; v < 5; ++v) builder.AddEdge(0, v);
  const Graph g = std::move(builder).Build();
  const RwrConfig config = TinyConfig(5, DanglingPolicy::kAbsorb);
  ResAccSolver resacc(g, config, ResAccOptions{});
  const std::vector<Score> scores = resacc.Query(0);
  EXPECT_NEAR(scores[0], config.alpha, 0.02);
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_NEAR(scores[v], (1.0 - config.alpha) / 4.0, 0.02);
  }
}

TEST(EdgeCasesTest, MonteCarloOnSinkOnlyNeighborhood) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  const Graph g = std::move(builder).Build();
  const RwrConfig config = TinyConfig(3, DanglingPolicy::kBackToSource);
  MonteCarlo mc(g, config);
  const std::vector<Score> scores = mc.Query(0);
  Score total = 0.0;
  for (Score s : scores) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(EdgeCasesTest, ParticleFilterTinyWalkBudget) {
  const Graph g = testing::CycleGraph(20);
  const RwrConfig config = TinyConfig(20, DanglingPolicy::kAbsorb);
  ParticleFilterOptions options;
  options.total_walks = 10.0;  // fewer walks than nodes
  options.w_min = 100.0;       // everything quantizes away instantly
  ParticleFilter pf(g, config, options);
  const std::vector<Score> scores = pf.Query(0);
  // Degenerate but sane: mass in [0, 1], source keeps its alpha share.
  Score total = 0.0;
  for (Score s : scores) total += s;
  EXPECT_GE(total, 0.0);
  EXPECT_LE(total, 1.0 + 1e-12);
}

TEST(EdgeCasesTest, TpaOneHopNearField) {
  const Graph g = testing::CycleGraph(30);
  const RwrConfig config = TinyConfig(30, DanglingPolicy::kAbsorb);
  TpaOptions options;
  options.near_hops = 1;
  Tpa tpa(g, config, options);
  ASSERT_TRUE(tpa.BuildIndex().ok());
  const std::vector<Score> scores = tpa.Query(0);
  Score total = 0.0;
  for (Score s : scores) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(EdgeCasesTest, SlashBurnOnTinyGraphs) {
  const SlashBurnResult one = RunSlashBurn(testing::CycleGraph(3), 1, 1);
  std::size_t covered = one.hubs.size() + one.num_spoke_nodes();
  EXPECT_EQ(covered, 3u);

  const SlashBurnResult star = RunSlashBurn(testing::StarGraph(5), 1, 2);
  covered = star.hubs.size() + star.num_spoke_nodes();
  EXPECT_EQ(covered, 6u);
  EXPECT_EQ(star.hubs[0], 0u);  // the hub goes first
}

TEST(EdgeCasesTest, LuOneByOne) {
  DenseMatrix a(1, 1);
  a.At(0, 0) = 4.0;
  const LuDecomposition lu(std::move(a));
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu.Solve({8.0})[0], 2.0, 1e-15);
}

TEST(EdgeCasesTest, ForaWithCustomRMax) {
  const Graph g = testing::CycleGraph(50);
  const RwrConfig config = TinyConfig(50, DanglingPolicy::kAbsorb);
  ForaOptions options;
  options.r_max = 0.5;  // push phase does almost nothing; walks carry it
  Fora fora(g, config, options);
  const std::vector<Score> scores = fora.Query(0);
  PowerIteration power(g, config, 1e-12);
  const std::vector<Score> exact = power.Query(0);
  for (NodeId v = 0; v < 50; ++v) {
    if (exact[v] > config.delta) {
      EXPECT_LE(std::abs(scores[v] - exact[v]) / exact[v], config.epsilon)
          << "node " << v;
    }
  }
}

}  // namespace
}  // namespace resacc

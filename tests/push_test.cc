#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "resacc/algo/inverse.h"
#include "resacc/core/backward_push.h"
#include "resacc/core/forward_push.h"
#include "resacc/core/push_state.h"
#include "resacc/graph/generators.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

using ::resacc::testing::Figure1Graph;

RwrConfig TestConfig(DanglingPolicy policy = DanglingPolicy::kAbsorb) {
  RwrConfig config;
  config.alpha = 0.2;
  config.dangling = policy;
  return config;
}

TEST(PushStateTest, TouchTrackingAndReset) {
  PushState state(5);
  state.AddResidue(3, 0.5);
  state.AddReserve(1, 0.25);
  EXPECT_EQ(state.touched().size(), 2u);
  EXPECT_DOUBLE_EQ(state.ResidueSum(), 0.5);
  EXPECT_DOUBLE_EQ(state.ReserveSum(), 0.25);
  state.Reset();
  EXPECT_TRUE(state.touched().empty());
  EXPECT_DOUBLE_EQ(state.residue(3), 0.0);
  EXPECT_DOUBLE_EQ(state.reserve(1), 0.0);
}

// Reproduces Figure 1(b): push sequence v1, v2, v3, v2 without residue
// accumulation (alpha = 0.2).
TEST(ForwardPushTest, Figure1WithoutAccumulation) {
  const Graph g = Figure1Graph();
  const RwrConfig config = TestConfig();
  PushState state(4);
  PushStats stats;
  state.SetResidue(0, 1.0);

  ForwardPushAt(g, config, 0, 0, state, stats);  // push v1
  EXPECT_NEAR(state.residue(1), 0.4, 1e-15);
  EXPECT_NEAR(state.residue(2), 0.4, 1e-15);

  ForwardPushAt(g, config, 0, 1, state, stats);  // push v2
  EXPECT_NEAR(state.residue(3), 0.32, 1e-15);

  ForwardPushAt(g, config, 0, 2, state, stats);  // push v3
  EXPECT_NEAR(state.residue(1), 0.32, 1e-15);

  ForwardPushAt(g, config, 0, 1, state, stats);  // push v2 again
  EXPECT_NEAR(state.residue(3), 0.576, 1e-15);
  EXPECT_EQ(stats.push_operations, 4u);
}

// Reproduces Figure 1(c): accumulating v2's residue first saves one push.
TEST(ForwardPushTest, Figure1WithAccumulation) {
  const Graph g = Figure1Graph();
  const RwrConfig config = TestConfig();
  PushState state(4);
  PushStats stats;
  state.SetResidue(0, 1.0);

  ForwardPushAt(g, config, 0, 0, state, stats);  // push v1
  ForwardPushAt(g, config, 0, 2, state, stats);  // push v3 first
  EXPECT_NEAR(state.residue(1), 0.72, 1e-15);    // accumulated at v2

  ForwardPushAt(g, config, 0, 1, state, stats);  // single push at v2
  EXPECT_NEAR(state.residue(3), 0.576, 1e-15);
  EXPECT_EQ(stats.push_operations, 3u);  // 3 pushes instead of 4
}

TEST(ForwardPushTest, ZeroResidueIsNoOp) {
  const Graph g = Figure1Graph();
  const RwrConfig config = TestConfig();
  PushState state(4);
  PushStats stats;
  ForwardPushAt(g, config, 0, 1, state, stats);
  EXPECT_EQ(stats.push_operations, 0u);
}

TEST(ForwardPushTest, DanglingAbsorbConvertsFully) {
  const Graph g = Figure1Graph();  // v4 (id 3) is a sink
  const RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);
  PushState state(4);
  PushStats stats;
  state.SetResidue(3, 0.5);
  ForwardPushAt(g, config, 0, 3, state, stats);
  EXPECT_DOUBLE_EQ(state.reserve(3), 0.5);
  EXPECT_DOUBLE_EQ(state.residue(3), 0.0);
}

TEST(ForwardPushTest, DanglingBackToSourceReturnsMass) {
  const Graph g = Figure1Graph();
  const RwrConfig config = TestConfig(DanglingPolicy::kBackToSource);
  PushState state(4);
  PushStats stats;
  state.SetResidue(3, 0.5);
  ForwardPushAt(g, config, 0, 3, state, stats);
  EXPECT_NEAR(state.reserve(3), 0.1, 1e-15);   // alpha * 0.5
  EXPECT_NEAR(state.residue(0), 0.4, 1e-15);   // (1-alpha) * 0.5 to source
}

class ForwardSearchPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, DanglingPolicy>> {};

TEST_P(ForwardSearchPropertyTest, ConservesMassAndMeetsThreshold) {
  const auto [seed, policy] = GetParam();
  const Graph g = ErdosRenyi(300, 1200, seed);
  const RwrConfig config = TestConfig(policy);
  const Score r_max = 1e-5;

  PushState state(g.num_nodes());
  state.SetResidue(0, 1.0);
  const NodeId seeds[] = {NodeId{0}};
  RunForwardSearch(g, config, 0, r_max, seeds,
                   /*push_seeds_unconditionally=*/false, state);

  // Mass conservation: every push moves mass, never creates or destroys it.
  EXPECT_NEAR(state.ReserveSum() + state.ResidueSum(), 1.0, 1e-12);

  // Push condition exhausted everywhere.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_FALSE(SatisfiesPushCondition(g, state, v, r_max)) << "node " << v;
  }
}

TEST_P(ForwardSearchPropertyTest, InvariantAgainstExactScores) {
  const auto [seed, policy] = GetParam();
  if (policy == DanglingPolicy::kBackToSource) {
    // Equation (2) needs pi(v, .) in the chain anchored at the query
    // source; ExactInverse::Query(v) anchors at v, so the identity is only
    // directly checkable under kAbsorb (source-independent chain).
    GTEST_SKIP();
  }
  const Graph g = ErdosRenyi(60, 240, seed);
  const RwrConfig config = TestConfig(policy);

  PushState state(g.num_nodes());
  state.SetResidue(0, 1.0);
  const NodeId seeds[] = {NodeId{0}};
  RunForwardSearch(g, config, 0, /*r_max=*/1e-3, seeds, false, state);

  ExactInverse oracle(g, config);
  const std::vector<Score> exact = oracle.Query(0);

  // pi(s,t) = reserve(t) + sum_v residue(v) * pi(v,t)  (Equation 2).
  std::vector<Score> reconstructed(g.num_nodes(), 0.0);
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    reconstructed[t] = state.reserve(t);
  }
  for (NodeId v : state.touched()) {
    const Score residue = state.residue(v);
    if (residue <= 0.0) continue;
    const std::vector<Score> from_v = oracle.Query(v);
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      reconstructed[t] += residue * from_v[t];
    }
  }
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    EXPECT_NEAR(reconstructed[t], exact[t], 1e-9) << "node " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ForwardSearchPropertyTest,
    ::testing::Combine(::testing::Values(1u, 7u, 123u),
                       ::testing::Values(DanglingPolicy::kAbsorb,
                                         DanglingPolicy::kBackToSource)));

TEST(BackwardPushTest, InvariantAgainstExactScoresWithSink) {
  // Figure 1's graph has a sink (v4), exercising the dedicated sink rule.
  const Graph g = Figure1Graph();
  const RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);
  ExactInverse oracle(g, config);

  for (NodeId target = 0; target < g.num_nodes(); ++target) {
    PushState state(g.num_nodes());
    RunBackwardSearch(g, config, target, /*r_max=*/1e-4, state);
    for (NodeId s = 0; s < g.num_nodes(); ++s) {
      const std::vector<Score> from_s = oracle.Query(s);
      Score reconstructed = state.reserve(s);
      for (NodeId v : state.touched()) {
        reconstructed += state.residue(v) * from_s[v];
      }
      EXPECT_NEAR(reconstructed, from_s[target], 1e-9)
          << "s=" << s << " t=" << target;
    }
  }
}

TEST(BackwardPushTest, ReservesApproximateColumnOfExact) {
  const Graph g = ErdosRenyi(80, 400, 11);
  const RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);
  ExactInverse oracle(g, config);
  const NodeId target = 5;

  PushState state(g.num_nodes());
  RunBackwardSearch(g, config, target, /*r_max=*/1e-8, state);
  for (NodeId s = 0; s < g.num_nodes(); s += 7) {
    const std::vector<Score> from_s = oracle.Query(s);
    // With a tiny r_max the residues are negligible; reserve(s) ~ pi(s,t).
    EXPECT_NEAR(state.reserve(s), from_s[target], 1e-5);
  }
}

}  // namespace
}  // namespace resacc

#ifndef RESACC_TESTS_TEST_GRAPHS_H_
#define RESACC_TESTS_TEST_GRAPHS_H_

#include <utility>
#include <vector>

#include "resacc/graph/graph.h"
#include "resacc/graph/graph_builder.h"

namespace resacc::testing {

// The running-example graph of the paper's Figure 1:
//   v1 -> v2, v1 -> v3, v2 -> v4, v3 -> v2; v4 is a sink.
// Node ids: v1=0, v2=1, v3=2, v4=3.
inline Graph Figure1Graph() {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 3);
  builder.AddEdge(2, 1);
  return std::move(builder).Build();
}

// The looping-phenomenon graph of Figure 3: the directed triangle
// s -> v1 -> v2 -> s. Node ids: s=0, v1=1, v2=2.
inline Graph Figure3Graph() {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  return std::move(builder).Build();
}

// Directed cycle of n nodes.
inline Graph CycleGraph(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) builder.AddEdge(v, (v + 1) % n);
  return std::move(builder).Build();
}

// Star: hub 0 <-> each leaf (symmetrized).
inline Graph StarGraph(NodeId leaves) {
  GraphBuilder builder(leaves + 1, /*symmetrize=*/true);
  for (NodeId leaf = 1; leaf <= leaves; ++leaf) builder.AddEdge(0, leaf);
  return std::move(builder).Build();
}

// Explicit edge list helper.
inline Graph FromEdges(NodeId n,
                       const std::vector<std::pair<NodeId, NodeId>>& edges,
                       bool symmetrize = false) {
  GraphBuilder builder(n, symmetrize);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return std::move(builder).Build();
}

}  // namespace resacc::testing

#endif  // RESACC_TESTS_TEST_GRAPHS_H_

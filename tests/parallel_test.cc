#include <atomic>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "resacc/core/parallel_msrwr.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/sources.h"
#include "resacc/graph/generators.h"
#include "resacc/util/thread_pool.h"

namespace resacc {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(pool, hits.size(),
              [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 250);
}

TEST(ThreadPoolTest, ParallelForChunkedUnevenRange) {
  // Count >> threads and not divisible: the chunked ParallelFor must still
  // cover every index exactly once.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1237);
  ParallelFor(pool, hits.size(),
              [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroCount) {
  ThreadPool pool(2);
  ParallelFor(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
  SUCCEED();
}

TEST(ThreadPoolTest, SubmitDuringDrain) {
  // Tasks submit follow-up work while the main thread sits in Wait():
  // Wait must not return until the transitively-submitted tasks finish.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&pool, &counter] {
      pool.Submit([&pool, &counter] {
        pool.Submit([&counter] { counter.fetch_add(1); });
        counter.fetch_add(1);
      });
      counter.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 64 * 3);
}

TEST(ThreadPoolTest, WaitThenReuseRepeatedly) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 100; ++round) {
    pool.Submit([&counter] { counter.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(counter.load(), round + 1);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  // Destruction with a backlog must run every queued task (shutdown is a
  // drain, not a drop).
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 500);
}

TEST(ParallelMsrwrTest, MatchesSequentialResults) {
  const Graph g = ChungLuPowerLaw(2000, 16000, 2.2, 9);
  RwrConfig config = RwrConfig::ForGraphSize(g.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = 7;
  const std::vector<NodeId> sources = PickUniformSources(g, 12, 3);

  // Sequential reference.
  ResAccSolver reference(g, config, ResAccOptions{});
  const auto expected = reference.QueryMany(sources);

  ThreadPool pool(4);
  const auto actual = ParallelQueryMany(pool, sources, [&] {
    return std::make_unique<ResAccSolver>(g, config, ResAccOptions{});
  });

  // Per-query determinism: the remedy RNG is forked per source, so the
  // parallel run must be bit-identical to the sequential one.
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    for (std::size_t v = 0; v < expected[i].size(); ++v) {
      ASSERT_DOUBLE_EQ(actual[i][v], expected[i][v])
          << "source " << sources[i] << " node " << v;
    }
  }
}

TEST(ParallelMsrwrTest, MoreThreadsThanSources) {
  const Graph g = ChungLuPowerLaw(500, 3000, 2.2, 10);
  RwrConfig config = RwrConfig::ForGraphSize(g.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;
  ThreadPool pool(8);
  const std::vector<NodeId> sources = {1, 2};
  const auto results = ParallelQueryMany(pool, sources, [&] {
    return std::make_unique<ResAccSolver>(g, config, ResAccOptions{});
  });
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].size(), g.num_nodes());
}

TEST(ParallelMsrwrTest, EmptySourcesYieldEmptyResults) {
  const Graph g = ChungLuPowerLaw(100, 500, 2.2, 11);
  RwrConfig config = RwrConfig::ForGraphSize(g.num_nodes());
  ThreadPool pool(2);
  const auto results = ParallelQueryMany(pool, {}, [&] {
    return std::make_unique<ResAccSolver>(g, config, ResAccOptions{});
  });
  EXPECT_TRUE(results.empty());
}

}  // namespace
}  // namespace resacc

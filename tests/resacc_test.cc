#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "resacc/algo/power.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/metrics.h"
#include "resacc/graph/generators.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

RwrConfig AccuracyConfig(NodeId n, DanglingPolicy policy) {
  RwrConfig config;
  config.alpha = 0.2;
  config.epsilon = 0.5;
  config.delta = 1.0 / static_cast<double>(n);
  config.p_f = 1e-7;  // tight enough that no node should fail w.h.p.
  config.dangling = policy;
  config.seed = 0xabcdef;
  return config;
}

enum class GraphKind { kErdosRenyi, kChungLu, kBarabasiAlbert, kFigure1 };

Graph MakeGraph(GraphKind kind) {
  switch (kind) {
    case GraphKind::kErdosRenyi:
      return ErdosRenyi(300, 1800, 21);
    case GraphKind::kChungLu:
      return ChungLuPowerLaw(400, 2400, 2.2, 22);
    case GraphKind::kBarabasiAlbert:
      return BarabasiAlbert(300, 3, 23);
    case GraphKind::kFigure1:
      return testing::Figure1Graph();
  }
  return Graph();
}

class ResAccAccuracyTest
    : public ::testing::TestWithParam<std::tuple<GraphKind, DanglingPolicy>> {};

TEST_P(ResAccAccuracyTest, MeetsRelativeErrorGuarantee) {
  const auto [kind, policy] = GetParam();
  const Graph g = MakeGraph(kind);
  const RwrConfig config = AccuracyConfig(g.num_nodes(), policy);

  ResAccOptions options;
  options.num_hops = 2;
  ResAccSolver solver(g, config, options);

  NodeId source = 0;
  while (g.OutDegree(source) == 0) ++source;
  const std::vector<Score> estimate = solver.Query(source);

  PowerIteration power(g, config, /*tolerance=*/1e-12);
  const std::vector<Score> exact = power.Query(source);

  EXPECT_LE(MaxRelativeErrorAboveDelta(estimate, exact, config.delta),
            config.epsilon);

  // Scores are a probability distribution: the remedy phase redistributes
  // residues without creating or destroying mass.
  Score total = 0.0;
  for (Score s : estimate) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    GraphsAndPolicies, ResAccAccuracyTest,
    ::testing::Combine(::testing::Values(GraphKind::kErdosRenyi,
                                         GraphKind::kChungLu,
                                         GraphKind::kBarabasiAlbert,
                                         GraphKind::kFigure1),
                       ::testing::Values(DanglingPolicy::kAbsorb,
                                         DanglingPolicy::kBackToSource)));

class ResAccAblationTest : public ::testing::TestWithParam<int> {};

// Every ablation variant (Appendix K) must still satisfy the guarantee —
// the tricks are about speed, not correctness.
TEST_P(ResAccAblationTest, VariantsStayAccurate) {
  const int variant = GetParam();
  const Graph g = ChungLuPowerLaw(400, 2400, 2.2, 31);
  const RwrConfig config =
      AccuracyConfig(g.num_nodes(), DanglingPolicy::kBackToSource);

  ResAccOptions options;
  options.num_hops = 2;
  std::string expected_name = "ResAcc";
  if (variant == 1) {
    options.use_loop_accumulation = false;
    expected_name = "No-Loop-ResAcc";
  } else if (variant == 2) {
    options.use_hop_subgraph = false;
    expected_name = "No-SG-ResAcc";
  } else if (variant == 3) {
    options.use_omfwd = false;
    expected_name = "No-OFD-ResAcc";
  }
  ResAccSolver solver(g, config, options);
  EXPECT_EQ(solver.name(), expected_name);

  NodeId source = 0;
  while (g.OutDegree(source) == 0) ++source;
  const std::vector<Score> estimate = solver.Query(source);

  PowerIteration power(g, config, 1e-12);
  const std::vector<Score> exact = power.Query(source);
  EXPECT_LE(MaxRelativeErrorAboveDelta(estimate, exact, config.delta),
            config.epsilon);
}

INSTANTIATE_TEST_SUITE_P(Variants, ResAccAblationTest,
                         ::testing::Values(0, 1, 2, 3));

TEST(ResAccSolverTest, DeterministicForSameSeed) {
  const Graph g = ErdosRenyi(200, 1000, 41);
  const RwrConfig config =
      AccuracyConfig(g.num_nodes(), DanglingPolicy::kBackToSource);
  ResAccSolver a(g, config, {});
  ResAccSolver b(g, config, {});
  const std::vector<Score> ra = a.Query(0);
  const std::vector<Score> rb = b.Query(0);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ASSERT_DOUBLE_EQ(ra[i], rb[i]) << "node " << i;
  }
}

TEST(ResAccSolverTest, RepeatedQueriesAreIndependent) {
  // Workspace reuse across queries must not leak state.
  const Graph g = ErdosRenyi(200, 1000, 43);
  const RwrConfig config =
      AccuracyConfig(g.num_nodes(), DanglingPolicy::kBackToSource);
  ResAccSolver solver(g, config, {});
  const std::vector<Score> first = solver.Query(0);
  solver.Query(5);  // interleave another source
  ResAccSolver fresh(g, config, {});
  const std::vector<Score> again = fresh.Query(0);
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_DOUBLE_EQ(first[i], again[i]) << "node " << i;
  }
}

TEST(ResAccSolverTest, StatsArePopulated) {
  const Graph g = ChungLuPowerLaw(500, 3000, 2.2, 51);
  const RwrConfig config =
      AccuracyConfig(g.num_nodes(), DanglingPolicy::kBackToSource);
  ResAccSolver solver(g, config, {});
  NodeId source = 0;
  while (g.OutDegree(source) == 0) ++source;
  solver.Query(source);

  const ResAccQueryStats& stats = solver.last_stats();
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GE(stats.hhop_seconds, 0.0);
  EXPECT_GT(stats.hhop.push.push_operations, 0u);
  EXPECT_GE(stats.hhop.rho, 0.0);
  EXPECT_LT(stats.hhop.rho, 1.0);
  EXPECT_GT(stats.hhop.hop_set_size, 0u);
  EXPECT_GT(stats.remedy.walks, 0u);
  // OMFWD further reduced the residue sum fed to the remedy phase.
  EXPECT_LE(stats.remedy.residue_sum, 1.0);
  EXPECT_DOUBLE_EQ(stats.remedy.residue_sum, stats.residue_sum_after_omfwd);
}

TEST(ResAccSolverTest, EffectiveRMaxFDefault) {
  const Graph g = ErdosRenyi(100, 500, 3);
  const RwrConfig config =
      AccuracyConfig(g.num_nodes(), DanglingPolicy::kBackToSource);
  ResAccSolver solver(g, config, {});
  EXPECT_NEAR(solver.effective_r_max_f(),
              1.0 / (10.0 * static_cast<double>(g.num_edges())), 1e-18);
}

TEST(ResAccSolverTest, QueryManyMatchesIndividualQueries) {
  const Graph g = ErdosRenyi(150, 900, 13);
  const RwrConfig config =
      AccuracyConfig(g.num_nodes(), DanglingPolicy::kBackToSource);
  ResAccSolver solver(g, config, {});
  const std::vector<NodeId> sources = {1, 5, 9};
  const auto many = solver.QueryMany(sources);
  ASSERT_EQ(many.size(), 3u);

  ResAccSolver fresh(g, config, {});
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const std::vector<Score> single = fresh.Query(sources[i]);
    for (std::size_t v = 0; v < single.size(); ++v) {
      ASSERT_DOUBLE_EQ(many[i][v], single[v]);
    }
  }
}

TEST(ResAccSolverTest, WalkScaleZeroSkipsRemedy) {
  const Graph g = ErdosRenyi(200, 1200, 15);
  const RwrConfig config =
      AccuracyConfig(g.num_nodes(), DanglingPolicy::kBackToSource);
  ResAccOptions options;
  options.walk_scale = 1e-12;  // effectively no walks beyond one per node
  ResAccSolver solver(g, config, options);
  const std::vector<Score> scores = solver.Query(0);
  // Still a valid distribution (remedy deposits whole residues).
  Score total = 0.0;
  for (Score s : scores) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace resacc

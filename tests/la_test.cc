#include <cmath>

#include <gtest/gtest.h>

#include "resacc/la/dense_matrix.h"
#include "resacc/la/sparse_matrix.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

TEST(DenseMatrixTest, IdentityAndMultiply) {
  const DenseMatrix eye = DenseMatrix::Identity(3);
  const std::vector<double> x = {1.0, 2.0, 3.0};
  EXPECT_EQ(eye.MultiplyVector(x), x);

  DenseMatrix a(2, 3);
  a.At(0, 0) = 1;
  a.At(0, 2) = 2;
  a.At(1, 1) = -1;
  const std::vector<double> y = a.MultiplyVector(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(DenseMatrixTest, MatrixMultiply) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  const DenseMatrix square = a.Multiply(a);
  EXPECT_DOUBLE_EQ(square.At(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(square.At(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(square.At(1, 0), 15.0);
  EXPECT_DOUBLE_EQ(square.At(1, 1), 22.0);
}

TEST(LuDecompositionTest, SolvesKnownSystem) {
  DenseMatrix a(3, 3);
  const double values[3][3] = {{2, 1, 1}, {1, 3, 2}, {1, 0, 0}};
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) a.At(r, c) = values[r][c];
  }
  const LuDecomposition lu(std::move(a));
  ASSERT_TRUE(lu.ok());
  // Solution of the system with b = (4, 5, 6): x = (6, 15, -23).
  const std::vector<double> x = lu.Solve({4, 5, 6});
  EXPECT_NEAR(x[0], 6.0, 1e-12);
  EXPECT_NEAR(x[1], 15.0, 1e-12);
  EXPECT_NEAR(x[2], -23.0, 1e-12);
}

TEST(LuDecompositionTest, DetectsSingular) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 2;
  a.At(1, 1) = 4;
  const LuDecomposition lu(std::move(a));
  EXPECT_FALSE(lu.ok());
}

TEST(LuDecompositionTest, InverseTimesMatrixIsIdentity) {
  DenseMatrix a(3, 3);
  const double values[3][3] = {{4, -2, 1}, {3, 6, -4}, {2, 1, 8}};
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) a.At(r, c) = values[r][c];
  }
  DenseMatrix copy = a;
  const LuDecomposition lu(std::move(copy));
  ASSERT_TRUE(lu.ok());
  const DenseMatrix inv = lu.Inverse();
  const DenseMatrix product = a.Multiply(inv);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(product.At(r, c), r == c ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(LuDecompositionTest, NeedsPivoting) {
  // Zero on the initial diagonal forces a row swap.
  DenseMatrix a(2, 2);
  a.At(0, 0) = 0;
  a.At(0, 1) = 1;
  a.At(1, 0) = 1;
  a.At(1, 1) = 0;
  const LuDecomposition lu(std::move(a));
  ASSERT_TRUE(lu.ok());
  const std::vector<double> x = lu.Solve({3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SparseMatrixTest, MultiplyMatchesDense) {
  // 2x3 matrix [[1,0,2],[0,3,0]] in CSR.
  const SparseMatrix m(2, 3, {0, 2, 3}, {0, 2, 1}, {1.0, 2.0, 3.0});
  const std::vector<double> y = m.MultiplyVector({1.0, 2.0, 3.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);

  std::vector<double> acc = {10.0, 10.0};
  m.MultiplyVectorAccumulate({1.0, 2.0, 3.0}, 0.5, acc);
  EXPECT_DOUBLE_EQ(acc[0], 13.5);
  EXPECT_DOUBLE_EQ(acc[1], 13.0);
}

TEST(SparseMatrixTest, TransposeRoundTrip) {
  const SparseMatrix m(2, 3, {0, 2, 3}, {0, 2, 1}, {1.0, 2.0, 3.0});
  const SparseMatrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.nnz(), 3u);
  const SparseMatrix round = t.Transpose();
  const std::vector<double> x = {1.0, -1.0, 0.5};
  EXPECT_EQ(round.MultiplyVector(x), m.MultiplyVector(x));
}

TEST(TransitionMatrixTest, RowsAreStochastic) {
  const Graph g = testing::Figure1Graph();
  const SparseMatrix p = TransitionMatrix(g);
  // Row v1 has two 0.5 entries; sink row v4 is empty.
  const std::vector<double> ones(4, 1.0);
  const std::vector<double> row_sums = p.MultiplyVector(ones);
  EXPECT_DOUBLE_EQ(row_sums[0], 1.0);
  EXPECT_DOUBLE_EQ(row_sums[1], 1.0);
  EXPECT_DOUBLE_EQ(row_sums[2], 1.0);
  EXPECT_DOUBLE_EQ(row_sums[3], 0.0);
}

TEST(TransitionMatrixTest, TransposeAgreesWithExplicitTranspose) {
  const Graph g = testing::Figure1Graph();
  const SparseMatrix pt_direct = TransitionMatrixTranspose(g);
  const SparseMatrix pt_via = TransitionMatrix(g).Transpose();
  const std::vector<double> x = {0.1, 0.2, 0.3, 0.4};
  const std::vector<double> a = pt_direct.MultiplyVector(x);
  const std::vector<double> b = pt_via.MultiplyVector(x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-15);
}

TEST(SparseMatrixTest, SubBlockExtractsRenumbered) {
  const Graph g = testing::Figure1Graph();
  const SparseMatrix p = TransitionMatrix(g);
  // Rows/cols {0, 1}: edges v1->v2 (0.5) stays; v1->v3, v2->v4 drop.
  std::vector<NodeId> index_of(4, kInvalidNode);
  index_of[0] = 0;
  index_of[1] = 1;
  const SparseMatrix block = p.SubBlock({0, 1}, index_of);
  EXPECT_EQ(block.rows(), 2u);
  EXPECT_EQ(block.nnz(), 1u);
  const std::vector<double> y = block.MultiplyVector({0.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 0.5);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
}

}  // namespace
}  // namespace resacc

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "resacc/algo/inverse.h"
#include "resacc/core/forward_push.h"
#include "resacc/core/random_walk.h"
#include "resacc/core/remedy.h"
#include "resacc/graph/generators.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

using ::resacc::testing::Figure1Graph;
using ::resacc::testing::Figure3Graph;

RwrConfig TestConfig(DanglingPolicy policy) {
  RwrConfig config;
  config.alpha = 0.2;
  config.dangling = policy;
  config.seed = 2024;
  return config;
}

class WalkDistributionTest
    : public ::testing::TestWithParam<DanglingPolicy> {};

// The empirical terminal distribution of the walk engine must match the
// exact RWR values — this pins the walk semantics to the linear-algebra
// semantics for both dangling policies (Figure 1's graph has a sink).
TEST_P(WalkDistributionTest, TerminalFrequenciesMatchExact) {
  const DanglingPolicy policy = GetParam();
  const Graph g = Figure1Graph();
  const RwrConfig config = TestConfig(policy);
  ExactInverse oracle(g, config);
  const std::vector<Score> exact = oracle.Query(0);

  Rng rng(config.seed);
  WalkStats stats;
  const int walks = 400000;
  std::vector<double> frequency(g.num_nodes(), 0.0);
  for (int i = 0; i < walks; ++i) {
    ++frequency[RandomWalkTerminal(g, config, /*restart_node=*/0,
                                   /*start=*/0, rng, stats)];
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(frequency[v] / walks, exact[v], 0.005) << "node " << v;
  }
  EXPECT_EQ(stats.walks, static_cast<std::uint64_t>(walks));
  EXPECT_GT(stats.steps, 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, WalkDistributionTest,
                         ::testing::Values(DanglingPolicy::kAbsorb,
                                           DanglingPolicy::kBackToSource));

TEST(WalkTest, ExpectedLengthIsOneOverAlpha) {
  // On a cycle (no dangling), steps per walk ~ geometric with mean
  // (1-alpha)/alpha; the expected number of *nodes visited* is 1/alpha.
  const Graph g = testing::CycleGraph(16);
  const RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);
  Rng rng(7);
  WalkStats stats;
  const int walks = 200000;
  for (int i = 0; i < walks; ++i) {
    RandomWalkTerminal(g, config, 0, 0, rng, stats);
  }
  const double mean_steps =
      static_cast<double>(stats.steps) / static_cast<double>(walks);
  EXPECT_NEAR(mean_steps, (1.0 - config.alpha) / config.alpha, 0.05);
}

TEST(RemedyTest, ExactlyRedistributesResidueMass) {
  const Graph g = Figure3Graph();
  const RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);
  PushState state(g.num_nodes());
  state.SetResidue(0, 1.0);
  const NodeId seeds[] = {NodeId{0}};
  RunForwardSearch(g, config, 0, /*r_max=*/0.05, seeds, false, state);
  const Score residue_sum = state.ResidueSum();
  ASSERT_GT(residue_sum, 0.0);

  std::vector<Score> scores(g.num_nodes(), 0.0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) scores[v] = state.reserve(v);
  Rng rng(1);
  const RemedyStats stats = RunRemedy(g, config, 0, state, rng, scores);

  // Each walk deposits residue/n_r(v); n_r(v) walks run, so the total mass
  // added is exactly the residue sum — scores must sum to 1 (tolerance
  // covers float accumulation over millions of tiny deposits).
  Score total = 0.0;
  for (Score s : scores) total += s;
  EXPECT_NEAR(total, 1.0, 1e-8);
  EXPECT_GT(stats.walks, 0u);
  EXPECT_NEAR(stats.residue_sum, residue_sum, 1e-15);
}

TEST(RemedyTest, ProducesAccurateScores) {
  const Graph g = ErdosRenyi(200, 1000, 3);
  RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);
  config.delta = 1.0 / 200.0;
  config.p_f = 1e-6;
  config.epsilon = 0.5;

  PushState state(g.num_nodes());
  state.SetResidue(0, 1.0);
  const NodeId seeds[] = {NodeId{0}};
  RunForwardSearch(g, config, 0, /*r_max=*/1e-4, seeds, false, state);

  std::vector<Score> scores(g.num_nodes(), 0.0);
  for (NodeId v : state.touched()) scores[v] = state.reserve(v);
  Rng rng(9);
  RunRemedy(g, config, 0, state, rng, scores);

  ExactInverse oracle(g, config);
  const std::vector<Score> exact = oracle.Query(0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (exact[v] > config.delta) {
      EXPECT_LE(std::abs(scores[v] - exact[v]) / exact[v], config.epsilon)
          << "node " << v;
    }
  }
}

TEST(RemedyTest, UnbiasedAcrossRuns) {
  const Graph g = Figure3Graph();
  const RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);
  PushState state(g.num_nodes());
  state.SetResidue(0, 1.0);
  const NodeId seeds[] = {NodeId{0}};
  RunForwardSearch(g, config, 0, /*r_max=*/0.2, seeds, false, state);

  ExactInverse oracle(g, config);
  const std::vector<Score> exact = oracle.Query(0);

  // Theorem 1: E[pi_hat] = pi. Average many independent remedy runs with
  // few walks each; the average must converge to the exact values.
  std::vector<double> mean(g.num_nodes(), 0.0);
  const int runs = 4000;
  Rng rng(77);
  for (int run = 0; run < runs; ++run) {
    std::vector<Score> scores(g.num_nodes(), 0.0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) scores[v] = state.reserve(v);
    RunRemedy(g, config, 0, state, rng, scores, /*walk_scale=*/1e-6);
    for (NodeId v = 0; v < g.num_nodes(); ++v) mean[v] += scores[v];
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(mean[v] / runs, exact[v], 0.01) << "node " << v;
  }
}

TEST(RemedyTest, TimeBudgetStopsEarly) {
  const Graph g = ErdosRenyi(500, 2500, 5);
  RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);
  config.delta = 1e-7;  // enormous walk demand
  config.p_f = 1e-9;

  PushState state(g.num_nodes());
  state.SetResidue(0, 1.0);
  const NodeId seeds[] = {NodeId{0}};
  RunForwardSearch(g, config, 0, /*r_max=*/1e-2, seeds, false, state);

  std::vector<Score> scores(g.num_nodes(), 0.0);
  Rng rng(2);
  const RemedyStats stats =
      RunRemedy(g, config, 0, state, rng, scores, 1.0,
                /*time_budget_seconds=*/1e-9);
  EXPECT_TRUE(stats.budget_exhausted);
}

}  // namespace
}  // namespace resacc

#include <gtest/gtest.h>

#include "resacc/core/h_hop_fwd.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/core/rwr_config.h"
#include "resacc/graph/generators.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

TEST(RwrConfigTest, DefaultsAreValid) {
  EXPECT_TRUE(RwrConfig{}.Validate().ok());
  EXPECT_TRUE(RwrConfig::ForGraphSize(1000).Validate().ok());
}

TEST(RwrConfigTest, ForGraphSizeSetsPaperDefaults) {
  const RwrConfig config = RwrConfig::ForGraphSize(1000);
  EXPECT_DOUBLE_EQ(config.delta, 1e-3);
  EXPECT_DOUBLE_EQ(config.p_f, 1e-3);
  EXPECT_DOUBLE_EQ(config.alpha, 0.2);
  EXPECT_DOUBLE_EQ(config.epsilon, 0.5);
}

TEST(RwrConfigTest, RejectsBadParameters) {
  RwrConfig config;
  config.alpha = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = RwrConfig{};
  config.alpha = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = RwrConfig{};
  config.epsilon = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config = RwrConfig{};
  config.delta = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = RwrConfig{};
  config.delta = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = RwrConfig{};
  config.p_f = 1.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(RwrConfigTest, WalkCountCoefficientMatchesTheorem3) {
  RwrConfig config;
  config.epsilon = 0.5;
  config.delta = 0.01;
  config.p_f = 0.001;
  // c = (2*0.5/3 + 2) * ln(2000) / (0.25 * 0.01)
  const double expected =
      (2.0 * 0.5 / 3.0 + 2.0) * std::log(2.0 / 0.001) / (0.25 * 0.01);
  EXPECT_NEAR(config.WalkCountCoefficient(), expected, 1e-9);
}

TEST(AdaptiveHopCapTest, ShrinksEffectiveHopsForHubs) {
  // Star graph: the hub's 1-hop set is the whole graph.
  const Graph g = testing::StarGraph(199);  // 200 nodes
  RwrConfig config = RwrConfig::ForGraphSize(g.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;

  HHopFwdOptions options;
  options.num_hops = 2;
  options.max_hop_set_fraction = 0.10;  // 20 nodes max
  PushState state(g.num_nodes());
  HopLayers layers;
  const HHopFwdStats stats =
      RunHHopFwd(g, config, /*source=*/0, options, state, &layers);

  // 1-hop set = 200 nodes > 20, but the shrink floors at h = 1 (h = 0
  // left a degenerate {source} hop set whose whole mass fell to remedy
  // walks) and flags the floored shrink for the hybrid selector.
  EXPECT_EQ(stats.effective_hops, 1u);
  EXPECT_EQ(stats.hop_set_size, 200u);
  EXPECT_EQ(stats.shrink_hops, 1u);
  EXPECT_TRUE(stats.shrink_floored);
  // The hub's out-edges plus every leaf's edge back: 199 + 199.
  EXPECT_EQ(stats.hop_set_edges, 398u);
  // L_2 is empty on a star (every leaf's neighbour is the hub).
  EXPECT_EQ(stats.frontier_size, 0u);
  EXPECT_EQ(layers.layers.back().size(), 0u);
  EXPECT_NEAR(state.ReserveSum() + state.ResidueSum(), 1.0, 1e-12);
}

TEST(AdaptiveHopCapTest, NoEffectWhenHopSetSmall) {
  const Graph g = testing::CycleGraph(100);
  RwrConfig config = RwrConfig::ForGraphSize(g.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;

  HHopFwdOptions options;
  options.num_hops = 2;
  options.max_hop_set_fraction = 0.10;  // 10 nodes; 2-hop set has 3
  PushState state(g.num_nodes());
  HopLayers layers;
  const HHopFwdStats stats = RunHHopFwd(g, config, 0, options, state, &layers);
  EXPECT_EQ(stats.effective_hops, 2u);
}

TEST(AdaptiveHopCapTest, SolverGuaranteeHoldsWithCap) {
  // A hub-heavy graph queried from its top hub, with the cap active.
  const Graph g = ChungLuPowerLaw(1000, 12000, 2.0, 3);
  RwrConfig config = RwrConfig::ForGraphSize(g.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;
  config.p_f = 1e-7;
  config.seed = 5;

  const NodeId hub = g.NodesByOutDegreeDesc()[0];
  ResAccOptions options;
  options.max_hop_set_fraction = 0.02;
  ResAccSolver solver(g, config, options);
  const std::vector<Score> estimate = solver.Query(hub);
  EXPECT_LT(solver.last_stats().hhop.effective_hops, options.num_hops);

  Score total = 0.0;
  for (Score s : estimate) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace resacc

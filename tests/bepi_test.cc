#include <unordered_set>

#include <gtest/gtest.h>

#include "resacc/algo/bepi.h"
#include "resacc/algo/inverse.h"
#include "resacc/algo/slashburn.h"
#include "resacc/graph/generators.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

RwrConfig Config(DanglingPolicy policy = DanglingPolicy::kAbsorb) {
  RwrConfig config;
  config.alpha = 0.2;
  config.dangling = policy;
  return config;
}

TEST(SlashBurnTest, PartitionsAllNodes) {
  const Graph g = ChungLuPowerLaw(500, 3000, 2.2, 3);
  const SlashBurnResult result = RunSlashBurn(g, 10, 64);

  std::unordered_set<NodeId> seen;
  for (NodeId hub : result.hubs) EXPECT_TRUE(seen.insert(hub).second);
  for (const auto& block : result.spokes) {
    EXPECT_LE(block.size(), 64u);
    for (NodeId v : block) EXPECT_TRUE(seen.insert(v).second);
  }
  EXPECT_EQ(seen.size(), g.num_nodes());
}

TEST(SlashBurnTest, NoEdgesBetweenSpokeBlocks) {
  const Graph g = ChungLuPowerLaw(400, 2400, 2.2, 4);
  const SlashBurnResult result = RunSlashBurn(g, 8, 64);

  std::vector<int> block_of(g.num_nodes(), -1);
  for (std::size_t b = 0; b < result.spokes.size(); ++b) {
    for (NodeId v : result.spokes[b]) block_of[v] = static_cast<int>(b);
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (block_of[u] < 0) continue;  // hub
    for (NodeId v : g.OutNeighbors(u)) {
      if (block_of[v] < 0) continue;
      EXPECT_EQ(block_of[u], block_of[v])
          << "edge " << u << "->" << v << " crosses spoke blocks";
    }
  }
}

TEST(SlashBurnTest, HubsAreHighDegree) {
  const Graph g = ChungLuPowerLaw(500, 4000, 2.1, 5);
  const SlashBurnResult result = RunSlashBurn(g, 5, 64);
  ASSERT_GE(result.hubs.size(), 5u);
  // The very first hub must be the top-degree node (undirected degree).
  std::size_t best = 0;
  NodeId best_node = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::size_t degree = g.OutDegree(v) + g.InDegree(v);
    if (degree > best) {
      best = degree;
      best_node = v;
    }
  }
  EXPECT_EQ(result.hubs[0], best_node);
}

class BePiExactnessTest : public ::testing::TestWithParam<std::uint64_t> {};

// BePI is a direct method: up to floating-point rounding its answers are
// exact, so it must agree with the dense inverse tightly.
TEST_P(BePiExactnessTest, MatchesDenseInverse) {
  const std::uint64_t seed = GetParam();
  const Graph g = ChungLuPowerLaw(250, 1500, 2.2, seed);
  const RwrConfig config = Config();

  BePiOptions options;
  options.hubs_per_iteration = 8;
  options.max_block_size = 48;
  BePi bepi(g, config, options);
  ASSERT_TRUE(bepi.BuildIndex().ok());
  EXPECT_GT(bepi.num_hubs(), 0u);
  EXPECT_GT(bepi.num_blocks(), 0u);
  EXPECT_GT(bepi.IndexBytes(), 0u);

  ExactInverse oracle(g, config);
  for (NodeId s : {NodeId{0}, NodeId{17}, NodeId{123}}) {
    const std::vector<Score> expected = oracle.Query(s);
    const std::vector<Score> actual = bepi.Query(s);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_NEAR(actual[v], expected[v], 1e-9) << "s=" << s << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BePiExactnessTest,
                         ::testing::Values(1u, 2u, 99u));

TEST(BePiTest, WorksOnGraphWithSinks) {
  const Graph g = testing::Figure1Graph();
  const RwrConfig config = Config(DanglingPolicy::kAbsorb);
  BePiOptions options;
  options.hubs_per_iteration = 1;
  options.max_block_size = 2;
  BePi bepi(g, config, options);
  ASSERT_TRUE(bepi.BuildIndex().ok());
  ExactInverse oracle(g, config);
  const std::vector<Score> expected = oracle.Query(0);
  const std::vector<Score> actual = bepi.Query(0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(actual[v], expected[v], 1e-10);
  }
}

TEST(BePiTest, RefusesBackToSourceWithSinks) {
  const Graph g = testing::Figure1Graph();
  BePi bepi(g, Config(DanglingPolicy::kBackToSource), {});
  const Status status = bepi.BuildIndex();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(BePiTest, MemoryBudgetTriggersOom) {
  const Graph g = ChungLuPowerLaw(400, 2400, 2.2, 6);
  BePiOptions options;
  options.memory_budget_bytes = 1024;  // way below the dense Schur factor
  BePi bepi(g, Config(), options);
  const Status status = bepi.BuildIndex();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(bepi.IndexReady());
}

TEST(BePiTest, NoSinksAllowsBackToSource) {
  // On a sink-free graph the two policies coincide; BePI must accept it.
  const Graph g = testing::CycleGraph(40);
  BePi bepi(g, Config(DanglingPolicy::kBackToSource), {});
  ASSERT_TRUE(bepi.BuildIndex().ok());
  ExactInverse oracle(g, Config(DanglingPolicy::kBackToSource));
  const std::vector<Score> expected = oracle.Query(3);
  const std::vector<Score> actual = bepi.Query(3);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(actual[v], expected[v], 1e-10);
  }
}

}  // namespace
}  // namespace resacc

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "resacc/core/resacc_solver.h"
#include "resacc/eval/sources.h"
#include "resacc/graph/generators.h"
#include "resacc/serve/query_service.h"
#include "resacc/serve/result_cache.h"
#include "resacc/serve/workload.h"
#include "resacc/util/bounded_queue.h"
#include "resacc/util/histogram.h"

namespace resacc {
namespace {

RwrConfig TestConfig(const Graph& graph) {
  RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = 7;
  return config;
}

// Lets a test hold a worker hostage on a chosen source, making coalescing
// and queue states deterministic instead of timing-dependent.
class Gate {
 public:
  std::function<void(NodeId)> HookBlocking(NodeId blocked_source) {
    return [this, blocked_source](NodeId source) {
      if (source != blocked_source) return;
      std::unique_lock<std::mutex> lock(mutex_);
      arrived_ = true;
      arrived_cv_.notify_all();
      open_cv_.wait(lock, [this] { return open_; });
    };
  }

  void AwaitArrival() {
    std::unique_lock<std::mutex> lock(mutex_);
    arrived_cv_.wait(lock, [this] { return arrived_; });
  }

  void Open() {
    std::unique_lock<std::mutex> lock(mutex_);
    open_ = true;
    open_cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable arrived_cv_;
  std::condition_variable open_cv_;
  bool arrived_ = false;
  bool open_ = false;
};

// --- BoundedQueue ---------------------------------------------------------

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full: explicit refusal, no block
  int out = 0;
  EXPECT_TRUE(queue.TryPop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.TryPush(3));
}

TEST(BoundedQueueTest, CloseDrainsThenStops) {
  BoundedQueue<int> queue(8);
  queue.TryPush(1);
  queue.TryPush(2);
  queue.Close();
  EXPECT_FALSE(queue.TryPush(3));  // closed
  int out = 0;
  EXPECT_TRUE(queue.Pop(out));  // queued items survive Close
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.Pop(out));  // drained + closed
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> queue(1);
  std::thread producer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.TryPush(42);
  });
  int out = 0;
  EXPECT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 42);
  producer.join();
}

// --- LatencyHistogram -----------------------------------------------------

TEST(LatencyHistogramTest, QuantilesBracketRecordedValues) {
  LatencyHistogram hist;
  for (int i = 1; i <= 100; ++i) hist.Record(i * 1e-3);  // 1ms .. 100ms
  const auto snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, 100u);
  // Bucket resolution is ~8.5%; allow 10% slack around the exact order
  // statistics.
  EXPECT_NEAR(snap.p50, 0.050, 0.050 * 0.10);
  EXPECT_NEAR(snap.p99, 0.099, 0.099 * 0.10);
  EXPECT_NEAR(snap.mean, 0.0505, 1e-4);
  EXPECT_DOUBLE_EQ(snap.max, 0.100);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllCounted) {
  LatencyHistogram hist;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < 1000; ++i) hist.Record(1e-3);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist.count(), 4000u);
}

TEST(LatencyHistogramTest, EmptyAndOutOfRange) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Quantile(0.5), 0.0);
  hist.Record(0.0);      // underflow bucket
  hist.Record(1e9);      // overflow bucket
  EXPECT_EQ(hist.count(), 2u);
  const auto snap = hist.TakeSnapshot();
  EXPECT_GT(snap.p99, 0.0);
}

// --- ResultCache ----------------------------------------------------------

ResultCache::Value MakeScores(std::size_t n, Score fill) {
  return std::make_shared<const std::vector<Score>>(n, fill);
}

TEST(ResultCacheTest, HitAfterInsertMissOtherwise) {
  ResultCache cache(1 << 20, 4);
  const CacheKey a{123, 1};
  const CacheKey b{123, 2};
  EXPECT_EQ(cache.Lookup(a), nullptr);
  cache.Insert(a, MakeScores(10, 0.5));
  const auto hit = cache.Lookup(a);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ((*hit)[0], 0.5);
  EXPECT_EQ(cache.Lookup(b), nullptr);
  const auto counters = cache.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 2u);
  EXPECT_EQ(counters.entries, 1u);
}

TEST(ResultCacheTest, DistinguishesConfigHash) {
  ResultCache cache(1 << 20, 1);
  cache.Insert(CacheKey{111, 5}, MakeScores(4, 1.0));
  EXPECT_EQ(cache.Lookup(CacheKey{222, 5}), nullptr);
  ASSERT_NE(cache.Lookup(CacheKey{111, 5}), nullptr);
}

TEST(ResultCacheTest, EvictsLruUnderByteBudget) {
  // Single shard, budget of exactly 3 vectors of 100 scores.
  const std::size_t entry_bytes = 100 * sizeof(Score);
  ResultCache cache(3 * entry_bytes, 1);
  cache.Insert(CacheKey{9, 0}, MakeScores(100, 0.0));
  cache.Insert(CacheKey{9, 1}, MakeScores(100, 1.0));
  cache.Insert(CacheKey{9, 2}, MakeScores(100, 2.0));
  ASSERT_NE(cache.Lookup(CacheKey{9, 0}), nullptr);  // 0 now MRU
  cache.Insert(CacheKey{9, 3}, MakeScores(100, 3.0));  // evicts 1 (LRU)
  EXPECT_EQ(cache.Lookup(CacheKey{9, 1}), nullptr);
  EXPECT_NE(cache.Lookup(CacheKey{9, 0}), nullptr);
  EXPECT_NE(cache.Lookup(CacheKey{9, 3}), nullptr);
  const auto counters = cache.counters();
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_LE(counters.bytes, 3 * entry_bytes);
}

TEST(ResultCacheTest, HeldValueSurvivesEviction) {
  const std::size_t entry_bytes = 100 * sizeof(Score);
  ResultCache cache(entry_bytes, 1);
  cache.Insert(CacheKey{1, 0}, MakeScores(100, 7.0));
  const auto held = cache.Lookup(CacheKey{1, 0});
  ASSERT_NE(held, nullptr);
  cache.Insert(CacheKey{1, 1}, MakeScores(100, 8.0));  // evicts key 0
  EXPECT_EQ(cache.Lookup(CacheKey{1, 0}), nullptr);
  EXPECT_DOUBLE_EQ((*held)[99], 7.0);  // still valid for the holder
}

TEST(ResultCacheTest, ZeroBudgetDisables) {
  ResultCache cache(0, 4);
  cache.Insert(CacheKey{1, 0}, MakeScores(10, 1.0));
  EXPECT_EQ(cache.Lookup(CacheKey{1, 0}), nullptr);
  EXPECT_EQ(cache.counters().entries, 0u);
}

// --- ZipfianSources -------------------------------------------------------

TEST(ZipfianSourcesTest, SkewConcentratesMass) {
  ZipfianSources zipf(1000, 1.2, 5);
  Rng rng(11);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next(rng)];
  int max_count = 0;
  for (int c : counts) max_count = std::max(max_count, c);
  // The hottest node of a theta=1.2 Zipf over 1000 ranks draws >> 1/1000
  // of the traffic.
  EXPECT_GT(max_count, 2000);
}

TEST(ZipfianSourcesTest, ThetaZeroIsRoughlyUniform) {
  ZipfianSources zipf(100, 0.0, 5);
  Rng rng(11);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next(rng)];
  for (int c : counts) {
    EXPECT_GT(c, 600);
    EXPECT_LT(c, 1400);
  }
}

// --- QueryService ---------------------------------------------------------

// The serving acceptance bar: responses under concurrency — computed,
// cached, or coalesced — are bit-identical to a fresh single-threaded
// ResAccSolver with the same configuration.
TEST(QueryServiceTest, ConcurrentClientsBitIdenticalToSingleThread) {
  const Graph graph = ChungLuPowerLaw(2000, 16000, 2.2, 9);
  const RwrConfig config = TestConfig(graph);
  const std::vector<NodeId> sources = PickUniformSources(graph, 8, 3);

  ResAccSolver reference(graph, config, ResAccOptions{});
  std::vector<std::vector<Score>> expected;
  for (NodeId s : sources) expected.push_back(reference.Query(s));

  ServeOptions options;
  options.num_workers = 4;
  QueryService service(graph, config, options);

  // 4 clients x 2 passes over every source: forces a mix of fresh
  // computations, coalesced joins, and cache hits.
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t i = 0; i < sources.size(); ++i) {
          const QueryResponse response =
              service.Query(QueryRequest{sources[i], 0, 0.0});
          if (!response.status.ok() ||
              *response.scores != expected[i]) {  // exact, bitwise
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);

  const ServerStats stats = service.Snapshot();
  EXPECT_EQ(stats.completed, 4u * 2u * sources.size());
  // Every OK response is exactly one of: led a computation, attached to an
  // in-flight one, or served from cache.
  EXPECT_EQ(stats.completed,
            stats.computed + stats.coalesced + stats.cache_hits);
  // Reuse must have happened: each client's second pass finds every source
  // cached (the budget fits all 8 vectors, so nothing is evicted).
  EXPECT_GT(stats.cache_hits + stats.coalesced, 0u);
}

// --- Batched solving ------------------------------------------------------

// Deterministic batch formation: the dequeue hook fires after the gather,
// so parking the single worker on one source lets the test queue a known
// set of jobs that the worker's next gather must pick up as one batch.
TEST(QueryServiceTest, BatchFormationGathersQueuedJobsAndStaysBitIdentical) {
  const Graph graph = ChungLuPowerLaw(500, 3000, 2.2, 10);
  const RwrConfig config = TestConfig(graph);
  const std::vector<NodeId> sources = PickUniformSources(graph, 9, 11);

  ResAccSolver reference(graph, config, ResAccOptions{});
  std::vector<std::vector<Score>> expected;
  for (NodeId s : sources) expected.push_back(reference.Query(s));

  Gate gate;
  ServeOptions options;
  options.num_workers = 1;
  options.cache_bytes = 0;  // every response must come from a solve
  options.max_batch = 8;
  options.dequeue_hook = gate.HookBlocking(sources[0]);
  QueryService service(graph, config, options);

  // The worker gathers sources[0] alone (nothing else queued) and parks in
  // the hook; the other 8 distinct sources pile up behind it.
  auto first = service.Submit(QueryRequest{sources[0], 0, 0.0});
  gate.AwaitArrival();
  std::vector<std::future<QueryResponse>> rest;
  for (std::size_t i = 1; i < sources.size(); ++i) {
    rest.push_back(service.Submit(QueryRequest{sources[i], 0, 0.0}));
  }
  gate.Open();

  // Whichever path answered — the serial solve for the lone job, one lane
  // of the batched solve for the rest — every vector is bitwise equal to
  // the fresh single-source reference.
  QueryResponse response = first.get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(*response.scores, expected[0]);
  for (std::size_t i = 1; i < sources.size(); ++i) {
    response = rest[i - 1].get();
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(*response.scores, expected[i])  // exact, bitwise
        << "source " << sources[i];
  }

  // The 8 queued jobs went through the batched solver as one gather; the
  // hostage job stayed on the serial path (gather of 1).
  EXPECT_EQ(service.metrics()
                .GetCounter("resacc_serve_batched_queries_total", "")
                .Value(),
            sources.size() - 1);
  EXPECT_EQ(service.Snapshot().computed, sources.size());
  for (const auto& sample : service.metrics().TakeSnapshot()) {
    if (sample.name == "resacc_serve_batch_size") {
      EXPECT_EQ(sample.histogram.count, 2u);  // two gathers
      EXPECT_DOUBLE_EQ(sample.histogram.max, 8.0);
    }
  }
}

// Batching under racing clients, with coalescing and caching live: batch
// membership depends on arrival timing, but the answers must not. Runs
// under TSAN in CI (serve_test is in the sanitizer job's list), covering
// concurrent batch formation — Submit racing TryPop/PopFor gathers — and
// the shared-frontier solve itself.
TEST(QueryServiceTest, BatchedConcurrentClientsBitIdenticalToSingleThread) {
  const Graph graph = ChungLuPowerLaw(2000, 16000, 2.2, 9);
  const RwrConfig config = TestConfig(graph);
  const std::vector<NodeId> sources = PickUniformSources(graph, 8, 3);

  ResAccSolver reference(graph, config, ResAccOptions{});
  std::vector<std::vector<Score>> expected;
  for (NodeId s : sources) expected.push_back(reference.Query(s));

  ServeOptions options;
  options.num_workers = 2;
  options.max_batch = 4;
  options.batch_linger_us = 200;
  QueryService service(graph, config, options);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t i = 0; i < sources.size(); ++i) {
          const QueryResponse response =
              service.Query(QueryRequest{sources[i], 0, 0.0});
          if (!response.status.ok() ||
              *response.scores != expected[i]) {  // exact, bitwise
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);

  const ServerStats stats = service.Snapshot();
  EXPECT_EQ(stats.completed, 4u * 2u * sources.size());
  EXPECT_EQ(stats.completed,
            stats.computed + stats.coalesced + stats.cache_hits);
}

// walk_threads is speed-only (walk_engine.h): a service whose workers run
// intra-query-parallel walk engines must answer bit-identically to a plain
// single-threaded reference solver — fresh computations and cache hits
// alike. This is why walk_threads stays out of HashQueryConfig.
TEST(QueryServiceTest, ParallelWalkEngineBitIdenticalToReference) {
  const Graph graph = ChungLuPowerLaw(2000, 16000, 2.2, 9);
  const RwrConfig config = TestConfig(graph);
  const std::vector<NodeId> sources = PickUniformSources(graph, 6, 4);

  ResAccOptions reference_options;
  reference_options.walk_threads = 1;
  ResAccSolver reference(graph, config, reference_options);
  std::vector<std::vector<Score>> expected;
  for (NodeId s : sources) expected.push_back(reference.Query(s));

  ServeOptions options;
  options.num_workers = 2;
  options.solver.walk_threads = 2;
  QueryService service(graph, config, options);

  // First pass computes (with the parallel walk engine), second pass must
  // be served from cache; both must equal the sequential reference bitwise.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const QueryResponse response =
          service.Query(QueryRequest{sources[i], 0, 0.0});
      ASSERT_TRUE(response.status.ok());
      EXPECT_EQ(*response.scores, expected[i])  // exact, bitwise
          << "pass " << pass << " source " << sources[i];
      if (pass == 1) {
        EXPECT_TRUE(response.cache_hit);
      }
    }
  }
  EXPECT_EQ(service.Snapshot().cache_hits, sources.size());
}

TEST(QueryServiceTest, CacheHitOnRepeatAndTopK) {
  const Graph graph = ChungLuPowerLaw(500, 3000, 2.2, 10);
  ServeOptions options;
  options.num_workers = 2;
  QueryService service(graph, TestConfig(graph), options);

  // Top-k mode: the response carries bound-bracketed entries, no vector.
  const QueryResponse first = service.Query(QueryRequest{3, 5, 0.0});
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.scores, nullptr);
  ASSERT_NE(first.topk, nullptr);
  ASSERT_EQ(first.top.size(), 5u);
  // Top list is descending and mirrors the certified entries.
  EXPECT_GE(first.top[0].second, first.top[4].second);
  EXPECT_DOUBLE_EQ(first.topk->entries[0].estimate, first.top[0].second);
  for (const TopKEntry& entry : first.topk->entries) {
    EXPECT_LE(entry.lower, entry.estimate);
    EXPECT_GE(entry.upper, entry.estimate);
  }

  const QueryResponse second = service.Query(QueryRequest{3, 5, 0.0});
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  ASSERT_NE(second.topk, nullptr);
  EXPECT_EQ(second.top, first.top);
  EXPECT_EQ(service.Snapshot().cache_hits, 1u);
  EXPECT_EQ(service.Snapshot().computed, 1u);

  // A full-vector probe is not satisfiable by the stored top-k payload:
  // it computes fresh and upgrades the entry in place, after which both
  // shapes are cache hits.
  const QueryResponse full = service.Query(QueryRequest{3, 0, 0.0});
  ASSERT_TRUE(full.status.ok());
  EXPECT_FALSE(full.cache_hit);
  ASSERT_NE(full.scores, nullptr);
  const QueryResponse third = service.Query(QueryRequest{3, 5, 0.0});
  ASSERT_TRUE(third.status.ok());
  EXPECT_TRUE(third.cache_hit);
  ASSERT_NE(third.topk, nullptr);
  EXPECT_EQ(third.top.size(), 5u);
  EXPECT_EQ(service.Snapshot().computed, 2u);
}

TEST(QueryServiceTest, CoalescesIdenticalInFlightQueries) {
  const Graph graph = ChungLuPowerLaw(500, 3000, 2.2, 10);
  Gate gate;
  ServeOptions options;
  options.num_workers = 1;
  options.cache_bytes = 0;  // isolate coalescing from caching
  options.dequeue_hook = gate.HookBlocking(/*blocked_source=*/1);

  QueryService service(graph, TestConfig(graph), options);
  // Worker 0 dequeues source 1 and parks in the hook...
  auto blocked = service.Submit(QueryRequest{1, 0, 0.0});
  gate.AwaitArrival();
  // ...so these all pile onto one in-flight job for source 2.
  std::vector<std::future<QueryResponse>> burst;
  for (int i = 0; i < 4; ++i) {
    burst.push_back(service.Submit(QueryRequest{2, 3, 0.0}));
  }
  gate.Open();

  ASSERT_TRUE(blocked.get().status.ok());
  int coalesced = 0;
  std::vector<std::pair<NodeId, Score>> canonical;
  for (auto& future : burst) {
    QueryResponse response = future.get();
    ASSERT_TRUE(response.status.ok());
    if (response.coalesced) ++coalesced;
    // top_k = 3 requests: every waiter shares the same top-k payload.
    ASSERT_NE(response.topk, nullptr);
    if (canonical.empty()) {
      canonical = response.top;
      ASSERT_EQ(canonical.size(), 3u);
    } else {
      EXPECT_EQ(response.top, canonical);
    }
  }
  EXPECT_EQ(coalesced, 3);  // leader + 3 attached
  const ServerStats stats = service.Snapshot();
  EXPECT_EQ(stats.coalesced, 3u);
  EXPECT_EQ(stats.computed, 2u);  // source 1 once, source 2 once
}

TEST(QueryServiceTest, QueueOverflowReturnsBackpressureStatus) {
  const Graph graph = ChungLuPowerLaw(500, 3000, 2.2, 10);
  Gate gate;
  ServeOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  options.cache_bytes = 0;
  options.coalesce = false;  // every submit needs its own queue slot
  options.dequeue_hook = gate.HookBlocking(/*blocked_source=*/1);

  QueryService service(graph, TestConfig(graph), options);
  auto blocked = service.Submit(QueryRequest{1, 0, 0.0});  // on the worker
  gate.AwaitArrival();
  auto queued = service.Submit(QueryRequest{2, 0, 0.0});  // fills the queue
  auto rejected = service.Submit(QueryRequest{3, 0, 0.0});  // overflow

  // The overflow future resolves immediately with an explicit status — no
  // silent drop, no deadlock.
  const QueryResponse overflow = rejected.get();
  EXPECT_EQ(overflow.status.code(), StatusCode::kResourceExhausted);

  gate.Open();
  EXPECT_TRUE(blocked.get().status.ok());
  EXPECT_TRUE(queued.get().status.ok());
  const ServerStats stats = service.Snapshot();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(QueryServiceTest, ExpiredRequestGetsDeadlineExceeded) {
  const Graph graph = ChungLuPowerLaw(500, 3000, 2.2, 10);
  Gate gate;
  ServeOptions options;
  options.num_workers = 1;
  options.cache_bytes = 0;
  options.dequeue_hook = gate.HookBlocking(/*blocked_source=*/1);

  QueryService service(graph, TestConfig(graph), options);
  auto blocked = service.Submit(QueryRequest{1, 0, 0.0});
  gate.AwaitArrival();
  // Queued behind the parked worker with a 1ms deadline.
  auto doomed = service.Submit(QueryRequest{2, 0, 0.001});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.Open();

  EXPECT_TRUE(blocked.get().status.ok());
  const QueryResponse expired = doomed.get();
  EXPECT_EQ(expired.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(expired.scores, nullptr);
  EXPECT_EQ(service.Snapshot().expired, 1u);
}

TEST(QueryServiceTest, InvalidSourceRejectedImmediately) {
  const Graph graph = ChungLuPowerLaw(100, 500, 2.2, 11);
  ServeOptions options;
  options.num_workers = 1;
  QueryService service(graph, TestConfig(graph), options);
  const QueryResponse response =
      service.Query(QueryRequest{graph.num_nodes(), 0, 0.0});
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST(QueryServiceTest, StopDrainsQueuedWorkAndRejectsNewSubmits) {
  const Graph graph = ChungLuPowerLaw(500, 3000, 2.2, 10);
  ServeOptions options;
  options.num_workers = 2;
  QueryService service(graph, TestConfig(graph), options);

  std::vector<std::future<QueryResponse>> pending;
  for (NodeId s = 0; s < 10; ++s) {
    pending.push_back(service.Submit(QueryRequest{s, 0, 0.0}));
  }
  service.Stop();
  // Everything accepted before Stop completes normally.
  for (auto& future : pending) EXPECT_TRUE(future.get().status.ok());
  // New work is refused with an explicit status.
  EXPECT_EQ(service.Query(QueryRequest{1, 0, 0.0}).status.code(),
            StatusCode::kFailedPrecondition);
}

TEST(QueryServiceTest, SnapshotIsViewOfMetricsRegistry) {
  const Graph graph = ChungLuPowerLaw(500, 3000, 2.2, 10);
  ServeOptions options;
  options.num_workers = 2;
  QueryService service(graph, TestConfig(graph), options);

  service.Query(QueryRequest{3, 0, 0.0});
  service.Query(QueryRequest{3, 0, 0.0});  // cache hit
  service.Query(QueryRequest{4, 0, 0.0});

  // Snapshot numbers and the registered series are the same objects.
  const ServerStats stats = service.Snapshot();
  std::uint64_t submitted = 0;
  std::uint64_t computed = 0;
  std::uint64_t cache_hits = 0;
  double latency_count = 0.0;
  double workers = 0.0;
  for (const auto& sample : service.metrics().TakeSnapshot()) {
    if (sample.name == "resacc_serve_submitted_total") {
      submitted = static_cast<std::uint64_t>(sample.value);
    } else if (sample.name == "resacc_serve_computed_total") {
      computed = static_cast<std::uint64_t>(sample.value);
    } else if (sample.name == "resacc_serve_cache_hits_total") {
      cache_hits = static_cast<std::uint64_t>(sample.value);
    } else if (sample.name == "resacc_serve_latency_seconds") {
      latency_count = static_cast<double>(sample.histogram.count);
    } else if (sample.name == "resacc_serve_workers") {
      workers = sample.value;
    }
  }
  EXPECT_EQ(submitted, stats.submitted);
  EXPECT_EQ(submitted, 3u);
  EXPECT_EQ(computed, stats.computed);
  EXPECT_EQ(computed, 2u);
  EXPECT_EQ(cache_hits, stats.cache_hits);
  EXPECT_EQ(cache_hits, 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(latency_count), stats.latency.count);
  EXPECT_DOUBLE_EQ(workers, 2.0);

  const std::string text = service.metrics().RenderPrometheus();
  EXPECT_NE(text.find("resacc_serve_submitted_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE resacc_serve_latency_seconds summary\n"),
            std::string::npos);
}

TEST(QueryServiceTest, PrivateRegistriesIsolateServices) {
  const Graph graph = ChungLuPowerLaw(300, 1500, 2.2, 12);
  ServeOptions options;
  options.num_workers = 1;
  QueryService a(graph, TestConfig(graph), options);
  QueryService b(graph, TestConfig(graph), options);
  EXPECT_NE(&a.metrics(), &b.metrics());

  a.Query(QueryRequest{1, 0, 0.0});
  EXPECT_EQ(a.Snapshot().submitted, 1u);
  EXPECT_EQ(b.Snapshot().submitted, 0u);
}

TEST(QueryServiceTest, SharedRegistryWithDistinctPrefixes) {
  const Graph graph = ChungLuPowerLaw(300, 1500, 2.2, 12);
  MetricsRegistry registry;
  ServeOptions options;
  options.num_workers = 1;
  options.metrics_registry = &registry;
  options.metrics_prefix = "svc_a";
  {
    QueryService a(graph, TestConfig(graph), options);
    options.metrics_prefix = "svc_b";
    QueryService b(graph, TestConfig(graph), options);

    a.Query(QueryRequest{1, 0, 0.0});
    a.Query(QueryRequest{2, 0, 0.0});
    b.Query(QueryRequest{1, 0, 0.0});

    std::uint64_t a_submitted = 0;
    std::uint64_t b_submitted = 0;
    for (const auto& sample : registry.TakeSnapshot()) {
      if (sample.name == "svc_a_submitted_total") {
        a_submitted = static_cast<std::uint64_t>(sample.value);
      } else if (sample.name == "svc_b_submitted_total") {
        b_submitted = static_cast<std::uint64_t>(sample.value);
      }
    }
    EXPECT_EQ(a_submitted, 2u);
    EXPECT_EQ(b_submitted, 1u);
  }
  // Destruction detaches callback series (cache/queue/uptime gauges); the
  // plain counters persist, and scraping must not touch freed state.
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("svc_a_submitted_total 2\n"), std::string::npos);
  EXPECT_EQ(text.find("svc_a_queue_depth"), std::string::npos);
  EXPECT_EQ(text.find("svc_b_uptime_seconds"), std::string::npos);
}

}  // namespace
}  // namespace resacc

#include <cmath>

#include <gtest/gtest.h>

#include "resacc/eval/community_metrics.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/eval/metrics.h"
#include "resacc/eval/sources.h"
#include "resacc/graph/generators.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

TEST(MetricsTest, AbsErrorAtKComparesOrderStatistics) {
  const std::vector<Score> exact = {0.5, 0.3, 0.2, 0.0};
  const std::vector<Score> estimate = {0.45, 0.35, 0.2, 0.0};
  EXPECT_NEAR(AbsErrorAtK(estimate, exact, 1), 0.05, 1e-15);  // 0.45 vs 0.5
  EXPECT_NEAR(AbsErrorAtK(estimate, exact, 2), 0.05, 1e-15);  // 0.35 vs 0.3
  EXPECT_NEAR(AbsErrorAtK(estimate, exact, 3), 0.0, 1e-15);
  // k beyond n clamps.
  EXPECT_NEAR(AbsErrorAtK(estimate, exact, 100), 0.0, 1e-15);
}

TEST(MetricsTest, MeanAbsError) {
  EXPECT_DOUBLE_EQ(MeanAbsError({1.0, 2.0}, {0.0, 4.0}), 1.5);
  EXPECT_DOUBLE_EQ(MeanAbsError({1.0}, {1.0}), 0.0);
}

TEST(MetricsTest, MeanAbsErrorTopKUsesTrueTop) {
  const std::vector<Score> exact = {0.9, 0.1, 0.5, 0.0};
  const std::vector<Score> estimate = {0.8, 0.1, 0.6, 0.3};
  // True top-2 = nodes 0 and 2; errors 0.1 and 0.1.
  EXPECT_NEAR(MeanAbsErrorTopK(estimate, exact, 2), 0.1, 1e-15);
}

TEST(MetricsTest, MaxRelativeErrorRespectsDelta) {
  const std::vector<Score> exact = {0.5, 0.001};
  const std::vector<Score> estimate = {0.4, 0.1};
  // Only node 0 is above delta = 0.01; its relative error is 0.2.
  EXPECT_NEAR(MaxRelativeErrorAboveDelta(estimate, exact, 0.01), 0.2, 1e-12);
}

TEST(MetricsTest, NdcgPerfectAndImperfect) {
  const std::vector<Score> exact = {0.5, 0.3, 0.2};
  EXPECT_DOUBLE_EQ(NdcgAtK(exact, exact, 3), 1.0);
  // Reversed ranking is worse but positive.
  const std::vector<Score> reversed = {0.1, 0.2, 0.3};
  const double ndcg = NdcgAtK(reversed, exact, 3);
  EXPECT_LT(ndcg, 1.0);
  EXPECT_GT(ndcg, 0.5);
}

TEST(MetricsTest, PrecisionAtK) {
  const std::vector<Score> exact = {0.5, 0.4, 0.1, 0.0};
  const std::vector<Score> estimate = {0.5, 0.0, 0.4, 0.1};
  // True top-2 {0,1}; estimated top-2 {0,2} -> precision 0.5.
  EXPECT_DOUBLE_EQ(PrecisionAtK(estimate, exact, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(exact, exact, 3), 1.0);
}

TEST(CommunityMetricsTest, HandComputedSquare) {
  // Two triangles joined by one edge (symmetrized).
  const Graph g = testing::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}},
      /*symmetrize=*/true);
  const std::vector<NodeId> community = {0, 1, 2};
  // cut = 1 directed edge out (2->3); volume = deg sum = 2+2+3 = 7.
  EXPECT_EQ(CommunityCut(g, community), 1u);
  EXPECT_EQ(CommunityVolume(g, community), 7u);
  EXPECT_NEAR(NormalizedCut(g, community), 1.0 / 7.0, 1e-12);
  // links(V-C, V) = m - vol + cut = 14 - 7 + 1 = 8; min(7, 8) = 7.
  EXPECT_NEAR(Conductance(g, community), 1.0 / 7.0, 1e-12);
}

TEST(CommunityMetricsTest, AveragesOverCommunities) {
  const Graph g = testing::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}},
      /*symmetrize=*/true);
  const std::vector<std::vector<NodeId>> communities = {{0, 1, 2}, {3, 4, 5}};
  EXPECT_NEAR(AverageNormalizedCut(g, communities), 1.0 / 7.0, 1e-12);
  EXPECT_NEAR(AverageConductance(g, communities), 1.0 / 7.0, 1e-12);
}

TEST(CommunityMetricsTest, WholeGraphHasZeroCut) {
  const Graph g = testing::StarGraph(5);
  std::vector<NodeId> all;
  for (NodeId v = 0; v < g.num_nodes(); ++v) all.push_back(v);
  EXPECT_EQ(CommunityCut(g, all), 0u);
  EXPECT_DOUBLE_EQ(NormalizedCut(g, all), 0.0);
}

TEST(GroundTruthCacheTest, MemoizesPerSource) {
  const Graph g = ErdosRenyi(100, 500, 2);
  RwrConfig config;
  config.delta = 0.01;
  config.p_f = 0.01;
  GroundTruthCache cache(g, config);
  const std::vector<Score>& a = cache.Get(3);
  const std::vector<Score>& b = cache.Get(3);
  EXPECT_EQ(&a, &b);  // same object, not recomputed
  EXPECT_EQ(cache.size(), 1u);
  cache.Get(4);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SourcesTest, UniformSourcesAreDistinctAndEligible) {
  const Graph g = ChungLuPowerLaw(500, 2500, 2.2, 3);
  const std::vector<NodeId> sources = PickUniformSources(g, 50, 7);
  EXPECT_EQ(sources.size(), 50u);
  std::vector<char> seen(g.num_nodes(), 0);
  for (NodeId s : sources) {
    EXPECT_GT(g.OutDegree(s), 0u);
    EXPECT_FALSE(seen[s]) << "duplicate source " << s;
    seen[s] = 1;
  }
  // Deterministic in seed.
  EXPECT_EQ(PickUniformSources(g, 50, 7), sources);
  EXPECT_NE(PickUniformSources(g, 50, 8), sources);
}

TEST(SourcesTest, TopOutDegreeSourcesAreSorted) {
  const Graph g = ChungLuPowerLaw(500, 2500, 2.2, 4);
  const std::vector<NodeId> sources = PickTopOutDegreeSources(g, 20);
  ASSERT_EQ(sources.size(), 20u);
  for (std::size_t i = 1; i < sources.size(); ++i) {
    EXPECT_GE(g.OutDegree(sources[i - 1]), g.OutDegree(sources[i]));
  }
}

}  // namespace
}  // namespace resacc

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "resacc/algo/monte_carlo.h"
#include "resacc/core/forward_push.h"
#include "resacc/core/random_walk.h"
#include "resacc/core/remedy.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/core/walk_engine.h"
#include "resacc/graph/generators.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

using ::resacc::testing::Figure1Graph;
using ::resacc::testing::Figure3Graph;

RwrConfig TestConfig(DanglingPolicy policy) {
  RwrConfig config;
  config.alpha = 0.2;
  config.dangling = policy;
  config.seed = 2024;
  return config;
}

// Slices spanning several scheduling blocks per slice plus a sub-block
// remainder — the shapes where merge order and RNG forking could diverge.
std::vector<WalkSlice> MultiBlockSlices(const Graph& g) {
  std::vector<WalkSlice> slices;
  const std::uint64_t walks[] = {3 * WalkEngine::kBlockWalks + 17,
                                 WalkEngine::kBlockWalks,
                                 WalkEngine::kBlockWalks - 1, 5};
  NodeId start = 0;
  for (std::uint64_t w : walks) {
    slices.push_back(WalkSlice{start, w, 1.0 / static_cast<Score>(w),
                               /*stream=*/start});
    start = (start + 7) % g.num_nodes();
  }
  return slices;
}

// The determinism contract (walk_engine.h): bit-identical scores for every
// thread count, including the sequential path.
TEST(WalkEngineTest, BitIdenticalAcrossThreadCounts) {
  const Graph g = ErdosRenyi(300, 1800, 11);
  const RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);
  const std::vector<WalkSlice> slices = MultiBlockSlices(g);
  const Rng root(12345);

  std::vector<Score> reference(g.num_nodes(), 0.0);
  WalkEngine sequential(1);
  const WalkEngineStats ref_stats =
      sequential.Run(g, config, 0, root, slices, reference);
  EXPECT_GT(ref_stats.walks, 0u);
  EXPECT_GT(ref_stats.blocks, 4u);

  for (std::size_t threads : {2u, 8u}) {
    std::vector<Score> scores(g.num_nodes(), 0.0);
    WalkEngine engine(threads);
    const WalkEngineStats stats =
        engine.Run(g, config, 0, root, slices, scores);
    EXPECT_EQ(stats.walks, ref_stats.walks);
    EXPECT_EQ(stats.steps, ref_stats.steps);
    EXPECT_EQ(stats.blocks, ref_stats.blocks);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(scores[v], reference[v])
          << "threads=" << threads << " node " << v;
    }
  }
}

// Repeated Run calls on one engine instance must not leak workspace state
// between calls.
TEST(WalkEngineTest, ReusedEngineReproducesItself) {
  const Graph g = ErdosRenyi(300, 1800, 11);
  const RwrConfig config = TestConfig(DanglingPolicy::kBackToSource);
  const std::vector<WalkSlice> slices = MultiBlockSlices(g);
  const Rng root(99);

  WalkEngine engine(4);
  std::vector<Score> first(g.num_nodes(), 0.0);
  engine.Run(g, config, 0, root, slices, first);
  std::vector<Score> second(g.num_nodes(), 0.0);
  engine.Run(g, config, 0, root, slices, second);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(first[v], second[v]) << "node " << v;
  }
}

// A slice's walks are keyed by its stream, not its position, so reordering
// slices leaves every trajectory unchanged — only the order in which block
// partials are folded into `scores` moves, which perturbs sums by rounding
// alone. (Bit-exactness is promised for a fixed slice list — and per query
// the list IS fixed, since PushState's touch order is deterministic.)
TEST(WalkEngineTest, SliceOrderOnlyPerturbsRounding) {
  const Graph g = ErdosRenyi(300, 1800, 11);
  const RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);
  std::vector<WalkSlice> slices = MultiBlockSlices(g);
  const Rng root(7);

  std::vector<Score> forward(g.num_nodes(), 0.0);
  WalkEngine(2).Run(g, config, 0, root, slices, forward);

  std::reverse(slices.begin(), slices.end());
  std::vector<Score> reversed(g.num_nodes(), 0.0);
  WalkEngine(2).Run(g, config, 0, root, slices, reversed);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_NEAR(forward[v], reversed[v], 1e-12) << "node " << v;
  }
}

// Remedy through the engine: same bit-identity, at the RunRemedy level the
// serve layer actually depends on.
TEST(WalkEngineTest, RemedyBitIdenticalAcrossThreadCounts) {
  const Graph g = ErdosRenyi(200, 1000, 3);
  RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);
  config.delta = 1.0 / 200.0;
  config.p_f = 1e-6;
  config.epsilon = 0.5;

  PushState state(g.num_nodes());
  state.SetResidue(0, 1.0);
  const NodeId seeds[] = {NodeId{0}};
  RunForwardSearch(g, config, 0, /*r_max=*/1e-3, seeds, false, state);
  ASSERT_GT(state.ResidueSum(), 0.0);

  auto run = [&](std::size_t threads) {
    std::vector<Score> scores(g.num_nodes(), 0.0);
    for (NodeId v : state.touched()) scores[v] = state.reserve(v);
    Rng rng(31);  // fresh rng per run: identical walk_root each time
    WalkEngine engine(threads);
    RunRemedy(g, config, 0, state, rng, scores, 1.0, 0.0, &engine);
    return scores;
  };

  const std::vector<Score> reference = run(1);
  for (std::size_t threads : {2u, 8u}) {
    const std::vector<Score> scores = run(threads);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(scores[v], reference[v])
          << "threads=" << threads << " node " << v;
    }
  }
}

// Solver-level determinism across walk_threads AND query order: two solvers
// differing only in walk_threads, querying sources in opposite orders, must
// agree bitwise on every source.
TEST(WalkEngineTest, SolverQueriesAgreeAcrossThreadsAndQueryOrder) {
  const Graph g = ErdosRenyi(400, 2400, 17);
  RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);
  config.delta = 1.0 / 400.0;
  config.p_f = 1e-6;
  config.epsilon = 0.5;

  ResAccOptions sequential_options;
  sequential_options.walk_threads = 1;
  ResAccOptions parallel_options;
  parallel_options.walk_threads = 8;

  const NodeId sources[] = {NodeId{5}, NodeId{123}, NodeId{77}};
  ResAccSolver sequential(g, config, sequential_options);
  ResAccSolver parallel(g, config, parallel_options);

  std::vector<std::vector<Score>> forward;
  for (NodeId s : sources) forward.push_back(sequential.Query(s));
  // Opposite order on the parallel solver.
  std::vector<std::vector<Score>> backward(3);
  for (int i = 2; i >= 0; --i) backward[i] = parallel.Query(sources[i]);

  for (int i = 0; i < 3; ++i) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(forward[i][v], backward[i][v])
          << "source " << sources[i] << " node " << v;
    }
  }
}

TEST(WalkEngineTest, MonteCarloBitIdenticalAcrossThreadCounts) {
  const Graph g = ErdosRenyi(200, 1200, 23);
  RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);
  config.delta = 1.0 / 200.0;
  config.p_f = 1e-4;

  MonteCarlo sequential(g, config, /*walk_scale=*/0.05, /*walk_threads=*/1);
  MonteCarlo parallel(g, config, /*walk_scale=*/0.05, /*walk_threads=*/4);
  const std::vector<Score> a = sequential.Query(9);
  const std::vector<Score> b = parallel.Query(9);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(a[v], b[v]) << "node " << v;
  }
}

// The engine redistributes exactly the sliced mass (sum of
// num_walks * weight), parallel path included.
TEST(WalkEngineTest, ConservesSlicedMass) {
  const Graph g = testing::CycleGraph(32);  // no sinks: nothing absorbed
  const RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);
  const std::vector<WalkSlice> slices = MultiBlockSlices(g);
  double expected = 0.0;
  for (const WalkSlice& s : slices) {
    expected += static_cast<double>(s.num_walks) * s.weight;
  }

  std::vector<Score> scores(g.num_nodes(), 0.0);
  WalkEngine(4).Run(g, config, 0, Rng(5), slices, scores);
  Score total = 0.0;
  for (Score s : scores) total += s;
  EXPECT_NEAR(total, expected, 1e-9);
}

// --- Geometric length sampling (satellite d) ------------------------------

class GeometricWalkTest : public ::testing::TestWithParam<DanglingPolicy> {};

// The geometric-length walk must reproduce the per-step engine's terminal
// distribution — Figure 1's graph has a sink, so this exercises the
// dangling handling of both policies inside the pre-sampled loop.
TEST_P(GeometricWalkTest, TerminalDistributionMatchesPerStepEngine) {
  const DanglingPolicy policy = GetParam();
  const Graph g = Figure1Graph();
  const RwrConfig config = TestConfig(policy);
  const double inv_log1m_alpha = InvLogOneMinusAlpha(config.alpha);

  const int walks = 400000;
  Rng step_rng(config.seed);
  Rng geo_rng(config.seed + 1);
  WalkStats step_stats;
  WalkStats geo_stats;
  std::vector<double> step_freq(g.num_nodes(), 0.0);
  std::vector<double> geo_freq(g.num_nodes(), 0.0);
  for (int i = 0; i < walks; ++i) {
    ++step_freq[RandomWalkTerminal(g, config, 0, 0, step_rng, step_stats)];
    ++geo_freq[RandomWalkTerminalGeometric(g, config, 0, 0, inv_log1m_alpha,
                                           geo_rng, geo_stats)];
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(geo_freq[v] / walks, step_freq[v] / walks, 0.005)
        << "node " << v;
  }
  // Same walk-length law => same mean step count.
  EXPECT_NEAR(static_cast<double>(geo_stats.steps) / walks,
              static_cast<double>(step_stats.steps) / walks, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Policies, GeometricWalkTest,
                         ::testing::Values(DanglingPolicy::kAbsorb,
                                           DanglingPolicy::kBackToSource));

TEST(GeometricWalkTest, LengthMatchesGeometricLaw) {
  const double alpha = 0.2;
  const double inv = InvLogOneMinusAlpha(alpha);
  Rng rng(42);
  const int draws = 500000;
  double mean = 0.0;
  std::uint64_t zeros = 0;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t len = GeometricWalkLength(rng, inv);
    mean += static_cast<double>(len);
    zeros += len == 0 ? 1 : 0;
  }
  mean /= draws;
  // E[L] = (1-alpha)/alpha = 4; P(L = 0) = alpha.
  EXPECT_NEAR(mean, (1.0 - alpha) / alpha, 0.05);
  EXPECT_NEAR(static_cast<double>(zeros) / draws, alpha, 0.005);
}

// --- Time budget (satellite a) --------------------------------------------

// Regression for the remedy budget bug: the clock used to be checked only
// between residual nodes, so ONE huge-residue node ran its full walk count
// regardless of the budget. The engine checks every block (<= kBlockWalks
// walks), so even a single-slice remedy must stop early.
TEST(WalkEngineTest, BudgetStopsInsideSingleResidualNode) {
  const Graph g = ErdosRenyi(500, 2500, 5);
  RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);
  config.delta = 1e-7;  // enormous walk demand
  config.p_f = 1e-9;

  // No push at all: the entire residue sits on one node.
  PushState state(g.num_nodes());
  state.SetResidue(0, 1.0);
  ASSERT_EQ(state.touched().size(), 1u);

  std::vector<Score> scores(g.num_nodes(), 0.0);
  Rng rng(2);
  WalkEngine engine(1);
  const RemedyStats stats =
      RunRemedy(g, config, 0, state, rng, scores, 1.0,
                /*time_budget_seconds=*/1e-9, &engine);
  EXPECT_TRUE(stats.budget_exhausted);
  // Far short of the target: at most a few blocks can slip through before
  // the first post-block check fires.
  EXPECT_LT(static_cast<double>(stats.walks), stats.target_walks / 2.0);
}

TEST(WalkEngineTest, BudgetStopsParallelRuns) {
  const Graph g = ErdosRenyi(500, 2500, 5);
  RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);
  config.delta = 1e-7;
  config.p_f = 1e-9;

  PushState state(g.num_nodes());
  state.SetResidue(0, 1.0);
  std::vector<Score> scores(g.num_nodes(), 0.0);
  Rng rng(2);
  WalkEngine engine(4);
  const RemedyStats stats =
      RunRemedy(g, config, 0, state, rng, scores, 1.0,
                /*time_budget_seconds=*/1e-9, &engine);
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_LT(static_cast<double>(stats.walks), stats.target_walks / 2.0);
}

}  // namespace
}  // namespace resacc

// WorkloadSpec parsing (all-or-nothing, line-numbered errors) and the
// determinism contract of the op streams: the generated sequence of
// (class, source, mutation) ops is a pure function of (spec, seed) —
// identical across runs and across however many threads generate
// per-tenant streams concurrently.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "resacc/workload/op_stream.h"
#include "resacc/workload/workload_spec.h"

namespace resacc {
namespace {

const char kGoodSpec[] = R"(# comment line
duration_seconds 12.5
seed 99
source zipfian 0.8
top_k 7
deadline_ms 25

tenant gold
  weight 4
  rate 100
  class full 3
  class topk 1
end

tenant bronze   # trailing comment
  weight 1
  concurrency 3
  class full 0.2
  class deadline 0.2
  class degraded 0.2
  class mutation 0.4
end
)";

TEST(WorkloadSpecTest, ParsesFullSpec) {
  const StatusOr<WorkloadSpec> parsed = WorkloadSpec::Parse(kGoodSpec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const WorkloadSpec& spec = parsed.value();
  EXPECT_DOUBLE_EQ(spec.duration_seconds, 12.5);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(spec.picker, SourcePickerKind::kZipfian);
  EXPECT_DOUBLE_EQ(spec.zipf_theta, 0.8);
  EXPECT_EQ(spec.top_k, 7u);
  EXPECT_DOUBLE_EQ(spec.deadline_ms, 25.0);
  ASSERT_EQ(spec.tenants.size(), 2u);

  const TenantSpec& gold = spec.tenants[0];
  EXPECT_EQ(gold.name, "gold");
  EXPECT_DOUBLE_EQ(gold.weight, 4.0);
  EXPECT_DOUBLE_EQ(gold.rate, 100.0);
  // Mix normalizes: 3:1 -> 0.75 / 0.25.
  EXPECT_DOUBLE_EQ(gold.mix[static_cast<std::size_t>(OpClass::kFull)], 0.75);
  EXPECT_DOUBLE_EQ(gold.mix[static_cast<std::size_t>(OpClass::kTopK)], 0.25);

  const TenantSpec& bronze = spec.tenants[1];
  EXPECT_EQ(bronze.concurrency, 3u);
  EXPECT_DOUBLE_EQ(
      bronze.mix[static_cast<std::size_t>(OpClass::kMutation)], 0.4);
  EXPECT_EQ(spec.TenantIndex("bronze"), 1u);
  EXPECT_EQ(spec.TenantIndex("nobody"), 2u);
}

TEST(WorkloadSpecTest, SourcePickerVariants) {
  const auto uniform =
      WorkloadSpec::Parse("source uniform\ntenant t\nclass full 1\nend\n");
  ASSERT_TRUE(uniform.ok());
  EXPECT_EQ(uniform.value().picker, SourcePickerKind::kUniform);
  const auto hotset =
      WorkloadSpec::Parse("source hotset 0.2\ntenant t\nclass full 1\nend\n");
  ASSERT_TRUE(hotset.ok());
  EXPECT_EQ(hotset.value().picker, SourcePickerKind::kHotset);
  EXPECT_DOUBLE_EQ(hotset.value().hotset_fraction, 0.2);
}

// Every invalid spec must fail with a line-numbered message and yield NO
// spec at all — never a partially-applied one.
struct BadSpecCase {
  const char* text;
  int line;  // expected "line N:" prefix
};

class WorkloadSpecErrorTest : public ::testing::TestWithParam<BadSpecCase> {};

TEST_P(WorkloadSpecErrorTest, RejectsWithLineNumber) {
  const BadSpecCase& c = GetParam();
  const StatusOr<WorkloadSpec> parsed = WorkloadSpec::Parse(c.text);
  ASSERT_FALSE(parsed.ok()) << "spec should not parse:\n" << c.text;
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  char prefix[32];
  std::snprintf(prefix, sizeof(prefix), "line %d:", c.line);
  EXPECT_EQ(parsed.status().message().rfind(prefix, 0), 0u)
      << "message '" << parsed.status().message()
      << "' should start with '" << prefix << "'";
}

INSTANTIATE_TEST_SUITE_P(
    BadSpecs, WorkloadSpecErrorTest,
    ::testing::Values(
        // Unknown class name.
        BadSpecCase{"tenant a\nclass bogus 1\nend\n", 2},
        // Negative rate.
        BadSpecCase{"tenant a\nrate -5\nclass full 1\nend\n", 2},
        // Zero weight.
        BadSpecCase{"tenant a\nweight 0\nclass full 1\nend\n", 2},
        // Negative weight.
        BadSpecCase{"tenant a\nweight -2\nclass full 1\nend\n", 2},
        // Duplicate tenant.
        BadSpecCase{"tenant a\nclass full 1\nend\ntenant a\nclass full "
                    "1\nend\n",
                    4},
        // Duplicate class inside a tenant.
        BadSpecCase{"tenant a\nclass full 1\nclass full 2\nend\n", 3},
        // Zero concurrency.
        BadSpecCase{"tenant a\nconcurrency 0\nclass full 1\nend\n", 2},
        // Non-positive duration.
        BadSpecCase{"duration_seconds 0\ntenant a\nclass full 1\nend\n", 1},
        // Unknown top-level directive.
        BadSpecCase{"wibble 3\n", 1},
        // Unknown tenant directive.
        BadSpecCase{"tenant a\nshards 3\nend\n", 2},
        // 'end' with no tenant open.
        BadSpecCase{"end\n", 1},
        // Tenant never closed.
        BadSpecCase{"tenant a\nclass full 1\n", 2},
        // Tenant with no class mix.
        BadSpecCase{"tenant a\nweight 2\nend\n", 3},
        // Reserved tenant name.
        BadSpecCase{"tenant default\nclass full 1\nend\n", 1},
        // No tenants at all.
        BadSpecCase{"seed 1\n", 1},
        // Bad picker.
        BadSpecCase{"source pareto\ntenant a\nclass full 1\nend\n", 1},
        // Hotset fraction out of range.
        BadSpecCase{"source hotset 1.5\ntenant a\nclass full 1\nend\n", 1},
        // Zero top_k.
        BadSpecCase{"top_k 0\ntenant a\nclass full 1\nend\n", 1},
        // Class share must be positive.
        BadSpecCase{"tenant a\nclass full -1\nend\n", 2}));

// Deterministic fuzz: random mutations of a valid spec either parse or
// fail with a "line N:" message — never crash, never yield a spec with
// un-normalized mixes or invalid tenants.
TEST(WorkloadSpecTest, FuzzedSpecsParseOrFailCleanly) {
  Rng rng(0xf022);
  const std::string base = kGoodSpec;
  for (int iter = 0; iter < 500; ++iter) {
    std::string text = base;
    const int edits = 1 + static_cast<int>(rng.NextBounded(4));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng.NextBounded(text.size());
      switch (rng.NextBounded(3)) {
        case 0:
          text[pos] = static_cast<char>(' ' + rng.NextBounded(95));
          break;
        case 1:
          text.erase(pos, 1 + rng.NextBounded(5));
          break;
        default:
          text.insert(pos, 1, static_cast<char>(' ' + rng.NextBounded(95)));
          break;
      }
    }
    const StatusOr<WorkloadSpec> parsed = WorkloadSpec::Parse(text);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
      EXPECT_EQ(parsed.status().message().rfind("line ", 0), 0u)
          << parsed.status().message();
      continue;
    }
    const WorkloadSpec& spec = parsed.value();
    ASSERT_FALSE(spec.tenants.empty());
    for (const TenantSpec& tenant : spec.tenants) {
      EXPECT_FALSE(tenant.name.empty());
      EXPECT_GT(tenant.weight, 0.0);
      EXPECT_GE(tenant.concurrency, 1u);
      double total = 0.0;
      for (double m : tenant.mix) {
        EXPECT_GE(m, 0.0);
        total += m;
      }
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
    EXPECT_GT(spec.duration_seconds, 0.0);
  }
}

std::vector<WorkloadOp> GenerateOps(const WorkloadSpec& spec,
                                    std::size_t tenant, std::size_t count) {
  TenantOpStream stream(spec, tenant, /*num_nodes=*/1000);
  std::vector<WorkloadOp> ops;
  ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) ops.push_back(stream.Next());
  return ops;
}

void ExpectSameOps(const std::vector<WorkloadOp>& a,
                   const std::vector<WorkloadOp>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cls, b[i].cls) << "op " << i;
    EXPECT_EQ(a[i].tenant, b[i].tenant) << "op " << i;
    EXPECT_EQ(a[i].source, b[i].source) << "op " << i;
    EXPECT_EQ(a[i].target, b[i].target) << "op " << i;
    EXPECT_EQ(a[i].remove, b[i].remove) << "op " << i;
    EXPECT_EQ(a[i].top_k, b[i].top_k) << "op " << i;
    EXPECT_DOUBLE_EQ(a[i].deadline_seconds, b[i].deadline_seconds)
        << "op " << i;
    EXPECT_EQ(a[i].allow_degraded, b[i].allow_degraded) << "op " << i;
  }
}

TEST(OpStreamTest, ReplayIsDeterministicAcrossRunsAndThreads) {
  const StatusOr<WorkloadSpec> parsed = WorkloadSpec::Parse(kGoodSpec);
  ASSERT_TRUE(parsed.ok());
  const WorkloadSpec& spec = parsed.value();
  constexpr std::size_t kOps = 2000;

  // Reference sequences, generated serially.
  std::vector<std::vector<WorkloadOp>> reference;
  for (std::size_t t = 0; t < spec.tenants.size(); ++t) {
    reference.push_back(GenerateOps(spec, t, kOps));
  }

  // Re-generated serially: byte-identical.
  for (std::size_t t = 0; t < spec.tenants.size(); ++t) {
    ExpectSameOps(reference[t], GenerateOps(spec, t, kOps));
  }

  // Re-generated with every tenant stream on its own thread, twice, with
  // the threads racing: still identical — streams share no state.
  for (int round = 0; round < 2; ++round) {
    std::vector<std::vector<WorkloadOp>> threaded(spec.tenants.size());
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < spec.tenants.size(); ++t) {
      workers.emplace_back([&spec, &threaded, t] {
        threaded[t] = GenerateOps(spec, t, kOps);
      });
    }
    for (std::thread& w : workers) w.join();
    for (std::size_t t = 0; t < spec.tenants.size(); ++t) {
      ExpectSameOps(reference[t], threaded[t]);
    }
  }
}

TEST(OpStreamTest, MergedStreamIsDeterministic) {
  const StatusOr<WorkloadSpec> parsed = WorkloadSpec::Parse(kGoodSpec);
  ASSERT_TRUE(parsed.ok());
  constexpr std::size_t kOps = 2000;
  std::vector<WorkloadOp> a;
  std::vector<WorkloadOp> b;
  {
    MergedOpStream stream(parsed.value(), 1000);
    for (std::size_t i = 0; i < kOps; ++i) a.push_back(stream.Next());
  }
  {
    MergedOpStream stream(parsed.value(), 1000);
    for (std::size_t i = 0; i < kOps; ++i) b.push_back(stream.Next());
  }
  ExpectSameOps(a, b);
  // The interleave respects offered load: gold (rate 100) should produce
  // far more ops than bronze (concurrency 3).
  std::size_t gold = 0;
  for (const WorkloadOp& op : a) gold += op.tenant == 0 ? 1 : 0;
  EXPECT_GT(gold, kOps / 2);
}

TEST(OpStreamTest, MutationChurnRemovesOnlyTrackedEdges) {
  // Build a mutation-only tenant and check rmedge ops always name an edge
  // previously added (and not yet removed) by the same stream.
  const auto parsed = WorkloadSpec::Parse(
      "seed 7\ntenant churn\nclass mutation 1\nend\n");
  ASSERT_TRUE(parsed.ok());
  TenantOpStream stream(parsed.value(), 0, 500);
  std::vector<std::pair<NodeId, NodeId>> live;
  std::size_t removes = 0;
  for (int i = 0; i < 5000; ++i) {
    const WorkloadOp op = stream.Next();
    ASSERT_EQ(op.cls, OpClass::kMutation);
    EXPECT_NE(op.source, op.target) << "self loops are invalid";
    if (op.remove) {
      ++removes;
      const auto it = std::find(live.begin(), live.end(),
                                std::make_pair(op.source, op.target));
      ASSERT_NE(it, live.end()) << "rmedge of an edge never added";
      live.erase(it);
    } else {
      live.emplace_back(op.source, op.target);
    }
  }
  EXPECT_GT(removes, 1000u);  // the coin is fair once the ledger fills
}

}  // namespace
}  // namespace resacc

// Hybrid local/dense solver selection (core/power_iter.h): hub sources
// must switch to the dense power-iteration path and still satisfy
// Definition 1 — deterministically, since the dense sweep's tolerance
// eps * delta leaves no failure probability — while tail sources stay on
// the paper's local pipeline. Also pins the dense path's bit-identity
// across walk_threads and batch lane counts, the residue-mass trigger,
// the shrink-floor regression, the No-SG stats convention, the serve
// config-hash coverage of the hybrid knobs, and the dense top-k prefix.

#include "resacc/core/power_iter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "resacc/algo/fora.h"
#include "resacc/core/batch_solver.h"
#include "resacc/core/h_hop_fwd.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/graph/generators.h"
#include "resacc/graph/graph.h"
#include "resacc/serve/result_cache.h"
#include "resacc/util/top_k.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

// Complete bipartite K_{left, right}, symmetrized: every left node's 1-hop
// set is the whole right side — a hub from either side.
Graph CompleteBipartite(NodeId left, NodeId right) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < left; ++u) {
    for (NodeId v = 0; v < right; ++v) edges.push_back({u, left + v});
  }
  return testing::FromEdges(left + right, edges, /*symmetrize=*/true);
}

RwrConfig HybridConfig(std::uint64_t seed = 7) {
  RwrConfig config;
  config.alpha = 0.2;
  config.epsilon = 0.5;
  config.delta = 0.01;
  // Small enough that a single randomized query failing Definition 1 is
  // effectively impossible (the dense path needs no such slack: its
  // guarantee is deterministic).
  config.p_f = 1e-7;
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = seed;
  return config;
}

ResAccOptions HybridOn() {
  ResAccOptions options;
  options.hybrid.enable = true;
  return options;
}

// Definition 1 with zero failure probability: the dense sweep's additive
// error is below eps * delta, so every node above delta must satisfy the
// relative bound outright — no statistical budget.
void ExpectDefinition1(const std::vector<Score>& estimate,
                       const std::vector<Score>& exact, const RwrConfig& config,
                       const char* label) {
  ASSERT_EQ(estimate.size(), exact.size()) << label;
  std::size_t checked = 0;
  for (NodeId v = 0; v < exact.size(); ++v) {
    if (exact[v] <= config.delta) continue;
    ++checked;
    EXPECT_LE(std::abs(estimate[v] - exact[v]),
              config.epsilon * exact[v] + 1e-12)
        << label << ": node " << v;
  }
  EXPECT_GT(checked, 0u) << label << ": delta admitted no node";
}

void ExpectBitIdentical(const std::vector<Score>& a,
                        const std::vector<Score>& b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << label << ": node " << i << " differs";
  }
}

// ---------------------------------------------------------------------------
// Selection: hub sources go dense, tail sources stay local.

TEST(HybridSelectionTest, StarHubTakesShrinkFloorPath) {
  const Graph g = testing::StarGraph(199);
  const RwrConfig config = HybridConfig();
  ResAccSolver solver(g, config, HybridOn());

  const std::vector<Score> estimate = solver.Query(/*source=*/0);
  EXPECT_EQ(solver.last_stats().path, SolverPath::kDenseShrinkFloor);
  EXPECT_GT(solver.last_stats().dense.iterations, 0u);
  EXPECT_LE(solver.last_stats().dense.leftover_mass,
            DenseTolerance(config, HybridOn().hybrid));

  GroundTruthCache truth(g, config);
  ExpectDefinition1(estimate, truth.Get(0), config, "star hub");

  Score total = 0.0;
  for (Score s : estimate) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HybridSelectionTest, StarLeafStaysLocal) {
  const Graph g = testing::StarGraph(199);
  const RwrConfig config = HybridConfig();
  ResAccOptions options = HybridOn();
  // On a 200-node graph the dense sweep is nearly free, so the default
  // ratio sends even tail sources dense (correctly — see the cost-model
  // test). Bias local to pin that a ratio > 1 keeps non-floored sources
  // on the paper's pipeline.
  options.hybrid.cost_ratio = 8.0;
  ResAccSolver solver(g, config, options);

  // A leaf's 2-hop set is the whole graph, but the cap shrinks to 1 hop
  // ({leaf, hub}) without flooring, and the small hop set stays local.
  const std::vector<Score> estimate = solver.Query(/*source=*/5);
  EXPECT_EQ(solver.last_stats().path, SolverPath::kLocal);

  GroundTruthCache truth(g, config);
  ExpectDefinition1(estimate, truth.Get(5), config, "star leaf");
}

TEST(HybridSelectionTest, ChungLuHeadGoesDenseTailStaysLocal) {
  const Graph g = ChungLuPowerLaw(1000, 12000, 2.0, /*seed=*/3);
  const RwrConfig config = HybridConfig();
  ResAccOptions options = HybridOn();
  options.max_hop_set_fraction = 0.02;
  ResAccSolver solver(g, config, options);
  GroundTruthCache truth(g, config);

  const std::vector<NodeId> by_degree = g.NodesByOutDegreeDesc();
  const NodeId hub = by_degree[0];
  const std::vector<Score> hub_estimate = solver.Query(hub);
  EXPECT_NE(solver.last_stats().path, SolverPath::kLocal) << "hub stayed local";
  ExpectDefinition1(hub_estimate, truth.Get(hub), config, "chung-lu head");

  const NodeId tail = by_degree[by_degree.size() / 2];
  solver.Query(tail);
  EXPECT_EQ(solver.last_stats().path, SolverPath::kLocal)
      << "tail source went dense";
}

TEST(HybridSelectionTest, CompleteBipartiteHubGoesDense) {
  const Graph g = CompleteBipartite(5, 195);
  const RwrConfig config = HybridConfig();
  ResAccSolver solver(g, config, HybridOn());

  const std::vector<Score> estimate = solver.Query(/*source=*/0);
  EXPECT_NE(solver.last_stats().path, SolverPath::kLocal);
  GroundTruthCache truth(g, config);
  ExpectDefinition1(estimate, truth.Get(0), config, "bipartite hub");
}

TEST(HybridSelectionTest, DisabledHybridNeverSwitches) {
  const Graph g = testing::StarGraph(199);
  const RwrConfig config = HybridConfig();
  ResAccSolver solver(g, config, ResAccOptions{});  // hybrid off

  const std::vector<Score> estimate = solver.Query(/*source=*/0);
  EXPECT_EQ(solver.last_stats().path, SolverPath::kLocal);
  GroundTruthCache truth(g, config);
  ExpectDefinition1(estimate, truth.Get(0), config, "hybrid off");
}

TEST(HybridSelectionTest, NoSgAblationStaysLocalEvenForHubs) {
  // The No-SG ablation has no hop-layer BFS to probe; the selector must
  // leave it on the pure-local pipeline regardless of the source.
  const Graph g = testing::StarGraph(199);
  const RwrConfig config = HybridConfig();
  ResAccOptions options = HybridOn();
  options.use_hop_subgraph = false;
  ResAccSolver solver(g, config, options);

  const std::vector<Score> estimate = solver.Query(/*source=*/0);
  EXPECT_EQ(solver.last_stats().path, SolverPath::kLocal);
  GroundTruthCache truth(g, config);
  ExpectDefinition1(estimate, truth.Get(0), config, "No-SG hub");
}

TEST(HybridSelectionTest, ResidueMassTriggerFiresUnderTinyDelta) {
  // A cycle keeps every hop set tiny (selection point 1 stays local), but
  // a tiny delta makes the Theorem-3 walk count enormous: the OMFWD
  // round-boundary check must hand the query to the dense path.
  const Graph g = testing::CycleGraph(100);
  RwrConfig config = HybridConfig();
  config.delta = 1e-6;
  ResAccSolver solver(g, config, HybridOn());

  const std::vector<Score> estimate = solver.Query(/*source=*/0);
  EXPECT_EQ(solver.last_stats().path, SolverPath::kDenseResidueMass);
  GroundTruthCache truth(g, config);
  ExpectDefinition1(estimate, truth.Get(0), config, "residue-mass trigger");
}

// The selection decision is visible in the ControlledQueryResult tags: a
// completed dense run is NOT degraded and reports the configured epsilon.
TEST(HybridSelectionTest, DenseResultReportsConfiguredEpsilon) {
  const Graph g = testing::StarGraph(199);
  const RwrConfig config = HybridConfig();
  ResAccSolver solver(g, config, HybridOn());

  const ControlledQueryResult result =
      solver.QueryControlled(/*source=*/0, QueryControl{});
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(solver.last_stats().path, SolverPath::kDenseShrinkFloor);
  EXPECT_FALSE(result.degraded);
  EXPECT_DOUBLE_EQ(result.uncorrected_mass, 0.0);
  EXPECT_DOUBLE_EQ(result.achieved_epsilon, config.epsilon);
}

// ---------------------------------------------------------------------------
// Baseline lanes: FORA has no hybrid path but must keep its own guarantee
// on the same hub-heavy graphs the hybrid targets.

TEST(HybridSelectionTest, ForaKeepsGuaranteeOnHubGraphs) {
  const RwrConfig config = HybridConfig();
  const Graph graphs[] = {testing::StarGraph(199), CompleteBipartite(5, 195)};
  const char* names[] = {"star", "bipartite"};
  for (std::size_t i = 0; i < 2; ++i) {
    Fora fora(graphs[i], config);
    GroundTruthCache truth(graphs[i], config);
    ExpectDefinition1(fora.Query(0), truth.Get(0), config, names[i]);
  }
}

// ---------------------------------------------------------------------------
// Bit-identity: the dense sweep has no RNG and a fixed CSR order, so the
// result must be bitwise invariant across walk_threads and lane counts,
// and a batched dense lane must replay the serial dense solve exactly.

TEST(HybridBitIdentityTest, DensePathInvariantAcrossWalkThreads) {
  const Graph g = testing::StarGraph(199);
  const RwrConfig config = HybridConfig();
  ResAccOptions one = HybridOn();
  one.walk_threads = 1;
  ResAccOptions four = HybridOn();
  four.walk_threads = 4;

  ResAccSolver s1(g, config, one);
  ResAccSolver s4(g, config, four);
  const std::vector<Score> a = s1.Query(0);
  const std::vector<Score> b = s4.Query(0);
  ASSERT_EQ(s1.last_stats().path, SolverPath::kDenseShrinkFloor);
  ASSERT_EQ(s4.last_stats().path, SolverPath::kDenseShrinkFloor);
  ExpectBitIdentical(a, b, "walk_threads 1 vs 4");
}

TEST(HybridBitIdentityTest, BatchDenseLanesMatchSerialAcrossLaneCounts) {
  // Mixed batch on a hub-heavy graph: the head lanes go dense, the tail
  // lanes stay local, and every completed lane must be bit-identical to
  // the serial hybrid solver — at every batch size.
  const Graph g = ChungLuPowerLaw(1000, 12000, 2.0, /*seed=*/3);
  const RwrConfig config = HybridConfig();
  ResAccOptions options = HybridOn();
  options.max_hop_set_fraction = 0.02;

  const std::vector<NodeId> by_degree = g.NodesByOutDegreeDesc();
  std::vector<NodeId> sources;
  for (std::size_t i = 0; i < 4; ++i) sources.push_back(by_degree[i]);
  for (std::size_t i = 0; i < 12; ++i) {
    sources.push_back(by_degree[by_degree.size() / 2 + i * 7]);
  }

  ResAccSolver serial(g, config, options);
  std::vector<ControlledQueryResult> expected;
  std::vector<SolverPath> expected_paths;
  bool saw_dense = false;
  bool saw_local = false;
  for (NodeId s : sources) {
    expected.push_back(serial.QueryControlled(s, QueryControl{}));
    expected_paths.push_back(serial.last_stats().path);
    (serial.last_stats().path == SolverPath::kLocal ? saw_local : saw_dense) =
        true;
  }
  ASSERT_TRUE(saw_dense) << "no source selected the dense path";
  ASSERT_TRUE(saw_local) << "no source stayed local";

  BatchSolver batch(g, config, options);
  for (const std::size_t batch_size : {1u, 4u, 16u}) {
    const std::vector<ControlledQueryResult> got =
        batch.QueryAllChunked(sources, batch_size);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_TRUE(got[i].status.ok());
      ExpectBitIdentical(expected[i].scores, got[i].scores, "batched lane");
      EXPECT_EQ(got[i].achieved_epsilon, expected[i].achieved_epsilon);
      EXPECT_EQ(got[i].degraded, expected[i].degraded);
    }
  }
}

TEST(HybridBitIdentityTest, BatchResidueMassTriggerMatchesSerial) {
  // The round-boundary trigger must fire at the same round for a batched
  // lane as for the serial solver — verified through bit-identity of the
  // resulting dense payloads.
  const Graph g = testing::CycleGraph(100);
  RwrConfig config = HybridConfig();
  config.delta = 1e-6;
  ResAccOptions options = HybridOn();

  ResAccSolver serial(g, config, options);
  const std::vector<NodeId> sources = {0, 25, 50, 75};
  std::vector<ControlledQueryResult> expected;
  for (NodeId s : sources) {
    expected.push_back(serial.QueryControlled(s, QueryControl{}));
    ASSERT_EQ(serial.last_stats().path, SolverPath::kDenseResidueMass);
  }

  BatchSolver batch(g, config, options);
  const std::vector<ControlledQueryResult> got =
      batch.QueryAllChunked(sources, sources.size());
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ExpectBitIdentical(expected[i].scores, got[i].scores, "cycle lane");
  }
}

// ---------------------------------------------------------------------------
// Top-k on the dense path: the prefix of the dense vector, same bounds as
// MakeApproximateTopK, bit-identical between serial and batch.

TEST(HybridTopKTest, DenseTopKIsPrefixOfDenseVector) {
  const Graph g = testing::StarGraph(199);
  const RwrConfig config = HybridConfig();
  constexpr std::size_t kK = 10;
  ResAccSolver solver(g, config, HybridOn());

  const std::vector<Score> full = solver.Query(/*source=*/0);
  ASSERT_EQ(solver.last_stats().path, SolverPath::kDenseShrinkFloor);
  const TopKResult topk = solver.QueryTopK(/*source=*/0, kK);
  ASSERT_TRUE(topk.status.ok());
  EXPECT_EQ(solver.last_stats().path, SolverPath::kDenseShrinkFloor);
  ASSERT_EQ(topk.entries.size(), kK);
  EXPECT_FALSE(topk.degraded);
  EXPECT_DOUBLE_EQ(topk.achieved_epsilon, config.epsilon);

  const std::vector<NodeId> exact_order = TopKIndices(full, kK);
  for (std::size_t i = 0; i < kK; ++i) {
    EXPECT_EQ(topk.entries[i].node, exact_order[i]) << "rank " << i;
    EXPECT_EQ(topk.entries[i].estimate, full[exact_order[i]]) << "rank " << i;
  }
}

TEST(HybridTopKTest, BatchDenseTopKMatchesSerial) {
  const Graph g = testing::StarGraph(199);
  const RwrConfig config = HybridConfig();
  constexpr std::size_t kK = 10;
  const ResAccOptions options = HybridOn();

  ResAccSolver serial(g, config, options);
  const TopKResult expected = serial.QueryTopK(/*source=*/0, kK);

  BatchSolver batch(g, config, options);
  std::vector<BatchLane> lanes(1);
  lanes[0].source = 0;
  lanes[0].top_k = kK;
  std::vector<TopKResult> topk_results;
  batch.QueryBatch(lanes, &topk_results);
  ASSERT_EQ(topk_results.size(), 1u);
  const TopKResult& got = topk_results[0];
  ASSERT_EQ(got.entries.size(), expected.entries.size());
  for (std::size_t i = 0; i < got.entries.size(); ++i) {
    EXPECT_EQ(got.entries[i].node, expected.entries[i].node);
    EXPECT_EQ(got.entries[i].estimate, expected.entries[i].estimate);
    EXPECT_EQ(got.entries[i].lower, expected.entries[i].lower);
    EXPECT_EQ(got.entries[i].upper, expected.entries[i].upper);
  }
  EXPECT_EQ(got.certified, expected.certified);
  EXPECT_EQ(got.outsider_upper, expected.outsider_upper);
}

// ---------------------------------------------------------------------------
// Satellite 1: the adaptive hop cap floors at 1 hop and reports the shrink.

TEST(HubShrinkTest, ShrinkFloorsAtOneHop) {
  const Graph g = CompleteBipartite(5, 195);
  RwrConfig config = HybridConfig();

  HHopFwdOptions options;
  options.num_hops = 2;
  options.max_hop_set_fraction = 0.05;  // 10 nodes: even 1 hop overflows
  PushState state(g.num_nodes());
  HopLayers layers;
  const HHopFwdStats stats = RunHHopFwd(g, config, 0, options, state, &layers);
  EXPECT_GE(stats.effective_hops, 1u);
  EXPECT_EQ(stats.effective_hops, 1u);
  EXPECT_EQ(stats.shrink_hops, 1u);
  EXPECT_TRUE(stats.shrink_floored);
  EXPECT_NEAR(state.ReserveSum() + state.ResidueSum(), 1.0, 1e-12);
}

TEST(HubShrinkTest, NoSgStatsConventionReportsWholeGraph) {
  // No-SG convention (h_hop_fwd.h): the whole graph is the "hop set"
  // (hop_set_size = n, hop_set_edges = m) and there is no frontier.
  const Graph g = testing::CycleGraph(50);
  RwrConfig config = HybridConfig();

  HHopFwdOptions options;
  options.use_hop_subgraph = false;
  PushState state(g.num_nodes());
  HopLayers layers;
  const HHopFwdStats stats = RunHHopFwd(g, config, 0, options, state, &layers);
  EXPECT_EQ(stats.hop_set_size, g.num_nodes());
  EXPECT_EQ(stats.hop_set_edges, g.num_edges());
  EXPECT_EQ(stats.frontier_size, 0u);
  EXPECT_FALSE(stats.shrink_floored);
  EXPECT_EQ(stats.shrink_hops, 0u);
}

// ---------------------------------------------------------------------------
// Satellite 3: the serve-layer config hash must cover the hybrid knobs —
// a dense answer is not bitwise a local answer, so the cache must never
// serve across selection policies.

TEST(HybridConfigHashTest, HashCoversEveryHybridKnob) {
  const RwrConfig config = HybridConfig();
  const ResAccOptions base = HybridOn();
  const std::uint64_t h0 = HashQueryConfig(config, base);

  ResAccOptions same = HybridOn();
  EXPECT_EQ(HashQueryConfig(config, same), h0) << "hash is not deterministic";

  ResAccOptions off = base;
  off.hybrid.enable = false;
  EXPECT_NE(HashQueryConfig(config, off), h0) << "enable not hashed";

  ResAccOptions ratio = base;
  ratio.hybrid.cost_ratio = 2.0;
  EXPECT_NE(HashQueryConfig(config, ratio), h0) << "cost_ratio not hashed";

  ResAccOptions tol = base;
  tol.hybrid.tolerance = 1e-9;
  EXPECT_NE(HashQueryConfig(config, tol), h0) << "tolerance not hashed";

  ResAccOptions cap = base;
  cap.hybrid.max_iterations = 3;
  EXPECT_NE(HashQueryConfig(config, cap), h0) << "max_iterations not hashed";
}

// ---------------------------------------------------------------------------
// Cost-model sanity: the published selection functions behave monotonically
// so the thresholds in DESIGN.md stay truthful.

TEST(HybridCostModelTest, SelectionRespondsToCostRatio) {
  const Graph g = testing::StarGraph(199);
  const RwrConfig config = HybridConfig();
  HybridOptions options;
  options.enable = true;

  // A floored shrink switches regardless of the ratio.
  EXPECT_EQ(ChooseFromHopStats(g, config, options, /*r_max_hop=*/1e-14,
                               /*shrink_floored=*/true, /*hop_set_edges=*/398),
            SolverPath::kDenseShrinkFloor);

  // Without the floor the ratio decides: a huge ratio pins the query
  // local, a tiny one switches on any nontrivial hop set.
  options.cost_ratio = 1e12;
  EXPECT_EQ(ChooseFromHopStats(g, config, options, 1e-14, false, 398.0),
            SolverPath::kLocal);
  options.cost_ratio = 1e-12;
  EXPECT_EQ(ChooseFromHopStats(g, config, options, 1e-14, false, 398.0),
            SolverPath::kDenseHopGrowth);

  // Residue trigger: zero residue mass never beats the dense bound; the
  // full unit mass under a tiny delta always does.
  EXPECT_FALSE(DenseBeatsRemedy(g, config, HybridOptions{.enable = true},
                                /*residue_sum=*/0.0, /*walk_scale=*/1.0));
  RwrConfig tiny = config;
  tiny.delta = 1e-9;
  EXPECT_TRUE(DenseBeatsRemedy(g, tiny, HybridOptions{.enable = true},
                               /*residue_sum=*/1.0, /*walk_scale=*/1.0));
}

TEST(HybridCostModelTest, IterationBoundShrinksWithLooserTolerance) {
  const RwrConfig config = HybridConfig();
  HybridOptions tight;
  tight.tolerance = 1e-12;
  HybridOptions loose;
  loose.tolerance = 1e-2;
  EXPECT_GT(DenseIterationBound(config, tight),
            DenseIterationBound(config, loose));

  HybridOptions defaulted;  // tolerance <= 0 selects eps * delta
  EXPECT_DOUBLE_EQ(DenseTolerance(config, defaulted),
                   config.epsilon * config.delta);

  HybridOptions capped;
  capped.max_iterations = 5;
  EXPECT_EQ(DenseIterationBound(config, capped), 5u);
}

}  // namespace
}  // namespace resacc

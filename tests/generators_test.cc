#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "resacc/graph/generators.h"
#include "resacc/graph/graph.h"

namespace resacc {
namespace {

// Structural invariants every generator must satisfy, swept over
// (generator kind, seed) with TEST_P.
enum class Kind { kErdosRenyi, kChungLu, kBarabasiAlbert, kWattsStrogatz,
                  kPlantedPartition };

Graph Make(Kind kind, std::uint64_t seed) {
  switch (kind) {
    case Kind::kErdosRenyi:
      return ErdosRenyi(500, 2000, seed);
    case Kind::kChungLu:
      return ChungLuPowerLaw(500, 2500, 2.2, seed);
    case Kind::kBarabasiAlbert:
      return BarabasiAlbert(500, 3, seed);
    case Kind::kWattsStrogatz:
      return WattsStrogatz(500, 4, 0.1, seed);
    case Kind::kPlantedPartition:
      return PlantedPartition(500, 5, 8.0, 1.0, seed);
  }
  return Graph();
}

class GeneratorInvariantsTest
    : public ::testing::TestWithParam<std::tuple<Kind, std::uint64_t>> {};

TEST_P(GeneratorInvariantsTest, NoSelfLoopsSortedDedupedConsistent) {
  const auto [kind, seed] = GetParam();
  const Graph g = Make(kind, seed);
  ASSERT_GT(g.num_nodes(), 0u);
  ASSERT_GT(g.num_edges(), 0u);

  EdgeId out_total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto neighbors = g.OutNeighbors(u);
    out_total += neighbors.size();
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      EXPECT_NE(neighbors[i], u) << "self loop at " << u;
      if (i > 0) {
        EXPECT_LT(neighbors[i - 1], neighbors[i])
            << "unsorted/duplicate at " << u;
      }
    }
  }
  EXPECT_EQ(out_total, g.num_edges());

  // Every out-edge has a matching in-edge entry.
  EdgeId in_total = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) in_total += g.InDegree(v);
  EXPECT_EQ(in_total, g.num_edges());
}

TEST_P(GeneratorInvariantsTest, DeterministicInSeed) {
  const auto [kind, seed] = GetParam();
  const Graph a = Make(kind, seed);
  const Graph b = Make(kind, seed);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    ASSERT_EQ(a.OutDegree(v), b.OutDegree(v)) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorInvariantsTest,
    ::testing::Combine(::testing::Values(Kind::kErdosRenyi, Kind::kChungLu,
                                         Kind::kBarabasiAlbert,
                                         Kind::kWattsStrogatz,
                                         Kind::kPlantedPartition),
                       ::testing::Values(1u, 42u, 12345u)));

TEST(ErdosRenyiTest, HitsRequestedEdgeCountApproximately) {
  const Graph g = ErdosRenyi(1000, 5000, 3);
  EXPECT_GT(g.num_edges(), 4900u);  // few duplicates at this density
  EXPECT_LE(g.num_edges(), 5000u);
}

TEST(ChungLuTest, ProducesHeavyTail) {
  const Graph g = ChungLuPowerLaw(5000, 50000, 2.1, 9);
  // A power-law graph's max degree should far exceed the average.
  const double avg = static_cast<double>(g.num_edges()) /
                     static_cast<double>(g.num_nodes());
  EXPECT_GT(g.MaxOutDegree(), 10 * avg);
}

TEST(ChungLuTest, SymmetrizedIsUndirected) {
  const Graph g = ChungLuPowerLaw(500, 3000, 2.3, 4, /*symmetrize=*/true);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(g.OutDegree(v), g.InDegree(v));
  }
}

TEST(BarabasiAlbertTest, OlderNodesAreRicher) {
  const Graph g = BarabasiAlbert(2000, 2, 5);
  // Preferential attachment: early nodes accumulate far higher degree.
  double early = 0.0;
  double late = 0.0;
  for (NodeId v = 0; v < 20; ++v) early += g.OutDegree(v);
  for (NodeId v = 1980; v < 2000; ++v) late += g.OutDegree(v);
  EXPECT_GT(early, 3.0 * late);
}

TEST(WattsStrogatzTest, DegreeNearlyRegular) {
  const Graph g = WattsStrogatz(1000, 3, 0.05, 6);
  // Ring lattice with k=3 per side: degree ~6 with small rewiring noise.
  for (NodeId v = 0; v < g.num_nodes(); v += 37) {
    EXPECT_GE(g.OutDegree(v), 3u);
    EXPECT_LE(g.OutDegree(v), 12u);
  }
}

TEST(PlantedPartitionTest, WithinBlockDensityDominates) {
  const NodeId n = 1000;
  const NodeId blocks = 10;
  const Graph g = PlantedPartition(n, blocks, 12.0, 2.0, 8);
  const NodeId block_size = n / blocks;
  EdgeId within = 0;
  EdgeId cross = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      if (u / block_size == v / block_size) {
        ++within;
      } else {
        ++cross;
      }
    }
  }
  EXPECT_GT(within, 3 * cross);
}

}  // namespace
}  // namespace resacc

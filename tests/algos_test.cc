#include <cmath>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "resacc/algo/bippr.h"
#include "resacc/algo/fora.h"
#include "resacc/algo/fora_plus.h"
#include "resacc/algo/forward_search_solver.h"
#include "resacc/algo/inverse.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/algo/particle_filter.h"
#include "resacc/algo/power.h"
#include "resacc/algo/topppr.h"
#include "resacc/algo/tpa.h"
#include "resacc/eval/metrics.h"
#include "resacc/graph/generators.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

RwrConfig SmallConfig(NodeId n, DanglingPolicy policy) {
  RwrConfig config;
  config.alpha = 0.2;
  config.epsilon = 0.5;
  config.delta = 1.0 / static_cast<double>(n);
  config.p_f = 1e-7;
  config.dangling = policy;
  config.seed = 0x600d;
  return config;
}

class PowerVsInverseTest : public ::testing::TestWithParam<DanglingPolicy> {};

TEST_P(PowerVsInverseTest, AgreeOnSmallGraphs) {
  const DanglingPolicy policy = GetParam();
  for (const Graph& g : {testing::Figure1Graph(), testing::Figure3Graph(),
                         ErdosRenyi(80, 400, 2)}) {
    const RwrConfig config = SmallConfig(g.num_nodes(), policy);
    PowerIteration power(g, config, 1e-13);
    ExactInverse inverse(g, config);
    for (NodeId s = 0; s < std::min<NodeId>(g.num_nodes(), 5); ++s) {
      const std::vector<Score> a = power.Query(s);
      const std::vector<Score> b = inverse.Query(s);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        ASSERT_NEAR(a[v], b[v], 1e-10)
            << "s=" << s << " v=" << v << " n=" << g.num_nodes();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, PowerVsInverseTest,
                         ::testing::Values(DanglingPolicy::kAbsorb,
                                           DanglingPolicy::kBackToSource));

TEST(PowerTest, IterationCountTracksTolerance) {
  const Graph g = testing::CycleGraph(50);
  const RwrConfig config = SmallConfig(50, DanglingPolicy::kAbsorb);
  PowerIteration loose(g, config, 1e-3);
  PowerIteration tight(g, config, 1e-12);
  loose.Query(0);
  tight.Query(0);
  EXPECT_LT(loose.last_iterations(), tight.last_iterations());
}

TEST(ForwardSearchSolverTest, TinyThresholdApproachesExact) {
  const Graph g = ErdosRenyi(150, 900, 4);
  const RwrConfig config = SmallConfig(150, DanglingPolicy::kBackToSource);
  ForwardSearchSolver fwd(g, config, /*r_max=*/1e-10);
  PowerIteration power(g, config, 1e-13);
  const std::vector<Score> estimate = fwd.Query(0);
  const std::vector<Score> exact = power.Query(0);
  EXPECT_LT(MeanAbsError(estimate, exact), 1e-7);
  EXPECT_GT(fwd.last_push_stats().push_operations, 0u);
}

class GuaranteedAlgoTest
    : public ::testing::TestWithParam<std::tuple<int, DanglingPolicy>> {};

// Every output-bounded algorithm must meet the Definition 1 guarantee.
TEST_P(GuaranteedAlgoTest, MeetsRelativeError) {
  const auto [algo_id, policy] = GetParam();
  const Graph g = ChungLuPowerLaw(300, 1800, 2.2, 6);
  const RwrConfig config = SmallConfig(g.num_nodes(), policy);

  std::unique_ptr<SsrwrAlgorithm> algo;
  switch (algo_id) {
    case 0:
      algo = std::make_unique<MonteCarlo>(g, config);
      break;
    case 1:
      algo = std::make_unique<Fora>(g, config);
      break;
    case 2: {
      if (policy == DanglingPolicy::kBackToSource) GTEST_SKIP();
      auto fora_plus = std::make_unique<ForaPlus>(g, config);
      ASSERT_TRUE(fora_plus->BuildIndex().ok());
      algo = std::move(fora_plus);
      break;
    }
  }

  NodeId source = 0;
  while (g.OutDegree(source) == 0) ++source;
  const std::vector<Score> estimate = algo->Query(source);

  PowerIteration power(g, config, 1e-12);
  const std::vector<Score> exact = power.Query(source);
  EXPECT_LE(MaxRelativeErrorAboveDelta(estimate, exact, config.delta),
            config.epsilon)
      << algo->name();
}

INSTANTIATE_TEST_SUITE_P(
    Algos, GuaranteedAlgoTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(DanglingPolicy::kAbsorb,
                                         DanglingPolicy::kBackToSource)));

TEST(ForaPlusTest, RefusesBackToSourceWithSinks) {
  const Graph g = testing::Figure1Graph();  // has a sink
  const RwrConfig config = SmallConfig(4, DanglingPolicy::kBackToSource);
  ForaPlus fora_plus(g, config);
  const Status status = fora_plus.BuildIndex();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ForaPlusTest, MemoryBudgetEnforced) {
  const Graph g = ErdosRenyi(300, 1800, 7);
  const RwrConfig config = SmallConfig(300, DanglingPolicy::kAbsorb);
  ForaPlusOptions options;
  options.memory_budget_bytes = 16;  // absurdly small
  ForaPlus fora_plus(g, config, options);
  const Status status = fora_plus.BuildIndex();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(fora_plus.IndexReady());
}

TEST(ForaPlusTest, IndexBytesReported) {
  const Graph g = ErdosRenyi(200, 1200, 8);
  const RwrConfig config = SmallConfig(200, DanglingPolicy::kAbsorb);
  ForaPlus fora_plus(g, config);
  ASSERT_TRUE(fora_plus.BuildIndex().ok());
  EXPECT_GT(fora_plus.IndexBytes(), 0u);
  EXPECT_GT(fora_plus.index_walks(), 0u);
}

TEST(ForaTest, TimeBudgetDegradesGracefully) {
  const Graph g = ChungLuPowerLaw(500, 3000, 2.2, 9);
  RwrConfig config = SmallConfig(g.num_nodes(), DanglingPolicy::kAbsorb);
  ForaOptions options;
  options.time_budget_seconds = 1e-9;
  Fora fora(g, config, options);
  NodeId source = 0;
  while (g.OutDegree(source) == 0) ++source;
  const std::vector<Score> scores = fora.Query(source);
  EXPECT_TRUE(fora.last_stats().budget_exhausted);
  // Reserves are still reported even though walks were cut off.
  Score total = 0.0;
  for (Score s : scores) total += s;
  EXPECT_GT(total, 0.0);
  EXPECT_LT(total, 1.0);
}

TEST(TpaTest, NearFieldPlusPageRankTail) {
  const Graph g = ChungLuPowerLaw(300, 2400, 2.3, 10);
  const RwrConfig config = SmallConfig(g.num_nodes(), DanglingPolicy::kAbsorb);
  TpaOptions options;
  options.near_hops = 20;
  Tpa tpa(g, config, options);
  ASSERT_TRUE(tpa.BuildIndex().ok());
  EXPECT_EQ(tpa.IndexBytes(), g.num_nodes() * sizeof(Score));

  NodeId source = 0;
  while (g.OutDegree(source) == 0) ++source;
  const std::vector<Score> estimate = tpa.Query(source);
  PowerIteration power(g, config, 1e-12);
  const std::vector<Score> exact = power.Query(source);

  // Additive error bounded by the tail mass (1-alpha)^near_hops spread
  // over the PageRank distribution (plus what PageRank gets right).
  const double tail = std::pow(1.0 - config.alpha, options.near_hops);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(std::fabs(estimate[v] - exact[v]), tail + 1e-9);
  }
  // Ranking of top nodes is still good (near field dominates).
  EXPECT_GT(NdcgAtK(estimate, exact, 10), 0.99);
}

TEST(TopPprTest, TopKPrecisionHigh) {
  const Graph g = ChungLuPowerLaw(400, 2800, 2.2, 11);
  const RwrConfig config = SmallConfig(g.num_nodes(), DanglingPolicy::kAbsorb);
  TopPprOptions options;
  options.top_k = 50;
  TopPpr topppr(g, config, options);
  NodeId source = 0;
  while (g.OutDegree(source) == 0) ++source;
  const std::vector<Score> estimate = topppr.Query(source);
  EXPECT_EQ(topppr.last_top_k().size(), 50u);

  PowerIteration power(g, config, 1e-12);
  const std::vector<Score> exact = power.Query(source);
  EXPECT_GE(PrecisionAtK(estimate, exact, 50), 0.9);
  EXPECT_GT(NdcgAtK(estimate, exact, 50), 0.98);
}

TEST(ParticleFilterTest, ApproximatesTopScores) {
  const Graph g = ChungLuPowerLaw(300, 2100, 2.2, 12);
  const RwrConfig config = SmallConfig(g.num_nodes(), DanglingPolicy::kAbsorb);
  ParticleFilterOptions options;
  options.w_min = 10.0;  // fine granularity for a small graph
  ParticleFilter pf(g, config, options);
  NodeId source = 0;
  while (g.OutDegree(source) == 0) ++source;
  const std::vector<Score> estimate = pf.Query(source);

  PowerIteration power(g, config, 1e-12);
  const std::vector<Score> exact = power.Query(source);
  // PF is biased low (dropped remainders) but must track the big scores.
  Score total = 0.0;
  for (Score s : estimate) total += s;
  EXPECT_LE(total, 1.0 + 1e-9);
  EXPECT_GT(total, 0.5);
  EXPECT_GT(NdcgAtK(estimate, exact, 10), 0.95);
}

TEST(ParticleFilterTest, LargerWMinLosesMoreMass) {
  const Graph g = ChungLuPowerLaw(300, 2100, 2.2, 12);
  const RwrConfig config = SmallConfig(g.num_nodes(), DanglingPolicy::kAbsorb);
  auto mass_with_wmin = [&](double w_min) {
    ParticleFilterOptions options;
    options.w_min = w_min;
    ParticleFilter pf(g, config, options);
    const std::vector<Score> estimate = pf.Query(0);
    Score total = 0.0;
    for (Score s : estimate) total += s;
    return total;
  };
  // The paper: "The larger the w_min, the larger the error."
  EXPECT_GE(mass_with_wmin(5.0), mass_with_wmin(5000.0));
}

TEST(BiPprTest, PairEstimatesMatchExact) {
  const Graph g = ChungLuPowerLaw(200, 1400, 2.2, 13);
  const RwrConfig config = SmallConfig(g.num_nodes(), DanglingPolicy::kAbsorb);
  BiPpr bippr(g, config);
  ExactInverse oracle(g, config);

  NodeId source = 0;
  while (g.OutDegree(source) == 0) ++source;
  const std::vector<Score> exact = oracle.Query(source);
  for (NodeId target = 0; target < 20; ++target) {
    const Score estimate = bippr.EstimatePair(source, target);
    if (exact[target] > config.delta) {
      EXPECT_LE(std::fabs(estimate - exact[target]) / exact[target],
                config.epsilon)
          << "target " << target;
    } else {
      EXPECT_NEAR(estimate, exact[target], 5.0 * config.delta);
    }
  }
}

TEST(MonteCarloTest, WalkScaleControlsCost) {
  const Graph g = ErdosRenyi(100, 600, 14);
  const RwrConfig config = SmallConfig(100, DanglingPolicy::kAbsorb);
  MonteCarlo cheap(g, config, /*walk_scale=*/0.01);
  MonteCarlo full(g, config, /*walk_scale=*/1.0);
  cheap.Query(0);
  const std::uint64_t cheap_walks = cheap.last_walk_stats().walks;
  full.Query(0);
  EXPECT_LT(cheap_walks, full.last_walk_stats().walks / 50);
}

}  // namespace
}  // namespace resacc

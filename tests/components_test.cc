#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "resacc/graph/components.h"
#include "resacc/graph/generators.h"
#include "resacc/graph/graph_stats.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

using ::resacc::testing::FromEdges;

TEST(WccTest, TwoIslands) {
  // 0-1-2 triangle and 3-4 edge, undirected.
  const Graph g = FromEdges(5, {{0, 1}, {1, 2}, {2, 0}, {3, 4}},
                            /*symmetrize=*/true);
  const ComponentDecomposition wcc = WeaklyConnectedComponents(g);
  EXPECT_EQ(wcc.num_components, 2u);
  EXPECT_EQ(wcc.component_of[0], wcc.component_of[2]);
  EXPECT_EQ(wcc.component_of[3], wcc.component_of[4]);
  EXPECT_NE(wcc.component_of[0], wcc.component_of[3]);
  EXPECT_EQ(wcc.sizes[wcc.LargestComponent()], 3u);
  EXPECT_EQ(wcc.NodesOf(wcc.component_of[3]), (std::vector<NodeId>{3, 4}));
}

TEST(WccTest, DirectedEdgesCountAsUndirected) {
  // 0 -> 1 -> 2 with no way back is still one weak component.
  const Graph g = FromEdges(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(WeaklyConnectedComponents(g).num_components, 1u);
}

TEST(WccTest, IsolatedNodesAreSingletons) {
  const Graph g = FromEdges(4, {{0, 1}});
  const ComponentDecomposition wcc = WeaklyConnectedComponents(g);
  EXPECT_EQ(wcc.num_components, 3u);
}

TEST(SccTest, CycleIsOneComponent) {
  const Graph g = testing::CycleGraph(10);
  const ComponentDecomposition scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 1u);
  EXPECT_EQ(scc.sizes[0], 10u);
}

TEST(SccTest, DagIsAllSingletons) {
  const Graph g = FromEdges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const ComponentDecomposition scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 4u);
  // Topological property: an edge never goes from an earlier-finished
  // (lower id in reverse topological order) to later — just check each
  // node is its own component.
  for (std::size_t size : scc.sizes) EXPECT_EQ(size, 1u);
}

TEST(SccTest, TwoCyclesJoinedByBridge) {
  // cycle {0,1,2} -> bridge -> cycle {3,4,5}.
  const Graph g = FromEdges(
      6, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}});
  const ComponentDecomposition scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.component_of[0], scc.component_of[1]);
  EXPECT_EQ(scc.component_of[3], scc.component_of[5]);
  EXPECT_NE(scc.component_of[0], scc.component_of[3]);
}

TEST(SccTest, DeepPathDoesNotOverflowStack) {
  // 200k-node path: a recursive Tarjan would blow the stack.
  const NodeId n = 200000;
  GraphBuilder builder(n);
  for (NodeId v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  const Graph g = std::move(builder).Build();
  const ComponentDecomposition scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, n);
}

TEST(SccTest, AgreesWithWccOnSymmetricGraphs) {
  const Graph g = ChungLuPowerLaw(500, 2500, 2.2, 5, /*symmetrize=*/true);
  const ComponentDecomposition wcc = WeaklyConnectedComponents(g);
  const ComponentDecomposition scc = StronglyConnectedComponents(g);
  EXPECT_EQ(wcc.num_components, scc.num_components);
  std::vector<std::size_t> a = wcc.sizes;
  std::vector<std::size_t> b = scc.sizes;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(InducedSubgraphTest, KeepsOnlyInternalEdges) {
  const Graph g = testing::Figure1Graph();  // v1->{v2,v3}, v2->v4, v3->v2
  std::vector<NodeId> mapping;
  const Graph sub = InducedSubgraph(g, {0, 1, 3}, &mapping);
  EXPECT_EQ(sub.num_nodes(), 3u);
  // Kept: v1->v2 (0->1), v2->v4 (1->2). Dropped: edges touching v3.
  EXPECT_EQ(sub.num_edges(), 2u);
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_TRUE(sub.HasEdge(1, 2));
  EXPECT_EQ(mapping[2], kInvalidNode);
  EXPECT_EQ(mapping[3], 2u);
}

TEST(GraphStatsTest, ComputesShape) {
  const Graph g = testing::Figure1Graph();
  const GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_nodes, 4u);
  EXPECT_EQ(stats.num_edges, 4u);
  EXPECT_EQ(stats.max_out_degree, 2u);
  EXPECT_EQ(stats.num_sinks, 1u);    // v4
  EXPECT_EQ(stats.num_sources, 1u);  // v1
  EXPECT_FALSE(stats.is_symmetric);
  EXPECT_EQ(stats.largest_wcc, 4u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(GraphStatsTest, SymmetricDetection) {
  const Graph g = testing::StarGraph(4);
  EXPECT_TRUE(ComputeGraphStats(g).is_symmetric);
}

TEST(GraphStatsTest, HistogramCountsAllNodes) {
  const Graph g = ChungLuPowerLaw(1000, 8000, 2.2, 7);
  const auto histogram = DegreeHistogramLog2(g);
  const std::size_t total =
      std::accumulate(histogram.begin(), histogram.end(), std::size_t{0});
  EXPECT_EQ(total, g.num_nodes());
}

}  // namespace
}  // namespace resacc

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "resacc/core/h_hop_fwd.h"
#include "resacc/core/omfwd.h"
#include "resacc/graph/generators.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

using ::resacc::testing::Figure3Graph;

RwrConfig TestConfig(DanglingPolicy policy = DanglingPolicy::kAbsorb) {
  RwrConfig config;
  config.alpha = 0.2;
  config.dangling = policy;
  return config;
}

// Reproduces the looping phenomenon of Figure 3: after one accumulating
// phase on the triangle s -> v1 -> v2 -> s, the source residue is 0.512
// and the reserves are (0.2, 0.16, 0.128).
TEST(HHopFwdTest, Figure3AccumulatingPhase) {
  const Graph g = Figure3Graph();
  const RwrConfig config = TestConfig();
  HHopFwdOptions options;
  options.r_max_hop = 0.1;
  options.num_hops = 2;
  options.use_loop_accumulation = false;  // No-Loop to inspect raw phase...
  // ...but No-Loop keeps pushing s itself, so instead run with loop
  // accumulation and check rho, which is exactly the phase-1 residue.
  options.use_loop_accumulation = true;

  PushState state(g.num_nodes());
  HopLayers layers;
  const HHopFwdStats stats =
      RunHHopFwd(g, config, 0, options, state, &layers);

  EXPECT_NEAR(stats.rho, 0.512, 1e-15);
  // T: smallest integer with 0.512^T < r_max_hop * d_out(s) = 0.1:
  // 0.512^3 = 0.134 >= 0.1 > 0.512^4 = 0.0687 => T = 4.
  EXPECT_DOUBLE_EQ(stats.loop_count, 4.0);
  const double expected_scaler =
      (1.0 - std::pow(0.512, 4)) / (1.0 - 0.512);
  EXPECT_NEAR(stats.scaler, expected_scaler, 1e-12);

  // Scaled reserves: phase-1 reserves (0.2, 0.16, 0.128) times S.
  EXPECT_NEAR(state.reserve(0), 0.2 * expected_scaler, 1e-12);
  EXPECT_NEAR(state.reserve(1), 0.16 * expected_scaler, 1e-12);
  EXPECT_NEAR(state.reserve(2), 0.128 * expected_scaler, 1e-12);
  // Source residue: rho^T (Lemma 3: below r_max_hop * d_out(s)).
  EXPECT_NEAR(state.residue(0), std::pow(0.512, 4), 1e-12);
  EXPECT_LT(state.residue(0), options.r_max_hop * g.OutDegree(0));
}

TEST(HHopFwdTest, MassConservationAfterScaling) {
  const Graph g = Figure3Graph();
  const RwrConfig config = TestConfig();
  HHopFwdOptions options;
  options.r_max_hop = 0.1;
  options.num_hops = 2;

  PushState state(g.num_nodes());
  HopLayers layers;
  RunHHopFwd(g, config, 0, options, state, &layers);
  // The paper's Algorithm 3 line 10 uses rho^(T-1) in S, which breaks this
  // invariant; the corrected scaler preserves it exactly (DESIGN.md).
  EXPECT_NEAR(state.ReserveSum() + state.ResidueSum(), 1.0, 1e-12);
}

class HHopFwdPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::uint32_t, DanglingPolicy>> {};

TEST_P(HHopFwdPropertyTest, ConservationAndFrontierAccumulation) {
  const auto [seed, hops, policy] = GetParam();
  const Graph g = ChungLuPowerLaw(400, 2000, 2.3, seed);
  const RwrConfig config = TestConfig(policy);
  HHopFwdOptions options;
  options.r_max_hop = 1e-10;
  options.num_hops = hops;

  // Pick a source with out-edges.
  NodeId source = 0;
  while (g.OutDegree(source) == 0) ++source;

  PushState state(g.num_nodes());
  HopLayers layers;
  const HHopFwdStats stats =
      RunHHopFwd(g, config, source, options, state, &layers);

  EXPECT_NEAR(state.ReserveSum() + state.ResidueSum(), 1.0, 1e-10);
  EXPECT_EQ(layers.layers.size(), hops + 2u);
  EXPECT_EQ(stats.hop_set_size, layers.HopSetSize(hops));

  // No node outside V_(h+1)-hop can hold mass: pushes only happen inside
  // V_h-hop, whose out-edges reach at most layer h+1.
  for (NodeId v : state.touched()) {
    if (state.residue(v) > 0.0 || state.reserve(v) > 0.0) {
      EXPECT_LE(layers.distance[v], hops + 1) << "node " << v;
    }
  }

  // Residue of every in-subgraph node except s is below the *scaled*
  // threshold: the updating phase multiplies phase-1 residues (each below
  // r_max_hop * d_out) by S, exactly as if the later accumulating phases
  // had run with Lemma 2's adjusted push condition. Frontier nodes may
  // hold big accumulated residues instead.
  const Score scaled_r_max = options.r_max_hop * stats.scaler * (1 + 1e-12);
  for (NodeId v : state.touched()) {
    if (v != source && layers.InHopSet(v, hops)) {
      EXPECT_FALSE(SatisfiesPushCondition(g, state, v, scaled_r_max))
          << "node " << v;
    }
  }
  // Lemma 3: the source residue ends below r_max_hop * d_out(s).
  if (stats.rho > 0.0) {
    EXPECT_LT(state.residue(source),
              options.r_max_hop * std::max<NodeId>(1, g.OutDegree(source)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HHopFwdPropertyTest,
    ::testing::Combine(::testing::Values(3u, 17u),
                       ::testing::Values(1u, 2u, 3u),
                       ::testing::Values(DanglingPolicy::kAbsorb,
                                         DanglingPolicy::kBackToSource)));

// Lemma 4: if r_max_hop is small enough that every node in the h-hop set
// pushes at least once, r_sum^hop <= (1 - alpha)^h.
TEST(HHopFwdTest, Lemma4ResidueSumBound) {
  const Graph g = ErdosRenyi(200, 1200, 5);
  const RwrConfig config = TestConfig(DanglingPolicy::kBackToSource);
  for (std::uint32_t h : {1u, 2u, 3u}) {
    HHopFwdOptions options;
    options.r_max_hop = 1e-13;  // small enough to push everything
    options.num_hops = h;
    PushState state(g.num_nodes());
    HopLayers layers;
    RunHHopFwd(g, config, 0, options, state, &layers);
    EXPECT_LE(state.ResidueSum(),
              std::pow(1.0 - config.alpha, h) + 1e-9)
        << "h=" << h;
  }
}

TEST(OmfwdTest, DrainsFrontierAndMeetsThreshold) {
  const Graph g = ChungLuPowerLaw(500, 3000, 2.2, 9);
  const RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);
  NodeId source = 0;
  while (g.OutDegree(source) == 0) ++source;

  HHopFwdOptions hhop;
  hhop.r_max_hop = 1e-12;
  hhop.num_hops = 2;
  PushState state(g.num_nodes());
  HopLayers layers;
  RunHHopFwd(g, config, source, hhop, state, &layers);
  const Score r_sum_before = state.ResidueSum();

  const Score r_max_f = 1.0 / (10.0 * static_cast<Score>(g.num_edges()));
  const PushStats stats =
      RunOmfwd(g, config, source, r_max_f, layers.layers.back(), state);

  // OMFWD keeps conservation, reduces the residue sum, and leaves no node
  // above the push threshold.
  EXPECT_NEAR(state.ReserveSum() + state.ResidueSum(), 1.0, 1e-10);
  EXPECT_LT(state.ResidueSum(), r_sum_before);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_FALSE(SatisfiesPushCondition(g, state, v, r_max_f));
  }
  if (!layers.layers.back().empty()) {
    EXPECT_GT(stats.push_operations, 0u);
  }
}

// Pins the loop trick's mechanical benefit: the No-Loop variant re-pushes
// the source's returning residue round after round, so it must spend at
// least as many (and on loop-heavy graphs strictly more) push operations
// for the same threshold.
TEST(HHopFwdTest, LoopAccumulationSavesPushes) {
  // Undirected ER graph: plenty of 2-hop return paths to the source.
  const Graph g = ErdosRenyi(300, 900, 7, /*symmetrize=*/true);
  const RwrConfig config = TestConfig(DanglingPolicy::kAbsorb);

  auto pushes_with = [&](bool use_loop) {
    HHopFwdOptions options;
    options.r_max_hop = 1e-12;
    options.num_hops = 2;
    options.use_loop_accumulation = use_loop;
    PushState state(g.num_nodes());
    HopLayers layers;
    return RunHHopFwd(g, config, 0, options, state, &layers)
        .push.push_operations;
  };

  const std::uint64_t with_loop = pushes_with(true);
  const std::uint64_t without_loop = pushes_with(false);
  EXPECT_LT(with_loop, without_loop);
}

TEST(OmfwdTest, EmptyFrontierIsNoOp) {
  const Graph g = Figure3Graph();
  const RwrConfig config = TestConfig();
  PushState state(g.num_nodes());
  state.SetResidue(0, 0.5);
  const PushStats stats = RunOmfwd(g, config, 0, 0.9, {}, state);
  EXPECT_EQ(stats.push_operations, 0u);
  EXPECT_DOUBLE_EQ(state.residue(0), 0.5);
}

}  // namespace
}  // namespace resacc

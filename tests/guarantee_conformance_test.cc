// Statistical conformance suite (PR 4 satellite): asserts Definition 1 —
// every node with pi(v) > delta satisfies |pi_hat(v) - pi(v)| <=
// epsilon * pi(v) with probability at least 1 - p_f — empirically, for
// each solver that claims it (ResAcc, FORA, MC), on two seeded graphs,
// against power-iteration ground truth.
//
// Methodology: N independent trials per (solver, graph); each trial uses a
// fresh solver with a distinct RNG seed (a repeated Query on one solver is
// deterministic by design, so independence must come from the seed). A
// checked pair is (trial, node with pi > delta); a violation is a pair
// whose relative error exceeds epsilon. Definition 1 bounds the expected
// violation fraction by p_f, so the observed fraction must stay below
// p_f + 3 standard deviations of the binomial at the checked-pair count.
// In practice the concentration bounds behind Theorem 3 are conservative
// and the observed fraction is ~0.
//
// This suite is excluded from tier-1: it runs ~1200 full queries. It is
// labelled `conformance` in CTest and skips itself unless
// RESACC_CONFORMANCE=1 (the nightly conformance workflow sets both).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "resacc/algo/fora.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/graph/dynamic/mutable_graph_view.h"
#include "resacc/graph/generators.h"
#include "resacc/graph/graph_builder.h"
#include "resacc/util/env.h"
#include "resacc/util/rng.h"
#include "resacc/util/top_k.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

constexpr int kTrials = 200;
constexpr int kSourcesPerGraph = 10;

RwrConfig ConformanceConfig(std::uint64_t seed) {
  RwrConfig config;
  config.alpha = 0.2;
  config.epsilon = 0.5;  // the paper's operating point
  // delta/p_f large enough that (a) many nodes clear the delta threshold
  // on a few-hundred-node graph and (b) p_f is observable at this trial
  // count (p_f = 1e-6 would need millions of pairs to say anything).
  config.delta = 0.01;
  config.p_f = 0.01;
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = seed;
  return config;
}

struct ConformanceGraph {
  std::string name;
  Graph graph;
};

std::vector<ConformanceGraph> MakeGraphs() {
  std::vector<ConformanceGraph> graphs;
  graphs.push_back(
      {"chung-lu", ChungLuPowerLaw(400, 2400, 2.5, /*seed=*/13)});
  graphs.push_back({"erdos-renyi", ErdosRenyi(300, 1800, /*seed=*/29)});
  return graphs;
}

// Dynamic-graph variant: push a deterministic churn stream (~20% of the
// edge count, adds and removes toggling random pairs) through a
// MutableGraphView and return the merged live snapshot. Definition 1 must
// hold on it exactly as on a statically built graph — a Snapshot() is,
// by the bit-identity contract (dynamic/mutable_graph_view.h), just
// another graph. The returned snapshots are self-contained: they keep the
// view's published base+overlay alive after the view is gone.
std::vector<ConformanceGraph> MakeMutatedGraphs() {
  std::vector<ConformanceGraph> graphs;
  for (ConformanceGraph& entry : MakeGraphs()) {
    const NodeId n = entry.graph.num_nodes();
    std::set<std::pair<NodeId, NodeId>> edges;
    for (NodeId u = 0; u < n; ++u) {
      for (const NodeId v : entry.graph.OutNeighbors(u)) {
        edges.insert({u, v});
      }
    }
    const int steps = static_cast<int>(entry.graph.num_edges() / 5);
    MutableGraphView view(std::move(entry.graph));
    Rng rng(0xc4a2 + n);
    for (int i = 0; i < steps; ++i) {
      const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
      const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
      if (u == v) continue;
      if (edges.count({u, v}) > 0) {
        EXPECT_TRUE(view.RemoveEdge(u, v).ok());
        edges.erase({u, v});
      } else {
        EXPECT_TRUE(view.AddEdge(u, v).ok());
        edges.insert({u, v});
      }
    }
    graphs.push_back({entry.name + "+churn", view.Snapshot()});
  }
  return graphs;
}

// Hub-heavy variant (PR 10): graphs whose low-id sources include hubs
// with 1-hop sets spanning a large fraction of the graph — the regime
// where the hybrid selector hands queries to the dense power-iteration
// path. The star is the extreme (source 0 IS the hub and always goes
// dense); the low-exponent Chung-Lu head exercises the mixed case where
// some of the ten sources go dense and the rest stay local.
std::vector<ConformanceGraph> MakeHubGraphs() {
  std::vector<ConformanceGraph> graphs;
  graphs.push_back({"star", ::resacc::testing::StarGraph(399)});
  graphs.push_back(
      {"chung-lu-head", ChungLuPowerLaw(400, 4000, 2.0, /*seed=*/17)});
  return graphs;
}

using SolverFactory = std::function<std::unique_ptr<SsrwrAlgorithm>(
    const Graph&, const RwrConfig&)>;

void RunConformance(const SolverFactory& factory,
                    const std::vector<ConformanceGraph>& graphs) {
  if (GetEnvString("RESACC_CONFORMANCE", "").empty()) {
    GTEST_SKIP() << "set RESACC_CONFORMANCE=1 to run the statistical "
                    "conformance suite (nightly CI job)";
  }

  for (const ConformanceGraph& entry : graphs) {
    const Graph& graph = entry.graph;
    const RwrConfig base_config = ConformanceConfig(/*seed=*/1);
    GroundTruthCache ground_truth(graph, base_config);

    std::uint64_t checked_pairs = 0;
    std::uint64_t violations = 0;
    double worst_relative_error = 0.0;

    for (int trial = 0; trial < kTrials; ++trial) {
      const NodeId source =
          static_cast<NodeId>((trial * 7) % kSourcesPerGraph);
      RwrConfig config = ConformanceConfig(
          /*seed=*/0x5eed0000ULL + static_cast<std::uint64_t>(trial));
      std::unique_ptr<SsrwrAlgorithm> solver = factory(graph, config);
      const std::vector<Score> estimate = solver->Query(source);

      const std::vector<Score>& exact = ground_truth.Get(source);
      ASSERT_EQ(estimate.size(), exact.size());
      for (NodeId v = 0; v < graph.num_nodes(); ++v) {
        if (exact[v] <= config.delta) continue;
        ++checked_pairs;
        const double relative_error =
            std::abs(estimate[v] - exact[v]) / exact[v];
        worst_relative_error = std::max(worst_relative_error, relative_error);
        if (relative_error > config.epsilon + 1e-9) ++violations;
      }
    }

    ASSERT_GT(checked_pairs, 0u) << entry.name << ": delta too large, no "
                                 << "node qualified — the test checked "
                                 << "nothing";
    const double p_f = ConformanceConfig(1).p_f;
    const double fraction =
        static_cast<double>(violations) / static_cast<double>(checked_pairs);
    const double slack =
        3.0 * std::sqrt(p_f * (1.0 - p_f) /
                        static_cast<double>(checked_pairs));
    EXPECT_LE(fraction, p_f + slack)
        << entry.name << ": " << violations << "/" << checked_pairs
        << " pairs violated the epsilon bound (worst relative error "
        << worst_relative_error << ")";
  }
}

SolverFactory MakeResAcc() {
  return [](const Graph& graph, const RwrConfig& config) {
    return std::make_unique<ResAccSolver>(graph, config, ResAccOptions{});
  };
}

// ResAcc with the hybrid local/dense selector on (core/power_iter.h):
// Definition 1 must hold regardless of which path answers — the dense
// path's guarantee is deterministic, the local path's is the usual
// statistical one, and the conformance budget covers both.
SolverFactory MakeHybridResAcc() {
  return [](const Graph& graph, const RwrConfig& config) {
    ResAccOptions options;
    options.hybrid.enable = true;
    return std::make_unique<ResAccSolver>(graph, config, options);
  };
}

SolverFactory MakeFora() {
  return [](const Graph& graph, const RwrConfig& config) {
    return std::make_unique<Fora>(graph, config);
  };
}

SolverFactory MakeMonteCarlo() {
  return [](const Graph& graph, const RwrConfig& config) {
    return std::make_unique<MonteCarlo>(graph, config);
  };
}

TEST(GuaranteeConformanceTest, ResAccSatisfiesDefinition1) {
  RunConformance(MakeResAcc(), MakeGraphs());
}

TEST(GuaranteeConformanceTest, ForaSatisfiesDefinition1) {
  RunConformance(MakeFora(), MakeGraphs());
}

// Hub-heavy suite (PR 10): plain ResAcc must keep the guarantee on hub
// sources (via the floored adaptive cap), and hybrid ResAcc must keep it
// while actually switching those sources to the dense path.
TEST(GuaranteeConformanceTest, ResAccSatisfiesDefinition1OnHubGraphs) {
  RunConformance(MakeResAcc(), MakeHubGraphs());
}

TEST(GuaranteeConformanceTest, HybridResAccSatisfiesDefinition1OnHubGraphs) {
  RunConformance(MakeHybridResAcc(), MakeHubGraphs());
}

TEST(GuaranteeConformanceTest, MonteCarloSatisfiesDefinition1) {
  RunConformance(MakeMonteCarlo(), MakeGraphs());
}

// Top-k precision under Definition 1 (PR 8): with every relative error
// bounded by epsilon above delta, a node can legitimately displace the
// true k-th node only if pi(v) >= pi(k-th) * (1 - eps) / (1 + eps). A
// returned node below that admissible threshold is a violation, held to
// the same binomial budget as the pointwise check. Certified results
// (ResAcc's separation certificates) additionally claim the *exact*
// top-k, so they are audited without the epsilon slack.
void RunTopKConformance(const SolverFactory& factory,
                        const std::vector<ConformanceGraph>& graphs) {
  if (GetEnvString("RESACC_CONFORMANCE", "").empty()) {
    GTEST_SKIP() << "set RESACC_CONFORMANCE=1 to run the statistical "
                    "conformance suite (nightly CI job)";
  }
  constexpr std::size_t kK = 10;

  for (const ConformanceGraph& entry : graphs) {
    const Graph& graph = entry.graph;
    GroundTruthCache ground_truth(graph, ConformanceConfig(/*seed=*/1));

    std::uint64_t checked_pairs = 0;
    std::uint64_t violations = 0;

    for (int trial = 0; trial < kTrials; ++trial) {
      const NodeId source =
          static_cast<NodeId>((trial * 7) % kSourcesPerGraph);
      const RwrConfig config = ConformanceConfig(
          /*seed=*/0x70b0000ULL + static_cast<std::uint64_t>(trial));
      std::unique_ptr<SsrwrAlgorithm> solver = factory(graph, config);
      const TopKResult result = solver->QueryTopK(source, kK);
      ASSERT_TRUE(result.status.ok());
      ASSERT_EQ(result.entries.size(), kK);

      const std::vector<Score>& exact = ground_truth.Get(source);
      const Score kth_exact = exact[TopKIndices(exact, kK).back()];
      if (kth_exact <= config.delta) continue;  // no guarantee below delta
      const double admissible =
          kth_exact * (1.0 - config.epsilon) / (1.0 + config.epsilon);
      for (const TopKEntry& e : result.entries) {
        ++checked_pairs;
        if (result.certified) {
          // Exact claim: a certified set is a true top-k modulo ties.
          EXPECT_GE(exact[e.node] + 1e-12, kth_exact)
              << entry.name << ": certified entry " << e.node
              << " outside the exact top-" << kK;
        } else if (exact[e.node] < admissible - 1e-12) {
          ++violations;
        }
      }
    }

    ASSERT_GT(checked_pairs, 0u)
        << entry.name << ": delta too large, no trial qualified";
    const double p_f = ConformanceConfig(1).p_f;
    const double fraction =
        static_cast<double>(violations) / static_cast<double>(checked_pairs);
    const double slack = 3.0 * std::sqrt(p_f * (1.0 - p_f) /
                                         static_cast<double>(checked_pairs));
    EXPECT_LE(fraction, p_f + slack)
        << entry.name << ": " << violations << "/" << checked_pairs
        << " returned top-k entries below the admissible threshold";
  }
}

TEST(GuaranteeConformanceTest, ResAccTopKPrecision) {
  RunTopKConformance(MakeResAcc(), MakeGraphs());
}

TEST(GuaranteeConformanceTest, ForaTopKPrecision) {
  RunTopKConformance(MakeFora(), MakeGraphs());
}

TEST(GuaranteeConformanceTest, MonteCarloTopKPrecision) {
  RunTopKConformance(MakeMonteCarlo(), MakeGraphs());
}

// Before trusting the statistical re-check, pin the stronger property the
// dynamic subsystem actually promises: on the churned live snapshot every
// solver is *bit-identical* to a fresh GraphBuilder build of the same
// surviving edge set (so the Definition 1 runs below genuinely re-verify
// the guarantee on the mutated graph, not on some divergent view of it).
TEST(GuaranteeConformanceTest, MutatedGraphsBitIdenticalToFreshLoad) {
  if (GetEnvString("RESACC_CONFORMANCE", "").empty()) {
    GTEST_SKIP() << "set RESACC_CONFORMANCE=1 to run the statistical "
                    "conformance suite (nightly CI job)";
  }
  const SolverFactory factories[] = {MakeResAcc(), MakeFora(),
                                     MakeMonteCarlo()};
  for (const ConformanceGraph& entry : MakeMutatedGraphs()) {
    GraphBuilder builder(entry.graph.num_nodes());
    for (NodeId u = 0; u < entry.graph.num_nodes(); ++u) {
      for (const NodeId v : entry.graph.OutNeighbors(u)) {
        builder.AddEdge(u, v);
      }
    }
    const Graph fresh = std::move(builder).Build();
    ASSERT_EQ(entry.graph.num_edges(), fresh.num_edges()) << entry.name;
    const RwrConfig config = ConformanceConfig(/*seed=*/42);
    for (const SolverFactory& factory : factories) {
      std::unique_ptr<SsrwrAlgorithm> on_live = factory(entry.graph, config);
      std::unique_ptr<SsrwrAlgorithm> on_fresh = factory(fresh, config);
      for (const NodeId source : {NodeId{0}, NodeId{5}}) {
        EXPECT_EQ(on_live->Query(source), on_fresh->Query(source))
            << entry.name << ": " << on_live->name()
            << " diverged at source " << source;
      }
    }
  }
}

TEST(GuaranteeConformanceTest, ResAccSatisfiesDefinition1OnMutatedGraph) {
  RunConformance(MakeResAcc(), MakeMutatedGraphs());
}

TEST(GuaranteeConformanceTest, ForaSatisfiesDefinition1OnMutatedGraph) {
  RunConformance(MakeFora(), MakeMutatedGraphs());
}

TEST(GuaranteeConformanceTest, MonteCarloSatisfiesDefinition1OnMutatedGraph) {
  RunConformance(MakeMonteCarlo(), MakeMutatedGraphs());
}

}  // namespace
}  // namespace resacc

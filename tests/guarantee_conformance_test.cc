// Statistical conformance suite (PR 4 satellite): asserts Definition 1 —
// every node with pi(v) > delta satisfies |pi_hat(v) - pi(v)| <=
// epsilon * pi(v) with probability at least 1 - p_f — empirically, for
// each solver that claims it (ResAcc, FORA, MC), on two seeded graphs,
// against power-iteration ground truth.
//
// Methodology: N independent trials per (solver, graph); each trial uses a
// fresh solver with a distinct RNG seed (a repeated Query on one solver is
// deterministic by design, so independence must come from the seed). A
// checked pair is (trial, node with pi > delta); a violation is a pair
// whose relative error exceeds epsilon. Definition 1 bounds the expected
// violation fraction by p_f, so the observed fraction must stay below
// p_f + 3 standard deviations of the binomial at the checked-pair count.
// In practice the concentration bounds behind Theorem 3 are conservative
// and the observed fraction is ~0.
//
// This suite is excluded from tier-1: it runs ~1200 full queries. It is
// labelled `conformance` in CTest and skips itself unless
// RESACC_CONFORMANCE=1 (the nightly conformance workflow sets both).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "resacc/algo/fora.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/graph/generators.h"
#include "resacc/util/env.h"

namespace resacc {
namespace {

constexpr int kTrials = 200;
constexpr int kSourcesPerGraph = 10;

RwrConfig ConformanceConfig(std::uint64_t seed) {
  RwrConfig config;
  config.alpha = 0.2;
  config.epsilon = 0.5;  // the paper's operating point
  // delta/p_f large enough that (a) many nodes clear the delta threshold
  // on a few-hundred-node graph and (b) p_f is observable at this trial
  // count (p_f = 1e-6 would need millions of pairs to say anything).
  config.delta = 0.01;
  config.p_f = 0.01;
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = seed;
  return config;
}

struct ConformanceGraph {
  std::string name;
  Graph graph;
};

std::vector<ConformanceGraph> MakeGraphs() {
  std::vector<ConformanceGraph> graphs;
  graphs.push_back(
      {"chung-lu", ChungLuPowerLaw(400, 2400, 2.5, /*seed=*/13)});
  graphs.push_back({"erdos-renyi", ErdosRenyi(300, 1800, /*seed=*/29)});
  return graphs;
}

using SolverFactory = std::function<std::unique_ptr<SsrwrAlgorithm>(
    const Graph&, const RwrConfig&)>;

void RunConformance(const SolverFactory& factory) {
  if (GetEnvString("RESACC_CONFORMANCE", "").empty()) {
    GTEST_SKIP() << "set RESACC_CONFORMANCE=1 to run the statistical "
                    "conformance suite (nightly CI job)";
  }

  for (const ConformanceGraph& entry : MakeGraphs()) {
    const Graph& graph = entry.graph;
    const RwrConfig base_config = ConformanceConfig(/*seed=*/1);
    GroundTruthCache ground_truth(graph, base_config);

    std::uint64_t checked_pairs = 0;
    std::uint64_t violations = 0;
    double worst_relative_error = 0.0;

    for (int trial = 0; trial < kTrials; ++trial) {
      const NodeId source =
          static_cast<NodeId>((trial * 7) % kSourcesPerGraph);
      RwrConfig config = ConformanceConfig(
          /*seed=*/0x5eed0000ULL + static_cast<std::uint64_t>(trial));
      std::unique_ptr<SsrwrAlgorithm> solver = factory(graph, config);
      const std::vector<Score> estimate = solver->Query(source);

      const std::vector<Score>& exact = ground_truth.Get(source);
      ASSERT_EQ(estimate.size(), exact.size());
      for (NodeId v = 0; v < graph.num_nodes(); ++v) {
        if (exact[v] <= config.delta) continue;
        ++checked_pairs;
        const double relative_error =
            std::abs(estimate[v] - exact[v]) / exact[v];
        worst_relative_error = std::max(worst_relative_error, relative_error);
        if (relative_error > config.epsilon + 1e-9) ++violations;
      }
    }

    ASSERT_GT(checked_pairs, 0u) << entry.name << ": delta too large, no "
                                 << "node qualified — the test checked "
                                 << "nothing";
    const double p_f = ConformanceConfig(1).p_f;
    const double fraction =
        static_cast<double>(violations) / static_cast<double>(checked_pairs);
    const double slack =
        3.0 * std::sqrt(p_f * (1.0 - p_f) /
                        static_cast<double>(checked_pairs));
    EXPECT_LE(fraction, p_f + slack)
        << entry.name << ": " << violations << "/" << checked_pairs
        << " pairs violated the epsilon bound (worst relative error "
        << worst_relative_error << ")";
  }
}

TEST(GuaranteeConformanceTest, ResAccSatisfiesDefinition1) {
  RunConformance([](const Graph& graph, const RwrConfig& config) {
    return std::make_unique<ResAccSolver>(graph, config, ResAccOptions{});
  });
}

TEST(GuaranteeConformanceTest, ForaSatisfiesDefinition1) {
  RunConformance([](const Graph& graph, const RwrConfig& config) {
    return std::make_unique<Fora>(graph, config);
  });
}

TEST(GuaranteeConformanceTest, MonteCarloSatisfiesDefinition1) {
  RunConformance([](const Graph& graph, const RwrConfig& config) {
    return std::make_unique<MonteCarlo>(graph, config);
  });
}

}  // namespace
}  // namespace resacc

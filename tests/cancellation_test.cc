// Cancellation/deadline coverage (PR 4 tentpole): the token itself, a
// cancel landing inside each solver phase, honesty of the degraded
// accuracy tag against ground truth, phase-metric consistency after an
// abort, and the serving layer's Cancel()/allow_degraded paths — including
// the acceptance criterion that a 10ms deadline on a sub-second solve
// returns in a small fraction of the full solve time.

#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "resacc/algo/fora.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/graph/generators.h"
#include "resacc/obs/metrics_registry.h"
#include "resacc/serve/query_service.h"
#include "resacc/util/cancellation.h"
#include "resacc/util/timer.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

RwrConfig TestConfig(const Graph& graph) {
  RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = 7;
  return config;
}

// --- CancellationToken ----------------------------------------------------

TEST(CancellationTokenTest, DefaultNeverStops) {
  CancellationToken token;
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_TRUE(token.StopStatus().ok());
  EXPECT_FALSE(ShouldStop(static_cast<const CancellationToken*>(nullptr)));
}

TEST(CancellationTokenTest, CancelFiresWithCancelledStatus) {
  CancellationToken token;
  token.Cancel();
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_EQ(token.StopStatus().code(), StatusCode::kCancelled);
}

TEST(CancellationTokenTest, ExpiredDeadlineFiresWithDeadlineStatus) {
  CancellationToken token;
  token.SetDeadlineAt(CancellationToken::Clock::now() -
                      std::chrono::milliseconds(1));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_EQ(token.StopStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancellationTokenTest, FutureDeadlineDoesNotFireEarly) {
  CancellationToken token = CancellationToken::WithDeadline(60.0);
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.ShouldStop());
}

TEST(CancellationTokenTest, CancelWinsOverDeadline) {
  CancellationToken token;
  token.SetDeadlineAt(CancellationToken::Clock::now() -
                      std::chrono::milliseconds(1));
  token.Cancel();
  EXPECT_EQ(token.StopStatus().code(), StatusCode::kCancelled);
}

TEST(CancellationTokenTest, CopiesShareState) {
  CancellationToken token;
  CancellationToken copy = token;
  token.Cancel();
  EXPECT_TRUE(copy.ShouldStop());
}

// --- Cancelling inside each ResAcc phase ----------------------------------

struct PhaseCancelOutcome {
  ControlledQueryResult result;
  // Phase-histogram count deltas observed across the query.
  std::uint64_t hhop_delta = 0;
  std::uint64_t omfwd_delta = 0;
  std::uint64_t remedy_delta = 0;
  std::uint64_t queries_delta = 0;
  std::uint64_t cancelled_delta = 0;
  std::uint64_t query_hist_delta = 0;
};

// Runs one query that cancels itself at the start of `phase` (via the
// phase_hook, so the cancel lands deterministically inside the pipeline
// rather than racing a timer) and captures the solver-metric deltas.
PhaseCancelOutcome CancelAtPhase(const Graph& graph, const RwrConfig& config,
                                 NodeId source, const std::string& phase) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& queries = registry.GetCounter("resacc_solver_queries_total", "");
  Counter& cancelled =
      registry.GetCounter("resacc_solver_queries_cancelled_total", "");
  LatencyHistogram& hhop =
      registry.GetHistogram("resacc_solver_phase_seconds", "phase=\"hhop\"");
  LatencyHistogram& omfwd =
      registry.GetHistogram("resacc_solver_phase_seconds", "phase=\"omfwd\"");
  LatencyHistogram& remedy =
      registry.GetHistogram("resacc_solver_phase_seconds", "phase=\"remedy\"");
  LatencyHistogram& total =
      registry.GetHistogram("resacc_solver_query_seconds", "");

  const std::uint64_t queries0 = queries.Value();
  const std::uint64_t cancelled0 = cancelled.Value();
  const std::uint64_t hhop0 = hhop.count();
  const std::uint64_t omfwd0 = omfwd.count();
  const std::uint64_t remedy0 = remedy.count();
  const std::uint64_t total0 = total.count();

  CancellationToken token;
  ResAccOptions options;
  options.phase_hook = [&token, phase](const char* name) {
    if (phase == name) token.Cancel();
  };
  ResAccSolver solver(graph, config, options);
  QueryControl control;
  control.cancel = &token;

  PhaseCancelOutcome outcome;
  outcome.result = solver.QueryControlled(source, control);
  outcome.queries_delta = queries.Value() - queries0;
  outcome.cancelled_delta = cancelled.Value() - cancelled0;
  outcome.hhop_delta = hhop.count() - hhop0;
  outcome.omfwd_delta = omfwd.count() - omfwd0;
  outcome.remedy_delta = remedy.count() - remedy0;
  outcome.query_hist_delta = total.count() - total0;
  return outcome;
}

class PhaseCancelTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PhaseCancelTest, PartialResultIsHonestAndMetricsStayConsistent) {
  const Graph graph = ChungLuPowerLaw(400, 2400, 2.5, /*seed=*/11);
  const RwrConfig config = TestConfig(graph);
  const NodeId source = 3;
  const std::string phase = GetParam();

  const PhaseCancelOutcome outcome =
      CancelAtPhase(graph, config, source, phase);
  const ControlledQueryResult& result = outcome.result;

  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(result.degraded);
  EXPECT_GT(result.uncorrected_mass, 0.0);
  EXPECT_GT(result.achieved_epsilon, config.epsilon);
  EXPECT_NEAR(result.achieved_epsilon,
              config.epsilon + result.uncorrected_mass / config.delta,
              1e-12);
  ASSERT_EQ(result.scores.size(),
            static_cast<std::size_t>(graph.num_nodes()));

  // Honesty, deterministically: a cancel at a phase *start* leaves pure
  // reserves (no walk noise), and the push invariant pi(v) = reserve(v) +
  // sum_u r(u) pi_u(v) bounds the undershoot of every node by the
  // remaining residue mass — which is exactly uncorrected_mass.
  GroundTruthCache ground_truth(graph, config);
  const std::vector<Score>& exact = ground_truth.Get(source);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    EXPECT_LE(result.scores[v], exact[v] + 1e-9) << "node " << v;
    EXPECT_LE(exact[v] - result.scores[v], result.uncorrected_mass + 1e-9)
        << "node " << v;
  }
  // And the advertised (much weaker) relative bound a fortiori.
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (exact[v] > config.delta) {
      EXPECT_LE(std::abs(result.scores[v] - exact[v]),
                result.achieved_epsilon * exact[v] + 1e-9)
          << "node " << v;
    }
  }

  // Metric consistency after the abort: the query is counted exactly once
  // (queries_total + the end-to-end histogram), the cancel is counted, and
  // each phase histogram recorded iff its phase started.
  EXPECT_EQ(outcome.queries_delta, 1u);
  EXPECT_EQ(outcome.query_hist_delta, 1u);
  EXPECT_EQ(outcome.cancelled_delta, 1u);
  EXPECT_EQ(outcome.hhop_delta, 1u);  // hhop always starts
  EXPECT_EQ(outcome.omfwd_delta, phase == "hhop" ? 0u : 1u);
  EXPECT_EQ(outcome.remedy_delta, phase == "remedy" ? 1u : 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPhases, PhaseCancelTest,
                         ::testing::Values("hhop", "omfwd", "remedy"));

TEST(SolverCancelTest, DeadOnArrivalDeadlineReturnsZeroEstimate) {
  const Graph graph = testing::Figure1Graph();
  const RwrConfig config = TestConfig(graph);
  ResAccSolver solver(graph, config, ResAccOptions{});

  CancellationToken token;
  token.SetDeadlineAt(CancellationToken::Clock::now() -
                      std::chrono::milliseconds(1));
  QueryControl control;
  control.cancel = &token;
  const ControlledQueryResult result = solver.QueryControlled(0, control);

  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(result.degraded);
  EXPECT_DOUBLE_EQ(result.uncorrected_mass, 1.0);
  ASSERT_EQ(result.scores.size(),
            static_cast<std::size_t>(graph.num_nodes()));
  for (Score s : result.scores) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(SolverCancelTest, UncancelledControlledQueryMatchesQuery) {
  const Graph graph = ChungLuPowerLaw(200, 1000, 2.5, /*seed=*/3);
  const RwrConfig config = TestConfig(graph);
  ResAccSolver a(graph, config, ResAccOptions{});
  ResAccSolver b(graph, config, ResAccOptions{});

  CancellationToken token = CancellationToken::WithDeadline(3600.0);
  QueryControl control;
  control.cancel = &token;
  const ControlledQueryResult controlled = a.QueryControlled(5, control);
  const std::vector<Score> plain = b.Query(5);

  EXPECT_TRUE(controlled.status.ok());
  EXPECT_FALSE(controlled.degraded);
  EXPECT_DOUBLE_EQ(controlled.achieved_epsilon, config.epsilon);
  ASSERT_EQ(controlled.scores.size(), plain.size());
  for (NodeId v = 0; v < plain.size(); ++v) {
    EXPECT_DOUBLE_EQ(controlled.scores[v], plain[v]) << "node " << v;
  }
}

TEST(SolverCancelTest, ForaAndMonteCarloReportHonestPartialResults) {
  const Graph graph = ChungLuPowerLaw(300, 1500, 2.5, /*seed=*/5);
  const RwrConfig config = TestConfig(graph);

  CancellationToken token;
  token.Cancel();
  QueryControl control;
  control.cancel = &token;

  Fora fora(graph, config);
  const ControlledQueryResult fora_result = fora.QueryControlled(2, control);
  EXPECT_EQ(fora_result.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(fora_result.degraded);
  EXPECT_GT(fora_result.uncorrected_mass, 0.0);
  EXPECT_NEAR(fora_result.achieved_epsilon,
              config.epsilon + fora_result.uncorrected_mass / config.delta,
              1e-12);

  MonteCarlo mc(graph, config);
  const ControlledQueryResult mc_result = mc.QueryControlled(2, control);
  EXPECT_EQ(mc_result.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(mc_result.degraded);
  // MC skipped everything: the whole unit of walk mass is uncorrected.
  EXPECT_NEAR(mc_result.uncorrected_mass, 1.0, 1e-9);
}

// --- Serving layer --------------------------------------------------------

// A deliberately slow MC configuration: delta ~ 1e-5 needs ~1e7 walks, a
// solve in the hundreds of milliseconds — big enough that a 10ms deadline
// cancels mid-walk rather than after the fact.
RwrConfig SlowConfig(const Graph& graph) {
  RwrConfig config = TestConfig(graph);
  config.delta = 1e-5;
  config.p_f = 1e-5;
  return config;
}

TEST(ServeCancelTest, DeadlineMidComputeReturnsFastWithoutBlockingWorker) {
  const Graph graph = ChungLuPowerLaw(500, 3000, 2.5, /*seed=*/17);
  const RwrConfig config = SlowConfig(graph);

  // Baseline: how long the full solve takes (also warms nothing — the
  // service below uses its own solver instance).
  MonteCarlo reference(graph, config);
  Timer full_timer;
  reference.Query(7);
  const double full_seconds = full_timer.ElapsedSeconds();
  ASSERT_GT(full_seconds, 0.05) << "solve too fast to observe a cancel";

  ServeOptions options;
  options.num_workers = 1;
  options.cache_bytes = 0;  // no accidental hits
  options.solver_factory = [&config](const Graph& g) {
    return std::make_unique<MonteCarlo>(g, config);
  };
  options.cache_tag = 0x51;
  QueryService service(graph, config, options);

  QueryRequest request;
  request.source = 7;
  request.deadline_seconds = 0.010;
  Timer cancel_timer;
  const QueryResponse response = service.Query(request);
  const double cancel_seconds = cancel_timer.ElapsedSeconds();

  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  // The walk engine polls the token every block, so the return should be
  // deadline + a block or two — far below the full solve. Generous slack
  // for slow CI, but still a small fraction of the full solve.
  EXPECT_LT(cancel_seconds, 0.5 * full_seconds);
  EXPECT_LT(cancel_seconds, 0.25);

  // The worker is free again: a fresh no-deadline query completes OK.
  QueryRequest follow_up;
  follow_up.source = 9;
  const QueryResponse ok_response = service.Query(follow_up);
  EXPECT_TRUE(ok_response.status.ok());
  EXPECT_FALSE(ok_response.degraded);

  const ServerStats stats = service.Snapshot();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.completed, 1u);
  // The latency split surfaced: both jobs were dequeued (queue_wait), and
  // at least the follow-up reached the solver (the deadline job computes
  // too unless a slow machine let the 10ms elapse before dequeue).
  EXPECT_EQ(stats.queue_wait.count, 2u);
  EXPECT_GE(stats.compute.count, 1u);
}

TEST(ServeCancelTest, AllowDegradedTurnsDeadlineIntoHonestPartialResult) {
  const Graph graph = ChungLuPowerLaw(500, 3000, 2.5, /*seed=*/17);
  const RwrConfig config = SlowConfig(graph);

  ServeOptions options;
  options.num_workers = 1;
  options.cache_bytes = 64 << 20;
  options.solver_factory = [&config](const Graph& g) {
    return std::make_unique<MonteCarlo>(g, config);
  };
  options.cache_tag = 0x52;
  QueryService service(graph, config, options);

  QueryRequest request;
  request.source = 7;
  request.top_k = 5;
  request.deadline_seconds = 0.010;
  request.allow_degraded = true;
  const QueryResponse response = service.Query(request);

  EXPECT_TRUE(response.status.ok());
  EXPECT_TRUE(response.degraded);
  // Top-k mode: the partial solve is salvaged as an approximate top-k
  // payload (wide epsilon brackets, never a certificate), no full vector.
  EXPECT_EQ(response.scores, nullptr);
  ASSERT_NE(response.topk, nullptr);
  EXPECT_FALSE(response.topk->certified);
  EXPECT_TRUE(response.topk->degraded);
  EXPECT_GT(response.uncorrected_mass, 0.0);
  EXPECT_GT(response.achieved_epsilon, config.epsilon);
  EXPECT_EQ(response.top.size(), 5u);

  // Degraded results must never be served from the cache: the same query
  // without a deadline computes fresh and comes back complete.
  QueryRequest retry;
  retry.source = 7;
  const QueryResponse full = service.Query(retry);
  EXPECT_TRUE(full.status.ok());
  EXPECT_FALSE(full.degraded);
  EXPECT_FALSE(full.cache_hit);

  const ServerStats stats = service.Snapshot();
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.expired, 0u);
}

TEST(ServeCancelTest, CancelWhileQueuedResolvesOnlyThatRequest) {
  const Graph graph = ChungLuPowerLaw(200, 1000, 2.5, /*seed=*/9);
  const RwrConfig config = TestConfig(graph);

  // One worker held hostage on source 0 keeps source 1 queued while we
  // cancel it — no timing races.
  std::promise<void> arrived;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  ServeOptions options;
  options.num_workers = 1;
  options.cache_bytes = 0;
  options.dequeue_hook = [&arrived, release_future](NodeId source) {
    if (source == 0) {
      arrived.set_value();
      release_future.wait();
    }
  };
  QueryService service(graph, config, options);

  QueryRequest blocker;
  blocker.source = 0;
  std::future<QueryResponse> blocked = service.Submit(blocker);
  arrived.get_future().wait();

  QueryRequest queued;
  queued.source = 1;
  queued.request_id = 42;
  std::future<QueryResponse> cancelled = service.Submit(queued);

  EXPECT_TRUE(service.Cancel(42));
  EXPECT_FALSE(service.Cancel(42));  // already gone
  EXPECT_FALSE(service.Cancel(777));  // never registered

  // Resolves promptly even though the worker is still held.
  ASSERT_EQ(cancelled.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  const QueryResponse response = cancelled.get();
  EXPECT_EQ(response.status.code(), StatusCode::kCancelled);

  release.set_value();
  EXPECT_TRUE(blocked.get().status.ok());

  const ServerStats stats = service.Snapshot();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(ServeCancelTest, CancellingOneCoalescedWaiterKeepsTheOthersRunning) {
  const Graph graph = ChungLuPowerLaw(200, 1000, 2.5, /*seed=*/9);
  const RwrConfig config = TestConfig(graph);

  std::promise<void> arrived;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  ServeOptions options;
  options.num_workers = 1;
  options.cache_bytes = 0;
  options.coalesce = true;
  options.dequeue_hook = [&arrived, release_future](NodeId source) {
    if (source == 0) {
      arrived.set_value();
      release_future.wait();
    }
  };
  QueryService service(graph, config, options);

  QueryRequest blocker;
  blocker.source = 0;
  std::future<QueryResponse> blocked = service.Submit(blocker);
  arrived.get_future().wait();

  // Two requests coalesce onto one queued job for source 1; cancel one.
  QueryRequest a;
  a.source = 1;
  a.request_id = 1001;
  QueryRequest b;
  b.source = 1;
  b.request_id = 1002;
  std::future<QueryResponse> future_a = service.Submit(a);
  std::future<QueryResponse> future_b = service.Submit(b);

  EXPECT_TRUE(service.Cancel(1001));
  EXPECT_EQ(future_a.get().status.code(), StatusCode::kCancelled);

  release.set_value();
  const QueryResponse response_b = future_b.get();
  EXPECT_TRUE(response_b.status.ok());
  EXPECT_FALSE(response_b.degraded);
  EXPECT_TRUE(blocked.get().status.ok());
}

}  // namespace
}  // namespace resacc

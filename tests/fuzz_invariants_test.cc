// Property-style randomized sweeps: every solver on every graph shape
// must satisfy the algebraic invariants the theory promises, for many
// random (generator, seed, parameter) combinations. These catch classes
// of bugs the targeted unit tests don't (rare topology corner cases,
// parameter interactions).

#include <cmath>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "resacc/algo/fora.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/algo/power.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/metrics.h"
#include "resacc/graph/generators.h"
#include "resacc/util/rng.h"

namespace resacc {
namespace {

struct FuzzCase {
  int graph_kind;       // 0 ER, 1 ChungLu, 2 BA, 3 WS, 4 SBM
  std::uint64_t seed;
  double alpha;
  DanglingPolicy policy;
};

Graph MakeFuzzGraph(const FuzzCase& fuzz) {
  switch (fuzz.graph_kind) {
    case 0:
      return ErdosRenyi(250, 1000, fuzz.seed);
    case 1:
      return ChungLuPowerLaw(250, 1500, 2.1, fuzz.seed);
    case 2:
      return BarabasiAlbert(250, 2, fuzz.seed);
    case 3:
      return WattsStrogatz(250, 3, 0.2, fuzz.seed);
    default:
      return PlantedPartition(250, 5, 8.0, 1.0, fuzz.seed);
  }
}

class FuzzInvariantsTest
    : public ::testing::TestWithParam<
          std::tuple<int, std::uint64_t, double, DanglingPolicy>> {};

TEST_P(FuzzInvariantsTest, SolversProduceDistributionsMeetingGuarantee) {
  const auto [kind, seed, alpha, policy] = GetParam();
  const FuzzCase fuzz{kind, seed, alpha, policy};
  const Graph g = MakeFuzzGraph(fuzz);

  RwrConfig config = RwrConfig::ForGraphSize(g.num_nodes());
  config.alpha = alpha;
  config.p_f = 1e-7;
  config.dangling = policy;
  config.seed = seed ^ 0xfeed;

  // Random eligible source derived from the seed.
  Rng rng(seed);
  NodeId source = rng.NextBounded32(g.num_nodes());
  while (g.OutDegree(source) == 0) source = (source + 1) % g.num_nodes();

  PowerIteration power(g, config, 1e-12);
  const std::vector<Score> exact = power.Query(source);
  // Ground truth itself must be a distribution.
  Score exact_total = 0.0;
  for (Score s : exact) exact_total += s;
  ASSERT_NEAR(exact_total, 1.0, 1e-9);

  ResAccSolver resacc(g, config, ResAccOptions{});
  Fora fora(g, config, {});
  MonteCarlo mc(g, config);
  for (SsrwrAlgorithm* algo :
       std::initializer_list<SsrwrAlgorithm*>{&resacc, &fora, &mc}) {
    const std::vector<Score> estimate = algo->Query(source);
    Score total = 0.0;
    Score minimum = 1.0;
    for (Score s : estimate) {
      total += s;
      minimum = std::min(minimum, s);
    }
    EXPECT_GE(minimum, 0.0) << algo->name();
    EXPECT_NEAR(total, 1.0, 1e-8) << algo->name();
    EXPECT_LE(MaxRelativeErrorAboveDelta(estimate, exact, config.delta),
              config.epsilon)
        << algo->name() << " kind=" << kind << " seed=" << seed
        << " alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FuzzInvariantsTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(11u, 222u),
                       ::testing::Values(0.1, 0.2, 0.5),
                       ::testing::Values(DanglingPolicy::kAbsorb,
                                         DanglingPolicy::kBackToSource)));

}  // namespace
}  // namespace resacc

// Cross-cutting mathematical properties that tie modules together:
// reversibility on undirected graphs, pairwise sums, iteration-count
// scaling, and dataset-registry contracts.

#include <cmath>

#include <gtest/gtest.h>

#include "resacc/algo/bippr.h"
#include "resacc/algo/inverse.h"
#include "resacc/algo/power.h"
#include "resacc/core/remedy.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/graph/datasets.h"
#include "resacc/graph/generators.h"
#include "resacc/util/stats.h"
#include "resacc/util/top_k.h"
#include "tests/test_graphs.h"

namespace resacc {
namespace {

// On an undirected graph the RWR chain is reversible:
// pi(s, t) * d(s) = pi(t, s) * d(t). A strong whole-matrix correctness
// check for the exact solver.
TEST(PropertyTest, UndirectedReversibility) {
  const Graph g = ChungLuPowerLaw(120, 700, 2.2, 3, /*symmetrize=*/true);
  RwrConfig config = RwrConfig::ForGraphSize(g.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;
  ExactInverse oracle(g, config);

  for (NodeId s : {NodeId{0}, NodeId{17}, NodeId{55}}) {
    const std::vector<Score> from_s = oracle.Query(s);
    for (NodeId t : {NodeId{1}, NodeId{30}, NodeId{99}}) {
      const std::vector<Score> from_t = oracle.Query(t);
      const double lhs = from_s[t] * g.OutDegree(s);
      const double rhs = from_t[s] * g.OutDegree(t);
      EXPECT_NEAR(lhs, rhs, 1e-10) << "s=" << s << " t=" << t;
    }
  }
}

// Summing BiPPR's pairwise estimates over every target recovers ~1
// (each pair is estimated independently, so this checks systematic bias).
TEST(PropertyTest, BiPprPairwiseEstimatesSumToOne) {
  const Graph g = ChungLuPowerLaw(100, 600, 2.2, 4, /*symmetrize=*/true);
  RwrConfig config = RwrConfig::ForGraphSize(g.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = 21;
  BiPpr bippr(g, config);
  Score total = 0.0;
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    total += bippr.EstimatePair(5, t);
  }
  EXPECT_NEAR(total, 1.0, 0.05);
}

// Power iteration rounds scale as log(tolerance) / log(1 - alpha).
TEST(PropertyTest, PowerIterationCountMatchesGeometry) {
  const Graph g = testing::CycleGraph(64);
  RwrConfig config = RwrConfig::ForGraphSize(64);
  config.dangling = DanglingPolicy::kAbsorb;
  for (double tolerance : {1e-4, 1e-8, 1e-12}) {
    PowerIteration power(g, config, tolerance);
    power.Query(0);
    const double expected =
        std::log(tolerance) / std::log(1.0 - config.alpha);
    EXPECT_NEAR(power.last_iterations(), expected, 2.0)
        << "tolerance " << tolerance;
  }
}

// Remedy walk counts scale linearly in walk_scale.
TEST(PropertyTest, RemedyWalkCountScalesLinearly) {
  const Graph g = ErdosRenyi(300, 1500, 5);
  RwrConfig config = RwrConfig::ForGraphSize(300);
  config.dangling = DanglingPolicy::kAbsorb;

  auto walks_at_scale = [&](double scale) {
    ResAccOptions options;
    options.walk_scale = scale;
    ResAccSolver solver(g, config, options);
    solver.Query(0);
    return solver.last_stats().remedy.walks;
  };
  const std::uint64_t at_full = walks_at_scale(1.0);
  const std::uint64_t at_half = walks_at_scale(0.5);
  EXPECT_GT(at_full, at_half);
  EXPECT_NEAR(static_cast<double>(at_full) / static_cast<double>(at_half),
              2.0, 0.3);
}

// TopK helpers: degenerate k.
TEST(PropertyTest, TopKZeroAndAll) {
  const std::vector<Score> scores = {0.3, 0.1, 0.6};
  EXPECT_TRUE(TopKIndices(scores, 0).empty());
  const std::vector<NodeId> all = TopKIndices(scores, 3);
  EXPECT_EQ(all, (std::vector<NodeId>{2, 0, 1}));
}

// Quantiles agree with a brute-force definition on random samples.
TEST(PropertyTest, QuantileMatchesBruteForceEndpoints) {
  Rng rng(8);
  std::vector<double> sample(101);
  for (double& x : sample) x = rng.NextDouble();
  std::sort(sample.begin(), sample.end());
  EXPECT_DOUBLE_EQ(QuantileSorted(sample, 0.0), sample.front());
  EXPECT_DOUBLE_EQ(QuantileSorted(sample, 1.0), sample.back());
  // 101 points: the median is exactly the 51st order statistic.
  EXPECT_DOUBLE_EQ(QuantileSorted(sample, 0.5), sample[50]);
}

// Every dataset stand-in materializes at small scale and matches its
// declared directedness.
TEST(PropertyTest, AllDatasetStandInsMaterialize) {
  for (const DatasetSpec& spec : AllDatasets()) {
    const Graph g = MakeDataset(spec, /*scale=*/0.02, /*seed=*/7);
    EXPECT_GT(g.num_nodes(), 0u) << spec.name;
    EXPECT_GT(g.num_edges(), 0u) << spec.name;
    if (!spec.directed) {
      for (NodeId v = 0; v < g.num_nodes(); v += 53) {
        ASSERT_EQ(g.OutDegree(v), g.InDegree(v)) << spec.name;
      }
    }
    EXPECT_GT(spec.paper_nodes, 0.0) << spec.name;
    EXPECT_GE(spec.sim_hops, 1) << spec.name;
  }
}

// ResAcc invariance: r_max_f only trades pushes against walks; the
// guarantee (and rough magnitude of error) is invariant.
TEST(PropertyTest, RMaxFTradesPushesForWalks) {
  const Graph g = ChungLuPowerLaw(500, 4000, 2.2, 6);
  RwrConfig config = RwrConfig::ForGraphSize(500);
  config.dangling = DanglingPolicy::kAbsorb;

  auto run = [&](Score r_max_f) {
    ResAccOptions options;
    options.r_max_f = r_max_f;
    ResAccSolver solver(g, config, options);
    solver.Query(0);
    return std::make_pair(
        solver.last_stats().omfwd_push.push_operations,
        solver.last_stats().remedy.walks);
  };
  const auto [pushes_tight, walks_tight] = run(1e-8);
  const auto [pushes_loose, walks_loose] = run(1e-4);
  EXPECT_GT(pushes_tight, pushes_loose);
  EXPECT_LT(walks_tight, walks_loose);
}

}  // namespace
}  // namespace resacc

// resacc_serve — line-protocol RWR query server over stdin/stdout.
//
//   resacc_serve <graph> [--undirected] [--workers=N] [--queue=N]
//                [--cache-mb=M] [--cache-ttl=SECONDS] [--no-coalesce]
//                [--deadline-ms=D] [--allow-degraded] [--window=W]
//                [--alpha=A] [--epsilon=E] [--seed=S]
//                [--dangling=absorb|source] [--walk-threads=W]
//                [--hybrid] [--hybrid-ratio=R]
//                [--max-batch=B] [--batch-linger-us=U]
//                [--stats-interval=SECONDS] [--compact-threshold=R]
//                [--snapshot-prefix=PATH]
//                [--invalidation=targeted|flush] [--invalidation-slack=S]
//                [--tenants=name:weight,...]
//
// --tenants configures multi-tenant QoS (ServeOptions::tenant_weights):
// each named tenant gets its own bounded admission lane and a weighted
// fair share of the workers; requests name their tenant with a trailing
// `tenant=<name>` token (below). Unknown or absent tenants ride the
// implicit weight-1 default lane.
//
// Protocol (one request per line on stdin, one response line on stdout,
// responses in request order):
//   query <source> [top-k]  ->  ok <source> hit=0|1 coalesced=0|1
//                                degraded=0|1 stale=0|1 eps=<achieved>
//                                us=<latency> top <node>:<score> ...
//                               (full solve; the top list is formatted
//                                client-side from the full vector)
//   topk <source> [k]       ->  ok <source> hit=0|1 coalesced=0|1
//                                degraded=0|1 stale=0|1 certified=0|1
//                                k=<k> eps=<achieved> gap=<bound-gap>
//                                us=<latency> top <node>:<est>:<lb>:<ub> ...
//                               (top-k mode, docs/QUERY_MODES.md: the
//                                solver stops on a separation certificate;
//                                each entry carries its score bracket)
//   info                    ->  info nodes=<n> edges=<m> workers=<w>
//                                epoch=<e> gen=<g> overlay=<rows>
//   addedge <u> <v>         ->  ok addedge <u> <v> applied=0|1 epoch=<e>
//   rmedge <u> <v>          ->  ok rmedge <u> <v> applied=0|1 epoch=<e>
//   addnode                 ->  ok addnode <id> epoch=<e>
//   compact                 ->  ok compact gen=<g> folded=<rows> ms=<t>
//   stats                   ->  stats <key=value ...>
//   metrics                 ->  Prometheus text exposition (multi-line),
//                               terminated by a line reading `# EOF`
//   quit                    ->  bye (and exit 0)
//   anything else           ->  err <message>
//
// `query` and `topk` lines accept optional trailing tokens after the
// positional fields, in any order (the workload harness emits these —
// docs/WORKLOADS.md):
//   tenant=<name>       bill the request to this tenant's lane
//   deadline_ms=<D>     per-request deadline overriding --deadline-ms
//   degraded=1          accept a deadline-truncated partial result
//
// Mutations (docs/API.md "Dynamic graphs") are applied synchronously in
// the reader thread before later lines are parsed, so a query sent after
// a mutation always sees it. applied=0 means the mutation validated but
// was a no-op (duplicate add, missing remove); malformed or out-of-range
// mutations come back as err lines. --compact-threshold=R additionally
// folds the delta overlay into a fresh base on a background thread once
// it carries R dirty rows; `compact` forces a fold now.
// --snapshot-prefix=PATH persists every compacted generation as
// PATH.gen<G>.rsg with the generation stamped in the RESACC02 header.
//
// The service registers its metrics in MetricsRegistry::Global(), so a
// `metrics` scrape carries the serve series next to the solver phase
// histograms and walk-engine counters (docs/OBSERVABILITY.md catalogs
// them). --stats-interval=S additionally prints the `stats` key=value
// line to stderr every S seconds.
//
// The reader thread submits queries asynchronously (up to --window in
// flight) while a writer thread streams responses back in order, so a
// pipelining client keeps every worker busy through a plain pipe and a
// stop-and-wait client still gets each answer immediately.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "resacc/graph/dynamic/mutable_graph_view.h"
#include "resacc/graph/graph_io.h"
#include "resacc/graph/graph_snapshot.h"
#include "resacc/obs/metrics_registry.h"
#include "resacc/obs/stats_reporter.h"
#include "resacc/serve/query_service.h"
#include "resacc/util/args.h"
#include "resacc/util/bounded_queue.h"
#include "resacc/util/timer.h"
#include "resacc/util/top_k.h"

namespace {

using namespace resacc;

// One stdout line: a query response waiting on its future, an
// already-formatted line (info/err/bye), or a deferred stats snapshot. A
// single writer thread consumes these in submission order, which is what
// lets clients correlate responses by position — and what makes a `stats`
// line reflect every query answered before it.
struct OutputItem {
  enum class Kind { kResponse, kLiteral, kStats, kMetrics };
  Kind kind = Kind::kLiteral;
  NodeId source = 0;
  // `query` verb: how many pairs to format from the full vector.
  // `topk` verb (topk_mode): the response carries the entries itself.
  std::size_t top_k = 0;
  bool topk_mode = false;
  std::future<QueryResponse> future;
  std::string literal;
};

// Optional trailing tokens on query/topk lines (tenant=, deadline_ms=,
// degraded=1). Order-independent; unknown words are ignored so the verb
// grammar stays forward-compatible.
struct LineTokens {
  std::string tenant;
  double deadline_seconds = 0.0;
  bool allow_degraded = false;
};

LineTokens ParseLineTokens(const char* line) {
  LineTokens tokens;
  if (const char* p = std::strstr(line, "deadline_ms=")) {
    tokens.deadline_seconds = std::atof(p + 12) / 1e3;
  }
  if (std::strstr(line, "degraded=1") != nullptr) {
    tokens.allow_degraded = true;
  }
  if (const char* p = std::strstr(line, "tenant=")) {
    p += 7;
    while (*p != '\0' && *p != ' ' && *p != '\t' && *p != '\n' &&
           *p != '\r') {
      tokens.tenant.push_back(*p++);
    }
  }
  return tokens;
}

void PrintResponse(NodeId source, std::size_t top_k,
                   const QueryResponse& response) {
  if (!response.status.ok()) {
    std::printf("err %s\n", response.status.ToString().c_str());
    return;
  }
  std::printf("ok %u hit=%d coalesced=%d degraded=%d stale=%d eps=%.3g "
              "us=%.0f top",
              source, response.cache_hit ? 1 : 0, response.coalesced ? 1 : 0,
              response.degraded ? 1 : 0, response.stale ? 1 : 0,
              response.achieved_epsilon, response.latency_seconds * 1e6);
  if (response.scores != nullptr) {
    for (const auto& [node, score] : TopKPairs(*response.scores, top_k)) {
      std::printf(" %u:%.6e", node, score);
    }
  }
  std::printf("\n");
}

void PrintTopKResponse(NodeId source, const QueryResponse& response) {
  if (!response.status.ok() || response.topk == nullptr) {
    std::printf("err %s\n", response.status.ok()
                                ? "top-k response missing payload"
                                : response.status.ToString().c_str());
    return;
  }
  const TopKResult& tk = *response.topk;
  std::printf("ok %u hit=%d coalesced=%d degraded=%d stale=%d certified=%d "
              "k=%zu eps=%.3g gap=%.3e us=%.0f top",
              source, response.cache_hit ? 1 : 0, response.coalesced ? 1 : 0,
              response.degraded ? 1 : 0, response.stale ? 1 : 0,
              tk.certified ? 1 : 0, tk.k, response.achieved_epsilon,
              tk.bound_gap, response.latency_seconds * 1e6);
  for (const TopKEntry& entry : tk.entries) {
    std::printf(" %u:%.6e:%.6e:%.6e", entry.node, entry.estimate, entry.lower,
                entry.upper);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.positionals().empty()) {
    std::fprintf(stderr,
                 "usage: resacc_serve <graph> [--workers=N] [--queue=N] "
                 "[--cache-mb=M] [--no-coalesce] [--deadline-ms=D] "
                 "[--window=W] [--walk-threads=W] "
                 "[--stats-interval=SECONDS]\n");
    return 2;
  }

  // Startup graph load: .rsg snapshots mmap in O(header) time
  // (graph_snapshot.h), .bin / text formats parse as before. Load time and
  // resident bytes land in the metrics registry so a `metrics` scrape — or
  // an operator diffing restarts — sees what startup cost.
  const std::string& path = args.positionals()[0];
  const bool snapshot =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".rsg") == 0;
  Timer load_timer;
  SnapshotLoadInfo load_info;
  const StatusOr<Graph> graph =
      snapshot ? LoadSnapshot(path, SnapshotLoadOptions{}, &load_info)
               : LoadGraphAuto(path, args.HasFlag("undirected"));
  const double load_seconds = load_timer.ElapsedSeconds();
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  MetricsRegistry::Global()
      .GetGauge("resacc_graph_load_seconds", "",
                "Wall-clock seconds loading the serving graph at startup")
      .Set(load_seconds);
  MetricsRegistry::Global()
      .GetGauge("resacc_graph_resident_bytes", "",
                "CSR bytes resident for the serving graph (heap or mapped)")
      .Set(static_cast<double>(graph.value().MemoryBytes()));
  Gauge& generation_gauge = MetricsRegistry::Global().GetGauge(
      "resacc_graph_generation", "",
      "Compaction generation of the serving graph's base CSR");
  generation_gauge.Set(static_cast<double>(load_info.generation));
  std::fprintf(stderr,
               "[serve] graph loaded in %.3fs (resident=%zu bytes, mmap=%d)\n",
               load_seconds, graph.value().MemoryBytes(),
               load_info.mmap_used ? 1 : 0);
  if (snapshot) {
    std::fprintf(stderr, "[serve] snapshot header: format=RESACC%02u "
                 "generation=%llu\n",
                 load_info.format_version,
                 static_cast<unsigned long long>(load_info.generation));
  }

  RwrConfig config = RwrConfig::ForGraphSize(graph.value().num_nodes());
  config.alpha = args.GetDouble("alpha", config.alpha);
  config.epsilon = args.GetDouble("epsilon", config.epsilon);
  config.seed = static_cast<std::uint64_t>(args.GetInt("seed", 0x5eed));
  // Same default as `resacc query`, so the two tools agree on sink graphs.
  config.dangling = args.GetString("dangling", "absorb") == "source"
                        ? DanglingPolicy::kBackToSource
                        : DanglingPolicy::kAbsorb;

  ServeOptions options;
  options.num_workers = static_cast<std::size_t>(args.GetInt("workers", 0));
  options.queue_capacity =
      static_cast<std::size_t>(args.GetInt("queue", 1024));
  options.cache_bytes =
      static_cast<std::size_t>(args.GetInt("cache-mb", 64)) * 1024 * 1024;
  options.coalesce = !args.HasFlag("no-coalesce");
  options.default_deadline_seconds =
      args.GetDouble("deadline-ms", 0.0) / 1e3;
  // Staleness/degradation knobs (docs/API.md): a TTL turns on the
  // serve-stale-under-overload admission control; --allow-degraded makes
  // every query accept a deadline-truncated partial result (tagged
  // degraded=1 with its honest eps) instead of an err line.
  options.cache_ttl_seconds = args.GetDouble("cache-ttl", 0.0);
  const bool allow_degraded = args.HasFlag("allow-degraded");
  // Walk-phase threads per worker solver. Default 1: the service already
  // runs one solver per worker, and scores never depend on this knob
  // (walk_engine.h), so raising it only trades worker throughput for
  // single-query latency — useful with --workers=1 on a big machine.
  options.solver.walk_threads =
      static_cast<std::size_t>(args.GetInt("walk-threads", 1));
  // --hybrid arms the local/dense selector (core/power_iter.h): hub
  // sources go to whole-graph power iteration when their local cost beats
  // --hybrid-ratio x the dense bound. The knobs are part of the result
  // cache's config hash, so cached entries never cross selection policies.
  options.solver.hybrid.enable = args.HasFlag("hybrid");
  options.solver.hybrid.cost_ratio = args.GetDouble("hybrid-ratio", 1.0);
  // Batched solving (docs/API.md "Batched solving"): a worker gathers up
  // to --max-batch queued queries — lingering --batch-linger-us for
  // stragglers — and solves them as one multi-source batch. Answers are
  // bit-identical either way; the knobs trade a bounded latency bump for
  // throughput under concurrent load.
  options.max_batch = static_cast<std::size_t>(args.GetInt("max-batch", 1));
  options.batch_linger_us =
      static_cast<std::uint64_t>(args.GetInt("batch-linger-us", 0));
  // One process, one service: share the process-wide registry so the
  // `metrics` verb sees serve, solver, and walk-engine series together.
  options.metrics_registry = &MetricsRegistry::Global();
  options.invalidation =
      args.GetString("invalidation", "targeted") == "flush"
          ? ServeOptions::InvalidationMode::kFlushAll
          : ServeOptions::InvalidationMode::kTargeted;
  options.invalidation_slack = args.GetDouble("invalidation-slack", 0.5);
  // Multi-tenant QoS: --tenants=gold:4,bronze:1 maps each name to a fair
  // queue lane with that weight (see the header comment's protocol notes).
  const std::string tenants_flag = args.GetString("tenants", "");
  for (std::size_t pos = 0; pos < tenants_flag.size();) {
    std::size_t comma = tenants_flag.find(',', pos);
    if (comma == std::string::npos) comma = tenants_flag.size();
    const std::string item = tenants_flag.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    const std::string name =
        colon == std::string::npos ? item : item.substr(0, colon);
    const double weight =
        colon == std::string::npos
            ? 1.0
            : std::atof(item.c_str() + colon + 1);
    if (name.empty() || name == "default" || !(weight > 0.0)) {
      std::fprintf(stderr, "resacc_serve: bad --tenants item '%s'\n",
                   item.c_str());
      return 2;
    }
    options.tenant_weights.emplace_back(name, weight);
  }

  // The live-graph layer: mutations go through the view; the service is
  // re-pointed at a fresh epoch snapshot after every applied batch. Held
  // in a unique_ptr so the compactor thread can be joined (reset) before
  // the service — whose UpdateGraph the compaction callback calls — is
  // destroyed.
  MutableGraphOptions view_options;
  view_options.compact_threshold_rows =
      static_cast<std::size_t>(args.GetInt("compact-threshold", 0));
  view_options.snapshot_path_prefix = args.GetString("snapshot-prefix", "");
  view_options.initial_generation = load_info.generation;
  auto view = std::make_unique<MutableGraphView>(graph.value().ShallowView(),
                                                 view_options);
  const Graph serving_graph = view->Snapshot();

  QueryService service(serving_graph, config, options);
  view->set_compaction_callback(
      [&service, &generation_gauge, view_ptr = view.get()](
          const CompactionInfo& info) {
        // Same content, new physical base: epoch unchanged, empty delta.
        service.UpdateGraph(view_ptr->Snapshot(), GraphDelta{});
        generation_gauge.Set(static_cast<double>(info.generation));
        std::fprintf(stderr,
                     "[serve] compacted: gen=%llu folded=%zu ms=%.1f%s%s\n",
                     static_cast<unsigned long long>(info.generation),
                     info.folded_rows, info.seconds * 1e3,
                     info.snapshot_path.empty() ? "" : " -> ",
                     info.snapshot_path.c_str());
      });
  const std::size_t window = static_cast<std::size_t>(args.GetInt(
      "window", static_cast<std::int64_t>(2 * service.num_workers())));

  std::fprintf(stderr, "[serve] ready: nodes=%u edges=%llu workers=%zu\n",
               graph.value().num_nodes(),
               static_cast<unsigned long long>(graph.value().num_edges()),
               service.num_workers());

  // Periodic one-line stats on stderr (stdout carries the protocol).
  std::unique_ptr<StatsReporter> reporter;
  const double stats_interval = args.GetDouble("stats-interval", 0.0);
  if (stats_interval > 0.0) {
    reporter = std::make_unique<StatsReporter>(
        stats_interval,
        [&service] { return "[serve] stats " + service.Snapshot().ToLine(); },
        stderr);
  }

  BoundedQueue<OutputItem> output(window > 0 ? window : 1);
  std::thread writer([&output, &service] {
    OutputItem item;
    while (output.Pop(item)) {
      switch (item.kind) {
        case OutputItem::Kind::kLiteral:
          std::printf("%s\n", item.literal.c_str());
          break;
        case OutputItem::Kind::kResponse:
          if (item.topk_mode) {
            PrintTopKResponse(item.source, item.future.get());
          } else {
            PrintResponse(item.source, item.top_k, item.future.get());
          }
          break;
        case OutputItem::Kind::kStats:
          std::printf("stats %s\n", service.Snapshot().ToLine().c_str());
          break;
        case OutputItem::Kind::kMetrics:
          // Multi-line frame; `# EOF` tells the client the scrape is done.
          std::fputs(service.metrics().RenderPrometheus().c_str(), stdout);
          std::printf("# EOF\n");
          break;
      }
      std::fflush(stdout);
    }
  });

  auto emit_literal = [&output](std::string text) {
    OutputItem item;
    item.kind = OutputItem::Kind::kLiteral;
    item.literal = std::move(text);
    output.Push(std::move(item));
  };

  char line[256];
  bool quit = false;
  while (!quit && std::fgets(line, sizeof(line), stdin) != nullptr) {
    char command[32];
    if (std::sscanf(line, "%31s", command) != 1) continue;

    if (std::strcmp(command, "query") == 0) {
      unsigned long source = 0;
      unsigned long top_k = 10;
      if (std::sscanf(line, "query %lu %lu", &source, &top_k) < 1) {
        emit_literal("err malformed query line");
        continue;
      }
      // Full-solve semantics: top_k stays 0 on the request (top-k mode is
      // the `topk` verb); the printed top list is cut client-side.
      const LineTokens tokens = ParseLineTokens(line);
      QueryRequest request;
      request.source = static_cast<NodeId>(source);
      request.deadline_seconds = tokens.deadline_seconds;
      request.allow_degraded = allow_degraded || tokens.allow_degraded;
      request.tenant = tokens.tenant;
      OutputItem item;
      item.kind = OutputItem::Kind::kResponse;
      item.source = request.source;
      item.top_k = static_cast<std::size_t>(top_k);
      item.future = service.Submit(request);
      output.Push(std::move(item));  // blocks once `window` are in flight
    } else if (std::strcmp(command, "topk") == 0) {
      unsigned long source = 0;
      unsigned long k = 10;
      if (std::sscanf(line, "topk %lu %lu", &source, &k) < 1 || k == 0) {
        emit_literal("err malformed topk line");
        continue;
      }
      const LineTokens tokens = ParseLineTokens(line);
      QueryRequest request;
      request.source = static_cast<NodeId>(source);
      request.top_k = static_cast<std::size_t>(k);
      request.deadline_seconds = tokens.deadline_seconds;
      request.allow_degraded = allow_degraded || tokens.allow_degraded;
      request.tenant = tokens.tenant;
      OutputItem item;
      item.kind = OutputItem::Kind::kResponse;
      item.source = request.source;
      item.topk_mode = true;
      item.future = service.Submit(request);
      output.Push(std::move(item));
    } else if (std::strcmp(command, "info") == 0) {
      const Graph live = view->Snapshot();
      const MutableGraphStats graph_stats = view->stats();
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "info nodes=%u edges=%llu workers=%zu epoch=%llu "
                    "gen=%llu overlay=%zu",
                    live.num_nodes(),
                    static_cast<unsigned long long>(live.num_edges()),
                    service.num_workers(),
                    static_cast<unsigned long long>(graph_stats.epoch),
                    static_cast<unsigned long long>(graph_stats.generation),
                    graph_stats.overlay_rows);
      emit_literal(buf);
    } else if (std::strcmp(command, "addedge") == 0 ||
               std::strcmp(command, "rmedge") == 0) {
      unsigned long u = 0;
      unsigned long v = 0;
      if (std::sscanf(line, "%*s %lu %lu", &u, &v) != 2) {
        emit_literal("err malformed mutation line");
        continue;
      }
      const bool remove = command[0] == 'r';
      GraphDelta delta;
      const Status status =
          remove ? view->RemoveEdge(static_cast<NodeId>(u),
                                    static_cast<NodeId>(v), &delta)
                 : view->AddEdge(static_cast<NodeId>(u),
                                 static_cast<NodeId>(v), &delta);
      if (!status.ok() && status.code() != StatusCode::kAlreadyExists &&
          status.code() != StatusCode::kNotFound) {
        emit_literal("err " + status.ToString());
        continue;
      }
      // A no-op mutation (duplicate add / missing remove) publishes no
      // epoch and needs no service update.
      if (status.ok()) service.UpdateGraph(view->Snapshot(), delta);
      char buf[128];
      std::snprintf(buf, sizeof(buf), "ok %s %lu %lu applied=%d epoch=%llu",
                    command, u, v, status.ok() ? 1 : 0,
                    static_cast<unsigned long long>(view->epoch()));
      emit_literal(buf);
    } else if (std::strcmp(command, "addnode") == 0) {
      GraphDelta delta;
      const NodeId id = view->AddNode(&delta);
      service.UpdateGraph(view->Snapshot(), delta);
      char buf[96];
      std::snprintf(buf, sizeof(buf), "ok addnode %u epoch=%llu", id,
                    static_cast<unsigned long long>(view->epoch()));
      emit_literal(buf);
    } else if (std::strcmp(command, "compact") == 0) {
      // The compaction callback re-points the service and the gauge; this
      // verb just reports what the fold did.
      const CompactionInfo compaction = view->Compact();
      char buf[128];
      std::snprintf(buf, sizeof(buf), "ok compact gen=%llu folded=%zu ms=%.1f",
                    static_cast<unsigned long long>(compaction.generation),
                    compaction.folded_rows, compaction.seconds * 1e3);
      emit_literal(buf);
    } else if (std::strcmp(command, "stats") == 0) {
      OutputItem item;
      item.kind = OutputItem::Kind::kStats;
      output.Push(std::move(item));
    } else if (std::strcmp(command, "metrics") == 0) {
      OutputItem item;
      item.kind = OutputItem::Kind::kMetrics;
      output.Push(std::move(item));
    } else if (std::strcmp(command, "quit") == 0) {
      emit_literal("bye");
      quit = true;
    } else {
      emit_literal(std::string("err unknown command '") + command + "'");
    }
  }

  output.Close();
  writer.join();
  // Join the compactor before `service` (declared later, destroyed first)
  // goes away: its callback re-points the service.
  view.reset();
  return 0;
}

// loadgen — load generator for resacc_serve. Spawns the server, streams a
// Zipfian query workload through its stdin/stdout line protocol with a
// bounded pipelining window, and reports client-side throughput and
// latency percentiles plus the server's own stats line.
//
//   loadgen --cmd="build/tools/resacc_serve graph.bin --workers=4"
//           [--queries=1000] [--zipf=0.99] [--topk=10] [--topk-mode]
//           [--window=16] [--closed-loop-burst=B] [--seed=7] [--mutate=F]
//           [--chaos] [--chaos-prob=P] [--chaos-seed=S]
//
// --topk-mode issues `topk <src> <k>` lines (the server's first-class
// top-k query mode, docs/QUERY_MODES.md) instead of full-solve `query`
// lines; --topk then sets the k each request asks for.
//
// --closed-loop-burst=B replaces the streaming window with closed-loop
// bursts: B queries are sent together, then all B responses are drained
// before the next burst goes out. That is the arrival pattern the
// server's batch formation (resacc_serve --max-batch/--batch-linger-us)
// gathers into one multi-source solve, so burst mode is how batching is
// exercised (and measured) end to end through the line protocol.
//
// --mutate=F interleaves graph mutations into the stream: each operation
// is, with probability F, an `addedge`/`rmedge` line (edges previously
// added by this client are preferentially removed, so the graph churns
// rather than only growing) instead of a query. Mutation responses ride
// the same ordered pipe; latency percentiles and the hit count are
// reported over the query operations only.
//
// --chaos spawns the server with deterministic fault injection armed
// (RESACC_FAULTS=1, see util/fault_injection.h): queue rejections, forced
// cache misses, spurious evictions, walk stalls, and worker hiccups fire
// at --chaos-prob per site hit. The run then asserts liveness rather than
// a clean log: every query must get *a* response line, err lines are
// counted but tolerated, and the exit code is 0 iff no response went
// missing.
//
// POSIX-only (fork/exec + pipes), like the rest of the tooling's process
// handling; the server command is run through /bin/sh.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "resacc/serve/workload.h"
#include "resacc/util/args.h"
#include "resacc/util/histogram.h"
#include "resacc/util/timer.h"

namespace {

using namespace resacc;

struct ServerProcess {
  pid_t pid = -1;
  FILE* to_server = nullptr;    // our writes -> server stdin
  FILE* from_server = nullptr;  // server stdout -> our reads
};

bool Spawn(const std::string& command, ServerProcess& proc) {
  int to_child[2];
  int from_child[2];
  if (pipe(to_child) != 0 || pipe(from_child) != 0) return false;
  proc.pid = fork();
  if (proc.pid < 0) return false;
  if (proc.pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    execl("/bin/sh", "sh", "-c", command.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  proc.to_server = fdopen(to_child[1], "w");
  proc.from_server = fdopen(from_child[0], "r");
  return proc.to_server != nullptr && proc.from_server != nullptr;
}

bool ReadLine(ServerProcess& proc, std::string& out) {
  char buf[4096];
  if (std::fgets(buf, sizeof(buf), proc.from_server) == nullptr) {
    return false;
  }
  out.assign(buf);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string command = args.GetString("cmd", "");
  if (command.empty()) {
    std::fprintf(stderr,
                 "usage: loadgen --cmd=\"resacc_serve <graph> [opts]\" "
                 "[--queries=N] [--zipf=T] [--topk=K] [--topk-mode] "
                 "[--window=W] [--seed=S]\n");
    return 2;
  }
  const std::size_t num_queries =
      static_cast<std::size_t>(args.GetInt("queries", 1000));
  const double theta = args.GetDouble("zipf", 0.99);
  const std::size_t top_k =
      static_cast<std::size_t>(args.GetInt("topk", 10));
  const bool topk_mode = args.HasFlag("topk-mode");
  const char* query_verb = topk_mode ? "topk" : "query";
  const std::size_t window =
      static_cast<std::size_t>(args.GetInt("window", 16));
  const std::size_t burst =
      static_cast<std::size_t>(args.GetInt("closed-loop-burst", 0));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.GetInt("seed", 7));
  const double mutate = args.GetDouble("mutate", 0.0);
  const bool chaos = args.HasFlag("chaos");
  const double chaos_prob = args.GetDouble("chaos-prob", 0.02);
  const std::uint64_t chaos_seed = static_cast<std::uint64_t>(
      args.GetInt("chaos-seed", static_cast<std::int64_t>(seed)));

  std::string spawn_command = command;
  if (chaos) {
    // /bin/sh -c treats leading NAME=value words as environment for the
    // command, which is how the server's pre-main fault-injection init
    // (util/fault_injection.cc) gets armed without any server flag.
    char env[128];
    std::snprintf(env, sizeof(env),
                  "RESACC_FAULTS=1 RESACC_FAULT_PROB=%.6f "
                  "RESACC_FAULT_SEED=%llu ",
                  chaos_prob, static_cast<unsigned long long>(chaos_seed));
    spawn_command = std::string(env) + command;
    std::printf("loadgen: chaos mode, prob=%.3f seed=%llu\n", chaos_prob,
                static_cast<unsigned long long>(chaos_seed));
  }

  ServerProcess proc;
  if (!Spawn(spawn_command, proc)) {
    std::fprintf(stderr, "loadgen: failed to spawn '%s'\n",
                 spawn_command.c_str());
    return 1;
  }

  // Handshake: learn the graph size so the workload matches the server.
  std::fprintf(proc.to_server, "info\n");
  std::fflush(proc.to_server);
  std::string line;
  unsigned long nodes = 0;
  if (!ReadLine(proc, line) ||
      std::sscanf(line.c_str(), "info nodes=%lu", &nodes) != 1 ||
      nodes == 0) {
    std::fprintf(stderr, "loadgen: bad handshake: '%s'\n", line.c_str());
    return 1;
  }

  ZipfianSources workload(static_cast<NodeId>(nodes), theta, seed);
  Rng rng(seed ^ 0x10adULL);
  const std::vector<NodeId> sources = workload.Sample(num_queries, rng);

  std::printf("loadgen: %zu %s queries, zipf=%.2f over %lu nodes, "
              "window=%zu\n",
              num_queries, query_verb, theta, nodes, window);

  LatencyHistogram latency;
  // Send timestamps + operation kind, FIFO = response order. Mutations
  // share the ordered pipe but are excluded from latency/hit accounting.
  struct InFlight {
    Timer timer;
    bool is_query = true;
  };
  std::deque<InFlight> in_flight;
  std::size_t sent = 0;
  std::size_t received = 0;       // query responses
  std::size_t mutations = 0;      // mutation responses
  std::size_t mutation_errors = 0;
  std::size_t errors = 0;
  std::size_t hits = 0;
  Timer wall;

  // Edges this client added and can later remove; churn, not just growth.
  Rng mrng(seed ^ 0x0edce5ULL);
  std::vector<std::pair<NodeId, NodeId>> our_edges;

  auto receive_one = [&]() -> bool {
    if (!ReadLine(proc, line)) return false;
    const InFlight& op = in_flight.front();
    const bool ok = line.rfind("ok ", 0) == 0;
    if (op.is_query) {
      latency.Record(op.timer.ElapsedSeconds());
      ++received;
      if (ok) {
        if (line.find("hit=1") != std::string::npos) ++hits;
      } else {
        ++errors;
      }
    } else {
      ++mutations;
      if (!ok) ++mutation_errors;
    }
    in_flight.pop_front();
    return true;
  };

  auto send_mutation = [&]() {
    const bool remove = !our_edges.empty() && mrng.Bernoulli(0.5);
    if (remove) {
      const std::size_t pick = mrng.NextBounded(our_edges.size());
      const auto [u, v] = our_edges[pick];
      our_edges[pick] = our_edges.back();
      our_edges.pop_back();
      std::fprintf(proc.to_server, "rmedge %u %u\n", u, v);
    } else {
      const NodeId u = static_cast<NodeId>(mrng.NextBounded(nodes));
      NodeId v = static_cast<NodeId>(mrng.NextBounded(nodes));
      if (v == u) v = (v + 1) % static_cast<NodeId>(nodes);
      our_edges.emplace_back(u, v);
      std::fprintf(proc.to_server, "addedge %u %u\n", u, v);
    }
    in_flight.push_back(InFlight{Timer(), /*is_query=*/false});
  };

  if (burst > 1) {
    // Closed-loop bursts: every burst is fully in flight before the first
    // drain, so the server's workers see `burst` simultaneous jobs.
    while (received < num_queries) {
      const std::size_t n = std::min(burst, num_queries - sent);
      for (std::size_t i = 0; i < n; ++i) {
        if (mutate > 0.0 && mrng.Bernoulli(mutate)) send_mutation();
        std::fprintf(proc.to_server, "%s %u %zu\n", query_verb, sources[sent],
                     top_k);
        ++sent;
        in_flight.push_back(InFlight{Timer(), /*is_query=*/true});
      }
      std::fflush(proc.to_server);
      while (!in_flight.empty()) {
        if (!receive_one()) {
          std::fprintf(stderr, "loadgen: server closed after %zu responses\n",
                       received + mutations);
          return 1;
        }
      }
    }
  } else {
    while (received < num_queries) {
      while (sent < num_queries && in_flight.size() < window) {
        if (mutate > 0.0 && mrng.Bernoulli(mutate)) {
          send_mutation();
          if (in_flight.size() >= window) break;
        }
        std::fprintf(proc.to_server, "%s %u %zu\n", query_verb, sources[sent],
                     top_k);
        ++sent;
        in_flight.push_back(InFlight{Timer(), /*is_query=*/true});
      }
      std::fflush(proc.to_server);
      if (!receive_one()) {
        std::fprintf(stderr, "loadgen: server closed after %zu responses\n",
                     received + mutations);
        return 1;
      }
    }
  }
  const double elapsed = wall.ElapsedSeconds();

  std::fprintf(proc.to_server, "stats\nquit\n");
  std::fflush(proc.to_server);
  std::string server_stats;
  if (ReadLine(proc, line) && line.rfind("stats ", 0) == 0) {
    server_stats = line.substr(6);
  }
  fclose(proc.to_server);
  fclose(proc.from_server);
  int wstatus = 0;
  waitpid(proc.pid, &wstatus, 0);

  const LatencyHistogram::Snapshot snap = latency.TakeSnapshot();
  std::printf("client:  %zu ok, %zu errors in %.2fs -> %.1f qps\n",
              received - errors, errors, elapsed,
              static_cast<double>(received) / elapsed);
  if (mutations > 0) {
    std::printf("mutate:  %zu mutations interleaved (%zu errors)\n",
                mutations, mutation_errors);
  }
  std::printf("latency: %s\n", snap.ToString().c_str());
  std::printf("hits:    %zu/%zu (%.1f%%)\n", hits, received,
              received > 0 ? 100.0 * static_cast<double>(hits) /
                                 static_cast<double>(received)
                           : 0.0);
  if (!server_stats.empty()) {
    std::printf("server:  %s\n", server_stats.c_str());
  }
  // Chaos asserts liveness, not a spotless log: injected faults surface as
  // err lines (queue rejections, deadline expiries), but every query got a
  // response and the receive loop above would have exited 1 otherwise.
  if (chaos) {
    std::printf("chaos:   all %zu responses arrived (%zu errors tolerated)\n",
                received, errors);
    return 0;
  }
  return errors == 0 && mutation_errors == 0 ? 0 : 1;
}

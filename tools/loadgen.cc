// loadgen — load generator for resacc_serve. Spawns the server, streams a
// query workload through its stdin/stdout line protocol with a bounded
// pipelining window, and reports client-side throughput and latency
// percentiles plus the server's own stats line.
//
//   loadgen --cmd="build/tools/resacc_serve graph.bin --workers=4"
//           [--queries=1000] [--zipf=0.99] [--topk=10] [--topk-mode]
//           [--window=16] [--closed-loop-burst=B] [--seed=7] [--mutate=F]
//           [--spec=FILE]
//           [--chaos] [--chaos-prob=P] [--chaos-seed=S]
//
// --spec=FILE replaces the ad-hoc flags with a declarative WorkloadSpec
// (docs/WORKLOADS.md): the spec's tenants are merged into one
// deterministic op stream — mixed full/topk/deadline/degraded/mutation
// classes with tenant= tokens — and replayed through the pipe for the
// spec's duration. Pair it with a --cmd that passes --tenants=... so the
// server actually runs the spec's QoS weights. Per-class results are
// reported from the same accounting as bench_workload.
//
// --topk-mode issues `topk <src> <k>` lines (the server's first-class
// top-k query mode, docs/QUERY_MODES.md) instead of full-solve `query`
// lines; --topk then sets the k each request asks for.
//
// --closed-loop-burst=B replaces the streaming window with closed-loop
// bursts: B queries are sent together, then all B responses are drained
// before the next burst goes out. That is the arrival pattern the
// server's batch formation (resacc_serve --max-batch/--batch-linger-us)
// gathers into one multi-source solve, so burst mode is how batching is
// exercised (and measured) end to end through the line protocol.
//
// --mutate=F interleaves graph mutations into the stream: each operation
// is, with probability F, an `addedge`/`rmedge` line (edges previously
// added by this client are preferentially removed, so the graph churns
// rather than only growing) instead of a query. Queries and mutations get
// separate latency histograms — mutation round-trips measure the reader
// thread's synchronous apply, not solver time, and folding them into the
// query percentiles would flatter the tail.
//
// After the run, the server's stats line is parsed for its queue-wait vs
// compute p95 split, so a fat client-side tail is attributable: queueing
// (raise --workers / lower the offered load) versus solving (tune the
// config) without re-running under a profiler.
//
// --chaos spawns the server with deterministic fault injection armed
// (RESACC_FAULTS=1, see util/fault_injection.h): queue rejections, forced
// cache misses, spurious evictions, walk stalls, and worker hiccups fire
// at --chaos-prob per site hit. The run then asserts liveness rather than
// a clean log: every query must get *a* response line, err lines are
// counted but tolerated, and the exit code is 0 iff no response went
// missing.
//
// POSIX-only (fork/exec + pipes, via the workload library's
// ProtocolClient); the server command is run through /bin/sh.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "resacc/serve/workload.h"
#include "resacc/util/args.h"
#include "resacc/util/histogram.h"
#include "resacc/util/timer.h"
#include "resacc/workload/protocol_client.h"
#include "resacc/workload/workload_spec.h"

namespace {

using namespace resacc;

// Parses `key=<float>` out of the server stats line; -1 when absent.
double StatsValue(const std::string& stats, const char* key) {
  const char* hit = std::strstr(stats.c_str(), key);
  if (hit == nullptr) return -1.0;
  return std::atof(hit + std::strlen(key));
}

void PrintServerSplit(const std::string& server_stats) {
  if (server_stats.empty()) return;
  std::printf("server:  %s\n", server_stats.c_str());
  const double queue_wait = StatsValue(server_stats, "queue_wait_p95_ms=");
  const double compute = StatsValue(server_stats, "compute_p95_ms=");
  if (queue_wait >= 0.0 && compute >= 0.0) {
    std::printf("split:   queue_wait_p95=%.3fms compute_p95=%.3fms "
                "(server-side; fat queue wait means saturation, fat "
                "compute means the solver)\n",
                queue_wait, compute);
  }
}

// --spec mode: deterministic multi-class replay through the pipe.
int RunSpecMode(ProtocolClient& client, const std::string& spec_path,
                NodeId nodes, std::size_t window) {
  const StatusOr<WorkloadSpec> spec = WorkloadSpec::ParseFile(spec_path);
  if (!spec.ok()) {
    std::fprintf(stderr, "loadgen: %s\n", spec.status().ToString().c_str());
    return 2;
  }
  std::printf("loadgen: spec %s, %zu tenants, %.0fs over %u nodes\n",
              spec_path.c_str(), spec.value().tenants.size(),
              spec.value().duration_seconds, nodes);
  WorkloadReport report;
  report.spec_origin = spec_path;
  const Status run =
      RunProtocolWorkload(spec.value(), client, nodes, window, &report);
  if (!run.ok()) {
    std::fprintf(stderr, "loadgen: %s\n", run.ToString().c_str());
    return 1;
  }

  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  for (const OpStats& s : report.classes) {
    rejected += s.rejected;
    expired += s.deadline_exceeded;
  }
  std::printf(
      "client:  %llu ok, %llu rejected, %llu expired, %llu errors "
      "in %.2fs -> %.1f qps\n",
      static_cast<unsigned long long>(report.TotalOk()),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(expired),
      static_cast<unsigned long long>(report.TotalErrors()),
      report.wall_seconds,
      report.wall_seconds > 0.0
          ? static_cast<double>(report.TotalOk()) / report.wall_seconds
          : 0.0);
  for (std::size_t c = 0; c < kNumOpClasses; ++c) {
    const OpStats& s = report.classes[c];
    if (s.sent == 0) continue;
    std::printf("%-9s %s hits=%llu\n", OpClassName(static_cast<OpClass>(c)),
                s.latency.ToString().c_str(),
                static_cast<unsigned long long>(s.cache_hits));
  }
  for (std::size_t t = 0; t < report.tenant_names.size(); ++t) {
    std::printf("tenant %-10s computed_ok=%llu\n",
                report.tenant_names[t].c_str(),
                static_cast<unsigned long long>(report.computed_ok[t]));
  }

  client.SendLine("stats");
  client.Flush();
  std::string line;
  if (client.ReadLine(line) && line.rfind("stats ", 0) == 0) {
    PrintServerSplit(line.substr(6));
  }
  client.Shutdown();
  return report.TotalErrors() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string command = args.GetString("cmd", "");
  if (command.empty()) {
    std::fprintf(stderr,
                 "usage: loadgen --cmd=\"resacc_serve <graph> [opts]\" "
                 "[--queries=N] [--zipf=T] [--topk=K] [--topk-mode] "
                 "[--window=W] [--seed=S] [--spec=FILE]\n");
    return 2;
  }
  const std::size_t num_queries =
      static_cast<std::size_t>(args.GetInt("queries", 1000));
  const double theta = args.GetDouble("zipf", 0.99);
  const std::size_t top_k =
      static_cast<std::size_t>(args.GetInt("topk", 10));
  const bool topk_mode = args.HasFlag("topk-mode");
  const char* query_verb = topk_mode ? "topk" : "query";
  const std::size_t window =
      static_cast<std::size_t>(args.GetInt("window", 16));
  const std::size_t burst =
      static_cast<std::size_t>(args.GetInt("closed-loop-burst", 0));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.GetInt("seed", 7));
  const double mutate = args.GetDouble("mutate", 0.0);
  const std::string spec_path = args.GetString("spec", "");
  const bool chaos = args.HasFlag("chaos");
  const double chaos_prob = args.GetDouble("chaos-prob", 0.02);
  const std::uint64_t chaos_seed = static_cast<std::uint64_t>(
      args.GetInt("chaos-seed", static_cast<std::int64_t>(seed)));

  std::string spawn_command = command;
  if (chaos) {
    // /bin/sh -c treats leading NAME=value words as environment for the
    // command, which is how the server's pre-main fault-injection init
    // (util/fault_injection.cc) gets armed without any server flag.
    char env[128];
    std::snprintf(env, sizeof(env),
                  "RESACC_FAULTS=1 RESACC_FAULT_PROB=%.6f "
                  "RESACC_FAULT_SEED=%llu ",
                  chaos_prob, static_cast<unsigned long long>(chaos_seed));
    spawn_command = std::string(env) + command;
    std::printf("loadgen: chaos mode, prob=%.3f seed=%llu\n", chaos_prob,
                static_cast<unsigned long long>(chaos_seed));
  }

  ProtocolClient client;
  if (!client.Spawn(spawn_command).ok()) {
    std::fprintf(stderr, "loadgen: failed to spawn '%s'\n",
                 spawn_command.c_str());
    return 1;
  }
  const StatusOr<NodeId> handshake = client.Handshake();
  if (!handshake.ok()) {
    std::fprintf(stderr, "loadgen: %s\n",
                 handshake.status().ToString().c_str());
    return 1;
  }
  const NodeId nodes = handshake.value();

  if (!spec_path.empty()) {
    return RunSpecMode(client, spec_path, nodes, window);
  }

  ZipfianSources workload(nodes, theta, seed);
  Rng rng(seed ^ 0x10adULL);
  const std::vector<NodeId> sources = workload.Sample(num_queries, rng);

  std::printf("loadgen: %zu %s queries, zipf=%.2f over %u nodes, "
              "window=%zu\n",
              num_queries, query_verb, theta, nodes, window);

  // Per-class accounting: queries and mutations answer different
  // questions (solver latency vs. mutation-apply round-trip), so each op
  // kind gets its own histogram instead of sharing — or skipping — one.
  LatencyHistogram query_latency;
  LatencyHistogram mutation_latency;
  struct InFlight {
    Timer timer;
    bool is_query = true;
  };
  std::deque<InFlight> in_flight;
  std::size_t sent = 0;
  std::size_t received = 0;       // query responses
  std::size_t mutations = 0;      // mutation responses
  std::size_t mutation_errors = 0;
  std::size_t errors = 0;
  std::size_t hits = 0;
  Timer wall;
  std::string line;

  // Edges this client added and can later remove; churn, not just growth.
  Rng mrng(seed ^ 0x0edce5ULL);
  std::vector<std::pair<NodeId, NodeId>> our_edges;

  auto receive_one = [&]() -> bool {
    if (!client.ReadLine(line)) return false;
    const InFlight& op = in_flight.front();
    const bool ok = line.rfind("ok ", 0) == 0;
    if (op.is_query) {
      query_latency.Record(op.timer.ElapsedSeconds());
      ++received;
      if (ok) {
        if (line.find("hit=1") != std::string::npos) ++hits;
      } else {
        ++errors;
      }
    } else {
      mutation_latency.Record(op.timer.ElapsedSeconds());
      ++mutations;
      if (!ok) ++mutation_errors;
    }
    in_flight.pop_front();
    return true;
  };

  char buf[96];
  auto send_mutation = [&]() {
    const bool remove = !our_edges.empty() && mrng.Bernoulli(0.5);
    if (remove) {
      const std::size_t pick = mrng.NextBounded(our_edges.size());
      const auto [u, v] = our_edges[pick];
      our_edges[pick] = our_edges.back();
      our_edges.pop_back();
      std::snprintf(buf, sizeof(buf), "rmedge %u %u", u, v);
    } else {
      const NodeId u = static_cast<NodeId>(mrng.NextBounded(nodes));
      NodeId v = static_cast<NodeId>(mrng.NextBounded(nodes));
      if (v == u) v = (v + 1) % nodes;
      our_edges.emplace_back(u, v);
      std::snprintf(buf, sizeof(buf), "addedge %u %u", u, v);
    }
    client.SendLine(buf);
    in_flight.push_back(InFlight{Timer(), /*is_query=*/false});
  };

  auto send_query = [&]() {
    std::snprintf(buf, sizeof(buf), "%s %u %zu", query_verb, sources[sent],
                  top_k);
    client.SendLine(buf);
    ++sent;
    in_flight.push_back(InFlight{Timer(), /*is_query=*/true});
  };

  if (burst > 1) {
    // Closed-loop bursts: every burst is fully in flight before the first
    // drain, so the server's workers see `burst` simultaneous jobs.
    while (received < num_queries) {
      const std::size_t n = std::min(burst, num_queries - sent);
      for (std::size_t i = 0; i < n; ++i) {
        if (mutate > 0.0 && mrng.Bernoulli(mutate)) send_mutation();
        send_query();
      }
      client.Flush();
      while (!in_flight.empty()) {
        if (!receive_one()) {
          std::fprintf(stderr, "loadgen: server closed after %zu responses\n",
                       received + mutations);
          return 1;
        }
      }
    }
  } else {
    while (received < num_queries) {
      while (sent < num_queries && in_flight.size() < window) {
        if (mutate > 0.0 && mrng.Bernoulli(mutate)) {
          send_mutation();
          if (in_flight.size() >= window) break;
        }
        send_query();
      }
      client.Flush();
      if (!receive_one()) {
        std::fprintf(stderr, "loadgen: server closed after %zu responses\n",
                     received + mutations);
        return 1;
      }
    }
  }
  const double elapsed = wall.ElapsedSeconds();

  client.SendLine("stats");
  client.Flush();
  std::string server_stats;
  if (client.ReadLine(line) && line.rfind("stats ", 0) == 0) {
    server_stats = line.substr(6);
  }
  client.Shutdown();

  const LatencyHistogram::Snapshot snap = query_latency.TakeSnapshot();
  std::printf("client:  %zu ok, %zu errors in %.2fs -> %.1f qps\n",
              received - errors, errors, elapsed,
              static_cast<double>(received) / elapsed);
  std::printf("latency: %s\n", snap.ToString().c_str());
  if (mutations > 0) {
    const LatencyHistogram::Snapshot msnap = mutation_latency.TakeSnapshot();
    std::printf("mutate:  %s (%zu errors)\n", msnap.ToString().c_str(),
                mutation_errors);
  }
  std::printf("hits:    %zu/%zu (%.1f%%)\n", hits, received,
              received > 0 ? 100.0 * static_cast<double>(hits) /
                                 static_cast<double>(received)
                           : 0.0);
  PrintServerSplit(server_stats);
  // Chaos asserts liveness, not a spotless log: injected faults surface as
  // err lines (queue rejections, deadline expiries), but every query got a
  // response and the receive loop above would have exited 1 otherwise.
  if (chaos) {
    std::printf("chaos:   all %zu responses arrived (%zu errors tolerated)\n",
                received, errors);
    return 0;
  }
  return errors == 0 && mutation_errors == 0 ? 0 : 1;
}

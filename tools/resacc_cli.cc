// resacc — command-line front end for the library.
//
//   resacc generate --type=chunglu --nodes=100000 --edges=1000000 out.bin
//   resacc stats graph.txt
//   resacc query graph.txt --source=42 --topk=10 [--algo=resacc]
//                [--trace-json=out.json]
//   resacc msrwr graph.txt --sources=1,2,3 [--threads=4]
//   resacc communities graph.txt --count=50
//   resacc convert graph.txt graph.rsg
//
// Graph files ending in .rsg use the mmap'd RESACC02 snapshot, .bin the
// RESACC01 binary format; anything else is read as a SNAP-style edge
// list. `--undirected` symmetrizes on load (text only).

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "resacc/algo/fora.h"
#include "resacc/algo/fora_plus.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/algo/power.h"
#include "resacc/algo/topppr.h"
#include "resacc/algo/tpa.h"
#include "resacc/core/parallel_msrwr.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/community_metrics.h"
#include "resacc/graph/datasets.h"
#include "resacc/graph/generators.h"
#include "resacc/graph/graph_io.h"
#include "resacc/graph/graph_stats.h"
#include "resacc/nise/nise.h"
#include "resacc/obs/trace.h"
#include "resacc/util/args.h"
#include "resacc/util/table.h"
#include "resacc/util/timer.h"
#include "resacc/util/top_k.h"

namespace {

using namespace resacc;

// Extension dispatch lives in graph_io.h: .rsg = RESACC02 snapshot,
// .bin = RESACC01 binary, anything else = edge-list text.

// walk_threads: intra-query parallelism of the walk phase (resacc, fora,
// mc; the other solvers have no walk phase). 0 = hardware concurrency.
// Scores do not depend on it (walk_engine.h).
std::unique_ptr<SsrwrAlgorithm> MakeSolver(const std::string& name,
                                           const Graph& graph,
                                           const RwrConfig& config,
                                           std::size_t walk_threads,
                                           const HybridOptions& hybrid = {}) {
  if (name == "resacc") {
    ResAccOptions options;
    options.walk_threads = walk_threads;
    // Hybrid local/dense selection (core/power_iter.h); the other algos
    // have no local/dense split, so the flag only applies here.
    options.hybrid = hybrid;
    return std::make_unique<ResAccSolver>(graph, config, options);
  }
  if (name == "fora") {
    ForaOptions options;
    options.walk_threads = walk_threads;
    return std::make_unique<Fora>(graph, config, options);
  }
  if (name == "mc") {
    return std::make_unique<MonteCarlo>(graph, config, /*walk_scale=*/1.0,
                                        walk_threads);
  }
  if (name == "power") {
    return std::make_unique<PowerIteration>(graph, config);
  }
  if (name == "topppr") return std::make_unique<TopPpr>(graph, config);
  if (name == "fora+") {
    auto solver = std::make_unique<ForaPlus>(graph, config);
    const Status status = solver->BuildIndex();
    if (!status.ok()) {
      std::fprintf(stderr, "FORA+ index: %s\n", status.ToString().c_str());
      return nullptr;
    }
    return solver;
  }
  if (name == "tpa") {
    auto solver = std::make_unique<Tpa>(graph, config);
    const Status status = solver->BuildIndex();
    if (!status.ok()) {
      std::fprintf(stderr, "TPA index: %s\n", status.ToString().c_str());
      return nullptr;
    }
    return solver;
  }
  std::fprintf(stderr,
               "unknown --algo=%s (want resacc|fora|fora+|mc|power|topppr|"
               "tpa)\n",
               name.c_str());
  return nullptr;
}

RwrConfig ConfigFromArgs(const ArgParser& args, const Graph& graph) {
  RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());
  config.alpha = args.GetDouble("alpha", config.alpha);
  config.epsilon = args.GetDouble("epsilon", config.epsilon);
  config.delta = args.GetDouble("delta", config.delta);
  config.p_f = args.GetDouble("pf", config.p_f);
  config.seed = static_cast<std::uint64_t>(args.GetInt("seed", 0x5eed));
  if (args.GetString("dangling", "absorb") == "source") {
    config.dangling = DanglingPolicy::kBackToSource;
  } else {
    config.dangling = DanglingPolicy::kAbsorb;
  }
  return config;
}

int CmdGenerate(const ArgParser& args) {
  if (args.positionals().size() < 2) {
    std::fprintf(stderr, "usage: resacc generate --type=... <out>\n");
    return 2;
  }
  const std::string type = args.GetString("type", "chunglu");
  const NodeId n = static_cast<NodeId>(args.GetInt("nodes", 10000));
  const EdgeId m = static_cast<EdgeId>(args.GetInt("edges", 100000));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.GetInt("seed", 42));

  Graph graph;
  if (type == "chunglu") {
    graph = ChungLuPowerLaw(n, m, args.GetDouble("exponent", 2.2), seed,
                            args.HasFlag("undirected"));
  } else if (type == "er") {
    graph = ErdosRenyi(n, m, seed, args.HasFlag("undirected"));
  } else if (type == "ba") {
    graph = BarabasiAlbert(n, static_cast<NodeId>(args.GetInt("attach", 3)),
                           seed);
  } else if (type == "ws") {
    graph = WattsStrogatz(n, static_cast<NodeId>(args.GetInt("k", 4)),
                          args.GetDouble("beta", 0.1), seed);
  } else if (type == "sbm") {
    graph = PlantedPartition(
        n, static_cast<NodeId>(args.GetInt("blocks", 10)),
        args.GetDouble("deg-in", 10.0), args.GetDouble("deg-out", 2.0), seed);
  } else if (type == "dataset") {
    const StatusOr<DatasetSpec> spec =
        FindDataset(args.GetString("name", "dblp-sim"));
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }
    graph = MakeDataset(spec.value(), args.GetDouble("scale", 1.0), seed);
  } else {
    std::fprintf(stderr, "unknown --type=%s\n", type.c_str());
    return 2;
  }

  const std::string& out = args.positionals()[1];
  const Status status = SaveGraphAuto(graph, out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %s\n", out.c_str(),
              ComputeGraphStats(graph).ToString().c_str());
  return 0;
}

int CmdStats(const ArgParser& args, const Graph& graph) {
  std::printf("%s\n", ComputeGraphStats(graph).ToString().c_str());
  if (args.HasFlag("histogram")) {
    std::printf("out-degree histogram (log2 buckets):\n");
    const auto histogram = DegreeHistogramLog2(graph);
    for (std::size_t bucket = 0; bucket < histogram.size(); ++bucket) {
      std::printf("  [%7u, %7u): %zu\n", 1u << bucket, 2u << bucket,
                  histogram[bucket]);
    }
  }
  return 0;
}

int CmdQuery(const ArgParser& args, const Graph& graph) {
  const RwrConfig config = ConfigFromArgs(args, graph);
  const NodeId source = static_cast<NodeId>(args.GetInt("source", 0));
  if (source >= graph.num_nodes()) {
    std::fprintf(stderr, "--source out of range\n");
    return 2;
  }
  const std::size_t walk_threads =
      static_cast<std::size_t>(args.GetInt("walk-threads", 0));
  // --hybrid arms the local/dense selector (resacc only): hub sources
  // whose local cost beats --hybrid-ratio x the dense-sweep bound are
  // answered by whole-graph power iteration, same (eps, delta) contract.
  HybridOptions hybrid;
  hybrid.enable = args.HasFlag("hybrid");
  hybrid.cost_ratio = args.GetDouble("hybrid-ratio", 1.0);
  auto solver = MakeSolver(args.GetString("algo", "resacc"), graph, config,
                           walk_threads, hybrid);
  if (solver == nullptr) return 1;

  // --trace-json=FILE records the query's span tree (phase nesting and
  // durations) and writes it as JSON; docs/OBSERVABILITY.md documents the
  // schema. Tracing stays off otherwise.
  const std::string trace_path = args.GetString("trace-json", "");
  if (!trace_path.empty()) Trace::Enable();

  Timer timer;
  const std::vector<Score> scores = solver->Query(source);
  const double total_seconds = timer.ElapsedSeconds();
  std::printf("%s query from %u: %s\n", solver->name().c_str(), source,
              FmtSeconds(total_seconds).c_str());

  if (!trace_path.empty()) {
    Trace::Disable();
    const std::uint64_t dropped = Trace::DroppedThreadEvents();
    const std::vector<TraceEvent> events = Trace::DrainThreadEvents();
    std::FILE* out = std::fopen(trace_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"tool\": \"resacc_cli\",\n  \"algo\": \"%s\",\n"
                 "  \"source\": %u,\n  \"total_seconds\": %.9f,\n"
                 "  \"dropped_events\": %llu,\n  \"spans\": %s\n}\n",
                 solver->name().c_str(), source, total_seconds,
                 static_cast<unsigned long long>(dropped),
                 Trace::ToJson(events).c_str());
    std::fclose(out);
    std::fprintf(stderr, "[trace] %zu spans -> %s\n", events.size(),
                 trace_path.c_str());
  }

  const std::size_t k = static_cast<std::size_t>(args.GetInt("topk", 10));
  TextTable table({"rank", "node", "rwr score"});
  int rank = 1;
  for (const auto& [node, score] : TopKPairs(scores, k)) {
    table.AddRow({std::to_string(rank++), std::to_string(node), Fmt(score)});
  }
  table.Print(stdout);
  return 0;
}

int CmdMsrwr(const ArgParser& args, const Graph& graph) {
  const RwrConfig config = ConfigFromArgs(args, graph);
  std::vector<NodeId> sources;
  for (std::int64_t s : args.GetIntList("sources")) {
    if (s >= 0 && static_cast<NodeId>(s) < graph.num_nodes()) {
      sources.push_back(static_cast<NodeId>(s));
    }
  }
  if (sources.empty()) {
    std::fprintf(stderr, "usage: resacc msrwr <graph> --sources=1,2,3\n");
    return 2;
  }
  const std::size_t threads = static_cast<std::size_t>(
      args.GetInt("threads", static_cast<std::int64_t>(
                                 ThreadPool::DefaultThreads())));
  // Split the machine between query-level and walk-level parallelism:
  // each of the `threads` solvers gets hw/threads walk threads unless
  // overridden. With a full pool this degenerates to walk_threads = 1,
  // the one-solver-per-worker rule of walk_engine.h.
  const std::size_t default_walk_threads =
      std::max<std::size_t>(1, ThreadPool::DefaultThreads() / threads);
  const std::size_t walk_threads = static_cast<std::size_t>(args.GetInt(
      "walk-threads", static_cast<std::int64_t>(default_walk_threads)));
  ThreadPool pool(threads);
  Timer timer;
  const auto results = ParallelQueryMany(pool, sources, [&] {
    ResAccOptions options;
    options.walk_threads = walk_threads;
    return std::make_unique<ResAccSolver>(graph, config, options);
  });
  std::printf("MSRWR over %zu sources on %zu threads: %s\n", sources.size(),
              threads, FmtSeconds(timer.ElapsedSeconds()).c_str());
  TextTable table({"source", "top node", "score"});
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const auto top = TopKPairs(results[i], 1);
    table.AddRow({std::to_string(sources[i]), std::to_string(top[0].first),
                  Fmt(top[0].second)});
  }
  table.Print(stdout);
  return 0;
}

int CmdCommunities(const ArgParser& args, const Graph& graph) {
  const RwrConfig config = ConfigFromArgs(args, graph);
  NiseOptions options;
  options.num_communities =
      static_cast<std::size_t>(args.GetInt("count", 50));
  ResAccSolver solver(graph, config, ResAccOptions{});
  Timer timer;
  const NiseResult result = Nise(graph, options).Detect(solver);
  std::printf(
      "NISE found %zu communities in %s (SSRWR time %s)\n"
      "avg normalized cut %.4f, avg conductance %.4f\n",
      result.communities.size(), FmtSeconds(timer.ElapsedSeconds()).c_str(),
      FmtSeconds(result.ssrwr_seconds).c_str(),
      AverageNormalizedCut(graph, result.communities),
      AverageConductance(graph, result.communities));
  if (args.HasFlag("print")) {
    for (std::size_t c = 0; c < result.communities.size(); ++c) {
      std::printf("community %zu (%zu nodes):", c,
                  result.communities[c].size());
      for (NodeId v : result.communities[c]) std::printf(" %u", v);
      std::printf("\n");
    }
  }
  return 0;
}

int CmdConvert(const ArgParser& args, const Graph& graph) {
  if (args.positionals().size() < 3) {
    std::fprintf(stderr, "usage: resacc convert <in> <out>\n");
    return 2;
  }
  const Status status = SaveGraphAuto(graph, args.positionals()[2]);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", args.positionals()[2].c_str());
  return 0;
}

void PrintUsage() {
  std::fprintf(
      stderr,
      "resacc — index-free Random Walk with Restart queries\n\n"
      "commands:\n"
      "  generate --type=chunglu|er|ba|ws|sbm|dataset [opts] <out>\n"
      "  stats <graph> [--histogram]\n"
      "  query <graph> --source=N [--algo=resacc|fora|fora+|mc|power|topppr|tpa]\n"
      "                [--topk=K] [--alpha=A] [--epsilon=E] [--walk-threads=W]\n"
      "                (W threads for the walk phase; 0 = all cores;\n"
      "                 scores are identical for every W)\n"
      "                [--hybrid] [--hybrid-ratio=R]\n"
      "                (resacc only: dense power-iteration fallback for\n"
      "                 hub sources; R scales the local-vs-dense cost bar)\n"
      "  msrwr <graph> --sources=1,2,3 [--threads=T] [--walk-threads=W]\n"
      "                (default W = cores/T, walk parallelism per solver)\n"
      "  communities <graph> [--count=C] [--print]\n"
      "  convert <in> <out>\n\n"
      "graphs: *.rsg = RESACC02 mmap snapshot (fastest to load),\n"
      "        *.bin = RESACC01 binary, otherwise edge-list text\n"
      "        (--undirected symmetrizes on load, text only)\n");
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.positionals().empty()) {
    PrintUsage();
    return 2;
  }
  const std::string& command = args.positionals()[0];

  if (command == "generate") return CmdGenerate(args);

  if (args.positionals().size() < 2) {
    PrintUsage();
    return 2;
  }
  const StatusOr<Graph> graph =
      LoadGraphAuto(args.positionals()[1], args.HasFlag("undirected"));
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  if (command == "stats") return CmdStats(args, graph.value());
  if (command == "query") return CmdQuery(args, graph.value());
  if (command == "msrwr") return CmdMsrwr(args, graph.value());
  if (command == "communities") return CmdCommunities(args, graph.value());
  if (command == "convert") return CmdConvert(args, graph.value());

  PrintUsage();
  return 2;
}

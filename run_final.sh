#!/bin/bash
# Final deliverable runs: full test suite + every bench binary.
cd /root/repo
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt > /dev/null
for b in build/bench/*; do $b; done 2>&1 | tee /root/repo/bench_output.txt > /dev/null
echo FINAL_RUNS_DONE

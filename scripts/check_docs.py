#!/usr/bin/env python3
"""Documentation checks: markdown links and API.md code snippets.

Two passes, both hermetic (no network):

1. Link check over README.md, DESIGN.md, EXPERIMENTS.md and docs/*.md:
   every relative link must resolve to a file in the repo, and every
   `#anchor` (same-file or cross-file) must match a heading in the target
   document, using GitHub's slug rules. External http(s)/mailto links are
   format-checked only.

2. Required-section check: headings listed in REQUIRED_SECTIONS must
   exist (as GitHub anchor slugs) in their documents — e.g. the serving
   cancellation/degraded-result contract in docs/API.md and the
   degradation-alerting guidance in docs/OBSERVABILITY.md.

3. Snippet compile check over fenced ```cpp blocks in docs/API.md: each
   block is hoisted into a translation unit (includes first, body wrapped
   in a Status-returning function over a small extern-variable preamble)
   and run through `g++ -fsyntax-only -std=c++20`. This keeps the examples
   honest: an API rename that is not reflected in the docs fails CI.
   Blocks that are deliberately not compilable (pseudo-code, shell-ish
   transcripts) use a non-cpp info string such as ```text.

Exit status 0 when everything passes, 1 otherwise; findings are printed
one per line as `file:line: message`.
"""

import pathlib
import re
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent

LINKED_DOCS = ["README.md", "DESIGN.md", "EXPERIMENTS.md"]
SNIPPET_DOC = "docs/API.md"

# Sections whose presence is contractual: the serving robustness
# semantics (cancellation/degraded results), the operator guidance for
# them, the RESACC02 on-disk byte layout, and the Graph span-ownership
# model live nowhere else, so a doc refactor that drops any of these
# headings must fail CI. Checked as GitHub anchor slugs.
REQUIRED_SECTIONS = {
    "docs/API.md": [
        "cancellation-deadlines--degraded-results",
        "graph-storage",
        "resacc02-byte-layout",
        "dynamic-graphs-mutations-and-invalidation",
        "batched-solving",
        "top-k-queries",
    ],
    "docs/OBSERVABILITY.md": [
        "alerting-on-degradation",
        "per-tenant-series",
    ],
    "docs/WORKLOADS.md": [
        "spec-format",
        "tenants-and-qos",
        "reading-bench_workloadjson",
        "updating-the-baseline",
    ],
    "docs/QUERY_MODES.md": [
        "full-vector-queries",
        "top-k-queries",
        "degraded-and-partial-results",
        "batched-queries",
        "hybrid-localdense-solving",
        "deadline-bound-queries",
        "epoch-pinned-queries-under-mutation",
    ],
    "DESIGN.md": [
        "storage-ownership-borrowed-spans",
        "dynamic-graphs-delta-overlay-epochs-compaction",
        "batched-solving-shared-frontier-simd-lanes",
        "top-k-bound-based-early-termination",
        "hybrid-localdense-solving",
    ],
}

# Declarations the API.md snippets may reference without declaring; the
# snippets stay focused on the call being documented. Local declarations
# in a snippet legally shadow these.
SNIPPET_PREAMBLE = """\
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "resacc/algo/fora.h"
#include "resacc/algo/fora_plus.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/algo/power.h"
#include "resacc/core/parallel_msrwr.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/core/seed_set_query.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/eval/metrics.h"
#include "resacc/graph/generators.h"
#include "resacc/graph/graph_io.h"
#include "resacc/nise/nise.h"
#include "resacc/obs/metrics_registry.h"
#include "resacc/obs/stats_reporter.h"
#include "resacc/obs/trace.h"
#include "resacc/serve/query_service.h"
#include "resacc/serve/workload.h"
#include "resacc/util/rng.h"
#include "resacc/util/timer.h"

using namespace resacc;

extern Graph graph;
extern RwrConfig config;
extern NodeId num_nodes, u, v, source, s1, s2, s3, seed_a, seed_b;
extern std::vector<NodeId> sources;
extern std::vector<Score> estimate, exact, scores;
"""


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: pathlib.Path):
    slugs, counts = set(), {}
    in_fence = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = re.match(r"#{1,6}\s+(.*)", line)
        if match:
            slug = github_slug(match.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")


def check_links(doc_paths):
    errors = []
    slug_cache = {}

    def slugs_for(path):
        if path not in slug_cache:
            slug_cache[path] = heading_slugs(path)
        return slug_cache[path]

    for doc in doc_paths:
        in_fence = False
        for lineno, line in enumerate(doc.read_text().splitlines(), 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                base, _, anchor = target.partition("#")
                dest = doc if not base else (doc.parent / base).resolve()
                if base and not dest.exists():
                    errors.append(f"{doc}:{lineno}: broken link '{target}'")
                    continue
                if anchor and dest.suffix == ".md":
                    if anchor not in slugs_for(dest):
                        errors.append(
                            f"{doc}:{lineno}: missing anchor '#{anchor}' "
                            f"in {dest.relative_to(REPO)}")
    return errors


def check_required_sections():
    errors = []
    for relpath, anchors in REQUIRED_SECTIONS.items():
        path = REPO / relpath
        if not path.exists():
            continue  # reported as a missing file by main()
        slugs = heading_slugs(path)
        for anchor in anchors:
            if anchor not in slugs:
                errors.append(
                    f"{path}: required section '#{anchor}' is missing")
    return errors


def extract_cpp_snippets(path: pathlib.Path):
    snippets, current, start = [], None, 0
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        stripped = line.strip()
        if current is None:
            if stripped == "```cpp":
                current, start = [], lineno
        elif stripped == "```":
            snippets.append((start, "\n".join(current)))
            current = None
        else:
            current.append(line)
    return snippets


def check_snippets(path: pathlib.Path):
    snippets = extract_cpp_snippets(path)
    if not snippets:
        return [f"{path}: no ```cpp snippets found (drift check is moot)"]
    errors = []
    includes, bodies = [], []
    for index, (lineno, text) in enumerate(snippets):
        body_lines = []
        for line in text.splitlines():
            if line.lstrip().startswith("#include"):
                includes.append(line.lstrip())
            else:
                body_lines.append(line)
        body = "\n".join(body_lines)
        if "int main" in body:
            bodies.append(body)  # standalone example, keep at file scope
        else:
            bodies.append(
                f"Status DocSnippet{index}() {{  // {path.name}:{lineno}\n"
                f"{body}\n"
                f"return Status::Ok();\n}}")
    unit = (SNIPPET_PREAMBLE + "\n" + "\n".join(dict.fromkeys(includes)) +
            "\n\n" + "\n\n".join(bodies) + "\n")
    with tempfile.NamedTemporaryFile(
            suffix=".cc", mode="w", delete=False) as handle:
        handle.write(unit)
        unit_path = handle.name
    result = subprocess.run(
        ["g++", "-fsyntax-only", "-std=c++20", "-I", str(REPO / "src"),
         "-Wno-unused-variable", unit_path],
        capture_output=True, text=True)
    if result.returncode != 0:
        errors.append(f"{path}: snippet compile check failed "
                      f"({len(snippets)} snippets):")
        errors.append(result.stderr.strip())
        errors.append(f"generated unit kept at {unit_path}")
    else:
        pathlib.Path(unit_path).unlink()
        print(f"{path}: {len(snippets)} cpp snippets compile")
    return errors


def main() -> int:
    docs = [REPO / name for name in LINKED_DOCS]
    docs += sorted((REPO / "docs").glob("*.md"))
    missing = [d for d in docs if not d.exists()]
    errors = [f"{d}: file missing" for d in missing]
    docs = [d for d in docs if d.exists()]
    errors += check_links(docs)
    errors += check_required_sections()
    errors += check_snippets(REPO / SNIPPET_DOC)
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print(f"checked {len(docs)} documents: links and snippets OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())

# Empty compiler generated dependencies file for pairwise_proximity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pairwise_proximity.dir/pairwise_proximity.cpp.o"
  "CMakeFiles/pairwise_proximity.dir/pairwise_proximity.cpp.o.d"
  "pairwise_proximity"
  "pairwise_proximity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairwise_proximity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

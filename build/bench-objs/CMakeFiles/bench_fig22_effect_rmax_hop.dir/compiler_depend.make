# Empty compiler generated dependencies file for bench_fig22_effect_rmax_hop.
# This may be replaced when dependencies are built.

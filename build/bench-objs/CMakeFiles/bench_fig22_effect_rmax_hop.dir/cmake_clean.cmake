file(REMOVE_RECURSE
  "../bench/bench_fig22_effect_rmax_hop"
  "../bench/bench_fig22_effect_rmax_hop.pdb"
  "CMakeFiles/bench_fig22_effect_rmax_hop.dir/bench_fig22_effect_rmax_hop.cpp.o"
  "CMakeFiles/bench_fig22_effect_rmax_hop.dir/bench_fig22_effect_rmax_hop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_effect_rmax_hop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_table7_phase_breakdown.
# This may be replaced when dependencies are built.

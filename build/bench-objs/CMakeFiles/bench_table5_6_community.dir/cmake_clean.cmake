file(REMOVE_RECURSE
  "../bench/bench_table5_6_community"
  "../bench/bench_table5_6_community.pdb"
  "CMakeFiles/bench_table5_6_community.dir/bench_table5_6_community.cpp.o"
  "CMakeFiles/bench_table5_6_community.dir/bench_table5_6_community.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_6_community.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

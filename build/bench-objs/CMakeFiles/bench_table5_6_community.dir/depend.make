# Empty dependencies file for bench_table5_6_community.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig14_15_highdeg_sources.
# This may be replaced when dependencies are built.

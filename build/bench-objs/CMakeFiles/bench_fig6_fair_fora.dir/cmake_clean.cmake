file(REMOVE_RECURSE
  "../bench/bench_fig6_fair_fora"
  "../bench/bench_fig6_fair_fora.pdb"
  "CMakeFiles/bench_fig6_fair_fora.dir/bench_fig6_fair_fora.cpp.o"
  "CMakeFiles/bench_fig6_fair_fora.dir/bench_fig6_fair_fora.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fair_fora.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig6_fair_fora.
# This may be replaced when dependencies are built.

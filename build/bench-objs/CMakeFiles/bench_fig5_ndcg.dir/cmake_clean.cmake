file(REMOVE_RECURSE
  "../bench/bench_fig5_ndcg"
  "../bench/bench_fig5_ndcg.pdb"
  "CMakeFiles/bench_fig5_ndcg.dir/bench_fig5_ndcg.cpp.o"
  "CMakeFiles/bench_fig5_ndcg.dir/bench_fig5_ndcg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_ndcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

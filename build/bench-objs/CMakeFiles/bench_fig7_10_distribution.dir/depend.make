# Empty dependencies file for bench_fig7_10_distribution.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig23_dynamic_update"
  "../bench/bench_fig23_dynamic_update.pdb"
  "CMakeFiles/bench_fig23_dynamic_update.dir/bench_fig23_dynamic_update.cpp.o"
  "CMakeFiles/bench_fig23_dynamic_update.dir/bench_fig23_dynamic_update.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_dynamic_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig23_dynamic_update.
# This may be replaced when dependencies are built.

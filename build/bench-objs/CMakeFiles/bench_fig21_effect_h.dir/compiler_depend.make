# Empty compiler generated dependencies file for bench_fig21_effect_h.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig21_effect_h"
  "../bench/bench_fig21_effect_h.pdb"
  "CMakeFiles/bench_fig21_effect_h.dir/bench_fig21_effect_h.cpp.o"
  "CMakeFiles/bench_fig21_effect_h.dir/bench_fig21_effect_h.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_effect_h.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig4_absolute_error.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig18_20_topppr"
  "../bench/bench_fig18_20_topppr.pdb"
  "CMakeFiles/bench_fig18_20_topppr.dir/bench_fig18_20_topppr.cpp.o"
  "CMakeFiles/bench_fig18_20_topppr.dir/bench_fig18_20_topppr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_20_topppr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig18_20_topppr.
# This may be replaced when dependencies are built.

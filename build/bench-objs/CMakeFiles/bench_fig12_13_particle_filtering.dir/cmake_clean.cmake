file(REMOVE_RECURSE
  "../bench/bench_fig12_13_particle_filtering"
  "../bench/bench_fig12_13_particle_filtering.pdb"
  "CMakeFiles/bench_fig12_13_particle_filtering.dir/bench_fig12_13_particle_filtering.cpp.o"
  "CMakeFiles/bench_fig12_13_particle_filtering.dir/bench_fig12_13_particle_filtering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_13_particle_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

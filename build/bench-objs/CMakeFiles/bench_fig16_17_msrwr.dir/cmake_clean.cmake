file(REMOVE_RECURSE
  "../bench/bench_fig16_17_msrwr"
  "../bench/bench_fig16_17_msrwr.pdb"
  "CMakeFiles/bench_fig16_17_msrwr.dir/bench_fig16_17_msrwr.cpp.o"
  "CMakeFiles/bench_fig16_17_msrwr.dir/bench_fig16_17_msrwr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_17_msrwr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_table4_index_methods.
# This may be replaced when dependencies are built.

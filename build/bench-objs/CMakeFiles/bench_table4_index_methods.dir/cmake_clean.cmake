file(REMOVE_RECURSE
  "../bench/bench_table4_index_methods"
  "../bench/bench_table4_index_methods.pdb"
  "CMakeFiles/bench_table4_index_methods.dir/bench_table4_index_methods.cpp.o"
  "CMakeFiles/bench_table4_index_methods.dir/bench_table4_index_methods.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_index_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_generate "/root/repo/build/tools/resacc" "generate" "--type=sbm" "--nodes=500" "--blocks=5" "/root/repo/build/cli_test_graph.bin")
set_tests_properties(cli_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_stats "/root/repo/build/tools/resacc" "stats" "/root/repo/build/cli_test_graph.bin" "--histogram")
set_tests_properties(cli_stats PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_query "/root/repo/build/tools/resacc" "query" "/root/repo/build/cli_test_graph.bin" "--source=1" "--topk=5")
set_tests_properties(cli_query PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_query_fora "/root/repo/build/tools/resacc" "query" "/root/repo/build/cli_test_graph.bin" "--source=1" "--algo=fora")
set_tests_properties(cli_query_fora PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_msrwr "/root/repo/build/tools/resacc" "msrwr" "/root/repo/build/cli_test_graph.bin" "--sources=1,2" "--threads=2")
set_tests_properties(cli_msrwr PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_communities "/root/repo/build/tools/resacc" "communities" "/root/repo/build/cli_test_graph.bin" "--count=5")
set_tests_properties(cli_communities PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_convert "/root/repo/build/tools/resacc" "convert" "/root/repo/build/cli_test_graph.bin" "/root/repo/build/cli_test_graph.txt")
set_tests_properties(cli_convert PROPERTIES  DEPENDS "cli_generate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/resacc")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")

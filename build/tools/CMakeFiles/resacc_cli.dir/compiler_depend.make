# Empty compiler generated dependencies file for resacc_cli.
# This may be replaced when dependencies are built.

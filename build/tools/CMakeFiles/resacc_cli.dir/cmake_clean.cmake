file(REMOVE_RECURSE
  "CMakeFiles/resacc_cli.dir/resacc_cli.cc.o"
  "CMakeFiles/resacc_cli.dir/resacc_cli.cc.o.d"
  "resacc"
  "resacc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resacc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libresacc_util.a"
)

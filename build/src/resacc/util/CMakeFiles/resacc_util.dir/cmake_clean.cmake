file(REMOVE_RECURSE
  "CMakeFiles/resacc_util.dir/alias_table.cc.o"
  "CMakeFiles/resacc_util.dir/alias_table.cc.o.d"
  "CMakeFiles/resacc_util.dir/args.cc.o"
  "CMakeFiles/resacc_util.dir/args.cc.o.d"
  "CMakeFiles/resacc_util.dir/env.cc.o"
  "CMakeFiles/resacc_util.dir/env.cc.o.d"
  "CMakeFiles/resacc_util.dir/logging.cc.o"
  "CMakeFiles/resacc_util.dir/logging.cc.o.d"
  "CMakeFiles/resacc_util.dir/stats.cc.o"
  "CMakeFiles/resacc_util.dir/stats.cc.o.d"
  "CMakeFiles/resacc_util.dir/status.cc.o"
  "CMakeFiles/resacc_util.dir/status.cc.o.d"
  "CMakeFiles/resacc_util.dir/table.cc.o"
  "CMakeFiles/resacc_util.dir/table.cc.o.d"
  "CMakeFiles/resacc_util.dir/thread_pool.cc.o"
  "CMakeFiles/resacc_util.dir/thread_pool.cc.o.d"
  "libresacc_util.a"
  "libresacc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resacc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

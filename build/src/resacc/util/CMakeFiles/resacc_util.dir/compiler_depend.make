# Empty compiler generated dependencies file for resacc_util.
# This may be replaced when dependencies are built.

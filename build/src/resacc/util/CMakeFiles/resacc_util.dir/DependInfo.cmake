
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resacc/util/alias_table.cc" "src/resacc/util/CMakeFiles/resacc_util.dir/alias_table.cc.o" "gcc" "src/resacc/util/CMakeFiles/resacc_util.dir/alias_table.cc.o.d"
  "/root/repo/src/resacc/util/args.cc" "src/resacc/util/CMakeFiles/resacc_util.dir/args.cc.o" "gcc" "src/resacc/util/CMakeFiles/resacc_util.dir/args.cc.o.d"
  "/root/repo/src/resacc/util/env.cc" "src/resacc/util/CMakeFiles/resacc_util.dir/env.cc.o" "gcc" "src/resacc/util/CMakeFiles/resacc_util.dir/env.cc.o.d"
  "/root/repo/src/resacc/util/logging.cc" "src/resacc/util/CMakeFiles/resacc_util.dir/logging.cc.o" "gcc" "src/resacc/util/CMakeFiles/resacc_util.dir/logging.cc.o.d"
  "/root/repo/src/resacc/util/stats.cc" "src/resacc/util/CMakeFiles/resacc_util.dir/stats.cc.o" "gcc" "src/resacc/util/CMakeFiles/resacc_util.dir/stats.cc.o.d"
  "/root/repo/src/resacc/util/status.cc" "src/resacc/util/CMakeFiles/resacc_util.dir/status.cc.o" "gcc" "src/resacc/util/CMakeFiles/resacc_util.dir/status.cc.o.d"
  "/root/repo/src/resacc/util/table.cc" "src/resacc/util/CMakeFiles/resacc_util.dir/table.cc.o" "gcc" "src/resacc/util/CMakeFiles/resacc_util.dir/table.cc.o.d"
  "/root/repo/src/resacc/util/thread_pool.cc" "src/resacc/util/CMakeFiles/resacc_util.dir/thread_pool.cc.o" "gcc" "src/resacc/util/CMakeFiles/resacc_util.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for resacc_algo.
# This may be replaced when dependencies are built.

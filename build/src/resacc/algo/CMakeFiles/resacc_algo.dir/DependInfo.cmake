
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resacc/algo/bepi.cc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/bepi.cc.o" "gcc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/bepi.cc.o.d"
  "/root/repo/src/resacc/algo/bippr.cc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/bippr.cc.o" "gcc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/bippr.cc.o.d"
  "/root/repo/src/resacc/algo/fora.cc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/fora.cc.o" "gcc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/fora.cc.o.d"
  "/root/repo/src/resacc/algo/fora_plus.cc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/fora_plus.cc.o" "gcc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/fora_plus.cc.o.d"
  "/root/repo/src/resacc/algo/forward_search_solver.cc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/forward_search_solver.cc.o" "gcc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/forward_search_solver.cc.o.d"
  "/root/repo/src/resacc/algo/inverse.cc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/inverse.cc.o" "gcc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/inverse.cc.o.d"
  "/root/repo/src/resacc/algo/monte_carlo.cc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/monte_carlo.cc.o" "gcc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/monte_carlo.cc.o.d"
  "/root/repo/src/resacc/algo/particle_filter.cc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/particle_filter.cc.o" "gcc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/particle_filter.cc.o.d"
  "/root/repo/src/resacc/algo/power.cc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/power.cc.o" "gcc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/power.cc.o.d"
  "/root/repo/src/resacc/algo/slashburn.cc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/slashburn.cc.o" "gcc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/slashburn.cc.o.d"
  "/root/repo/src/resacc/algo/topppr.cc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/topppr.cc.o" "gcc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/topppr.cc.o.d"
  "/root/repo/src/resacc/algo/tpa.cc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/tpa.cc.o" "gcc" "src/resacc/algo/CMakeFiles/resacc_algo.dir/tpa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/resacc/util/CMakeFiles/resacc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/resacc/graph/CMakeFiles/resacc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/resacc/la/CMakeFiles/resacc_la.dir/DependInfo.cmake"
  "/root/repo/build/src/resacc/core/CMakeFiles/resacc_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

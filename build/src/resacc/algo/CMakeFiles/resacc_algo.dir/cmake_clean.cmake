file(REMOVE_RECURSE
  "CMakeFiles/resacc_algo.dir/bepi.cc.o"
  "CMakeFiles/resacc_algo.dir/bepi.cc.o.d"
  "CMakeFiles/resacc_algo.dir/bippr.cc.o"
  "CMakeFiles/resacc_algo.dir/bippr.cc.o.d"
  "CMakeFiles/resacc_algo.dir/fora.cc.o"
  "CMakeFiles/resacc_algo.dir/fora.cc.o.d"
  "CMakeFiles/resacc_algo.dir/fora_plus.cc.o"
  "CMakeFiles/resacc_algo.dir/fora_plus.cc.o.d"
  "CMakeFiles/resacc_algo.dir/forward_search_solver.cc.o"
  "CMakeFiles/resacc_algo.dir/forward_search_solver.cc.o.d"
  "CMakeFiles/resacc_algo.dir/inverse.cc.o"
  "CMakeFiles/resacc_algo.dir/inverse.cc.o.d"
  "CMakeFiles/resacc_algo.dir/monte_carlo.cc.o"
  "CMakeFiles/resacc_algo.dir/monte_carlo.cc.o.d"
  "CMakeFiles/resacc_algo.dir/particle_filter.cc.o"
  "CMakeFiles/resacc_algo.dir/particle_filter.cc.o.d"
  "CMakeFiles/resacc_algo.dir/power.cc.o"
  "CMakeFiles/resacc_algo.dir/power.cc.o.d"
  "CMakeFiles/resacc_algo.dir/slashburn.cc.o"
  "CMakeFiles/resacc_algo.dir/slashburn.cc.o.d"
  "CMakeFiles/resacc_algo.dir/topppr.cc.o"
  "CMakeFiles/resacc_algo.dir/topppr.cc.o.d"
  "CMakeFiles/resacc_algo.dir/tpa.cc.o"
  "CMakeFiles/resacc_algo.dir/tpa.cc.o.d"
  "libresacc_algo.a"
  "libresacc_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resacc_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libresacc_algo.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/resacc_nise.dir/nise.cc.o"
  "CMakeFiles/resacc_nise.dir/nise.cc.o.d"
  "libresacc_nise.a"
  "libresacc_nise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resacc_nise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for resacc_nise.
# This may be replaced when dependencies are built.

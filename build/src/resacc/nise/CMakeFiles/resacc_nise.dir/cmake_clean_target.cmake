file(REMOVE_RECURSE
  "libresacc_nise.a"
)

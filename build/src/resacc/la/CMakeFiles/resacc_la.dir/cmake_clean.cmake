file(REMOVE_RECURSE
  "CMakeFiles/resacc_la.dir/dense_matrix.cc.o"
  "CMakeFiles/resacc_la.dir/dense_matrix.cc.o.d"
  "CMakeFiles/resacc_la.dir/sparse_matrix.cc.o"
  "CMakeFiles/resacc_la.dir/sparse_matrix.cc.o.d"
  "libresacc_la.a"
  "libresacc_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resacc_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libresacc_la.a"
)

# Empty dependencies file for resacc_la.
# This may be replaced when dependencies are built.

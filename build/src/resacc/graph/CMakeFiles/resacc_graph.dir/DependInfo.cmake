
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resacc/graph/components.cc" "src/resacc/graph/CMakeFiles/resacc_graph.dir/components.cc.o" "gcc" "src/resacc/graph/CMakeFiles/resacc_graph.dir/components.cc.o.d"
  "/root/repo/src/resacc/graph/datasets.cc" "src/resacc/graph/CMakeFiles/resacc_graph.dir/datasets.cc.o" "gcc" "src/resacc/graph/CMakeFiles/resacc_graph.dir/datasets.cc.o.d"
  "/root/repo/src/resacc/graph/generators.cc" "src/resacc/graph/CMakeFiles/resacc_graph.dir/generators.cc.o" "gcc" "src/resacc/graph/CMakeFiles/resacc_graph.dir/generators.cc.o.d"
  "/root/repo/src/resacc/graph/graph.cc" "src/resacc/graph/CMakeFiles/resacc_graph.dir/graph.cc.o" "gcc" "src/resacc/graph/CMakeFiles/resacc_graph.dir/graph.cc.o.d"
  "/root/repo/src/resacc/graph/graph_builder.cc" "src/resacc/graph/CMakeFiles/resacc_graph.dir/graph_builder.cc.o" "gcc" "src/resacc/graph/CMakeFiles/resacc_graph.dir/graph_builder.cc.o.d"
  "/root/repo/src/resacc/graph/graph_io.cc" "src/resacc/graph/CMakeFiles/resacc_graph.dir/graph_io.cc.o" "gcc" "src/resacc/graph/CMakeFiles/resacc_graph.dir/graph_io.cc.o.d"
  "/root/repo/src/resacc/graph/graph_stats.cc" "src/resacc/graph/CMakeFiles/resacc_graph.dir/graph_stats.cc.o" "gcc" "src/resacc/graph/CMakeFiles/resacc_graph.dir/graph_stats.cc.o.d"
  "/root/repo/src/resacc/graph/hop_layers.cc" "src/resacc/graph/CMakeFiles/resacc_graph.dir/hop_layers.cc.o" "gcc" "src/resacc/graph/CMakeFiles/resacc_graph.dir/hop_layers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/resacc/util/CMakeFiles/resacc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

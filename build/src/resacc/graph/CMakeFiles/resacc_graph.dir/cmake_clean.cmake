file(REMOVE_RECURSE
  "CMakeFiles/resacc_graph.dir/components.cc.o"
  "CMakeFiles/resacc_graph.dir/components.cc.o.d"
  "CMakeFiles/resacc_graph.dir/datasets.cc.o"
  "CMakeFiles/resacc_graph.dir/datasets.cc.o.d"
  "CMakeFiles/resacc_graph.dir/generators.cc.o"
  "CMakeFiles/resacc_graph.dir/generators.cc.o.d"
  "CMakeFiles/resacc_graph.dir/graph.cc.o"
  "CMakeFiles/resacc_graph.dir/graph.cc.o.d"
  "CMakeFiles/resacc_graph.dir/graph_builder.cc.o"
  "CMakeFiles/resacc_graph.dir/graph_builder.cc.o.d"
  "CMakeFiles/resacc_graph.dir/graph_io.cc.o"
  "CMakeFiles/resacc_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/resacc_graph.dir/graph_stats.cc.o"
  "CMakeFiles/resacc_graph.dir/graph_stats.cc.o.d"
  "CMakeFiles/resacc_graph.dir/hop_layers.cc.o"
  "CMakeFiles/resacc_graph.dir/hop_layers.cc.o.d"
  "libresacc_graph.a"
  "libresacc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resacc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libresacc_graph.a"
)

# Empty dependencies file for resacc_graph.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resacc/core/backward_push.cc" "src/resacc/core/CMakeFiles/resacc_core.dir/backward_push.cc.o" "gcc" "src/resacc/core/CMakeFiles/resacc_core.dir/backward_push.cc.o.d"
  "/root/repo/src/resacc/core/forward_push.cc" "src/resacc/core/CMakeFiles/resacc_core.dir/forward_push.cc.o" "gcc" "src/resacc/core/CMakeFiles/resacc_core.dir/forward_push.cc.o.d"
  "/root/repo/src/resacc/core/h_hop_fwd.cc" "src/resacc/core/CMakeFiles/resacc_core.dir/h_hop_fwd.cc.o" "gcc" "src/resacc/core/CMakeFiles/resacc_core.dir/h_hop_fwd.cc.o.d"
  "/root/repo/src/resacc/core/omfwd.cc" "src/resacc/core/CMakeFiles/resacc_core.dir/omfwd.cc.o" "gcc" "src/resacc/core/CMakeFiles/resacc_core.dir/omfwd.cc.o.d"
  "/root/repo/src/resacc/core/remedy.cc" "src/resacc/core/CMakeFiles/resacc_core.dir/remedy.cc.o" "gcc" "src/resacc/core/CMakeFiles/resacc_core.dir/remedy.cc.o.d"
  "/root/repo/src/resacc/core/resacc_solver.cc" "src/resacc/core/CMakeFiles/resacc_core.dir/resacc_solver.cc.o" "gcc" "src/resacc/core/CMakeFiles/resacc_core.dir/resacc_solver.cc.o.d"
  "/root/repo/src/resacc/core/seed_set_query.cc" "src/resacc/core/CMakeFiles/resacc_core.dir/seed_set_query.cc.o" "gcc" "src/resacc/core/CMakeFiles/resacc_core.dir/seed_set_query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/resacc/util/CMakeFiles/resacc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/resacc/graph/CMakeFiles/resacc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

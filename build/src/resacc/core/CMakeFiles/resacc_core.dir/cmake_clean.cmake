file(REMOVE_RECURSE
  "CMakeFiles/resacc_core.dir/backward_push.cc.o"
  "CMakeFiles/resacc_core.dir/backward_push.cc.o.d"
  "CMakeFiles/resacc_core.dir/forward_push.cc.o"
  "CMakeFiles/resacc_core.dir/forward_push.cc.o.d"
  "CMakeFiles/resacc_core.dir/h_hop_fwd.cc.o"
  "CMakeFiles/resacc_core.dir/h_hop_fwd.cc.o.d"
  "CMakeFiles/resacc_core.dir/omfwd.cc.o"
  "CMakeFiles/resacc_core.dir/omfwd.cc.o.d"
  "CMakeFiles/resacc_core.dir/remedy.cc.o"
  "CMakeFiles/resacc_core.dir/remedy.cc.o.d"
  "CMakeFiles/resacc_core.dir/resacc_solver.cc.o"
  "CMakeFiles/resacc_core.dir/resacc_solver.cc.o.d"
  "CMakeFiles/resacc_core.dir/seed_set_query.cc.o"
  "CMakeFiles/resacc_core.dir/seed_set_query.cc.o.d"
  "libresacc_core.a"
  "libresacc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resacc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

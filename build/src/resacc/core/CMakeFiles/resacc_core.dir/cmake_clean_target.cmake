file(REMOVE_RECURSE
  "libresacc_core.a"
)

# Empty dependencies file for resacc_core.
# This may be replaced when dependencies are built.

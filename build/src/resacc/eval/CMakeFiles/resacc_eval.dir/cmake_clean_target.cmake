file(REMOVE_RECURSE
  "libresacc_eval.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/resacc_eval.dir/community_metrics.cc.o"
  "CMakeFiles/resacc_eval.dir/community_metrics.cc.o.d"
  "CMakeFiles/resacc_eval.dir/ground_truth.cc.o"
  "CMakeFiles/resacc_eval.dir/ground_truth.cc.o.d"
  "CMakeFiles/resacc_eval.dir/metrics.cc.o"
  "CMakeFiles/resacc_eval.dir/metrics.cc.o.d"
  "CMakeFiles/resacc_eval.dir/sources.cc.o"
  "CMakeFiles/resacc_eval.dir/sources.cc.o.d"
  "libresacc_eval.a"
  "libresacc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resacc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

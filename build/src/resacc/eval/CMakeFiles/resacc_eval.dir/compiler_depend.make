# Empty compiler generated dependencies file for resacc_eval.
# This may be replaced when dependencies are built.

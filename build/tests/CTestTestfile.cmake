# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/generators_test[1]_include.cmake")
include("/root/repo/build/tests/la_test[1]_include.cmake")
include("/root/repo/build/tests/push_test[1]_include.cmake")
include("/root/repo/build/tests/push_order_test[1]_include.cmake")
include("/root/repo/build/tests/walk_test[1]_include.cmake")
include("/root/repo/build/tests/hhop_test[1]_include.cmake")
include("/root/repo/build/tests/resacc_test[1]_include.cmake")
include("/root/repo/build/tests/algos_test[1]_include.cmake")
include("/root/repo/build/tests/bepi_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/nise_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/components_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/serialization_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_invariants_test[1]_include.cmake")
include("/root/repo/build/tests/seed_set_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")

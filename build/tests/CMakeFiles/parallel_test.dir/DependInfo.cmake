
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel_test.cc" "tests/CMakeFiles/parallel_test.dir/parallel_test.cc.o" "gcc" "tests/CMakeFiles/parallel_test.dir/parallel_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/resacc/eval/CMakeFiles/resacc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/resacc/algo/CMakeFiles/resacc_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/resacc/la/CMakeFiles/resacc_la.dir/DependInfo.cmake"
  "/root/repo/build/src/resacc/nise/CMakeFiles/resacc_nise.dir/DependInfo.cmake"
  "/root/repo/build/src/resacc/core/CMakeFiles/resacc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/resacc/graph/CMakeFiles/resacc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/resacc/util/CMakeFiles/resacc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

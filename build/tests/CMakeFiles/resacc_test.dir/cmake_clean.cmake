file(REMOVE_RECURSE
  "CMakeFiles/resacc_test.dir/resacc_test.cc.o"
  "CMakeFiles/resacc_test.dir/resacc_test.cc.o.d"
  "resacc_test"
  "resacc_test.pdb"
  "resacc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resacc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

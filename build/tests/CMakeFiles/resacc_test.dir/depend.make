# Empty dependencies file for resacc_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for push_order_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/push_order_test.dir/push_order_test.cc.o"
  "CMakeFiles/push_order_test.dir/push_order_test.cc.o.d"
  "push_order_test"
  "push_order_test.pdb"
  "push_order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/push_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

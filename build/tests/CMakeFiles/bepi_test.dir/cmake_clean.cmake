file(REMOVE_RECURSE
  "CMakeFiles/bepi_test.dir/bepi_test.cc.o"
  "CMakeFiles/bepi_test.dir/bepi_test.cc.o.d"
  "bepi_test"
  "bepi_test.pdb"
  "bepi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bepi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

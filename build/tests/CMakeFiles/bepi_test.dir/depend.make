# Empty dependencies file for bepi_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/nise_test.dir/nise_test.cc.o"
  "CMakeFiles/nise_test.dir/nise_test.cc.o.d"
  "nise_test"
  "nise_test.pdb"
  "nise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

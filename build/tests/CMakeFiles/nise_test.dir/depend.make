# Empty dependencies file for nise_test.
# This may be replaced when dependencies are built.

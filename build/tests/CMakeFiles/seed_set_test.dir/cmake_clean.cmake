file(REMOVE_RECURSE
  "CMakeFiles/seed_set_test.dir/seed_set_test.cc.o"
  "CMakeFiles/seed_set_test.dir/seed_set_test.cc.o.d"
  "seed_set_test"
  "seed_set_test.pdb"
  "seed_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seed_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

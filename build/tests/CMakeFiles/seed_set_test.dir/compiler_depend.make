# Empty compiler generated dependencies file for seed_set_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for hhop_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hhop_test.dir/hhop_test.cc.o"
  "CMakeFiles/hhop_test.dir/hhop_test.cc.o.d"
  "hhop_test"
  "hhop_test.pdb"
  "hhop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hhop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Reproduces Appendix D (Figures 16-17): Multiple-Sources RWR. Query time
// and accuracy as |S| grows, for index-free (MC, FORA, TopPPR, ResAcc) and
// index-oriented (BePI, TPA, FORA+) methods. Each method answers MSRWR by
// running one SSRWR per source (the paper's natural extension).
// Paper shape: time grows linearly in |S| for everyone; ResAcc fastest
// among index-free; accuracy roughly flat in |S|.
//
// |S| defaults to {10, 20, 30, 40} (scaled-down from the paper's
// {25, 50, 75, 100}); set RESACC_MSRWR_MAX=100 to match the paper.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "resacc/algo/bepi.h"
#include "resacc/algo/fora.h"
#include "resacc/algo/fora_plus.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/algo/topppr.h"
#include "resacc/algo/tpa.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/eval/metrics.h"

int main() {
  using namespace resacc;
  using namespace resacc::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("Figures 16-17: MSRWR query", env);

  const std::size_t max_sources =
      static_cast<std::size_t>(GetEnvInt("RESACC_MSRWR_MAX", 40));
  const std::vector<std::size_t> sizes = {
      max_sources / 4, max_sources / 2, 3 * max_sources / 4, max_sources};

  const auto datasets = LoadDatasets({"dblp-sim", "twitter-sim"}, env);
  for (const auto& ds : datasets) {
    const RwrConfig config = BenchConfig(ds.graph, env.seed);
    const std::vector<NodeId> all_sources =
        PickUniformSources(ds.graph, max_sources, env.seed ^ 0x3157);
    GroundTruthCache truth(ds.graph, config);

    MonteCarlo mc(ds.graph, config);
    Fora fora(ds.graph, config, {});
    TopPpr topppr(ds.graph, config, {});
    ResAccOptions resacc_options;
    resacc_options.num_hops =
        static_cast<std::uint32_t>(ds.spec.sim_hops);
    ResAccSolver resacc(ds.graph, config, resacc_options);
    Tpa tpa(ds.graph, config, {});
    const bool tpa_ok = tpa.BuildIndex().ok();
    ForaPlusOptions fp_options;
    fp_options.memory_budget_bytes = env.memory_budget_bytes;
    ForaPlus fora_plus(ds.graph, config, fp_options);
    const bool fp_ok = fora_plus.BuildIndex().ok();
    BePiOptions bepi_options;
    bepi_options.memory_budget_bytes = env.memory_budget_bytes;
    BePi bepi(ds.graph, config, bepi_options);
    const bool bepi_ok = bepi.BuildIndex().ok();

    struct Entry {
      const char* label;
      SsrwrAlgorithm* algo;
      bool available;
    };
    const std::vector<Entry> entries = {
        {"MC", &mc, true},
        {"FORA", &fora, true},
        {"TopPPR", &topppr, true},
        {"ResAcc", &resacc, true},
        {"TPA", &tpa, tpa_ok},
        {"FORA+", &fora_plus, fp_ok},
        {"BePI", &bepi, bepi_ok},
    };

    std::printf("%s:\n", DatasetLabel(ds).c_str());
    TextTable table({"|S|", "algorithm", "total time", "avg abs error"});
    for (std::size_t size : sizes) {
      const std::vector<NodeId> sources(all_sources.begin(),
                                        all_sources.begin() + size);
      for (const Entry& entry : entries) {
        if (!entry.available) {
          table.AddRow({std::to_string(size), entry.label, "o.o.m", "o.o.m"});
          continue;
        }
        Timer t;
        const auto results = entry.algo->QueryMany(sources);
        const double seconds = t.ElapsedSeconds();
        double error = 0.0;
        for (std::size_t i = 0; i < sources.size(); ++i) {
          error += MeanAbsError(results[i], truth.Get(sources[i]));
        }
        table.AddRow({std::to_string(size), entry.label,
                      FmtSeconds(seconds),
                      Fmt(error / static_cast<double>(sources.size()))});
      }
    }
    table.Print(stdout);
    std::printf("\n");
  }
  return 0;
}

// Reproduces Appendix I (Figure 23): per-node-deletion index maintenance
// cost. The index-oriented methods rebuild from scratch (what the paper
// measures); ResAcc's cost is zero. Averaged over a few random deletions.

#include <cstdio>
#include <utility>

#include "bench/bench_common.h"
#include "resacc/algo/bepi.h"
#include "resacc/algo/fora_plus.h"
#include "resacc/algo/tpa.h"
#include "resacc/graph/graph_builder.h"
#include "resacc/util/rng.h"

namespace {

resacc::Graph RemoveNode(const resacc::Graph& g, resacc::NodeId removed) {
  resacc::GraphBuilder builder(g.num_nodes());
  for (resacc::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u == removed) continue;
    for (resacc::NodeId v : g.OutNeighbors(u)) {
      if (v != removed) builder.AddEdge(u, v);
    }
  }
  return std::move(builder).Build();
}

}  // namespace

int main() {
  using namespace resacc;
  using namespace resacc::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("Figure 23: index update cost per node deletion", env);

  const std::size_t deletions =
      static_cast<std::size_t>(GetEnvInt("RESACC_DELETIONS", 3));
  const auto datasets =
      LoadDatasets({"dblp-sim", "webstan-sim", "pokec-sim", "lj-sim"}, env);

  TextTable table({"Dataset", "BePI rebuild", "TPA rebuild", "FORA+ rebuild",
                   "ResAcc"});
  for (const auto& ds : datasets) {
    Rng rng(env.seed ^ 0xde1);
    double bepi_seconds = 0.0;
    double tpa_seconds = 0.0;
    double fora_plus_seconds = 0.0;
    bool bepi_ok = true;
    bool tpa_ok = true;
    bool fora_plus_ok = true;

    for (std::size_t i = 0; i < deletions; ++i) {
      const NodeId removed = rng.NextBounded32(ds.graph.num_nodes());
      const Graph updated = RemoveNode(ds.graph, removed);
      const RwrConfig config = BenchConfig(updated, env.seed);

      // BePI's rebuild costs tens of seconds (dense Schur); measuring it
      // once per dataset is representative — the rebuild does not depend
      // on which node was deleted.
      if (i == 0) {
        BePiOptions options;
        options.memory_budget_bytes = env.memory_budget_bytes;
        BePi bepi(updated, config, options);
        Timer t;
        bepi_ok = bepi.BuildIndex().ok();
        bepi_seconds = t.ElapsedSeconds() * static_cast<double>(deletions);
      }
      {
        TpaOptions options;
        Tpa tpa(updated, config, options);
        Timer t;
        tpa_ok = tpa_ok && tpa.BuildIndex().ok();
        tpa_seconds += t.ElapsedSeconds();
      }
      {
        ForaPlusOptions options;
        options.memory_budget_bytes = env.memory_budget_bytes;
        ForaPlus fora_plus(updated, config, options);
        Timer t;
        fora_plus_ok = fora_plus_ok && fora_plus.BuildIndex().ok();
        fora_plus_seconds += t.ElapsedSeconds();
      }
    }
    const double inv = 1.0 / static_cast<double>(deletions);
    table.AddRow({DatasetLabel(ds),
                  bepi_ok ? FmtSeconds(bepi_seconds * inv) : "o.o.m",
                  tpa_ok ? FmtSeconds(tpa_seconds * inv) : "o.o.m",
                  fora_plus_ok ? FmtSeconds(fora_plus_seconds * inv)
                               : "o.o.m",
                  "0 (index-free)"});
  }
  table.Print(stdout);
  return 0;
}

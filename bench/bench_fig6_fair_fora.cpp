// Reproduces Figure 6: fair comparison with FORA.
//  (a) equal time: FORA terminated at ResAcc's query time; compare the
//      absolute error of the k-th largest value (paper: ResAcc up to 6
//      orders of magnitude more accurate).
//  (b) equal error (Appendix F): shrink ResAcc's remedy walk count via
//      n_scale until its mean absolute error matches FORA's within 10%,
//      then compare query times (paper: ResAcc up to ~4x faster).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "resacc/algo/fora.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/eval/metrics.h"

int main() {
  using namespace resacc;
  using namespace resacc::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("Figure 6: fair comparison with FORA", env);

  // --- (a) equal time, twitter-sim ---
  {
    const auto datasets = LoadDatasets({"twitter-sim"}, env);
    const auto& ds = datasets[0];
    const RwrConfig config = BenchConfig(ds.graph, env.seed);
    GroundTruthCache truth(ds.graph, config);

    ResAccOptions resacc_options;
    resacc_options.num_hops =
        static_cast<std::uint32_t>(ds.spec.sim_hops);
    ResAccSolver resacc(ds.graph, config, resacc_options);

    const std::vector<std::size_t> ks = {1, 10, 100, 1000, 10000, 100000};
    std::vector<double> resacc_err(ks.size(), 0.0);
    std::vector<double> fora_err(ks.size(), 0.0);
    double resacc_seconds = 0.0;
    double fora_seconds = 0.0;

    for (NodeId s : ds.sources) {
      Timer t;
      const std::vector<Score> est_resacc = resacc.Query(s);
      const double budget = t.ElapsedSeconds();
      resacc_seconds += budget;

      ForaOptions fora_options;
      fora_options.time_budget_seconds = budget;
      Fora fora(ds.graph, config, fora_options);
      t.Restart();
      const std::vector<Score> est_fora = fora.Query(s);
      fora_seconds += t.ElapsedSeconds();

      const std::vector<Score>& exact = truth.Get(s);
      for (std::size_t i = 0; i < ks.size(); ++i) {
        resacc_err[i] += AbsErrorAtK(est_resacc, exact, ks[i]);
        fora_err[i] += AbsErrorAtK(est_fora, exact, ks[i]);
      }
    }
    const double inv = 1.0 / static_cast<double>(ds.sources.size());
    std::printf("(a) equal time on %s (ResAcc %s vs budgeted FORA %s avg):\n",
                DatasetLabel(ds).c_str(),
                FmtSeconds(resacc_seconds * inv).c_str(),
                FmtSeconds(fora_seconds * inv).c_str());
    TextTable table({"k", "FORA abs err", "ResAcc abs err", "ratio"});
    for (std::size_t i = 0; i < ks.size(); ++i) {
      const double ratio =
          resacc_err[i] > 0 ? fora_err[i] / resacc_err[i] : 0.0;
      table.AddRow({std::to_string(ks[i]), Fmt(fora_err[i] * inv),
                    Fmt(resacc_err[i] * inv), Fmt(ratio, 3) + "x"});
    }
    table.Print(stdout);
    std::printf("\n");
  }

  // --- (b) equal error, dblp/pokec/twitter sims ---
  {
    const auto datasets =
        LoadDatasets({"dblp-sim", "pokec-sim", "twitter-sim"}, env);
    std::printf("(b) equal error: ResAcc n_scale tuned until its mean "
                "absolute error is within 10%% of FORA's\n");
    TextTable table({"Dataset", "FORA err", "ResAcc err", "n_scale",
                     "FORA time", "ResAcc time", "speedup"});
    for (const auto& ds : datasets) {
      const RwrConfig config = BenchConfig(ds.graph, env.seed);
      GroundTruthCache truth(ds.graph, config);
      // Warm the ground-truth cache so it never pollutes a timer below.
      for (NodeId s : ds.sources) truth.Get(s);
      Fora fora(ds.graph, config, {});

      double fora_err = 0.0;
      double fora_seconds = 0.0;
      for (NodeId s : ds.sources) {
        Timer t;
        const std::vector<Score> est = fora.Query(s);
        fora_seconds += t.ElapsedSeconds();
        fora_err += MeanAbsError(est, truth.Get(s));
      }
      fora_seconds /= static_cast<double>(ds.sources.size());
      fora_err /= static_cast<double>(ds.sources.size());

      // Sweep n_scale down as in Appendix F until errors match within 10%.
      double chosen_scale = 1.0;
      double resacc_err = 0.0;
      double resacc_seconds = 0.0;
      for (double n_scale : {1.0, 0.8, 0.6, 0.4, 0.2, 0.05, 0.01}) {
        ResAccOptions options;
        options.num_hops =
            static_cast<std::uint32_t>(ds.spec.sim_hops);
        options.walk_scale = n_scale;
        ResAccSolver resacc(ds.graph, config, options);
        double err = 0.0;
        double seconds = 0.0;
        for (NodeId s : ds.sources) {
          Timer rt;
          const std::vector<Score> est = resacc.Query(s);
          seconds += rt.ElapsedSeconds();
          err += MeanAbsError(est, truth.Get(s));
        }
        resacc_seconds = seconds / static_cast<double>(ds.sources.size());
        err /= static_cast<double>(ds.sources.size());
        chosen_scale = n_scale;
        resacc_err = err;
        // Stop once ResAcc is no longer clearly more accurate than FORA.
        if (err >= 0.9 * fora_err) break;
      }
      table.AddRow({DatasetLabel(ds), Fmt(fora_err), Fmt(resacc_err),
                    Fmt(chosen_scale, 3), FmtSeconds(fora_seconds),
                    FmtSeconds(resacc_seconds),
                    Fmt(fora_seconds / resacc_seconds, 3) + "x"});
    }
    table.Print(stdout);
  }
  return 0;
}

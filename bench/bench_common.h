#ifndef RESACC_BENCH_BENCH_COMMON_H_
#define RESACC_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "resacc/core/rwr_config.h"
#include "resacc/core/ssrwr_algorithm.h"
#include "resacc/eval/sources.h"
#include "resacc/graph/datasets.h"
#include "resacc/graph/graph.h"
#include "resacc/util/env.h"
#include "resacc/util/table.h"
#include "resacc/util/timer.h"

namespace resacc::bench {

// Environment knobs shared by every bench binary:
//   RESACC_SCALE          dataset size multiplier        (default 1.0)
//   RESACC_SOURCES        query sources per experiment   (default 8;
//                         the paper uses 50 — raise it for tighter stats)
//   RESACC_SEED           master seed                    (default 0x5eed)
//   RESACC_MEM_BUDGET_MB  index memory budget, reproduces the paper's
//                         o.o.m. rows                    (default 256)
struct BenchEnv {
  double scale;
  std::size_t sources;
  std::uint64_t seed;
  std::size_t memory_budget_bytes;

  static BenchEnv FromEnv() {
    BenchEnv env;
    env.scale = GetEnvDouble("RESACC_SCALE", 1.0);
    env.sources = static_cast<std::size_t>(GetEnvInt("RESACC_SOURCES", 8));
    env.seed = static_cast<std::uint64_t>(GetEnvInt("RESACC_SEED", 0x5eed));
    env.memory_budget_bytes =
        static_cast<std::size_t>(GetEnvInt("RESACC_MEM_BUDGET_MB", 256)) *
        1024 * 1024;
    return env;
  }
};

struct BenchDataset {
  DatasetSpec spec;
  Graph graph;
  std::vector<NodeId> sources;
};

// Materializes the named stand-ins with uniform-random query sources.
inline std::vector<BenchDataset> LoadDatasets(
    const std::vector<std::string>& names, const BenchEnv& env) {
  std::vector<BenchDataset> out;
  for (const std::string& name : names) {
    BenchDataset ds;
    ds.spec = FindDataset(name).value();
    std::fprintf(stderr, "[bench] generating %s (scale %.3g)...\n",
                 name.c_str(), env.scale);
    ds.graph = MakeDataset(ds.spec, env.scale, env.seed);
    ds.sources = PickUniformSources(ds.graph, env.sources, env.seed ^ 0xc0de);
    out.push_back(std::move(ds));
  }
  return out;
}

// Paper-default query configuration (Section VII-A) on this graph:
// alpha = 0.2, eps = 0.5, delta = p_f = 1/n. DanglingPolicy::kAbsorb is
// used throughout the benches so that forward, backward and indexed
// methods all share exactly the same walk semantics (see DESIGN.md).
inline RwrConfig BenchConfig(const Graph& graph, std::uint64_t seed) {
  RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = seed;
  return config;
}

// Average wall-clock seconds of algo->Query over the sources.
inline double AverageQuerySeconds(SsrwrAlgorithm& algo,
                                  const std::vector<NodeId>& sources) {
  Timer timer;
  for (NodeId s : sources) algo.Query(s);
  return timer.ElapsedSeconds() / static_cast<double>(sources.size());
}

// Header line describing a dataset row (ours vs the paper's original).
inline std::string DatasetLabel(const BenchDataset& ds) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s(n=%u,m=%llu)", ds.spec.name.c_str(),
                ds.graph.num_nodes(),
                static_cast<unsigned long long>(ds.graph.num_edges()));
  return buf;
}

inline void PrintPreamble(const char* title, const BenchEnv& env) {
  std::printf("== %s ==\n", title);
  std::printf(
      "scale=%.3g sources=%zu seed=%llu mem_budget=%zuMB "
      "(RESACC_SCALE / RESACC_SOURCES / RESACC_SEED / RESACC_MEM_BUDGET_MB)\n\n",
      env.scale, env.sources, static_cast<unsigned long long>(env.seed),
      env.memory_budget_bytes / (1024 * 1024));
}

}  // namespace resacc::bench

#endif  // RESACC_BENCH_BENCH_COMMON_H_

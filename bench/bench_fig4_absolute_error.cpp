// Reproduces Figure 4 (and Appendix A / Figure 11 for Web-Stan): average
// absolute error of the k-th largest RWR value, k in {1, 10, ..., 1e5},
// for each accuracy-guaranteeing algorithm plus TPA/BePI.
// Paper shape: ResAcc's error among the smallest everywhere, orders of
// magnitude below FORA/MC on the large graphs.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "resacc/algo/bepi.h"
#include "resacc/algo/fora.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/algo/topppr.h"
#include "resacc/algo/tpa.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/eval/metrics.h"

int main() {
  using namespace resacc;
  using namespace resacc::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("Figure 4 / Figure 11: absolute error of k-th largest value",
                env);

  const auto datasets = LoadDatasets(
      {"dblp-sim", "webstan-sim", "pokec-sim", "twitter-sim"}, env);
  const std::vector<std::size_t> ks = {1, 10, 100, 1000, 10000, 100000};

  for (const auto& ds : datasets) {
    const RwrConfig config = BenchConfig(ds.graph, env.seed);
    GroundTruthCache truth(ds.graph, config);

    MonteCarlo mc(ds.graph, config);
    Fora fora(ds.graph, config, {});
    TopPpr topppr(ds.graph, config, {});
    TpaOptions tpa_options;
    Tpa tpa(ds.graph, config, tpa_options);
    const bool tpa_ok = tpa.BuildIndex().ok();
    BePiOptions bepi_options;
    bepi_options.memory_budget_bytes = env.memory_budget_bytes;
    BePi bepi(ds.graph, config, bepi_options);
    const bool bepi_ok = bepi.BuildIndex().ok();

    std::printf("%s:\n", DatasetLabel(ds).c_str());
    TextTable table({"k", "MC", "FORA", "TopPPR", "TPA", "BePI", "ResAcc"});

    ResAccOptions resacc_options;
    resacc_options.num_hops =
        static_cast<std::uint32_t>(ds.spec.sim_hops);
    ResAccSolver resacc(ds.graph, config, resacc_options);

    // Accumulate per-k errors averaged over sources.
    std::vector<std::vector<double>> errors(6,
                                            std::vector<double>(ks.size()));
    for (NodeId s : ds.sources) {
      const std::vector<Score>& exact = truth.Get(s);
      const std::vector<Score> est_mc = mc.Query(s);
      const std::vector<Score> est_fora = fora.Query(s);
      const std::vector<Score> est_topppr = topppr.Query(s);
      const std::vector<Score> est_tpa =
          tpa_ok ? tpa.Query(s) : std::vector<Score>();
      const std::vector<Score> est_bepi =
          bepi_ok ? bepi.Query(s) : std::vector<Score>();
      const std::vector<Score> est_resacc = resacc.Query(s);
      for (std::size_t i = 0; i < ks.size(); ++i) {
        errors[0][i] += AbsErrorAtK(est_mc, exact, ks[i]);
        errors[1][i] += AbsErrorAtK(est_fora, exact, ks[i]);
        errors[2][i] += AbsErrorAtK(est_topppr, exact, ks[i]);
        if (tpa_ok) errors[3][i] += AbsErrorAtK(est_tpa, exact, ks[i]);
        if (bepi_ok) errors[4][i] += AbsErrorAtK(est_bepi, exact, ks[i]);
        errors[5][i] += AbsErrorAtK(est_resacc, exact, ks[i]);
      }
    }
    const double inv = 1.0 / static_cast<double>(ds.sources.size());
    for (std::size_t i = 0; i < ks.size(); ++i) {
      table.AddRow({std::to_string(ks[i]), Fmt(errors[0][i] * inv),
                    Fmt(errors[1][i] * inv), Fmt(errors[2][i] * inv),
                    tpa_ok ? Fmt(errors[3][i] * inv) : "o.o.m",
                    bepi_ok ? Fmt(errors[4][i] * inv) : "o.o.m",
                    Fmt(errors[5][i] * inv)});
    }
    table.Print(stdout);
    std::printf("\n");
  }
  return 0;
}

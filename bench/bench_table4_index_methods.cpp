// Reproduces Table IV: index-oriented methods (BePI, TPA, FORA+) against
// index-free ResAcc — average query time, preprocessing time, and index
// size. ResAcc's preprocessing/index columns are zero by construction.
// "o.o.m" appears when an index exceeds the RESACC_MEM_BUDGET_MB budget,
// reproducing the paper's out-of-memory rows at bench scale.

#include <cstdio>

#include "bench/bench_common.h"
#include "resacc/algo/bepi.h"
#include "resacc/algo/fora_plus.h"
#include "resacc/algo/tpa.h"
#include "resacc/core/resacc_solver.h"

namespace {

struct IndexedRow {
  std::string query = "-";
  std::string preprocess = "-";
  std::string index_size = "-";
};

IndexedRow Measure(resacc::IndexedSsrwrAlgorithm& algo,
                   const std::vector<resacc::NodeId>& sources) {
  using namespace resacc;
  IndexedRow row;
  Timer timer;
  const Status status = algo.BuildIndex();
  if (!status.ok()) {
    const char* reason =
        status.code() == StatusCode::kResourceExhausted ? "o.o.m" : "n/a";
    row.query = reason;
    row.preprocess = reason;
    row.index_size = reason;
    return row;
  }
  row.preprocess = FmtSeconds(timer.ElapsedSeconds());
  row.index_size = FmtBytes(static_cast<double>(algo.IndexBytes()));
  row.query = FmtSeconds(resacc::bench::AverageQuerySeconds(algo, sources));
  return row;
}

}  // namespace

int main() {
  using namespace resacc;
  using namespace resacc::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("Table IV: index-oriented methods vs ResAcc", env);

  const auto datasets = LoadDatasets(
      {"dblp-sim", "webstan-sim", "pokec-sim", "lj-sim", "orkut-sim",
       "twitter-sim", "friendster-sim"},
      env);

  TextTable table({"Dataset", "BePI q", "TPA q", "FORA+ q", "ResAcc q",
                   "BePI prep", "TPA prep", "FORA+ prep", "BePI idx",
                   "TPA idx", "FORA+ idx", "graph size"});
  for (const auto& ds : datasets) {
    const RwrConfig config = BenchConfig(ds.graph, env.seed);

    BePiOptions bepi_options;
    bepi_options.memory_budget_bytes = env.memory_budget_bytes;
    BePi bepi(ds.graph, config, bepi_options);

    TpaOptions tpa_options;
    tpa_options.memory_budget_bytes = env.memory_budget_bytes;
    Tpa tpa(ds.graph, config, tpa_options);

    ForaPlusOptions fora_plus_options;
    fora_plus_options.memory_budget_bytes = env.memory_budget_bytes;
    ForaPlus fora_plus(ds.graph, config, fora_plus_options);

    ResAccOptions resacc_options;
    resacc_options.num_hops =
        static_cast<std::uint32_t>(ds.spec.sim_hops);
    ResAccSolver resacc(ds.graph, config, resacc_options);

    const IndexedRow bepi_row = Measure(bepi, ds.sources);
    const IndexedRow tpa_row = Measure(tpa, ds.sources);
    const IndexedRow fora_plus_row = Measure(fora_plus, ds.sources);
    const double resacc_query = AverageQuerySeconds(resacc, ds.sources);

    table.AddRow({DatasetLabel(ds), bepi_row.query, tpa_row.query,
                  fora_plus_row.query, FmtSeconds(resacc_query),
                  bepi_row.preprocess, tpa_row.preprocess,
                  fora_plus_row.preprocess, bepi_row.index_size,
                  tpa_row.index_size, fora_plus_row.index_size,
                  FmtBytes(static_cast<double>(ds.graph.MemoryBytes()))});
  }
  table.Print(stdout);
  std::printf(
      "\nResAcc: preprocessing time 0, index size 0 (index-free).\n"
      "paper shape (Table IV): FORA+ queries slightly faster than ResAcc "
      "but with large preprocessing;\nBePI o.o.m on the largest graphs; "
      "TPA queries several times slower than ResAcc.\n");
  return 0;
}

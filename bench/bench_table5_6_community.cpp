// Reproduces Tables V and VI: overlapping community detection with NISE.
//  Table V: NISE with SSRWR ordering vs NISE without (BFS-distance
//           ordering) — SSRWR materially improves ANC/AC.
//  Table VI: NISE driven by FORA vs by ResAcc — ResAcc is faster at equal
//            or better community quality.
// The community graphs are planted-partition stand-ins (facebook-sim plus
// a DBLP-scale SBM), since Chung-Lu stand-ins carry no community signal.

#include <cstdio>

#include "bench/bench_common.h"
#include "resacc/algo/fora.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/community_metrics.h"
#include "resacc/graph/generators.h"
#include "resacc/nise/nise.h"

int main() {
  using namespace resacc;
  using namespace resacc::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("Tables V-VI: NISE overlapping community detection", env);

  struct CommunityDataset {
    std::string name;
    Graph graph;
    std::size_t num_communities;
  };
  std::vector<CommunityDataset> datasets;
  {
    const DatasetSpec facebook = FindDataset("facebook-sim").value();
    datasets.push_back({"facebook-sim", MakeDataset(facebook, env.scale,
                                                    env.seed),
                        64});
    // DBLP-scale community graph: 100 communities of ~200 nodes.
    const NodeId n = static_cast<NodeId>(20000 * env.scale);
    datasets.push_back({"dblp-comm-sim",
                        PlantedPartition(std::max<NodeId>(n, 1000), 100, 5.0,
                                         1.0, env.seed ^ 0xdb19),
                        100});
  }

  for (const auto& ds : datasets) {
    RwrConfig config = BenchConfig(ds.graph, env.seed);

    NiseOptions options;
    options.num_communities = ds.num_communities;

    ResAccSolver resacc(ds.graph, config, ResAccOptions{});
    Fora fora(ds.graph, config, {});

    std::printf("%s (n=%u, m=%llu, |C|=%zu):\n", ds.name.c_str(),
                ds.graph.num_nodes(),
                static_cast<unsigned long long>(ds.graph.num_edges()),
                ds.num_communities);

    // Table V: effect of SSRWR ordering.
    NiseOptions no_ssrwr = options;
    no_ssrwr.use_ssrwr_ordering = false;
    const NiseResult with_ssrwr = Nise(ds.graph, options).Detect(resacc);
    const NiseResult without_ssrwr =
        Nise(ds.graph, no_ssrwr).Detect(resacc);

    TextTable table_v({"method", "avg normalized cut", "avg conductance"});
    table_v.AddRow({"NISE (with SSRWR)",
                    Fmt(AverageNormalizedCut(ds.graph, with_ssrwr.communities)),
                    Fmt(AverageConductance(ds.graph, with_ssrwr.communities))});
    table_v.AddRow(
        {"NISE-without-SSRWR",
         Fmt(AverageNormalizedCut(ds.graph, without_ssrwr.communities)),
         Fmt(AverageConductance(ds.graph, without_ssrwr.communities))});
    table_v.Print(stdout);

    // Table VI: FORA vs ResAcc as the SSRWR engine.
    const NiseResult via_fora = Nise(ds.graph, options).Detect(fora);
    const NiseResult via_resacc = with_ssrwr;

    TextTable table_vi({"approach", "ssrwr time", "avg normalized cut",
                        "avg conductance"});
    table_vi.AddRow({"FORA", FmtSeconds(via_fora.ssrwr_seconds),
                     Fmt(AverageNormalizedCut(ds.graph, via_fora.communities)),
                     Fmt(AverageConductance(ds.graph, via_fora.communities))});
    table_vi.AddRow(
        {"ResAcc (ours)", FmtSeconds(via_resacc.ssrwr_seconds),
         Fmt(AverageNormalizedCut(ds.graph, via_resacc.communities)),
         Fmt(AverageConductance(ds.graph, via_resacc.communities))});
    table_vi.Print(stdout);
    std::printf("\n");
  }
  return 0;
}

// Reproduces Appendix G (Figure 21): ResAcc query time as the hop
// parameter h varies in {1..6}, against FORA's (h-independent) time, on a
// small (Web-Stan) and a large (Pokec) stand-in.
// Paper shape: a U with the minimum at h = 2; small h <= 4 beats FORA.

#include <cstdio>

#include "bench/bench_common.h"
#include "resacc/algo/fora.h"
#include "resacc/core/resacc_solver.h"

int main() {
  using namespace resacc;
  using namespace resacc::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("Figure 21: effect of h in ResAcc", env);

  const auto datasets = LoadDatasets({"webstan-sim", "pokec-sim"}, env);
  for (const auto& ds : datasets) {
    const RwrConfig config = BenchConfig(ds.graph, env.seed);
    Fora fora(ds.graph, config, {});
    const double fora_seconds = AverageQuerySeconds(fora, ds.sources);

    std::printf("%s (FORA reference: %s):\n", DatasetLabel(ds).c_str(),
                FmtSeconds(fora_seconds).c_str());
    TextTable table({"h", "ResAcc avg query", "hop-set size",
                     "frontier size", "vs FORA"});
    for (std::uint32_t h = 1; h <= 6; ++h) {
      ResAccOptions options;
      options.num_hops = h;
      // The sweep studies raw h; the adaptive hop-set cap would clamp the
      // large-h side of the curve.
      options.max_hop_set_fraction = 0.0;
      ResAccSolver resacc(ds.graph, config, options);
      const double seconds = AverageQuerySeconds(resacc, ds.sources);
      const auto& stats = resacc.last_stats();
      table.AddRow({std::to_string(h), FmtSeconds(seconds),
                    std::to_string(stats.hhop.hop_set_size),
                    std::to_string(stats.hhop.frontier_size),
                    Fmt(fora_seconds / seconds, 3) + "x"});
    }
    table.Print(stdout);
    std::printf("\n");
  }
  return 0;
}

// Reproduces Appendix K (Figure 24): the effect of each trick in ResAcc.
// Query time of full ResAcc vs No-Loop-ResAcc (no accumulating-loop
// extrapolation), No-SG-ResAcc (no h-hop subgraph restriction), and
// No-OFD-ResAcc (no OMFWD phase).
// Paper shape: full ResAcc at least ~2x faster than No-Loop and No-SG,
// and up to an order of magnitude faster than No-OFD.

#include <cstdio>

#include "bench/bench_common.h"
#include "resacc/core/resacc_solver.h"

int main() {
  using namespace resacc;
  using namespace resacc::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("Figure 24: ablation of ResAcc's tricks", env);

  const auto datasets = LoadDatasets(
      {"dblp-sim", "webstan-sim", "pokec-sim", "lj-sim", "twitter-sim"}, env);

  TextTable table({"Dataset", "ResAcc", "No-Loop", "No-SG", "No-OFD",
                   "loop gain", "sg gain", "ofd gain", "hhop pushes",
                   "no-loop pushes"});
  for (const auto& ds : datasets) {
    const RwrConfig config = BenchConfig(ds.graph, env.seed);
    std::uint64_t full_pushes = 0;
    std::uint64_t no_loop_pushes = 0;
    auto run_variant = [&](bool loop, bool subgraph, bool omfwd,
                           std::uint64_t* hhop_pushes = nullptr) {
      ResAccOptions options;
      // One hop beyond the scale-appropriate value: the loop/subgraph
      // tricks act on the h-HopFWD phase, which must be non-trivial for
      // the ablation to measure anything.
      options.num_hops = static_cast<std::uint32_t>(ds.spec.sim_hops) + 1;
      options.max_hop_set_fraction = 0.0;
      options.use_loop_accumulation = loop;
      options.use_hop_subgraph = subgraph;
      options.use_omfwd = omfwd;
      ResAccSolver solver(ds.graph, config, options);
      const double seconds = AverageQuerySeconds(solver, ds.sources);
      if (hhop_pushes != nullptr) {
        *hhop_pushes = solver.last_stats().hhop.push.push_operations;
      }
      return seconds;
    };

    const double full = run_variant(true, true, true, &full_pushes);
    const double no_loop = run_variant(false, true, true, &no_loop_pushes);
    const double no_sg = run_variant(true, false, true);
    const double no_ofd = run_variant(true, true, false);

    table.AddRow({DatasetLabel(ds), FmtSeconds(full), FmtSeconds(no_loop),
                  FmtSeconds(no_sg), FmtSeconds(no_ofd),
                  Fmt(no_loop / full, 3) + "x", Fmt(no_sg / full, 3) + "x",
                  Fmt(no_ofd / full, 3) + "x", std::to_string(full_pushes),
                  std::to_string(no_loop_pushes)});
  }
  table.Print(stdout);
  return 0;
}

// Hub-vs-tail record of the hybrid local/dense selector (PR 10;
// core/power_iter.h). The hub-source degradation this PR fixes: on a
// heavy-tailed graph a hub's 1-hop set spans a large fraction of the
// graph, so the paper's local pipeline grinds the 1e-14-threshold
// accumulating phase over most of the CSR. The hybrid selector hands
// exactly those queries to the dense power-iteration path.
//
// The record (BENCH_hybrid.json, uploaded by CI) measures ResAcc with the
// hybrid off vs on, on hub sources (top out-degree) and tail sources
// (median-and-below out-degree), and GATES:
//   * every hub query under the hybrid actually selected a dense path;
//   * hybrid hub QPS beats pure-local hub QPS;
//   * hybrid tail QPS stays within noise of pure-local (>= 80%);
//   * every dense result satisfies Definition 1 against power-iteration
//     ground truth — deterministically, per the eps * delta tolerance.
// Exit 1 on any gate failure, 2 when the record cannot be written.
//
// Env knobs: RESACC_HYBRID_{NODES,EDGES,HUBS,TAILS,REPS,VERIFY,RATIO,
// ALPHA,DELTA}.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "resacc/core/power_iter.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/graph/generators.h"
#include "resacc/graph/graph.h"
#include "resacc/util/env.h"
#include "resacc/util/timer.h"

namespace resacc {
namespace {

// Best-of-reps QPS of `per_source` over `sources` (same rationale as
// bench_serve's ModeQps: the smoke wants the machine's capability, not its
// scheduling noise).
template <typename PerSourceFn>
double ModeQps(const std::vector<NodeId>& sources, int reps,
               PerSourceFn&& per_source) {
  double best_seconds = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    for (NodeId s : sources) per_source(s, rep == 0);
    const double seconds = timer.ElapsedSeconds();
    if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
  }
  return static_cast<double>(sources.size()) / best_seconds;
}

int RunHybridRecord(const std::string& json_path) {
  const NodeId nodes =
      static_cast<NodeId>(GetEnvInt("RESACC_HYBRID_NODES", 5000));
  const std::uint64_t edges =
      static_cast<std::uint64_t>(GetEnvInt("RESACC_HYBRID_EDGES", 1000000));
  const std::size_t num_hubs =
      static_cast<std::size_t>(GetEnvInt("RESACC_HYBRID_HUBS", 8));
  const std::size_t num_tails =
      static_cast<std::size_t>(GetEnvInt("RESACC_HYBRID_TAILS", 16));
  const int reps =
      std::max(1, static_cast<int>(GetEnvInt("RESACC_HYBRID_REPS", 2)));

  std::fprintf(stderr,
               "[bench_hybrid] generating hub bench graph (n=%u, m=%llu)...\n",
               nodes, static_cast<unsigned long long>(edges));
  const Graph graph = ChungLuPowerLaw(nodes, edges, 2.1, /*seed=*/7);

  RwrConfig config;
  config.alpha = GetEnvDouble("RESACC_HYBRID_ALPHA", 0.15);
  config.epsilon = 0.5;
  // delta well above 1/n keeps the pure-local remedy phase affordable —
  // the degradation under test is the accumulating phase, not the walks.
  config.delta = GetEnvDouble("RESACC_HYBRID_DELTA", 0.01);
  config.p_f = 1e-3;
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = 7;

  ResAccOptions local_options;
  ResAccOptions hybrid_options;
  hybrid_options.hybrid.enable = true;
  hybrid_options.hybrid.cost_ratio = GetEnvDouble("RESACC_HYBRID_RATIO", 1.0);

  // Hub sources: the top of the out-degree order (their 1-hop sets floor
  // the adaptive cap). Tail sources: median and below, strided so they
  // spread over the quiet half of the degree distribution.
  const std::vector<NodeId> by_degree = graph.NodesByOutDegreeDesc();
  std::vector<NodeId> hubs;
  for (std::size_t i = 0; i < num_hubs && i < by_degree.size(); ++i) {
    hubs.push_back(by_degree[i]);
  }
  std::vector<NodeId> tails;
  for (std::size_t i = 0; i < num_tails; ++i) {
    const std::size_t rank = by_degree.size() / 2 + i * 31;
    tails.push_back(by_degree[std::min(rank, by_degree.size() - 1)]);
  }

  ResAccSolver local_solver(graph, config, local_options);
  ResAccSolver hybrid_solver(graph, config, hybrid_options);

  // Hybrid selections and payloads, captured on the first rep.
  std::size_t hub_dense = 0, tail_dense = 0;
  std::vector<std::vector<Score>> dense_results(hubs.size());
  std::size_t next = 0;

  const double local_hub_qps = ModeQps(
      hubs, reps, [&](NodeId s, bool) { local_solver.Query(s); });
  const double hybrid_hub_qps = ModeQps(hubs, reps, [&](NodeId s, bool first) {
    std::vector<Score> scores = hybrid_solver.Query(s);
    if (first) {
      if (hybrid_solver.last_stats().path != SolverPath::kLocal) ++hub_dense;
      dense_results[next++] = std::move(scores);
    }
  });
  const double local_tail_qps = ModeQps(
      tails, reps, [&](NodeId s, bool) { local_solver.Query(s); });
  const double hybrid_tail_qps =
      ModeQps(tails, reps, [&](NodeId s, bool first) {
        hybrid_solver.Query(s);
        if (first && hybrid_solver.last_stats().path != SolverPath::kLocal) {
          ++tail_dense;
        }
      });

  // Conformance audit: the acceptance bar is that every dense-path result
  // passes Definition 1 against power-iteration ground truth. The dense
  // guarantee is deterministic (additive error <= eps * delta), so any
  // single violation is a bug, not noise. Ground truth costs ~n + m per
  // sweep per source, so a subsample keeps the smoke fast.
  const std::size_t verify = std::min(
      hubs.size(),
      static_cast<std::size_t>(GetEnvInt("RESACC_HYBRID_VERIFY", 4)));
  GroundTruthCache truth(graph, config);
  bool conformance_ok = true;
  for (std::size_t i = 0; i < verify; ++i) {
    const std::vector<Score>& exact = truth.Get(hubs[i]);
    const std::vector<Score>& estimate = dense_results[i];
    for (NodeId v = 0; v < static_cast<NodeId>(exact.size()); ++v) {
      if (exact[v] <= config.delta) continue;
      if (std::abs(estimate[v] - exact[v]) >
          config.epsilon * exact[v] + 1e-12) {
        conformance_ok = false;
        std::fprintf(stderr,
                     "[bench_hybrid] DEFINITION-1 VIOLATION source=%u "
                     "node=%u est=%.6e true=%.6e\n",
                     hubs[i], v, estimate[v], exact[v]);
      }
    }
  }

  const bool all_hubs_dense = hub_dense == hubs.size();
  const bool hub_wins = hybrid_hub_qps > local_hub_qps;
  const bool tail_ok = hybrid_tail_qps >= 0.8 * local_tail_qps;

  std::printf("hybrid vs pure-local (ResAcc, n=%u, m=%llu, %zu hubs, "
              "%zu tails, delta=%g, ratio=%g):\n",
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()), hubs.size(),
              tails.size(), config.delta, hybrid_options.hybrid.cost_ratio);
  std::printf("  hub   local %8.2f qps | hybrid %8.2f qps  (%.2fx, "
              "%zu/%zu dense)\n",
              local_hub_qps, hybrid_hub_qps, hybrid_hub_qps / local_hub_qps,
              hub_dense, hubs.size());
  std::printf("  tail  local %8.2f qps | hybrid %8.2f qps  (%.2fx, "
              "%zu/%zu dense)\n",
              local_tail_qps, hybrid_tail_qps,
              hybrid_tail_qps / local_tail_qps, tail_dense, tails.size());
  std::printf("  dense conformance vs ground truth (%zu sources): %s\n",
              verify, conformance_ok ? "ok" : "VIOLATED");
  if (!all_hubs_dense) {
    std::printf("  GATE: %zu hub sources stayed local\n",
                hubs.size() - hub_dense);
  }
  if (!hub_wins) std::printf("  GATE: hybrid did not beat local on hubs\n");
  if (!tail_ok) std::printf("  GATE: tail regression beyond noise\n");

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"hybrid_hub_vs_tail\",\n"
                 "  \"graph\": {\"nodes\": %u, \"edges\": %llu,"
                 " \"generator\": \"chung_lu_powerlaw_2.1\"},\n"
                 "  \"config\": {\"alpha\": %g, \"epsilon\": %g,"
                 " \"delta\": %g, \"p_f\": %g, \"cost_ratio\": %g},\n"
                 "  \"hub_sources\": %zu,\n"
                 "  \"tail_sources\": %zu,\n"
                 "  \"local_hub_qps\": %.4f,\n"
                 "  \"hybrid_hub_qps\": %.4f,\n"
                 "  \"hub_speedup\": %.4f,\n"
                 "  \"local_tail_qps\": %.4f,\n"
                 "  \"hybrid_tail_qps\": %.4f,\n"
                 "  \"tail_ratio\": %.4f,\n"
                 "  \"hub_dense_selected\": %zu,\n"
                 "  \"tail_dense_selected\": %zu,\n"
                 "  \"verified_sources\": %zu,\n"
                 "  \"conformance_ok\": %s\n"
                 "}\n",
                 graph.num_nodes(),
                 static_cast<unsigned long long>(graph.num_edges()),
                 config.alpha, config.epsilon, config.delta, config.p_f,
                 hybrid_options.hybrid.cost_ratio, hubs.size(), tails.size(),
                 local_hub_qps, hybrid_hub_qps,
                 hybrid_hub_qps / local_hub_qps, local_tail_qps,
                 hybrid_tail_qps, hybrid_tail_qps / local_tail_qps, hub_dense,
                 tail_dense, verify, conformance_ok ? "true" : "false");
    std::fclose(f);
    std::printf("  record written to %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "[bench_hybrid] cannot write %s\n",
                 json_path.c_str());
    return 2;
  }
  return (all_hubs_dense && hub_wins && tail_ok && conformance_ok) ? 0 : 1;
}

}  // namespace
}  // namespace resacc

int main(int argc, char** argv) {
  std::string json_path = "BENCH_hybrid.json";
  constexpr const char kFlag[] = "--hybrid_json=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      json_path = argv[i] + sizeof(kFlag) - 1;
    }
  }
  return resacc::RunHybridRecord(json_path);
}

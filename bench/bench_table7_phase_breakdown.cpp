// Reproduces Appendix J (Table VII): per-phase query time of ResAcc
// (h-HopFWD / OMFWD / Remedy) on each dataset stand-in.
// Paper shape (average over 6 datasets): h-HopFWD ~1.8%, OMFWD ~64.6%,
// Remedy ~33.6% of total query time.
//
// Doubles as the cross-check of the observability surface: the solver
// exports the same phase timings to MetricsRegistry::Global()
// (resacc_solver_phase_seconds{phase=...}), so the registry deltas over
// the run must match the timer sums accumulated here. A >5% disagreement
// fails the bench (exit 1) — it would mean the metrics a production
// scrape sees have drifted from what the solver measures.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/obs/metrics_registry.h"

namespace {

// Sum of a metric family's `value` (for histograms: the recorded-value
// sum) across its label variants in a snapshot.
double FamilySum(const std::vector<resacc::MetricsRegistry::Sample>& samples,
                 const std::string& name) {
  double sum = 0.0;
  for (const auto& sample : samples) {
    if (sample.name == name) sum += sample.value;
  }
  return sum;
}

bool Within(double metric, double timer, double tolerance) {
  if (timer <= 0.0) return metric <= 0.0;
  return std::fabs(metric - timer) / timer <= tolerance;
}

}  // namespace

int main() {
  using namespace resacc;
  using namespace resacc::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("Table VII: phase breakdown of ResAcc", env);

  const auto datasets = LoadDatasets(
      {"dblp-sim", "webstan-sim", "pokec-sim", "lj-sim", "orkut-sim",
       "twitter-sim"},
      env);

  TextTable table({"Dataset", "h-HopFWD", "OMFWD", "Remedy", "Total",
                   "hop%", "omfwd%", "remedy%"});
  double total_hop_fraction = 0.0;
  double total_omfwd_fraction = 0.0;
  double total_remedy_fraction = 0.0;
  double timer_hop = 0.0;
  double timer_omfwd = 0.0;
  double timer_remedy = 0.0;
  double timer_total = 0.0;
  const auto before = MetricsRegistry::Global().TakeSnapshot();
  for (const auto& ds : datasets) {
    const RwrConfig config = BenchConfig(ds.graph, env.seed);
    ResAccOptions options;
    options.num_hops = static_cast<std::uint32_t>(ds.spec.sim_hops);
    ResAccSolver resacc(ds.graph, config, options);

    double hop = 0.0;
    double omfwd = 0.0;
    double remedy = 0.0;
    double total = 0.0;
    for (NodeId s : ds.sources) {
      resacc.Query(s);
      const ResAccQueryStats& stats = resacc.last_stats();
      hop += stats.hhop_seconds;
      omfwd += stats.omfwd_seconds;
      remedy += stats.remedy_seconds;
      total += stats.total_seconds;
    }
    const double inv = 1.0 / static_cast<double>(ds.sources.size());
    table.AddRow({DatasetLabel(ds), FmtSeconds(hop * inv),
                  FmtSeconds(omfwd * inv), FmtSeconds(remedy * inv),
                  FmtSeconds(total * inv), Fmt(100.0 * hop / total, 3),
                  Fmt(100.0 * omfwd / total, 3),
                  Fmt(100.0 * remedy / total, 3)});
    total_hop_fraction += hop / total;
    total_omfwd_fraction += omfwd / total;
    total_remedy_fraction += remedy / total;
    timer_hop += hop;
    timer_omfwd += omfwd;
    timer_remedy += remedy;
    timer_total += total;
  }
  table.Print(stdout);
  const double inv = 100.0 / static_cast<double>(datasets.size());
  std::printf("\naverage over datasets: h-HopFWD %.2f%%, OMFWD %.2f%%, "
              "Remedy %.2f%% (paper: 1.79%% / 64.58%% / 33.63%%)\n",
              total_hop_fraction * inv, total_omfwd_fraction * inv,
              total_remedy_fraction * inv);

  // Cross-check: registry deltas vs the timer sums above.
  const auto after = MetricsRegistry::Global().TakeSnapshot();
  const struct {
    const char* label;
    const char* metric;
    double timer_sum;
  } checks[] = {
      {"hhop+omfwd+remedy", "resacc_solver_phase_seconds",
       timer_hop + timer_omfwd + timer_remedy},
      {"total", "resacc_solver_query_seconds", timer_total},
  };
  bool ok = true;
  for (const auto& check : checks) {
    const double delta = FamilySum(after, check.metric) -
                         FamilySum(before, check.metric);
    const bool pass = Within(delta, check.timer_sum, 0.05);
    std::printf("metrics cross-check %-18s timers=%.6fs registry=%.6fs %s\n",
                check.label, check.timer_sum, delta,
                pass ? "ok" : "MISMATCH");
    ok = ok && pass;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "phase metrics diverged >5%% from solver timers\n");
    return 1;
  }
  return 0;
}

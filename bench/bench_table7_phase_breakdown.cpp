// Reproduces Appendix J (Table VII): per-phase query time of ResAcc
// (h-HopFWD / OMFWD / Remedy) on each dataset stand-in.
// Paper shape (average over 6 datasets): h-HopFWD ~1.8%, OMFWD ~64.6%,
// Remedy ~33.6% of total query time.

#include <cstdio>

#include "bench/bench_common.h"
#include "resacc/core/resacc_solver.h"

int main() {
  using namespace resacc;
  using namespace resacc::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("Table VII: phase breakdown of ResAcc", env);

  const auto datasets = LoadDatasets(
      {"dblp-sim", "webstan-sim", "pokec-sim", "lj-sim", "orkut-sim",
       "twitter-sim"},
      env);

  TextTable table({"Dataset", "h-HopFWD", "OMFWD", "Remedy", "Total",
                   "hop%", "omfwd%", "remedy%"});
  double total_hop_fraction = 0.0;
  double total_omfwd_fraction = 0.0;
  double total_remedy_fraction = 0.0;
  for (const auto& ds : datasets) {
    const RwrConfig config = BenchConfig(ds.graph, env.seed);
    ResAccOptions options;
    options.num_hops = static_cast<std::uint32_t>(ds.spec.sim_hops);
    ResAccSolver resacc(ds.graph, config, options);

    double hop = 0.0;
    double omfwd = 0.0;
    double remedy = 0.0;
    double total = 0.0;
    for (NodeId s : ds.sources) {
      resacc.Query(s);
      const ResAccQueryStats& stats = resacc.last_stats();
      hop += stats.hhop_seconds;
      omfwd += stats.omfwd_seconds;
      remedy += stats.remedy_seconds;
      total += stats.total_seconds;
    }
    const double inv = 1.0 / static_cast<double>(ds.sources.size());
    table.AddRow({DatasetLabel(ds), FmtSeconds(hop * inv),
                  FmtSeconds(omfwd * inv), FmtSeconds(remedy * inv),
                  FmtSeconds(total * inv), Fmt(100.0 * hop / total, 3),
                  Fmt(100.0 * omfwd / total, 3),
                  Fmt(100.0 * remedy / total, 3)});
    total_hop_fraction += hop / total;
    total_omfwd_fraction += omfwd / total;
    total_remedy_fraction += remedy / total;
  }
  table.Print(stdout);
  const double inv = 100.0 / static_cast<double>(datasets.size());
  std::printf("\naverage over datasets: h-HopFWD %.2f%%, OMFWD %.2f%%, "
              "Remedy %.2f%% (paper: 1.79%% / 64.58%% / 33.63%%)\n",
              total_hop_fraction * inv, total_omfwd_fraction * inv,
              total_remedy_fraction * inv);
  return 0;
}

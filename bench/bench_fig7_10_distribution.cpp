// Reproduces Figures 7-10: the *distribution* (not just the mean) of query
// time, absolute error, and NDCG across query nodes, as boxplot
// five-number summaries (Figs. 7-8) and mean +/- stddev error bars
// (Figs. 9-10), on the DBLP and Twitter stand-ins.
// Paper shape: ResAcc has the smallest maxima and lowest variability.

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_common.h"
#include "resacc/algo/bepi.h"
#include "resacc/algo/fora.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/algo/topppr.h"
#include "resacc/algo/tpa.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/eval/metrics.h"
#include "resacc/util/stats.h"

int main() {
  using namespace resacc;
  using namespace resacc::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble(
      "Figures 7-10: per-source distribution (boxplot & error bar)", env);

  const auto datasets = LoadDatasets({"dblp-sim", "twitter-sim"}, env);
  for (const auto& ds : datasets) {
    const RwrConfig config = BenchConfig(ds.graph, env.seed);
    GroundTruthCache truth(ds.graph, config);

    MonteCarlo mc(ds.graph, config);
    Fora fora(ds.graph, config, {});
    TopPpr topppr(ds.graph, config, {});
    Tpa tpa(ds.graph, config, {});
    const bool tpa_ok = tpa.BuildIndex().ok();
    BePiOptions bepi_options;
    bepi_options.memory_budget_bytes = env.memory_budget_bytes;
    BePi bepi(ds.graph, config, bepi_options);
    const bool bepi_ok = bepi.BuildIndex().ok();
    ResAccOptions resacc_options;
    resacc_options.num_hops =
        static_cast<std::uint32_t>(ds.spec.sim_hops);
    ResAccSolver resacc(ds.graph, config, resacc_options);

    struct Entry {
      const char* label;
      SsrwrAlgorithm* algo;
      bool available;
    };
    const std::vector<Entry> entries = {
        {"MC", &mc, true},           {"BePI", &bepi, bepi_ok},
        {"FORA", &fora, true},       {"TopPPR", &topppr, true},
        {"TPA", &tpa, tpa_ok},       {"ResAcc", &resacc, true},
    };

    std::printf("%s (min/Q1/median/Q3/max, then mean +/- sd):\n",
                DatasetLabel(ds).c_str());
    TextTable table({"algorithm", "query time", "abs error", "ndcg@1000"});
    for (const Entry& entry : entries) {
      if (!entry.available) {
        table.AddRow({entry.label, "o.o.m", "o.o.m", "o.o.m"});
        continue;
      }
      std::vector<double> times;
      std::vector<double> errors;
      std::vector<double> ndcgs;
      for (NodeId s : ds.sources) {
        Timer t;
        const std::vector<Score> estimate = entry.algo->Query(s);
        times.push_back(t.ElapsedSeconds());
        const std::vector<Score>& exact = truth.Get(s);
        errors.push_back(MeanAbsError(estimate, exact));
        ndcgs.push_back(NdcgAtK(estimate, exact, 1000));
      }
      table.AddRow({entry.label, Summarize(times).ToString(),
                    Summarize(errors).ToString(),
                    Summarize(ndcgs).ToString()});
    }
    table.Print(stdout);
    std::printf("\n");
  }
  return 0;
}

// bench_workload — LinkBench-style serving benchmark and regression gate.
//
//   bench_workload [--spec=FILE] [--out=BENCH_workload.json]
//                  [--check] [--bounds=FILE]
//                  [--nodes=N] [--edges=M] [--workers=W] [--queue=C]
//                  [--cache-mb=M] [--no-coalesce] [--max-batch=B]
//                  [--serve-cmd="build/tools/resacc_serve ..."]
//
// Default mode builds the standard power-law serving graph (1M edges),
// stands up an in-process QueryService with the spec's tenants mapped to
// weighted-fair-queue lanes, and runs the multi-tenant open/closed-loop
// WorkloadDriver (src/resacc/workload/driver.h) against it. The report —
// per-class and per-tenant p50/p99/p999, rejection/deadline/degraded/
// stale/certified rates, per-tenant fair-share throughput — is written to
// --out as BENCH_workload.json (docs/WORKLOADS.md explains every field).
//
// --check gates the report against --bounds (default
// bench/workload/baseline.bounds) and exits nonzero on any violation;
// that is the CI serving-regression gate.
//
// --serve-cmd switches to protocol mode: the same spec is replayed as one
// deterministic merged stream over a spawned resacc_serve's line protocol
// (tenant/deadline tokens included), measuring the full pipe instead of
// the in-process API. Give the command --tenants=... matching the spec,
// or every op lands on the default lane.
//
// Without --spec, a built-in 4-tenant smoke spec runs (the same mix as
// bench/workload/smoke.spec).

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "resacc/core/rwr_config.h"
#include "resacc/graph/dynamic/mutable_graph_view.h"
#include "resacc/graph/generators.h"
#include "resacc/serve/query_service.h"
#include "resacc/util/args.h"
#include "resacc/workload/driver.h"
#include "resacc/workload/protocol_client.h"
#include "resacc/workload/workload_spec.h"

namespace {

using namespace resacc;

// Mirrors bench/workload/smoke.spec so a bare `bench_workload` run needs
// no files. Two closed-loop tenants at 4:1 weight carry the fairness
// assertion; an open-loop tenant exercises pacing; "churn" mixes all five
// classes including mutations.
const char kDefaultSpec[] = R"(duration_seconds 10
seed 42
source zipfian 0.99
top_k 10
deadline_ms 40

tenant gold
  weight 4
  concurrency 8
  class full 0.5
  class topk 0.5
end

tenant bronze
  weight 1
  concurrency 8
  class full 0.5
  class topk 0.5
end

tenant paced
  weight 2
  rate 50
  class full 0.4
  class topk 0.2
  class deadline 0.2
  class degraded 0.2
end

tenant churn
  weight 1
  concurrency 2
  class full 0.3
  class topk 0.2
  class deadline 0.1
  class degraded 0.1
  class mutation 0.3
end
)";

// Protocol mode: replay the merged deterministic stream through a spawned
// resacc_serve with a pipelining window (RunProtocolWorkload does the
// accounting, shared with loadgen --spec).
int RunProtocolMode(const WorkloadSpec& spec, const std::string& command,
                    WorkloadReport& report) {
  ProtocolClient client;
  const Status status = client.Spawn(command);
  if (!status.ok()) {
    std::fprintf(stderr, "bench_workload: %s\n", status.ToString().c_str());
    return 1;
  }
  const StatusOr<NodeId> nodes = client.Handshake();
  if (!nodes.ok()) {
    std::fprintf(stderr, "bench_workload: %s\n",
                 nodes.status().ToString().c_str());
    return 1;
  }
  const Status run =
      RunProtocolWorkload(spec, client, nodes.value(), /*window=*/16, &report);
  if (!run.ok()) {
    std::fprintf(stderr, "bench_workload: %s\n", run.ToString().c_str());
    return 1;
  }
  client.Shutdown();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);

  const std::string spec_path = args.GetString("spec", "");
  StatusOr<WorkloadSpec> spec =
      spec_path.empty() ? WorkloadSpec::Parse(kDefaultSpec, "<built-in>")
                        : WorkloadSpec::ParseFile(spec_path);
  if (!spec.ok()) {
    std::fprintf(stderr, "bench_workload: %s\n",
                 spec.status().ToString().c_str());
    return 2;
  }

  WorkloadReport report;
  report.spec_origin = spec_path.empty() ? "<built-in>" : spec_path;

  const std::string serve_cmd = args.GetString("serve-cmd", "");
  if (!serve_cmd.empty()) {
    const int rc = RunProtocolMode(spec.value(), serve_cmd, report);
    if (rc != 0) return rc;
    report.spec_origin += " via " + serve_cmd;
  } else {
    // In-process mode on the standard power-law serving graph.
    const NodeId nodes =
        static_cast<NodeId>(args.GetInt("nodes", 100000));
    const EdgeId edges =
        static_cast<EdgeId>(args.GetInt("edges", 1000000));
    std::fprintf(stderr, "[bench_workload] generating graph: %u nodes, "
                 "%llu edges...\n", nodes,
                 static_cast<unsigned long long>(edges));
    Graph graph = ChungLuPowerLaw(nodes, edges, 2.1, /*seed=*/7);
    const RwrConfig config = RwrConfig::ForGraphSize(graph.num_nodes());

    ServeOptions options;
    options.num_workers =
        static_cast<std::size_t>(args.GetInt("workers", 0));
    options.queue_capacity =
        static_cast<std::size_t>(args.GetInt("queue", 256));
    options.cache_bytes =
        static_cast<std::size_t>(args.GetInt("cache-mb", 64)) * 1024 * 1024;
    options.coalesce = !args.HasFlag("no-coalesce");
    options.max_batch =
        static_cast<std::size_t>(args.GetInt("max-batch", 1));
    for (const TenantSpec& tenant : spec.value().tenants) {
      options.tenant_weights.emplace_back(tenant.name, tenant.weight);
    }

    MutableGraphView view(graph.ShallowView());
    QueryService service(view.Snapshot(), config, options);
    std::fprintf(stderr, "[bench_workload] %zu workers, %zu tenants, "
                 "%.0fs run...\n", service.num_workers(),
                 spec.value().tenants.size(),
                 spec.value().duration_seconds);

    WorkloadDriver driver(spec.value(), &service, &view);
    WorkloadReport measured = driver.Run();
    measured.spec_origin = report.spec_origin;
    report = std::move(measured);
  }

  const std::string out_path =
      args.GetString("out", "BENCH_workload.json");
  const std::string json = report.ToJson();
  if (FILE* out = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::fprintf(stderr, "[bench_workload] wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "bench_workload: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  // Headline numbers on stdout; the JSON has the full breakdown.
  std::printf("wall=%.1fs sent=%llu ok=%llu errors=%llu qps=%.1f\n",
              report.wall_seconds,
              static_cast<unsigned long long>(report.TotalSent()),
              static_cast<unsigned long long>(report.TotalOk()),
              static_cast<unsigned long long>(report.TotalErrors()),
              report.wall_seconds > 0.0
                  ? static_cast<double>(report.TotalOk()) / report.wall_seconds
                  : 0.0);
  for (std::size_t t = 0; t < report.tenant_names.size(); ++t) {
    std::printf("tenant %-10s computed_ok=%llu\n",
                report.tenant_names[t].c_str(),
                static_cast<unsigned long long>(report.computed_ok[t]));
  }

  if (args.HasFlag("check")) {
    const std::string bounds =
        args.GetString("bounds", "bench/workload/baseline.bounds");
    const Status verdict = CheckBoundsFile(report, bounds);
    if (!verdict.ok()) {
      std::fprintf(stderr, "bench_workload: %s\n",
                   verdict.ToString().c_str());
      return 1;
    }
    std::printf("check: all bounds in %s hold\n", bounds.c_str());
  }
  return 0;
}

// Serving benchmark: QueryService under a closed-loop Zipfian workload.
//
// Replays the same skewed source distribution against a cold service
// (cache disabled) and a warm service (cache + coalescing on) and reports
// QPS, p50/p95/p99 latency, and the cache hit rate — the quantitative
// case for the serving layer: with zero index to build (the paper's
// index-free property), reuse across repeated sources is pure win.
//
// Extra env knobs on top of bench_common's:
//   RESACC_SERVE_QUERIES  queries per phase            (default 256)
//   RESACC_SERVE_CLIENTS  concurrent client threads    (default 8)
//   RESACC_SERVE_ZIPF     Zipfian theta                (default 0.99)
//   RESACC_SERVE_TOPK     top-k per query              (default 10)

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "resacc/serve/query_service.h"
#include "resacc/serve/workload.h"
#include "resacc/util/stats.h"

namespace {

using namespace resacc;
using namespace resacc::bench;

struct PhaseResult {
  double seconds = 0.0;
  ServerStats stats;
};

PhaseResult RunPhase(const Graph& graph, const RwrConfig& config,
                     const ServeOptions& options,
                     const std::vector<NodeId>& sources,
                     std::size_t num_clients, std::size_t top_k) {
  QueryService service(graph, config, options);
  Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      // Client c issues sources {c, c + C, c + 2C, ...}, closed-loop.
      for (std::size_t i = c; i < sources.size(); i += num_clients) {
        QueryRequest request;
        request.source = sources[i];
        request.top_k = top_k;
        const QueryResponse response = service.Query(request);
        if (!response.status.ok()) {
          std::fprintf(stderr, "[bench_serve] query failed: %s\n",
                       response.status.ToString().c_str());
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  PhaseResult result;
  result.seconds = wall.ElapsedSeconds();
  result.stats = service.Snapshot();
  return result;
}

void AddRow(TextTable& table, const char* phase, const PhaseResult& r,
            std::size_t queries) {
  char qps[32], p50[32], p95[32], p99[32], hit[32], saved[32];
  std::snprintf(qps, sizeof(qps), "%.1f",
                static_cast<double>(queries) / r.seconds);
  std::snprintf(p50, sizeof(p50), "%.2f", r.stats.latency.p50 * 1e3);
  std::snprintf(p95, sizeof(p95), "%.2f", r.stats.latency.p95 * 1e3);
  std::snprintf(p99, sizeof(p99), "%.2f", r.stats.latency.p99 * 1e3);
  std::snprintf(hit, sizeof(hit), "%.1f%%", r.stats.CacheHitRate() * 100);
  std::snprintf(saved, sizeof(saved), "%llu",
                static_cast<unsigned long long>(r.stats.completed -
                                                r.stats.computed));
  table.AddRow({phase, qps, p50, p95, p99, hit, saved});
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("bench_serve: QueryService under Zipfian load", env);

  const std::size_t queries = static_cast<std::size_t>(
      GetEnvInt("RESACC_SERVE_QUERIES", 256));
  const std::size_t clients = static_cast<std::size_t>(
      GetEnvInt("RESACC_SERVE_CLIENTS", 8));
  const double theta = GetEnvDouble("RESACC_SERVE_ZIPF", 0.99);
  const std::size_t top_k =
      static_cast<std::size_t>(GetEnvInt("RESACC_SERVE_TOPK", 10));

  const auto datasets = LoadDatasets({"dblp-sim"}, env);
  const Graph& graph = datasets[0].graph;
  const RwrConfig config = BenchConfig(graph, env.seed);

  ZipfianSources workload(graph.num_nodes(), theta, env.seed ^ 0x21Af);
  Rng rng(env.seed);
  const std::vector<NodeId> sources = workload.Sample(queries, rng);

  std::printf("%s: %zu queries, %zu clients, zipf theta=%.2f, top-%zu\n\n",
              DatasetLabel(datasets[0]).c_str(), queries, clients, theta,
              top_k);

  ServeOptions cold;
  cold.num_workers = ThreadPool::DefaultThreads();
  cold.cache_bytes = 0;
  cold.coalesce = false;

  ServeOptions warm = cold;
  warm.cache_bytes = static_cast<std::size_t>(256) << 20;
  warm.coalesce = true;

  const PhaseResult cold_result =
      RunPhase(graph, config, cold, sources, clients, top_k);
  const PhaseResult warm_result =
      RunPhase(graph, config, warm, sources, clients, top_k);

  TextTable table(
      {"phase", "qps", "p50 ms", "p95 ms", "p99 ms", "hit rate", "saved"});
  AddRow(table, "cold (no cache)", cold_result, queries);
  AddRow(table, "warm (cache+coalesce)", warm_result, queries);
  table.Print(stdout);

  std::printf("\nwarm speedup: %.2fx  (saved = completed - computed: "
              "queries answered without running the solver)\n",
              cold_result.seconds / warm_result.seconds);
  std::printf("\nserver stats (warm phase):\n%s\n",
              warm_result.stats.ToString().c_str());
  return 0;
}

// Serving benchmark: QueryService under a closed-loop Zipfian workload.
//
// Replays the same skewed source distribution against a cold service
// (cache disabled) and a warm service (cache + coalescing on) and reports
// QPS, p50/p95/p99 latency, and the cache hit rate — the quantitative
// case for the serving layer: with zero index to build (the paper's
// index-free property), reuse across repeated sources is pure win.
//
// Extra env knobs on top of bench_common's:
//   RESACC_SERVE_QUERIES  queries per phase            (default 256)
//   RESACC_SERVE_CLIENTS  concurrent client threads    (default 8)
//   RESACC_SERVE_ZIPF     Zipfian theta                (default 0.99)
//   RESACC_SERVE_TOPK     top-k mode k; 0 = full-vector (default 0)
//
// With `--batch_json=PATH` the binary instead records the batched-vs-serial
// solver comparison (BatchSolver against ResAccSolver on the 1M-edge bench
// graph): QPS at batch sizes {1 (serial), 4, 16}, a per-source bit-identity
// check, and the per-lane epsilon accounting. The JSON record is the CI
// artifact; the process exits non-zero unless every batched score is
// bit-identical to serial, every lane's achieved epsilon is within the
// configured epsilon, and batch >= 4 beats serial throughput.
//
// The batch record uses its own configuration rather than BenchConfig: a
// dense graph (m/n = 200, the serving regime batching is built for — the
// shared rounds amortize one CSR row read across every lane that
// scheduled the node, so the win scales with row reuse) and a full query
// config recorded verbatim in the JSON. Knobs:
//   RESACC_BATCH_NODES       graph nodes               (default 5000)
//   RESACC_BATCH_EDGES       graph edges               (default 1000000)
//   RESACC_BATCH_SOURCES     query sources             (default 32)
//   RESACC_BATCH_ALPHA       restart probability       (default 0.15)
//   RESACC_BATCH_DELTA       RWR threshold delta       (default 0.01)
//   RESACC_BATCH_HOPS        h-HopFWD hop count        (default 1)
//   RESACC_BATCH_WALK_SCALE  remedy walk scale         (default 0.01)
//   RESACC_BATCH_REPS        best-of repetitions       (default 3)
//
// With `--topk_json=PATH` the binary records the top-k-vs-full-vector
// solver comparison (docs/QUERY_MODES.md "Top-k"): ResAccSolver::QueryTopK
// at k in {10, 100} against full QueryControlled on a 1M-edge graph, in a
// remedy-dominant configuration (tight delta, walk_scale 1) — the regime
// the early-termination certificate is built to win in. Also verifies the
// bound certificates against power-iteration ground truth on a source
// subsample. Exits non-zero unless every checked certificate holds and
// top-k@10 beats full-vector throughput. Knobs:
//   RESACC_TOPK_NODES        graph nodes               (default 5000)
//   RESACC_TOPK_EDGES        graph edges               (default 1000000)
//   RESACC_TOPK_SOURCES      query sources             (default 32)
//   RESACC_TOPK_ALPHA        restart probability       (default 0.15)
//   RESACC_TOPK_DELTA        RWR threshold delta       (default 1e-4)
//   RESACC_TOPK_RMAXF        OMFWD threshold r_max^f   (default 1e-5)
//   RESACC_TOPK_HOPS         h-HopFWD hop count        (default 1)
//   RESACC_TOPK_WALK_SCALE   remedy walk scale         (default 1.0)
//   RESACC_TOPK_REPS         best-of repetitions       (default 3)
//   RESACC_TOPK_VERIFY       sources checked vs truth  (default 8)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "resacc/core/batch_solver.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/eval/sources.h"
#include "resacc/graph/generators.h"
#include "resacc/serve/query_service.h"
#include "resacc/serve/workload.h"
#include "resacc/util/stats.h"

namespace {

using namespace resacc;
using namespace resacc::bench;

struct PhaseResult {
  double seconds = 0.0;
  ServerStats stats;
};

PhaseResult RunPhase(const Graph& graph, const RwrConfig& config,
                     const ServeOptions& options,
                     const std::vector<NodeId>& sources,
                     std::size_t num_clients, std::size_t top_k) {
  QueryService service(graph, config, options);
  Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      // Client c issues sources {c, c + C, c + 2C, ...}, closed-loop.
      for (std::size_t i = c; i < sources.size(); i += num_clients) {
        QueryRequest request;
        request.source = sources[i];
        request.top_k = top_k;
        const QueryResponse response = service.Query(request);
        if (!response.status.ok()) {
          std::fprintf(stderr, "[bench_serve] query failed: %s\n",
                       response.status.ToString().c_str());
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  PhaseResult result;
  result.seconds = wall.ElapsedSeconds();
  result.stats = service.Snapshot();
  return result;
}

void AddRow(TextTable& table, const char* phase, const PhaseResult& r,
            std::size_t queries) {
  char qps[32], p50[32], p95[32], p99[32], hit[32], saved[32];
  std::snprintf(qps, sizeof(qps), "%.1f",
                static_cast<double>(queries) / r.seconds);
  std::snprintf(p50, sizeof(p50), "%.2f", r.stats.latency.p50 * 1e3);
  std::snprintf(p95, sizeof(p95), "%.2f", r.stats.latency.p95 * 1e3);
  std::snprintf(p99, sizeof(p99), "%.2f", r.stats.latency.p99 * 1e3);
  std::snprintf(hit, sizeof(hit), "%.1f%%", r.stats.CacheHitRate() * 100);
  std::snprintf(saved, sizeof(saved), "%llu",
                static_cast<unsigned long long>(r.stats.completed -
                                                r.stats.computed));
  table.AddRow({phase, qps, p50, p95, p99, hit, saved});
}

// Times `solver.QueryAllChunked(sources, batch_size)` over `reps`
// repetitions and returns the best rep's QPS (the solvers are
// deterministic, so every rep computes identical results; best-of-N
// suppresses scheduler/VM interference, and serial and batched runs get
// the same treatment).
double BatchQps(BatchSolver& solver, const std::vector<NodeId>& sources,
                std::size_t batch_size, int reps,
                std::vector<ControlledQueryResult>* results) {
  double best_seconds = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    auto out = solver.QueryAllChunked(sources, batch_size);
    const double seconds = timer.ElapsedSeconds();
    if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
    if (results != nullptr && rep == 0) *results = std::move(out);
  }
  return static_cast<double>(sources.size()) / best_seconds;
}

int RunBatchRecord(const std::string& json_path) {
  const NodeId nodes =
      static_cast<NodeId>(GetEnvInt("RESACC_BATCH_NODES", 5000));
  const std::uint64_t edges =
      static_cast<std::uint64_t>(GetEnvInt("RESACC_BATCH_EDGES", 1000000));
  const std::size_t num_sources =
      static_cast<std::size_t>(GetEnvInt("RESACC_BATCH_SOURCES", 32));

  std::fprintf(stderr, "[bench_serve] generating batch bench graph "
               "(n=%u, m=%llu)...\n", nodes,
               static_cast<unsigned long long>(edges));
  const Graph graph = ChungLuPowerLaw(nodes, edges, 2.1, /*seed=*/7);
  RwrConfig config;
  config.alpha = GetEnvDouble("RESACC_BATCH_ALPHA", 0.15);
  config.epsilon = 0.5;
  config.delta = GetEnvDouble("RESACC_BATCH_DELTA", 0.01);
  config.p_f = 1e-3;
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = 7;
  ResAccOptions options;
  options.num_hops =
      static_cast<std::uint32_t>(GetEnvInt("RESACC_BATCH_HOPS", 1));
  options.walk_scale = GetEnvDouble("RESACC_BATCH_WALK_SCALE", 0.01);

  ResAccSolver serial(graph, config, options);
  BatchSolver batch(graph, config, options);
  const std::vector<NodeId> sources =
      PickUniformSources(graph, num_sources, /*seed=*/7 ^ 0xba7c);

  const int reps =
      std::max(1, static_cast<int>(GetEnvInt("RESACC_BATCH_REPS", 3)));

  std::vector<ControlledQueryResult> serial_results;
  double serial_hop = 0.0, serial_omfwd = 0.0, serial_remedy = 0.0;
  double serial_best_seconds = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<ControlledQueryResult> rep_results;
    rep_results.reserve(sources.size());
    double hop = 0.0, omfwd = 0.0, remedy = 0.0;
    Timer serial_timer;
    for (NodeId s : sources) {
      rep_results.push_back(serial.QueryControlled(s, QueryControl{}));
      hop += serial.last_stats().hhop_seconds;
      omfwd += serial.last_stats().omfwd_seconds;
      remedy += serial.last_stats().remedy_seconds;
    }
    const double seconds = serial_timer.ElapsedSeconds();
    if (rep == 0) serial_results = std::move(rep_results);
    if (rep == 0 || seconds < serial_best_seconds) {
      serial_best_seconds = seconds;
      serial_hop = hop;
      serial_omfwd = omfwd;
      serial_remedy = remedy;
    }
  }
  const double serial_qps =
      static_cast<double>(sources.size()) / serial_best_seconds;

  std::vector<ControlledQueryResult> batch4_results;
  std::vector<ControlledQueryResult> batch16_results;
  const double batch4_qps =
      BatchQps(batch, sources, 4, reps, &batch4_results);
  const double batch16_qps =
      BatchQps(batch, sources, 16, reps, &batch16_results);

  bool bit_identical = true;
  double max_achieved_epsilon = 0.0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    for (const auto* results : {&batch4_results, &batch16_results}) {
      const ControlledQueryResult& r = (*results)[i];
      max_achieved_epsilon = std::max(max_achieved_epsilon,
                                      r.achieved_epsilon);
      if (r.scores != serial_results[i].scores) {
        bit_identical = false;
        std::fprintf(stderr,
                     "[bench_serve] MISMATCH at source %u (batch size %zu)\n",
                     sources[i], results == &batch4_results ? 4ul : 16ul);
      }
    }
  }
  const bool epsilon_ok = max_achieved_epsilon <= config.epsilon;
  const bool batch_wins = batch4_qps > serial_qps;

  std::printf("batched-vs-serial (ResAcc, n=%u, m=%llu, %zu sources):\n",
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()),
              sources.size());
  std::printf("  serial   %8.2f qps\n", serial_qps);
  std::printf("  batch=4  %8.2f qps  (%.2fx)\n", batch4_qps,
              batch4_qps / serial_qps);
  std::printf("  batch=16 %8.2f qps  (%.2fx)\n", batch16_qps,
              batch16_qps / serial_qps);
  const BatchQueryStats& bstats = batch.last_stats();
  std::printf("  [batch=16 stats] pushes=%llu pops=%llu lanes/pop=%.2f "
              "dense=%llu (%.1f%%) edges=%llu\n",
              static_cast<unsigned long long>(bstats.push_operations),
              static_cast<unsigned long long>(bstats.shared_node_pops),
              static_cast<double>(bstats.push_operations) /
                  static_cast<double>(std::max<std::uint64_t>(
                      1, bstats.shared_node_pops)),
              static_cast<unsigned long long>(bstats.dense_lane_pushes),
              100.0 * static_cast<double>(bstats.dense_lane_pushes) /
                  static_cast<double>(std::max<std::uint64_t>(
                      1, bstats.push_operations)),
              static_cast<unsigned long long>(bstats.edge_traversals));
  std::printf("  [phases, last chunk vs serial total] hop %.3fs/%.3fs  "
              "omfwd %.3fs/%.3fs  remedy %.3fs/%.3fs\n",
              bstats.hop_seconds, serial_hop, bstats.omfwd_seconds,
              serial_omfwd, bstats.remedy_seconds, serial_remedy);
  std::printf("  bit_identical=%s  max_achieved_epsilon=%.6g (<= %.6g: %s)\n",
              bit_identical ? "true" : "false", max_achieved_epsilon,
              config.epsilon, epsilon_ok ? "ok" : "VIOLATED");

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"batched_vs_serial\",\n"
                 "  \"graph\": {\"nodes\": %u, \"edges\": %llu,"
                 " \"generator\": \"chung_lu_powerlaw_2.1\"},\n"
                 "  \"config\": {\"alpha\": %g, \"epsilon\": %g,"
                 " \"delta\": %g, \"p_f\": %g, \"num_hops\": %u,"
                 " \"walk_scale\": %g},\n"
                 "  \"sources\": %zu,\n"
                 "  \"serial_qps\": %.4f,\n"
                 "  \"batch4_qps\": %.4f,\n"
                 "  \"batch16_qps\": %.4f,\n"
                 "  \"speedup_batch4\": %.4f,\n"
                 "  \"speedup_batch16\": %.4f,\n"
                 "  \"bit_identical\": %s,\n"
                 "  \"configured_epsilon\": %.6g,\n"
                 "  \"max_achieved_epsilon\": %.6g\n"
                 "}\n",
                 graph.num_nodes(),
                 static_cast<unsigned long long>(graph.num_edges()),
                 config.alpha, config.epsilon, config.delta, config.p_f,
                 options.num_hops, options.walk_scale,
                 sources.size(), serial_qps, batch4_qps, batch16_qps,
                 batch4_qps / serial_qps, batch16_qps / serial_qps,
                 bit_identical ? "true" : "false", config.epsilon,
                 max_achieved_epsilon);
    std::fclose(f);
    std::printf("  record written to %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "[bench_serve] cannot write %s\n",
                 json_path.c_str());
    return 2;
  }
  return (bit_identical && epsilon_ok && batch_wins) ? 0 : 1;
}

// Times one solver mode (thunk called once per source) over `reps`
// repetitions, best-of (same rationale as BatchQps).
template <typename PerSourceFn>
double ModeQps(const std::vector<NodeId>& sources, int reps,
               PerSourceFn&& per_source) {
  double best_seconds = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    for (NodeId s : sources) per_source(s, rep == 0);
    const double seconds = timer.ElapsedSeconds();
    if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
  }
  return static_cast<double>(sources.size()) / best_seconds;
}

int RunTopKRecord(const std::string& json_path) {
  const NodeId nodes =
      static_cast<NodeId>(GetEnvInt("RESACC_TOPK_NODES", 5000));
  const std::uint64_t edges =
      static_cast<std::uint64_t>(GetEnvInt("RESACC_TOPK_EDGES", 1000000));
  const std::size_t num_sources =
      static_cast<std::size_t>(GetEnvInt("RESACC_TOPK_SOURCES", 32));

  std::fprintf(stderr, "[bench_serve] generating top-k bench graph "
               "(n=%u, m=%llu)...\n", nodes,
               static_cast<unsigned long long>(edges));
  const Graph graph = ChungLuPowerLaw(nodes, edges, 2.1, /*seed=*/7);
  // Remedy-dominant configuration: a loose r_max^f leaves substantial
  // residue for the walk phase and a tight delta makes the Theorem-3 walk
  // count expensive — exactly the work the separation certificate (or the
  // residue-draining fallback) avoids.
  RwrConfig config;
  config.alpha = GetEnvDouble("RESACC_TOPK_ALPHA", 0.15);
  config.epsilon = 0.5;
  config.delta = GetEnvDouble("RESACC_TOPK_DELTA", 1e-5);
  config.p_f = 1e-3;
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = 7;
  ResAccOptions options;
  options.num_hops =
      static_cast<std::uint32_t>(GetEnvInt("RESACC_TOPK_HOPS", 1));
  options.walk_scale = GetEnvDouble("RESACC_TOPK_WALK_SCALE", 1.0);
  options.r_max_f = GetEnvDouble("RESACC_TOPK_RMAXF", 1e-5);
  // The per-stage profit guard only credits a stage with the walks its own
  // residue drain saves; it cannot see that *finishing* refinement skips the
  // whole remedy phase. In this walk-dominant regime that marginal account
  // undervalues the last stages right before separation, so the smoke runs
  // with a looser slack than the library default — the certificate is what
  // this bench exists to exercise.
  options.topk.profit_slack =
      GetEnvDouble("RESACC_TOPK_PROFIT_SLACK", 256.0);

  ResAccSolver solver(graph, config, options);
  const std::vector<NodeId> sources =
      PickUniformSources(graph, num_sources, /*seed=*/7 ^ 0x70b1);
  const int reps =
      std::max(1, static_cast<int>(GetEnvInt("RESACC_TOPK_REPS", 3)));

  const double full_qps = ModeQps(sources, reps, [&](NodeId s, bool) {
    const ControlledQueryResult r = solver.QueryControlled(s, QueryControl{});
    if (!r.status.ok()) {
      std::fprintf(stderr, "[bench_serve] full query failed: %s\n",
                   r.status.ToString().c_str());
    }
  });

  std::vector<TopKResult> topk10(sources.size());
  std::vector<TopKResult> topk100(sources.size());
  std::size_t next = 0;
  const double topk10_qps = ModeQps(sources, reps, [&](NodeId s, bool first) {
    TopKResult r = solver.QueryTopK(s, 10);
    if (first) topk10[next++] = std::move(r);
  });
  next = 0;
  const double topk100_qps = ModeQps(sources, reps, [&](NodeId s, bool first) {
    TopKResult r = solver.QueryTopK(s, 100);
    if (first) topk100[next++] = std::move(r);
  });

  // Certificate audit against power-iteration ground truth on a source
  // subsample (full coverage would dominate the smoke's runtime): every
  // certified entry's [lower, upper] must bracket the true score, and no
  // excluded node may exceed outsider_upper — the Definition-1 exactness
  // the certificate claims, with no failure probability.
  const std::size_t verify = std::min(
      sources.size(),
      static_cast<std::size_t>(GetEnvInt("RESACC_TOPK_VERIFY", 8)));
  GroundTruthCache truth(graph, config);
  bool cert_ok = true;
  std::size_t certified10 = 0, certified100 = 0;
  for (const TopKResult& r : topk10) certified10 += r.certified ? 1 : 0;
  for (const TopKResult& r : topk100) certified100 += r.certified ? 1 : 0;
  for (std::size_t i = 0; i < verify; ++i) {
    const std::vector<Score>& exact = truth.Get(sources[i]);
    for (const std::vector<TopKResult>* batch : {&topk10, &topk100}) {
      const TopKResult& r = (*batch)[i];
      if (!r.certified) continue;
      std::vector<bool> listed(exact.size(), false);
      for (const TopKEntry& e : r.entries) {
        listed[e.node] = true;
        if (exact[e.node] < e.lower - 1e-12 ||
            exact[e.node] > e.upper + 1e-12) {
          cert_ok = false;
          std::fprintf(stderr,
                       "[bench_serve] CERT VIOLATION source=%u node=%u "
                       "true=%.3e not in [%.3e, %.3e]\n",
                       sources[i], e.node, exact[e.node], e.lower, e.upper);
        }
      }
      for (NodeId v = 0; v < static_cast<NodeId>(exact.size()); ++v) {
        if (!listed[v] && exact[v] > r.outsider_upper + 1e-12) {
          cert_ok = false;
          std::fprintf(stderr,
                       "[bench_serve] CERT VIOLATION source=%u excluded "
                       "node=%u true=%.3e > outsider_upper=%.3e\n",
                       sources[i], v, exact[v], r.outsider_upper);
        }
      }
    }
  }

  const bool topk_wins = topk10_qps > full_qps;
  std::printf("top-k vs full-vector (ResAcc, n=%u, m=%llu, %zu sources, "
              "delta=%g, r_max_f=%g):\n",
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()),
              sources.size(), config.delta, options.r_max_f);
  std::printf("  full      %8.2f qps\n", full_qps);
  std::printf("  topk@10   %8.2f qps  (%.2fx, %zu/%zu certified)\n",
              topk10_qps, topk10_qps / full_qps, certified10,
              sources.size());
  std::printf("  topk@100  %8.2f qps  (%.2fx, %zu/%zu certified)\n",
              topk100_qps, topk100_qps / full_qps, certified100,
              sources.size());
  std::printf("  certificates vs ground truth (%zu sources): %s\n", verify,
              cert_ok ? "ok" : "VIOLATED");

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"topk_vs_full\",\n"
                 "  \"graph\": {\"nodes\": %u, \"edges\": %llu,"
                 " \"generator\": \"chung_lu_powerlaw_2.1\"},\n"
                 "  \"config\": {\"alpha\": %g, \"epsilon\": %g,"
                 " \"delta\": %g, \"p_f\": %g, \"num_hops\": %u,"
                 " \"walk_scale\": %g, \"r_max_f\": %g,"
                 " \"profit_slack\": %g},\n"
                 "  \"sources\": %zu,\n"
                 "  \"full_qps\": %.4f,\n"
                 "  \"topk10_qps\": %.4f,\n"
                 "  \"topk100_qps\": %.4f,\n"
                 "  \"speedup_topk10\": %.4f,\n"
                 "  \"speedup_topk100\": %.4f,\n"
                 "  \"certified_topk10\": %zu,\n"
                 "  \"certified_topk100\": %zu,\n"
                 "  \"verified_sources\": %zu,\n"
                 "  \"certificates_ok\": %s\n"
                 "}\n",
                 graph.num_nodes(),
                 static_cast<unsigned long long>(graph.num_edges()),
                 config.alpha, config.epsilon, config.delta, config.p_f,
                 options.num_hops, options.walk_scale, options.r_max_f,
                 options.topk.profit_slack,
                 sources.size(), full_qps, topk10_qps, topk100_qps,
                 topk10_qps / full_qps, topk100_qps / full_qps, certified10,
                 certified100, verify, cert_ok ? "true" : "false");
    std::fclose(f);
    std::printf("  record written to %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "[bench_serve] cannot write %s\n",
                 json_path.c_str());
    return 2;
  }
  return (cert_ok && topk_wins) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    constexpr const char kBatchFlag[] = "--batch_json=";
    if (std::strncmp(argv[i], kBatchFlag, sizeof(kBatchFlag) - 1) == 0) {
      return RunBatchRecord(argv[i] + sizeof(kBatchFlag) - 1);
    }
    constexpr const char kTopKFlag[] = "--topk_json=";
    if (std::strncmp(argv[i], kTopKFlag, sizeof(kTopKFlag) - 1) == 0) {
      return RunTopKRecord(argv[i] + sizeof(kTopKFlag) - 1);
    }
  }
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("bench_serve: QueryService under Zipfian load", env);

  const std::size_t queries = static_cast<std::size_t>(
      GetEnvInt("RESACC_SERVE_QUERIES", 256));
  const std::size_t clients = static_cast<std::size_t>(
      GetEnvInt("RESACC_SERVE_CLIENTS", 8));
  const double theta = GetEnvDouble("RESACC_SERVE_ZIPF", 0.99);
  // top_k > 0 now selects the serve layer's first-class top-k mode
  // (QueryRequest::top_k), so the default stays a full-vector bench.
  const std::size_t top_k =
      static_cast<std::size_t>(GetEnvInt("RESACC_SERVE_TOPK", 0));

  const auto datasets = LoadDatasets({"dblp-sim"}, env);
  const Graph& graph = datasets[0].graph;
  const RwrConfig config = BenchConfig(graph, env.seed);

  ZipfianSources workload(graph.num_nodes(), theta, env.seed ^ 0x21Af);
  Rng rng(env.seed);
  const std::vector<NodeId> sources = workload.Sample(queries, rng);

  std::printf("%s: %zu queries, %zu clients, zipf theta=%.2f, top-%zu\n\n",
              DatasetLabel(datasets[0]).c_str(), queries, clients, theta,
              top_k);

  ServeOptions cold;
  cold.num_workers = ThreadPool::DefaultThreads();
  cold.cache_bytes = 0;
  cold.coalesce = false;

  ServeOptions warm = cold;
  warm.cache_bytes = static_cast<std::size_t>(256) << 20;
  warm.coalesce = true;

  const PhaseResult cold_result =
      RunPhase(graph, config, cold, sources, clients, top_k);
  const PhaseResult warm_result =
      RunPhase(graph, config, warm, sources, clients, top_k);

  TextTable table(
      {"phase", "qps", "p50 ms", "p95 ms", "p99 ms", "hit rate", "saved"});
  AddRow(table, "cold (no cache)", cold_result, queries);
  AddRow(table, "warm (cache+coalesce)", warm_result, queries);
  table.Print(stdout);

  std::printf("\nwarm speedup: %.2fx  (saved = completed - computed: "
              "queries answered without running the solver)\n",
              cold_result.seconds / warm_result.seconds);
  std::printf("\nserver stats (warm phase):\n%s\n",
              warm_result.stats.ToString().c_str());
  return 0;
}

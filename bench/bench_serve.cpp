// Serving benchmark: QueryService under a closed-loop Zipfian workload.
//
// Replays the same skewed source distribution against a cold service
// (cache disabled) and a warm service (cache + coalescing on) and reports
// QPS, p50/p95/p99 latency, and the cache hit rate — the quantitative
// case for the serving layer: with zero index to build (the paper's
// index-free property), reuse across repeated sources is pure win.
//
// Extra env knobs on top of bench_common's:
//   RESACC_SERVE_QUERIES  queries per phase            (default 256)
//   RESACC_SERVE_CLIENTS  concurrent client threads    (default 8)
//   RESACC_SERVE_ZIPF     Zipfian theta                (default 0.99)
//   RESACC_SERVE_TOPK     top-k per query              (default 10)
//
// With `--batch_json=PATH` the binary instead records the batched-vs-serial
// solver comparison (BatchSolver against ResAccSolver on the 1M-edge bench
// graph): QPS at batch sizes {1 (serial), 4, 16}, a per-source bit-identity
// check, and the per-lane epsilon accounting. The JSON record is the CI
// artifact; the process exits non-zero unless every batched score is
// bit-identical to serial, every lane's achieved epsilon is within the
// configured epsilon, and batch >= 4 beats serial throughput.
//
// The batch record uses its own configuration rather than BenchConfig: a
// dense graph (m/n = 200, the serving regime batching is built for — the
// shared rounds amortize one CSR row read across every lane that
// scheduled the node, so the win scales with row reuse) and a full query
// config recorded verbatim in the JSON. Knobs:
//   RESACC_BATCH_NODES       graph nodes               (default 5000)
//   RESACC_BATCH_EDGES       graph edges               (default 1000000)
//   RESACC_BATCH_SOURCES     query sources             (default 32)
//   RESACC_BATCH_ALPHA       restart probability       (default 0.15)
//   RESACC_BATCH_DELTA       RWR threshold delta       (default 0.01)
//   RESACC_BATCH_HOPS        h-HopFWD hop count        (default 1)
//   RESACC_BATCH_WALK_SCALE  remedy walk scale         (default 0.01)
//   RESACC_BATCH_REPS        best-of repetitions       (default 3)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "resacc/core/batch_solver.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/sources.h"
#include "resacc/graph/generators.h"
#include "resacc/serve/query_service.h"
#include "resacc/serve/workload.h"
#include "resacc/util/stats.h"

namespace {

using namespace resacc;
using namespace resacc::bench;

struct PhaseResult {
  double seconds = 0.0;
  ServerStats stats;
};

PhaseResult RunPhase(const Graph& graph, const RwrConfig& config,
                     const ServeOptions& options,
                     const std::vector<NodeId>& sources,
                     std::size_t num_clients, std::size_t top_k) {
  QueryService service(graph, config, options);
  Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      // Client c issues sources {c, c + C, c + 2C, ...}, closed-loop.
      for (std::size_t i = c; i < sources.size(); i += num_clients) {
        QueryRequest request;
        request.source = sources[i];
        request.top_k = top_k;
        const QueryResponse response = service.Query(request);
        if (!response.status.ok()) {
          std::fprintf(stderr, "[bench_serve] query failed: %s\n",
                       response.status.ToString().c_str());
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  PhaseResult result;
  result.seconds = wall.ElapsedSeconds();
  result.stats = service.Snapshot();
  return result;
}

void AddRow(TextTable& table, const char* phase, const PhaseResult& r,
            std::size_t queries) {
  char qps[32], p50[32], p95[32], p99[32], hit[32], saved[32];
  std::snprintf(qps, sizeof(qps), "%.1f",
                static_cast<double>(queries) / r.seconds);
  std::snprintf(p50, sizeof(p50), "%.2f", r.stats.latency.p50 * 1e3);
  std::snprintf(p95, sizeof(p95), "%.2f", r.stats.latency.p95 * 1e3);
  std::snprintf(p99, sizeof(p99), "%.2f", r.stats.latency.p99 * 1e3);
  std::snprintf(hit, sizeof(hit), "%.1f%%", r.stats.CacheHitRate() * 100);
  std::snprintf(saved, sizeof(saved), "%llu",
                static_cast<unsigned long long>(r.stats.completed -
                                                r.stats.computed));
  table.AddRow({phase, qps, p50, p95, p99, hit, saved});
}

// Times `solver.QueryAllChunked(sources, batch_size)` over `reps`
// repetitions and returns the best rep's QPS (the solvers are
// deterministic, so every rep computes identical results; best-of-N
// suppresses scheduler/VM interference, and serial and batched runs get
// the same treatment).
double BatchQps(BatchSolver& solver, const std::vector<NodeId>& sources,
                std::size_t batch_size, int reps,
                std::vector<ControlledQueryResult>* results) {
  double best_seconds = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    auto out = solver.QueryAllChunked(sources, batch_size);
    const double seconds = timer.ElapsedSeconds();
    if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
    if (results != nullptr && rep == 0) *results = std::move(out);
  }
  return static_cast<double>(sources.size()) / best_seconds;
}

int RunBatchRecord(const std::string& json_path) {
  const NodeId nodes =
      static_cast<NodeId>(GetEnvInt("RESACC_BATCH_NODES", 5000));
  const std::uint64_t edges =
      static_cast<std::uint64_t>(GetEnvInt("RESACC_BATCH_EDGES", 1000000));
  const std::size_t num_sources =
      static_cast<std::size_t>(GetEnvInt("RESACC_BATCH_SOURCES", 32));

  std::fprintf(stderr, "[bench_serve] generating batch bench graph "
               "(n=%u, m=%llu)...\n", nodes,
               static_cast<unsigned long long>(edges));
  const Graph graph = ChungLuPowerLaw(nodes, edges, 2.1, /*seed=*/7);
  RwrConfig config;
  config.alpha = GetEnvDouble("RESACC_BATCH_ALPHA", 0.15);
  config.epsilon = 0.5;
  config.delta = GetEnvDouble("RESACC_BATCH_DELTA", 0.01);
  config.p_f = 1e-3;
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = 7;
  ResAccOptions options;
  options.num_hops =
      static_cast<std::uint32_t>(GetEnvInt("RESACC_BATCH_HOPS", 1));
  options.walk_scale = GetEnvDouble("RESACC_BATCH_WALK_SCALE", 0.01);

  ResAccSolver serial(graph, config, options);
  BatchSolver batch(graph, config, options);
  const std::vector<NodeId> sources =
      PickUniformSources(graph, num_sources, /*seed=*/7 ^ 0xba7c);

  const int reps =
      std::max(1, static_cast<int>(GetEnvInt("RESACC_BATCH_REPS", 3)));

  std::vector<ControlledQueryResult> serial_results;
  double serial_hop = 0.0, serial_omfwd = 0.0, serial_remedy = 0.0;
  double serial_best_seconds = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<ControlledQueryResult> rep_results;
    rep_results.reserve(sources.size());
    double hop = 0.0, omfwd = 0.0, remedy = 0.0;
    Timer serial_timer;
    for (NodeId s : sources) {
      rep_results.push_back(serial.QueryControlled(s, QueryControl{}));
      hop += serial.last_stats().hhop_seconds;
      omfwd += serial.last_stats().omfwd_seconds;
      remedy += serial.last_stats().remedy_seconds;
    }
    const double seconds = serial_timer.ElapsedSeconds();
    if (rep == 0) serial_results = std::move(rep_results);
    if (rep == 0 || seconds < serial_best_seconds) {
      serial_best_seconds = seconds;
      serial_hop = hop;
      serial_omfwd = omfwd;
      serial_remedy = remedy;
    }
  }
  const double serial_qps =
      static_cast<double>(sources.size()) / serial_best_seconds;

  std::vector<ControlledQueryResult> batch4_results;
  std::vector<ControlledQueryResult> batch16_results;
  const double batch4_qps =
      BatchQps(batch, sources, 4, reps, &batch4_results);
  const double batch16_qps =
      BatchQps(batch, sources, 16, reps, &batch16_results);

  bool bit_identical = true;
  double max_achieved_epsilon = 0.0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    for (const auto* results : {&batch4_results, &batch16_results}) {
      const ControlledQueryResult& r = (*results)[i];
      max_achieved_epsilon = std::max(max_achieved_epsilon,
                                      r.achieved_epsilon);
      if (r.scores != serial_results[i].scores) {
        bit_identical = false;
        std::fprintf(stderr,
                     "[bench_serve] MISMATCH at source %u (batch size %zu)\n",
                     sources[i], results == &batch4_results ? 4ul : 16ul);
      }
    }
  }
  const bool epsilon_ok = max_achieved_epsilon <= config.epsilon;
  const bool batch_wins = batch4_qps > serial_qps;

  std::printf("batched-vs-serial (ResAcc, n=%u, m=%llu, %zu sources):\n",
              graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()),
              sources.size());
  std::printf("  serial   %8.2f qps\n", serial_qps);
  std::printf("  batch=4  %8.2f qps  (%.2fx)\n", batch4_qps,
              batch4_qps / serial_qps);
  std::printf("  batch=16 %8.2f qps  (%.2fx)\n", batch16_qps,
              batch16_qps / serial_qps);
  const BatchQueryStats& bstats = batch.last_stats();
  std::printf("  [batch=16 stats] pushes=%llu pops=%llu lanes/pop=%.2f "
              "dense=%llu (%.1f%%) edges=%llu\n",
              static_cast<unsigned long long>(bstats.push_operations),
              static_cast<unsigned long long>(bstats.shared_node_pops),
              static_cast<double>(bstats.push_operations) /
                  static_cast<double>(std::max<std::uint64_t>(
                      1, bstats.shared_node_pops)),
              static_cast<unsigned long long>(bstats.dense_lane_pushes),
              100.0 * static_cast<double>(bstats.dense_lane_pushes) /
                  static_cast<double>(std::max<std::uint64_t>(
                      1, bstats.push_operations)),
              static_cast<unsigned long long>(bstats.edge_traversals));
  std::printf("  [phases, last chunk vs serial total] hop %.3fs/%.3fs  "
              "omfwd %.3fs/%.3fs  remedy %.3fs/%.3fs\n",
              bstats.hop_seconds, serial_hop, bstats.omfwd_seconds,
              serial_omfwd, bstats.remedy_seconds, serial_remedy);
  std::printf("  bit_identical=%s  max_achieved_epsilon=%.6g (<= %.6g: %s)\n",
              bit_identical ? "true" : "false", max_achieved_epsilon,
              config.epsilon, epsilon_ok ? "ok" : "VIOLATED");

  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"batched_vs_serial\",\n"
                 "  \"graph\": {\"nodes\": %u, \"edges\": %llu,"
                 " \"generator\": \"chung_lu_powerlaw_2.1\"},\n"
                 "  \"config\": {\"alpha\": %g, \"epsilon\": %g,"
                 " \"delta\": %g, \"p_f\": %g, \"num_hops\": %u,"
                 " \"walk_scale\": %g},\n"
                 "  \"sources\": %zu,\n"
                 "  \"serial_qps\": %.4f,\n"
                 "  \"batch4_qps\": %.4f,\n"
                 "  \"batch16_qps\": %.4f,\n"
                 "  \"speedup_batch4\": %.4f,\n"
                 "  \"speedup_batch16\": %.4f,\n"
                 "  \"bit_identical\": %s,\n"
                 "  \"configured_epsilon\": %.6g,\n"
                 "  \"max_achieved_epsilon\": %.6g\n"
                 "}\n",
                 graph.num_nodes(),
                 static_cast<unsigned long long>(graph.num_edges()),
                 config.alpha, config.epsilon, config.delta, config.p_f,
                 options.num_hops, options.walk_scale,
                 sources.size(), serial_qps, batch4_qps, batch16_qps,
                 batch4_qps / serial_qps, batch16_qps / serial_qps,
                 bit_identical ? "true" : "false", config.epsilon,
                 max_achieved_epsilon);
    std::fclose(f);
    std::printf("  record written to %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "[bench_serve] cannot write %s\n",
                 json_path.c_str());
    return 2;
  }
  return (bit_identical && epsilon_ok && batch_wins) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    constexpr const char kFlag[] = "--batch_json=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      return RunBatchRecord(argv[i] + sizeof(kFlag) - 1);
    }
  }
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("bench_serve: QueryService under Zipfian load", env);

  const std::size_t queries = static_cast<std::size_t>(
      GetEnvInt("RESACC_SERVE_QUERIES", 256));
  const std::size_t clients = static_cast<std::size_t>(
      GetEnvInt("RESACC_SERVE_CLIENTS", 8));
  const double theta = GetEnvDouble("RESACC_SERVE_ZIPF", 0.99);
  const std::size_t top_k =
      static_cast<std::size_t>(GetEnvInt("RESACC_SERVE_TOPK", 10));

  const auto datasets = LoadDatasets({"dblp-sim"}, env);
  const Graph& graph = datasets[0].graph;
  const RwrConfig config = BenchConfig(graph, env.seed);

  ZipfianSources workload(graph.num_nodes(), theta, env.seed ^ 0x21Af);
  Rng rng(env.seed);
  const std::vector<NodeId> sources = workload.Sample(queries, rng);

  std::printf("%s: %zu queries, %zu clients, zipf theta=%.2f, top-%zu\n\n",
              DatasetLabel(datasets[0]).c_str(), queries, clients, theta,
              top_k);

  ServeOptions cold;
  cold.num_workers = ThreadPool::DefaultThreads();
  cold.cache_bytes = 0;
  cold.coalesce = false;

  ServeOptions warm = cold;
  warm.cache_bytes = static_cast<std::size_t>(256) << 20;
  warm.coalesce = true;

  const PhaseResult cold_result =
      RunPhase(graph, config, cold, sources, clients, top_k);
  const PhaseResult warm_result =
      RunPhase(graph, config, warm, sources, clients, top_k);

  TextTable table(
      {"phase", "qps", "p50 ms", "p95 ms", "p99 ms", "hit rate", "saved"});
  AddRow(table, "cold (no cache)", cold_result, queries);
  AddRow(table, "warm (cache+coalesce)", warm_result, queries);
  table.Print(stdout);

  std::printf("\nwarm speedup: %.2fx  (saved = completed - computed: "
              "queries answered without running the solver)\n",
              cold_result.seconds / warm_result.seconds);
  std::printf("\nserver stats (warm phase):\n%s\n",
              warm_result.stats.ToString().c_str());
  return 0;
}

// Reproduces Table III: average SSRWR query time of every index-free
// algorithm (Power, FWD, MC, FORA, TopPPR, ResAcc) on each dataset
// stand-in. The paper's shape: ResAcc fastest everywhere (2-4x vs FORA),
// Power slowest by orders of magnitude.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "resacc/algo/fora.h"
#include "resacc/algo/forward_search_solver.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/algo/power.h"
#include "resacc/algo/topppr.h"
#include "resacc/core/resacc_solver.h"

int main() {
  using namespace resacc;
  using namespace resacc::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("Table III: SSRWR query time, index-free algorithms", env);

  const auto datasets = LoadDatasets(
      {"dblp-sim", "webstan-sim", "pokec-sim", "lj-sim", "orkut-sim",
       "twitter-sim", "friendster-sim"},
      env);

  TextTable table({"Dataset", "Power", "FWD", "MC", "FORA", "TopPPR",
                   "ResAcc", "speedup vs FORA"});
  for (const auto& ds : datasets) {
    const RwrConfig config = BenchConfig(ds.graph, env.seed);

    // Power as ground-truth generator: tolerance 1e-9 as a practical
    // stand-in for the paper's convergence criterion.
    PowerIteration power(ds.graph, config, 1e-9);
    // FWD at the paper's r_max^f = 1e-12.
    ForwardSearchSolver fwd(ds.graph, config, 1e-12);
    MonteCarlo mc(ds.graph, config);
    Fora fora(ds.graph, config, {});
    TopPprOptions topppr_options;
    topppr_options.top_k = 100000;  // the paper's SSRWR adaptation
    TopPpr topppr(ds.graph, config, topppr_options);
    ResAccOptions resacc_options;
    resacc_options.num_hops =
        static_cast<std::uint32_t>(ds.spec.sim_hops);
    ResAccSolver resacc(ds.graph, config, resacc_options);

    const double t_power = AverageQuerySeconds(power, ds.sources);
    const double t_fwd = AverageQuerySeconds(fwd, ds.sources);
    const double t_mc = AverageQuerySeconds(mc, ds.sources);
    const double t_fora = AverageQuerySeconds(fora, ds.sources);
    const double t_topppr = AverageQuerySeconds(topppr, ds.sources);
    const double t_resacc = AverageQuerySeconds(resacc, ds.sources);

    table.AddRow({DatasetLabel(ds), FmtSeconds(t_power), FmtSeconds(t_fwd),
                  FmtSeconds(t_mc), FmtSeconds(t_fora),
                  FmtSeconds(t_topppr), FmtSeconds(t_resacc),
                  Fmt(t_fora / t_resacc, 3) + "x"});
  }
  table.Print(stdout);
  std::printf(
      "\npaper reference (Table III, seconds, full-size graphs):\n"
      "  DBLP    Power 76.6   FWD 2.60   MC 19.2   FORA 1.09   TopPPR 1.03 "
      "  ResAcc 0.51\n"
      "  Twitter Power 68566  FWD 721    MC 8389   FORA 979.5  TopPPR 1673 "
      "  ResAcc 274.7\n");
  return 0;
}

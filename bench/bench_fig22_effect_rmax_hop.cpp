// Reproduces Appendix H (Figure 22): the effect of r_max^hop in
// {1e-7 .. 1e-14} on ResAcc's query time, absolute error, and NDCG, on
// the DBLP stand-in. Paper shape: non-monotonic query time (a sweet spot
// around 1e-11), accuracy best at the smallest threshold, NDCG always 1.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/eval/metrics.h"

int main() {
  using namespace resacc;
  using namespace resacc::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("Figure 22: effect of r_max^hop in ResAcc", env);

  const auto datasets = LoadDatasets({"dblp-sim"}, env);
  const auto& ds = datasets[0];
  const RwrConfig config = BenchConfig(ds.graph, env.seed);
  GroundTruthCache truth(ds.graph, config);

  TextTable table({"r_max^hop", "avg query", "h-hop pushes", "avg abs err",
                   "ndcg@1000"});
  for (int exponent = 7; exponent <= 14; ++exponent) {
    ResAccOptions options;
    // h = sim_hops + 1 here: with the scale-appropriate h the subgraph is
    // tiny and r_max^hop barely matters; one extra hop restores the
    // paper's tension between accumulating-phase cost and frontier mass.
    options.num_hops = static_cast<std::uint32_t>(ds.spec.sim_hops) + 1;
    options.max_hop_set_fraction = 0.0;  // no adaptive cap in this sweep
    options.r_max_hop = std::pow(10.0, -exponent);
    ResAccSolver resacc(ds.graph, config, options);

    double seconds = 0.0;
    double error = 0.0;
    double ndcg = 0.0;
    std::uint64_t pushes = 0;
    for (NodeId s : ds.sources) {
      Timer t;
      const std::vector<Score> estimate = resacc.Query(s);
      seconds += t.ElapsedSeconds();
      pushes += resacc.last_stats().hhop.push.push_operations;
      const std::vector<Score>& exact = truth.Get(s);
      error += MeanAbsError(estimate, exact);
      ndcg += NdcgAtK(estimate, exact, 1000);
    }
    const double inv = 1.0 / static_cast<double>(ds.sources.size());
    char label[32];
    std::snprintf(label, sizeof(label), "1e-%d", exponent);
    table.AddRow({label, FmtSeconds(seconds * inv),
                  std::to_string(pushes / ds.sources.size()),
                  Fmt(error * inv), Fmt(ndcg * inv, 6)});
  }
  table.Print(stdout);
  return 0;
}

// Reproduces Appendix C (Figures 14-15): performance when the query nodes
// are the highest-out-degree "hub" nodes (20 per dataset). Paper shape:
// ResAcc remains the fastest and most accurate — it is robust to hub
// sources, where forward-push frontiers explode.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "resacc/algo/fora.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/algo/topppr.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/eval/metrics.h"
#include "resacc/eval/sources.h"

int main() {
  using namespace resacc;
  using namespace resacc::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("Figures 14-15: highest-out-degree query nodes", env);

  const auto datasets = LoadDatasets({"dblp-sim", "twitter-sim"}, env);
  for (const auto& ds : datasets) {
    const RwrConfig config = BenchConfig(ds.graph, env.seed);
    const std::vector<NodeId> hubs = PickTopOutDegreeSources(
        ds.graph, std::min<std::size_t>(20, env.sources * 3));
    GroundTruthCache truth(ds.graph, config);

    MonteCarlo mc(ds.graph, config);
    Fora fora(ds.graph, config, {});
    TopPpr topppr(ds.graph, config, {});
    ResAccOptions resacc_options;
    resacc_options.num_hops =
        static_cast<std::uint32_t>(ds.spec.sim_hops);
    ResAccSolver resacc(ds.graph, config, resacc_options);

    struct Entry {
      const char* label;
      SsrwrAlgorithm* algo;
    };
    std::printf("%s, %zu hub sources (max out-degree %u):\n",
                DatasetLabel(ds).c_str(), hubs.size(),
                ds.graph.OutDegree(hubs[0]));
    TextTable table({"algorithm", "avg query time", "avg abs error",
                     "ndcg@1000"});
    for (const Entry& entry :
         {Entry{"MC", &mc}, Entry{"FORA", &fora}, Entry{"TopPPR", &topppr},
          Entry{"ResAcc", &resacc}}) {
      double seconds = 0.0;
      double error = 0.0;
      double ndcg = 0.0;
      for (NodeId s : hubs) {
        Timer t;
        const std::vector<Score> estimate = entry.algo->Query(s);
        seconds += t.ElapsedSeconds();
        const std::vector<Score>& exact = truth.Get(s);
        error += MeanAbsError(estimate, exact);
        ndcg += NdcgAtK(estimate, exact, 1000);
      }
      const double inv = 1.0 / static_cast<double>(hubs.size());
      table.AddRow({entry.label, FmtSeconds(seconds * inv),
                    Fmt(error * inv), Fmt(ndcg * inv, 6)});
    }
    table.Print(stdout);
    std::printf("\n");
  }
  return 0;
}

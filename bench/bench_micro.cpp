// Google-benchmark micro suite for the library's kernels: push operations,
// random walks, BFS hop layers, generators, and the dense/sparse LA
// substrate. These guard the constants behind the paper-level numbers.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "resacc/core/forward_push.h"
#include "resacc/core/random_walk.h"
#include "resacc/core/walk_engine.h"
#include "resacc/graph/generators.h"
#include "resacc/util/timer.h"
#include "resacc/graph/hop_layers.h"
#include "resacc/la/dense_matrix.h"
#include "resacc/la/sparse_matrix.h"
#include "resacc/util/alias_table.h"
#include "resacc/util/rng.h"

namespace {

using namespace resacc;

const Graph& BenchGraph() {
  static const Graph& graph =
      *new Graph(ChungLuPowerLaw(50000, 500000, 2.2, 7));
  return graph;
}

RwrConfig BenchConfig() {
  RwrConfig config = RwrConfig::ForGraphSize(BenchGraph().num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;
  return config;
}

void BM_ForwardSearch(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const RwrConfig config = BenchConfig();
  const Score r_max = std::pow(10.0, -static_cast<double>(state.range(0)));
  PushState push_state(g.num_nodes());
  std::uint64_t pushes = 0;
  for (auto _ : state) {
    push_state.Reset();
    push_state.SetResidue(0, 1.0);
    const NodeId seeds[] = {NodeId{0}};
    pushes += RunForwardSearch(g, config, 0, r_max, seeds, false, push_state)
                  .push_operations;
  }
  state.counters["pushes/iter"] = benchmark::Counter(
      static_cast<double>(pushes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ForwardSearch)->Arg(5)->Arg(6)->Arg(7);

void BM_RandomWalks(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const RwrConfig config = BenchConfig();
  Rng rng(3);
  WalkStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RandomWalkTerminal(g, config, 0, 0, rng, stats));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(stats.walks));
}
BENCHMARK(BM_RandomWalks);

void BM_RandomWalksGeometric(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const RwrConfig config = BenchConfig();
  const double inv_log1m_alpha = InvLogOneMinusAlpha(config.alpha);
  Rng rng(3);
  WalkStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RandomWalkTerminalGeometric(
        g, config, 0, 0, inv_log1m_alpha, rng, stats));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(stats.walks));
}
BENCHMARK(BM_RandomWalksGeometric);

// The remedy phase's walk workload: slices as RunRemedy would build them
// from a forward push on the bench graph, scaled to a fixed walk count so
// the thread sweep compares like with like.
const std::vector<WalkSlice>& RemedyBenchSlices() {
  static const std::vector<WalkSlice>& slices = *[] {
    const Graph& g = BenchGraph();
    const RwrConfig config = BenchConfig();
    auto* out = new std::vector<WalkSlice>;
    PushState state(g.num_nodes());
    state.SetResidue(0, 1.0);
    const NodeId seeds[] = {NodeId{0}};
    RunForwardSearch(g, config, 0, /*r_max=*/1e-5, seeds, false, state);
    const Score r_sum = state.ResidueSum();
    const double target_walks = 2e6;
    for (NodeId v : state.touched()) {
      const Score residue = state.residue(v);
      if (residue <= 0.0) continue;
      const std::uint64_t walks = static_cast<std::uint64_t>(
          std::ceil(residue * target_walks / r_sum));
      out->push_back(WalkSlice{v, walks,
                               residue / static_cast<Score>(walks),
                               /*stream=*/v});
    }
    return out;
  }();
  return slices;
}

void BM_RemedyWalkEngine(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const RwrConfig config = BenchConfig();
  const std::vector<WalkSlice>& slices = RemedyBenchSlices();
  WalkEngine engine(static_cast<std::size_t>(state.range(0)));
  const Rng root(17);
  std::vector<Score> scores(g.num_nodes(), 0.0);
  std::uint64_t walks = 0;
  for (auto _ : state) {
    std::fill(scores.begin(), scores.end(), 0.0);
    walks += engine.Run(g, config, 0, root, slices, scores).walks;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(walks));
}
BENCHMARK(BM_RemedyWalkEngine)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_HopLayers(benchmark::State& state) {
  const Graph& g = BenchGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeHopLayers(g, NodeId{0},
                         static_cast<std::uint32_t>(state.range(0))));
  }
}
BENCHMARK(BM_HopLayers)->Arg(1)->Arg(2)->Arg(3);

void BM_ChungLuGenerate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ChungLuPowerLaw(static_cast<NodeId>(state.range(0)),
                        static_cast<EdgeId>(state.range(0)) * 10, 2.2, 5));
  }
}
BENCHMARK(BM_ChungLuGenerate)->Arg(10000)->Arg(50000);

void BM_AliasTableSample(benchmark::State& state) {
  std::vector<double> weights(100000);
  Rng rng(1);
  for (double& w : weights) w = rng.NextDouble() + 0.01;
  const AliasTable table(weights);
  Rng sample_rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(sample_rng));
  }
}
BENCHMARK(BM_AliasTableSample);

void BM_SparseMatVec(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const SparseMatrix pt = TransitionMatrixTranspose(g);
  std::vector<double> x(g.num_nodes(), 1.0 / g.num_nodes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.MultiplyVector(x));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(pt.nnz()));
}
BENCHMARK(BM_SparseMatVec);

void BM_DenseLuFactor(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  DenseMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a.At(r, c) = rng.NextDouble();
    a.At(r, r) += static_cast<double>(n);  // diagonally dominant
  }
  for (auto _ : state) {
    DenseMatrix copy = a;
    const LuDecomposition lu(std::move(copy));
    benchmark::DoNotOptimize(lu.ok());
  }
}
BENCHMARK(BM_DenseLuFactor)->Arg(128)->Arg(512);

// Machine-readable record of the walk-engine thread sweep, for CI trend
// tracking (--walk_engine_json=PATH). Reports per-thread-count throughput,
// speedup over sequential, a bitwise comparison against the sequential
// scores (the walk_engine.h contract), and the per-step vs geometric
// single-walk sampling throughput.
int WriteWalkEngineJson(const std::string& path) {
  const Graph& g = BenchGraph();
  const RwrConfig config = BenchConfig();
  const std::vector<WalkSlice>& slices = RemedyBenchSlices();
  const Rng root(17);

  struct Sweep {
    std::size_t threads;
    double seconds;
    std::uint64_t walks;
    bool bit_identical;
  };
  std::vector<Sweep> sweeps;
  std::vector<Score> reference;
  bool all_identical = true;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    WalkEngine engine(threads);
    std::vector<Score> scores(g.num_nodes(), 0.0);
    // Warm-up run builds the pool and faults in the workspaces.
    engine.Run(g, config, 0, root, slices, scores);
    std::fill(scores.begin(), scores.end(), 0.0);
    Timer timer;
    const WalkEngineStats stats =
        engine.Run(g, config, 0, root, slices, scores);
    const double seconds = timer.ElapsedSeconds();
    if (threads == 1) reference = scores;
    const bool identical = scores == reference;
    all_identical = all_identical && identical;
    sweeps.push_back(Sweep{threads, seconds, stats.walks, identical});
  }

  const auto sampling_walks_per_sec = [&](auto&& walk_fn) {
    Rng rng(3);
    WalkStats stats;
    const std::uint64_t walks = 400000;
    Timer timer;
    for (std::uint64_t i = 0; i < walks; ++i) walk_fn(rng, stats);
    return static_cast<double>(walks) / timer.ElapsedSeconds();
  };
  const double per_step = sampling_walks_per_sec(
      [&](Rng& rng, WalkStats& stats) {
        benchmark::DoNotOptimize(
            RandomWalkTerminal(g, config, 0, 0, rng, stats));
      });
  const double inv_log1m_alpha = InvLogOneMinusAlpha(config.alpha);
  const double geometric = sampling_walks_per_sec(
      [&](Rng& rng, WalkStats& stats) {
        benchmark::DoNotOptimize(RandomWalkTerminalGeometric(
            g, config, 0, 0, inv_log1m_alpha, rng, stats));
      });

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(file,
               "{\n"
               "  \"bench\": \"walk_engine\",\n"
               "  \"graph\": {\"nodes\": %u, \"edges\": %llu},\n"
               "  \"block_walks\": %llu,\n"
               "  \"host_hardware_concurrency\": %u,\n"
               "  \"all_bit_identical\": %s,\n"
               "  \"thread_sweep\": [\n",
               g.num_nodes(),
               static_cast<unsigned long long>(g.num_edges()),
               static_cast<unsigned long long>(WalkEngine::kBlockWalks),
               std::thread::hardware_concurrency(),
               all_identical ? "true" : "false");
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    const Sweep& s = sweeps[i];
    std::fprintf(
        file,
        "    {\"walk_threads\": %zu, \"seconds\": %.6f, \"walks\": %llu, "
        "\"walks_per_sec\": %.0f, \"speedup\": %.3f, "
        "\"bit_identical\": %s}%s\n",
        s.threads, s.seconds, static_cast<unsigned long long>(s.walks),
        static_cast<double>(s.walks) / s.seconds,
        sweeps[0].seconds / s.seconds, s.bit_identical ? "true" : "false",
        i + 1 < sweeps.size() ? "," : "");
  }
  std::fprintf(file,
               "  ],\n"
               "  \"sampling\": {\"per_step_walks_per_sec\": %.0f, "
               "\"geometric_walks_per_sec\": %.0f, \"speedup\": %.3f}\n"
               "}\n",
               per_step, geometric, geometric / per_step);
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
  return all_identical ? 0 : 1;
}

}  // namespace

// BENCHMARK_MAIN plus one extra flag: --walk_engine_json=PATH runs the
// walk-engine thread sweep after the registered benchmarks and writes the
// JSON record (exit 1 if the bitwise-identity check fails — this is the CI
// smoke test's assertion).
int main(int argc, char** argv) {
  std::string json_path;
  int argc_out = 0;
  for (int i = 0; i < argc; ++i) {
    constexpr char kFlag[] = "--walk_engine_json=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      json_path = argv[i] + sizeof(kFlag) - 1;
    } else {
      argv[argc_out++] = argv[i];
    }
  }
  argc = argc_out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) return WriteWalkEngineJson(json_path);
  return 0;
}

// Google-benchmark micro suite for the library's kernels: push operations,
// random walks, BFS hop layers, generators, and the dense/sparse LA
// substrate. These guard the constants behind the paper-level numbers.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "resacc/core/forward_push.h"
#include "resacc/core/random_walk.h"
#include "resacc/core/walk_engine.h"
#include "resacc/graph/dynamic/mutable_graph_view.h"
#include "resacc/graph/generators.h"
#include "resacc/graph/graph_io.h"
#include "resacc/graph/graph_snapshot.h"
#include "resacc/serve/query_service.h"
#include "resacc/serve/workload.h"
#include "resacc/util/timer.h"
#include "resacc/graph/hop_layers.h"
#include "resacc/la/dense_matrix.h"
#include "resacc/la/sparse_matrix.h"
#include "resacc/util/alias_table.h"
#include "resacc/util/rng.h"

namespace {

using namespace resacc;

const Graph& BenchGraph() {
  static const Graph& graph =
      *new Graph(ChungLuPowerLaw(50000, 500000, 2.2, 7));
  return graph;
}

RwrConfig BenchConfig() {
  RwrConfig config = RwrConfig::ForGraphSize(BenchGraph().num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;
  return config;
}

void BM_ForwardSearch(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const RwrConfig config = BenchConfig();
  const Score r_max = std::pow(10.0, -static_cast<double>(state.range(0)));
  PushState push_state(g.num_nodes());
  std::uint64_t pushes = 0;
  for (auto _ : state) {
    push_state.Reset();
    push_state.SetResidue(0, 1.0);
    const NodeId seeds[] = {NodeId{0}};
    pushes += RunForwardSearch(g, config, 0, r_max, seeds, false, push_state)
                  .push_operations;
  }
  state.counters["pushes/iter"] = benchmark::Counter(
      static_cast<double>(pushes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ForwardSearch)->Arg(5)->Arg(6)->Arg(7);

void BM_RandomWalks(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const RwrConfig config = BenchConfig();
  Rng rng(3);
  WalkStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RandomWalkTerminal(g, config, 0, 0, rng, stats));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(stats.walks));
}
BENCHMARK(BM_RandomWalks);

void BM_RandomWalksGeometric(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const RwrConfig config = BenchConfig();
  const double inv_log1m_alpha = InvLogOneMinusAlpha(config.alpha);
  Rng rng(3);
  WalkStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RandomWalkTerminalGeometric(
        g, config, 0, 0, inv_log1m_alpha, rng, stats));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(stats.walks));
}
BENCHMARK(BM_RandomWalksGeometric);

// The remedy phase's walk workload: slices as RunRemedy would build them
// from a forward push on the bench graph, scaled to a fixed walk count so
// the thread sweep compares like with like.
const std::vector<WalkSlice>& RemedyBenchSlices() {
  static const std::vector<WalkSlice>& slices = *[] {
    const Graph& g = BenchGraph();
    const RwrConfig config = BenchConfig();
    auto* out = new std::vector<WalkSlice>;
    PushState state(g.num_nodes());
    state.SetResidue(0, 1.0);
    const NodeId seeds[] = {NodeId{0}};
    RunForwardSearch(g, config, 0, /*r_max=*/1e-5, seeds, false, state);
    const Score r_sum = state.ResidueSum();
    const double target_walks = 2e6;
    for (NodeId v : state.touched()) {
      const Score residue = state.residue(v);
      if (residue <= 0.0) continue;
      const std::uint64_t walks = static_cast<std::uint64_t>(
          std::ceil(residue * target_walks / r_sum));
      out->push_back(WalkSlice{v, walks,
                               residue / static_cast<Score>(walks),
                               /*stream=*/v});
    }
    return out;
  }();
  return slices;
}

void BM_RemedyWalkEngine(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const RwrConfig config = BenchConfig();
  const std::vector<WalkSlice>& slices = RemedyBenchSlices();
  WalkEngine engine(static_cast<std::size_t>(state.range(0)));
  const Rng root(17);
  std::vector<Score> scores(g.num_nodes(), 0.0);
  std::uint64_t walks = 0;
  for (auto _ : state) {
    std::fill(scores.begin(), scores.end(), 0.0);
    walks += engine.Run(g, config, 0, root, slices, scores).walks;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(walks));
}
BENCHMARK(BM_RemedyWalkEngine)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Graph ingest / storage: text parse (sequential and chunk-parallel),
// RESACC01 binary load, RESACC02 snapshot save + mmap load. Fixture files
// are written once per process into the system temp directory.

std::string BenchTempPath(const char* name) {
  const char* tmpdir = std::getenv("TMPDIR");
  return std::string(tmpdir != nullptr ? tmpdir : "/tmp") + "/" + name;
}

const Graph& IoGraph() {
  static const Graph& graph =
      *new Graph(ChungLuPowerLaw(20000, 200000, 2.2, 11));
  return graph;
}

const std::string& IoTextPath() {
  static const std::string& path = *[] {
    auto* p = new std::string(BenchTempPath("resacc_bench_io.txt"));
    SaveEdgeList(IoGraph(), *p);
    return p;
  }();
  return path;
}

const std::string& IoSnapshotPath() {
  static const std::string& path = *[] {
    auto* p = new std::string(BenchTempPath("resacc_bench_io.rsg"));
    SaveSnapshot(IoGraph(), *p);
    return p;
  }();
  return path;
}

void BM_LoadEdgeList(benchmark::State& state) {
  const std::string& path = IoTextPath();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    StatusOr<Graph> graph = LoadEdgeList(path, false, threads);
    benchmark::DoNotOptimize(graph.value().num_edges());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(IoGraph().num_edges()));
}
BENCHMARK(BM_LoadEdgeList)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_LoadSnapshotMmap(benchmark::State& state) {
  const std::string& path = IoSnapshotPath();
  for (auto _ : state) {
    StatusOr<Graph> graph = LoadSnapshot(path);
    benchmark::DoNotOptimize(graph.value().num_edges());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(IoGraph().num_edges()));
}
BENCHMARK(BM_LoadSnapshotMmap);

void BM_HopLayers(benchmark::State& state) {
  const Graph& g = BenchGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeHopLayers(g, NodeId{0},
                         static_cast<std::uint32_t>(state.range(0))));
  }
}
BENCHMARK(BM_HopLayers)->Arg(1)->Arg(2)->Arg(3);

void BM_ChungLuGenerate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ChungLuPowerLaw(static_cast<NodeId>(state.range(0)),
                        static_cast<EdgeId>(state.range(0)) * 10, 2.2, 5));
  }
}
BENCHMARK(BM_ChungLuGenerate)->Arg(10000)->Arg(50000);

void BM_AliasTableSample(benchmark::State& state) {
  std::vector<double> weights(100000);
  Rng rng(1);
  for (double& w : weights) w = rng.NextDouble() + 0.01;
  const AliasTable table(weights);
  Rng sample_rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(sample_rng));
  }
}
BENCHMARK(BM_AliasTableSample);

void BM_SparseMatVec(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const SparseMatrix pt = TransitionMatrixTranspose(g);
  std::vector<double> x(g.num_nodes(), 1.0 / g.num_nodes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.MultiplyVector(x));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(pt.nnz()));
}
BENCHMARK(BM_SparseMatVec);

void BM_DenseLuFactor(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  DenseMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a.At(r, c) = rng.NextDouble();
    a.At(r, r) += static_cast<double>(n);  // diagonally dominant
  }
  for (auto _ : state) {
    DenseMatrix copy = a;
    const LuDecomposition lu(std::move(copy));
    benchmark::DoNotOptimize(lu.ok());
  }
}
BENCHMARK(BM_DenseLuFactor)->Arg(128)->Arg(512);

// Machine-readable record of the walk-engine thread sweep, for CI trend
// tracking (--walk_engine_json=PATH). Reports per-thread-count throughput,
// speedup over sequential, a bitwise comparison against the sequential
// scores (the walk_engine.h contract), and the per-step vs geometric
// single-walk sampling throughput.
int WriteWalkEngineJson(const std::string& path) {
  const Graph& g = BenchGraph();
  const RwrConfig config = BenchConfig();
  const std::vector<WalkSlice>& slices = RemedyBenchSlices();
  const Rng root(17);

  struct Sweep {
    std::size_t threads;
    double seconds;
    std::uint64_t walks;
    bool bit_identical;
  };
  std::vector<Sweep> sweeps;
  std::vector<Score> reference;
  bool all_identical = true;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    WalkEngine engine(threads);
    std::vector<Score> scores(g.num_nodes(), 0.0);
    // Warm-up run builds the pool and faults in the workspaces.
    engine.Run(g, config, 0, root, slices, scores);
    std::fill(scores.begin(), scores.end(), 0.0);
    Timer timer;
    const WalkEngineStats stats =
        engine.Run(g, config, 0, root, slices, scores);
    const double seconds = timer.ElapsedSeconds();
    if (threads == 1) reference = scores;
    const bool identical = scores == reference;
    all_identical = all_identical && identical;
    sweeps.push_back(Sweep{threads, seconds, stats.walks, identical});
  }

  const auto sampling_walks_per_sec = [&](auto&& walk_fn) {
    Rng rng(3);
    WalkStats stats;
    const std::uint64_t walks = 400000;
    Timer timer;
    for (std::uint64_t i = 0; i < walks; ++i) walk_fn(rng, stats);
    return static_cast<double>(walks) / timer.ElapsedSeconds();
  };
  const double per_step = sampling_walks_per_sec(
      [&](Rng& rng, WalkStats& stats) {
        benchmark::DoNotOptimize(
            RandomWalkTerminal(g, config, 0, 0, rng, stats));
      });
  const double inv_log1m_alpha = InvLogOneMinusAlpha(config.alpha);
  const double geometric = sampling_walks_per_sec(
      [&](Rng& rng, WalkStats& stats) {
        benchmark::DoNotOptimize(RandomWalkTerminalGeometric(
            g, config, 0, 0, inv_log1m_alpha, rng, stats));
      });

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(file,
               "{\n"
               "  \"bench\": \"walk_engine\",\n"
               "  \"graph\": {\"nodes\": %u, \"edges\": %llu},\n"
               "  \"block_walks\": %llu,\n"
               "  \"host_hardware_concurrency\": %u,\n"
               "  \"all_bit_identical\": %s,\n"
               "  \"thread_sweep\": [\n",
               g.num_nodes(),
               static_cast<unsigned long long>(g.num_edges()),
               static_cast<unsigned long long>(WalkEngine::kBlockWalks),
               std::thread::hardware_concurrency(),
               all_identical ? "true" : "false");
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    const Sweep& s = sweeps[i];
    std::fprintf(
        file,
        "    {\"walk_threads\": %zu, \"seconds\": %.6f, \"walks\": %llu, "
        "\"walks_per_sec\": %.0f, \"speedup\": %.3f, "
        "\"bit_identical\": %s}%s\n",
        s.threads, s.seconds, static_cast<unsigned long long>(s.walks),
        static_cast<double>(s.walks) / s.seconds,
        sweeps[0].seconds / s.seconds, s.bit_identical ? "true" : "false",
        i + 1 < sweeps.size() ? "," : "");
  }
  std::fprintf(file,
               "  ],\n"
               "  \"sampling\": {\"per_step_walks_per_sec\": %.0f, "
               "\"geometric_walks_per_sec\": %.0f, \"speedup\": %.3f}\n"
               "}\n",
               per_step, geometric, geometric / per_step);
  std::fclose(file);
  std::printf("wrote %s\n", path.c_str());
  return all_identical ? 0 : 1;
}

bool SameCsr(const Graph& a, const Graph& b) {
  const auto eq = [](auto lhs, auto rhs) {
    return lhs.size() == rhs.size() &&
           std::equal(lhs.begin(), lhs.end(), rhs.begin());
  };
  return a.num_nodes() == b.num_nodes() &&
         eq(a.raw_out_offsets(), b.raw_out_offsets()) &&
         eq(a.raw_out_targets(), b.raw_out_targets()) &&
         eq(a.raw_in_offsets(), b.raw_in_offsets()) &&
         eq(a.raw_in_sources(), b.raw_in_sources());
}

// Machine-readable graph-ingest/load throughput record for CI trend
// tracking (--graph_io_json=PATH): a 1M-edge power-law graph is saved and
// reloaded through every storage path (text sequential/parallel, RESACC01
// binary, RESACC02 snapshot mmap/buffered) with edges-per-second rates and
// a CSR bit-identity check across all loads (exit 1 on mismatch).
int WriteGraphIoJson(const std::string& path) {
  const Graph graph = ChungLuPowerLaw(100000, 1000000, 2.2, 9);
  const std::string text_path = BenchTempPath("resacc_graph_io_bench.txt");
  const std::string bin_path = BenchTempPath("resacc_graph_io_bench.bin");
  const std::string rsg_path = BenchTempPath("resacc_graph_io_bench.rsg");

  struct Row {
    const char* op;
    double seconds;
    bool identical;
  };
  std::vector<Row> rows;
  bool all_identical = true;
  const auto timed = [&](const char* op, auto&& fn) {
    Timer timer;
    const bool identical = fn();
    rows.push_back(Row{op, timer.ElapsedSeconds(), identical});
    all_identical = all_identical && identical;
  };

  timed("save_text", [&] { return SaveEdgeList(graph, text_path).ok(); });
  timed("load_text_seq", [&] {
    StatusOr<Graph> loaded = LoadEdgeList(text_path, false, 1);
    return loaded.ok() && SameCsr(graph, loaded.value());
  });
  timed("load_text_parallel", [&] {
    StatusOr<Graph> loaded = LoadEdgeList(text_path, false, 0);
    return loaded.ok() && SameCsr(graph, loaded.value());
  });
  timed("save_binary", [&] { return SaveBinary(graph, bin_path).ok(); });
  timed("load_binary", [&] {
    StatusOr<Graph> loaded = LoadBinary(bin_path);
    return loaded.ok() && SameCsr(graph, loaded.value());
  });
  timed("save_snapshot", [&] { return SaveSnapshot(graph, rsg_path).ok(); });
  timed("load_snapshot_mmap", [&] {
    StatusOr<Graph> loaded = LoadSnapshot(rsg_path);
    return loaded.ok() && loaded.value().borrows_storage() &&
           SameCsr(graph, loaded.value());
  });
  timed("load_snapshot_buffered", [&] {
    SnapshotLoadOptions options;
    options.prefer_mmap = false;
    options.verify_section_checksum = true;
    StatusOr<Graph> loaded = LoadSnapshot(rsg_path, options);
    return loaded.ok() && !loaded.value().borrows_storage() &&
           SameCsr(graph, loaded.value());
  });

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(file,
               "{\n"
               "  \"bench\": \"graph_io\",\n"
               "  \"graph\": {\"nodes\": %u, \"edges\": %llu},\n"
               "  \"parse_threads\": %u,\n"
               "  \"all_loads_bit_identical\": %s,\n"
               "  \"operations\": [\n",
               graph.num_nodes(),
               static_cast<unsigned long long>(graph.num_edges()),
               std::thread::hardware_concurrency(),
               all_identical ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(file,
                 "    {\"op\": \"%s\", \"seconds\": %.6f, "
                 "\"edges_per_sec\": %.0f, \"ok\": %s}%s\n",
                 row.op, row.seconds,
                 static_cast<double>(graph.num_edges()) / row.seconds,
                 row.identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
  std::remove(rsg_path.c_str());
  std::printf("wrote %s\n", path.c_str());
  return all_identical ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Dynamic graphs: mutation throughput through MutableGraphView (single-edge
// publishes vs ApplyBatch), compaction fold time, and the payoff of the
// guarantee-preserving cache invalidation — cache hit rate under a Zipfian
// query stream with interleaved churn, targeted promotion vs the
// flush-everything baseline.

void BM_EdgeToggle(benchmark::State& state) {
  MutableGraphView view(ChungLuPowerLaw(20000, 200000, 2.2, 11));
  const NodeId n = 20000;
  Rng rng(5);
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (v == u) v = (v + 1) % n;
    // Toggle: the add either lands or tells us the edge exists.
    if (view.AddEdge(u, v).code() == StatusCode::kAlreadyExists) {
      benchmark::DoNotOptimize(view.RemoveEdge(u, v));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EdgeToggle);

// One churn serving run: `queries` Zipfian queries with a batch of
// `kChurnBatch` cold-region edge toggles (plus an UpdateGraph) every
// `kChurnPeriod` queries. Returns the observed cache hits; kept/dropped
// come out of the service's own counters.
struct ChurnResult {
  std::size_t hits = 0;
  std::size_t queries = 0;
  std::uint64_t promoted = 0;
  std::uint64_t dropped = 0;
  std::size_t mutation_batches = 0;
};

constexpr std::size_t kChurnQueries = 400;
constexpr std::size_t kChurnPeriod = 15;
constexpr std::size_t kChurnBatch = 8;

ChurnResult RunChurnWorkload(ServeOptions::InvalidationMode mode) {
  // Fresh, identically seeded world per mode: same graph, same query
  // stream, same mutation stream — the only difference is the policy.
  Graph base = ChungLuPowerLaw(10000, 100000, 2.2, 21);
  const NodeId n = base.num_nodes();
  RwrConfig config = RwrConfig::ForGraphSize(n);
  config.dangling = DanglingPolicy::kAbsorb;
  config.seed = 77;
  MutableGraphView view(std::move(base));

  ServeOptions options;
  options.num_workers = 2;
  options.invalidation = mode;
  const Graph serving = view.Snapshot();
  QueryService service(serving, config, options);

  ZipfianSources workload(n, /*theta=*/0.99, /*seed=*/31);
  Rng qrng(31);
  Rng mrng(87);

  // Churn lands on the graph's periphery: edges among nodes that start
  // with zero in-degree. No walk from any other source ever reaches those
  // rows (and edges added within the set keep it closed), so their
  // influence bound is exactly zero — the regime targeted invalidation is
  // built for, a fringe that churns while the core serves queries.
  // Queries sourced *inside* the fringe do carry mass there and are
  // correctly dropped, which keeps the comparison honest.
  std::vector<NodeId> fringe;
  {
    const Graph snapshot = view.Snapshot();
    for (NodeId u = 0; u < n; ++u) {
      if (snapshot.InDegree(u) == 0) fringe.push_back(u);
    }
  }
  if (fringe.size() < 2) return ChurnResult{};  // degenerate generator seed

  const auto mutate_batch = [&] {
    const Graph snapshot = view.Snapshot();
    GraphDelta delta;
    std::vector<EdgeMutation> batch;
    for (std::size_t i = 0; i < kChurnBatch; ++i) {
      const NodeId u = fringe[mrng.NextBounded(fringe.size())];
      NodeId v = fringe[mrng.NextBounded(fringe.size())];
      if (v == u) continue;
      batch.push_back(EdgeMutation{u, v, snapshot.HasEdge(u, v)});
    }
    if (view.ApplyBatch(batch, &delta).ok()) {
      service.UpdateGraph(view.Snapshot(), delta);
    }
  };

  ChurnResult result;
  for (std::size_t i = 0; i < kChurnQueries; ++i) {
    if (i > 0 && i % kChurnPeriod == 0) {
      mutate_batch();
      ++result.mutation_batches;
    }
    QueryRequest request;
    request.source = workload.Next(qrng);
    const QueryResponse response = service.Query(request);
    if (!response.status.ok()) continue;
    ++result.queries;
    if (response.cache_hit) ++result.hits;
  }
  result.promoted =
      service.metrics().GetCounter("resacc_serve_cache_kept_total").Value();
  result.dropped =
      service.metrics().GetCounter("resacc_serve_invalidated_total").Value();
  return result;
}

// Machine-readable record of the dynamic-graph subsystem
// (--dynamic_json=PATH): mutation publish throughput (single vs batched),
// compaction fold time, and the churn-serving hit-rate comparison. Exits 1
// unless targeted invalidation beats the flush-everything baseline
// strictly — the acceptance criterion of the live-graph PR.
int WriteDynamicJson(const std::string& path) {
  const NodeId n = 20000;
  MutableGraphView view(ChungLuPowerLaw(n, 200000, 2.2, 11));
  Rng rng(5);

  // Single-edge publishes: every op is one epoch (one overlay version).
  const std::size_t single_ops = 20000;
  Timer single_timer;
  for (std::size_t i = 0; i < single_ops; ++i) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (v == u) v = (v + 1) % n;
    if (view.AddEdge(u, v).code() == StatusCode::kAlreadyExists) {
      (void)view.RemoveEdge(u, v);
    }
  }
  const double single_seconds = single_timer.ElapsedSeconds();

  // Batched publishes: kBatch mutations amortize one epoch.
  const std::size_t kBatch = 1000;
  const std::size_t num_batches = 20;
  Timer batch_timer;
  for (std::size_t b = 0; b < num_batches; ++b) {
    std::vector<EdgeMutation> batch;
    const Graph snapshot = view.Snapshot();
    for (std::size_t i = 0; i < kBatch; ++i) {
      const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
      NodeId v = static_cast<NodeId>(rng.NextBounded(n));
      if (v == u) v = (v + 1) % n;
      batch.push_back(EdgeMutation{u, v, snapshot.HasEdge(u, v)});
    }
    std::size_t skipped = 0;
    (void)view.ApplyBatch(batch, nullptr, &skipped);
  }
  const double batch_seconds = batch_timer.ElapsedSeconds();

  const MutableGraphStats before_fold = view.stats();
  Timer compact_timer;
  const CompactionInfo fold = view.Compact();
  const double compact_seconds = compact_timer.ElapsedSeconds();

  const ChurnResult targeted =
      RunChurnWorkload(ServeOptions::InvalidationMode::kTargeted);
  const ChurnResult flush =
      RunChurnWorkload(ServeOptions::InvalidationMode::kFlushAll);
  const bool strictly_higher = targeted.hits > flush.hits;

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  const auto rate = [](std::size_t hits, std::size_t queries) {
    return queries > 0
               ? static_cast<double>(hits) / static_cast<double>(queries)
               : 0.0;
  };
  std::fprintf(
      file,
      "{\n"
      "  \"bench\": \"dynamic\",\n"
      "  \"graph\": {\"nodes\": %u, \"edges\": 200000},\n"
      "  \"mutation_throughput\": {\n"
      "    \"single_ops\": %zu, \"single_ops_per_sec\": %.0f,\n"
      "    \"batched_ops\": %zu, \"batch_size\": %zu, "
      "\"batched_ops_per_sec\": %.0f\n"
      "  },\n"
      "  \"compaction\": {\"seconds\": %.6f, \"folded_rows\": %zu, "
      "\"overlay_rows_before\": %zu, \"generation\": %llu},\n",
      n, single_ops,
      static_cast<double>(single_ops) / single_seconds,
      kBatch * num_batches, kBatch,
      static_cast<double>(kBatch * num_batches) / batch_seconds,
      compact_seconds, fold.folded_rows, before_fold.overlay_rows,
      static_cast<unsigned long long>(fold.generation));
  std::fprintf(
      file,
      "  \"churn_cache\": {\n"
      "    \"queries\": %zu, \"zipf_theta\": 0.99, "
      "\"mutation_batches\": %zu, \"batch_size\": %zu,\n"
      "    \"targeted\": {\"hits\": %zu, \"hit_rate\": %.4f, "
      "\"promoted\": %llu, \"dropped\": %llu},\n"
      "    \"flush_all\": {\"hits\": %zu, \"hit_rate\": %.4f, "
      "\"dropped\": %llu},\n"
      "    \"targeted_strictly_higher\": %s\n"
      "  }\n"
      "}\n",
      kChurnQueries, targeted.mutation_batches, kChurnBatch, targeted.hits,
      rate(targeted.hits, targeted.queries),
      static_cast<unsigned long long>(targeted.promoted),
      static_cast<unsigned long long>(targeted.dropped), flush.hits,
      rate(flush.hits, flush.queries),
      static_cast<unsigned long long>(flush.dropped),
      strictly_higher ? "true" : "false");
  std::fclose(file);
  std::printf("wrote %s (targeted hits %zu vs flush %zu)\n", path.c_str(),
              targeted.hits, flush.hits);
  if (!strictly_higher) {
    std::fprintf(stderr,
                 "dynamic bench: targeted invalidation did not beat "
                 "flush-all (%zu <= %zu)\n",
                 targeted.hits, flush.hits);
  }
  return strictly_higher ? 0 : 1;
}

}  // namespace

// BENCHMARK_MAIN plus three extra flags, all run after the registered
// benchmarks: --walk_engine_json=PATH writes the walk-engine thread-sweep
// record, --graph_io_json=PATH the graph-ingest/storage record, and
// --dynamic_json=PATH the live-graph mutation/compaction/invalidation
// record. Each exits 1 if its built-in assertion fails (bitwise identity
// for the first two, targeted-beats-flush for the dynamic one) — these
// are the CI smoke test's assertions.
int main(int argc, char** argv) {
  std::string walk_json_path;
  std::string io_json_path;
  std::string dynamic_json_path;
  int argc_out = 0;
  for (int i = 0; i < argc; ++i) {
    constexpr char kWalkFlag[] = "--walk_engine_json=";
    constexpr char kIoFlag[] = "--graph_io_json=";
    constexpr char kDynamicFlag[] = "--dynamic_json=";
    if (std::strncmp(argv[i], kWalkFlag, sizeof(kWalkFlag) - 1) == 0) {
      walk_json_path = argv[i] + sizeof(kWalkFlag) - 1;
    } else if (std::strncmp(argv[i], kIoFlag, sizeof(kIoFlag) - 1) == 0) {
      io_json_path = argv[i] + sizeof(kIoFlag) - 1;
    } else if (std::strncmp(argv[i], kDynamicFlag,
                            sizeof(kDynamicFlag) - 1) == 0) {
      dynamic_json_path = argv[i] + sizeof(kDynamicFlag) - 1;
    } else {
      argv[argc_out++] = argv[i];
    }
  }
  argc = argc_out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  int exit_code = 0;
  if (!walk_json_path.empty()) exit_code |= WriteWalkEngineJson(walk_json_path);
  if (!io_json_path.empty()) exit_code |= WriteGraphIoJson(io_json_path);
  if (!dynamic_json_path.empty()) {
    exit_code |= WriteDynamicJson(dynamic_json_path);
  }
  return exit_code;
}

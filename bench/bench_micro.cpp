// Google-benchmark micro suite for the library's kernels: push operations,
// random walks, BFS hop layers, generators, and the dense/sparse LA
// substrate. These guard the constants behind the paper-level numbers.

#include <benchmark/benchmark.h>

#include "resacc/core/forward_push.h"
#include "resacc/core/random_walk.h"
#include "resacc/graph/generators.h"
#include "resacc/graph/hop_layers.h"
#include "resacc/la/dense_matrix.h"
#include "resacc/la/sparse_matrix.h"
#include "resacc/util/alias_table.h"
#include "resacc/util/rng.h"

namespace {

using namespace resacc;

const Graph& BenchGraph() {
  static const Graph& graph =
      *new Graph(ChungLuPowerLaw(50000, 500000, 2.2, 7));
  return graph;
}

RwrConfig BenchConfig() {
  RwrConfig config = RwrConfig::ForGraphSize(BenchGraph().num_nodes());
  config.dangling = DanglingPolicy::kAbsorb;
  return config;
}

void BM_ForwardSearch(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const RwrConfig config = BenchConfig();
  const Score r_max = std::pow(10.0, -static_cast<double>(state.range(0)));
  PushState push_state(g.num_nodes());
  std::uint64_t pushes = 0;
  for (auto _ : state) {
    push_state.Reset();
    push_state.SetResidue(0, 1.0);
    const NodeId seeds[] = {NodeId{0}};
    pushes += RunForwardSearch(g, config, 0, r_max, seeds, false, push_state)
                  .push_operations;
  }
  state.counters["pushes/iter"] = benchmark::Counter(
      static_cast<double>(pushes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ForwardSearch)->Arg(5)->Arg(6)->Arg(7);

void BM_RandomWalks(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const RwrConfig config = BenchConfig();
  Rng rng(3);
  WalkStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RandomWalkTerminal(g, config, 0, 0, rng, stats));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(stats.walks));
}
BENCHMARK(BM_RandomWalks);

void BM_HopLayers(benchmark::State& state) {
  const Graph& g = BenchGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeHopLayers(g, NodeId{0},
                         static_cast<std::uint32_t>(state.range(0))));
  }
}
BENCHMARK(BM_HopLayers)->Arg(1)->Arg(2)->Arg(3);

void BM_ChungLuGenerate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ChungLuPowerLaw(static_cast<NodeId>(state.range(0)),
                        static_cast<EdgeId>(state.range(0)) * 10, 2.2, 5));
  }
}
BENCHMARK(BM_ChungLuGenerate)->Arg(10000)->Arg(50000);

void BM_AliasTableSample(benchmark::State& state) {
  std::vector<double> weights(100000);
  Rng rng(1);
  for (double& w : weights) w = rng.NextDouble() + 0.01;
  const AliasTable table(weights);
  Rng sample_rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(sample_rng));
  }
}
BENCHMARK(BM_AliasTableSample);

void BM_SparseMatVec(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const SparseMatrix pt = TransitionMatrixTranspose(g);
  std::vector<double> x(g.num_nodes(), 1.0 / g.num_nodes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.MultiplyVector(x));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(pt.nnz()));
}
BENCHMARK(BM_SparseMatVec);

void BM_DenseLuFactor(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  DenseMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a.At(r, c) = rng.NextDouble();
    a.At(r, r) += static_cast<double>(n);  // diagonally dominant
  }
  for (auto _ : state) {
    DenseMatrix copy = a;
    const LuDecomposition lu(std::move(copy));
    benchmark::DoNotOptimize(lu.ok());
  }
}
BENCHMARK(BM_DenseLuFactor)->Arg(128)->Arg(512);

}  // namespace

BENCHMARK_MAIN();

// Reproduces Appendix B (Figures 12-13): Particle Filtering vs MC vs
// ResAcc — query time, absolute error of the k-th value, NDCG@k.
// PF runs with the same total walk count as MC (the paper's fair setting)
// and w_min = 1e4. Paper shape: PF's time is close to ResAcc's, but its
// error is orders of magnitude worse.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/algo/particle_filter.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/eval/metrics.h"

int main() {
  using namespace resacc;
  using namespace resacc::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("Figures 12-13: Particle Filtering comparison", env);

  const auto datasets = LoadDatasets({"dblp-sim", "twitter-sim"}, env);
  const std::vector<std::size_t> ks = {1, 10, 100, 1000, 10000, 100000};

  for (const auto& ds : datasets) {
    const RwrConfig config = BenchConfig(ds.graph, env.seed);
    GroundTruthCache truth(ds.graph, config);

    MonteCarlo mc(ds.graph, config);
    ParticleFilterOptions pf_options;
    pf_options.w_min = 1e4;  // the paper's tuned value
    ParticleFilter pf(ds.graph, config, pf_options);
    ResAccOptions resacc_options;
    resacc_options.num_hops =
        static_cast<std::uint32_t>(ds.spec.sim_hops);
    ResAccSolver resacc(ds.graph, config, resacc_options);

    double t_mc = 0.0;
    double t_pf = 0.0;
    double t_resacc = 0.0;
    std::vector<std::vector<double>> err(3, std::vector<double>(ks.size()));
    std::vector<std::vector<double>> ndcg(3, std::vector<double>(ks.size()));
    for (NodeId s : ds.sources) {
      Timer t;
      const std::vector<Score> est_mc = mc.Query(s);
      t_mc += t.ElapsedSeconds();
      t.Restart();
      const std::vector<Score> est_pf = pf.Query(s);
      t_pf += t.ElapsedSeconds();
      t.Restart();
      const std::vector<Score> est_resacc = resacc.Query(s);
      t_resacc += t.ElapsedSeconds();

      const std::vector<Score>& exact = truth.Get(s);
      for (std::size_t i = 0; i < ks.size(); ++i) {
        err[0][i] += AbsErrorAtK(est_mc, exact, ks[i]);
        err[1][i] += AbsErrorAtK(est_pf, exact, ks[i]);
        err[2][i] += AbsErrorAtK(est_resacc, exact, ks[i]);
        ndcg[0][i] += NdcgAtK(est_mc, exact, ks[i]);
        ndcg[1][i] += NdcgAtK(est_pf, exact, ks[i]);
        ndcg[2][i] += NdcgAtK(est_resacc, exact, ks[i]);
      }
    }
    const double inv = 1.0 / static_cast<double>(ds.sources.size());
    std::printf("%s: avg query time MC %s | PF %s | ResAcc %s\n",
                DatasetLabel(ds).c_str(), FmtSeconds(t_mc * inv).c_str(),
                FmtSeconds(t_pf * inv).c_str(),
                FmtSeconds(t_resacc * inv).c_str());
    TextTable table({"k", "MC abs err", "PF abs err", "ResAcc abs err",
                     "MC ndcg", "PF ndcg", "ResAcc ndcg"});
    for (std::size_t i = 0; i < ks.size(); ++i) {
      table.AddRow({std::to_string(ks[i]), Fmt(err[0][i] * inv),
                    Fmt(err[1][i] * inv), Fmt(err[2][i] * inv),
                    Fmt(ndcg[0][i] * inv, 6), Fmt(ndcg[1][i] * inv, 6),
                    Fmt(ndcg[2][i] * inv, 6)});
    }
    table.Print(stdout);
    std::printf("\n");
  }
  return 0;
}

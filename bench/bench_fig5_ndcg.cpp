// Reproduces Figure 5: NDCG of the k highest-scored nodes per algorithm,
// k in {1, 10, ..., 1e5}. Paper shape: all methods except TopPPR and TPA
// order the important nodes essentially perfectly; TPA degrades on the
// large graph (PageRank tail), TopPPR degrades beyond its top-K focus.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "resacc/algo/fora.h"
#include "resacc/algo/monte_carlo.h"
#include "resacc/algo/topppr.h"
#include "resacc/algo/tpa.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/eval/metrics.h"

int main() {
  using namespace resacc;
  using namespace resacc::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("Figure 5: NDCG@k per algorithm", env);

  const auto datasets = LoadDatasets({"dblp-sim", "twitter-sim"}, env);
  const std::vector<std::size_t> ks = {1, 10, 100, 1000, 10000, 100000};

  for (const auto& ds : datasets) {
    const RwrConfig config = BenchConfig(ds.graph, env.seed);
    GroundTruthCache truth(ds.graph, config);

    MonteCarlo mc(ds.graph, config);
    Fora fora(ds.graph, config, {});
    // TopPPR focused on a small K exposes its tail behaviour (Fig. 20(b)).
    TopPprOptions topppr_options;
    topppr_options.top_k = 3000;
    TopPpr topppr(ds.graph, config, topppr_options);
    Tpa tpa(ds.graph, config, {});
    const bool tpa_ok = tpa.BuildIndex().ok();
    ResAccOptions resacc_options;
    resacc_options.num_hops =
        static_cast<std::uint32_t>(ds.spec.sim_hops);
    ResAccSolver resacc(ds.graph, config, resacc_options);

    std::printf("%s:\n", DatasetLabel(ds).c_str());
    TextTable table({"k", "MC", "FORA", "TopPPR", "TPA", "ResAcc"});
    std::vector<std::vector<double>> ndcg(5, std::vector<double>(ks.size()));
    for (NodeId s : ds.sources) {
      const std::vector<Score>& exact = truth.Get(s);
      const std::vector<Score> est_mc = mc.Query(s);
      const std::vector<Score> est_fora = fora.Query(s);
      const std::vector<Score> est_topppr = topppr.Query(s);
      const std::vector<Score> est_tpa =
          tpa_ok ? tpa.Query(s) : std::vector<Score>();
      const std::vector<Score> est_resacc = resacc.Query(s);
      for (std::size_t i = 0; i < ks.size(); ++i) {
        ndcg[0][i] += NdcgAtK(est_mc, exact, ks[i]);
        ndcg[1][i] += NdcgAtK(est_fora, exact, ks[i]);
        ndcg[2][i] += NdcgAtK(est_topppr, exact, ks[i]);
        if (tpa_ok) ndcg[3][i] += NdcgAtK(est_tpa, exact, ks[i]);
        ndcg[4][i] += NdcgAtK(est_resacc, exact, ks[i]);
      }
    }
    const double inv = 1.0 / static_cast<double>(ds.sources.size());
    for (std::size_t i = 0; i < ks.size(); ++i) {
      table.AddRow({std::to_string(ks[i]), Fmt(ndcg[0][i] * inv, 6),
                    Fmt(ndcg[1][i] * inv, 6), Fmt(ndcg[2][i] * inv, 6),
                    tpa_ok ? Fmt(ndcg[3][i] * inv, 6) : "o.o.m",
                    Fmt(ndcg[4][i] * inv, 6)});
    }
    table.Print(stdout);
    std::printf("\n");
  }
  return 0;
}

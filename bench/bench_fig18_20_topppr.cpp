// Reproduces Appendix E (Figures 18-20): fair comparison with TopPPR.
//  (1) K sweep: TopPPR's time/error/NDCG as its K parameter varies, vs
//      ResAcc's fixed cost (Figs. 18-19).
//  (2) Equal time on the Twitter stand-in: TopPPR with K = 3000 and a
//      time budget equal to ResAcc's query time; compare error and NDCG
//      across k (Fig. 20). Paper shape: TopPPR misorders the k >= 1e4
//      tail; ResAcc is up to 3 orders of magnitude more accurate.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "resacc/algo/topppr.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/eval/ground_truth.h"
#include "resacc/eval/metrics.h"

int main() {
  using namespace resacc;
  using namespace resacc::bench;
  const BenchEnv env = BenchEnv::FromEnv();
  PrintPreamble("Figures 18-20: fair comparison with TopPPR", env);

  const auto datasets = LoadDatasets({"dblp-sim", "twitter-sim"}, env);
  const std::vector<std::size_t> k_params = {5000, 10000, 50000, 100000,
                                             500000};
  const std::vector<std::size_t> eval_ks = {1, 10, 100, 1000, 10000, 100000};

  for (const auto& ds : datasets) {
    const RwrConfig config = BenchConfig(ds.graph, env.seed);
    GroundTruthCache truth(ds.graph, config);
    ResAccOptions resacc_options;
    resacc_options.num_hops =
        static_cast<std::uint32_t>(ds.spec.sim_hops);
    ResAccSolver resacc(ds.graph, config, resacc_options);

    // ResAcc baseline numbers.
    double resacc_seconds = 0.0;
    double resacc_err = 0.0;
    double resacc_ndcg = 0.0;
    for (NodeId s : ds.sources) {
      Timer t;
      const std::vector<Score> est = resacc.Query(s);
      resacc_seconds += t.ElapsedSeconds();
      const std::vector<Score>& exact = truth.Get(s);
      resacc_err += MeanAbsErrorTopK(est, exact, 100000);
      resacc_ndcg += NdcgAtK(est, exact, 100000);
    }
    const double inv = 1.0 / static_cast<double>(ds.sources.size());

    std::printf("%s — K sweep (ResAcc reference: %s, err %s, ndcg %s):\n",
                DatasetLabel(ds).c_str(),
                FmtSeconds(resacc_seconds * inv).c_str(),
                Fmt(resacc_err * inv).c_str(),
                Fmt(resacc_ndcg * inv, 6).c_str());
    TextTable sweep({"K", "TopPPR time", "TopPPR err@1e5", "TopPPR ndcg@1e5"});
    for (std::size_t k_param : k_params) {
      TopPprOptions options;
      options.top_k = k_param;
      TopPpr topppr(ds.graph, config, options);
      double seconds = 0.0;
      double error = 0.0;
      double ndcg = 0.0;
      for (NodeId s : ds.sources) {
        Timer t;
        const std::vector<Score> est = topppr.Query(s);
        seconds += t.ElapsedSeconds();
        const std::vector<Score>& exact = truth.Get(s);
        error += MeanAbsErrorTopK(est, exact, 100000);
        ndcg += NdcgAtK(est, exact, 100000);
      }
      sweep.AddRow({std::to_string(k_param), FmtSeconds(seconds * inv),
                    Fmt(error * inv), Fmt(ndcg * inv, 6)});
    }
    sweep.Print(stdout);
    std::printf("\n");
  }

  // Equal-time accuracy on the Twitter stand-in (Fig. 20).
  {
    const auto& ds = datasets[1];
    const RwrConfig config = BenchConfig(ds.graph, env.seed);
    GroundTruthCache truth(ds.graph, config);
    ResAccOptions resacc_options;
    resacc_options.num_hops =
        static_cast<std::uint32_t>(ds.spec.sim_hops);
    ResAccSolver resacc(ds.graph, config, resacc_options);

    std::vector<double> err_resacc(eval_ks.size(), 0.0);
    std::vector<double> err_topppr(eval_ks.size(), 0.0);
    std::vector<double> ndcg_resacc(eval_ks.size(), 0.0);
    std::vector<double> ndcg_topppr(eval_ks.size(), 0.0);
    for (NodeId s : ds.sources) {
      Timer t;
      const std::vector<Score> est_resacc = resacc.Query(s);
      const double budget = t.ElapsedSeconds();

      TopPprOptions options;
      options.top_k = 3000;
      options.time_budget_seconds = budget;
      TopPpr topppr(ds.graph, config, options);
      const std::vector<Score> est_topppr = topppr.Query(s);

      const std::vector<Score>& exact = truth.Get(s);
      for (std::size_t i = 0; i < eval_ks.size(); ++i) {
        err_resacc[i] += AbsErrorAtK(est_resacc, exact, eval_ks[i]);
        err_topppr[i] += AbsErrorAtK(est_topppr, exact, eval_ks[i]);
        ndcg_resacc[i] += NdcgAtK(est_resacc, exact, eval_ks[i]);
        ndcg_topppr[i] += NdcgAtK(est_topppr, exact, eval_ks[i]);
      }
    }
    const double inv = 1.0 / static_cast<double>(ds.sources.size());
    std::printf("Fig. 20 equal-time on %s (TopPPR K=3000, budget = ResAcc "
                "time):\n",
                DatasetLabel(ds).c_str());
    TextTable table({"k", "TopPPR abs err", "ResAcc abs err", "TopPPR ndcg",
                     "ResAcc ndcg"});
    for (std::size_t i = 0; i < eval_ks.size(); ++i) {
      table.AddRow({std::to_string(eval_ks[i]), Fmt(err_topppr[i] * inv),
                    Fmt(err_resacc[i] * inv), Fmt(ndcg_topppr[i] * inv, 6),
                    Fmt(ndcg_resacc[i] * inv, 6)});
    }
    table.Print(stdout);
  }
  return 0;
}

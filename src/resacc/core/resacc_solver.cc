#include "resacc/core/resacc_solver.h"

#include <utility>

#include "resacc/core/omfwd.h"
#include "resacc/obs/metrics_registry.h"
#include "resacc/obs/trace.h"
#include "resacc/util/check.h"
#include "resacc/util/timer.h"

namespace resacc {
namespace {

// Process-wide phase latency surface (Table VII as metrics). Function-local
// statics: registered once, then each Record is a handful of relaxed
// atomics — safe to leave on for every query.
struct SolverMetrics {
  Counter& queries;
  LatencyHistogram& hhop;
  LatencyHistogram& omfwd;
  LatencyHistogram& remedy;
  LatencyHistogram& total;

  static SolverMetrics& Get() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static SolverMetrics metrics{
        registry.GetCounter("resacc_solver_queries_total", "",
                            "Single-source RWR queries answered."),
        registry.GetHistogram("resacc_solver_phase_seconds",
                              "phase=\"hhop\"",
                              "Per-query phase latency (Table VII split)."),
        registry.GetHistogram("resacc_solver_phase_seconds",
                              "phase=\"omfwd\""),
        registry.GetHistogram("resacc_solver_phase_seconds",
                              "phase=\"remedy\""),
        registry.GetHistogram("resacc_solver_query_seconds", "",
                              "End-to-end single-source query latency."),
    };
    return metrics;
  }
};

}  // namespace

ResAccSolver::ResAccSolver(const Graph& graph, const RwrConfig& config,
                           const ResAccOptions& options)
    : graph_(graph),
      config_(config),
      options_(options),
      name_("ResAcc"),
      state_(graph.num_nodes()),
      rng_(config.seed),
      walk_engine_(options.walk_threads) {
  RESACC_CHECK(config_.Validate().ok());
  RESACC_CHECK(options_.r_max_hop > 0.0);
  r_max_f_ = options_.r_max_f > 0.0
                 ? options_.r_max_f
                 : 1.0 / (10.0 * static_cast<Score>(graph.num_edges()));
  if (!options_.use_loop_accumulation) name_ = "No-Loop-ResAcc";
  if (!options_.use_hop_subgraph) name_ = "No-SG-ResAcc";
  if (!options_.use_omfwd) name_ = "No-OFD-ResAcc";
}

std::vector<Score> ResAccSolver::Query(NodeId source) {
  RESACC_CHECK(source < graph_.num_nodes());
  RESACC_SPAN("query");
  last_stats_ = ResAccQueryStats();
  Timer total;

  state_.Reset();

  // Phase 1: h-HopFWD. The No-SG ablation accumulates over the whole graph;
  // there the practical threshold is r_max^f (with r_max^hop the whole-graph
  // search would push for days — the subgraph restriction is exactly what
  // makes the tiny threshold affordable).
  Timer phase;
  HHopFwdOptions hhop_options;
  hhop_options.r_max_hop =
      options_.use_hop_subgraph ? options_.r_max_hop : r_max_f_;
  hhop_options.num_hops = options_.num_hops;
  hhop_options.use_loop_accumulation = options_.use_loop_accumulation;
  hhop_options.use_hop_subgraph = options_.use_hop_subgraph;
  hhop_options.max_hop_set_fraction = options_.max_hop_set_fraction;

  HopLayers layers;
  {
    RESACC_SPAN("hhop_fwd");
    last_stats_.hhop =
        RunHHopFwd(graph_, config_, source, hhop_options, state_, &layers);
  }
  last_stats_.hhop_seconds = phase.ElapsedSeconds();

  // Phase 2: OMFWD from the accumulated frontier.
  phase.Restart();
  {
    RESACC_SPAN("omfwd");
    if (options_.use_omfwd && !layers.layers.empty()) {
      last_stats_.omfwd_push = RunOmfwd(graph_, config_, source, r_max_f_,
                                        layers.layers.back(), state_);
    }
  }
  last_stats_.omfwd_seconds = phase.ElapsedSeconds();
  last_stats_.residue_sum_after_omfwd = state_.ResidueSum();

  // Phase 3: remedy (Algorithm 2 lines 5-17).
  phase.Restart();
  std::vector<Score> scores(graph_.num_nodes(), 0.0);
  for (NodeId v : state_.touched()) scores[v] = state_.reserve(v);
  Rng query_rng = rng_.Fork(source);
  {
    RESACC_SPAN("remedy");
    last_stats_.remedy =
        RunRemedy(graph_, config_, source, state_, query_rng, scores,
                  options_.walk_scale, /*time_budget_seconds=*/0.0,
                  &walk_engine_);
  }
  last_stats_.remedy_seconds = phase.ElapsedSeconds();

  last_stats_.total_seconds = total.ElapsedSeconds();

  SolverMetrics& metrics = SolverMetrics::Get();
  metrics.queries.Increment();
  metrics.hhop.Record(last_stats_.hhop_seconds);
  metrics.omfwd.Record(last_stats_.omfwd_seconds);
  metrics.remedy.Record(last_stats_.remedy_seconds);
  metrics.total.Record(last_stats_.total_seconds);
  return scores;
}

}  // namespace resacc

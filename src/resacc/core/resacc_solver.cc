#include "resacc/core/resacc_solver.h"

#include <utility>

#include "resacc/core/omfwd.h"
#include "resacc/core/topk_solve.h"
#include "resacc/obs/metrics_registry.h"
#include "resacc/obs/trace.h"
#include "resacc/util/check.h"
#include "resacc/util/timer.h"

namespace resacc {
namespace {

// Process-wide phase latency surface (Table VII as metrics). Function-local
// statics: registered once, then each Record is a handful of relaxed
// atomics — safe to leave on for every query.
struct SolverMetrics {
  Counter& queries;
  Counter& degraded;
  Counter& cancelled;
  LatencyHistogram& hhop;
  LatencyHistogram& omfwd;
  LatencyHistogram& remedy;
  LatencyHistogram& dense;
  LatencyHistogram& total;

  static SolverMetrics& Get() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static SolverMetrics metrics{
        registry.GetCounter("resacc_solver_queries_total", "",
                            "Single-source RWR queries answered."),
        registry.GetCounter(
            "resacc_solver_queries_degraded_total", "",
            "Queries that returned with uncorrected residual mass "
            "(achieved epsilon above the configured bound)."),
        registry.GetCounter(
            "resacc_solver_queries_cancelled_total", "",
            "Queries stopped early by a cancellation token "
            "(deadline or explicit cancel)."),
        registry.GetHistogram("resacc_solver_phase_seconds",
                              "phase=\"hhop\"",
                              "Per-query phase latency (Table VII split)."),
        registry.GetHistogram("resacc_solver_phase_seconds",
                              "phase=\"omfwd\""),
        registry.GetHistogram("resacc_solver_phase_seconds",
                              "phase=\"remedy\""),
        registry.GetHistogram("resacc_solver_phase_seconds",
                              "phase=\"dense\""),
        registry.GetHistogram("resacc_solver_query_seconds", "",
                              "End-to-end single-source query latency."),
    };
    return metrics;
  }
};

}  // namespace

ResAccSolver::ResAccSolver(const Graph& graph, const RwrConfig& config,
                           const ResAccOptions& options)
    : graph_(graph),
      config_(config),
      options_(options),
      name_("ResAcc"),
      state_(graph.num_nodes()),
      rng_(config.seed),
      walk_engine_(options.walk_threads) {
  RESACC_CHECK(config_.Validate().ok());
  RESACC_CHECK(options_.r_max_hop > 0.0);
  r_max_f_ = options_.r_max_f > 0.0
                 ? options_.r_max_f
                 : 1.0 / (10.0 * static_cast<Score>(graph.num_edges()));
  if (!options_.use_loop_accumulation) name_ = "No-Loop-ResAcc";
  if (!options_.use_hop_subgraph) name_ = "No-SG-ResAcc";
  if (!options_.use_omfwd) name_ = "No-OFD-ResAcc";
}

std::vector<Score> ResAccSolver::Query(NodeId source) {
  // Same code path as the controlled variant with no token: identical RNG
  // draws, identical phase structure, bit-identical scores.
  return QueryControlled(source, QueryControl{}).scores;
}

ControlledQueryResult ResAccSolver::QueryControlled(
    NodeId source, const QueryControl& control) {
  RESACC_CHECK(source < graph_.num_nodes());
  RESACC_SPAN("query");
  last_stats_ = ResAccQueryStats();
  Timer total;
  const CancellationToken* cancel = control.cancel;

  ControlledQueryResult result;
  result.achieved_epsilon = config_.epsilon;

  SolverMetrics& metrics = SolverMetrics::Get();
  // Every return path — complete, degraded or cancelled — goes through
  // here, so queries_total and the query histogram stay consistent with
  // the per-phase histograms after an abort (each phase records iff it
  // started).
  auto finish = [&](Score uncorrected_mass) {
    result.uncorrected_mass = uncorrected_mass;
    if (uncorrected_mass > 0.0) {
      result.degraded = true;
      // Each unit of unconverted mass adds <= that much absolute error to
      // any score; nodes above delta turn it into relative error at worst
      // uncorrected/delta (Theorem 3's residual term).
      result.achieved_epsilon =
          config_.epsilon + uncorrected_mass / config_.delta;
      metrics.degraded.Increment();
    }
    if (!result.status.ok()) metrics.cancelled.Increment();
    last_stats_.total_seconds = total.ElapsedSeconds();
    metrics.queries.Increment();
    metrics.total.Record(last_stats_.total_seconds);
    if (options_.hybrid.enable) RecordHybridSelection(last_stats_.path);
  };

  state_.Reset();
  if (ShouldStop(cancel)) {
    // Dead on arrival (deadline already passed): nothing computed, the
    // whole unit of probability mass is unconverted.
    result.status = cancel->StopStatus();
    result.scores.assign(graph_.num_nodes(), 0.0);
    finish(1.0);
    return result;
  }

  // Partial result on an early stop: the reserves accumulated so far.
  // pi(v) = reserve(v) + sum_u r(u) pi_u(v) holds after every push, so
  // the estimate undershoots by at most the remaining residue mass.
  auto reserves_snapshot = [&] {
    std::vector<Score> scores(graph_.num_nodes(), 0.0);
    for (NodeId v : state_.touched()) scores[v] = state_.reserve(v);
    return scores;
  };

  // Phases 1-2: h-HopFWD + OMFWD.
  const Status push_status = RunPushPhases(source, cancel);
  if (!push_status.ok()) {
    result.status = push_status;
    result.scores = reserves_snapshot();
    finish(state_.ResidueSum());
    return result;
  }

  // Dense fallback: the selector handed this query to whole-graph power
  // iteration (core/power_iter.h) — the drained residues become the
  // starting alive mass, and the remedy walks are skipped entirely.
  if (last_stats_.path != SolverPath::kLocal) {
    if (options_.phase_hook) options_.phase_hook("dense");
    Timer dense_phase;
    DenseFinish dense;
    {
      RESACC_SPAN("dense_power_iter");
      dense = RunDenseFinish(graph_, config_, source, state_,
                             options_.hybrid, cancel);
    }
    last_stats_.dense = dense.stats;
    last_stats_.dense_seconds = dense_phase.ElapsedSeconds();
    metrics.dense.Record(last_stats_.dense_seconds);
    if (dense.stats.cancelled) result.status = cancel->StopStatus();
    result.scores = std::move(dense.scores);
    finish(dense.uncorrected_mass);
    return result;
  }

  // Phase 3: remedy (Algorithm 2 lines 5-17).
  if (options_.phase_hook) options_.phase_hook("remedy");
  Timer phase;
  std::vector<Score> scores = reserves_snapshot();
  Rng query_rng = rng_.Fork(source);
  {
    RESACC_SPAN("remedy");
    last_stats_.remedy =
        RunRemedy(graph_, config_, source, state_, query_rng, scores,
                  options_.walk_scale, /*time_budget_seconds=*/0.0,
                  &walk_engine_, cancel);
  }
  last_stats_.remedy_seconds = phase.ElapsedSeconds();
  metrics.remedy.Record(last_stats_.remedy_seconds);

  if (last_stats_.remedy.cancelled) result.status = cancel->StopStatus();
  result.scores = std::move(scores);
  finish(last_stats_.remedy.uncorrected_mass);
  return result;
}

Status ResAccSolver::RunPushPhases(NodeId source,
                                   const CancellationToken* cancel) {
  SolverMetrics& metrics = SolverMetrics::Get();

  // Phase 1: h-HopFWD. The No-SG ablation accumulates over the whole graph;
  // there the practical threshold is r_max^f (with r_max^hop the whole-graph
  // search would push for days — the subgraph restriction is exactly what
  // makes the tiny threshold affordable).
  if (options_.phase_hook) options_.phase_hook("hhop");
  Timer phase;
  HHopFwdOptions hhop_options;
  hhop_options.r_max_hop =
      options_.use_hop_subgraph ? options_.r_max_hop : r_max_f_;
  hhop_options.num_hops = options_.num_hops;
  hhop_options.use_loop_accumulation = options_.use_loop_accumulation;
  hhop_options.use_hop_subgraph = options_.use_hop_subgraph;
  hhop_options.max_hop_set_fraction = options_.max_hop_set_fraction;
  hhop_options.cancel = cancel;

  // Hybrid selection point 1: with the hop-layer BFS done and nothing
  // pushed yet, hand hub sources to the dense path (core/power_iter.h).
  // The decision is a pure function of the BFS-derived stats, so a batched
  // lane running the same RunHHopFwd selects identically.
  const bool hybrid_on = options_.hybrid.enable && options_.use_hop_subgraph;
  if (hybrid_on) {
    hhop_options.dense_probe = [&](const HHopFwdStats& hop_stats) {
      const SolverPath choice = ChooseFromHopStats(
          graph_, config_, options_.hybrid, hhop_options.r_max_hop,
          hop_stats.shrink_floored,
          static_cast<double>(hop_stats.hop_set_edges));
      if (choice == SolverPath::kLocal) return false;
      last_stats_.path = choice;
      return true;
    };
  }

  HopLayers layers;
  {
    RESACC_SPAN("hhop_fwd");
    last_stats_.hhop =
        RunHHopFwd(graph_, config_, source, hhop_options, state_, &layers);
  }
  last_stats_.hhop_seconds = phase.ElapsedSeconds();
  metrics.hhop.Record(last_stats_.hhop_seconds);
  if (last_stats_.hhop.shrink_hops > 0 || last_stats_.hhop.shrink_floored) {
    RecordHubShrink();
  }
  if (ShouldStop(cancel)) return cancel->StopStatus();
  // Probe fired: the state holds the clean r(s) = 1 unit for the dense
  // sweep; OMFWD would only smear it back over the graph.
  if (last_stats_.path != SolverPath::kLocal) return Status::Ok();

  // Phase 2: OMFWD from the accumulated frontier. At each wavefront-round
  // boundary (selection point 2) the remedy cost of the residues still
  // outstanding is compared against the dense bound; when remedy loses,
  // the search stops and the drained state goes dense instead.
  if (options_.phase_hook) options_.phase_hook("omfwd");
  phase.Restart();
  PushRoundHook round_hook;
  const PushRoundHook* round_hook_ptr = nullptr;
  if (hybrid_on) {
    round_hook = [&](std::size_t) {
      if (!DenseBeatsRemedy(graph_, config_, options_.hybrid,
                            state_.ResidueSum(), options_.walk_scale)) {
        return false;
      }
      last_stats_.path = SolverPath::kDenseResidueMass;
      return true;
    };
    round_hook_ptr = &round_hook;
  }
  {
    RESACC_SPAN("omfwd");
    if (options_.use_omfwd && !layers.layers.empty()) {
      last_stats_.omfwd_push =
          RunOmfwd(graph_, config_, source, r_max_f_, layers.layers.back(),
                   state_, cancel, round_hook_ptr);
    }
  }
  last_stats_.omfwd_seconds = phase.ElapsedSeconds();
  last_stats_.residue_sum_after_omfwd = state_.ResidueSum();
  metrics.omfwd.Record(last_stats_.omfwd_seconds);
  if (ShouldStop(cancel)) return cancel->StopStatus();
  return Status::Ok();
}

TopKResult ResAccSolver::QueryTopK(NodeId source, std::size_t k,
                                   const QueryControl& control) {
  RESACC_CHECK(source < graph_.num_nodes());
  RESACC_SPAN("query_topk");
  last_stats_ = ResAccQueryStats();
  Timer total;
  const CancellationToken* cancel = control.cancel;

  state_.Reset();
  Status push_status;
  if (ShouldStop(cancel)) {
    // Dead on arrival: nothing ran — the whole unit of probability mass
    // still sits on the source, uncorrected.
    state_.SetResidue(source, 1.0);
    push_status = cancel->StopStatus();
  } else {
    push_status = RunPushPhases(source, cancel);
  }

  // Dense fallback: the full dense vector is exact to an additive
  // eps*delta, so its top-k prefix with the standard epsilon-relative
  // brackets is a valid certificate at the configured epsilon. Same
  // finish as BatchSolver::FinishLaneTopK's dense branch (bit-identical).
  if (push_status.ok() && last_stats_.path != SolverPath::kLocal) {
    if (options_.phase_hook) options_.phase_hook("dense");
    Timer dense_phase;
    DenseFinish dense;
    {
      RESACC_SPAN("dense_power_iter");
      dense = RunDenseFinish(graph_, config_, source, state_,
                             options_.hybrid, cancel);
    }
    last_stats_.dense = dense.stats;
    last_stats_.dense_seconds = dense_phase.ElapsedSeconds();
    TopKResult result =
        MakeApproximateTopK(dense.scores, k, dense.achieved_epsilon,
                            dense.degraded, dense.uncorrected_mass);
    if (dense.stats.cancelled) result.status = cancel->StopStatus();
    last_stats_.total_seconds = total.ElapsedSeconds();
    if (options_.hybrid.enable) RecordHybridSelection(last_stats_.path);
    return result;
  }

  if (options_.phase_hook) options_.phase_hook("topk");
  Timer phase;
  Rng query_rng = rng_.Fork(source);
  TopKResult result = SolveTopKFromState(
      graph_, config_, source, k, r_max_f_, options_.walk_scale,
      options_.topk, state_, query_rng, &walk_engine_, cancel, push_status);
  last_stats_.remedy_seconds = phase.ElapsedSeconds();
  last_stats_.total_seconds = total.ElapsedSeconds();
  if (options_.hybrid.enable) RecordHybridSelection(last_stats_.path);
  return result;
}

}  // namespace resacc

#ifndef RESACC_CORE_SEED_SET_QUERY_H_
#define RESACC_CORE_SEED_SET_QUERY_H_

#include <vector>

#include "resacc/core/forward_push.h"
#include "resacc/core/remedy.h"
#include "resacc/core/rwr_config.h"
#include "resacc/graph/graph.h"
#include "resacc/util/rng.h"

namespace resacc {

// SSRWR from a *seed set*: the walk starts at a uniformly random node of
// `seeds` (so the result is the average of the per-seed RWR vectors, by
// linearity). This is the primitive behind NISE's neighbourhood-inflated
// seed expansion — expanding from {seed} ∪ N(seed) instead of the seed
// alone — and behind preference-set personalization generally.
//
// Implementation: residues initialized to 1/|seeds| on each seed, one
// forward search with threshold `r_max` (<= 0 selects FORA's balanced
// default 1/sqrt(m c)), then the remedy estimator. The per-node guarantee
// of Definition 1 carries over with pi(seeds, t) in place of pi(s, t).
//
// On graphs with sinks this requires DanglingPolicy::kAbsorb (a
// kBackToSource walk would need to restart into the whole set, which the
// single-source push/walk kernels do not represent); checked at runtime.
struct SeedSetQueryResult {
  std::vector<Score> scores;
  PushStats push;
  RemedyStats remedy;
};

SeedSetQueryResult SeedSetSsrwr(const Graph& graph, const RwrConfig& config,
                                const std::vector<NodeId>& seeds,
                                Score r_max, Rng& rng);

}  // namespace resacc

#endif  // RESACC_CORE_SEED_SET_QUERY_H_

#include "resacc/core/h_hop_fwd.h"

#include <cmath>

#include "resacc/core/frontier.h"
#include "resacc/util/check.h"

namespace resacc {
namespace {

// Eligibility for pushing during the accumulating phase: the source is
// excluded when loop accumulation is on (its residue accumulates instead),
// and nodes beyond the h-hop set are excluded when the subgraph restriction
// is on (they form the frontier whose residue accumulates for OMFWD).
struct Eligibility {
  const HopLayers* layers;  // null when the subgraph restriction is off
  std::uint32_t num_hops;
  NodeId source;
  bool exclude_source;

  bool CanPush(NodeId v) const {
    if (exclude_source && v == source) return false;
    if (layers != nullptr && !layers->InHopSet(v, num_hops)) return false;
    return true;
  }
};

}  // namespace

HHopFwdStats RunHHopFwd(const Graph& graph, const RwrConfig& config,
                        NodeId source, const HHopFwdOptions& options,
                        PushState& state, HopLayers* layers) {
  RESACC_CHECK(source < graph.num_nodes());
  RESACC_CHECK(options.r_max_hop > 0.0);
  HHopFwdStats stats;

  std::uint32_t effective_hops = options.num_hops;
  if (options.use_hop_subgraph) {
    *layers = ComputeHopLayers(graph, source, options.num_hops + 1);
    if (options.max_hop_set_fraction > 0.0) {
      const std::size_t cap = std::max<std::size_t>(
          1, static_cast<std::size_t>(options.max_hop_set_fraction *
                                      static_cast<double>(graph.num_nodes())));
      // Floor the shrink at 1 hop: h = 0 left a degenerate {source} hop
      // set whose entire mass fell to remedy walks (the hub-source
      // degradation this floor fixes). When even the 1-hop set exceeds
      // the cap, shrink_floored flags it for the hybrid selector.
      while (effective_hops > 1 &&
             layers->HopSetSize(effective_hops) > cap) {
        --effective_hops;
      }
      stats.shrink_hops = options.num_hops - effective_hops;
      stats.shrink_floored = effective_hops >= 1 &&
                             layers->HopSetSize(effective_hops) > cap;
      if (effective_hops < options.num_hops) {
        // Drop the unused deeper layers so layers.back() is the frontier
        // L_(h_eff+1) that OMFWD consumes.
        layers->layers.resize(effective_hops + 2);
      }
    }
    stats.hop_set_size = layers->HopSetSize(effective_hops);
    stats.frontier_size = layers->layers.back().size();
    for (std::size_t h = 0; h <= effective_hops && h < layers->layers.size();
         ++h) {
      for (NodeId v : layers->layers[h]) {
        stats.hop_set_edges += graph.OutDegree(v);
      }
    }
  } else {
    // No-SG ablation: no BFS runs and the whole graph acts as the
    // subgraph, so the stats report n nodes / m edges of working set (see
    // the header convention) with an empty frontier.
    layers->layers.assign(options.num_hops + 2, {});
    layers->distance.clear();
    stats.hop_set_size = graph.num_nodes();
    stats.frontier_size = 0;
    stats.hop_set_edges = graph.num_edges();
  }
  stats.effective_hops = effective_hops;

  // Hybrid selection point 1 (core/power_iter.h): with the BFS-derived
  // stats known and nothing pushed yet, the caller can take the query
  // dense. Seed the unit of residue mass so the state is the exact
  // starting point of the whole computation either way.
  if (options.use_hop_subgraph && options.dense_probe &&
      options.dense_probe(stats)) {
    stats.aborted_for_dense = true;
    state.SetResidue(source, 1.0);
    return stats;
  }

  const Eligibility eligible{
      options.use_hop_subgraph ? layers : nullptr, effective_hops, source,
      /*exclude_source=*/options.use_loop_accumulation};

  // Accumulating phase (Algorithm 3 lines 1-7): the very first push at s,
  // then exhaust the push condition over eligible nodes.
  state.SetResidue(source, 1.0);
  ForwardPushAt(graph, config, source, source, state, stats.push);

  // Shared round-based work list (frontier.h): the source's neighbours
  // (plus the source itself, without loop accumulation) seed round 0 in
  // CSR order; eligibility is enforced at scheduling time, so a scheduled
  // node is always inside the hop set (and never the excluded source).
  Frontier frontier(graph.num_nodes());
  auto try_schedule = [&](NodeId v) {
    if (eligible.CanPush(v) &&
        SatisfiesPushCondition(graph, state, v, options.r_max_hop)) {
      frontier.Schedule(v);
    }
  };
  for (NodeId v : graph.OutNeighbors(source)) {
    if (eligible.CanPush(v) &&
        SatisfiesPushCondition(graph, state, v, options.r_max_hop)) {
      frontier.Seed(v);
    }
  }
  if (!options.use_loop_accumulation &&
      SatisfiesPushCondition(graph, state, source, options.r_max_hop)) {
    frontier.Seed(source);
  }

  std::uint64_t pops = 0;
  bool stopped = false;
  NodeId node;
  while (frontier.Next(&node)) {
    if (options.cancel != nullptr && (++pops % 512) == 0 &&
        options.cancel->ShouldStop()) {
      stopped = true;
      break;
    }
    if (!SatisfiesPushCondition(graph, state, node, options.r_max_hop)) {
      continue;
    }
    ForwardPushAt(graph, config, source, node, state, stats.push);
    for (NodeId v : graph.OutNeighbors(node)) try_schedule(v);
    if (config.dangling == DanglingPolicy::kBackToSource) try_schedule(source);
  }

  // Cancelled mid-phase: the updating phase extrapolates T completed
  // accumulating phases, which a truncated phase is not — skip it and
  // leave the mass-conserving partial state for the caller to report.
  if (stopped || !options.use_loop_accumulation) return stats;

  // Updating phase (Algorithm 3 lines 8-18): extrapolate the remaining
  // accumulating phases in O(touched).
  const Score rho = state.residue(source);
  stats.rho = rho;
  if (rho <= 0.0) return stats;
  RESACC_CHECK_MSG(rho < 1.0, "source residue must shrink per phase");

  // T = smallest integer with rho^T strictly below the push threshold of s
  // (see header; floor+1 also covers the exact-boundary case that
  // the paper's ceil formula misses).
  const double degree_s =
      std::max<double>(1.0, static_cast<double>(graph.OutDegree(source)));
  const double threshold_arg = options.r_max_hop * degree_s;
  double loop_count = 1.0;
  if (threshold_arg < 1.0 && rho >= threshold_arg) {
    loop_count = std::floor(std::log(threshold_arg) / std::log(rho)) + 1.0;
    loop_count = std::max(loop_count, 1.0);
  }
  stats.loop_count = loop_count;

  const Score rho_pow_t = std::pow(rho, loop_count);
  const Score scaler = (1.0 - rho_pow_t) / (1.0 - rho);
  stats.scaler = scaler;

  for (NodeId v : state.touched()) {
    state.ScaleReserve(v, scaler);
    if (v == source) {
      state.SetResidue(source, rho_pow_t);
    } else {
      state.ScaleResidue(v, scaler);
    }
  }
  return stats;
}

}  // namespace resacc

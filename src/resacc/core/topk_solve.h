#ifndef RESACC_CORE_TOPK_SOLVE_H_
#define RESACC_CORE_TOPK_SOLVE_H_

#include <cstddef>

#include "resacc/core/push_state.h"
#include "resacc/core/rwr_config.h"
#include "resacc/core/topk.h"
#include "resacc/core/walk_engine.h"
#include "resacc/graph/graph.h"
#include "resacc/util/cancellation.h"
#include "resacc/util/rng.h"

namespace resacc {

// Finishes a top-k query from a post-OMFWD push state (ResAcc phases 1-2
// already run at threshold `r_max_start`). The push invariant
//   pi(v) = reserve(v) + sum_u r(u) pi_u(v)
// brackets every score deterministically: reserve(v) <= pi(v) <=
// reserve(v) + r_sum. The solver:
//
//  1. checks separation — k-th largest reserve >= (k+1)-th largest
//     reserve + r_sum means the current top-k BY RESERVE is the exact
//     top-k by score (>= is sound at boundary ties: an outsider can at
//     best equal the k-th score, so the returned set is still a valid
//     top-k);
//  2. while not separated, refines: reruns the forward search at
//     r_max / shrink^i, rechecking separation at every Frontier round
//     boundary (PushRoundHook) and between stages, under the floor /
//     edge-budget / profitability guards of TopKOptions;
//  3. on separation returns a certified result WITHOUT running remedy
//     (the whole walk budget is unspent — the r_sum slack in the upper
//     bounds is what remains of it);
//  4. otherwise falls back to the normal remedy on the refined state
//     (fewer walks than an unrefined full query, since the walk count is
//     proportional to the remaining r_sum) and returns the approximate
//     top-k of the full vector.
//
// `push_status` is the status phases 1-2 stopped with; non-OK skips
// refinement and remedy and returns a degraded bracket of the partial
// reserves. `query_rng` and `engine` are only used by the fallback remedy
// (a certified result draws no randomness — Rng::Fork is const, so
// skipping remedy does not perturb later queries).
//
// Deterministic in (state, k, options) alone: the batched solver bridges
// each lane's bit-identical post-OMFWD state into a scratch PushState and
// calls this same function, so batched top-k is bit-identical to serial
// by construction. `state` is consumed (refined in place).
TopKResult SolveTopKFromState(const Graph& graph, const RwrConfig& config,
                              NodeId source, std::size_t k, Score r_max_start,
                              double walk_scale, const TopKOptions& options,
                              PushState& state, Rng& query_rng,
                              WalkEngine* engine,
                              const CancellationToken* cancel,
                              const Status& push_status);

}  // namespace resacc

#endif  // RESACC_CORE_TOPK_SOLVE_H_

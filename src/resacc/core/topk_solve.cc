#include "resacc/core/topk_solve.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "resacc/core/forward_push.h"
#include "resacc/core/remedy.h"
#include "resacc/obs/metrics_registry.h"
#include "resacc/obs/trace.h"

namespace resacc {
namespace {

// Same function-local-static idiom as SolverMetrics (resacc_solver.cc):
// registered once, relaxed atomics per record.
struct TopKMetrics {
  Counter& queries;
  Counter& certified;
  Counter& fallback;
  LatencyHistogram& refine_rounds;
  LatencyHistogram& bound_gap;

  static TopKMetrics& Get() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static TopKMetrics metrics{
        registry.GetCounter("resacc_topk_queries_total", "",
                            "Top-k RWR queries answered (solver level)."),
        registry.GetCounter(
            "resacc_topk_certified_total", "",
            "Top-k queries answered by a separation certificate "
            "(early-terminated; remedy walks skipped entirely)."),
        registry.GetCounter(
            "resacc_topk_fallback_total", "",
            "Top-k queries that fell back to a full approximate solve "
            "after refinement failed to separate rank k."),
        registry.GetHistogram(
            "resacc_topk_refine_rounds", "",
            "Refinement stages run before a top-k query stopped "
            "(0 = separated straight after OMFWD)."),
        registry.GetHistogram(
            "resacc_topk_bound_gap", "",
            "Certificate margin at stop: k-th lower bound minus the "
            "best outsider upper bound (certified queries only)."),
    };
    return metrics;
  }
};

// The current separation picture of `state` at rank k (k pre-clamped to
// <= n). kth_lower is the k-th largest reserve (0 when fewer than k nodes
// were touched: untouched nodes pad the answer at reserve 0), and
// outsider_upper bounds every node outside that top-k set:
// (k+1)-th largest reserve + r_sum.
struct SeparationView {
  bool separated = false;
  Score kth_lower = 0.0;
  Score outsider_upper = 0.0;
  Score r_sum = 0.0;
};

// Descending reserve, ties by ascending id — the TopKIndices order.
struct ByReserve {
  const PushState& state;
  bool operator()(NodeId a, NodeId b) const {
    const Score ra = state.reserve(a);
    const Score rb = state.reserve(b);
    if (ra != rb) return ra > rb;
    return a < b;
  }
};

SeparationView CheckSeparation(const PushState& state, NodeId num_nodes,
                               std::size_t k, std::vector<NodeId>& scratch) {
  SeparationView view;
  view.r_sum = state.ResidueSum();
  if (k >= num_nodes) {
    // Every node is in the answer; nothing to separate from.
    view.separated = true;
    return view;
  }
  const auto touched = state.touched();
  scratch.assign(touched.begin(), touched.end());
  const std::size_t top = std::min(scratch.size(), k + 1);
  std::partial_sort(scratch.begin(),
                    scratch.begin() + static_cast<long>(top), scratch.end(),
                    ByReserve{state});
  view.kth_lower = scratch.size() >= k ? state.reserve(scratch[k - 1]) : 0.0;
  // Untouched nodes have reserve 0, so when fewer than k+1 nodes are
  // touched the best outsider reserve is 0 (k < n guarantees outsiders
  // exist).
  const Score outsider_reserve =
      scratch.size() > k ? state.reserve(scratch[k]) : 0.0;
  view.outsider_upper = outsider_reserve + view.r_sum;
  view.separated = view.kth_lower >= view.outsider_upper;
  return view;
}

// Fills result.entries with the top min(k, n) nodes by reserve, bracketed
// by [reserve, reserve + r_sum]. Pads with untouched (exactly-zero when
// r_sum = 0) nodes in ascending id when fewer than min(k, n) were touched.
void EntriesFromReserves(const PushState& state, NodeId num_nodes,
                         std::size_t k, Score r_sum, TopKResult& result,
                         std::vector<NodeId>& scratch) {
  const std::size_t rows = std::min<std::size_t>(k, num_nodes);
  const auto touched = state.touched();
  scratch.assign(touched.begin(), touched.end());
  const std::size_t top = std::min(scratch.size(), rows);
  std::partial_sort(scratch.begin(),
                    scratch.begin() + static_cast<long>(top), scratch.end(),
                    ByReserve{state});
  result.entries.clear();
  result.entries.reserve(rows);
  for (std::size_t i = 0; i < top; ++i) {
    const NodeId v = scratch[i];
    const Score reserve = state.reserve(v);
    result.entries.push_back({v, reserve, reserve, reserve + r_sum});
  }
  if (result.entries.size() < rows) {
    std::vector<std::uint8_t> in_touched(num_nodes, 0);
    for (NodeId v : touched) in_touched[v] = 1;
    for (NodeId v = 0; v < num_nodes && result.entries.size() < rows; ++v) {
      if (!in_touched[v]) result.entries.push_back({v, 0.0, 0.0, r_sum});
    }
  }
}

}  // namespace

TopKResult SolveTopKFromState(const Graph& graph, const RwrConfig& config,
                              NodeId source, std::size_t k, Score r_max_start,
                              double walk_scale, const TopKOptions& options,
                              PushState& state, Rng& query_rng,
                              WalkEngine* engine,
                              const CancellationToken* cancel,
                              const Status& push_status) {
  RESACC_SPAN("topk_solve");
  TopKMetrics& metrics = TopKMetrics::Get();
  metrics.queries.Increment();

  const NodeId n = graph.num_nodes();
  TopKResult result;
  result.k = k;
  result.achieved_epsilon = config.epsilon;
  std::vector<NodeId> scratch;

  // Degraded bracket of whatever the pushes accumulated before the stop.
  // Used when phases 1-2 were cut short and when refinement is cancelled.
  auto degraded_from_reserves = [&](const Status& status) {
    const Score r_sum = state.ResidueSum();
    result.status = status;
    result.certified = false;
    result.degraded = true;
    result.uncorrected_mass = r_sum;
    result.achieved_epsilon = config.epsilon + r_sum / config.delta;
    EntriesFromReserves(state, n, k, r_sum, result, scratch);
    if (k < n) {
      SeparationView sep = CheckSeparation(state, n, k, scratch);
      result.outsider_upper = sep.outsider_upper;
    }
    if (!result.entries.empty()) {
      result.bound_gap = result.entries.back().lower - result.outsider_upper;
    }
    return result;
  };

  if (!push_status.ok()) return degraded_from_reserves(push_status);
  if (k == 0) {
    result.certified = true;
    return result;
  }

  SeparationView sep = CheckSeparation(state, n, k, scratch);

  // Refinement: shrink r_max until rank k separates or a guard trips.
  const double steps_per_mass =
      config.WalkCountCoefficient() * walk_scale / config.alpha;
  const Score r_max_floor =
      static_cast<Score>(r_max_start * options.min_r_max_factor);
  const auto edge_budget = static_cast<std::uint64_t>(
      options.max_refine_edge_factor * static_cast<double>(graph.num_edges()));
  Score r_max = r_max_start;
  std::vector<NodeId> seeds;
  while (!sep.separated && !ShouldStop(cancel)) {
    const Score next_r_max = static_cast<Score>(r_max / options.shrink);
    if (next_r_max < r_max_floor) break;
    if (result.refine_edges >= edge_budget) break;

    // Stage seeds: every node meeting the push condition at the tightened
    // threshold, in canonical ascending-id order (round-0 seeds run in
    // caller order — sorting keeps the whole stage a pure function of the
    // state, the property batched replay relies on).
    seeds.clear();
    for (NodeId v : state.touched()) {
      if (state.residue(v) > 0.0 &&
          SatisfiesPushCondition(graph, state, v, next_r_max)) {
        seeds.push_back(v);
      }
    }
    std::sort(seeds.begin(), seeds.end());

    const Score r_sum_before = sep.r_sum;
    PushStats stage;
    if (!seeds.empty()) {
      PushRoundHook hook = [&](std::size_t) {
        sep = CheckSeparation(state, n, k, scratch);
        return sep.separated;
      };
      stage = RunForwardSearch(graph, config, source, next_r_max, seeds,
                               /*push_seeds_unconditionally=*/false, state,
                               PushOrder::kFifo, cancel, &hook);
      result.refine_edges += stage.edge_traversals;
    }
    ++result.refine_stages;
    r_max = next_r_max;
    if (!sep.separated) sep = CheckSeparation(state, n, k, scratch);
    if (sep.separated) break;

    // Profitability guard: the walks this stage saved are proportional to
    // the residue it drained; once a stage costs more than `profit_slack`
    // times that (plus a small constant so empty stages keep shrinking),
    // further pushing is worse than just walking the remainder.
    const double saved_steps = (r_sum_before - sep.r_sum) * steps_per_mass;
    if (static_cast<double>(stage.edge_traversals) >
        options.profit_slack * saved_steps + 1024.0) {
      break;
    }
  }

  if (!sep.separated && ShouldStop(cancel)) {
    return degraded_from_reserves(cancel->StopStatus());
  }

  if (sep.separated) {
    // Certificate holds: the top-k by reserve is an exact top-k by score.
    // Remedy is skipped wholesale — the unspent walk budget is exactly the
    // r_sum slack the upper bounds carry.
    result.certified = true;
    EntriesFromReserves(state, n, k, sep.r_sum, result, scratch);
    result.outsider_upper = k >= n ? 0.0 : sep.outsider_upper;
    if (!result.entries.empty()) {
      result.bound_gap = result.entries.back().lower - result.outsider_upper;
    }
    metrics.certified.Increment();
    metrics.refine_rounds.Record(static_cast<double>(result.refine_stages));
    metrics.bound_gap.Record(static_cast<double>(result.bound_gap));
    return result;
  }

  // Fallback: finish as a full approximate query on the refined state.
  // The remedy walk count is proportional to the remaining r_sum, so the
  // refinement's drain carries over as fewer walks.
  metrics.fallback.Increment();
  metrics.refine_rounds.Record(static_cast<double>(result.refine_stages));
  std::vector<Score> scores(n, 0.0);
  for (NodeId v : state.touched()) scores[v] = state.reserve(v);
  RemedyStats remedy;
  {
    RESACC_SPAN("topk_remedy");
    remedy = RunRemedy(graph, config, source, state, query_rng, scores,
                       walk_scale, /*time_budget_seconds=*/0.0, engine,
                       cancel);
  }
  const bool truncated = remedy.uncorrected_mass > 0.0;
  TopKResult approx = MakeApproximateTopK(
      scores, k,
      truncated ? config.epsilon + remedy.uncorrected_mass / config.delta
                : config.epsilon,
      truncated, remedy.uncorrected_mass);
  if (remedy.cancelled && cancel != nullptr) {
    approx.status = cancel->StopStatus();
  }
  approx.refine_stages = result.refine_stages;
  approx.refine_edges = result.refine_edges;
  return approx;
}

}  // namespace resacc

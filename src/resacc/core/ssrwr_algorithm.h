#ifndef RESACC_CORE_SSRWR_ALGORITHM_H_
#define RESACC_CORE_SSRWR_ALGORITHM_H_

#include <cstddef>
#include <string>
#include <vector>

#include "resacc/core/topk.h"
#include "resacc/util/cancellation.h"
#include "resacc/util/status.h"
#include "resacc/util/types.h"

namespace resacc {

// Caller-supplied controls for a cancellable query. Extended by value so
// new knobs never break solver signatures.
struct QueryControl {
  // Polled cooperatively during the query; null = run to completion.
  const CancellationToken* cancel = nullptr;
};

// Outcome of QueryControlled. When the query ran to completion, `status`
// is OK, `degraded` is false and `scores` is exactly what Query() would
// have returned. When the token stopped it early (kCancelled /
// kDeadlineExceeded) — or a solver-level time budget truncated the walk
// phase — `scores` holds the partial estimate that was safe to keep and
// `achieved_epsilon` the bound it still satisfies.
struct ControlledQueryResult {
  Status status;
  std::vector<Score> scores;
  // True when `scores` left some probability mass uncorrected; the
  // configured relative-error bound no longer applies as-is.
  bool degraded = false;
  // The unconverted mass: residue not walked by remedy, or walk mass
  // skipped by MC. Adds at most `uncorrected_mass` absolute error to any
  // single score.
  Score uncorrected_mass = 0.0;
  // Honest accuracy tag: every node with pi > delta satisfies
  // |pi_hat - pi| <= achieved_epsilon * pi with the configured failure
  // probability. Complete runs report the configured epsilon; truncated
  // runs report epsilon + uncorrected_mass / delta (the skipped mass adds
  // <= uncorrected_mass absolute error, and pi > delta relativizes it).
  // Solvers without cancellation support leave it 0 ("as configured").
  double achieved_epsilon = 0.0;
};

// Common interface of every single-source RWR solver in the library, so the
// evaluation harness and the benches treat ResAcc and the baselines
// uniformly. A solver is bound to one graph at construction; Query may be
// called repeatedly (solvers reuse internal workspaces).
class SsrwrAlgorithm {
 public:
  virtual ~SsrwrAlgorithm() = default;

  virtual const std::string& name() const = 0;

  // Estimated RWR values of every node w.r.t. `source`.
  virtual std::vector<Score> Query(NodeId source) = 0;

  // Cancellable query. The default implementation ignores the token and
  // delegates to Query (correct for solvers without an incremental
  // result); ResAcc, FORA and MC override it to honor `control.cancel`
  // at phase and walk-block boundaries and to report partial results
  // with an honest achieved-epsilon tag.
  virtual ControlledQueryResult QueryControlled(NodeId source,
                                                const QueryControl& control) {
    (void)control;
    ControlledQueryResult result;
    result.scores = Query(source);
    return result;
  }

  // Top-k query: the k best-scored nodes with per-entry [lower, upper]
  // bound certificates (see TopKResult for the exact contract). The
  // default runs a full controlled query and brackets its top-k with the
  // epsilon-relative bounds — correct for every solver, no early exit.
  // ResAccSolver overrides with bound-driven early termination that can
  // skip the walk phase entirely (topk_solve.h).
  virtual TopKResult QueryTopK(NodeId source, std::size_t k,
                               const QueryControl& control = QueryControl{}) {
    ControlledQueryResult full = QueryControlled(source, control);
    TopKResult result =
        MakeApproximateTopK(full.scores, k, full.achieved_epsilon,
                            full.degraded, full.uncorrected_mass);
    result.status = full.status;
    return result;
  }

  // MSRWR (Section VI "Extension to MSRWR"): one SSRWR per source, the
  // natural extension the paper evaluates. Overridable if a solver can
  // share work across sources.
  virtual std::vector<std::vector<Score>> QueryMany(
      const std::vector<NodeId>& sources) {
    std::vector<std::vector<Score>> results;
    results.reserve(sources.size());
    for (NodeId s : sources) results.push_back(Query(s));
    return results;
  }
};

// Interface of index-oriented solvers (BePI, TPA, FORA+): they add an
// offline phase and report index footprint; Table IV and Fig. 23 use these.
class IndexedSsrwrAlgorithm : public SsrwrAlgorithm {
 public:
  // Builds the offline index. May fail, e.g. kResourceExhausted when the
  // index would exceed a configured memory budget.
  virtual Status BuildIndex() = 0;

  virtual bool IndexReady() const = 0;

  // Bytes held by the index (excluding the graph itself).
  virtual std::size_t IndexBytes() const = 0;

  // Index maintenance after a node deletion. The methods the paper
  // studies all rebuild from scratch (Appendix I); solvers may override
  // with something smarter. Returns the rebuild status.
  virtual Status UpdateAfterNodeDeletion(NodeId /*node*/) {
    return BuildIndex();
  }
};

}  // namespace resacc

#endif  // RESACC_CORE_SSRWR_ALGORITHM_H_

#ifndef RESACC_CORE_SSRWR_ALGORITHM_H_
#define RESACC_CORE_SSRWR_ALGORITHM_H_

#include <cstddef>
#include <string>
#include <vector>

#include "resacc/util/status.h"
#include "resacc/util/types.h"

namespace resacc {

// Common interface of every single-source RWR solver in the library, so the
// evaluation harness and the benches treat ResAcc and the baselines
// uniformly. A solver is bound to one graph at construction; Query may be
// called repeatedly (solvers reuse internal workspaces).
class SsrwrAlgorithm {
 public:
  virtual ~SsrwrAlgorithm() = default;

  virtual const std::string& name() const = 0;

  // Estimated RWR values of every node w.r.t. `source`.
  virtual std::vector<Score> Query(NodeId source) = 0;

  // MSRWR (Section VI "Extension to MSRWR"): one SSRWR per source, the
  // natural extension the paper evaluates. Overridable if a solver can
  // share work across sources.
  virtual std::vector<std::vector<Score>> QueryMany(
      const std::vector<NodeId>& sources) {
    std::vector<std::vector<Score>> results;
    results.reserve(sources.size());
    for (NodeId s : sources) results.push_back(Query(s));
    return results;
  }
};

// Interface of index-oriented solvers (BePI, TPA, FORA+): they add an
// offline phase and report index footprint; Table IV and Fig. 23 use these.
class IndexedSsrwrAlgorithm : public SsrwrAlgorithm {
 public:
  // Builds the offline index. May fail, e.g. kResourceExhausted when the
  // index would exceed a configured memory budget.
  virtual Status BuildIndex() = 0;

  virtual bool IndexReady() const = 0;

  // Bytes held by the index (excluding the graph itself).
  virtual std::size_t IndexBytes() const = 0;

  // Index maintenance after a node deletion. The methods the paper
  // studies all rebuild from scratch (Appendix I); solvers may override
  // with something smarter. Returns the rebuild status.
  virtual Status UpdateAfterNodeDeletion(NodeId /*node*/) {
    return BuildIndex();
  }
};

}  // namespace resacc

#endif  // RESACC_CORE_SSRWR_ALGORITHM_H_

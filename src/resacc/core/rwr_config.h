#ifndef RESACC_CORE_RWR_CONFIG_H_
#define RESACC_CORE_RWR_CONFIG_H_

#include <cmath>
#include <cstdint>

#include "resacc/util/status.h"
#include "resacc/util/types.h"

namespace resacc {

// What a random walk (or its push-operation counterpart) does at a node with
// no out-neighbours. The paper assumes none exist; real graphs have sinks.
// Both policies conserve total probability mass; see DESIGN.md.
enum class DanglingPolicy {
  // Walk jumps back to the query source and continues (the convention of
  // the released FORA code). Forward pushes route (1-alpha) of a dangling
  // node's residue back to the source.
  kBackToSource,
  // Walk terminates at the sink; pushes convert the whole residue of a
  // dangling node into its reserve. Required by the backward-push
  // algorithms (BiPPR, TopPPR), whose traversal cannot depend on the
  // query source.
  kAbsorb,
};

// Query-level parameters of the approximate SSRWR problem (Definition 1)
// shared by every algorithm in the library.
struct RwrConfig {
  // Restart (termination) probability of the walk. Paper default 0.2.
  double alpha = 0.2;
  // Relative error bound for nodes above `delta`. Paper default 0.5.
  double epsilon = 0.5;
  // RWR-value threshold above which the guarantee applies. Paper: 1/n.
  double delta = 1e-6;
  // Failure probability. Paper: 1/n.
  double p_f = 1e-6;

  DanglingPolicy dangling = DanglingPolicy::kBackToSource;

  // Master seed for the randomized phases; forked per query.
  std::uint64_t seed = 0x5eedULL;

  // Returns delta = p_f = 1/n defaults applied, the paper's standard setup.
  static RwrConfig ForGraphSize(NodeId num_nodes) {
    RwrConfig config;
    config.delta = 1.0 / static_cast<double>(num_nodes);
    config.p_f = 1.0 / static_cast<double>(num_nodes);
    return config;
  }

  Status Validate() const {
    if (!(alpha > 0.0 && alpha < 1.0)) {
      return Status::InvalidArgument("alpha must be in (0,1)");
    }
    if (!(epsilon > 0.0)) {
      return Status::InvalidArgument("epsilon must be positive");
    }
    if (!(delta > 0.0 && delta <= 1.0)) {
      return Status::InvalidArgument("delta must be in (0,1]");
    }
    if (!(p_f > 0.0 && p_f < 1.0)) {
      return Status::InvalidArgument("p_f must be in (0,1)");
    }
    return Status::Ok();
  }

  // c = (2 eps / 3 + 2) * ln(2 / p_f) / (eps^2 * delta): the walk-count
  // coefficient of Theorem 3. The remedy phase runs n_r = r_sum * c walks.
  double WalkCountCoefficient() const {
    return (2.0 * epsilon / 3.0 + 2.0) * std::log(2.0 / p_f) /
           (epsilon * epsilon * delta);
  }
};

}  // namespace resacc

#endif  // RESACC_CORE_RWR_CONFIG_H_

#ifndef RESACC_CORE_BACKWARD_PUSH_H_
#define RESACC_CORE_BACKWARD_PUSH_H_

#include "resacc/core/forward_push.h"
#include "resacc/core/push_state.h"
#include "resacc/core/rwr_config.h"
#include "resacc/graph/graph.h"

namespace resacc {

// Backward (reverse) local push from a target node t (Andersen et al.;
// used by BiPPR and TopPPR). After it finishes, for every source s:
//
//   pi(s, t) = reserve(s) + sum_v pi(s, v) * residue(v)
//
// with every residue below `r_max`. The identity is exact under
// DanglingPolicy::kAbsorb (sinks get a dedicated push rule — see the .cc).
// The kBackToSource policy is not representable backwards (the traversal
// cannot know the query source), so backward-based algorithms (BiPPR,
// TopPPR) must be paired with kAbsorb; see DESIGN.md.
//
// The state must be Reset; this function seeds residue(target) = 1.
PushStats RunBackwardSearch(const Graph& graph, const RwrConfig& config,
                            NodeId target, Score r_max, PushState& state);

}  // namespace resacc

#endif  // RESACC_CORE_BACKWARD_PUSH_H_

#ifndef RESACC_CORE_RANDOM_WALK_H_
#define RESACC_CORE_RANDOM_WALK_H_

#include <cmath>
#include <cstdint>

#include "resacc/core/rwr_config.h"
#include "resacc/graph/graph.h"
#include "resacc/util/rng.h"

namespace resacc {

// Counters for walk-based phases.
struct WalkStats {
  std::uint64_t walks = 0;
  std::uint64_t steps = 0;

  WalkStats& operator+=(const WalkStats& other) {
    walks += other.walks;
    steps += other.steps;
    return *this;
  }
};

// Simulates one random walk with restart-as-termination (Section II-A):
// starting at `start`, the walk terminates with probability alpha at each
// step, otherwise moves to a uniform out-neighbour. Dangling behaviour per
// config (jump to `restart_node` or absorb). Returns the terminal node.
inline NodeId RandomWalkTerminal(const Graph& graph, const RwrConfig& config,
                                 NodeId restart_node, NodeId start, Rng& rng,
                                 WalkStats& stats) {
  NodeId current = start;
  ++stats.walks;
  while (!rng.Bernoulli(config.alpha)) {
    const NodeId degree = graph.OutDegree(current);
    if (degree == 0) {
      if (config.dangling == DanglingPolicy::kAbsorb) return current;
      current = restart_node;
    } else {
      current = graph.OutNeighbor(current, rng.NextBounded32(degree));
    }
    ++stats.steps;
  }
  return current;
}

// Precomputed factor for GeometricWalkLength: 1 / ln(1 - alpha). Negative;
// hoist it out of the walk loop (log is far more expensive than the draw).
inline double InvLogOneMinusAlpha(double alpha) {
  return 1.0 / std::log1p(-alpha);
}

// Number of moves before the restart-termination fires: L with
// P(L >= k) = (1-alpha)^k, sampled by inversion from ONE uniform draw —
// replaces the per-step Bernoulli(alpha) draw of RandomWalkTerminal and
// roughly halves the RNG work per step.
inline std::uint64_t GeometricWalkLength(Rng& rng, double inv_log1m_alpha) {
  // u in [0, 1), so log1p(-u) = ln(1-u) is finite and <= 0; the ratio of
  // two non-positive numbers gives L >= 0, with u = 0 mapping to L = 0.
  const double u = rng.NextDouble();
  return static_cast<std::uint64_t>(std::log1p(-u) * inv_log1m_alpha);
}

// RandomWalkTerminal with the walk length pre-sampled geometrically. The
// terminal-node distribution is identical (the per-step engine's step count
// is exactly this geometric variable); only the RNG stream differs. Pass
// inv_log1m_alpha = InvLogOneMinusAlpha(config.alpha).
inline NodeId RandomWalkTerminalGeometric(const Graph& graph,
                                          const RwrConfig& config,
                                          NodeId restart_node, NodeId start,
                                          double inv_log1m_alpha, Rng& rng,
                                          WalkStats& stats) {
  NodeId current = start;
  ++stats.walks;
  for (std::uint64_t remaining = GeometricWalkLength(rng, inv_log1m_alpha);
       remaining > 0; --remaining) {
    const NodeId degree = graph.OutDegree(current);
    if (degree == 0) {
      // Same sink behaviour as the per-step engine: absorb ends the walk
      // regardless of the remaining length; back-to-source costs a step.
      if (config.dangling == DanglingPolicy::kAbsorb) return current;
      current = restart_node;
    } else {
      current = graph.OutNeighbor(current, rng.NextBounded32(degree));
    }
    ++stats.steps;
  }
  return current;
}

}  // namespace resacc

#endif  // RESACC_CORE_RANDOM_WALK_H_

#ifndef RESACC_CORE_RANDOM_WALK_H_
#define RESACC_CORE_RANDOM_WALK_H_

#include <cstdint>

#include "resacc/core/rwr_config.h"
#include "resacc/graph/graph.h"
#include "resacc/util/rng.h"

namespace resacc {

// Counters for walk-based phases.
struct WalkStats {
  std::uint64_t walks = 0;
  std::uint64_t steps = 0;

  WalkStats& operator+=(const WalkStats& other) {
    walks += other.walks;
    steps += other.steps;
    return *this;
  }
};

// Simulates one random walk with restart-as-termination (Section II-A):
// starting at `start`, the walk terminates with probability alpha at each
// step, otherwise moves to a uniform out-neighbour. Dangling behaviour per
// config (jump to `restart_node` or absorb). Returns the terminal node.
inline NodeId RandomWalkTerminal(const Graph& graph, const RwrConfig& config,
                                 NodeId restart_node, NodeId start, Rng& rng,
                                 WalkStats& stats) {
  NodeId current = start;
  ++stats.walks;
  while (!rng.Bernoulli(config.alpha)) {
    const NodeId degree = graph.OutDegree(current);
    if (degree == 0) {
      if (config.dangling == DanglingPolicy::kAbsorb) return current;
      current = restart_node;
    } else {
      current = graph.OutNeighbor(current, rng.NextBounded32(degree));
    }
    ++stats.steps;
  }
  return current;
}

}  // namespace resacc

#endif  // RESACC_CORE_RANDOM_WALK_H_

#include "resacc/core/batch_solver.h"

#include <algorithm>
#include <cmath>
#include <type_traits>
#include <utility>

#include "resacc/core/forward_push.h"
#include "resacc/core/h_hop_fwd.h"
#include "resacc/core/power_iter.h"
#include "resacc/core/remedy.h"
#include "resacc/core/topk_solve.h"
#include "resacc/util/check.h"
#include "resacc/util/timer.h"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace resacc {

namespace {

// Half-width of the divide-free push-condition screen, relative to
// r_max*degree (see the scheduling sweep in ApplyPush). IEEE-754 double
// rounding perturbs the compared quantities by at most ~3 ulp (~7e-16
// relative); 1e-14 brackets that with an order of magnitude to spare.
constexpr Score kCondMargin = 1e-14;

// Bitmask of the lanes whose row value is >= threshold. The bit-shift
// accumulation in the portable loop defeats autovectorization, so the
// AVX-512 path compares a whole 8-lane chunk into a predicate mask
// directly; both paths perform the identical IEEE comparisons.
inline BatchFrontier::LaneMask GeMask(const Score* row, std::size_t n,
                                      Score threshold) {
  using LaneMask = BatchFrontier::LaneMask;
  LaneMask out = 0;
  std::size_t b = 0;
#if defined(__AVX512F__)
  const __m512d t = _mm512_set1_pd(threshold);
  for (; b + 8 <= n; b += 8) {
    const __mmask8 ge =
        _mm512_cmp_pd_mask(_mm512_loadu_pd(row + b), t, _CMP_GE_OQ);
    out |= static_cast<LaneMask>(ge) << b;
  }
#endif
  for (; b < n; ++b) {
    out |= static_cast<LaneMask>(row[b] >= threshold) << b;
  }
  return out;
}

}  // namespace

void BatchPushState::Configure(NodeId num_nodes, std::size_t num_lanes) {
  if (num_nodes_ == num_nodes && num_lanes_ == num_lanes) {
    Reset();
    return;
  }
  num_nodes_ = num_nodes;
  num_lanes_ = num_lanes;
  const std::size_t cells =
      static_cast<std::size_t>(num_nodes) * num_lanes;
  residue_.Resize(cells);
  reserve_.Resize(cells);
  touched_mask_.assign(num_nodes, 0);
  union_touched_.clear();
  lane_touched_.assign(num_lanes, {});
}

void BatchPushState::Reset() {
  for (NodeId v : union_touched_) {
    Score* residue = ResidueRow(v);
    Score* reserve = ReserveRow(v);
    for (std::size_t b = 0; b < num_lanes_; ++b) {
      residue[b] = 0.0;
      reserve[b] = 0.0;
    }
    touched_mask_[v] = 0;
  }
  union_touched_.clear();
  for (auto& lane : lane_touched_) lane.clear();
}

BatchSolver::BatchSolver(const Graph& graph, const RwrConfig& config,
                         const ResAccOptions& options)
    : graph_(graph),
      config_(config),
      backend_(Backend::kResAcc),
      resacc_options_(options),
      walk_scale_(options.walk_scale),
      name_("BatchResAcc"),
      frontier_(graph.num_nodes()),
      scratch_(graph.num_nodes()),
      seed_frontier_(graph.num_nodes()),
      rng_(config.seed),
      walk_engine_(options.walk_threads) {
  RESACC_CHECK(config_.Validate().ok());
  RESACC_CHECK(resacc_options_.r_max_hop > 0.0);
  r_max_f_ = options.r_max_f > 0.0
                 ? options.r_max_f
                 : 1.0 / (10.0 * static_cast<Score>(graph.num_edges()));
}

BatchSolver::BatchSolver(const Graph& graph, const RwrConfig& config,
                         const ForaOptions& options)
    : graph_(graph),
      config_(config),
      backend_(Backend::kFora),
      fora_options_(options),
      walk_scale_(options.walk_scale),
      name_("BatchFORA"),
      frontier_(graph.num_nodes()),
      scratch_(graph.num_nodes()),
      seed_frontier_(graph.num_nodes()),
      rng_(config.seed),
      walk_engine_(options.walk_threads) {
  RESACC_CHECK(config_.Validate().ok());
  if (options.r_max > 0.0) {
    fora_r_max_ = options.r_max;
  } else {
    const double c = config_.WalkCountCoefficient();
    fora_r_max_ =
        1.0 / std::sqrt(static_cast<double>(graph_.num_edges()) * c);
  }
}

BatchSolver::BatchSolver(const Graph& graph, const RwrConfig& config,
                         const MonteCarloBatchOptions& options)
    : graph_(graph),
      config_(config),
      backend_(Backend::kMonteCarlo),
      mc_options_(options),
      walk_scale_(options.walk_scale),
      name_("BatchMC"),
      frontier_(graph.num_nodes()),
      scratch_(graph.num_nodes()),
      seed_frontier_(graph.num_nodes()),
      rng_(config.seed),
      walk_engine_(options.walk_threads) {
  RESACC_CHECK(config_.Validate().ok());
  RESACC_CHECK(walk_scale_ > 0.0);
}

std::vector<ControlledQueryResult> BatchSolver::QueryBatch(
    std::span<const BatchLane> lanes, std::vector<TopKResult>* topk_results) {
  RESACC_CHECK(!lanes.empty() && lanes.size() <= kMaxLanes);
  bool any_topk = false;
  for (const BatchLane& lane : lanes) {
    RESACC_CHECK(lane.source < graph_.num_nodes());
    any_topk = any_topk || lane.top_k > 0;
  }
  RESACC_CHECK(!any_topk || topk_results != nullptr);
  if (topk_results != nullptr) {
    topk_results->assign(lanes.size(), TopKResult{});
  }
  topk_out_ = any_topk ? topk_results : nullptr;
  last_stats_ = BatchQueryStats();
  num_lanes_ = lanes.size();
  // Residue + reserve panels; beyond ~2x the L2 size the row fetches miss
  // enough for the kernels' prefetch stages to pay for themselves.
  constexpr std::size_t kPrefetchPanelBytes = std::size_t{4} << 20;
  prefetch_ = static_cast<std::size_t>(graph_.num_nodes()) * lanes.size() *
                  sizeof(Score) * 2 >
              kPrefetchPanelBytes;
  full_mask_ = num_lanes_ == kMaxLanes
                   ? ~LaneMask{0}
                   : ((LaneMask{1} << num_lanes_) - 1);
  detached_mask_ = 0;
  dense_mask_ = 0;

  std::vector<ControlledQueryResult> results(num_lanes_);
  switch (backend_) {
    case Backend::kResAcc:
      state_.Configure(graph_.num_nodes(), num_lanes_);
      RunResAccBatch(lanes, results);
      break;
    case Backend::kFora:
      state_.Configure(graph_.num_nodes(), num_lanes_);
      RunForaBatch(lanes, results);
      break;
    case Backend::kMonteCarlo:
      RunMonteCarloBatch(lanes, results);
      break;
  }
  // FORA/MC have no bound-certificate machinery; their top-k lanes mirror
  // the serial SsrwrAlgorithm::QueryTopK default — the full solve above
  // (bit-identical to serial) bracketed at its achieved epsilon.
  if (topk_out_ != nullptr && backend_ != Backend::kResAcc) {
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      if (lanes[i].top_k == 0) continue;
      TopKResult& tk = (*topk_out_)[i];
      tk = MakeApproximateTopK(results[i].scores, lanes[i].top_k,
                               results[i].achieved_epsilon,
                               results[i].degraded,
                               results[i].uncorrected_mass);
      tk.status = results[i].status;
    }
  }
  topk_out_ = nullptr;
  return results;
}

std::vector<ControlledQueryResult> BatchSolver::QueryAllChunked(
    std::span<const NodeId> sources, std::size_t batch_size) {
  RESACC_CHECK(batch_size >= 1 && batch_size <= kMaxLanes);
  std::vector<ControlledQueryResult> all;
  all.reserve(sources.size());
  std::vector<BatchLane> lanes;
  for (std::size_t i = 0; i < sources.size(); i += batch_size) {
    lanes.clear();
    const std::size_t end = std::min(sources.size(), i + batch_size);
    for (std::size_t j = i; j < end; ++j) {
      lanes.push_back(BatchLane{sources[j], nullptr});
    }
    std::vector<ControlledQueryResult> chunk = QueryBatch(lanes);
    for (ControlledQueryResult& r : chunk) all.push_back(std::move(r));
  }
  return all;
}

void BatchSolver::PollLanes(std::span<LaneRun> runs) {
  for (std::size_t b = 0; b < runs.size(); ++b) {
    LaneRun& run = runs[b];
    if (run.detached || run.cancel == nullptr) continue;
    if (run.cancel->ShouldStop()) {
      run.detached = true;
      run.status = run.cancel->StopStatus();
      detached_mask_ |= LaneMask{1} << b;
    }
  }
}

void BatchSolver::ScheduleLanes(NodeId v, const Score* rv,
                                LaneMask candidates, Score r_max,
                                BatchFrontier& frontier) {
  const NodeId dv = graph_.OutDegree(v);
  LaneMask sched = 0;
  if (dv == 0) {
    for (LaneMask m = candidates; m != 0; m &= m - 1) {
      const std::size_t b = BatchPushState::LaneOf(m);
      if (rv[b] >= r_max) sched |= LaneMask{1} << b;
    }
  } else {
    // Divide-free screen of the push condition: r/deg >= r_max is
    // bracketed by r >= r_max*deg*(1 -+ margin), with the margin wide
    // enough to cover both multiplications' and the division's rounding
    // (~3 ulp; the band is ~1e-14 relative). Residues clear of the band
    // decide with one multiply and a full-width predicate compare; only
    // in-band residues (astronomically rare for push residues) fall back
    // to the exact serial division, so every decision is bit-identical to
    // the serial check.
    const Score t = r_max * static_cast<Score>(dv);
    const Score hi = t * (1.0 + kCondMargin);
    const Score lo = t * (1.0 - kCondMargin);
    const LaneMask pass = GeMask(rv, num_lanes_, hi);
    sched = candidates & pass;
    for (LaneMask m = candidates & GeMask(rv, num_lanes_, lo) & ~pass;
         m != 0; m &= m - 1) {
      const std::size_t b = BatchPushState::LaneOf(m);
      if (rv[b] / static_cast<Score>(dv) >= r_max) {
        sched |= LaneMask{1} << b;
      }
    }
  }
  if (sched != 0) frontier.Schedule(v, sched);
}

void BatchSolver::ApplyPush(NodeId u, LaneMask gate, Score r_max,
                            std::span<LaneRun> runs,
                            BatchFrontier* frontier) {
  const std::size_t B = num_lanes_;
  const Score alpha = config_.alpha;
  const Score keep = 1.0 - config_.alpha;
  const auto neighbors = graph_.OutNeighbors(u);
  const NodeId degree = static_cast<NodeId>(neighbors.size());
  Score* ru = state_.ResidueRow(u);
  Score* pu = state_.ReserveRow(u);

  if (degree == 0) {
    // Dangling pushes stay scalar per lane: the kBackToSource back-flow
    // target differs per lane. Residue is consumed *before* the back-flow
    // credit — the source may be this very node (mirrors ForwardPushAt).
    for (LaneMask m = gate; m != 0; m &= m - 1) {
      const std::size_t b = BatchPushState::LaneOf(m);
      const Score residue = ru[b];
      if (residue <= 0.0) continue;
      ++last_stats_.push_operations;
      ru[b] = 0.0;
      if (config_.dangling == DanglingPolicy::kAbsorb) {
        pu[b] += residue;
      } else {
        pu[b] += alpha * residue;
        const NodeId src = runs[b].source;
        state_.Touch(src, LaneMask{1} << b);
        state_.ResidueRow(src)[b] += keep * residue;
      }
    }
  } else {
    const Score deg = static_cast<Score>(degree);
    // One pass over the CSR row for every pushing lane together: the
    // neighbour loop is the outer loop, so each SoA residue row is fetched
    // once and Touch runs once per neighbour regardless of how many lanes
    // push (per-lane touch order is still the CSR order its serial push
    // would produce — lanes' lists are independent). Shares are read from
    // the pre-deposit residues and the residues zeroed after the sweep, so
    // self-loops observe the serial push's operation order. The per-lane
    // expressions are the serial push's, verbatim — in particular
    // share = (1-alpha)*residue/deg, never rearranged.
    Score share[kMaxLanes];
    for (std::size_t b = 0; b < B; ++b) share[b] = 0.0;
    LaneMask active = 0;
    for (LaneMask m = gate; m != 0; m &= m - 1) {
      const std::size_t b = BatchPushState::LaneOf(m);
      const Score residue = ru[b];
      if (residue <= 0.0) continue;  // serial push is a no-op
      pu[b] += alpha * residue;
      share[b] = keep * residue / deg;
      active |= LaneMask{1} << b;
    }
    // Multi-lane pops take the blended row kernel: every lane's share is
    // deposited unconditionally (inactive lanes deposit exactly +0.0,
    // which leaves any IEEE double bit-identical, and Touch records only
    // the active lanes), so the inner loop is a branch-free contiguous
    // 0..B-1 sweep the compiler vectorizes. Single-lane pops (e.g. the
    // lane-local wavefront edges) skip the full-row write.
    constexpr int kBlendThreshold = 2;
    const int active_count = std::popcount(active);

    if (active_count >= kBlendThreshold) {
      // Walk-engine prefetch idiom on the deposit stream: hint the SoA
      // residue row far enough ahead to cover the memory fetch.
      // Dispatching on the batch width gives the deposit loop a
      // compile-time trip count, so it fully unrolls into straight-line
      // vector code with no loop-carried overhead.
      const auto deposit_rows = [&](auto width) {
        // Width 0 is the uncommon-batch-size fallback: a runtime trip
        // count instead of a fully unrolled one.
        constexpr std::size_t W = decltype(width)::value;
        const std::size_t row_width = W == 0 ? B : W;
        for (std::size_t i = 0; i < neighbors.size(); ++i) {
          if (prefetch_ && i + 8 < neighbors.size()) {
            __builtin_prefetch(state_.ResidueRow(neighbors[i + 8]), 1, 1);
            if (frontier != nullptr) frontier->PrefetchMasks(neighbors[i + 8]);
          }
          const NodeId v = neighbors[i];
          state_.Touch(v, active);
          Score* rv = state_.ResidueRow(v);
          for (std::size_t b = 0; b < row_width; ++b) rv[b] += share[b];
          // Fused post-push scheduling: CSR rows are deduplicated, so this
          // deposit is the only one v receives from this push and rv already
          // holds the post-push residues the serial sweep would read.
          // Self-loops are skipped exactly: u's active residues are zeroed
          // right after this loop (and its gated-but-inactive ones are
          // non-positive), so the serial condition on u is always false.
          if (frontier == nullptr || v == u) continue;
          const LaneMask unscheduled = gate & ~frontier->scheduled(v);
          if (unscheduled == 0) continue;
          ScheduleLanes(v, rv, unscheduled, r_max, *frontier);
        }
      };
      switch (B) {
        case 4:
          deposit_rows(std::integral_constant<std::size_t, 4>{});
          break;
        case 8:
          deposit_rows(std::integral_constant<std::size_t, 8>{});
          break;
        case 16:
          deposit_rows(std::integral_constant<std::size_t, 16>{});
          break;
        case kMaxLanes:
          deposit_rows(std::integral_constant<std::size_t, kMaxLanes>{});
          break;
        default:
          deposit_rows(std::integral_constant<std::size_t, 0>{});
          break;
      }
      for (std::size_t b = 0; b < B; ++b) {
        if ((active >> b) & 1u) ru[b] = 0.0;
      }
      last_stats_.dense_lane_pushes +=
          static_cast<std::uint64_t>(active_count);
    } else if (active != 0) {
      const std::size_t b = BatchPushState::LaneOf(active);
      const Score lane_share = share[b];
      const LaneMask bit = active;
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        if (prefetch_ && i + 8 < neighbors.size()) {
          __builtin_prefetch(state_.ResidueRow(neighbors[i + 8]), 1, 1);
          if (frontier != nullptr) frontier->PrefetchMasks(neighbors[i + 8]);
        }
        const NodeId v = neighbors[i];
        state_.Touch(v, bit);
        Score* rv = state_.ResidueRow(v);
        rv[b] += lane_share;
        // Fused scheduling, same reasoning as the blended kernel. The
        // candidates are the full gate: lanes whose push was a no-op still
        // run their serial sweep, and their rv entries are untouched here.
        if (frontier == nullptr || v == u) continue;
        const LaneMask unscheduled = gate & ~frontier->scheduled(v);
        if (unscheduled == 0) continue;
        ScheduleLanes(v, rv, unscheduled, r_max, *frontier);
      }
      ru[b] = 0.0;
    } else if (frontier != nullptr) {
      // Every gated push was a no-op (non-positive residue): nothing is
      // deposited or zeroed, but the serial search still runs its
      // scheduling sweep over the row with the residues unchanged —
      // including a self-loop back to u itself.
      for (const NodeId v : neighbors) {
        const LaneMask unscheduled = gate & ~frontier->scheduled(v);
        if (unscheduled == 0) continue;
        ScheduleLanes(v, state_.ResidueRow(v), unscheduled, r_max, *frontier);
      }
    }
    const auto active_lanes =
        static_cast<std::uint64_t>(std::popcount(active));
    last_stats_.push_operations += active_lanes;
    last_stats_.edge_traversals +=
        static_cast<std::uint64_t>(degree) * active_lanes;
  }
  if (frontier == nullptr) return;
  if (config_.dangling == DanglingPolicy::kBackToSource) {
    for (LaneMask m = gate; m != 0; m &= m - 1) {
      const std::size_t b = BatchPushState::LaneOf(m);
      const NodeId src = runs[b].source;
      if ((frontier->scheduled(src) & (LaneMask{1} << b)) != 0) continue;
      if (LaneCond(src, b, r_max)) {
        frontier->Schedule(src, LaneMask{1} << b);
      }
    }
  }
}

void BatchSolver::ProcessSeedRound(std::size_t b, bool unconditional,
                                   Score r_max, std::span<LaneRun> runs,
                                   BatchFrontier& frontier) {
  LaneRun& run = runs[b];
  const LaneMask bit = LaneMask{1} << b;
  std::uint64_t pops = 0;
  for (NodeId s : run.seeds) {
    // Consume the lane's seed bit even when the lane is detached, so no
    // stale mask survives the round.
    if (frontier.TakeSeed(s, bit) == 0) continue;
    if (run.detached) continue;
    if ((++pops & 0x1FF) == 0) {
      PollLanes(runs);
      if (run.detached) continue;
    }
    if (!unconditional && !LaneCond(s, b, r_max)) continue;
    ApplyPush(s, bit, r_max, runs, &frontier);
  }
}

void BatchSolver::SharedRounds(Score r_max, std::span<LaneRun> runs,
                               BatchFrontier& frontier) {
  // Walk-engine software pipelining, extended to push. The average pop
  // touches ~degree random SoA rows, so the sweep is bound by how many row
  // fetches are in flight, not by arithmetic. Two prefetch stages run
  // ahead of the pop under process:
  //  * far stage (kRowAhead pops out): the node's CSR offsets/neighbors
  //    and its own residue row (the gate re-check reads it);
  //  * near stage (kDepositAhead pops out): the node's neighbor list is
  //    cached by the far stage by now, so the head of its *deposit rows*
  //    can be hinted — these are the misses the push kernel would
  //    otherwise eat one latency at a time.
  constexpr std::size_t kRowAhead = 12;
  constexpr std::size_t kDepositAhead = 3;
  constexpr std::size_t kDepositFanout = 16;
  // Hybrid selection point 2 (ResAcc backend only): the serial solver's
  // OMFWD round hook compares the remedy cost of the outstanding residues
  // against the dense bound at every wavefront promotion. A lane's
  // promotion point in the shared sweep is its first pop of each round
  // (rounds are barriers, so all of the lane's previous-round pushes are
  // done and none of the new round's), and LaneResidueSum replays the
  // serial ResidueSum's summation order — identical doubles, identical
  // decision. A lane that switches is masked out from this pop on, exactly
  // where the serial search would have stopped (before the popped node's
  // gate re-check).
  const bool hybrid_on = backend_ == Backend::kResAcc &&
                         resacc_options_.hybrid.enable &&
                         resacc_options_.use_hop_subgraph;
  std::size_t lane_round[kMaxLanes] = {};
  std::uint64_t pops = 0;
  NodeId u = 0;
  LaneMask mask = 0;
  while (frontier.Next(&u, &mask)) {
    if ((++pops & 0x1FF) == 0) PollLanes(runs);
    ++last_stats_.shared_node_pops;
    mask &= ~(detached_mask_ | dense_mask_);
    if (mask == 0) continue;
    if (hybrid_on) {
      const std::size_t round = frontier.round();
      for (LaneMask m = mask; m != 0; m &= m - 1) {
        const std::size_t b = BatchPushState::LaneOf(m);
        if (lane_round[b] == round) continue;
        lane_round[b] = round;
        if (DenseBeatsRemedy(graph_, config_, resacc_options_.hybrid,
                             state_.LaneResidueSum(b), walk_scale_)) {
          runs[b].path = SolverPath::kDenseResidueMass;
          dense_mask_ |= LaneMask{1} << b;
          mask &= ~(LaneMask{1} << b);
        }
      }
      if (mask == 0) continue;
    }
    if (prefetch_) {
      const std::size_t pending = frontier.pending_count();
      if (pending > kRowAhead) {
        const NodeId far = frontier.pending()[kRowAhead];
        graph_.PrefetchOutRow(far);
        __builtin_prefetch(state_.ResidueRow(far), 1, 1);
      }
      if (pending > kDepositAhead) {
        const NodeId near = frontier.pending()[kDepositAhead];
        const auto near_neighbors = graph_.OutNeighbors(near);
        const std::size_t fanout =
            std::min(near_neighbors.size(), kDepositFanout);
        for (std::size_t k = 0; k < fanout; ++k) {
          __builtin_prefetch(state_.ResidueRow(near_neighbors[k]), 1, 1);
        }
      }
    }
    // Per-lane re-check of the push condition, exactly as the serial
    // search re-checks at pop.
    const NodeId degree = graph_.OutDegree(u);
    const Score* ru = state_.ResidueRow(u);
    LaneMask gate = 0;
    if (degree == 0) {
      for (LaneMask m = mask; m != 0; m &= m - 1) {
        const std::size_t b = BatchPushState::LaneOf(m);
        if (ru[b] >= r_max) gate |= LaneMask{1} << b;
      }
    } else {
      // Same divide-free screen as the scheduling sweep (see ApplyPush).
      const Score t = r_max * static_cast<Score>(degree);
      const Score hi = t * (1.0 + kCondMargin);
      const Score lo = t * (1.0 - kCondMargin);
      const LaneMask pass = GeMask(ru, num_lanes_, hi);
      gate = mask & pass;
      for (LaneMask m = mask & GeMask(ru, num_lanes_, lo) & ~pass; m != 0;
           m &= m - 1) {
        const std::size_t b = BatchPushState::LaneOf(m);
        if (ru[b] / static_cast<Score>(degree) >= r_max) {
          gate |= LaneMask{1} << b;
        }
      }
    }
    if (gate == 0) continue;
    ApplyPush(u, gate, r_max, runs, &frontier);
  }
}

void BatchSolver::FinishLane(std::size_t b, LaneRun& run,
                             double remedy_budget_seconds,
                             ControlledQueryResult& result, TopKResult* topk) {
  if (topk != nullptr && run.top_k > 0) {
    FinishLaneTopK(b, run, result, *topk);
    return;
  }
  if (backend_ == Backend::kResAcc && resacc_options_.hybrid.enable) {
    RecordHybridSelection(run.path);
  }
  if (!run.detached && run.path != SolverPath::kLocal) {
    // Dense lane: bridge reserves AND residues into the scratch state in
    // the lane's serial touched order, then run the exact dense finish the
    // serial QueryControlled calls — the sweep itself is RNG-free and runs
    // in fixed CSR order, so the lane's payload is bit-identical to the
    // serial solve at any lane count.
    scratch_.Reset();
    const auto dense_nodes = state_.lane_touched(b);
    for (std::size_t i = 0; i < dense_nodes.size(); ++i) {
      if (i + 8 < dense_nodes.size()) {
        __builtin_prefetch(state_.ResidueRow(dense_nodes[i + 8]) + b, 0, 1);
        __builtin_prefetch(state_.ReserveRow(dense_nodes[i + 8]) + b, 0, 1);
      }
      const NodeId v = dense_nodes[i];
      scratch_.SetResidue(v, state_.ResidueRow(v)[b]);
      scratch_.AddReserve(v, state_.ReserveRow(v)[b]);
    }
    DenseFinish dense = RunDenseFinish(graph_, config_, run.source, scratch_,
                                       resacc_options_.hybrid, run.cancel);
    result.scores = std::move(dense.scores);
    result.degraded = dense.degraded;
    result.uncorrected_mass = dense.uncorrected_mass;
    result.achieved_epsilon = dense.achieved_epsilon;
    if (dense.stats.cancelled) result.status = run.cancel->StopStatus();
    return;
  }
  result.achieved_epsilon = config_.epsilon;
  result.scores.assign(graph_.num_nodes(), 0.0);
  const auto lane_nodes = state_.lane_touched(b);
  for (std::size_t i = 0; i < lane_nodes.size(); ++i) {
    if (i + 8 < lane_nodes.size()) {
      __builtin_prefetch(state_.ReserveRow(lane_nodes[i + 8]) + b, 0, 1);
    }
    const NodeId v = lane_nodes[i];
    result.scores[v] = state_.ReserveRow(v)[b];
  }
  Score uncorrected = 0.0;
  if (run.detached) {
    result.status = run.status;
    // A lane stopped before r(s) = 1 was planted computed nothing: the
    // whole unit of probability mass is unconverted (serial DOA path).
    uncorrected = run.initialized ? state_.LaneResidueSum(b) : 1.0;
  } else {
    // Bridge lane b into a scratch PushState in the lane's serial touched
    // order: remedy builds walk slices in touched order and sums r_sum the
    // same way, so this reproduces the serial remedy bit for bit.
    scratch_.Reset();
    for (std::size_t i = 0; i < lane_nodes.size(); ++i) {
      if (i + 8 < lane_nodes.size()) {
        __builtin_prefetch(state_.ResidueRow(lane_nodes[i + 8]) + b, 0, 1);
      }
      const NodeId v = lane_nodes[i];
      scratch_.SetResidue(v, state_.ResidueRow(v)[b]);
    }
    Rng query_rng = rng_.Fork(run.source);
    const RemedyStats remedy = RunRemedy(
        graph_, config_, run.source, scratch_, query_rng,
        result.scores, walk_scale_, remedy_budget_seconds, &walk_engine_,
        run.cancel);
    if (remedy.cancelled) result.status = run.cancel->StopStatus();
    uncorrected = remedy.uncorrected_mass;
  }
  result.uncorrected_mass = uncorrected;
  if (uncorrected > 0.0) {
    result.degraded = true;
    result.achieved_epsilon =
        config_.epsilon + uncorrected / config_.delta;
  }
}

void BatchSolver::FinishLaneTopK(std::size_t b, LaneRun& run,
                                 ControlledQueryResult& result,
                                 TopKResult& topk) {
  // Bridge lane b's reserves AND residues into the scratch PushState in
  // the lane's serial touched order — bit-identical to the state the
  // serial QueryTopK holds after its push phases — then run the exact
  // same finish (separation check, refinement, certified skip or remedy
  // fallback). Determinism of SolveTopKFromState in the state alone is
  // what makes batched top-k bit-identical to serial.
  scratch_.Reset();
  const auto lane_nodes = state_.lane_touched(b);
  for (std::size_t i = 0; i < lane_nodes.size(); ++i) {
    if (i + 8 < lane_nodes.size()) {
      __builtin_prefetch(state_.ResidueRow(lane_nodes[i + 8]) + b, 0, 1);
      __builtin_prefetch(state_.ReserveRow(lane_nodes[i + 8]) + b, 0, 1);
    }
    const NodeId v = lane_nodes[i];
    scratch_.SetResidue(v, state_.ResidueRow(v)[b]);
    scratch_.AddReserve(v, state_.ReserveRow(v)[b]);
  }
  if (resacc_options_.hybrid.enable) RecordHybridSelection(run.path);
  if (!run.detached && run.path != SolverPath::kLocal) {
    // Dense top-k lane, the serial QueryTopK dense branch verbatim: the
    // full dense vector is exact to an additive eps*delta, so its top-k
    // prefix with the standard epsilon-relative brackets is a valid
    // certificate at the configured epsilon.
    DenseFinish dense = RunDenseFinish(graph_, config_, run.source, scratch_,
                                       resacc_options_.hybrid, run.cancel);
    topk = MakeApproximateTopK(dense.scores, run.top_k,
                               dense.achieved_epsilon, dense.degraded,
                               dense.uncorrected_mass);
    if (dense.stats.cancelled) topk.status = run.cancel->StopStatus();
    result.status = topk.status;
    result.degraded = topk.degraded;
    result.uncorrected_mass = topk.uncorrected_mass;
    result.achieved_epsilon = topk.achieved_epsilon;
    return;
  }
  Status push_status;
  if (run.detached) {
    push_status = run.status;
    // Serial DOA path: nothing ran, the unit of mass still sits on the
    // source.
    if (!run.initialized) scratch_.SetResidue(run.source, 1.0);
  }
  Rng query_rng = rng_.Fork(run.source);
  topk = SolveTopKFromState(graph_, config_, run.source, run.top_k, r_max_f_,
                            walk_scale_, resacc_options_.topk, scratch_,
                            query_rng, &walk_engine_, run.cancel, push_status);
  // Mirror the tags into the lane's ControlledQueryResult row so callers'
  // uniform status/epsilon accounting keeps working; scores stay empty.
  result.status = topk.status;
  result.degraded = topk.degraded;
  result.uncorrected_mass = topk.uncorrected_mass;
  result.achieved_epsilon = topk.achieved_epsilon;
}

void BatchSolver::RunResAccBatch(std::span<const BatchLane> lanes,
                                 std::vector<ControlledQueryResult>& results) {
  const std::size_t B = num_lanes_;
  frontier_.Clear();
  Timer phase_timer;
  std::vector<LaneRun> runs(B);
  for (std::size_t b = 0; b < B; ++b) {
    runs[b].source = lanes[b].source;
    runs[b].cancel = lanes[b].cancel;
    runs[b].top_k = lanes[b].top_k;
  }
  PollLanes(runs);  // dead-on-arrival lanes never plant r(s) = 1

  // ---- Phases 1-2a, lane-local: h-HopFWD and the OMFWD seed round. The
  // hop-restricted frontiers of distinct sources rarely overlap, and a
  // lane's OMFWD round 0 is single-lane by construction (its private
  // residue-sorted seed order), so neither gives the shared sweep anything
  // to amortize — worse, running them against the SoA panels scatters
  // unamortized single-lane writes across tens of megabytes. Each lane
  // instead runs the *serial* phases (the very same RunHHopFwd /
  // ForwardPushAt the serial solver calls, so bit-identity holds by
  // construction) on the flat L2-resident scratch state at serial speed;
  // the combined hop + seed-round state is transplanted into the SoA lane
  // once, in the lane's serial touched order, and the lane's staged
  // round-1 set feeds the shared frontier. The shared union rounds take
  // over from round 1, where the whole-graph wavefronts do overlap.
  HHopFwdOptions hop_options;
  hop_options.r_max_hop = resacc_options_.use_hop_subgraph
                              ? resacc_options_.r_max_hop
                              : r_max_f_;
  hop_options.num_hops = resacc_options_.num_hops;
  hop_options.use_loop_accumulation = resacc_options_.use_loop_accumulation;
  hop_options.use_hop_subgraph = resacc_options_.use_hop_subgraph;
  hop_options.max_hop_set_fraction = resacc_options_.max_hop_set_fraction;
  // Hybrid selection point 1 per lane, the serial RunPushPhases probe
  // verbatim: the decision is a pure function of the BFS-derived stats
  // (same RunHHopFwd on the same scratch state), so a lane selects the
  // dense path exactly when its serial replay would.
  const bool hybrid_on =
      resacc_options_.hybrid.enable && resacc_options_.use_hop_subgraph;
  double hop_seconds = 0.0;
  for (std::size_t b = 0; b < B; ++b) {
    LaneRun& run = runs[b];
    if (run.detached) continue;
    hop_options.cancel = run.cancel;
    if (hybrid_on) {
      hop_options.dense_probe = [&](const HHopFwdStats& hop_stats) {
        const SolverPath choice = ChooseFromHopStats(
            graph_, config_, resacc_options_.hybrid, hop_options.r_max_hop,
            hop_stats.shrink_floored,
            static_cast<double>(hop_stats.hop_set_edges));
        if (choice == SolverPath::kLocal) return false;
        run.path = choice;
        return true;
      };
    }
    const double lane_start = phase_timer.ElapsedSeconds();
    scratch_.Reset();
    const HHopFwdStats hop_stats = RunHHopFwd(
        graph_, config_, run.source, hop_options, scratch_, &run.layers);
    run.initialized = true;
    hop_seconds += phase_timer.ElapsedSeconds() - lane_start;
    if (hop_stats.shrink_hops > 0 || hop_stats.shrink_floored) {
      RecordHubShrink();
    }
    PollLanes(runs);  // serial phase-boundary check after this lane's hop
    if (!run.detached && run.path == SolverPath::kLocal &&
        resacc_options_.use_omfwd && !run.layers.layers.empty()) {
      run.seeds = run.layers.layers.back();
      // Algorithm 4 line 1: decreasing residue (this lane's residues),
      // ties broken by id.
      std::sort(run.seeds.begin(), run.seeds.end(),
                [&](NodeId x, NodeId y) {
                  const Score rx = scratch_.residue(x);
                  const Score ry = scratch_.residue(y);
                  if (rx != ry) return rx > ry;
                  return x < y;
                });
      // Round 0: unconditional seed pushes, replayed with the serial
      // search's exact loop (pop, push, schedule sweep — see
      // ForwardSearchLevelSync) on the serial Frontier, which stages this
      // lane's round-1 set.
      PushStats seed_stats;
      for (NodeId s : run.seeds) seed_frontier_.Seed(s);
      std::uint64_t pops = 0;
      NodeId s = 0;
      while (seed_frontier_.pending_count() > 0) {
        seed_frontier_.Next(&s);
        if ((++pops & 0x1FF) == 0) {
          PollLanes(runs);
          if (run.detached) break;
        }
        ForwardPushAt(graph_, config_, run.source, s, scratch_, seed_stats);
        for (NodeId v : graph_.OutNeighbors(s)) {
          if (SatisfiesPushCondition(graph_, scratch_, v, r_max_f_)) {
            seed_frontier_.Schedule(v);
          }
        }
        if (config_.dangling == DanglingPolicy::kBackToSource &&
            SatisfiesPushCondition(graph_, scratch_, run.source, r_max_f_)) {
          seed_frontier_.Schedule(run.source);
        }
      }
      last_stats_.push_operations += seed_stats.push_operations;
      last_stats_.edge_traversals += seed_stats.edge_traversals;
    }
    // One transplant of the lane's combined hop + seed-round state.
    const LaneMask bit = LaneMask{1} << b;
    const auto touched = scratch_.touched();
    for (std::size_t i = 0; i < touched.size(); ++i) {
      if (i + 8 < touched.size()) {
        __builtin_prefetch(state_.ResidueRow(touched[i + 8]) + b, 1, 1);
        __builtin_prefetch(state_.ReserveRow(touched[i + 8]) + b, 1, 1);
      }
      const NodeId v = touched[i];
      state_.Touch(v, bit);
      state_.ResidueRow(v)[b] = scratch_.residue(v);
      state_.ReserveRow(v)[b] = scratch_.reserve(v);
    }
    if (!run.detached) {
      for (NodeId v : seed_frontier_.staged()) frontier_.Schedule(v, bit);
    }
    seed_frontier_.Clear();
    // A probe-selected dense lane carries exactly r(source) = 1 in its SoA
    // column and schedules nothing: the shared rounds never see it, and
    // FinishLane power-iterates it from that clean unit of mass.
    if (run.path != SolverPath::kLocal) dense_mask_ |= bit;
  }
  last_stats_.hop_seconds = hop_seconds;

  // ---- Phase 2b: the shared union rounds (>= 1) of OMFWD.
  if (resacc_options_.use_omfwd) {
    SharedRounds(r_max_f_, runs, frontier_);
  }

  PollLanes(runs);  // serial phase-boundary check after OMFWD
  last_stats_.omfwd_seconds =
      phase_timer.ElapsedSeconds() - last_stats_.hop_seconds;

  // ---- Phase 3: remedy, per lane (walks do not amortize across lanes).
  // Top-k lanes take the bound-certificate finish instead.
  for (std::size_t b = 0; b < B; ++b) {
    FinishLane(b, runs[b], /*remedy_budget_seconds=*/0.0, results[b],
               topk_out_ != nullptr ? &(*topk_out_)[b] : nullptr);
  }
  last_stats_.remedy_seconds = phase_timer.ElapsedSeconds() -
                               last_stats_.hop_seconds -
                               last_stats_.omfwd_seconds;
}

void BatchSolver::RunForaBatch(std::span<const BatchLane> lanes,
                               std::vector<ControlledQueryResult>& results) {
  const std::size_t B = num_lanes_;
  frontier_.Clear();
  Timer total;
  std::vector<LaneRun> runs(B);
  for (std::size_t b = 0; b < B; ++b) {
    runs[b].source = lanes[b].source;
    runs[b].cancel = lanes[b].cancel;
  }
  PollLanes(runs);

  for (std::size_t b = 0; b < B; ++b) {
    LaneRun& run = runs[b];
    if (run.detached) continue;
    const LaneMask bit = LaneMask{1} << b;
    state_.Touch(run.source, bit);
    state_.ResidueRow(run.source)[b] = 1.0;
    run.initialized = true;
    run.seeds.assign(1, run.source);
    frontier_.MarkSeed(run.source, bit);
  }
  for (std::size_t b = 0; b < B; ++b) {
    ProcessSeedRound(b, /*unconditional=*/false, fora_r_max_, runs,
                     frontier_);
  }
  SharedRounds(fora_r_max_, runs, frontier_);

  PollLanes(runs);

  for (std::size_t b = 0; b < B; ++b) {
    double remaining_budget = 0.0;
    if (fora_options_.time_budget_seconds > 0.0) {
      // The budget covers the whole batch (the serial solver charges each
      // query its own clock; a batch shares one).
      remaining_budget =
          fora_options_.time_budget_seconds - total.ElapsedSeconds();
      if (remaining_budget <= 0.0) remaining_budget = 1e-9;
    }
    FinishLane(b, runs[b], remaining_budget, results[b]);
  }
}

void BatchSolver::RunMonteCarloBatch(
    std::span<const BatchLane> lanes,
    std::vector<ControlledQueryResult>& results) {
  const std::uint64_t num_walks = static_cast<std::uint64_t>(
      std::ceil(config_.WalkCountCoefficient() * walk_scale_));
  RESACC_CHECK(num_walks > 0);
  for (std::size_t b = 0; b < lanes.size(); ++b) {
    ControlledQueryResult& result = results[b];
    result.achieved_epsilon = config_.epsilon;
    result.scores.assign(graph_.num_nodes(), 0.0);
    const Score weight = 1.0 / static_cast<Score>(num_walks);
    Rng query_rng = rng_.Fork(lanes[b].source);
    const WalkSlice slice{lanes[b].source, num_walks, weight,
                          /*stream=*/lanes[b].source};
    const WalkEngineStats engine_stats = walk_engine_.Run(
        graph_, config_, lanes[b].source, query_rng, std::span(&slice, 1),
        result.scores, /*time_budget_seconds=*/0.0, lanes[b].cancel);
    if (engine_stats.cancelled) {
      result.status = lanes[b].cancel->StopStatus();
    }
    result.uncorrected_mass = engine_stats.skipped_mass;
    if (result.uncorrected_mass > 0.0) {
      result.degraded = true;
      result.achieved_epsilon =
          config_.epsilon + result.uncorrected_mass / config_.delta;
    }
  }
}

}  // namespace resacc

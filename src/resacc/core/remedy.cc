#include "resacc/core/remedy.h"

#include <cmath>

#include "resacc/util/check.h"

namespace resacc {

RemedyStats RunRemedy(const Graph& graph, const RwrConfig& config,
                      NodeId source, const PushState& state, Rng& rng,
                      std::vector<Score>& scores, double walk_scale,
                      double time_budget_seconds, WalkEngine* engine,
                      const CancellationToken* cancel) {
  RESACC_CHECK(scores.size() == graph.num_nodes());
  RemedyStats stats;

  const Score r_sum = state.ResidueSum();
  stats.residue_sum = r_sum;
  if (r_sum <= 0.0) return stats;

  // n_r = r_sum * c (Algorithm 2 line 7, Theorem 3).
  const double n_r = r_sum * config.WalkCountCoefficient() * walk_scale;
  stats.target_walks = n_r;
  if (n_r <= 0.0) return stats;

  // One slice per residual node, in touched order (the merge order).
  // n_r(v) = ceil(r(v) * n_r / r_sum); each walk carries weight
  // a(v) * r_sum / n_r = r(v) / n_r(v)  (Algorithm 2 lines 10-15).
  std::vector<WalkSlice> slices;
  slices.reserve(state.touched().size());
  for (NodeId v : state.touched()) {
    const Score residue = state.residue(v);
    if (residue <= 0.0) continue;
    const double exact = residue * n_r / r_sum;
    const std::uint64_t walks_v =
        static_cast<std::uint64_t>(std::ceil(exact));
    RESACC_DCHECK(walks_v >= 1);
    slices.push_back(WalkSlice{v, walks_v,
                               residue / static_cast<Score>(walks_v),
                               /*stream=*/v});
  }

  // One draw advances the caller's rng (repeated calls with the same Rng
  // stay independent runs); everything below forks from walk_root, keyed
  // by node id, so the walks are independent of slice/query order.
  Rng walk_root(rng.Next());
  WalkEngine sequential(1);
  WalkEngine& walk_engine = engine != nullptr ? *engine : sequential;
  const WalkEngineStats engine_stats =
      walk_engine.Run(graph, config, source, walk_root, slices, scores,
                      time_budget_seconds, cancel);
  stats.walks = engine_stats.walks;
  stats.steps = engine_stats.steps;
  stats.budget_exhausted = engine_stats.budget_exhausted;
  stats.cancelled = engine_stats.cancelled;
  // skipped_mass counts walks x weight = the residue share of each skipped
  // block, so it is exactly the residue mass left uncorrected.
  stats.uncorrected_mass = engine_stats.skipped_mass;
  return stats;
}

}  // namespace resacc

#include "resacc/core/remedy.h"

#include <cmath>

#include "resacc/util/check.h"
#include "resacc/util/timer.h"

namespace resacc {

RemedyStats RunRemedy(const Graph& graph, const RwrConfig& config,
                      NodeId source, const PushState& state, Rng& rng,
                      std::vector<Score>& scores, double walk_scale,
                      double time_budget_seconds) {
  RESACC_CHECK(scores.size() == graph.num_nodes());
  RemedyStats stats;
  Timer budget_timer;

  const Score r_sum = state.ResidueSum();
  stats.residue_sum = r_sum;
  if (r_sum <= 0.0) return stats;

  // n_r = r_sum * c (Algorithm 2 line 7, Theorem 3).
  const double n_r = r_sum * config.WalkCountCoefficient() * walk_scale;
  stats.target_walks = n_r;
  if (n_r <= 0.0) return stats;

  WalkStats walk_stats;
  for (NodeId v : state.touched()) {
    const Score residue = state.residue(v);
    if (residue <= 0.0) continue;
    // Budget check per residual node (walk batches are short, so this
    // granularity tracks the budget closely without a per-walk clock read).
    if (time_budget_seconds > 0.0 &&
        budget_timer.ElapsedSeconds() >= time_budget_seconds) {
      stats.budget_exhausted = true;
      break;
    }
    // n_r(v) = ceil(r(v) * n_r / r_sum); each walk carries weight
    // a(v) * r_sum / n_r = r(v) / n_r(v)  (Algorithm 2 lines 10-15).
    const double exact = residue * n_r / r_sum;
    const std::uint64_t walks_v =
        static_cast<std::uint64_t>(std::ceil(exact));
    RESACC_DCHECK(walks_v >= 1);
    const Score increment = residue / static_cast<Score>(walks_v);
    for (std::uint64_t i = 0; i < walks_v; ++i) {
      const NodeId terminal =
          RandomWalkTerminal(graph, config, source, v, rng, walk_stats);
      scores[terminal] += increment;
    }
  }
  stats.walks = walk_stats.walks;
  stats.steps = walk_stats.steps;
  return stats;
}

}  // namespace resacc

#ifndef RESACC_CORE_PUSH_STATE_H_
#define RESACC_CORE_PUSH_STATE_H_

#include <span>
#include <vector>

#include "resacc/util/check.h"
#include "resacc/util/types.h"

namespace resacc {

// Reserve/residue arrays for push-based algorithms, with touched-node
// tracking so repeated queries reset in O(touched) instead of O(n).
// One instance can be reused across queries (Reset between them).
class PushState {
 public:
  explicit PushState(NodeId num_nodes)
      : reserve_(num_nodes, 0.0),
        residue_(num_nodes, 0.0),
        is_touched_(num_nodes, 0) {}

  NodeId num_nodes() const { return static_cast<NodeId>(reserve_.size()); }

  Score reserve(NodeId v) const { return reserve_[v]; }
  Score residue(NodeId v) const { return residue_[v]; }

  void AddReserve(NodeId v, Score delta) {
    Touch(v);
    reserve_[v] += delta;
  }
  void AddResidue(NodeId v, Score delta) {
    Touch(v);
    residue_[v] += delta;
  }
  void SetResidue(NodeId v, Score value) {
    Touch(v);
    residue_[v] = value;
  }
  void ScaleReserve(NodeId v, Score factor) { reserve_[v] *= factor; }
  void ScaleResidue(NodeId v, Score factor) { residue_[v] *= factor; }

  // Nodes whose reserve or residue has ever been written since Reset.
  std::span<const NodeId> touched() const { return touched_; }

  // Sum of all residues (r_sum in the paper). O(touched).
  Score ResidueSum() const {
    Score sum = 0.0;
    for (NodeId v : touched_) sum += residue_[v];
    return sum;
  }

  // Sum of all reserves. O(touched).
  Score ReserveSum() const {
    Score sum = 0.0;
    for (NodeId v : touched_) sum += reserve_[v];
    return sum;
  }

  void Reset() {
    for (NodeId v : touched_) {
      reserve_[v] = 0.0;
      residue_[v] = 0.0;
      is_touched_[v] = 0;
    }
    touched_.clear();
  }

  // Read-only views for bulk consumers (e.g. copying reserves into the
  // final score vector).
  const std::vector<Score>& reserves() const { return reserve_; }
  const std::vector<Score>& residues() const { return residue_; }

 private:
  void Touch(NodeId v) {
    RESACC_DCHECK(v < reserve_.size());
    if (!is_touched_[v]) {
      is_touched_[v] = 1;
      touched_.push_back(v);
    }
  }

  std::vector<Score> reserve_;
  std::vector<Score> residue_;
  std::vector<std::uint8_t> is_touched_;
  std::vector<NodeId> touched_;
};

}  // namespace resacc

#endif  // RESACC_CORE_PUSH_STATE_H_

#include "resacc/core/backward_push.h"

#include <deque>
#include <vector>

namespace resacc {

PushStats RunBackwardSearch(const Graph& graph, const RwrConfig& config,
                            NodeId target, Score r_max, PushState& state) {
  PushStats stats;
  state.SetResidue(target, 1.0);

  std::deque<NodeId> queue;
  std::vector<std::uint8_t> in_queue(graph.num_nodes(), 0);
  queue.push_back(target);
  in_queue[target] = 1;

  while (!queue.empty()) {
    const NodeId node = queue.front();
    queue.pop_front();
    in_queue[node] = 0;

    const Score residue = state.residue(node);
    // Backward push condition: residue(v) >= r_max (no degree division;
    // the backward residue already measures contribution mass).
    if (residue < r_max) continue;
    ++stats.push_operations;

    // For a sink v under kAbsorb, pi(s, v) equals the *reach* probability:
    //   pi(s, v) = delta_sv + (1-alpha)/alpha * sum_u pi(s, u)/d_out(u),
    // because a walk that arrives can never leave. For ordinary nodes the
    // standard recurrence pi(s, v) = alpha*delta_sv
    // + (1-alpha) * sum_u pi(s, u)/d_out(u) applies; both substitutions
    // keep the backward invariant exact.
    const bool sink = graph.OutDegree(node) == 0;
    Score flow = (1.0 - config.alpha) * residue;
    if (sink) {
      state.AddReserve(node, residue);
      flow /= config.alpha;
    } else {
      state.AddReserve(node, config.alpha * residue);
    }
    state.SetResidue(node, 0.0);

    for (NodeId u : graph.InNeighbors(node)) {
      const Score share = flow / static_cast<Score>(graph.OutDegree(u));
      state.AddResidue(u, share);
      if (!in_queue[u] && state.residue(u) >= r_max) {
        in_queue[u] = 1;
        queue.push_back(u);
      }
    }
    stats.edge_traversals += graph.InDegree(node);
  }
  return stats;
}

}  // namespace resacc

#ifndef RESACC_CORE_H_HOP_FWD_H_
#define RESACC_CORE_H_HOP_FWD_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "resacc/core/forward_push.h"
#include "resacc/core/push_state.h"
#include "resacc/core/rwr_config.h"
#include "resacc/graph/graph.h"
#include "resacc/graph/hop_layers.h"

namespace resacc {

struct HHopFwdStats;

// Tuning knobs and ablation switches of the h-HopFWD phase (Algorithm 3).
struct HHopFwdOptions {
  // Residue threshold r_max^hop of the accumulating phase. Paper: 1e-14.
  Score r_max_hop = 1e-14;
  // Number of hops h; the subgraph is G'_h-hop(s). Paper: 2 (3 on DBLP).
  std::uint32_t num_hops = 2;
  // Ablation "No-Loop-ResAcc" (Appendix K): disable the accumulating-loop
  // extrapolation; the source is pushed like any other node instead.
  bool use_loop_accumulation = true;
  // Ablation "No-SG-ResAcc" (Appendix K): disable the subgraph restriction;
  // the accumulating phase runs over the whole graph.
  bool use_hop_subgraph = true;
  // Adaptive cap (our extension, not in the paper): if > 0, the effective
  // h shrinks to the largest value whose hop set holds at most this
  // fraction of the graph's nodes, floored at 1 hop — shrinking to 0 left
  // a degenerate {source} hop set whose entire mass fell to remedy walks.
  // When even the 1-hop set exceeds the cap the shrink is "floored"
  // (HHopFwdStats::shrink_floored) and the hybrid selector treats that as
  // a dense-path trigger. Rationale: the paper's fixed h assumes
  // |V_h-hop(s)| << n, which a hub source violates — its 1-hop set alone
  // can span a fifth of the graph, making the 1e-14-threshold
  // accumulating phase the bottleneck.
  double max_hop_set_fraction = 0.0;
  // Hybrid selection probe (see core/power_iter.h): invoked once, after
  // the hop-layer BFS and the adaptive cap but before any push, with the
  // BFS-derived stats fields (effective_hops, hop_set_size, hop_set_edges,
  // shrink_*) filled. Returning true aborts the phase for the dense path:
  // the state is seeded with r(source) = 1 and returned untouched
  // (aborted_for_dense set), so the caller can power-iterate from a clean
  // unit of residue mass. Only consulted when use_hop_subgraph is on —
  // the ablations stay on the pure local pipeline.
  std::function<bool(const HHopFwdStats&)> dense_probe;
  // Optional cooperative stop: polled every few hundred pushes. When the
  // token fires, the accumulating phase stops where it is and the
  // loop-extrapolation (updating phase) is skipped — extrapolating from a
  // half-finished phase would fabricate reserves, whereas the raw partial
  // state is a valid (mass-conserving) intermediate.
  const CancellationToken* cancel = nullptr;
};

// Diagnostics of one h-HopFWD run; Table VII and the ablation benches
// consume these.
struct HHopFwdStats {
  PushStats push;
  Score rho = 0.0;        // r_1^f(s,s): source residue after phase 1
  double loop_count = 0;  // T: number of extrapolated accumulating phases
  Score scaler = 1.0;     // S = (1 - rho^T) / (1 - rho); see DESIGN.md
  std::uint32_t effective_hops = 0;  // h after the adaptive cap, if any
  // |V_h-hop(s)| and |L_(h+1)-hop(s)| at the effective h. Convention for
  // the No-SG ablation (no BFS runs): the whole graph acts as the
  // subgraph, so hop_set_size reports n and frontier_size 0 — the ablation
  // benches would otherwise under-report the phase's working set.
  std::size_t hop_set_size = 0;
  std::size_t frontier_size = 0;
  // Sum of out-degrees over the effective hop set — the per-wavefront edge
  // cost the hybrid selector's LocalHopCost estimate consumes.
  std::uint64_t hop_set_edges = 0;
  // Adaptive-cap diagnostics: how many hops the cap shed, and whether it
  // bottomed out at the 1-hop floor with the hop set still over the cap
  // (the hub signature; feeds resacc_hub_shrink_total and the selector).
  std::uint32_t shrink_hops = 0;
  bool shrink_floored = false;
  // The dense_probe took the query: the phase returned before any push
  // with the state holding only r(source) = 1.
  bool aborted_for_dense = false;
};

// Runs h-HopFWD from `source` on a Reset `state` (seeding r(s) = 1).
// On return:
//  * state holds the reserves/residues of Algorithm 3's output;
//  * `layers` (output) holds the hop decomposition; layers->layers.back()
//    is the accumulation frontier L_(h+1)-hop(s) that OMFWD consumes.
//
// Algorithm 3 note: line 10 of the paper prints
// S = (1 - rho^(T-1)) / (1 - rho), but the appendix derivation (and mass
// conservation) require S = (1 - rho^T) / (1 - rho); we implement the
// latter. Tests verify sum(reserve) + sum(residue) == 1.
HHopFwdStats RunHHopFwd(const Graph& graph, const RwrConfig& config,
                        NodeId source, const HHopFwdOptions& options,
                        PushState& state, HopLayers* layers);

}  // namespace resacc

#endif  // RESACC_CORE_H_HOP_FWD_H_

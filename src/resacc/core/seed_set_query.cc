#include "resacc/core/seed_set_query.h"

#include <cmath>

#include "resacc/core/push_state.h"
#include "resacc/util/check.h"

namespace resacc {

SeedSetQueryResult SeedSetSsrwr(const Graph& graph, const RwrConfig& config,
                                const std::vector<NodeId>& seeds,
                                Score r_max, Rng& rng) {
  RESACC_CHECK(!seeds.empty());
  RESACC_CHECK(config.Validate().ok());
  if (config.dangling == DanglingPolicy::kBackToSource) {
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      RESACC_CHECK_MSG(graph.OutDegree(u) > 0,
                       "SeedSetSsrwr requires kAbsorb on graphs with sinks");
    }
  }
  if (r_max <= 0.0) {
    r_max = 1.0 / std::sqrt(static_cast<double>(graph.num_edges()) *
                            config.WalkCountCoefficient());
  }

  SeedSetQueryResult result;
  PushState state(graph.num_nodes());
  const Score share = 1.0 / static_cast<Score>(seeds.size());
  for (NodeId seed : seeds) {
    RESACC_CHECK(seed < graph.num_nodes());
    state.AddResidue(seed, share);  // AddResidue: duplicate seeds stack
  }

  // The restart node only matters under kBackToSource, which the check
  // above restricts to sink-free graphs where it is never consulted.
  const NodeId restart = seeds.front();
  result.push = RunForwardSearch(graph, config, restart, r_max, seeds,
                                 /*push_seeds_unconditionally=*/false, state);

  result.scores.assign(graph.num_nodes(), 0.0);
  for (NodeId v : state.touched()) result.scores[v] = state.reserve(v);
  result.remedy = RunRemedy(graph, config, restart, state, rng,
                            result.scores);
  return result;
}

}  // namespace resacc

#include "resacc/core/forward_push.h"

#include <queue>
#include <utility>
#include <vector>

#include "resacc/core/frontier.h"

namespace resacc {

void ForwardPushAt(const Graph& graph, const RwrConfig& config, NodeId source,
                   NodeId node, PushState& state, PushStats& stats) {
  const Score residue = state.residue(node);
  if (residue <= 0.0) return;
  ++stats.push_operations;

  const auto neighbors = graph.OutNeighbors(node);
  if (neighbors.empty()) {
    // Dangling node: see DanglingPolicy. The residue is consumed *before*
    // the back-flow is credited — the source may be this very node (an
    // isolated source), in which case the flow must survive the reset.
    state.SetResidue(node, 0.0);
    if (config.dangling == DanglingPolicy::kAbsorb) {
      state.AddReserve(node, residue);
    } else {
      state.AddReserve(node, config.alpha * residue);
      state.AddResidue(source, (1.0 - config.alpha) * residue);
    }
    return;
  }

  state.AddReserve(node, config.alpha * residue);
  const Score share = (1.0 - config.alpha) * residue /
                      static_cast<Score>(neighbors.size());
  for (NodeId v : neighbors) {
    state.AddResidue(v, share);
  }
  stats.edge_traversals += neighbors.size();
  state.SetResidue(node, 0.0);
}

namespace {

// How many work-list dequeues happen between cancellation-token polls.
// A poll is one relaxed load (plus a clock read when a deadline is
// armed); 512 pops of push work dwarf that, so the overhead is noise
// while the stop latency stays far under a millisecond.
constexpr std::uint64_t kCancelPollInterval = 512;

// Level-synchronous work list on the shared Frontier (see frontier.h):
// seeds form round 0 in caller order, everything after runs in canonical
// ascending-id rounds — the wavefront behaviour of the classic FIFO with a
// processing order that is a pure function of the scheduled (node, round)
// pairs, which is what lets the batched solver replay it per lane.
PushStats ForwardSearchLevelSync(const Graph& graph, const RwrConfig& config,
                                 NodeId source, Score r_max,
                                 std::span<const NodeId> seeds,
                                 bool push_seeds_unconditionally,
                                 PushState& state,
                                 const CancellationToken* cancel,
                                 const PushRoundHook* round_hook) {
  PushStats stats;
  Frontier frontier(graph.num_nodes());
  for (NodeId seed : seeds) frontier.Seed(seed);

  std::uint64_t pops = 0;
  std::size_t round = 0;
  NodeId node;
  while (frontier.Next(&node)) {
    if (cancel != nullptr && (++pops % kCancelPollInterval) == 0 &&
        cancel->ShouldStop()) {
      break;
    }
    if (round_hook != nullptr && frontier.round() != round) {
      // The popped node's scheduled flag is already cleared; leaving its
      // residue unpushed is the same valid intermediate as a cancel.
      round = frontier.round();
      if ((*round_hook)(round)) break;
    }
    const bool unconditional =
        push_seeds_unconditionally && frontier.round() == 0;
    if (!unconditional && !SatisfiesPushCondition(graph, state, node, r_max)) {
      continue;
    }
    ForwardPushAt(graph, config, source, node, state, stats);

    // Schedule out-neighbours (and possibly the source, under
    // kBackToSource) that now satisfy the push condition.
    for (NodeId v : graph.OutNeighbors(node)) {
      if (SatisfiesPushCondition(graph, state, v, r_max)) {
        frontier.Schedule(v);
      }
    }
    if (config.dangling == DanglingPolicy::kBackToSource &&
        SatisfiesPushCondition(graph, state, source, r_max)) {
      frontier.Schedule(source);
    }
  }
  return stats;
}

// Max-residue-first work list. Heap entries carry the residue observed at
// enqueue time; a node already in the heap is not re-inserted when its
// residue grows (the stale, smaller key only delays its pop — by then it
// has accumulated even more, which is exactly the intent).
PushStats ForwardSearchMaxFirst(const Graph& graph, const RwrConfig& config,
                                NodeId source, Score r_max,
                                std::span<const NodeId> seeds,
                                bool push_seeds_unconditionally,
                                PushState& state,
                                const CancellationToken* cancel) {
  PushStats stats;
  std::priority_queue<std::pair<Score, NodeId>> heap;
  std::vector<std::uint8_t> in_heap(graph.num_nodes(), 0);
  std::vector<std::uint8_t> is_seed(graph.num_nodes(), 0);

  for (NodeId seed : seeds) {
    if (!in_heap[seed]) {
      in_heap[seed] = 1;
      if (push_seeds_unconditionally) is_seed[seed] = 1;
      heap.emplace(state.residue(seed), seed);
    }
  }

  auto try_enqueue = [&](NodeId v) {
    if (!in_heap[v] && SatisfiesPushCondition(graph, state, v, r_max)) {
      in_heap[v] = 1;
      heap.emplace(state.residue(v), v);
    }
  };

  std::uint64_t pops = 0;
  while (!heap.empty()) {
    if (cancel != nullptr && (++pops % kCancelPollInterval) == 0 &&
        cancel->ShouldStop()) {
      break;
    }
    const NodeId node = heap.top().second;
    heap.pop();
    in_heap[node] = 0;

    const bool unconditional = is_seed[node] != 0;
    is_seed[node] = 0;
    if (!unconditional && !SatisfiesPushCondition(graph, state, node, r_max)) {
      continue;
    }
    ForwardPushAt(graph, config, source, node, state, stats);

    for (NodeId v : graph.OutNeighbors(node)) try_enqueue(v);
    if (config.dangling == DanglingPolicy::kBackToSource) {
      try_enqueue(source);
    }
  }
  return stats;
}

}  // namespace

PushStats RunForwardSearch(const Graph& graph, const RwrConfig& config,
                           NodeId source, Score r_max,
                           std::span<const NodeId> seeds,
                           bool push_seeds_unconditionally, PushState& state,
                           PushOrder order, const CancellationToken* cancel,
                           const PushRoundHook* round_hook) {
  if (order == PushOrder::kMaxResidueFirst) {
    return ForwardSearchMaxFirst(graph, config, source, r_max, seeds,
                                 push_seeds_unconditionally, state, cancel);
  }
  return ForwardSearchLevelSync(graph, config, source, r_max, seeds,
                                push_seeds_unconditionally, state, cancel,
                                round_hook);
}

}  // namespace resacc

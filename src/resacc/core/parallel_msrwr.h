#ifndef RESACC_CORE_PARALLEL_MSRWR_H_
#define RESACC_CORE_PARALLEL_MSRWR_H_

#include <functional>
#include <memory>
#include <vector>

#include "resacc/core/ssrwr_algorithm.h"
#include "resacc/util/thread_pool.h"
#include "resacc/util/types.h"

namespace resacc {

// Parallel Multiple-Sources RWR (our extension; the paper leaves MSRWR as
// one-SSRWR-per-source and measures it sequentially, Section VI). Solvers
// hold per-query workspaces and are not thread-safe, so each worker gets
// its own instance from `make_solver`; sources are distributed across the
// pool. Results are returned in source order.
//
//   ThreadPool pool(4);
//   auto results = ParallelQueryMany(pool, sources, [&] {
//     return std::make_unique<ResAccSolver>(graph, config, options);
//   });
inline std::vector<std::vector<Score>> ParallelQueryMany(
    ThreadPool& pool, const std::vector<NodeId>& sources,
    const std::function<std::unique_ptr<SsrwrAlgorithm>()>& make_solver) {
  // One solver per worker, created lazily on first use via thread-indexed
  // striping: source i is handled by solver i % num_threads, and each
  // solver is only ever used by one in-flight task at a time because its
  // stripe's tasks are serialized through a per-stripe chain.
  //
  // Simpler and just as effective here: pre-create num_threads solvers and
  // give stripe k the sources {k, k + T, k + 2T, ...}; each stripe runs as
  // one task, so no two tasks share a solver.
  const std::size_t num_stripes =
      std::min(pool.num_threads(), sources.size());
  std::vector<std::vector<Score>> results(sources.size());
  if (num_stripes == 0) return results;

  std::vector<std::unique_ptr<SsrwrAlgorithm>> solvers;
  solvers.reserve(num_stripes);
  for (std::size_t k = 0; k < num_stripes; ++k) {
    solvers.push_back(make_solver());
  }

  ParallelFor(pool, num_stripes, [&](std::size_t stripe) {
    for (std::size_t i = stripe; i < sources.size(); i += num_stripes) {
      results[i] = solvers[stripe]->Query(sources[i]);
    }
  });
  return results;
}

}  // namespace resacc

#endif  // RESACC_CORE_PARALLEL_MSRWR_H_

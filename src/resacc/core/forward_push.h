#ifndef RESACC_CORE_FORWARD_PUSH_H_
#define RESACC_CORE_FORWARD_PUSH_H_

#include <cstdint>
#include <functional>
#include <span>

#include "resacc/core/push_state.h"
#include "resacc/core/rwr_config.h"
#include "resacc/graph/graph.h"
#include "resacc/util/cancellation.h"

namespace resacc {

// Operation counters for the push engines; the benches report these and
// the complexity tests assert their bounds.
struct PushStats {
  std::uint64_t push_operations = 0;
  std::uint64_t edge_traversals = 0;

  PushStats& operator+=(const PushStats& other) {
    push_operations += other.push_operations;
    edge_traversals += other.edge_traversals;
    return *this;
  }
};

// The push condition (Definition 6): r(t) / d_out(t) >= r_max, with
// dangling nodes treated as degree 1.
inline bool SatisfiesPushCondition(const Graph& graph, const PushState& state,
                                   NodeId t, Score r_max) {
  const NodeId degree = graph.OutDegree(t);
  const Score scaled =
      degree > 0 ? state.residue(t) / static_cast<Score>(degree)
                 : state.residue(t);
  return scaled >= r_max;
}

// One forward push operation at `node` (Definition 7): moves alpha of its
// residue to its reserve and spreads the rest over out-neighbours (or per
// the dangling policy). No-op when the residue is zero.
void ForwardPushAt(const Graph& graph, const RwrConfig& config, NodeId source,
                   NodeId node, PushState& state, PushStats& stats);

// Work-list policy for the forward search.
enum class PushOrder {
  // Level-synchronous rounds on the shared Frontier (frontier.h) — the
  // classic FIFO wavefront with a canonical ascending-id order inside
  // each round, and the default everywhere. Wavefronts maximize residue
  // accumulation (a node collects from its whole in-frontier before it is
  // popped), and the canonical in-round order makes the processing
  // sequence deterministic in the scheduled (node, round) pairs alone —
  // the property the batched multi-source solver builds on. The enum name
  // is kept for the queue family it belongs to.
  kFifo,
  // Largest residue first (lazy max-heap). Measured *worse* than kFifo on
  // power-law graphs (5-7x more pushes: the greedy pop re-processes hub
  // nodes as mass trickles in) — kept as an experimentation knob and
  // pinned by push_order_test.
  kMaxResidueFirst,
};

// Invoked by the level-synchronous search each time the Frontier promotes
// to a new round (before any node of that round is pushed). Returning true
// stops the search there; the state is a valid intermediate exactly as
// with cancellation. The top-k solver hangs its separation check here —
// round boundaries are the only points whose position in the processing
// sequence is a pure function of the scheduled (node, round) pairs, which
// is what keeps batched-lane replays bit-identical to serial.
// Ignored by kMaxResidueFirst (no round structure).
using PushRoundHook = std::function<bool(std::size_t round)>;

// Queue-driven forward search (Algorithm 1, generalized):
//  * `seeds` are enqueued first; when `push_seeds_unconditionally` they
//    are pushed even if below threshold (OMFWD seeds the accumulated
//    (h+1)-layer this way, Algorithm 4).
//  * afterwards, any node whose residue meets the push condition with
//    `r_max` is pushed until none remains.
// The state must already hold the initial residues (e.g. r(s) = 1).
// A non-null `cancel` token is polled every few hundred dequeues; when it
// fires the search stops early. The state stays a valid intermediate (the
// invariant pi(v) = reserve(v) + sum_u r(u) pi_u(v) holds after every
// individual push), so the caller can still read partial reserves and the
// remaining residue mass — the token's status says *why* it stopped.
PushStats RunForwardSearch(const Graph& graph, const RwrConfig& config,
                           NodeId source, Score r_max,
                           std::span<const NodeId> seeds,
                           bool push_seeds_unconditionally, PushState& state,
                           PushOrder order = PushOrder::kFifo,
                           const CancellationToken* cancel = nullptr,
                           const PushRoundHook* round_hook = nullptr);

}  // namespace resacc

#endif  // RESACC_CORE_FORWARD_PUSH_H_

#ifndef RESACC_CORE_BATCH_SOLVER_H_
#define RESACC_CORE_BATCH_SOLVER_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "resacc/algo/fora.h"
#include "resacc/core/frontier.h"
#include "resacc/core/push_state.h"
#include "resacc/core/resacc_solver.h"
#include "resacc/core/ssrwr_algorithm.h"
#include "resacc/core/walk_engine.h"
#include "resacc/graph/graph.h"
#include "resacc/graph/hop_layers.h"
#include "resacc/util/cancellation.h"
#include "resacc/util/huge_array.h"
#include "resacc/util/rng.h"

namespace resacc {

// One lane of a batch: a source plus its own cancellation token. A fired
// token detaches only that lane — the rest of the batch keeps running.
struct BatchLane {
  NodeId source = 0;
  const CancellationToken* cancel = nullptr;
  // > 0 makes this a top-k lane: QueryBatch fills the lane's TopKResult
  // (bit-identical to the serial solver's QueryTopK) and leaves the
  // ControlledQueryResult's scores empty — skipping the n-vector is the
  // point of the mode. 0 = ordinary full-vector lane.
  std::size_t top_k = 0;
};

// Options of the Monte-Carlo batch backend (mirrors the MonteCarlo ctor).
struct MonteCarloBatchOptions {
  double walk_scale = 1.0;
  std::size_t walk_threads = 1;
};

// Aggregate diagnostics of the most recent QueryBatch call.
struct BatchQueryStats {
  std::uint64_t push_operations = 0;  // lane pushes, summed over lanes
  std::uint64_t edge_traversals = 0;  // lane edge visits, summed over lanes
  // Union-frontier pops in the shared rounds: one CSR row read serves
  // `push_operations / shared_node_pops` lane pushes on average — the
  // amortization the batch exists for.
  std::uint64_t shared_node_pops = 0;
  // Lane pushes served by the dense all-lanes kernel (the vectorized path).
  std::uint64_t dense_lane_pushes = 0;
  // Wall-clock phase split of the ResAcc backend (zero for FORA/MC).
  double hop_seconds = 0.0;
  double omfwd_seconds = 0.0;
  double remedy_seconds = 0.0;
};

// Structure-of-arrays push state for B lanes: residues and reserves are
// lane-major (`values[v * num_lanes + b]`), so the inner per-lane loops of
// the push kernel walk contiguous memory and compiler-vectorize. Touched
// tracking is two-level: a per-node lane bitmask plus
//   * `union_touched()`  — nodes touched by any lane, for O(touched) Reset
//     and for the updating phase's whole-batch scaling sweep;
//   * `lane_touched(b)`  — the nodes lane b touched, in the exact order the
//     serial solver's PushState would have touched them. Remedy walk slices
//     are built in touched order and merged in slice order, so preserving
//     this order per lane is what keeps the batched results bit-identical
//     to the serial solver (see DESIGN.md "Batched solving").
class BatchPushState {
 public:
  using LaneMask = BatchFrontier::LaneMask;

  // (Re)shapes the state for `num_lanes` lanes; an unchanged shape resets
  // in O(touched x lanes) instead of reallocating.
  void Configure(NodeId num_nodes, std::size_t num_lanes);
  void Reset();

  std::size_t num_lanes() const { return num_lanes_; }

  Score* ResidueRow(NodeId v) {
    return residue_.data() + static_cast<std::size_t>(v) * num_lanes_;
  }
  Score* ReserveRow(NodeId v) {
    return reserve_.data() + static_cast<std::size_t>(v) * num_lanes_;
  }
  const Score* ResidueRow(NodeId v) const {
    return residue_.data() + static_cast<std::size_t>(v) * num_lanes_;
  }
  const Score* ReserveRow(NodeId v) const {
    return reserve_.data() + static_cast<std::size_t>(v) * num_lanes_;
  }

  LaneMask touched_mask(NodeId v) const { return touched_mask_[v]; }

  // Marks `lanes`' first touches of `v`, appending v to each newly touching
  // lane's ordered list. Call BEFORE writing the row, at exactly the points
  // PushState::Touch would fire in the serial solver.
  void Touch(NodeId v, LaneMask lanes) {
    const LaneMask missing = lanes & ~touched_mask_[v];
    if (missing == 0) return;
    if (touched_mask_[v] == 0) union_touched_.push_back(v);
    touched_mask_[v] |= missing;
    for (LaneMask m = missing; m != 0; m &= m - 1) {
      lane_touched_[LaneOf(m)].push_back(v);
    }
  }

  std::span<const NodeId> union_touched() const { return union_touched_; }
  std::span<const NodeId> lane_touched(std::size_t b) const {
    return lane_touched_[b];
  }

  // Sum of lane b's residues in lane-b touched order — the same summation
  // order as PushState::ResidueSum in the serial solver.
  Score LaneResidueSum(std::size_t b) const {
    Score sum = 0.0;
    for (NodeId v : lane_touched_[b]) sum += ResidueRow(v)[b];
    return sum;
  }

  static std::size_t LaneOf(LaneMask m) {
    return static_cast<std::size_t>(std::countr_zero(m));
  }

 private:
  // Huge-page-backed (see huge_array.h): the panels are the solver's hot
  // random-access working set and dwarf the TLB reach of 4 KiB pages.
  HugeArray<Score> residue_;
  HugeArray<Score> reserve_;
  std::vector<LaneMask> touched_mask_;
  std::vector<NodeId> union_touched_;
  std::vector<std::vector<NodeId>> lane_touched_;
  NodeId num_nodes_ = 0;
  std::size_t num_lanes_ = 0;
};

// Batched multi-source solver: runs up to kMaxLanes sources through ONE
// shared frontier sweep per phase, so each CSR row read during the shared
// rounds serves every lane that scheduled the node, and the per-lane
// residue updates run as contiguous compiler-vectorized loops over the SoA
// lanes. Backends: the full ResAcc pipeline (default), FORA, and Monte
// Carlo (per-lane; walks do not amortize).
//
// Contract (the tentpole guarantees):
//  * Per-source results are BIT-IDENTICAL to the corresponding serial
//    solver (ResAccSolver / Fora / MonteCarlo with the same graph, config
//    and options) for every lane that runs to completion. Each lane's
//    floating-point operation sequence is replayed exactly — see
//    frontier.h's round discipline and DESIGN.md "Batched solving".
//  * Each lane carries its own epsilon accounting: a complete lane reports
//    the configured epsilon (Definition 1 holds per source); a detached
//    lane reports epsilon + uncorrected_mass / delta, exactly like a
//    cancelled serial query.
//  * A lane whose cancellation token fires detaches without perturbing the
//    other lanes (its pending work is masked out; the survivors' operation
//    sequences are unchanged).
//
// Like the serial solvers, an instance is bound to one graph and is NOT
// thread-safe; give each serve worker its own instance.
class BatchSolver {
 public:
  static constexpr std::size_t kMaxLanes = BatchFrontier::kMaxLanes;

  // ResAcc backend (the default pipeline: h-HopFWD + OMFWD + remedy).
  BatchSolver(const Graph& graph, const RwrConfig& config,
              const ResAccOptions& options = {});
  // FORA backend (forward push + remedy).
  BatchSolver(const Graph& graph, const RwrConfig& config,
              const ForaOptions& options);
  // Monte-Carlo backend.
  BatchSolver(const Graph& graph, const RwrConfig& config,
              const MonteCarloBatchOptions& options);

  const std::string& name() const { return name_; }

  // Solves all lanes (1 <= lanes.size() <= kMaxLanes); results are indexed
  // like `lanes`. Each result is exactly what the serial solver's
  // QueryControlled would return for that lane's (source, cancel).
  //
  // Lanes with top_k > 0 require a non-null `topk_results` (resized and
  // indexed like `lanes`); each such lane gets the serial QueryTopK's
  // bit-identical TopKResult — the ResAcc backend bridges the lane's
  // post-OMFWD state into the shared SolveTopKFromState finish, the
  // FORA/MC backends mirror their serial default (full solve + bracket) —
  // and its ControlledQueryResult carries only the status/epsilon tags
  // (scores left empty). Full-vector lanes leave their TopKResult empty.
  std::vector<ControlledQueryResult> QueryBatch(
      std::span<const BatchLane> lanes,
      std::vector<TopKResult>* topk_results = nullptr);

  // Convenience: runs `sources` through batches of at most `batch_size`
  // lanes (no cancellation tokens).
  std::vector<ControlledQueryResult> QueryAllChunked(
      std::span<const NodeId> sources, std::size_t batch_size);

  const BatchQueryStats& last_stats() const { return last_stats_; }

 private:
  enum class Backend { kResAcc, kFora, kMonteCarlo };
  using LaneMask = BatchFrontier::LaneMask;

  // Per-lane working data of one QueryBatch call.
  struct LaneRun {
    NodeId source = 0;
    const CancellationToken* cancel = nullptr;
    std::size_t top_k = 0;            // > 0: top-k lane
    HopLayers layers;                 // h-hop decomposition (OMFWD seeds)
    std::vector<NodeId> seeds;        // current phase's per-lane seed list
    bool initialized = false;         // r(source) = 1 has been planted
    bool detached = false;
    Status status;
    // Hybrid selection outcome of this lane (core/power_iter.h): a dense
    // lane skips the shared rounds and remedy; FinishLane hands its
    // bridged state to the same RunDenseFinish the serial solver calls.
    SolverPath path = SolverPath::kLocal;
  };

  void RunResAccBatch(std::span<const BatchLane> lanes,
                      std::vector<ControlledQueryResult>& results);
  void RunForaBatch(std::span<const BatchLane> lanes,
                    std::vector<ControlledQueryResult>& results);
  void RunMonteCarloBatch(std::span<const BatchLane> lanes,
                          std::vector<ControlledQueryResult>& results);

  // Polls every live lane's token and detaches the fired ones.
  void PollLanes(std::span<LaneRun> runs);

  // Lane b's push condition (Definition 6) — kept as residue/degree >= r_max
  // exactly, never rearranged (FP equivalence with the serial check).
  bool LaneCond(NodeId v, std::size_t b, Score r_max) const {
    const NodeId degree = graph_.OutDegree(v);
    const Score residue = state_.ResidueRow(v)[b];
    const Score scaled =
        degree > 0 ? residue / static_cast<Score>(degree) : residue;
    return scaled >= r_max;
  }

  // One batched push at `u` for the lanes of `gate` (the lanes that popped
  // the node and passed their gating), plus the post-push scheduling sweep
  // when `frontier` is non-null.
  void ApplyPush(NodeId u, LaneMask gate, Score r_max,
                 std::span<LaneRun> runs, BatchFrontier* frontier);

  // Schedules into `frontier` the lanes of `candidates` whose post-deposit
  // residue row `rv` satisfies the push condition at `v` — the fused
  // scheduling step of ApplyPush's deposit loops.
  void ScheduleLanes(NodeId v, const Score* rv, LaneMask candidates,
                     Score r_max, BatchFrontier& frontier);

  // Processes lane b's round 0 (its private seed order), consuming the
  // lane's seed bits even when the lane is detached.
  void ProcessSeedRound(std::size_t b, bool unconditional, Score r_max,
                        std::span<LaneRun> runs, BatchFrontier& frontier);

  // Drains the shared union rounds (>= 1) at threshold `r_max`.
  void SharedRounds(Score r_max, std::span<LaneRun> runs,
                    BatchFrontier& frontier);

  // Remedy + result assembly for one lane (bridges the lane's state into a
  // scratch PushState in the lane's serial touched order). A non-null
  // `topk` routes a ResAcc top-k lane through FinishLaneTopK instead.
  void FinishLane(std::size_t b, LaneRun& run, double remedy_budget_seconds,
                  ControlledQueryResult& result, TopKResult* topk = nullptr);

  // Top-k finish of a ResAcc lane: bridges reserves AND residues into the
  // scratch state (same serial touched order) and hands it to the exact
  // function the serial QueryTopK calls — bit-identity by construction.
  void FinishLaneTopK(std::size_t b, LaneRun& run,
                      ControlledQueryResult& result, TopKResult& topk);

  const Graph& graph_;
  RwrConfig config_;
  Backend backend_;
  ResAccOptions resacc_options_;
  ForaOptions fora_options_;
  MonteCarloBatchOptions mc_options_;
  Score r_max_f_ = 0.0;      // ResAcc OMFWD threshold (default applied)
  Score fora_r_max_ = 0.0;   // FORA push threshold (default applied)
  double walk_scale_ = 1.0;
  std::string name_;

  BatchPushState state_;
  BatchFrontier frontier_;
  // Per-lane scratch: hosts the lane-local serial h-HopFWD run and OMFWD
  // round 0 (neither overlaps across lanes, so both run at serial speed on
  // the flat L2-resident state and are transplanted into the SoA once) and
  // later the bridge into RunRemedy.
  PushState scratch_;
  // Serial work list for the lane-local OMFWD round 0: replays the serial
  // Frontier's exact seed-round scheduling semantics, then hands its
  // staged round-1 set to the shared frontier_.
  Frontier seed_frontier_;
  Rng rng_;
  WalkEngine walk_engine_;
  BatchQueryStats last_stats_;

  std::size_t num_lanes_ = 0;
  LaneMask full_mask_ = 0;
  LaneMask detached_mask_ = 0;
  // Lanes the hybrid selector handed to the dense path: masked out of the
  // shared rounds exactly where the serial solver's round hook would have
  // stopped its search (SharedRounds), finished densely in FinishLane.
  LaneMask dense_mask_ = 0;
  // Per-call out-param for top-k lanes (null when the batch has none).
  std::vector<TopKResult>* topk_out_ = nullptr;
  // Software prefetch is worth its issue slots only while the SoA panels
  // overflow the fast cache levels; small graphs run the kernels without
  // the prefetch stages. Set per QueryBatch from the panel footprint.
  bool prefetch_ = true;
};

}  // namespace resacc

#endif  // RESACC_CORE_BATCH_SOLVER_H_

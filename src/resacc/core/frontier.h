#ifndef RESACC_CORE_FRONTIER_H_
#define RESACC_CORE_FRONTIER_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "resacc/util/check.h"
#include "resacc/util/types.h"

namespace resacc {

// Deterministic round-based work list shared by every push-based search
// (h-HopFWD's accumulating phase, OMFWD, FORA's forward push).
//
// Discipline:
//  * Round 0 holds the seeds, processed in the order the caller supplied
//    them (OMFWD's residue-descending seed heuristic depends on this).
//  * A node scheduled while round k is being processed joins round k+1.
//  * Within every round >= 1, nodes are processed in ascending node id.
//
// This is the classic FIFO wavefront — a node enqueued during round k's
// processing lands after every round-k node, exactly as in a deque — with
// one refinement: the order *within* a round is a sorted canonical order
// instead of enqueue order. That makes the processing sequence a pure
// function of which (node, round) pairs get scheduled, never of the order
// neighbours happen to be visited in. The batched multi-source solver
// (batch_solver.h) relies on this: each lane of a batch schedules exactly
// the (node, round) pairs its serial run would, so processing the union
// frontier in the same canonical order replays every lane's serial
// floating-point operation sequence bit for bit.
//
// Updates are Gauss-Seidel: a push's residue deposits are visible to later
// pushes of the same round immediately. The push condition is monotone in
// a node's residue until the node itself pushes, so a scheduled node still
// satisfies the condition when it is popped (callers re-check anyway for
// seeds, which may be scheduled unconditionally).
class Frontier {
 public:
  explicit Frontier(NodeId num_nodes) : scheduled_(num_nodes, 0) {}

  // Appends `v` to round 0, preserving call order; duplicates are ignored.
  // Only valid before the first Next() call.
  void Seed(NodeId v) {
    RESACC_DCHECK(round_ == 0 && pos_ == 0);
    if (scheduled_[v]) return;
    scheduled_[v] = 1;
    current_.push_back(v);
  }

  // Schedules `v` for the next round unless it is already scheduled
  // (pending in the current round, or in the next one). Returns true when
  // the node was newly scheduled.
  bool Schedule(NodeId v) {
    if (scheduled_[v]) return false;
    scheduled_[v] = 1;
    next_.push_back(v);
    return true;
  }

  // Pops the next node in round order (clearing its scheduled flag, so a
  // later deposit may re-schedule it). Returns false when no work remains.
  bool Next(NodeId* v) {
    if (pos_ == current_.size()) {
      if (next_.empty()) return false;
      current_.swap(next_);
      next_.clear();
      std::sort(current_.begin(), current_.end());
      pos_ = 0;
      ++round_;
    }
    *v = current_[pos_++];
    scheduled_[*v] = 0;
    return true;
  }

  // Index of the round the most recent Next() came from (0 = seeds).
  std::size_t round() const { return round_; }

  // Nodes of the current round not yet popped, for lookahead prefetching.
  const NodeId* pending() const { return current_.data() + pos_; }
  std::size_t pending_count() const { return current_.size() - pos_; }

  // Nodes staged for the next round, in schedule order (deduplicated, not
  // yet sorted — Next() sorts on promotion). The batch solver drains each
  // lane's round 0 through a serial Frontier and hands the staged round-1
  // set over to the shared BatchFrontier.
  std::span<const NodeId> staged() const { return next_; }

  // Clears leftover scheduled flags after an early stop (cancellation), so
  // the instance can be reused. O(remaining work), not O(n).
  void Clear() {
    for (std::size_t i = pos_; i < current_.size(); ++i) {
      scheduled_[current_[i]] = 0;
    }
    for (NodeId v : next_) scheduled_[v] = 0;
    current_.clear();
    next_.clear();
    pos_ = 0;
    round_ = 0;
  }

 private:
  std::vector<std::uint8_t> scheduled_;
  std::vector<NodeId> current_;
  std::vector<NodeId> next_;
  std::size_t pos_ = 0;
  std::size_t round_ = 0;
};

// The multi-source variant: per-node lane bitmasks instead of booleans.
// A node is live in a round for the set of lanes that scheduled it; the
// batched sweep processes the union frontier once per round and applies
// each push to exactly the scheduled lanes. Because scheduling decisions
// are per-lane (a lane's bits are set only by that lane's own pushes) and
// rounds are processed in the same canonical ascending-id order as the
// serial Frontier, each lane's (node, round) processing sequence equals
// its serial one — the keystone of the batch solver's bit-identity
// guarantee (see DESIGN.md "Batched solving").
//
// Seeds are NOT routed through this class: seed order is per-lane (OMFWD
// sorts each lane's frontier by that lane's residues), so the batch solver
// processes each lane's round 0 itself — the ResAcc backend runs it
// serially on flat scratch state and Schedule()s the resulting round-1 set
// here (Next() promotes and sorts it), while the FORA backend uses
// MarkSeed/TakeSeed to keep the masks consistent during its in-SoA round 0.
class BatchFrontier {
 public:
  using LaneMask = std::uint32_t;
  static constexpr std::size_t kMaxLanes = 32;

  explicit BatchFrontier(NodeId num_nodes)
      : masks_(num_nodes, Masks{0, 0}) {}

  // Marks `lanes`' bits of `v` as pending in round 0 without enqueuing it
  // (the caller owns the per-lane seed lists and their order).
  void MarkSeed(NodeId v, LaneMask lanes) {
    RESACC_DCHECK(round_ == 0 && pos_ == 0);
    masks_[v].current |= lanes;
  }

  // Consumes lane `lanes`' round-0 bits of `v`; returns the bits that were
  // actually pending (0 for a duplicate seed already processed).
  LaneMask TakeSeed(NodeId v, LaneMask lanes) {
    const LaneMask taken = masks_[v].current & lanes;
    masks_[v].current &= ~taken;
    return taken;
  }

  // Schedules `v` for the next round on the lanes of `lanes` that do not
  // already have it scheduled.
  void Schedule(NodeId v, LaneMask lanes) {
    Masks& m = masks_[v];
    const LaneMask fresh = lanes & ~m.current & ~m.next;
    if (fresh == 0) return;
    if (m.next == 0) next_.push_back(v);
    m.next |= fresh;
  }

  LaneMask scheduled(NodeId v) const {
    return masks_[v].current | masks_[v].next;
  }

  void PrefetchMasks(NodeId v) const { __builtin_prefetch(&masks_[v], 1, 1); }

  // Pops the next (node, lanes) pair in round order. All of the node's
  // pending lanes are consumed together. Returns false when drained.
  bool Next(NodeId* v, LaneMask* lanes) {
    while (true) {
      if (pos_ == current_.size()) {
        if (next_.empty()) return false;
        current_.swap(next_);
        next_.clear();
        std::sort(current_.begin(), current_.end());
        // Promote the masks with the list. Every node of the finished
        // round was popped (its current mask consumed), so overwriting is
        // safe even for nodes that sat in both rounds.
        for (NodeId n : current_) {
          masks_[n].current = masks_[n].next;
          masks_[n].next = 0;
        }
        pos_ = 0;
        ++round_;
      }
      *v = current_[pos_++];
      *lanes = masks_[*v].current;
      masks_[*v].current = 0;
      // A node can end up with an empty mask (every scheduling lane
      // detached): skip it rather than hand the caller a no-op.
      if (*lanes != 0) return true;
    }
  }

  std::size_t round() const { return round_; }

  const NodeId* pending() const { return current_.data() + pos_; }
  std::size_t pending_count() const { return current_.size() - pos_; }

  // Drops the given lanes from every future pop (lane detach on
  // cancellation). Stale bits left in the per-node masks are cleared
  // lazily by Next()/Clear().
  // (Intentionally no-op here: callers mask popped lanes themselves; this
  // class stays a pure schedule.)

  // Clears leftover masks after an early stop so the instance is reusable
  // for the next phase/batch. O(remaining work), not O(n).
  void Clear() {
    for (std::size_t i = pos_; i < current_.size(); ++i) {
      masks_[current_[i]].current = 0;
    }
    for (NodeId v : next_) masks_[v].next = 0;
    current_.clear();
    next_.clear();
    pos_ = 0;
    round_ = 0;
  }

 private:
  // The current- and next-round masks of a node live side by side in one
  // 8-byte slot: Schedule and scheduled() always read both, and the push
  // kernel hits them at random node order, so splitting them across two
  // arrays would double the cache lines touched per neighbour.
  struct Masks {
    LaneMask current;
    LaneMask next;
  };

  std::vector<Masks> masks_;
  std::vector<NodeId> current_;
  std::vector<NodeId> next_;
  std::size_t pos_ = 0;
  std::size_t round_ = 0;
};

}  // namespace resacc

#endif  // RESACC_CORE_FRONTIER_H_

#ifndef RESACC_CORE_TOPK_H_
#define RESACC_CORE_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "resacc/util/status.h"
#include "resacc/util/top_k.h"
#include "resacc/util/types.h"

namespace resacc {

// Knobs of the bound-driven top-k refinement (see topk_solve.h and
// DESIGN.md "Top-k: bound-based early termination"). The defaults aim the
// common case — certify without ever entering the remedy phase — while the
// guards keep the fallback path from costing more than a full query.
struct TopKOptions {
  // r_max divisor applied per refinement stage after OMFWD. Larger values
  // take fewer, bigger stages between separation checks.
  double shrink = 8.0;
  // Refinement gives up once r_max falls below `min_r_max_factor` times
  // the starting threshold. Exact score ties at rank k can never be
  // separated by a finite push, so a floor is mandatory; it also bounds
  // the work wasted on near-ties before the remedy fallback takes over.
  double min_r_max_factor = 1e-7;
  // Hard cap on refinement edge traversals, as a multiple of m.
  double max_refine_edge_factor = 64.0;
  // Cost-model guard: refinement stops once a stage traverses more than
  // `profit_slack` times the remedy walk steps it saved (the walk count is
  // proportional to the residue mass the stage drained, Theorem 3). The
  // slack reflects that push work streams the CSR while walk steps jump
  // randomly; > 1 keeps refining past the naive break-even.
  double profit_slack = 4.0;
};

// One row of a top-k answer. `lower`/`upper` bracket the true RWR value
// pi(source, node):
//  * certified results (deterministic): lower = reserve accumulated by the
//    pushes, upper = reserve + remaining residue mass — the push invariant
//    pi(v) = reserve(v) + sum_u r(u) pi_u(v) makes both sides exact bounds,
//    with no failure probability.
//  * fallback/approximate results: the epsilon-relative bracket
//    [estimate / (1 + eps), estimate / (1 - eps)] at the achieved epsilon,
//    holding with the configured failure probability for nodes above delta
//    (upper is +inf when eps >= 1).
struct TopKEntry {
  NodeId node = 0;
  Score estimate = 0.0;
  Score lower = 0.0;
  Score upper = 0.0;
};

// Outcome of a top-k query. `entries` holds min(k, n) rows in descending
// estimate order (ties by ascending node id, matching TopKIndices).
struct TopKResult {
  Status status;
  // The k that was asked for (entries may be fewer when k > n).
  std::size_t k = 0;
  std::vector<TopKEntry> entries;

  // True when the result is a separation certificate: every entry's lower
  // bound >= `outsider_upper`, an upper bound on the score of EVERY node
  // not listed. Certified results are exact top-k sets (boundary ties may
  // swap equal-scored nodes) and carry deterministic per-entry bounds.
  // False means the entries are the top-k of a full approximate solve
  // under the usual Definition-1 contract at `achieved_epsilon`.
  bool certified = false;
  // Upper bound on any excluded node's score (0 when nothing is excluded,
  // i.e. k >= n). For approximate results this is the epsilon-upper bound
  // of the best excluded estimate.
  Score outsider_upper = 0.0;
  // entries.back().lower - outsider_upper at the moment the solver
  // stopped; >= 0 iff certified. The margin the certificate closed with.
  Score bound_gap = 0.0;

  // Degradation tags, mirroring ControlledQueryResult: set when the query
  // was cancelled / deadline-stopped with probability mass uncorrected.
  bool degraded = false;
  Score uncorrected_mass = 0.0;
  double achieved_epsilon = 0.0;

  // Diagnostics: refinement stages run after OMFWD and the edges they
  // traversed (0 / 0 when the post-OMFWD state was already separated).
  std::uint32_t refine_stages = 0;
  std::uint64_t refine_edges = 0;
};

// Builds an approximate TopKResult from a full score vector — the bridge
// from any full-vector solver (the SsrwrAlgorithm::QueryTopK default, the
// serve layer's full-entry cache hits, and the ResAcc remedy fallback).
// Bounds are the epsilon-relative bracket described on TopKEntry.
inline TopKResult MakeApproximateTopK(const std::vector<Score>& scores,
                                      std::size_t k, double achieved_epsilon,
                                      bool degraded = false,
                                      Score uncorrected_mass = 0.0) {
  TopKResult result;
  result.k = k;
  result.achieved_epsilon = achieved_epsilon;
  result.degraded = degraded;
  result.uncorrected_mass = uncorrected_mass;
  const double eps = achieved_epsilon;
  const auto lower_of = [eps](Score est) { return est / (1.0 + eps); };
  const auto upper_of = [eps](Score est) {
    return eps < 1.0 ? est / (1.0 - eps)
                     : std::numeric_limits<Score>::infinity();
  };
  // One extra pair supplies the outsider bound.
  const auto pairs = TopKPairs(scores, k < scores.size() ? k + 1 : k);
  const std::size_t rows = std::min(k, pairs.size());
  result.entries.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    result.entries.push_back({pairs[i].first, pairs[i].second,
                              lower_of(pairs[i].second),
                              upper_of(pairs[i].second)});
  }
  if (pairs.size() > rows) result.outsider_upper = upper_of(pairs[rows].second);
  if (!result.entries.empty()) {
    result.bound_gap = result.entries.back().lower - result.outsider_upper;
  }
  return result;
}

// Whether a stored top-k' result can answer a top-k probe with k <= k'.
// Approximate results can (any prefix of a descending estimate list is the
// top-k of the same estimates, under the same epsilon contract). Certified
// results additionally need the *prefix* to separate: the k-th lower bound
// must dominate both the (k+1)-th entry's upper bound and the stored
// outsider bound — otherwise rows k+1..k' were only certified as a set.
inline bool TopKPrefixSatisfies(const TopKResult& result, std::size_t k) {
  if (k == 0 || k > result.k) return false;
  if (result.entries.size() <= k) return true;  // prefix is the whole list
  if (!result.certified) return true;
  const Score outsider =
      std::max(result.entries[k].upper, result.outsider_upper);
  return result.entries[k - 1].lower >= outsider;
}

// The top-k view of a stored top-k' result (caller checked
// TopKPrefixSatisfies). Demoted rows fold into the outsider bound.
inline TopKResult TopKPrefix(const TopKResult& result, std::size_t k) {
  TopKResult out = result;
  out.k = k;
  if (out.entries.size() > k) {
    out.outsider_upper =
        std::max(result.outsider_upper, result.entries[k].upper);
    out.entries.resize(k);
  }
  if (!out.entries.empty()) {
    out.bound_gap = out.entries.back().lower - out.outsider_upper;
  }
  return out;
}

}  // namespace resacc

#endif  // RESACC_CORE_TOPK_H_

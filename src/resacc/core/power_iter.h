#ifndef RESACC_CORE_POWER_ITER_H_
#define RESACC_CORE_POWER_ITER_H_

#include <cstdint>
#include <vector>

#include "resacc/core/push_state.h"
#include "resacc/core/rwr_config.h"
#include "resacc/graph/graph.h"
#include "resacc/util/cancellation.h"

namespace resacc {

// The dense fallback of the hybrid local/dense design (arXiv 2101.03652,
// "Unifying the Global and Local Approaches"): a hub source whose hop set
// spans a large fraction of the graph makes the paper's local pipeline
// (h-HopFWD at r_max_hop = 1e-14, then remedy walks over the leftover
// mass) cost more than simply power-iterating the whole CSR. The solvers
// estimate both costs and hand such queries — or single lanes of a batch,
// with their drained residue vector as the starting state — to
// RunDensePowerIter below. See DESIGN.md "Hybrid local/dense solving".

// Which backend produced a query's scores under the hybrid selector, and
// (for the dense paths) why the selector switched.
enum class SolverPath : std::uint8_t {
  kLocal = 0,          // the paper's local pipeline ran to completion
  kDenseShrinkFloor,   // adaptive hop cap bottomed out at the 1-hop floor
  kDenseHopGrowth,     // hop-set edge count made local cost beat the bound
  kDenseResidueMass,   // OMFWD-round remedy estimate beat the dense bound
};

// Stable label values for the resacc_hybrid_dense_total reason labels.
const char* SolverPathName(SolverPath path);

// Hybrid selection + dense-sweep knobs. Part of the serve-layer config
// hash (result_cache.cc): a dense answer is not bitwise the same as a
// local answer, so a cached result must never cross selection policies.
struct HybridOptions {
  // Master switch; off = always the local pipeline (pre-hybrid behavior).
  bool enable = false;
  // Local-cost multiplier: the dense path is taken when the local cost
  // estimate exceeds cost_ratio x DenseSweepCost. Values > 1 bias toward
  // staying local (dense only on clear wins); < 1 switch eagerly.
  double cost_ratio = 1.0;
  // L1 residual-mass stopping bound of the dense sweep. <= 0 selects
  // epsilon * delta, the bound under which Definition 1 holds with
  // probability 1: the leftover mass is an additive error <= eps * delta,
  // hence relative error <= eps on every node with pi(v) > delta.
  double tolerance = 0.0;
  // Hard sweep cap; 0 derives ceil(ln tol / ln(1 - alpha)) + 1, which the
  // geometric decay of alive mass guarantees is enough.
  std::uint32_t max_iterations = 0;
};

struct PowerIterStats {
  std::uint32_t iterations = 0;
  // Alive mass folded into the scores when the sweep stopped: below the
  // tolerance on a completed run, arbitrary on a cancelled one.
  Score leftover_mass = 0.0;
  bool cancelled = false;
};

// Effective tolerance / sweep bound after applying the defaults above.
double DenseTolerance(const RwrConfig& config, const HybridOptions& options);
std::uint32_t DenseIterationBound(const RwrConfig& config,
                                  const HybridOptions& options);

// Cost estimates, all in edge-traversal units so they compare directly.
// Dense: every sweep scans the full CSR (n + m) until the alive mass
// decays below tolerance.
double DenseSweepCost(const Graph& graph, const RwrConfig& config,
                      const HybridOptions& options);
// Local h-HopFWD: the accumulating phase re-scans the hop set's edges
// roughly once per factor-(1-alpha) decay until residues drop below
// r_max_hop — ln(1/r_max_hop) / -ln(1-alpha) sweeps (~144 at defaults).
double LocalHopCost(const RwrConfig& config, double hop_set_edges,
                    Score r_max_hop);
// Remedy phase: residue_sum * WalkCountCoefficient * walk_scale walks of
// expected length 1/alpha.
double RemedyCost(const RwrConfig& config, Score residue_sum,
                  double walk_scale);

// Selection point 1 (after the hop-layer BFS, before any push): choose the
// dense path when the adaptive cap bottomed out at its 1-hop floor with
// the hop set still over the cap, or when the hop set's edge count makes
// the accumulating phase alone beat cost_ratio x the dense bound. Both
// ResAccSolver and BatchSolver call this from their dense_probe hooks with
// identical inputs, so a batched lane selects exactly like its serial
// replay. Returns kLocal to continue locally.
SolverPath ChooseFromHopStats(const Graph& graph, const RwrConfig& config,
                              const HybridOptions& options, Score r_max_hop,
                              bool shrink_floored, double hop_set_edges);

// Selection point 2 (at each OMFWD round boundary): switch when the
// remedy walks the current residue mass implies cost more than
// cost_ratio x the dense bound. Round boundaries are the only points
// whose position is a pure function of the scheduled (node, round) pairs,
// so serial and batched lanes evaluate this on bit-identical residue sums.
bool DenseBeatsRemedy(const Graph& graph, const RwrConfig& config,
                      const HybridOptions& options, Score residue_sum,
                      double walk_scale);

// Power-iterates the residues of `state` over the full CSR and adds the
// result into `scores` (which must already hold the reserves; the push
// invariant pi(v) = reserve(v) + sum_u r(u) pi_u(v) makes the sum exact up
// to the leftover mass). The sweep is the same recurrence as
// algo/power.cc; the alive vector is seeded from state's residues. On
// completion the leftover alive mass (< tolerance) is folded into the
// scores so they still sum to 1 — an additive error <= tolerance. A
// non-null `cancel` is polled once per sweep; an early stop folds the
// current alive mass in the same way (reported via leftover_mass so the
// caller can account it as uncorrected). Fully deterministic: no RNG, and
// the sweep order is the fixed CSR order regardless of how `state` was
// produced — the basis of the dense path's bit-identity across
// walk_threads and batch lane counts.
PowerIterStats RunDensePowerIter(const Graph& graph, const RwrConfig& config,
                                 NodeId source, const PushState& state,
                                 std::vector<Score>& scores,
                                 const HybridOptions& options,
                                 const CancellationToken* cancel = nullptr);

// The shared dense finish used verbatim by ResAccSolver (QueryControlled /
// QueryTopK) and BatchSolver (FinishLane / FinishLaneTopK): seeds scores
// from the reserves of `state`, runs RunDensePowerIter from its residues,
// and fills the Definition-1 accounting tags. Keeping this in one place is
// what makes a dense lane's payload bit-identical to the serial solve.
struct DenseFinish {
  std::vector<Score> scores;
  PowerIterStats stats;
  bool degraded = false;
  Score uncorrected_mass = 0.0;
  double achieved_epsilon = 0.0;
};
DenseFinish RunDenseFinish(const Graph& graph, const RwrConfig& config,
                           NodeId source, const PushState& state,
                           const HybridOptions& options,
                           const CancellationToken* cancel);

// Process-wide hybrid observability (obs/metrics_registry.h), shared by
// the serial and batch solvers so both feed the same series:
// resacc_hybrid_local_total, resacc_hybrid_dense_total{reason=...} and
// resacc_hub_shrink_total.
void RecordHybridSelection(SolverPath path);
void RecordHubShrink();

}  // namespace resacc

#endif  // RESACC_CORE_POWER_ITER_H_

#ifndef RESACC_CORE_OMFWD_H_
#define RESACC_CORE_OMFWD_H_

#include <vector>

#include "resacc/core/forward_push.h"
#include "resacc/core/push_state.h"
#include "resacc/core/rwr_config.h"
#include "resacc/graph/graph.h"

namespace resacc {

// OMFWD, the "one-more forward search" (Algorithm 4): seeds the push queue
// with the accumulation frontier L_(h+1)-hop(s) in decreasing residue
// order, pushes each seed once unconditionally, then keeps pushing any
// node that satisfies the push condition with r_max_f until quiescent.
//
// `frontier` is typically layers.back() from RunHHopFwd; it is copied and
// sorted internally. A non-null `cancel` token stops the search early (see
// RunForwardSearch for the partial-state contract). A non-null
// `round_hook` fires at each wavefront-round promotion (see PushRoundHook);
// the hybrid selector hangs its residue-mass check there — round
// boundaries are the points where serial and batched replays see
// bit-identical residues.
PushStats RunOmfwd(const Graph& graph, const RwrConfig& config, NodeId source,
                   Score r_max_f, std::vector<NodeId> frontier,
                   PushState& state,
                   const CancellationToken* cancel = nullptr,
                   const PushRoundHook* round_hook = nullptr);

}  // namespace resacc

#endif  // RESACC_CORE_OMFWD_H_

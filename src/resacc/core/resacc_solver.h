#ifndef RESACC_CORE_RESACC_SOLVER_H_
#define RESACC_CORE_RESACC_SOLVER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "resacc/core/h_hop_fwd.h"
#include "resacc/core/power_iter.h"
#include "resacc/core/push_state.h"
#include "resacc/core/remedy.h"
#include "resacc/core/rwr_config.h"
#include "resacc/core/ssrwr_algorithm.h"
#include "resacc/core/topk.h"
#include "resacc/graph/graph.h"
#include "resacc/util/rng.h"

namespace resacc {

// Tuning knobs of the full ResAcc pipeline (Algorithm 2).
struct ResAccOptions {
  // r_max^hop of the h-HopFWD phase. Paper default: 1e-14.
  Score r_max_hop = 1e-14;
  // r_max^f of the OMFWD phase. <= 0 selects the paper default 1/(10 m).
  Score r_max_f = 0.0;
  // h; the paper uses 2 everywhere except DBLP (3). See Fig. 21.
  std::uint32_t num_hops = 2;
  // Adaptive hop-set cap (our extension; see HHopFwdOptions): shrink the
  // effective h when the source's hop set exceeds this fraction of n —
  // keeps hub-source queries from drowning in the accumulating phase.
  // 0 disables.
  double max_hop_set_fraction = 0.15;
  // Remedy walk multiplier n_scale (Appendix F); 1.0 = Theorem 3 count.
  double walk_scale = 1.0;

  // Top-k refinement knobs (QueryTopK only; full queries never read
  // them). Part of the serve-layer config hash: they shape the cached
  // top-k payloads.
  TopKOptions topk;

  // Hybrid local/dense selection (core/power_iter.h): when enabled, a
  // query whose hop set or residue mass makes the local pipeline cost
  // more than a whole-graph power-iteration sweep is handed to the dense
  // path instead, same (eps, delta) contract. Requires use_hop_subgraph
  // (the ablations stay pure-local). Part of the serve-layer config hash.
  HybridOptions hybrid;

  // Threads for the remedy phase's walk engine (0 = hardware concurrency).
  // Changes speed only, never the scores: remedy output is bit-identical
  // for every value (see walk_engine.h), which is why this knob is NOT
  // part of the serve-layer config hash. Keep 1 wherever one solver
  // already runs per pool worker (QueryService, ParallelQueryMany).
  std::size_t walk_threads = 1;

  // Ablation switches (Appendix K). All true = full ResAcc.
  bool use_loop_accumulation = true;  // false => "No-Loop-ResAcc"
  bool use_hop_subgraph = true;       // false => "No-SG-ResAcc"
  bool use_omfwd = true;              // false => "No-OFD-ResAcc"

  // Test hook: invoked at the start of each phase with "hhop", "omfwd",
  // "remedy" or "topk" (same precedent as ServeOptions::dequeue_hook). Lets tests
  // cancel deterministically *inside* a chosen phase instead of racing a
  // timer. Not hashed by the serve layer's config hash — hooks must not
  // change results.
  std::function<void(const char*)> phase_hook;
};

// Per-query diagnostics: phase timings (Table VII), operation counts, and
// the h-HopFWD internals (rho, T, S).
struct ResAccQueryStats {
  double hhop_seconds = 0.0;
  double omfwd_seconds = 0.0;
  double remedy_seconds = 0.0;
  double dense_seconds = 0.0;
  double total_seconds = 0.0;

  HHopFwdStats hhop;
  PushStats omfwd_push;
  RemedyStats remedy;
  Score residue_sum_after_omfwd = 0.0;

  // Hybrid selection outcome: which path answered and, when dense, the
  // sweep diagnostics.
  SolverPath path = SolverPath::kLocal;
  PowerIterStats dense;
};

// The paper's algorithm: h-HopFWD + OMFWD + remedy (Algorithm 2). One
// instance per graph; Query is repeatable and reuses workspaces.
class ResAccSolver : public SsrwrAlgorithm {
 public:
  ResAccSolver(const Graph& graph, const RwrConfig& config,
               const ResAccOptions& options);

  const std::string& name() const override { return name_; }

  std::vector<Score> Query(NodeId source) override;

  // Cancellable variant: polls `control.cancel` between the three phases,
  // every few hundred pushes inside h-HopFWD/OMFWD, and at every remedy
  // walk block. On an early stop the returned scores are the reserves
  // accumulated so far (plus any merged walk corrections) and
  // achieved_epsilon = epsilon + uncorrected_mass / delta. See
  // ControlledQueryResult for the exact contract.
  ControlledQueryResult QueryControlled(NodeId source,
                                        const QueryControl& control) override;

  // Bound-driven top-k (see topk_solve.h): runs the two push phases
  // unchanged, then refines at shrinking thresholds until rank k
  // separates — a certified result skips the remedy walks entirely; an
  // unseparated one falls back to remedy on the refined state. The shared
  // finish step makes BatchSolver's top-k lanes bit-identical to this.
  TopKResult QueryTopK(NodeId source, std::size_t k,
                       const QueryControl& control = QueryControl{}) override;

  // Diagnostics of the most recent Query call.
  const ResAccQueryStats& last_stats() const { return last_stats_; }

  // Effective r_max^f after applying the 1/(10 m) default.
  Score effective_r_max_f() const { return r_max_f_; }

  const RwrConfig& config() const { return config_; }
  const ResAccOptions& options() const { return options_; }

 private:
  // Phases 1-2 of Algorithm 2 (h-HopFWD + OMFWD) on state_, with the
  // usual per-phase stats/metrics/hooks. Returns the stop status: OK when
  // both phases completed, the token's status when one was cut short
  // (state_ then holds the valid partial reserves/residues).
  Status RunPushPhases(NodeId source, const CancellationToken* cancel);

  const Graph& graph_;
  RwrConfig config_;
  ResAccOptions options_;
  Score r_max_f_;
  std::string name_;
  PushState state_;
  Rng rng_;
  WalkEngine walk_engine_;
  ResAccQueryStats last_stats_;
};

}  // namespace resacc

#endif  // RESACC_CORE_RESACC_SOLVER_H_

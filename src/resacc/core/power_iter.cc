#include "resacc/core/power_iter.h"

#include <algorithm>
#include <cmath>

#include "resacc/obs/metrics_registry.h"
#include "resacc/util/check.h"

namespace resacc {
namespace {

// Hybrid selection counters, shared by the serial and batch solvers so
// both feed the same series (function-local statics, same pattern as
// SolverMetrics in resacc_solver.cc).
struct HybridMetrics {
  Counter& local;
  Counter& dense_shrink;
  Counter& dense_hop;
  Counter& dense_residue;
  Counter& hub_shrink;

  static HybridMetrics& Get() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static HybridMetrics metrics{
        registry.GetCounter("resacc_hybrid_local_total", "",
                            "Hybrid-enabled queries answered by the local "
                            "push + remedy pipeline."),
        registry.GetCounter("resacc_hybrid_dense_total",
                            "reason=\"shrink_floor\"",
                            "Hybrid-enabled queries handed to dense power "
                            "iteration, by selection reason."),
        registry.GetCounter("resacc_hybrid_dense_total",
                            "reason=\"hop_growth\""),
        registry.GetCounter("resacc_hybrid_dense_total",
                            "reason=\"residue_mass\""),
        registry.GetCounter("resacc_hub_shrink_total", "",
                            "Queries whose adaptive hop cap shrank the "
                            "effective h (hub sources)."),
    };
    return metrics;
  }
};

}  // namespace

const char* SolverPathName(SolverPath path) {
  switch (path) {
    case SolverPath::kLocal:
      return "local";
    case SolverPath::kDenseShrinkFloor:
      return "shrink_floor";
    case SolverPath::kDenseHopGrowth:
      return "hop_growth";
    case SolverPath::kDenseResidueMass:
      return "residue_mass";
  }
  return "unknown";
}

void RecordHybridSelection(SolverPath path) {
  HybridMetrics& metrics = HybridMetrics::Get();
  switch (path) {
    case SolverPath::kLocal:
      metrics.local.Increment();
      break;
    case SolverPath::kDenseShrinkFloor:
      metrics.dense_shrink.Increment();
      break;
    case SolverPath::kDenseHopGrowth:
      metrics.dense_hop.Increment();
      break;
    case SolverPath::kDenseResidueMass:
      metrics.dense_residue.Increment();
      break;
  }
}

void RecordHubShrink() { HybridMetrics::Get().hub_shrink.Increment(); }

double DenseTolerance(const RwrConfig& config, const HybridOptions& options) {
  return options.tolerance > 0.0 ? options.tolerance
                                 : config.epsilon * config.delta;
}

std::uint32_t DenseIterationBound(const RwrConfig& config,
                                  const HybridOptions& options) {
  if (options.max_iterations > 0) return options.max_iterations;
  const double tolerance = DenseTolerance(config, options);
  if (tolerance >= 1.0) return 1;
  // Each sweep converts at least an alpha fraction of the alive mass to
  // scores (dangling absorption only converts faster), so alive_sum decays
  // by (1 - alpha) per sweep and ceil(ln tol / ln(1 - alpha)) sweeps reach
  // the bound; +1 covers the boundary case.
  const double decay = std::log1p(-config.alpha);
  const double bound = std::ceil(std::log(tolerance) / decay) + 1.0;
  return static_cast<std::uint32_t>(std::max(1.0, bound));
}

double DenseSweepCost(const Graph& graph, const RwrConfig& config,
                      const HybridOptions& options) {
  return static_cast<double>(DenseIterationBound(config, options)) *
         (static_cast<double>(graph.num_nodes()) +
          static_cast<double>(graph.num_edges()));
}

double LocalHopCost(const RwrConfig& config, double hop_set_edges,
                    Score r_max_hop) {
  // The accumulating phase drains residues geometrically; reaching the
  // r_max_hop threshold takes ~ln(1/r_max_hop) / -ln(1-alpha) wavefronts
  // over the hop set's edges (~144 at the paper defaults — the reason a
  // whole-graph hop set is catastrophic for a local solve).
  const double sweeps =
      std::log(1.0 / static_cast<double>(r_max_hop)) / -std::log1p(-config.alpha);
  return hop_set_edges * std::max(1.0, sweeps);
}

double RemedyCost(const RwrConfig& config, Score residue_sum,
                  double walk_scale) {
  if (residue_sum <= 0.0) return 0.0;
  // Theorem 3: n_r = r_sum * c walks, each of expected length 1/alpha.
  const double walks = static_cast<double>(residue_sum) *
                       config.WalkCountCoefficient() * walk_scale;
  return walks / config.alpha;
}

SolverPath ChooseFromHopStats(const Graph& graph, const RwrConfig& config,
                              const HybridOptions& options, Score r_max_hop,
                              bool shrink_floored, double hop_set_edges) {
  if (!options.enable) return SolverPath::kLocal;
  // A floored shrink means even the 1-hop set exceeds the cap: the local
  // pipeline would either drown in the accumulating phase or dump nearly
  // all mass on remedy walks — exactly the degradation the dense path
  // exists for, so it is an unconditional trigger.
  if (shrink_floored) return SolverPath::kDenseShrinkFloor;
  if (LocalHopCost(config, hop_set_edges, r_max_hop) >
      options.cost_ratio * DenseSweepCost(graph, config, options)) {
    return SolverPath::kDenseHopGrowth;
  }
  return SolverPath::kLocal;
}

bool DenseBeatsRemedy(const Graph& graph, const RwrConfig& config,
                      const HybridOptions& options, Score residue_sum,
                      double walk_scale) {
  if (!options.enable) return false;
  return RemedyCost(config, residue_sum, walk_scale) >
         options.cost_ratio * DenseSweepCost(graph, config, options);
}

PowerIterStats RunDensePowerIter(const Graph& graph, const RwrConfig& config,
                                 NodeId source, const PushState& state,
                                 std::vector<Score>& scores,
                                 const HybridOptions& options,
                                 const CancellationToken* cancel) {
  RESACC_CHECK(source < graph.num_nodes());
  RESACC_CHECK(scores.size() == graph.num_nodes());
  const NodeId n = graph.num_nodes();
  const double alpha = config.alpha;
  const double tolerance = DenseTolerance(config, options);
  const std::uint32_t max_iterations = DenseIterationBound(config, options);

  std::vector<Score> alive(n, 0.0);
  std::vector<Score> next(n, 0.0);
  // Seed from the local state's residues. Summing in touched order keeps
  // the starting alive_sum bit-identical between a serial PushState and a
  // batch lane bridged back in the same (lane_touched) order; the sweeps
  // below then run in fixed CSR order, independent of how the state was
  // produced.
  Score alive_sum = 0.0;
  for (NodeId v : state.touched()) {
    alive[v] = state.residue(v);
    alive_sum += alive[v];
  }

  PowerIterStats stats;
  // Same recurrence as algo/power.cc::Query, seeded from residues instead
  // of a unit impulse: each sweep converts alpha of the alive mass into
  // scores and spreads the rest, so after convergence
  // scores == reserves + sum_u r(u) pi_u up to the leftover mass.
  for (; stats.iterations < max_iterations && alive_sum > tolerance;
       ++stats.iterations) {
    if (cancel != nullptr && cancel->ShouldStop()) {
      stats.cancelled = true;
      break;
    }
    std::fill(next.begin(), next.end(), 0.0);
    Score next_sum = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      const Score mass = alive[u];
      if (mass == 0.0) continue;
      const auto neighbors = graph.OutNeighbors(u);
      if (neighbors.empty()) {
        if (config.dangling == DanglingPolicy::kAbsorb) {
          // Walk stuck at a sink terminates there with probability 1.
          scores[u] += mass;
        } else {
          scores[u] += alpha * mass;
          const Score fly = (1.0 - alpha) * mass;
          next[source] += fly;
          next_sum += fly;
        }
        continue;
      }
      scores[u] += alpha * mass;
      const Score share =
          (1.0 - alpha) * mass / static_cast<Score>(neighbors.size());
      for (NodeId v : neighbors) next[v] += share;
      next_sum += (1.0 - alpha) * mass;
    }
    alive.swap(next);
    alive_sum = next_sum;
  }

  // Fold the leftover alive mass in by termination position so the scores
  // still sum to 1: on a completed run this is the < tolerance additive
  // error Definition 1 absorbs, on a cancelled run it is the uncorrected
  // mass the caller reports.
  for (NodeId u = 0; u < n; ++u) scores[u] += alive[u];
  stats.leftover_mass = alive_sum;
  return stats;
}

DenseFinish RunDenseFinish(const Graph& graph, const RwrConfig& config,
                           NodeId source, const PushState& state,
                           const HybridOptions& options,
                           const CancellationToken* cancel) {
  DenseFinish out;
  out.scores.assign(graph.num_nodes(), 0.0);
  for (NodeId v : state.touched()) out.scores[v] = state.reserve(v);
  out.stats = RunDensePowerIter(graph, config, source, state, out.scores,
                                options, cancel);
  out.achieved_epsilon = config.epsilon;
  if (out.stats.cancelled) {
    out.degraded = true;
    out.uncorrected_mass = out.stats.leftover_mass;
    // Same accounting as the local solver's finish: each unit of leftover
    // mass adds <= that much absolute error, i.e. uncorrected/delta
    // relative error on nodes above delta.
    out.achieved_epsilon =
        config.epsilon + out.uncorrected_mass / config.delta;
  }
  return out;
}

}  // namespace resacc

#ifndef RESACC_CORE_REMEDY_H_
#define RESACC_CORE_REMEDY_H_

#include <cstdint>
#include <vector>

#include "resacc/core/push_state.h"
#include "resacc/core/random_walk.h"
#include "resacc/core/rwr_config.h"
#include "resacc/core/walk_engine.h"
#include "resacc/graph/graph.h"
#include "resacc/util/rng.h"

namespace resacc {

// Outcome counters of a remedy phase.
struct RemedyStats {
  Score residue_sum = 0.0;      // r_sum fed into the walk-count formula
  std::uint64_t walks = 0;      // total walks simulated
  std::uint64_t steps = 0;      // total walk steps
  double target_walks = 0.0;    // n_r from Theorem 3 (before ceil per node)
  bool budget_exhausted = false;  // stopped early by the time budget
  bool cancelled = false;         // stopped early by the cancellation token
  // Residue mass whose correction walks were skipped (budget or
  // cancellation). Each skipped unit adds at most one unit of absolute
  // error to any single score, so a truncated run still satisfies
  // |pi_hat - pi| <= eps*pi + uncorrected_mass for pi > delta — the basis
  // of the serving layer's achieved-epsilon tag.
  Score uncorrected_mass = 0.0;
};

// The remedy phase shared by ResAcc (Algorithm 2 lines 5-17) and FORA:
// converts the residues left in `state` into unbiased score corrections by
// simulating n_r(v) = ceil(r(v) * n_r / r_sum) walks from each node v with
// positive residue, adding r(v) / n_r(v) to the terminal node of each walk.
//
// `scores` must be sized num_nodes; corrections are accumulated into it
// (callers pre-fill it with the reserves).
//
// `walk_scale` multiplies n_r — used by the paper's "fair comparison"
// experiments (Appendix F adjusts walk counts by n_scale) and by MC-style
// callers. 1.0 reproduces Theorem 3 exactly.
//
// `time_budget_seconds` > 0 makes the walk loop stop once the budget is
// spent, leaving later residues uncorrected (the equal-time comparison of
// Fig. 6(a) terminates FORA this way). The budget clock is checked every
// WalkEngine::kBlockWalks walks, so even one high-residue node with
// millions of walks overshoots the budget by at most one block.
//
// The walks run on `engine` (WalkEngine); nullptr uses a per-call
// sequential engine. The output is bit-identical for every engine thread
// count: randomness is forked per residual node from one draw of `rng`
// (which advances, so repeated calls with the same Rng object stay
// independent), and the engine merges per-block partial sums in a fixed
// order. See walk_engine.h for the full determinism contract.
// A non-null `cancel` token stops the walk loop at the next block boundary
// (same granularity as the budget); the skipped residue mass is reported
// as `uncorrected_mass` either way.
RemedyStats RunRemedy(const Graph& graph, const RwrConfig& config,
                      NodeId source, const PushState& state, Rng& rng,
                      std::vector<Score>& scores, double walk_scale = 1.0,
                      double time_budget_seconds = 0.0,
                      WalkEngine* engine = nullptr,
                      const CancellationToken* cancel = nullptr);

}  // namespace resacc

#endif  // RESACC_CORE_REMEDY_H_

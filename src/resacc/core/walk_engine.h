#ifndef RESACC_CORE_WALK_ENGINE_H_
#define RESACC_CORE_WALK_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "resacc/core/rwr_config.h"
#include "resacc/graph/graph.h"
#include "resacc/util/cancellation.h"
#include "resacc/util/rng.h"
#include "resacc/util/thread_pool.h"
#include "resacc/util/types.h"

namespace resacc {

// One batch of identical-origin walks: `num_walks` walks start at `start`
// and each deposits `weight` on its terminal node. `stream` selects the RNG
// substream; callers pass the start node id so a slice's randomness is a
// function of (root rng, node) alone, never of slice order or scheduling.
struct WalkSlice {
  NodeId start = 0;
  std::uint64_t num_walks = 0;
  Score weight = 0.0;
  std::uint64_t stream = 0;
};

// Outcome of a WalkEngine::Run call.
struct WalkEngineStats {
  std::uint64_t walks = 0;
  std::uint64_t steps = 0;
  std::uint64_t blocks = 0;          // scheduling blocks formed
  std::uint64_t reorder_stalls = 0;  // worker waits on a full reorder window
  bool budget_exhausted = false;     // stopped early by the time budget
  bool cancelled = false;            // stopped early by the cancellation token
  // Deposit mass of the blocks that were skipped (sum of walks x weight
  // over unissued blocks). This is exactly the probability mass the caller
  // asked for but did not get, so remedy/MC can derive an honest achieved
  // accuracy bound for a truncated run (Theorem 3's residual term).
  Score skipped_mass = 0.0;
};

// Deterministic, intra-query-parallel random-walk executor — the shared hot
// loop of ResAcc's remedy phase, FORA's walk phase, and Monte Carlo.
//
// Determinism contract: for a fixed (graph, config, root rng, slices), the
// score vector produced by Run is bit-identical for every `walk_threads`
// value (including 1) and every scheduling of blocks onto threads. This is
// what lets the serve layer mix cached, coalesced, and freshly computed
// responses, and lets `walk_threads` stay out of the result-cache config
// hash. Three mechanisms make it hold:
//
//   1. RNG substreams. Slices are split into blocks of at most kBlockWalks
//      walks; block b of slice s draws from root.Fork(s.stream).Fork(b), so
//      a block's walks do not depend on which thread runs it or when.
//   2. Fixed reduction grouping. Each block accumulates into a private
//      sparse workspace (dense array + touched list, the PushState
//      pattern), and block partial sums are folded into `scores` strictly
//      in block-index order. Floating-point addition is non-associative, so
//      the grouping — per-block partials, merged in order — is the
//      contract; kBlockWalks is therefore a constant, not a knob.
//   3. No atomics on the hot path. Workers only touch their own workspace;
//      the calling thread does the ordered merge as blocks retire (a
//      bounded reorder window provides backpressure so memory stays
//      proportional to walk_threads, not to the walk count).
//
// The walk loop itself samples the walk length geometrically (one uniform
// draw via inversion instead of a Bernoulli(alpha) draw per step — roughly
// half the RNG work) and prefetches the CSR row of each block's start node
// when the block is picked up.
//
// The time budget is checked once per block, i.e. every <= kBlockWalks
// walks, so a single high-residue node can overshoot the budget by at most
// one block of walks. Budget-truncated runs are the one case that is *not*
// reproducible (which blocks got dropped depends on wall-clock timing).
//
// An engine instance is NOT thread-safe: it owns per-thread workspaces that
// are reused across Run calls. Give each solver its own engine (the same
// one-instance-per-worker rule as the solvers themselves). Nested
// parallelism rule: code that already runs one solver per pool worker
// (QueryService, ParallelQueryMany) should keep walk_threads = 1 so a
// machine-sized worker pool is not multiplied by a machine-sized walk pool.
class WalkEngine {
 public:
  // Scheduling/budget granularity; see the determinism contract above for
  // why this is a constant.
  static constexpr std::uint64_t kBlockWalks = 4096;

  // walk_threads = 1 runs on the calling thread (no pool is created);
  // 0 means ThreadPool::DefaultThreads(). The pool is created lazily on the
  // first Run that has more than one block to schedule.
  explicit WalkEngine(std::size_t walk_threads = 1);
  ~WalkEngine();

  WalkEngine(const WalkEngine&) = delete;
  WalkEngine& operator=(const WalkEngine&) = delete;

  std::size_t walk_threads() const { return walk_threads_; }

  // Simulates every slice's walks and accumulates the deposits into
  // `scores` (sized num_nodes). `restart_node` is where kBackToSource
  // dangling walks jump. `time_budget_seconds` > 0 stops issuing blocks
  // once the budget is spent; a non-null `cancel` token is polled at every
  // block boundary and stops the run the same way (already-merged blocks
  // stay in `scores`, skipped mass is reported in the stats). Slice
  // weights must be positive.
  WalkEngineStats Run(const Graph& graph, const RwrConfig& config,
                      NodeId restart_node, const Rng& root,
                      std::span<const WalkSlice> slices,
                      std::vector<Score>& scores,
                      double time_budget_seconds = 0.0,
                      const CancellationToken* cancel = nullptr);

  // Per-worker sparse accumulator: dense score array + touched list, reset
  // in O(touched) and reused across blocks and Run calls. Public only so
  // the implementation's free functions can take it; not part of the API.
  struct Workspace {
    std::vector<Score> dense;
    std::vector<NodeId> touched;

    void EnsureSize(NodeId num_nodes) {
      if (dense.size() != num_nodes) {
        dense.assign(num_nodes, 0.0);
        touched.clear();
      }
    }
    // Valid for positive deposits only: a zero entry means "untouched".
    void Add(NodeId v, Score w) {
      if (dense[v] == 0.0) touched.push_back(v);
      dense[v] += w;
    }
    // Moves the partial sums out (in touch order) and resets.
    std::vector<std::pair<NodeId, Score>> Extract() {
      std::vector<std::pair<NodeId, Score>> out;
      out.reserve(touched.size());
      for (NodeId v : touched) {
        out.emplace_back(v, dense[v]);
        dense[v] = 0.0;
      }
      touched.clear();
      return out;
    }
    // Folds the partial sums into `scores` (in touch order) and resets.
    void DrainInto(std::vector<Score>& scores) {
      for (NodeId v : touched) {
        scores[v] += dense[v];
        dense[v] = 0.0;
      }
      touched.clear();
    }
  };

 private:
  Workspace& WorkspaceFor(std::size_t index, NodeId num_nodes);

  std::size_t walk_threads_;
  std::unique_ptr<ThreadPool> pool_;  // created lazily; walk_threads_ > 1
  std::vector<std::unique_ptr<Workspace>> workspaces_;
};

}  // namespace resacc

#endif  // RESACC_CORE_WALK_ENGINE_H_

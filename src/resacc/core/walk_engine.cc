#include "resacc/core/walk_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "resacc/core/random_walk.h"
#include "resacc/obs/metrics_registry.h"
#include "resacc/obs/trace.h"
#include "resacc/util/check.h"
#include "resacc/util/fault_injection.h"
#include "resacc/util/timer.h"

namespace resacc {
namespace {

// A scheduling unit: up to kBlockWalks walks of one slice. `ordinal` is the
// block's index within its slice and selects the second-level RNG fork.
struct Block {
  std::uint32_t slice = 0;
  std::uint64_t walks = 0;
  std::uint64_t ordinal = 0;
};

std::vector<Block> BuildBlocks(std::span<const WalkSlice> slices) {
  std::vector<Block> blocks;
  for (std::size_t i = 0; i < slices.size(); ++i) {
    const WalkSlice& slice = slices[i];
    RESACC_DCHECK(slice.weight > 0.0 || slice.num_walks == 0);
    std::uint64_t remaining = slice.num_walks;
    std::uint64_t ordinal = 0;
    while (remaining > 0) {
      const std::uint64_t walks =
          std::min<std::uint64_t>(remaining, WalkEngine::kBlockWalks);
      blocks.push_back(Block{static_cast<std::uint32_t>(i), walks, ordinal});
      remaining -= walks;
      ++ordinal;
    }
  }
  return blocks;
}

// Runs one block's walks into `workspace`. The rng is the block's private
// substream, so the result depends only on (graph, config, slice, ordinal).
void WalkBlock(const Graph& graph, const RwrConfig& config,
               NodeId restart_node, const WalkSlice& slice,
               std::uint64_t num_walks, double inv_log1m_alpha, Rng rng,
               WalkEngine::Workspace& workspace, WalkStats& stats) {
  graph.PrefetchOutRow(slice.start);
  for (std::uint64_t i = 0; i < num_walks; ++i) {
    const NodeId terminal = RandomWalkTerminalGeometric(
        graph, config, restart_node, slice.start, inv_log1m_alpha, rng,
        stats);
    workspace.Add(terminal, slice.weight);
  }
}

// Per-Run flush of engine totals into the process-wide registry: the hot
// loop never touches an atomic, so instrumentation stays within the <=2%
// overhead budget (ISSUE 3 acceptance; verified by bench_micro).
void FlushGlobalMetrics(const WalkEngineStats& stats) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static Counter& runs = registry.GetCounter(
      "resacc_walk_engine_runs_total", "",
      "WalkEngine::Run invocations (one per remedy phase).");
  static Counter& blocks = registry.GetCounter(
      "resacc_walk_engine_blocks_total", "",
      "Walk blocks scheduled (<= kBlockWalks walks each).");
  static Counter& walks = registry.GetCounter(
      "resacc_walk_engine_walks_total", "", "Random walks simulated.");
  static Counter& steps = registry.GetCounter(
      "resacc_walk_engine_steps_total", "", "Random-walk steps taken.");
  static Counter& stalls = registry.GetCounter(
      "resacc_walk_engine_reorder_stalls_total", "",
      "Worker waits because the ordered-merge reorder window was full.");
  static Counter& exhausted = registry.GetCounter(
      "resacc_walk_engine_budget_exhausted_total", "",
      "Runs truncated by the walk time budget.");
  static Counter& cancelled = registry.GetCounter(
      "resacc_walk_engine_cancelled_total", "",
      "Runs truncated by a cancellation token (deadline or Cancel).");
  runs.Increment();
  blocks.Increment(stats.blocks);
  walks.Increment(stats.walks);
  steps.Increment(stats.steps);
  stalls.Increment(stats.reorder_stalls);
  if (stats.budget_exhausted) exhausted.Increment();
  if (stats.cancelled) cancelled.Increment();
}

Score BlockMass(const Block& block, std::span<const WalkSlice> slices) {
  return static_cast<Score>(block.walks) * slices[block.slice].weight;
}

}  // namespace

WalkEngine::WalkEngine(std::size_t walk_threads)
    : walk_threads_(walk_threads > 0 ? walk_threads
                                     : ThreadPool::DefaultThreads()) {}

WalkEngine::~WalkEngine() = default;

WalkEngine::Workspace& WalkEngine::WorkspaceFor(std::size_t index,
                                                NodeId num_nodes) {
  while (workspaces_.size() <= index) {
    workspaces_.push_back(std::make_unique<Workspace>());
  }
  workspaces_[index]->EnsureSize(num_nodes);
  return *workspaces_[index];
}

WalkEngineStats WalkEngine::Run(const Graph& graph, const RwrConfig& config,
                                NodeId restart_node, const Rng& root,
                                std::span<const WalkSlice> slices,
                                std::vector<Score>& scores,
                                double time_budget_seconds,
                                const CancellationToken* cancel) {
  RESACC_CHECK(scores.size() == graph.num_nodes());
  RESACC_SPAN("walk_engine");
  WalkEngineStats stats;
  const std::vector<Block> blocks = BuildBlocks(slices);
  if (blocks.empty()) return stats;
  stats.blocks = blocks.size();

  Timer budget_timer;
  const double inv_log1m_alpha = InvLogOneMinusAlpha(config.alpha);
  auto block_rng = [&](const Block& block) {
    return root.Fork(slices[block.slice].stream).Fork(block.ordinal);
  };

  const std::size_t workers = std::min(walk_threads_, blocks.size());
  if (workers <= 1) {
    // Sequential path. Still per-block: the same RNG forks and the same
    // partial-sum grouping as the parallel path (DrainInto folds exactly
    // the per-block partials, in block order), so walk_threads = 1 is
    // bit-identical to walk_threads = N by construction.
    Workspace& workspace = WorkspaceFor(0, graph.num_nodes());
    WalkStats walk_stats;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      if (ShouldStop(cancel)) {
        stats.cancelled = true;
      } else if (time_budget_seconds > 0.0 &&
                 budget_timer.ElapsedSeconds() >= time_budget_seconds) {
        stats.budget_exhausted = true;
      }
      if (stats.cancelled || stats.budget_exhausted) {
        for (std::size_t r = b; r < blocks.size(); ++r) {
          stats.skipped_mass += BlockMass(blocks[r], slices);
        }
        break;
      }
      const Block& block = blocks[b];
      WalkBlock(graph, config, restart_node, slices[block.slice],
                block.walks, inv_log1m_alpha, block_rng(block), workspace,
                walk_stats);
      workspace.DrainInto(scores);
    }
    stats.walks = walk_stats.walks;
    stats.steps = walk_stats.steps;
    FlushGlobalMetrics(stats);
    return stats;
  }

  if (pool_ == nullptr || pool_->num_threads() < workers) {
    pool_ = std::make_unique<ThreadPool>(walk_threads_);
  }

  // Parallel path: workers pull block indices and publish per-block partial
  // sums; the calling thread folds them into `scores` strictly in block
  // order. The reorder window bounds how far workers may run ahead of the
  // merge frontier, keeping buffered partials O(workers), not O(blocks).
  struct BlockResult {
    std::vector<std::pair<NodeId, Score>> deposits;
    Score skipped = 0.0;  // mass this block would have deposited
    bool ready = false;
  };
  std::vector<BlockResult> results(blocks.size());
  std::vector<WalkStats> worker_stats(workers);

  std::mutex mutex;
  std::condition_variable window_open;  // merge frontier advanced
  std::condition_variable block_ready;  // a block published its result
  std::size_t next_block = 0;
  std::size_t merged = 0;
  std::uint64_t reorder_stalls = 0;
  const std::size_t window = std::max<std::size_t>(4 * workers, 16);
  std::atomic<bool> exhausted{false};
  std::atomic<bool> token_fired{false};

  for (std::size_t k = 0; k < workers; ++k) {
    Workspace* workspace = &WorkspaceFor(k, graph.num_nodes());
    WalkStats* local_stats = &worker_stats[k];
    pool_->Submit([&, workspace, local_stats] {
      for (;;) {
        std::size_t index;
        {
          std::unique_lock<std::mutex> lock(mutex);
          if (next_block < blocks.size() && next_block >= merged + window) {
            ++reorder_stalls;  // merge frontier is behind; worker must wait
          }
          window_open.wait(lock, [&] {
            return next_block >= blocks.size() ||
                   next_block < merged + window;
          });
          if (next_block >= blocks.size()) return;
          index = next_block++;
        }
        const Block& block = blocks[index];
        bool skip = exhausted.load(std::memory_order_relaxed) ||
                    token_fired.load(std::memory_order_relaxed);
        if (!skip && ShouldStop(cancel)) {
          token_fired.store(true, std::memory_order_relaxed);
          skip = true;
        }
        if (!skip && time_budget_seconds > 0.0 &&
            budget_timer.ElapsedSeconds() >= time_budget_seconds) {
          exhausted.store(true, std::memory_order_relaxed);
          skip = true;
        }
        Score skipped = 0.0;
        if (!skip) {
          const WalkSlice& slice = slices[block.slice];
          WalkBlock(graph, config, restart_node, slice, block.walks,
                    inv_log1m_alpha, block_rng(block), *workspace,
                    *local_stats);
          // Chaos site: delay publishing a finished block so merge-order
          // robustness (and reorder-window backpressure) gets exercised.
          // Must not change the deposits — determinism is the invariant
          // chaos_test asserts survives these stalls.
          if (RESACC_FAULT("walk_engine.block_stall")) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
          results[index].deposits = workspace->Extract();
        } else {
          skipped = BlockMass(block, slices);
        }
        {
          std::lock_guard<std::mutex> lock(mutex);
          results[index].skipped = skipped;
          results[index].ready = true;
        }
        block_ready.notify_one();
      }
    });
  }

  while (merged < blocks.size()) {
    std::vector<std::pair<NodeId, Score>> deposits;
    {
      std::unique_lock<std::mutex> lock(mutex);
      block_ready.wait(lock, [&] { return results[merged].ready; });
      deposits = std::move(results[merged].deposits);
      stats.skipped_mass += results[merged].skipped;
      ++merged;
    }
    window_open.notify_all();
    for (const auto& [v, w] : deposits) scores[v] += w;
  }
  pool_->Wait();

  for (const WalkStats& ws : worker_stats) {
    stats.walks += ws.walks;
    stats.steps += ws.steps;
  }
  stats.reorder_stalls = reorder_stalls;
  stats.budget_exhausted = exhausted.load(std::memory_order_relaxed);
  stats.cancelled = token_fired.load(std::memory_order_relaxed);
  FlushGlobalMetrics(stats);
  return stats;
}

}  // namespace resacc

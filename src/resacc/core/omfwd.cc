#include "resacc/core/omfwd.h"

#include <algorithm>

namespace resacc {

PushStats RunOmfwd(const Graph& graph, const RwrConfig& config, NodeId source,
                   Score r_max_f, std::vector<NodeId> frontier,
                   PushState& state, const CancellationToken* cancel,
                   const PushRoundHook* round_hook) {
  // Algorithm 4 line 1: decreasing order of (accumulated) residue, so the
  // largest masses flow first and downstream nodes aggregate them into
  // fewer pushes. The kMaxResidueFirst work list keeps that discipline for
  // the whole run, not just the seeds. Ties broken by id for determinism.
  std::sort(frontier.begin(), frontier.end(), [&state](NodeId a, NodeId b) {
    if (state.residue(a) != state.residue(b)) {
      return state.residue(a) > state.residue(b);
    }
    return a < b;
  });
  // FIFO after the sorted seeds: level-synchronous draining aggregates a
  // node's whole in-frontier before the node is popped — measured both
  // fewer pushes and ~2x less time than a strict max-residue heap (see
  // PushOrder).
  return RunForwardSearch(graph, config, source, r_max_f, frontier,
                          /*push_seeds_unconditionally=*/true, state,
                          PushOrder::kFifo, cancel, round_hook);
}

}  // namespace resacc

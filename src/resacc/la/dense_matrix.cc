#include "resacc/la/dense_matrix.h"

#include <cmath>
#include <utility>

namespace resacc {

DenseMatrix DenseMatrix::Identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

std::vector<double> DenseMatrix::MultiplyVector(
    const std::vector<double>& x) const {
  RESACC_CHECK(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = RowData(r);
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
  return y;
}

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  RESACC_CHECK(cols_ == other.rows());
  DenseMatrix out(rows_, other.cols());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = At(i, k);
      if (a == 0.0) continue;
      const double* other_row = other.RowData(k);
      double* out_row = out.RowData(i);
      for (std::size_t j = 0; j < other.cols(); ++j) {
        out_row[j] += a * other_row[j];
      }
    }
  }
  return out;
}

LuDecomposition::LuDecomposition(DenseMatrix matrix) : lu_(std::move(matrix)) {
  RESACC_CHECK(lu_.rows() == lu_.cols());
  const std::size_t n = lu_.rows();
  pivot_.resize(n);
  for (std::size_t i = 0; i < n; ++i) pivot_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: bring the largest |entry| in column k to the diagonal.
    std::size_t best = k;
    double best_abs = std::fabs(lu_.At(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double a = std::fabs(lu_.At(r, k));
      if (a > best_abs) {
        best = r;
        best_abs = a;
      }
    }
    if (best_abs < 1e-300) return;  // singular; ok_ stays false
    if (best != k) {
      std::swap(pivot_[k], pivot_[best]);
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_.At(k, c), lu_.At(best, c));
      }
    }
    const double diag = lu_.At(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_.At(r, k) / diag;
      lu_.At(r, k) = factor;
      if (factor == 0.0) continue;
      const double* row_k = lu_.RowData(k);
      double* row_r = lu_.RowData(r);
      for (std::size_t c = k + 1; c < n; ++c) row_r[c] -= factor * row_k[c];
    }
  }
  ok_ = true;
}

std::vector<double> LuDecomposition::Solve(const std::vector<double>& b) const {
  RESACC_CHECK(ok_);
  const std::size_t n = lu_.rows();
  RESACC_CHECK(b.size() == n);

  // Forward substitution on the permuted RHS (L has unit diagonal).
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[pivot_[i]];
    const double* row = lu_.RowData(i);
    for (std::size_t j = 0; j < i; ++j) sum -= row[j] * y[j];
    y[i] = sum;
  }
  // Back substitution with U.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    const double* row = lu_.RowData(i);
    for (std::size_t j = i + 1; j < n; ++j) sum -= row[j] * x[j];
    x[i] = sum / row[i];
  }
  return x;
}

DenseMatrix LuDecomposition::Inverse() const {
  RESACC_CHECK(ok_);
  const std::size_t n = lu_.rows();
  DenseMatrix inverse(n, n);
  std::vector<double> unit(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    unit[c] = 1.0;
    const std::vector<double> column = Solve(unit);
    unit[c] = 0.0;
    for (std::size_t r = 0; r < n; ++r) inverse.At(r, c) = column[r];
  }
  return inverse;
}

}  // namespace resacc

#ifndef RESACC_LA_DENSE_MATRIX_H_
#define RESACC_LA_DENSE_MATRIX_H_

#include <cstddef>
#include <vector>

#include "resacc/util/check.h"

namespace resacc {

// Row-major dense matrix. Substrate for the exact `Inverse` baseline
// (Section VI, matrix-based) and for BePI's hub-hub Schur complement.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static DenseMatrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& At(std::size_t r, std::size_t c) {
    RESACC_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double At(std::size_t r, std::size_t c) const {
    RESACC_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const double* RowData(std::size_t r) const { return &data_[r * cols_]; }
  double* RowData(std::size_t r) { return &data_[r * cols_]; }

  std::vector<double> MultiplyVector(const std::vector<double>& x) const;

  DenseMatrix Multiply(const DenseMatrix& other) const;

  std::size_t MemoryBytes() const { return data_.size() * sizeof(double); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// LU decomposition with partial pivoting (Doolittle). Factor once, solve
// many right-hand sides — exactly the shape of BePI's query phase.
class LuDecomposition {
 public:
  // Fails (ok()==false) on numerically singular input.
  explicit LuDecomposition(DenseMatrix matrix);

  bool ok() const { return ok_; }

  // Solves A x = b for the factored A. Requires ok().
  std::vector<double> Solve(const std::vector<double>& b) const;

  // Full inverse; O(n^3). Requires ok().
  DenseMatrix Inverse() const;

  std::size_t MemoryBytes() const { return lu_.MemoryBytes(); }

 private:
  DenseMatrix lu_;                  // combined L (unit diag) and U factors
  std::vector<std::size_t> pivot_;  // row permutation
  bool ok_ = false;
};

}  // namespace resacc

#endif  // RESACC_LA_DENSE_MATRIX_H_

#ifndef RESACC_LA_SPARSE_MATRIX_H_
#define RESACC_LA_SPARSE_MATRIX_H_

#include <cstddef>
#include <vector>

#include "resacc/graph/graph.h"
#include "resacc/util/types.h"

namespace resacc {

// CSR sparse matrix over doubles. Substrate for the matrix-form baselines
// (Power, TPA, BePI): y = A x, transposes, and sub-block extraction.
class SparseMatrix {
 public:
  SparseMatrix() = default;
  SparseMatrix(std::size_t rows, std::size_t cols,
               std::vector<std::size_t> offsets, std::vector<NodeId> columns,
               std::vector<double> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return columns_.size(); }

  // y = A x
  std::vector<double> MultiplyVector(const std::vector<double>& x) const;

  // y += scale * A x  (no allocation; y must have size rows()).
  void MultiplyVectorAccumulate(const std::vector<double>& x, double scale,
                                std::vector<double>& y) const;

  SparseMatrix Transpose() const;

  // Extracts the sub-block A[row_set, col_set] with renumbered indices.
  // index_of[v] must give v's position in the corresponding set, or
  // kInvalidNode when absent.
  SparseMatrix SubBlock(const std::vector<NodeId>& row_set,
                        const std::vector<NodeId>& index_of_col) const;

  std::size_t MemoryBytes() const {
    return offsets_.size() * sizeof(std::size_t) +
           columns_.size() * sizeof(NodeId) + values_.size() * sizeof(double);
  }

  // Row access for factorization-style algorithms.
  std::size_t RowBegin(std::size_t r) const { return offsets_[r]; }
  std::size_t RowEnd(std::size_t r) const { return offsets_[r + 1]; }
  NodeId ColumnAt(std::size_t idx) const { return columns_[idx]; }
  double ValueAt(std::size_t idx) const { return values_[idx]; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> offsets_;
  std::vector<NodeId> columns_;
  std::vector<double> values_;
};

// Row-stochastic-by-out-degree random-walk transition matrix P of the graph:
// P[u][v] = 1/d_out(u) for each edge (u,v). Dangling rows (d_out = 0) are
// left all-zero here; the RWR solvers apply the configured dangling policy
// explicitly so it stays consistent with the push/walk engines.
SparseMatrix TransitionMatrix(const Graph& graph);

// P^T directly (avoids materializing P first): column-stochastic form used
// by power iteration pi = alpha e_s + (1-alpha) P^T pi.
SparseMatrix TransitionMatrixTranspose(const Graph& graph);

}  // namespace resacc

#endif  // RESACC_LA_SPARSE_MATRIX_H_

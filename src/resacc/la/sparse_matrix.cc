#include "resacc/la/sparse_matrix.h"

#include <utility>

#include "resacc/util/check.h"

namespace resacc {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols,
                           std::vector<std::size_t> offsets,
                           std::vector<NodeId> columns,
                           std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      offsets_(std::move(offsets)),
      columns_(std::move(columns)),
      values_(std::move(values)) {
  RESACC_CHECK(offsets_.size() == rows_ + 1);
  RESACC_CHECK(offsets_.back() == columns_.size());
  RESACC_CHECK(columns_.size() == values_.size());
}

std::vector<double> SparseMatrix::MultiplyVector(
    const std::vector<double>& x) const {
  std::vector<double> y(rows_, 0.0);
  MultiplyVectorAccumulate(x, 1.0, y);
  return y;
}

void SparseMatrix::MultiplyVectorAccumulate(const std::vector<double>& x,
                                            double scale,
                                            std::vector<double>& y) const {
  RESACC_CHECK(x.size() == cols_);
  RESACC_CHECK(y.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t idx = offsets_[r]; idx < offsets_[r + 1]; ++idx) {
      sum += values_[idx] * x[columns_[idx]];
    }
    y[r] += scale * sum;
  }
}

SparseMatrix SparseMatrix::Transpose() const {
  std::vector<std::size_t> t_offsets(cols_ + 1, 0);
  for (NodeId c : columns_) ++t_offsets[c + 1];
  for (std::size_t i = 0; i < cols_; ++i) t_offsets[i + 1] += t_offsets[i];

  std::vector<NodeId> t_columns(nnz());
  std::vector<double> t_values(nnz());
  std::vector<std::size_t> cursor(t_offsets.begin(), t_offsets.end() - 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t idx = offsets_[r]; idx < offsets_[r + 1]; ++idx) {
      const std::size_t pos = cursor[columns_[idx]]++;
      t_columns[pos] = static_cast<NodeId>(r);
      t_values[pos] = values_[idx];
    }
  }
  return SparseMatrix(cols_, rows_, std::move(t_offsets), std::move(t_columns),
                      std::move(t_values));
}

SparseMatrix SparseMatrix::SubBlock(
    const std::vector<NodeId>& row_set,
    const std::vector<NodeId>& index_of_col) const {
  std::vector<std::size_t> b_offsets(row_set.size() + 1, 0);
  std::vector<NodeId> b_columns;
  std::vector<double> b_values;

  std::size_t new_cols = 0;
  for (NodeId mapped : index_of_col) {
    if (mapped != kInvalidNode) ++new_cols;
  }

  for (std::size_t i = 0; i < row_set.size(); ++i) {
    const NodeId r = row_set[i];
    RESACC_CHECK(r < rows_);
    for (std::size_t idx = offsets_[r]; idx < offsets_[r + 1]; ++idx) {
      const NodeId mapped = index_of_col[columns_[idx]];
      if (mapped == kInvalidNode) continue;
      b_columns.push_back(mapped);
      b_values.push_back(values_[idx]);
    }
    b_offsets[i + 1] = b_columns.size();
  }
  return SparseMatrix(row_set.size(), new_cols, std::move(b_offsets),
                      std::move(b_columns), std::move(b_values));
}

SparseMatrix TransitionMatrix(const Graph& graph) {
  const std::size_t n = graph.num_nodes();
  std::vector<std::size_t> offsets(n + 1, 0);
  std::vector<NodeId> columns;
  std::vector<double> values;
  columns.reserve(graph.num_edges());
  values.reserve(graph.num_edges());
  for (NodeId u = 0; u < n; ++u) {
    const auto neighbors = graph.OutNeighbors(u);
    const double inv_degree =
        neighbors.empty() ? 0.0 : 1.0 / static_cast<double>(neighbors.size());
    for (NodeId v : neighbors) {
      columns.push_back(v);
      values.push_back(inv_degree);
    }
    offsets[u + 1] = columns.size();
  }
  return SparseMatrix(n, n, std::move(offsets), std::move(columns),
                      std::move(values));
}

SparseMatrix TransitionMatrixTranspose(const Graph& graph) {
  const std::size_t n = graph.num_nodes();
  std::vector<std::size_t> offsets(n + 1, 0);
  std::vector<NodeId> columns;
  std::vector<double> values;
  columns.reserve(graph.num_edges());
  values.reserve(graph.num_edges());
  // Row v of P^T lists v's in-neighbours u with weight 1/d_out(u).
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u : graph.InNeighbors(v)) {
      columns.push_back(u);
      values.push_back(1.0 / static_cast<double>(graph.OutDegree(u)));
    }
    offsets[v + 1] = columns.size();
  }
  return SparseMatrix(n, n, std::move(offsets), std::move(columns),
                      std::move(values));
}

}  // namespace resacc

#ifndef RESACC_UTIL_CANCELLATION_H_
#define RESACC_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

#include "resacc/util/status.h"

namespace resacc {

// Cooperative cancellation/budget token shared between a request owner and
// the code computing its answer. The owner arms a deadline and/or calls
// Cancel() from any thread; the computation polls ShouldStop() at safe
// points (between solver phases, every push batch, every walk block) and
// unwinds with whatever partial result it can expose honestly.
//
// Copies share one underlying state (shared_ptr), so the serving layer can
// keep a handle for Cancel(request_id) while a worker thread carries
// another into the solver. All operations are thread-safe; the fast path
// of ShouldStop is one relaxed atomic load plus — only when a deadline is
// armed — one steady_clock read, cheap enough for once-per-block polling.
class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancellationToken() : state_(std::make_shared<State>()) {}

  // Token that fires `seconds_from_now` after construction (<= 0 never).
  static CancellationToken WithDeadline(double seconds_from_now) {
    CancellationToken token;
    if (seconds_from_now > 0.0) token.SetDeadlineAfter(seconds_from_now);
    return token;
  }

  void SetDeadlineAfter(double seconds_from_now) {
    SetDeadlineAt(Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(seconds_from_now)));
  }

  void SetDeadlineAt(Clock::time_point deadline) {
    state_->deadline_ticks.store(deadline.time_since_epoch().count(),
                                 std::memory_order_relaxed);
  }

  bool has_deadline() const {
    return state_->deadline_ticks.load(std::memory_order_relaxed) !=
           kNoDeadline;
  }

  // Requests cancellation. Idempotent; wins over a later deadline expiry
  // in StopStatus().
  void Cancel() { state_->cancelled.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    return state_->cancelled.load(std::memory_order_relaxed);
  }

  // True once the token has fired: explicitly cancelled, or the armed
  // deadline has passed.
  bool ShouldStop() const {
    if (state_->cancelled.load(std::memory_order_relaxed)) return true;
    const Clock::rep deadline =
        state_->deadline_ticks.load(std::memory_order_relaxed);
    if (deadline == kNoDeadline) return false;
    return Clock::now().time_since_epoch().count() >= deadline;
  }

  // Why the token fired: kCancelled for an explicit Cancel, otherwise
  // kDeadlineExceeded. Ok when the token has not fired.
  Status StopStatus() const {
    if (state_->cancelled.load(std::memory_order_relaxed)) {
      return Status::Cancelled("request cancelled");
    }
    if (ShouldStop()) {
      return Status::DeadlineExceeded("deadline exceeded during compute");
    }
    return Status::Ok();
  }

 private:
  static constexpr Clock::rep kNoDeadline =
      std::numeric_limits<Clock::rep>::max();

  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<Clock::rep> deadline_ticks{kNoDeadline};
  };

  std::shared_ptr<State> state_;
};

// Convenience for the nullable-pointer form threaded through the compute
// layers: a null token never stops.
inline bool ShouldStop(const CancellationToken* token) {
  return token != nullptr && token->ShouldStop();
}

}  // namespace resacc

#endif  // RESACC_UTIL_CANCELLATION_H_

#ifndef RESACC_UTIL_BOUNDED_QUEUE_H_
#define RESACC_UTIL_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "resacc/util/check.h"
#include "resacc/util/fault_injection.h"

namespace resacc {

// Bounded multi-producer multi-consumer FIFO. The serving layer uses it as
// the submission queue between request producers and solver workers:
// producers use the non-blocking TryPush so a full queue surfaces as an
// explicit backpressure signal instead of unbounded buffering; consumers
// block in Pop until work arrives or the queue is closed.
//
// Close() is the shutdown handshake: it rejects further pushes but lets
// consumers drain everything already queued (no silent drop), then Pop
// returns false.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    RESACC_CHECK(capacity >= 1);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Enqueues without blocking. Returns false if the queue is full or closed.
  bool TryPush(T item) {
    if (RESACC_FAULT("bounded_queue.try_push")) return false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until space is available; returns false if the queue is (or
  // becomes) closed before the item is accepted.
  bool Push(T item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_full_.wait(lock,
                     [this] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available (true) or the queue is closed and
  // fully drained (false).
  bool Pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Blocks up to `timeout` for an item: false on timeout or when the
  // queue is closed and drained. The serving layer's batch formation
  // lingers on this — a worker holding a partial batch waits out its
  // linger budget here instead of spinning on TryPop.
  template <typename Rep, typename Period>
  bool PopFor(T& out, const std::chrono::duration<Rep, Period>& timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [this] { return closed_ || !items_.empty(); })) {
      return false;
    }
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Non-blocking Pop; false when nothing is queued right now.
  bool TryPop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Rejects further pushes and wakes all waiters. Idempotent.
  void Close() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace resacc

#endif  // RESACC_UTIL_BOUNDED_QUEUE_H_

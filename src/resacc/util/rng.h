#ifndef RESACC_UTIL_RNG_H_
#define RESACC_UTIL_RNG_H_

#include <cstdint>

#include "resacc/util/check.h"

namespace resacc {

// SplitMix64: used to expand a single seed into xoshiro state and to derive
// independent per-query substreams deterministically.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256++ (Blackman & Vigna). Chosen over std::mt19937_64 because the
// random-walk engines draw billions of variates in the remedy phase and
// xoshiro is several times faster with excellent statistical quality.
// Header-only so the per-step draw inlines into the walk loop.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Reseed(seed); }

  void Reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  // Derives an independent generator for substream `stream`; used to make
  // per-source results independent of query order.
  Rng Fork(std::uint64_t stream) const {
    std::uint64_t mix = state_[0] ^ (stream * 0x9e3779b97f4a7c15ULL) ^
                        (state_[3] + stream);
    return Rng(mix);
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1) with 53 random mantissa bits.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound). Lemire's multiply-shift rejection method:
  // unbiased and avoids the modulo in the hot path.
  std::uint64_t NextBounded(std::uint64_t bound) {
    RESACC_DCHECK(bound > 0);
    unsigned __int128 product =
        static_cast<unsigned __int128>(Next()) * bound;
    std::uint64_t low = static_cast<std::uint64_t>(product);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        product = static_cast<unsigned __int128>(Next()) * bound;
        low = static_cast<std::uint64_t>(product);
      }
    }
    return static_cast<std::uint64_t>(product >> 64);
  }

  std::uint32_t NextBounded32(std::uint32_t bound) {
    return static_cast<std::uint32_t>(NextBounded(bound));
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace resacc

#endif  // RESACC_UTIL_RNG_H_

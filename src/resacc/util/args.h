#ifndef RESACC_UTIL_ARGS_H_
#define RESACC_UTIL_ARGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace resacc {

// Tiny command-line parser for the CLI tool: positionals plus
// `--key=value` / `--key value` / boolean `--flag` options. No external
// dependencies, no global state.
class ArgParser {
 public:
  ArgParser(int argc, char** argv);

  // Positional arguments (argv[0] excluded), in order.
  const std::vector<std::string>& positionals() const { return positionals_; }

  bool HasFlag(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  std::int64_t GetInt(const std::string& name,
                      std::int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;

  // Comma-separated integer list, e.g. --sources=1,2,3.
  std::vector<std::int64_t> GetIntList(const std::string& name) const;

  // Options that were passed but never read — for typo detection.
  std::vector<std::string> UnusedOptions() const;

 private:
  struct Option {
    std::string name;
    std::string value;
    bool has_value;
    mutable bool used = false;
  };
  const Option* Find(const std::string& name) const;

  std::vector<std::string> positionals_;
  std::vector<Option> options_;
};

}  // namespace resacc

#endif  // RESACC_UTIL_ARGS_H_

#ifndef RESACC_UTIL_FAIR_QUEUE_H_
#define RESACC_UTIL_FAIR_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <limits>
#include <mutex>
#include <utility>
#include <vector>

#include "resacc/util/check.h"
#include "resacc/util/fault_injection.h"

namespace resacc {

// Bounded multi-producer multi-consumer queue with weighted fair service
// across lanes — the serving layer's per-tenant QoS primitive. Producers
// push into a lane; consumers pop in start-time-fair-queueing order, so
// under saturation lane i receives service proportional to its weight and
// one tenant's burst cannot starve another (its backlog only consumes its
// own lane's capacity and its own weighted share of the workers).
//
// Scheduling (start-time fair queueing): every item is stamped at ENQUEUE
// with virtual tags
//   start  = max(virtual_time, lane.last_finish)
//   finish = start + 1 / lane.weight
// (lane.last_finish advances to `finish`), and every pop serves the lane
// whose head has the smallest finish tag, advancing virtual_time to the
// served item's start tag. Stamping at enqueue is what makes the schedule
// fair: a backlogged lane's tags are fixed the moment its items arrive,
// so a high-weight competitor can only run ahead until its own tags pass
// them — computing tags at pop time instead would re-anchor a waiting
// lane to the ever-advancing virtual time and starve it outright. Ties
// break toward the lowest lane index, so single-lane behavior is exactly
// FIFO. Items have unit cost — a query is a query; differential compute
// cost shows up as the worker being busy.
//
// An idle lane re-anchors at the current virtual time on its next push
// (last_finish has fallen behind), so it gets its fair share from now on
// rather than a catch-up burst for the service it never asked for.
//
// Capacity is per lane: `lane_capacity` items each, so backpressure is a
// per-tenant signal. With one lane (the default when no tenants are
// configured) the queue degenerates to BoundedQueue semantics: FIFO,
// capacity == lane_capacity.
//
// Close() follows BoundedQueue's shutdown handshake: further pushes are
// rejected, consumers drain everything already queued, then Pop returns
// false.
template <typename T>
class WeightedFairQueue {
 public:
  // `weights` may be empty (one lane, weight 1). Every weight must be
  // positive — a zero weight would starve its lane forever, which is a
  // configuration error, not a policy.
  WeightedFairQueue(std::size_t lane_capacity, std::vector<double> weights)
      : lane_capacity_(lane_capacity) {
    RESACC_CHECK(lane_capacity >= 1);
    if (weights.empty()) weights.push_back(1.0);
    lanes_.reserve(weights.size());
    for (double w : weights) {
      RESACC_CHECK(w > 0.0);
      lanes_.emplace_back();
      lanes_.back().weight = w;
    }
  }

  WeightedFairQueue(const WeightedFairQueue&) = delete;
  WeightedFairQueue& operator=(const WeightedFairQueue&) = delete;

  // Enqueues into `lane` without blocking. Returns false when that lane is
  // full or the queue is closed. Shares the bounded-queue fault site so
  // chaos runs inject rejections here exactly as they did pre-lanes.
  bool TryPush(T item, std::size_t lane = 0) {
    RESACC_CHECK(lane < lanes_.size());
    if (RESACC_FAULT("bounded_queue.try_push")) return false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      Lane& l = lanes_[lane];
      if (closed_ || l.items.size() >= lane_capacity_) {
        return false;
      }
      Tagged tagged;
      tagged.start = l.last_finish > virtual_time_ ? l.last_finish
                                                   : virtual_time_;
      tagged.finish = tagged.start + 1.0 / l.weight;
      l.last_finish = tagged.finish;
      tagged.value = std::move(item);
      l.items.push_back(std::move(tagged));
      ++size_;
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available (true) or the queue is closed and
  // fully drained (false). Service order across lanes is the weighted
  // schedule above.
  bool Pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || size_ > 0; });
    if (size_ == 0) return false;  // closed and drained
    PopLocked(out);
    return true;
  }

  // Blocks up to `timeout` for an item: false on timeout or when the queue
  // is closed and drained. Batch formation lingers on this.
  template <typename Rep, typename Period>
  bool PopFor(T& out, const std::chrono::duration<Rep, Period>& timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [this] { return closed_ || size_ > 0; })) {
      return false;
    }
    if (size_ == 0) return false;  // closed and drained
    PopLocked(out);
    return true;
  }

  // Moves a queued item into `lane` IF that earns it an earlier virtual
  // finish tag (and the lane has room) — the coalescing hook: when a
  // high-weight tenant's request piggybacks onto a job queued in a slower
  // lane, the job should be billed to (and scheduled as) the most urgent
  // tenant waiting on it, not the one that happened to submit it first.
  // Items are located by operator==; only instantiated when called, so
  // value types without equality can still use the rest of the queue.
  // Returns true when the item moved; false when it is not queued (in
  // flight or already popped), already scheduled at least as early, the
  // target lane is full, or the queue is closed.
  bool PromoteIfSooner(const T& item, std::size_t lane) {
    RESACC_CHECK(lane < lanes_.size());
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) return false;
    Lane& target = lanes_[lane];
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      Lane& source = lanes_[i];
      for (auto it = source.items.begin(); it != source.items.end(); ++it) {
        if (!(it->value == item)) continue;
        if (i == lane || target.items.size() >= lane_capacity_) return false;
        Tagged tagged;
        tagged.start = target.last_finish > virtual_time_ ? target.last_finish
                                                          : virtual_time_;
        tagged.finish = tagged.start + 1.0 / target.weight;
        if (tagged.finish >= it->finish) return false;
        tagged.value = std::move(it->value);
        target.last_finish = tagged.finish;
        source.items.erase(it);
        target.items.push_back(std::move(tagged));
        return true;
      }
    }
    return false;
  }

  // Non-blocking Pop; false when nothing is queued right now.
  bool TryPop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (size_ == 0) return false;
    PopLocked(out);
    return true;
  }

  // Rejects further pushes and wakes all waiters. Idempotent.
  void Close() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  bool closed() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return closed_;
  }

  // Total queued items across lanes.
  std::size_t size() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return size_;
  }

  std::size_t lane_size(std::size_t lane) const {
    RESACC_CHECK(lane < lanes_.size());
    std::unique_lock<std::mutex> lock(mutex_);
    return lanes_[lane].items.size();
  }

  // Total capacity (lane_capacity per lane).
  std::size_t capacity() const { return lane_capacity_ * lanes_.size(); }
  std::size_t lane_capacity() const { return lane_capacity_; }
  std::size_t num_lanes() const { return lanes_.size(); }

 private:
  // An enqueued item with its virtual start/finish tags, stamped at push.
  struct Tagged {
    double start = 0.0;
    double finish = 0.0;
    T value{};
  };

  struct Lane {
    double weight = 1.0;
    // Virtual finish tag of the last item ENQUEUED into this lane (the
    // stamping cursor, not a service record).
    double last_finish = 0.0;
    std::deque<Tagged> items;
  };

  void PopLocked(T& out) {
    std::size_t best = lanes_.size();
    double best_finish = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      const Lane& lane = lanes_[i];
      if (lane.items.empty()) continue;
      if (lane.items.front().finish < best_finish) {
        best_finish = lane.items.front().finish;
        best = i;
      }
    }
    RESACC_CHECK(best < lanes_.size());
    Lane& lane = lanes_[best];
    Tagged& head = lane.items.front();
    if (head.start > virtual_time_) virtual_time_ = head.start;
    out = std::move(head.value);
    lane.items.pop_front();
    --size_;
  }

  const std::size_t lane_capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::vector<Lane> lanes_;
  std::size_t size_ = 0;
  double virtual_time_ = 0.0;
  bool closed_ = false;
};

}  // namespace resacc

#endif  // RESACC_UTIL_FAIR_QUEUE_H_

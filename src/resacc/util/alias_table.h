#ifndef RESACC_UTIL_ALIAS_TABLE_H_
#define RESACC_UTIL_ALIAS_TABLE_H_

#include <cstddef>
#include <vector>

#include "resacc/util/rng.h"

namespace resacc {

// Walker's alias method: O(n) construction, O(1) sampling from a discrete
// distribution. Used by the Chung-Lu graph generator (endpoint sampling
// proportional to target degrees) and by TPA's PageRank-weighted tail.
class AliasTable {
 public:
  // `weights` must be non-negative with a positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  std::size_t size() const { return probability_.size(); }

  std::size_t Sample(Rng& rng) const {
    const std::size_t slot = rng.NextBounded(probability_.size());
    return rng.NextDouble() < probability_[slot] ? slot : alias_[slot];
  }

 private:
  std::vector<double> probability_;
  std::vector<std::size_t> alias_;
};

}  // namespace resacc

#endif  // RESACC_UTIL_ALIAS_TABLE_H_

#ifndef RESACC_UTIL_THREAD_POOL_H_
#define RESACC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace resacc {

// Minimal fixed-size thread pool. The library's algorithms are
// single-threaded per query (as in the paper's measurements); the pool
// exists to parallelize *across* queries — MSRWR with one solver instance
// per worker (see core/parallel_msrwr.h) and bulk experiment pipelines.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  // Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  // A sensible default: hardware concurrency, at least 1.
  static std::size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

// Runs fn(i) for i in [0, count) across the pool and waits.
void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& fn);

}  // namespace resacc

#endif  // RESACC_UTIL_THREAD_POOL_H_

#include "resacc/util/args.h"

#include <cstdlib>

namespace resacc {

ArgParser::ArgParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') {
      positionals_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      options_.push_back({body.substr(0, eq), body.substr(eq + 1), true});
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      options_.push_back({body, argv[i + 1], true});
      ++i;
    } else {
      options_.push_back({body, "", false});
    }
  }
}

const ArgParser::Option* ArgParser::Find(const std::string& name) const {
  for (const Option& option : options_) {
    if (option.name == name) {
      option.used = true;
      return &option;
    }
  }
  return nullptr;
}

bool ArgParser::HasFlag(const std::string& name) const {
  return Find(name) != nullptr;
}

std::string ArgParser::GetString(const std::string& name,
                                 const std::string& default_value) const {
  const Option* option = Find(name);
  return (option != nullptr && option->has_value) ? option->value
                                                  : default_value;
}

std::int64_t ArgParser::GetInt(const std::string& name,
                               std::int64_t default_value) const {
  const Option* option = Find(name);
  if (option == nullptr || !option->has_value) return default_value;
  char* end = nullptr;
  const long long parsed = std::strtoll(option->value.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : default_value;
}

double ArgParser::GetDouble(const std::string& name,
                            double default_value) const {
  const Option* option = Find(name);
  if (option == nullptr || !option->has_value) return default_value;
  char* end = nullptr;
  const double parsed = std::strtod(option->value.c_str(), &end);
  return (end != nullptr && *end == '\0') ? parsed : default_value;
}

std::vector<std::int64_t> ArgParser::GetIntList(
    const std::string& name) const {
  std::vector<std::int64_t> values;
  const Option* option = Find(name);
  if (option == nullptr || !option->has_value) return values;
  std::size_t start = 0;
  const std::string& text = option->value;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string token =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!token.empty()) values.push_back(std::strtoll(token.c_str(), nullptr, 10));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

std::vector<std::string> ArgParser::UnusedOptions() const {
  std::vector<std::string> unused;
  for (const Option& option : options_) {
    if (!option.used) unused.push_back(option.name);
  }
  return unused;
}

}  // namespace resacc

#ifndef RESACC_UTIL_LOGGING_H_
#define RESACC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace resacc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global threshold; messages below it are dropped. Default kInfo;
// RESACC_LOG_LEVEL=debug|info|warning|error overrides at process start.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

// Streams a single log record and emits it (with timestamp and level tag)
// to stderr on destruction. Used via the RESACC_LOG macro only.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace resacc

#define RESACC_LOG(level)                                               \
  if (::resacc::LogLevel::k##level < ::resacc::GetLogLevel()) {         \
  } else                                                                \
    ::resacc::internal_logging::LogMessage(::resacc::LogLevel::k##level, \
                                           __FILE__, __LINE__)          \
        .stream()

#endif  // RESACC_UTIL_LOGGING_H_

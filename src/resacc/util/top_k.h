#ifndef RESACC_UTIL_TOP_K_H_
#define RESACC_UTIL_TOP_K_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "resacc/util/types.h"

namespace resacc {

// Returns the indices of the k largest entries of `scores`, ordered by
// descending score (ties broken by ascending index so results are
// deterministic). Used by the accuracy metrics (error of the k-th largest
// RWR value, NDCG@k) and the top-K query surface.
inline std::vector<NodeId> TopKIndices(const std::vector<Score>& scores,
                                       std::size_t k) {
  k = std::min(k, scores.size());
  std::vector<NodeId> idx(scores.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    idx[i] = static_cast<NodeId>(i);
  }
  auto better = [&scores](NodeId a, NodeId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  };
  if (k < idx.size()) {
    std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(k),
                      idx.end(), better);
    idx.resize(k);
  } else {
    std::sort(idx.begin(), idx.end(), better);
  }
  return idx;
}

// (node, score) pairs of the k largest entries, descending.
inline std::vector<std::pair<NodeId, Score>> TopKPairs(
    const std::vector<Score>& scores, std::size_t k) {
  std::vector<NodeId> idx = TopKIndices(scores, k);
  std::vector<std::pair<NodeId, Score>> out;
  out.reserve(idx.size());
  for (NodeId node : idx) out.emplace_back(node, scores[node]);
  return out;
}

}  // namespace resacc

#endif  // RESACC_UTIL_TOP_K_H_

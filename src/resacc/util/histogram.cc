#include "resacc/util/histogram.h"

#include <cmath>
#include <cstdio>

namespace resacc {
namespace {

// compare_exchange loops instead of std::atomic<double>::fetch_add /
// fetch_max so the histogram only requires C++17-era atomics from the
// standard library.
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (current < value &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t LatencyHistogram::BucketIndex(double seconds) {
  if (!(seconds > kMinValue)) return 0;
  if (seconds >= kMaxValue) return kNumBuckets - 1;
  // log-spaced: bucket 0 is the underflow bucket, the last the overflow
  // bucket, and the kNumBuckets - 2 in between split [min, max) evenly in
  // log space.
  const double decades = std::log(seconds / kMinValue) /
                         std::log(kMaxValue / kMinValue);
  const auto idx = static_cast<std::size_t>(
      decades * static_cast<double>(kNumBuckets - 2));
  return 1 + (idx < kNumBuckets - 2 ? idx : kNumBuckets - 3);
}

double LatencyHistogram::BucketUpperBound(std::size_t i) {
  if (i == 0) return kMinValue;
  if (i >= kNumBuckets - 1) return kMaxValue;
  const double fraction = static_cast<double>(i) /
                          static_cast<double>(kNumBuckets - 2);
  return kMinValue * std::pow(kMaxValue / kMinValue, fraction);
}

void LatencyHistogram::Record(double seconds) {
  buckets_[BucketIndex(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, seconds > 0.0 ? seconds : 0.0);
  AtomicMax(max_, seconds);
}

double LatencyHistogram::Quantile(double q) const {
  std::uint64_t total = 0;
  std::array<std::uint64_t, kNumBuckets> counts;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    running += counts[i];
    if (static_cast<double>(running) >= target && counts[i] > 0) {
      return BucketUpperBound(i);
    }
  }
  return BucketUpperBound(kNumBuckets - 1);
}

LatencyHistogram::Snapshot LatencyHistogram::TakeSnapshot() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  if (snap.count > 0) {
    snap.mean = sum_.load(std::memory_order_relaxed) /
                static_cast<double>(snap.count);
  }
  snap.max = max_.load(std::memory_order_relaxed);
  snap.p50 = Quantile(0.50);
  snap.p95 = Quantile(0.95);
  snap.p99 = Quantile(0.99);
  snap.p999 = Quantile(0.999);
  return snap;
}

void LatencyHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

std::string LatencyHistogram::Snapshot::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3fms p50/p95/p99=%.3f/%.3f/%.3fms max=%.3fms",
                static_cast<unsigned long long>(count), mean * 1e3, p50 * 1e3,
                p95 * 1e3, p99 * 1e3, max * 1e3);
  return buf;
}

}  // namespace resacc

#ifndef RESACC_UTIL_STATUS_H_
#define RESACC_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "resacc/util/check.h"

namespace resacc {

// Error codes for fallible public APIs (file IO, configuration validation,
// index construction under a memory budget). The library does not use
// exceptions across API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,  // e.g. index exceeds the configured memory budget
  kFailedPrecondition,
  kInternal,
  kDeadlineExceeded,  // serving: request expired while queued or mid-compute
  kCancelled,         // serving: request cancelled via Cancel(request_id)
  kAlreadyExists,     // dynamic graphs: AddEdge of an edge already present
};

// A success-or-error result, modelled after absl::Status but minimal.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" rendering for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Value-or-error. `value()` aborts if the status is not OK; check `ok()`
// (or use `status()`) first on fallible paths.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    RESACC_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }
  StatusOr(T value)  // NOLINT
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    RESACC_CHECK_MSG(ok(), status_.ToString().c_str());
    return value_;
  }
  T& value() & {
    RESACC_CHECK_MSG(ok(), status_.ToString().c_str());
    return value_;
  }
  T&& value() && {
    RESACC_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

// Propagates a non-OK status to the caller.
#define RESACC_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::resacc::Status _resacc_status = (expr);     \
    if (!_resacc_status.ok()) return _resacc_status; \
  } while (0)

}  // namespace resacc

#endif  // RESACC_UTIL_STATUS_H_

#include "resacc/util/thread_pool.h"

#include "resacc/util/check.h"

namespace resacc {

ThreadPool::ThreadPool(std::size_t num_threads) {
  RESACC_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    RESACC_CHECK_MSG(!shutting_down_, "Submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

std::size_t ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // One task per worker over a contiguous index range, not one task per
  // index: fine-grained loops (count >> threads) would otherwise serialize
  // on the queue mutex and pay one lock round-trip per element. Callers
  // with count <= num_threads (e.g. parallel_msrwr's stripes) still get
  // exactly one task per index.
  const std::size_t num_tasks = std::min(count, pool.num_threads());
  const std::size_t base = count / num_tasks;
  const std::size_t remainder = count % num_tasks;
  std::size_t begin = 0;
  for (std::size_t t = 0; t < num_tasks; ++t) {
    const std::size_t end = begin + base + (t < remainder ? 1 : 0);
    pool.Submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
    begin = end;
  }
  pool.Wait();
}

}  // namespace resacc

#include "resacc/util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace resacc {
namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("RESACC_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warning") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<int>& LevelStorage() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(LevelStorage().load()); }

void SetLogLevel(LogLevel level) {
  LevelStorage().store(static_cast<int>(level));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << (base != nullptr ? base + 1 : file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::time_t now = std::time(nullptr);
  std::tm tm_buf;
  localtime_r(&now, &tm_buf);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%H:%M:%S", &tm_buf);
  std::fprintf(stderr, "%s %s %s\n", LevelTag(level_), ts,
               stream_.str().c_str());
}

}  // namespace internal_logging
}  // namespace resacc

#ifndef RESACC_UTIL_TYPES_H_
#define RESACC_UTIL_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace resacc {

// Node identifier. 32 bits covers every graph this library targets
// (the paper's largest dataset, Friendster, has 65.7M nodes) while keeping
// adjacency arrays compact, which matters for push-based traversals.
using NodeId = std::uint32_t;

// Edge index into the CSR arrays. 64 bits: edge counts exceed 2^32 on
// billion-edge graphs.
using EdgeId = std::uint64_t;

// All probabilities / RWR scores / residues are double; the algorithms
// multiply many (1 - alpha) factors together and float would underflow
// meaningful residues around 1e-38 (the paper sweeps r_max^hop to 1e-14).
using Score = double;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

}  // namespace resacc

#endif  // RESACC_UTIL_TYPES_H_

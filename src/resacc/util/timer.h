#ifndef RESACC_UTIL_TIMER_H_
#define RESACC_UTIL_TIMER_H_

#include <chrono>

namespace resacc {

// Wall-clock stopwatch. The paper reports wall-clock query seconds; every
// bench and the per-phase breakdown (Table VII) use this.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace resacc

#endif  // RESACC_UTIL_TIMER_H_

#include "resacc/util/alias_table.h"

#include "resacc/util/check.h"

namespace resacc {

AliasTable::AliasTable(const std::vector<double>& weights) {
  RESACC_CHECK(!weights.empty());
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    RESACC_CHECK(w >= 0.0);
    total += w;
  }
  RESACC_CHECK(total > 0.0);

  probability_.assign(n, 1.0);
  alias_.assign(n, 0);

  // Scaled weights sum to n; "small" buckets (< 1) are topped up by "large"
  // ones, the standard two-stack construction.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are 1.0 up to rounding; their alias is never taken.
  for (std::size_t i : small) probability_[i] = 1.0;
  for (std::size_t i : large) probability_[i] = 1.0;
}

}  // namespace resacc

#ifndef RESACC_UTIL_FAULT_INJECTION_H_
#define RESACC_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>

namespace resacc {

// Deterministic fault-injection framework for chaos testing.
//
// Production code marks sites with RESACC_FAULT("dotted.site.name") and
// takes the failure branch when it returns true: a queue push reports
// full, a cache lookup misses, a walk worker stalls. Whether the k-th hit
// of a site fails is a pure function of (seed, site name, k) — computed as
// SplitMix64(seed ^ fnv1a(site) ^ k) mapped against the site's failure
// probability — so a failing chaos run replays exactly under the same
// seed, regardless of thread interleaving of *other* sites (each site
// counts its own hits).
//
// Disarmed (the default), a site costs one relaxed atomic load; the
// framework only arms when a test calls Arm()/ArmSite() or the process
// starts with RESACC_FAULTS=1 in the environment (probability
// RESACC_FAULT_PROB, default 0.05; seed RESACC_FAULT_SEED, default 1).
// Defining RESACC_NO_FAULT_INJECTION at compile time removes the sites
// entirely for builds that must not carry even the load.
class FaultInjection {
 public:
  // Arms every site with the same failure probability. Resets counters.
  static void Arm(std::uint64_t seed, double probability);

  // Overrides the probability for one site (arming the framework if it
  // was disarmed). probability 0 makes the site never fail.
  static void ArmSite(const char* site, double probability);

  // Disarms everything and clears per-site state.
  static void Disarm();

  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Decides the current hit of `site` (advancing its hit counter).
  // Always false when disarmed. Prefer the RESACC_FAULT macro.
  static bool ShouldFail(const char* site);

  // Per-site counters since the last Arm/Disarm, for test assertions.
  static std::uint64_t Hits(const char* site);
  static std::uint64_t Failures(const char* site);

  // Applies the RESACC_FAULTS / RESACC_FAULT_PROB / RESACC_FAULT_SEED
  // environment knobs. Called once automatically before main(); public
  // so tests can re-apply after mutating the environment.
  static void InitFromEnv();

 private:
  static std::atomic<bool> enabled_;
};

}  // namespace resacc

// Marks a fault-injection site. Evaluates to true when the site should
// take its failure branch this time.
#ifdef RESACC_NO_FAULT_INJECTION
#define RESACC_FAULT(site) false
#else
#define RESACC_FAULT(site)                    \
  (::resacc::FaultInjection::enabled() &&     \
   ::resacc::FaultInjection::ShouldFail(site))
#endif

#endif  // RESACC_UTIL_FAULT_INJECTION_H_

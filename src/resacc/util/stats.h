#ifndef RESACC_UTIL_STATS_H_
#define RESACC_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace resacc {

// Five-number summary plus mean/stddev over a sample, matching the paper's
// "boxplot" (min, Q1, median, Q3, max — Figs. 7-8) and "error-bar"
// (mean +/- stddev — Figs. 9-10) visualizations.
struct SampleSummary {
  std::size_t count = 0;
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)

  // One-line "min/Q1/med/Q3/max mean+/-sd" rendering for bench tables.
  std::string ToString() const;
};

// Computes the summary; quantiles use linear interpolation between order
// statistics (type-7, the numpy/R default). Empty input yields all zeros.
SampleSummary Summarize(std::vector<double> values);

// Quantile q in [0,1] of `sorted` (must be ascending, non-empty).
double QuantileSorted(const std::vector<double>& sorted, double q);

// Streaming mean/variance (Welford). Used where materializing the sample
// would be wasteful, e.g. per-walk statistics.
class RunningStat {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace resacc

#endif  // RESACC_UTIL_STATS_H_

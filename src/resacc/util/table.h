#ifndef RESACC_UTIL_TABLE_H_
#define RESACC_UTIL_TABLE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace resacc {

// Fixed-width text table used by every bench binary to print the paper's
// tables/figure series in a uniform, diff-friendly format.
//
//   TextTable t({"Dataset", "FORA", "ResAcc"});
//   t.AddRow({"dblp-sim", Fmt(1.09), Fmt(0.51)});
//   t.Print(stdout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  void Print(std::FILE* out) const;
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double compactly: scientific for very small/large magnitudes,
// fixed otherwise. `o.o.t.` / `o.o.m.` cells are produced by the callers.
std::string Fmt(double value, int precision = 4);

// Seconds with unit-appropriate precision (e.g. "0.513 s", "12.3 ms").
std::string FmtSeconds(double seconds);

// Bytes rendered as B / KB / MB / GB.
std::string FmtBytes(double bytes);

}  // namespace resacc

#endif  // RESACC_UTIL_TABLE_H_

#include "resacc/util/table.h"

#include <cmath>
#include <cstdio>

#include "resacc/util/check.h"

namespace resacc {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  RESACC_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> cells) {
  RESACC_CHECK_MSG(cells.size() == header_.size(),
                   "row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto append_row = [&](std::string& out, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
      out += (c + 1 == row.size()) ? "\n" : "  ";
    }
  };

  std::string out;
  append_row(out, header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : 0, '-');
  out += "\n";
  for (const auto& row : rows_) append_row(out, row);
  return out;
}

void TextTable::Print(std::FILE* out) const {
  const std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), out);
}

std::string Fmt(double value, int precision) {
  char buf[64];
  const double mag = std::fabs(value);
  if (value != 0.0 && (mag < 1e-3 || mag >= 1e7)) {
    std::snprintf(buf, sizeof(buf), "%.*e", precision - 1, value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*g", precision + 2, value);
  }
  return buf;
}

std::string FmtSeconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  }
  return buf;
}

std::string FmtBytes(double bytes) {
  char buf[64];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

}  // namespace resacc

#ifndef RESACC_UTIL_HISTOGRAM_H_
#define RESACC_UTIL_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace resacc {

// Lock-free streaming latency histogram with geometric buckets, built for
// the serving layer's p50/p95/p99 reporting: Record() is a single relaxed
// atomic increment, so worker threads can record every query without
// contending on a mutex, unlike materializing samples for Summarize()
// (stats.h), which is the right tool for offline benches only.
//
// Buckets cover [1 microsecond, ~1000 seconds] with ~7% relative width;
// quantiles are read from the bucket boundaries, so a reported p99 is
// within one bucket width of the exact order statistic.
class LatencyHistogram {
 public:
  // Cumulative view of everything recorded so far. Taken atomically enough
  // for monitoring: counts are summed bucket-by-bucket while writers may
  // proceed, so a snapshot can be mid-update but never corrupt.
  struct Snapshot {
    std::uint64_t count = 0;
    double mean = 0.0;  // seconds
    double max = 0.0;   // seconds
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    // Tail quantile for workload-harness regression gates; only
    // meaningful once count is well past 1000 (below that it equals the
    // max's bucket).
    double p999 = 0.0;

    // "n=... mean=... p50/p95/p99=.../.../... max=..." with ms units.
    std::string ToString() const;
  };

  LatencyHistogram() = default;

  // Thread-safe; seconds <= 0 land in the underflow bucket.
  void Record(double seconds);

  Snapshot TakeSnapshot() const;

  // Quantile q in [0, 1] of the recorded distribution (bucket-resolution).
  double Quantile(double q) const;

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  // Forgets all recorded values. Not atomic w.r.t. concurrent Record().
  void Reset();

 private:
  // 256 buckets spanning 9 decades: growth factor 1e9^(1/254) ~= 1.085.
  static constexpr std::size_t kNumBuckets = 256;
  static constexpr double kMinValue = 1e-6;   // 1 us
  static constexpr double kMaxValue = 1e3;    // 1000 s

  static std::size_t BucketIndex(double seconds);
  // Upper bound of bucket `i`, the value reported for quantiles landing in
  // it (conservative: never under-reports a latency by more than a bucket).
  static double BucketUpperBound(std::size_t i);

  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

}  // namespace resacc

#endif  // RESACC_UTIL_HISTOGRAM_H_

#include "resacc/util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "resacc/util/check.h"

namespace resacc {

double QuantileSorted(const std::vector<double>& sorted, double q) {
  RESACC_CHECK(!sorted.empty());
  RESACC_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

SampleSummary Summarize(std::vector<double> values) {
  SampleSummary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  s.q1 = QuantileSorted(values, 0.25);
  s.median = QuantileSorted(values, 0.50);
  s.q3 = QuantileSorted(values, 0.75);
  RunningStat rs;
  for (double v : values) rs.Add(v);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  return s;
}

std::string SampleSummary::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%.4g/%.4g/%.4g/%.4g/%.4g mean=%.4g sd=%.4g", min, q1, median,
                q3, max, mean, stddev);
  return buf;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace resacc

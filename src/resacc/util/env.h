#ifndef RESACC_UTIL_ENV_H_
#define RESACC_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace resacc {

// Environment-variable knobs for the bench harness (so `bench/*` binaries
// stay fast by default but can be scaled up without a rebuild):
//   RESACC_SCALE    multiplies synthetic dataset sizes (default 1.0)
//   RESACC_SOURCES  number of query sources per experiment
//   RESACC_SEED     master seed for everything

double GetEnvDouble(const char* name, double default_value);
std::int64_t GetEnvInt(const char* name, std::int64_t default_value);
std::string GetEnvString(const char* name, const std::string& default_value);

}  // namespace resacc

#endif  // RESACC_UTIL_ENV_H_

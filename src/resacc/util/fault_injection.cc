#include "resacc/util/fault_injection.h"

#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>

#include "resacc/util/env.h"

namespace resacc {
namespace {

// 64-bit FNV-1a over the site name: stable across platforms so a chaos
// seed reproduces the same fault schedule everywhere.
std::uint64_t HashSite(const char* site) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = site; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct SiteState {
  double probability = 0.0;
  std::uint64_t hits = 0;
  std::uint64_t failures = 0;
};

struct Registry {
  std::mutex mutex;
  std::uint64_t seed = 1;
  double default_probability = 0.0;
  std::unordered_map<std::string, SiteState> sites;
};

// Leaked so sites hit during static destruction stay safe.
Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// Runs InitFromEnv before main() so RESACC_FAULTS=1 arms spawned tools
// (loadgen --chaos relies on this) without any code change.
const bool kEnvInitDone = [] {
  FaultInjection::InitFromEnv();
  return true;
}();

}  // namespace

std::atomic<bool> FaultInjection::enabled_{false};

void FaultInjection::Arm(std::uint64_t seed, double probability) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.seed = seed;
  registry.default_probability = probability;
  registry.sites.clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjection::ArmSite(const char* site, double probability) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  SiteState& state = registry.sites[site];
  state.probability = probability;
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjection::Disarm() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  enabled_.store(false, std::memory_order_relaxed);
  registry.default_probability = 0.0;
  registry.sites.clear();
}

bool FaultInjection::ShouldFail(const char* site) {
  if (!enabled()) return false;
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto [it, inserted] = registry.sites.try_emplace(site);
  SiteState& state = it->second;
  if (inserted) state.probability = registry.default_probability;
  const std::uint64_t hit = state.hits++;
  if (state.probability <= 0.0) return false;
  const std::uint64_t draw =
      SplitMix64(registry.seed ^ HashSite(site) ^ hit);
  // draw / 2^64 < probability, computed without floating the 64-bit draw.
  const bool fail =
      state.probability >= 1.0 ||
      draw < static_cast<std::uint64_t>(
                 state.probability *
                 18446744073709551616.0 /* 2^64 */);
  if (fail) ++state.failures;
  return fail;
}

std::uint64_t FaultInjection::Hits(const char* site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjection::Failures(const char* site) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.failures;
}

void FaultInjection::InitFromEnv() {
  // Unset = leave the current state alone (so re-applying after a test
  // armed programmatically is a no-op); an explicit value arms on 1 and
  // disarms on anything else.
  const std::string armed = GetEnvString("RESACC_FAULTS", "");
  if (armed.empty()) return;
  if (armed != "1") {
    Disarm();
    return;
  }
  Arm(static_cast<std::uint64_t>(GetEnvInt("RESACC_FAULT_SEED", 1)),
      GetEnvDouble("RESACC_FAULT_PROB", 0.05));
}

}  // namespace resacc

#ifndef RESACC_UTIL_CHECK_H_
#define RESACC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Internal invariant checks. These fire in all build types: the algorithms
// in this library are cheap relative to a silent correctness bug in a
// probability computation, and the checks sit outside hot inner loops.
//
// Use RESACC_DCHECK for hot-loop assertions compiled out of release builds.

#define RESACC_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "RESACC_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define RESACC_CHECK_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "RESACC_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, (msg));                       \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define RESACC_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define RESACC_DCHECK(cond) RESACC_CHECK(cond)
#endif

#endif  // RESACC_UTIL_CHECK_H_

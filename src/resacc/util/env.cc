#include "resacc/util/env.h"

#include <cstdlib>

namespace resacc {

double GetEnvDouble(const char* name, double default_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return default_value;
  char* end = nullptr;
  const double parsed = std::strtod(env, &end);
  return (end != nullptr && *end == '\0') ? parsed : default_value;
}

std::int64_t GetEnvInt(const char* name, std::int64_t default_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return default_value;
  char* end = nullptr;
  const long long parsed = std::strtoll(env, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : default_value;
}

std::string GetEnvString(const char* name, const std::string& default_value) {
  const char* env = std::getenv(name);
  return (env != nullptr && *env != '\0') ? std::string(env) : default_value;
}

}  // namespace resacc

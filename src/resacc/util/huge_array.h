#ifndef RESACC_UTIL_HUGE_ARRAY_H_
#define RESACC_UTIL_HUGE_ARRAY_H_

#include <cstdlib>
#include <cstring>
#include <type_traits>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "resacc/util/check.h"

namespace resacc {

// Flat numeric array aligned to the 2 MiB huge-page size and advised onto
// transparent huge pages (MADV_HUGEPAGE) where the kernel supports it.
//
// The batched solver's structure-of-arrays panels are tens of megabytes and
// are accessed row-at-a-time at near-random node order, so with 4 KiB pages
// almost every row fetch also pays a TLB walk (a 25 MiB panel spans ~6400
// pages — far beyond the second-level TLB). Huge pages cover the same panel
// with ~13 entries, and the 2 MiB base alignment keeps every power-of-two
// lane row inside the minimum number of cache lines.
//
// Resize zero-fills (all-zero bits are exactly +0.0 for floating point).
template <typename T>
class HugeArray {
  static_assert(std::is_trivial_v<T>,
                "HugeArray memset-initializes; T must be trivial");

 public:
  HugeArray() = default;

  void Resize(std::size_t count) {
    if (count > capacity_) {
      static constexpr std::size_t kHugePage = std::size_t{2} << 20;
      const std::size_t bytes =
          (count * sizeof(T) + kHugePage - 1) / kHugePage * kHugePage;
      Release();
      // Preference order: explicitly reserved huge pages (MAP_HUGETLB —
      // needs vm.nr_hugepages > 0), then a huge-page-aligned malloc
      // advised onto transparent huge pages, which also degrades cleanly
      // to plain 4 KiB pages where THP is unavailable. Every tier keeps
      // the 2 MiB base alignment.
#if defined(__linux__) && defined(MAP_HUGETLB)
      void* m = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
      if (m != MAP_FAILED) {
        data_ = static_cast<T*>(m);
        mapped_bytes_ = bytes;
      }
#endif
      if (data_ == nullptr) {
        data_ = static_cast<T*>(std::aligned_alloc(kHugePage, bytes));
        if (data_ == nullptr) {
          data_ = static_cast<T*>(std::aligned_alloc(64, bytes));
        }
        RESACC_CHECK(data_ != nullptr);
#if defined(__linux__)
        madvise(data_, bytes, MADV_HUGEPAGE);
#endif
      }
      capacity_ = bytes / sizeof(T);
    }
    size_ = count;
    if (count > 0) std::memset(data_, 0, count * sizeof(T));
  }

  ~HugeArray() { Release(); }
  HugeArray(const HugeArray&) = delete;
  HugeArray& operator=(const HugeArray&) = delete;

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  void Release() {
    if (data_ == nullptr) return;
#if defined(__linux__) && defined(MAP_HUGETLB)
    if (mapped_bytes_ > 0) {
      munmap(data_, mapped_bytes_);
      data_ = nullptr;
      mapped_bytes_ = 0;
      return;
    }
#endif
    std::free(data_);
    data_ = nullptr;
  }

  T* data_ = nullptr;
  std::size_t mapped_bytes_ = 0;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace resacc

#endif  // RESACC_UTIL_HUGE_ARRAY_H_

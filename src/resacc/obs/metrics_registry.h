#ifndef RESACC_OBS_METRICS_REGISTRY_H_
#define RESACC_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "resacc/util/histogram.h"

namespace resacc {

// Monotonic event counter. Increment is a single relaxed atomic add, cheap
// enough for per-query (not per-walk-step) call sites; hot loops accumulate
// locally and flush once per batch (the walk engine flushes per Run).
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time value that can go up and down (queue depth, cache bytes).
// For values derivable from existing state, prefer a callback metric
// (MetricsRegistry::RegisterCallback) over pushing updates into a Gauge —
// see DESIGN.md "Observability" for why the registry scrapes, not pushes.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

// Process-wide (or per-subsystem) registry of named metrics.
//
// Design: the hot path touches only the metric objects themselves — stable
// pointers handed out at registration, incremented with relaxed atomics, no
// registry lock anywhere near Record()/Increment(). The registry mutex
// guards registration and scraping only (both cold). Metrics are never
// removed once registered (callbacks are the exception, because they borrow
// state the registry does not own), so a `Counter&` obtained once — e.g. a
// function-local static in a solver — stays valid for the process lifetime.
//
// `MetricsRegistry::Global()` is the process-wide instance the solver and
// walk-engine instrumentation use. Subsystems that need isolated counts
// (one QueryService per test, say) construct their own registry.
//
// Naming follows the Prometheus convention: `snake_case` metric names,
// `_total` suffix on counters, base units in the name (`_seconds`,
// `_bytes`); `labels` is the raw label body, e.g. `phase="omfwd"`. Metrics
// are keyed by (name, labels), so the same base name with different labels
// yields distinct series that share one `# TYPE` line in the exposition.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry. Never destroyed (intentionally leaked), so
  // instrumentation in static destructors cannot crash.
  static MetricsRegistry& Global();

  // Registration is idempotent: the same (name, labels) returns the same
  // object, so independent call sites may share a series. The first
  // registration's help text wins.
  Counter& GetCounter(const std::string& name, const std::string& labels = "",
                      const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& labels = "",
                  const std::string& help = "");
  LatencyHistogram& GetHistogram(const std::string& name,
                                 const std::string& labels = "",
                                 const std::string& help = "");

  // Lazily-evaluated metric: `fn` runs at snapshot/exposition time on the
  // scraping thread (snapshot-on-scrape — the owner keeps its state in
  // whatever form is natural and pays nothing between scrapes). The owner
  // MUST call UnregisterCallback (with the returned id) before the state
  // captured by `fn` dies. `kind` controls the exposition TYPE line only.
  std::uint64_t RegisterCallback(MetricKind kind, const std::string& name,
                                 const std::string& labels,
                                 const std::string& help,
                                 std::function<double()> fn);
  void UnregisterCallback(std::uint64_t id);

  // One scraped series. For kHistogram, `value` is the recorded-value sum
  // (the Prometheus `_sum` series) and `histogram` holds the quantiles.
  struct Sample {
    std::string name;
    std::string labels;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    double value = 0.0;
    LatencyHistogram::Snapshot histogram;
  };

  // Consistent-enough view for monitoring: each series is read atomically,
  // the set of series is read under the registry lock. Sorted by
  // (name, labels).
  std::vector<Sample> TakeSnapshot() const;

  // Prometheus text exposition (version 0.0.4): `# HELP` / `# TYPE` lines
  // per metric family, histograms rendered as summaries with
  // quantile="0.5|0.95|0.99" series plus `_sum` and `_count`.
  std::string RenderPrometheus() const;

  // Registered series count (all kinds), for tests.
  std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    std::string labels;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
    std::function<double()> callback;  // callback metrics only
    std::uint64_t callback_id = 0;     // 0 = not a callback
  };

  Entry* FindLocked(const std::string& name, const std::string& labels,
                    MetricKind kind);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::uint64_t next_callback_id_ = 1;
};

}  // namespace resacc

#endif  // RESACC_OBS_METRICS_REGISTRY_H_

#include "resacc/obs/metrics_registry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace resacc {
namespace {

// compare_exchange loop instead of fetch_add so only C++17-era
// std::atomic<double> is required (same idiom as histogram.cc).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

const char* TypeName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "summary";
  }
  return "untyped";
}

void AppendNumber(std::string& out, double value) {
  char buf[64];
  // %.10g keeps counters exact up to 2^33 and latencies to 10 significant
  // digits without trailing zero noise.
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out += buf;
}

void AppendSeries(std::string& out, const std::string& name,
                  const std::string& labels, const char* extra_label,
                  double value) {
  out += name;
  if (!labels.empty() || extra_label != nullptr) {
    out += '{';
    out += labels;
    if (extra_label != nullptr) {
      if (!labels.empty()) out += ',';
      out += extra_label;
    }
    out += '}';
  }
  out += ' ';
  AppendNumber(out, value);
  out += '\n';
}

}  // namespace

void Gauge::Add(double delta) { AtomicAdd(value_, delta); }

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

MetricsRegistry::Entry* MetricsRegistry::FindLocked(const std::string& name,
                                                    const std::string& labels,
                                                    MetricKind kind) {
  for (const auto& entry : entries_) {
    if (entry->name == name && entry->labels == labels &&
        entry->kind == kind && entry->callback_id == 0) {
      return entry.get();
    }
  }
  return nullptr;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = FindLocked(name, labels, MetricKind::kCounter)) {
    return *existing->counter;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->help = help;
  entry->kind = MetricKind::kCounter;
  entry->counter.reset(new Counter());
  Counter& counter = *entry->counter;
  entries_.push_back(std::move(entry));
  return counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& labels,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = FindLocked(name, labels, MetricKind::kGauge)) {
    return *existing->gauge;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->help = help;
  entry->kind = MetricKind::kGauge;
  entry->gauge.reset(new Gauge());
  Gauge& gauge = *entry->gauge;
  entries_.push_back(std::move(entry));
  return gauge;
}

LatencyHistogram& MetricsRegistry::GetHistogram(const std::string& name,
                                                const std::string& labels,
                                                const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Entry* existing = FindLocked(name, labels, MetricKind::kHistogram)) {
    return *existing->histogram;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->help = help;
  entry->kind = MetricKind::kHistogram;
  entry->histogram = std::make_unique<LatencyHistogram>();
  LatencyHistogram& histogram = *entry->histogram;
  entries_.push_back(std::move(entry));
  return histogram;
}

std::uint64_t MetricsRegistry::RegisterCallback(MetricKind kind,
                                                const std::string& name,
                                                const std::string& labels,
                                                const std::string& help,
                                                std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = labels;
  entry->help = help;
  entry->kind = kind;
  entry->callback = std::move(fn);
  entry->callback_id = next_callback_id_++;
  const std::uint64_t id = entry->callback_id;
  entries_.push_back(std::move(entry));
  return id;
}

void MetricsRegistry::UnregisterCallback(std::uint64_t id) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const std::unique_ptr<Entry>& entry) {
                                  return entry->callback_id == id;
                                }),
                 entries_.end());
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::TakeSnapshot() const {
  std::vector<Sample> samples;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    samples.reserve(entries_.size());
    for (const auto& entry : entries_) {
      Sample sample;
      sample.name = entry->name;
      sample.labels = entry->labels;
      sample.help = entry->help;
      sample.kind = entry->kind;
      if (entry->callback) {
        sample.value = entry->callback();
      } else if (entry->counter) {
        sample.value = static_cast<double>(entry->counter->Value());
      } else if (entry->gauge) {
        sample.value = entry->gauge->Value();
      } else if (entry->histogram) {
        sample.histogram = entry->histogram->TakeSnapshot();
        sample.value = sample.histogram.mean *
                       static_cast<double>(sample.histogram.count);
      }
      samples.push_back(std::move(sample));
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              return a.name != b.name ? a.name < b.name : a.labels < b.labels;
            });
  return samples;
}

std::string MetricsRegistry::RenderPrometheus() const {
  const std::vector<Sample> samples = TakeSnapshot();
  std::string out;
  out.reserve(samples.size() * 96);
  const std::string* previous_name = nullptr;
  for (const Sample& sample : samples) {
    if (previous_name == nullptr || *previous_name != sample.name) {
      if (!sample.help.empty()) {
        out += "# HELP " + sample.name + " " + sample.help + "\n";
      }
      out += "# TYPE " + sample.name + " ";
      out += TypeName(sample.kind);
      out += '\n';
    }
    previous_name = &sample.name;
    if (sample.kind == MetricKind::kHistogram) {
      const LatencyHistogram::Snapshot& h = sample.histogram;
      AppendSeries(out, sample.name, sample.labels, "quantile=\"0.5\"",
                   h.p50);
      AppendSeries(out, sample.name, sample.labels, "quantile=\"0.95\"",
                   h.p95);
      AppendSeries(out, sample.name, sample.labels, "quantile=\"0.99\"",
                   h.p99);
      AppendSeries(out, sample.name + "_sum", sample.labels, nullptr,
                   sample.value);
      AppendSeries(out, sample.name + "_count", sample.labels, nullptr,
                   static_cast<double>(h.count));
    } else {
      AppendSeries(out, sample.name, sample.labels, nullptr, sample.value);
    }
  }
  return out;
}

}  // namespace resacc

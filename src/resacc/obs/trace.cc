#include "resacc/obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <utility>

namespace resacc {
namespace {

std::atomic<bool> g_trace_enabled{false};

// All spans share one steady epoch so start times from different threads
// are comparable within a process.
double SecondsSinceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

struct ThreadTraceBuffer {
  std::vector<TraceEvent> events;
  std::vector<std::int32_t> stack;  // indices of open spans
  std::uint64_t dropped = 0;
  std::uint32_t epoch = 0;  // bumped by Drain; stale SpanScopes no-op
};

ThreadTraceBuffer& Buffer() {
  thread_local ThreadTraceBuffer buffer;
  return buffer;
}

void AppendJsonEscaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\') out += '\\';
    out += *p;
  }
}

void AppendSpan(std::string& out, const std::vector<TraceEvent>& events,
                const std::vector<std::vector<std::int32_t>>& children,
                std::int32_t index, int depth, int indent) {
  const std::string pad(static_cast<std::size_t>(depth * indent), ' ');
  const TraceEvent& event = events[static_cast<std::size_t>(index)];
  char buf[96];
  out += pad + "{\"name\": \"";
  AppendJsonEscaped(out, event.name);
  std::snprintf(buf, sizeof(buf),
                "\", \"start_seconds\": %.9f, \"duration_seconds\": %.9f",
                event.start_seconds, event.duration_seconds);
  out += buf;
  const auto& kids = children[static_cast<std::size_t>(index)];
  if (kids.empty()) {
    out += "}";
    return;
  }
  out += ", \"children\": [\n";
  for (std::size_t i = 0; i < kids.size(); ++i) {
    AppendSpan(out, events, children, kids[i], depth + 1, indent);
    out += i + 1 < kids.size() ? ",\n" : "\n";
  }
  out += pad + "]}";
}

}  // namespace

void Trace::Enable() {
  SecondsSinceEpoch();  // pin the epoch before the first span
  g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Trace::Disable() {
  g_trace_enabled.store(false, std::memory_order_relaxed);
}

bool Trace::enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

std::vector<TraceEvent> Trace::DrainThreadEvents() {
  ThreadTraceBuffer& buffer = Buffer();
  std::vector<TraceEvent> events = std::move(buffer.events);
  buffer.events.clear();
  buffer.stack.clear();
  buffer.dropped = 0;
  ++buffer.epoch;
  return events;
}

std::uint64_t Trace::DroppedThreadEvents() { return Buffer().dropped; }

std::string Trace::ToJson(const std::vector<TraceEvent>& events,
                          int indent) {
  std::vector<std::vector<std::int32_t>> children(events.size());
  std::vector<std::int32_t> roots;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::int32_t parent = events[i].parent;
    if (parent < 0) {
      roots.push_back(static_cast<std::int32_t>(i));
    } else {
      children[static_cast<std::size_t>(parent)].push_back(
          static_cast<std::int32_t>(i));
    }
  }
  std::string out = "[";
  if (!roots.empty()) out += "\n";
  for (std::size_t i = 0; i < roots.size(); ++i) {
    AppendSpan(out, events, children, roots[i], 1, indent);
    out += i + 1 < roots.size() ? ",\n" : "\n";
  }
  out += "]";
  return out;
}

SpanScope::SpanScope(const char* name) {
  if (!Trace::enabled()) return;
  ThreadTraceBuffer& buffer = Buffer();
  if (buffer.events.size() >= Trace::kMaxThreadEvents) {
    ++buffer.dropped;
    return;
  }
  TraceEvent event;
  event.name = name;
  event.parent = buffer.stack.empty() ? -1 : buffer.stack.back();
  event.start_seconds = SecondsSinceEpoch();
  index_ = static_cast<std::int32_t>(buffer.events.size());
  epoch_ = buffer.epoch;
  buffer.events.push_back(event);
  buffer.stack.push_back(index_);
}

SpanScope::~SpanScope() {
  if (index_ < 0) return;
  ThreadTraceBuffer& buffer = Buffer();
  if (buffer.epoch != epoch_) return;  // buffer drained while we were open
  TraceEvent& event = buffer.events[static_cast<std::size_t>(index_)];
  event.duration_seconds = SecondsSinceEpoch() - event.start_seconds;
  if (!buffer.stack.empty() && buffer.stack.back() == index_) {
    buffer.stack.pop_back();
  }
}

}  // namespace resacc

#ifndef RESACC_OBS_TRACE_H_
#define RESACC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace resacc {

// One completed (or still-open) span, as recorded in a thread's buffer.
// `parent` indexes the same vector (-1 for a root span); events appear in
// span-open order, so a parent always precedes its children.
struct TraceEvent {
  const char* name = "";          // static string passed to RESACC_SPAN
  std::int32_t parent = -1;
  double start_seconds = 0.0;     // steady-clock seconds since Trace epoch
  double duration_seconds = 0.0;  // 0 while the span is still open
};

// Process-wide switch plus per-thread span buffers.
//
// Tracing is off by default and the disabled cost of RESACC_SPAN is one
// relaxed atomic load — cheap enough to leave spans compiled into the
// solver phases, the walk engine, and the serve worker loop permanently.
// When enabled, a span open/close is two steady_clock reads and a push
// into a thread_local vector: no locks, no allocation after warm-up, no
// cross-thread traffic.
//
// Buffers are per-thread and drained by the same thread (the CLI pattern:
// enable, run the query on this thread, drain, write JSON). A thread that
// records spans nobody drains stops at kMaxThreadEvents and counts the
// overflow instead of growing without bound.
class Trace {
 public:
  // Per-thread buffer cap; beyond it new spans are dropped (and counted).
  static constexpr std::size_t kMaxThreadEvents = 1 << 16;

  static void Enable();
  static void Disable();
  static bool enabled();

  // Moves the calling thread's completed spans out and resets its buffer.
  // Call it outside any open span: spans still open when Drain runs are
  // abandoned (they keep duration 0 in the returned vector and their
  // SpanScope close becomes a no-op).
  static std::vector<TraceEvent> DrainThreadEvents();

  // Spans dropped on this thread since the last Drain (buffer overflow).
  static std::uint64_t DroppedThreadEvents();

  // Renders events as a JSON forest: an array of span objects
  //   {"name": ..., "start_seconds": ..., "duration_seconds": ...,
  //    "children": [...]}
  // ordered by span-open time. This is the `spans` payload of the
  // `resacc_cli --trace-json` schema (docs/OBSERVABILITY.md).
  static std::string ToJson(const std::vector<TraceEvent>& events,
                            int indent = 2);
};

// RAII span: records an event on construction (when tracing is enabled)
// and fills in its duration on destruction. Use through RESACC_SPAN.
class SpanScope {
 public:
  explicit SpanScope(const char* name);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  std::int32_t index_ = -1;   // -1: tracing disabled or buffer full
  std::uint32_t epoch_ = 0;   // guards against a Drain between open/close
};

#define RESACC_SPAN_CONCAT_INNER(a, b) a##b
#define RESACC_SPAN_CONCAT(a, b) RESACC_SPAN_CONCAT_INNER(a, b)

// Opens a span covering the rest of the enclosing scope. `name` must be a
// string literal (or otherwise outlive the trace buffer).
#define RESACC_SPAN(name) \
  ::resacc::SpanScope RESACC_SPAN_CONCAT(resacc_span_, __LINE__)(name)

}  // namespace resacc

#endif  // RESACC_OBS_TRACE_H_

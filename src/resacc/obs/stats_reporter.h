#ifndef RESACC_OBS_STATS_REPORTER_H_
#define RESACC_OBS_STATS_REPORTER_H_

#include <condition_variable>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace resacc {

// Periodically invokes a producer and writes its structured one-line
// output to a stream — the log-scraping complement to pull-based
// exposition: operators without a Prometheus scraper still get a
// machine-parseable `key=value` heartbeat in the server log.
//
// The producer runs on the reporter thread; it must be thread-safe with
// respect to whatever it reads (ServerStats::ToLine over a QueryService
// snapshot is the canonical use). An empty returned string suppresses
// that tick's line. Stop() (also run by the destructor) wakes the thread
// and joins it; a final line is NOT emitted on stop.
class StatsReporter {
 public:
  StatsReporter(double interval_seconds, std::function<std::string()> producer,
                std::FILE* out = stderr);
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  void Stop();

  // Lines written so far (for tests; relaxed read).
  std::uint64_t lines_written() const;

 private:
  void Loop();

  const double interval_seconds_;
  const std::function<std::string()> producer_;
  std::FILE* const out_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::uint64_t lines_written_ = 0;
  std::thread thread_;
};

}  // namespace resacc

#endif  // RESACC_OBS_STATS_REPORTER_H_

#include "resacc/obs/stats_reporter.h"

#include <chrono>
#include <utility>

#include "resacc/util/check.h"

namespace resacc {

StatsReporter::StatsReporter(double interval_seconds,
                             std::function<std::string()> producer,
                             std::FILE* out)
    : interval_seconds_(interval_seconds),
      producer_(std::move(producer)),
      out_(out) {
  RESACC_CHECK(interval_seconds_ > 0.0);
  RESACC_CHECK(producer_ != nullptr);
  thread_ = std::thread([this] { Loop(); });
}

StatsReporter::~StatsReporter() { Stop(); }

void StatsReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::uint64_t StatsReporter::lines_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_written_;
}

void StatsReporter::Loop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(interval_seconds_));
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) return;
    lock.unlock();
    const std::string line = producer_();
    if (!line.empty()) {
      std::fprintf(out_, "%s\n", line.c_str());
      std::fflush(out_);
    }
    lock.lock();
    if (!line.empty()) ++lines_written_;
  }
}

}  // namespace resacc

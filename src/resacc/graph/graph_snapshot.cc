#include "resacc/graph/graph_snapshot.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define RESACC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace resacc {

std::uint64_t SnapshotChecksum(const void* data, std::size_t bytes,
                               std::uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ULL;  // FNV-1a prime
  }
  return hash;
}

namespace {

constexpr char kMagic[8] = {'R', 'E', 'S', 'A', 'C', 'C', '0', '2'};
constexpr std::uint32_t kEndianTag = 0x0a0b0c0d;
constexpr std::uint32_t kHeaderBytes = 128;
constexpr std::uint32_t kSectionAlign = 64;
constexpr std::size_t kNumSections = 4;

// The on-disk header. All integer fields little-endian (an endian_tag
// mismatch is rejected at load rather than byte-swapped).
struct SnapshotHeader {
  char magic[8];
  std::uint32_t endian_tag;
  std::uint32_t header_bytes;
  std::uint32_t section_align;
  std::uint32_t reserved0;
  std::uint64_t num_nodes;
  std::uint64_t num_edges;
  std::uint64_t section_offset[kNumSections];  // bytes from file start
  std::uint64_t section_bytes[kNumSections];
  std::uint64_t section_checksum;  // FNV-1a chained over sections 0..3
  std::uint64_t generation;  // compaction generation (was reserved; old = 0)
  std::uint64_t header_checksum;  // FNV-1a over bytes [0, 120)
};
static_assert(sizeof(SnapshotHeader) == kHeaderBytes);
static_assert(offsetof(SnapshotHeader, header_checksum) == 120);

// "RESACC02" -> 2. The magic doubles as the format version.
std::uint32_t FormatVersion(const SnapshotHeader& header) {
  return static_cast<std::uint32_t>(header.magic[6] - '0') * 10 +
         static_cast<std::uint32_t>(header.magic[7] - '0');
}

std::uint64_t AlignUp(std::uint64_t value, std::uint64_t align) {
  return (value + align - 1) / align * align;
}

bool WriteAll(std::FILE* file, const void* data, std::size_t bytes) {
  return bytes == 0 || std::fwrite(data, 1, bytes, file) == bytes;
}

bool ReadAll(std::FILE* file, void* data, std::size_t bytes) {
  return bytes == 0 || std::fread(data, 1, bytes, file) == bytes;
}

struct SectionView {
  const void* data;
  std::uint64_t bytes;
};

// Fills offsets/sizes for the four sections in their on-disk order.
void LayOutSections(const Graph& graph, SnapshotHeader& header,
                    SectionView views[kNumSections]) {
  const std::uint64_t n = graph.num_nodes();
  const std::uint64_t m = graph.num_edges();
  header.num_nodes = n;
  header.num_edges = m;
  views[0] = {graph.raw_out_offsets().data(), (n + 1) * sizeof(EdgeId)};
  views[1] = {graph.raw_out_targets().data(), m * sizeof(NodeId)};
  views[2] = {graph.raw_in_offsets().data(), (n + 1) * sizeof(EdgeId)};
  views[3] = {graph.raw_in_sources().data(), m * sizeof(NodeId)};
  std::uint64_t cursor = kHeaderBytes;
  for (std::size_t s = 0; s < kNumSections; ++s) {
    cursor = AlignUp(cursor, kSectionAlign);
    header.section_offset[s] = cursor;
    header.section_bytes[s] = views[s].bytes;
    cursor += views[s].bytes;
  }
}

Status ValidateHeader(const SnapshotHeader& header, std::uint64_t file_bytes,
                      const std::string& path) {
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        "bad magic (not a RESACC02 snapshot): " + path);
  }
  if (header.endian_tag != kEndianTag) {
    return Status::InvalidArgument(
        "snapshot written with different endianness: " + path);
  }
  if (header.header_bytes != kHeaderBytes ||
      header.section_align != kSectionAlign) {
    return Status::InvalidArgument("unsupported snapshot layout: " + path);
  }
  const std::uint64_t expected_checksum =
      SnapshotChecksum(&header, offsetof(SnapshotHeader, header_checksum));
  if (header.header_checksum != expected_checksum) {
    return Status::InvalidArgument("header checksum mismatch: " + path);
  }
  if (header.num_nodes >= kInvalidNode) {
    return Status::OutOfRange("node count too large: " + path);
  }
  const std::uint64_t n = header.num_nodes;
  const std::uint64_t m = header.num_edges;
  const std::uint64_t expected_bytes[kNumSections] = {
      (n + 1) * sizeof(EdgeId), m * sizeof(NodeId), (n + 1) * sizeof(EdgeId),
      m * sizeof(NodeId)};
  for (std::size_t s = 0; s < kNumSections; ++s) {
    const std::uint64_t offset = header.section_offset[s];
    const std::uint64_t bytes = header.section_bytes[s];
    if (bytes != expected_bytes[s]) {
      return Status::InvalidArgument("section size mismatch: " + path);
    }
    if (offset < kHeaderBytes || offset % alignof(EdgeId) != 0 ||
        offset > file_bytes || file_bytes - offset < bytes) {
      return Status::InvalidArgument(
          "section out of file bounds (truncated?): " + path);
    }
  }
  return Status::Ok();
}

// Cheap structural anchors readable in O(1): both offset arrays must start
// at 0 and end at num_edges, or every degree/neighbour lookup is garbage.
Status ValidateAnchors(std::span<const EdgeId> out_offsets,
                       std::span<const EdgeId> in_offsets,
                       std::uint64_t num_edges, const std::string& path) {
  if (out_offsets.front() != 0 || out_offsets.back() != num_edges ||
      in_offsets.front() != 0 || in_offsets.back() != num_edges) {
    return Status::InvalidArgument("CSR offset anchors corrupt: " + path);
  }
  return Status::Ok();
}

Status VerifySectionChecksum(const SnapshotHeader& header,
                             const SectionView views[kNumSections],
                             const std::string& path) {
  std::uint64_t checksum = SnapshotChecksum(nullptr, 0);
  for (std::size_t s = 0; s < kNumSections; ++s) {
    checksum = SnapshotChecksum(views[s].data, views[s].bytes, checksum);
  }
  if (checksum != header.section_checksum) {
    return Status::InvalidArgument("section checksum mismatch: " + path);
  }
  return Status::Ok();
}

#ifdef RESACC_HAVE_MMAP
// Owns one mmap'd region; the Graph's storage_ aliases into this.
struct Mapping {
  void* base = nullptr;
  std::size_t bytes = 0;
  ~Mapping() {
    if (base != nullptr) ::munmap(base, bytes);
  }
};

StatusOr<Graph> LoadSnapshotMmap(const std::string& path,
                                 const SnapshotLoadOptions& options,
                                 SnapshotLoadInfo* info, bool& fell_back) {
  fell_back = false;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open snapshot: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::Internal("cannot stat snapshot: " + path);
  }
  const std::uint64_t file_bytes = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes < kHeaderBytes) {
    ::close(fd);
    return Status::InvalidArgument("truncated header: " + path);
  }
  void* base =
      ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, /*offset=*/0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) {
    fell_back = true;  // e.g. a filesystem without mmap support
    return Status::Internal("mmap failed: " + path);
  }
  auto mapping = std::make_shared<Mapping>();
  mapping->base = base;
  mapping->bytes = static_cast<std::size_t>(file_bytes);

  SnapshotHeader header;
  std::memcpy(&header, base, sizeof(header));
  RESACC_RETURN_IF_ERROR(ValidateHeader(header, file_bytes, path));

  const char* bytes = static_cast<const char*>(base);
  const std::size_t n = static_cast<std::size_t>(header.num_nodes);
  const std::size_t m = static_cast<std::size_t>(header.num_edges);
  const std::span<const EdgeId> out_offsets(
      reinterpret_cast<const EdgeId*>(bytes + header.section_offset[0]),
      n + 1);
  const std::span<const NodeId> out_targets(
      reinterpret_cast<const NodeId*>(bytes + header.section_offset[1]), m);
  const std::span<const EdgeId> in_offsets(
      reinterpret_cast<const EdgeId*>(bytes + header.section_offset[2]),
      n + 1);
  const std::span<const NodeId> in_sources(
      reinterpret_cast<const NodeId*>(bytes + header.section_offset[3]), m);
  RESACC_RETURN_IF_ERROR(
      ValidateAnchors(out_offsets, in_offsets, header.num_edges, path));
  if (options.verify_section_checksum) {
    const SectionView views[kNumSections] = {
        {out_offsets.data(), header.section_bytes[0]},
        {out_targets.data(), header.section_bytes[1]},
        {in_offsets.data(), header.section_bytes[2]},
        {in_sources.data(), header.section_bytes[3]}};
    RESACC_RETURN_IF_ERROR(VerifySectionChecksum(header, views, path));
  }
  if (info != nullptr) {
    info->mmap_used = true;
    info->file_bytes = file_bytes;
    info->format_version = FormatVersion(header);
    info->generation = header.generation;
  }
  return Graph(static_cast<NodeId>(n), out_offsets, out_targets, in_offsets,
               in_sources,
               std::shared_ptr<const void>(mapping, mapping->base));
}
#endif  // RESACC_HAVE_MMAP

StatusOr<Graph> LoadSnapshotBuffered(const std::string& path,
                                     const SnapshotLoadOptions& options,
                                     SnapshotLoadInfo* info) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open snapshot: " + path);
  }
  if (std::fseek(file, 0, SEEK_END) != 0) {
    std::fclose(file);
    return Status::Internal("cannot seek snapshot: " + path);
  }
  const long file_size = std::ftell(file);
  if (file_size < 0 || static_cast<std::uint64_t>(file_size) < kHeaderBytes) {
    std::fclose(file);
    return Status::InvalidArgument("truncated header: " + path);
  }
  const std::uint64_t file_bytes = static_cast<std::uint64_t>(file_size);
  std::rewind(file);
  SnapshotHeader header;
  if (!ReadAll(file, &header, sizeof(header))) {
    std::fclose(file);
    return Status::InvalidArgument("truncated header: " + path);
  }
  const Status valid = ValidateHeader(header, file_bytes, path);
  if (!valid.ok()) {
    std::fclose(file);
    return valid;
  }

  const std::size_t n = static_cast<std::size_t>(header.num_nodes);
  const std::size_t m = static_cast<std::size_t>(header.num_edges);
  std::vector<EdgeId> out_offsets(n + 1);
  std::vector<NodeId> out_targets(m);
  std::vector<EdgeId> in_offsets(n + 1);
  std::vector<NodeId> in_sources(m);
  void* destinations[kNumSections] = {out_offsets.data(), out_targets.data(),
                                      in_offsets.data(), in_sources.data()};
  for (std::size_t s = 0; s < kNumSections; ++s) {
    if (std::fseek(file, static_cast<long>(header.section_offset[s]),
                   SEEK_SET) != 0 ||
        !ReadAll(file, destinations[s],
                 static_cast<std::size_t>(header.section_bytes[s]))) {
      std::fclose(file);
      return Status::InvalidArgument("truncated section: " + path);
    }
  }
  std::fclose(file);

  RESACC_RETURN_IF_ERROR(ValidateAnchors(out_offsets, in_offsets,
                                         header.num_edges, path));
  if (options.verify_section_checksum) {
    const SectionView views[kNumSections] = {
        {out_offsets.data(), header.section_bytes[0]},
        {out_targets.data(), header.section_bytes[1]},
        {in_offsets.data(), header.section_bytes[2]},
        {in_sources.data(), header.section_bytes[3]}};
    RESACC_RETURN_IF_ERROR(VerifySectionChecksum(header, views, path));
  }
  if (info != nullptr) {
    info->mmap_used = false;
    info->file_bytes = file_bytes;
    info->format_version = FormatVersion(header);
    info->generation = header.generation;
  }
  return Graph(static_cast<NodeId>(n), std::move(out_offsets),
               std::move(out_targets), std::move(in_offsets),
               std::move(in_sources));
}

}  // namespace

Status SaveSnapshot(const Graph& graph, const std::string& path,
                    std::uint64_t generation) {
  if (graph.has_overlay()) {
    // raw_*() spans describe only the base CSR; fold the overlay in first
    // so the snapshot carries the merged edge set.
    const Graph flat(graph);  // copy materializes
    return SaveSnapshot(flat, path, generation);
  }
  SnapshotHeader header = {};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.endian_tag = kEndianTag;
  header.header_bytes = kHeaderBytes;
  header.section_align = kSectionAlign;
  header.generation = generation;
  SectionView views[kNumSections];
  LayOutSections(graph, header, views);
  std::uint64_t checksum = SnapshotChecksum(nullptr, 0);
  for (std::size_t s = 0; s < kNumSections; ++s) {
    checksum = SnapshotChecksum(views[s].data, views[s].bytes, checksum);
  }
  header.section_checksum = checksum;
  header.header_checksum =
      SnapshotChecksum(&header, offsetof(SnapshotHeader, header_checksum));

  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open for write: " + path);
  }
  bool ok = WriteAll(file, &header, sizeof(header));
  std::uint64_t cursor = kHeaderBytes;
  const char zeros[kSectionAlign] = {};
  for (std::size_t s = 0; ok && s < kNumSections; ++s) {
    const std::uint64_t pad = header.section_offset[s] - cursor;
    ok = WriteAll(file, zeros, static_cast<std::size_t>(pad)) &&
         WriteAll(file, views[s].data,
                  static_cast<std::size_t>(views[s].bytes));
    cursor = header.section_offset[s] + views[s].bytes;
  }
  ok = ok && std::fflush(file) == 0;
  std::fclose(file);
  if (!ok) return Status::Internal("short write: " + path);
  return Status::Ok();
}

StatusOr<Graph> LoadSnapshot(const std::string& path,
                             const SnapshotLoadOptions& options,
                             SnapshotLoadInfo* info) {
#ifdef RESACC_HAVE_MMAP
  if (options.prefer_mmap) {
    bool fell_back = false;
    StatusOr<Graph> mapped = LoadSnapshotMmap(path, options, info, fell_back);
    // Only an mmap(2) failure degrades to buffered reads; validation
    // errors are the file's fault and re-reading cannot fix them.
    if (mapped.ok() || !fell_back) return mapped;
  }
#endif
  return LoadSnapshotBuffered(path, options, info);
}

}  // namespace resacc

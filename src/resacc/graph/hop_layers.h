#ifndef RESACC_GRAPH_HOP_LAYERS_H_
#define RESACC_GRAPH_HOP_LAYERS_H_

#include <cstdint>
#include <vector>

#include "resacc/graph/graph.h"
#include "resacc/util/types.h"

namespace resacc {

// Hop-layer decomposition around a source set (Definitions 2-4 of the
// paper): layer i holds the nodes whose shortest out-edge distance from the
// nearest source is exactly i. Built by BFS truncated at `max_hop`.
//
// For ResAcc's h-HopFWD, `max_hop = h + 1`: layers[0..h] form the h-hop set
// V_h-hop(s) and layers[h+1] is the accumulation frontier L_(h+1)-hop(s).
struct HopLayers {
  // layers[i] = L_i-hop(sources); size max_hop + 1 (trailing layers may be
  // empty if BFS exhausts the reachable set early).
  std::vector<std::vector<NodeId>> layers;

  // distance[v] = hop distance, or kUnreached for nodes beyond max_hop
  // (or unreachable).
  static constexpr std::uint32_t kUnreached = 0xffffffffu;
  std::vector<std::uint32_t> distance;

  // Number of nodes with distance <= h (the h-hop set size), h < layers.size().
  std::size_t HopSetSize(std::uint32_t h) const;

  bool InHopSet(NodeId v, std::uint32_t h) const {
    return distance[v] <= h;
  }
};

// Multi-source BFS over out-edges, truncated at max_hop.
HopLayers ComputeHopLayers(const Graph& graph,
                           const std::vector<NodeId>& sources,
                           std::uint32_t max_hop);

// Convenience overload for a single source.
HopLayers ComputeHopLayers(const Graph& graph, NodeId source,
                           std::uint32_t max_hop);

}  // namespace resacc

#endif  // RESACC_GRAPH_HOP_LAYERS_H_

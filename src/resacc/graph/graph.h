#ifndef RESACC_GRAPH_GRAPH_H_
#define RESACC_GRAPH_GRAPH_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "resacc/util/check.h"
#include "resacc/util/types.h"

namespace resacc {

// Immutable directed graph in CSR form, with both out- and in-adjacency.
// Out-adjacency drives forward pushes and random walks; in-adjacency drives
// backward pushes (BiPPR, TopPPR) and index maintenance.
//
// Invariants (established by GraphBuilder, checked in debug builds):
//   * no self loops (the paper's assumption, Section II-A),
//   * no duplicate edges,
//   * neighbour lists sorted ascending.
//
// Construct via GraphBuilder; Graph itself is movable and cheap to pass by
// const reference.
class Graph {
 public:
  Graph() = default;

  // Takes ownership of prebuilt CSR arrays. Prefer GraphBuilder.
  Graph(NodeId num_nodes, std::vector<EdgeId> out_offsets,
        std::vector<NodeId> out_targets, std::vector<EdgeId> in_offsets,
        std::vector<NodeId> in_sources);

  NodeId num_nodes() const { return num_nodes_; }
  EdgeId num_edges() const {
    return static_cast<EdgeId>(out_targets_.size());
  }

  NodeId OutDegree(NodeId u) const {
    RESACC_DCHECK(u < num_nodes_);
    return static_cast<NodeId>(out_offsets_[u + 1] - out_offsets_[u]);
  }
  NodeId InDegree(NodeId u) const {
    RESACC_DCHECK(u < num_nodes_);
    return static_cast<NodeId>(in_offsets_[u + 1] - in_offsets_[u]);
  }

  std::span<const NodeId> OutNeighbors(NodeId u) const {
    RESACC_DCHECK(u < num_nodes_);
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }
  std::span<const NodeId> InNeighbors(NodeId u) const {
    RESACC_DCHECK(u < num_nodes_);
    return {in_sources_.data() + in_offsets_[u],
            in_sources_.data() + in_offsets_[u + 1]};
  }

  // The j-th out-neighbour of u; random walks index neighbours directly.
  NodeId OutNeighbor(NodeId u, NodeId j) const {
    RESACC_DCHECK(j < OutDegree(u));
    return out_targets_[out_offsets_[u] + j];
  }

  // Hints the hardware prefetcher at u's CSR out-row (the offset pair that
  // every degree lookup reads first). The walk engine issues this when it
  // picks up a block, ahead of the first walk touching the row.
  void PrefetchOutRow(NodeId u) const {
    RESACC_DCHECK(u < num_nodes_);
    __builtin_prefetch(out_offsets_.data() + u, /*rw=*/0, /*locality=*/1);
  }

  bool HasEdge(NodeId u, NodeId v) const;

  NodeId MaxOutDegree() const;

  // Nodes sorted by descending out-degree; used for "hub" query-node
  // selection (Appendix C) and BePI hub extraction.
  std::vector<NodeId> NodesByOutDegreeDesc() const;

  // Approximate heap footprint of the CSR arrays, reported as "graph size"
  // in the Table IV reproduction.
  std::size_t MemoryBytes() const;

 private:
  NodeId num_nodes_ = 0;
  std::vector<EdgeId> out_offsets_;  // size num_nodes_ + 1
  std::vector<NodeId> out_targets_;  // size num_edges
  std::vector<EdgeId> in_offsets_;   // size num_nodes_ + 1
  std::vector<NodeId> in_sources_;   // size num_edges
};

}  // namespace resacc

#endif  // RESACC_GRAPH_GRAPH_H_

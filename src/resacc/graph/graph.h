#ifndef RESACC_GRAPH_GRAPH_H_
#define RESACC_GRAPH_GRAPH_H_

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "resacc/graph/dynamic/delta_overlay.h"
#include "resacc/util/check.h"
#include "resacc/util/types.h"

namespace resacc {

// Immutable directed graph in CSR form, with both out- and in-adjacency.
// Out-adjacency drives forward pushes and random walks; in-adjacency drives
// backward pushes (BiPPR, TopPPR) and index maintenance.
//
// Invariants (established by GraphBuilder, checked in debug builds):
//   * no self loops (the paper's assumption, Section II-A),
//   * no duplicate edges,
//   * neighbour lists sorted ascending.
//
// Storage ownership (DESIGN.md "Storage ownership: borrowed spans"): the
// accessors read four spans. A graph either *owns* the CSR arrays (the
// GraphBuilder path — spans view its own vectors) or *borrows* them from an
// opaque storage object it keeps alive (the zero-copy mmap snapshot path,
// graph/graph_snapshot.h). Algorithms cannot tell the difference.
//
// Delta overlay (DESIGN.md "Dynamic graphs"): a graph may additionally
// carry a DeltaOverlay — the epoch snapshots MutableGraphView hands out.
// Accessors then serve a node's row from the overlay when it is dirty and
// from the base spans otherwise, so algorithms iterate the *merged* graph
// through the unchanged Graph interface: one predictable null check on
// static graphs, one extra bit test on live ones. Overlay graphs still
// never copy the base CSR; copying such a Graph (or SaveSnapshot-ing it)
// materializes the merged CSR into owned arrays.
//
// Construct via GraphBuilder; Graph is movable and cheap to pass by const
// reference. Copying materializes: the copy always owns its arrays.
class Graph {
 public:
  Graph() = default;

  // Owning: takes ownership of prebuilt CSR arrays. Prefer GraphBuilder.
  Graph(NodeId num_nodes, std::vector<EdgeId> out_offsets,
        std::vector<NodeId> out_targets, std::vector<EdgeId> in_offsets,
        std::vector<NodeId> in_sources);

  // Borrowing: views over CSR arrays owned by `storage` (an mmap'd
  // snapshot, an arena, ...). The graph holds `storage` alive for its own
  // lifetime; the viewed bytes must stay valid and immutable.
  Graph(NodeId num_nodes, std::span<const EdgeId> out_offsets,
        std::span<const NodeId> out_targets,
        std::span<const EdgeId> in_offsets,
        std::span<const NodeId> in_sources,
        std::shared_ptr<const void> storage);

  // Overlay view: `base`'s spans merged with `overlay` (MutableGraphView's
  // epoch snapshots). `keep_alive` must pin whatever owns the base spans
  // (typically the base Graph itself); the overlay is pinned by the graph.
  Graph(const Graph& base, std::shared_ptr<const DeltaOverlay> overlay,
        std::shared_ptr<const void> keep_alive);

  // Copies deep-copy into owned arrays — materializing any overlay — so a
  // copy never pins an mmap'd file or an overlay version.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  // Moving a std::vector keeps its heap buffer, so member-wise moves leave
  // the spans of an owning graph valid in the destination.
  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;

  // A non-owning view of this graph: same spans and overlay, holding
  // `keep_alive` (when given) instead of copying anything. Without a
  // keep-alive the view inherits this graph's storage handle, so the view
  // is self-contained for borrowing graphs but must not outlive an owning
  // one — the same contract as passing `const Graph&`.
  Graph ShallowView(std::shared_ptr<const void> keep_alive = nullptr) const;

  NodeId num_nodes() const { return num_nodes_; }
  EdgeId num_edges() const { return num_edges_; }

  // True when the CSR arrays live in an external storage object (e.g. a
  // mapped .rsg snapshot) rather than heap vectors owned by this graph.
  bool borrows_storage() const { return storage_ != nullptr; }

  // True when this graph is a MutableGraphView epoch snapshot merging a
  // delta overlay over the base spans.
  bool has_overlay() const { return overlay_ != nullptr; }
  const std::shared_ptr<const DeltaOverlay>& overlay() const {
    return overlay_;
  }

  NodeId OutDegree(NodeId u) const {
    RESACC_DCHECK(u < num_nodes_);
    if (overlay_ != nullptr && overlay_->OutDirty(u)) [[unlikely]] {
      return static_cast<NodeId>(overlay_->OutRow(u).size());
    }
    return static_cast<NodeId>(out_offsets_[u + 1] - out_offsets_[u]);
  }
  NodeId InDegree(NodeId u) const {
    RESACC_DCHECK(u < num_nodes_);
    if (overlay_ != nullptr && overlay_->InDirty(u)) [[unlikely]] {
      return static_cast<NodeId>(overlay_->InRow(u).size());
    }
    return static_cast<NodeId>(in_offsets_[u + 1] - in_offsets_[u]);
  }

  std::span<const NodeId> OutNeighbors(NodeId u) const {
    RESACC_DCHECK(u < num_nodes_);
    if (overlay_ != nullptr && overlay_->OutDirty(u)) [[unlikely]] {
      return overlay_->OutRow(u);
    }
    return out_targets_.subspan(out_offsets_[u],
                                out_offsets_[u + 1] - out_offsets_[u]);
  }
  std::span<const NodeId> InNeighbors(NodeId u) const {
    RESACC_DCHECK(u < num_nodes_);
    if (overlay_ != nullptr && overlay_->InDirty(u)) [[unlikely]] {
      return overlay_->InRow(u);
    }
    return in_sources_.subspan(in_offsets_[u],
                               in_offsets_[u + 1] - in_offsets_[u]);
  }

  // The j-th out-neighbour of u; random walks index neighbours directly.
  NodeId OutNeighbor(NodeId u, NodeId j) const {
    RESACC_DCHECK(j < OutDegree(u));
    if (overlay_ != nullptr && overlay_->OutDirty(u)) [[unlikely]] {
      return overlay_->OutRow(u)[j];
    }
    return out_targets_[out_offsets_[u] + j];
  }

  // Hints the hardware prefetcher at u's CSR out-row (the offset pair that
  // every degree lookup reads first). The walk engine issues this when it
  // picks up a block, ahead of the first walk touching the row. Overlay
  // tail nodes have no base row; their rows are small heap vectors the
  // prefetcher handles on its own.
  void PrefetchOutRow(NodeId u) const {
    RESACC_DCHECK(u < num_nodes_);
    if (static_cast<std::size_t>(u) + 1 < out_offsets_.size()) {
      __builtin_prefetch(out_offsets_.data() + u, /*rw=*/0, /*locality=*/1);
    }
  }

  bool HasEdge(NodeId u, NodeId v) const;

  NodeId MaxOutDegree() const;

  // Nodes sorted by descending out-degree; used for "hub" query-node
  // selection (Appendix C) and BePI hub extraction.
  std::vector<NodeId> NodesByOutDegreeDesc() const;

  // Approximate resident footprint of the CSR arrays (owned heap or mapped
  // file bytes) plus any overlay rows, reported as "graph size" in the
  // Table IV reproduction.
  std::size_t MemoryBytes() const;

  // Raw CSR sections in snapshot order; for storage/serialization code
  // (graph_snapshot.cc, format converters) — algorithms use the accessors.
  // Not available on overlay graphs (the spans alone would misrepresent
  // the merged graph): materialize first via the copy constructor.
  std::span<const EdgeId> raw_out_offsets() const {
    RESACC_CHECK(overlay_ == nullptr);
    return out_offsets_;
  }
  std::span<const NodeId> raw_out_targets() const {
    RESACC_CHECK(overlay_ == nullptr);
    return out_targets_;
  }
  std::span<const EdgeId> raw_in_offsets() const {
    RESACC_CHECK(overlay_ == nullptr);
    return in_offsets_;
  }
  std::span<const NodeId> raw_in_sources() const {
    RESACC_CHECK(overlay_ == nullptr);
    return in_sources_;
  }

 private:
  void CheckInvariants() const;

  NodeId num_nodes_ = 0;
  EdgeId num_edges_ = 0;
  // Owned backing arrays; empty when the graph borrows from storage_.
  std::vector<EdgeId> owned_out_offsets_;
  std::vector<NodeId> owned_out_targets_;
  std::vector<EdgeId> owned_in_offsets_;
  std::vector<NodeId> owned_in_sources_;
  // The views every accessor reads: into the owned vectors or storage_.
  // With an overlay these cover the *base* graph only (num_nodes may
  // exceed their range); the overlay's dirty bits gate every access.
  std::span<const EdgeId> out_offsets_;  // size base num_nodes + 1
  std::span<const NodeId> out_targets_;  // size base num_edges
  std::span<const EdgeId> in_offsets_;   // size base num_nodes + 1
  std::span<const NodeId> in_sources_;   // size base num_edges
  // Keep-alive for borrowed storage (unmaps/frees on last release).
  std::shared_ptr<const void> storage_;
  // Delta overlay for MutableGraphView epoch snapshots; null on static
  // graphs, so the hot-path cost there is one predictable branch.
  std::shared_ptr<const DeltaOverlay> overlay_;
};

}  // namespace resacc

#endif  // RESACC_GRAPH_GRAPH_H_

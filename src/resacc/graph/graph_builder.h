#ifndef RESACC_GRAPH_GRAPH_BUILDER_H_
#define RESACC_GRAPH_GRAPH_BUILDER_H_

#include <utility>
#include <vector>

#include "resacc/graph/graph.h"
#include "resacc/util/types.h"

namespace resacc {

// Accumulates edges and produces a normalized CSR Graph.
//
// Normalization (always applied, matching the paper's preprocessing):
//   * self loops dropped,
//   * duplicate edges collapsed,
//   * if `symmetrize` is set, each edge is added in both directions
//     (the paper's treatment of undirected graphs, Section II-A).
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes, bool symmetrize = false)
      : num_nodes_(num_nodes), symmetrize_(symmetrize) {}

  // Node ids must be < num_nodes.
  void AddEdge(NodeId from, NodeId to);

  // Reserve capacity for `count` AddEdge calls.
  void Reserve(std::size_t count) { edges_.reserve(count); }

  std::size_t PendingEdges() const { return edges_.size(); }
  NodeId num_nodes() const { return num_nodes_; }

  // Consumes the builder.
  Graph Build() &&;

 private:
  NodeId num_nodes_;
  bool symmetrize_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace resacc

#endif  // RESACC_GRAPH_GRAPH_BUILDER_H_

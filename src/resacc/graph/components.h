#ifndef RESACC_GRAPH_COMPONENTS_H_
#define RESACC_GRAPH_COMPONENTS_H_

#include <vector>

#include "resacc/graph/graph.h"
#include "resacc/util/types.h"

namespace resacc {

// Connected-component decompositions. Used by the NISE filtering phase
// (expansion only makes sense inside the giant component), by dataset
// sanity checks, and available as public API.

struct ComponentDecomposition {
  // component_of[v] in [0, num_components).
  std::vector<std::uint32_t> component_of;
  std::uint32_t num_components = 0;
  // Sizes indexed by component id.
  std::vector<std::size_t> sizes;

  // Id of the largest component (ties: smallest id).
  std::uint32_t LargestComponent() const;
  // Nodes of one component, ascending.
  std::vector<NodeId> NodesOf(std::uint32_t component) const;
};

// Weakly connected components (edges treated as undirected).
ComponentDecomposition WeaklyConnectedComponents(const Graph& graph);

// Strongly connected components (Tarjan, iterative — no recursion-depth
// limit on path graphs).
ComponentDecomposition StronglyConnectedComponents(const Graph& graph);

// The subgraph induced by `nodes`, with nodes renumbered 0..|nodes|-1 in
// the given order. `old_to_new` (optional out) receives the mapping,
// kInvalidNode for dropped nodes.
Graph InducedSubgraph(const Graph& graph, const std::vector<NodeId>& nodes,
                      std::vector<NodeId>* old_to_new = nullptr);

}  // namespace resacc

#endif  // RESACC_GRAPH_COMPONENTS_H_

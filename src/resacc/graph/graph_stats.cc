#include "resacc/graph/graph_stats.h"

#include <algorithm>
#include <cstdio>

#include "resacc/graph/components.h"

namespace resacc {

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  stats.num_nodes = graph.num_nodes();
  stats.num_edges = graph.num_edges();
  if (graph.num_nodes() == 0) return stats;

  stats.avg_out_degree = static_cast<double>(graph.num_edges()) /
                         static_cast<double>(graph.num_nodes());

  std::vector<NodeId> out_degrees(graph.num_nodes());
  stats.is_symmetric = true;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out_degrees[v] = graph.OutDegree(v);
    stats.max_out_degree = std::max(stats.max_out_degree, graph.OutDegree(v));
    stats.max_in_degree = std::max(stats.max_in_degree, graph.InDegree(v));
    if (graph.OutDegree(v) == 0) ++stats.num_sinks;
    if (graph.InDegree(v) == 0) ++stats.num_sources;
    if (stats.is_symmetric) {
      for (NodeId w : graph.OutNeighbors(v)) {
        if (!graph.HasEdge(w, v)) {
          stats.is_symmetric = false;
          break;
        }
      }
    }
  }

  std::sort(out_degrees.begin(), out_degrees.end(),
            std::greater<NodeId>());
  const std::size_t top = std::max<std::size_t>(1, out_degrees.size() / 100);
  EdgeId top_mass = 0;
  for (std::size_t i = 0; i < top; ++i) top_mass += out_degrees[i];
  stats.top1pct_degree_share =
      graph.num_edges() > 0
          ? static_cast<double>(top_mass) /
                static_cast<double>(graph.num_edges())
          : 0.0;

  const ComponentDecomposition wcc = WeaklyConnectedComponents(graph);
  stats.largest_wcc = wcc.sizes[wcc.LargestComponent()];
  return stats;
}

std::string GraphStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "nodes=%u edges=%llu avg_out_deg=%.2f max_out=%u max_in=%u "
      "sinks=%zu sources=%zu symmetric=%s largest_wcc=%zu "
      "top1%%_degree_share=%.1f%%",
      num_nodes, static_cast<unsigned long long>(num_edges), avg_out_degree,
      max_out_degree, max_in_degree, num_sinks, num_sources,
      is_symmetric ? "yes" : "no", largest_wcc,
      top1pct_degree_share * 100.0);
  return buf;
}

std::vector<std::size_t> DegreeHistogramLog2(const Graph& graph) {
  std::vector<std::size_t> histogram;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    NodeId degree = graph.OutDegree(v);
    std::size_t bucket = 0;
    while (degree > 1) {
      degree >>= 1;
      ++bucket;
    }
    if (bucket >= histogram.size()) histogram.resize(bucket + 1, 0);
    ++histogram[bucket];
  }
  return histogram;
}

}  // namespace resacc

#ifndef RESACC_GRAPH_GENERATORS_H_
#define RESACC_GRAPH_GENERATORS_H_

#include <cstdint>

#include "resacc/graph/graph.h"
#include "resacc/util/types.h"

namespace resacc {

// Synthetic graph generators. All are deterministic in (parameters, seed).
// They serve two roles: (1) scaled stand-ins for the paper's datasets (see
// datasets.h and DESIGN.md Section 3), and (2) fixture graphs for tests.

// G(n, m): m distinct directed edges sampled uniformly (no self loops).
Graph ErdosRenyi(NodeId num_nodes, EdgeId num_edges, std::uint64_t seed,
                 bool symmetrize = false);

// Chung-Lu power-law graph: endpoints of each of ~num_edges edges are drawn
// proportionally to per-node weights w_i ~ (i + i0)^(-1/(exponent-1)),
// giving an expected power-law degree distribution with the given exponent.
// `in_out_correlated = false` draws source and target from independently
// shuffled weight sequences (twitter-like: big in-hubs are not necessarily
// big out-hubs).
Graph ChungLuPowerLaw(NodeId num_nodes, EdgeId num_edges, double exponent,
                      std::uint64_t seed, bool symmetrize = false,
                      bool in_out_correlated = true);

// Barabasi-Albert preferential attachment; every new node attaches
// `edges_per_node` undirected edges. Result is symmetrized.
Graph BarabasiAlbert(NodeId num_nodes, NodeId edges_per_node,
                     std::uint64_t seed);

// Watts-Strogatz small world: ring lattice with k neighbours per side,
// each edge rewired with probability beta. Symmetrized.
Graph WattsStrogatz(NodeId num_nodes, NodeId k, double beta,
                    std::uint64_t seed);

// Planted-partition stochastic block model: `num_blocks` equal blocks,
// expected within-block degree `deg_in` and cross-block degree `deg_out`
// per node. Symmetrized. Ground-truth block of node v is
// v / (num_nodes / num_blocks). Used by the community-detection experiments.
Graph PlantedPartition(NodeId num_nodes, NodeId num_blocks, double deg_in,
                       double deg_out, std::uint64_t seed);

}  // namespace resacc

#endif  // RESACC_GRAPH_GENERATORS_H_

#include "resacc/graph/graph_io.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "resacc/graph/graph_builder.h"
#include "resacc/graph/graph_snapshot.h"
#include "resacc/util/thread_pool.h"

namespace resacc {

namespace {

// Files below this size are parsed inline; above it, LoadEdgeList splits
// the buffer at newline boundaries and parses chunks on a ThreadPool.
constexpr std::size_t kParallelParseThreshold = std::size_t{1} << 20;

// The header comment SaveEdgeList writes; LoadEdgeList honours the node
// count so save/load round-trips keep trailing isolated nodes.
constexpr char kEdgeListHeader[] = "# resacc edge list:";

enum class ParseError { kNone, kMalformed, kIdTooLarge };

struct ChunkResult {
  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId max_id = 0;
  std::size_t lines = 0;  // lines consumed before stopping
  ParseError error = ParseError::kNone;
  std::size_t error_line = 0;  // 1-based, within the chunk
};

// Parses [begin, end); the caller aligns chunk boundaries to newlines.
// Stops at the first bad line (its chunk-local line number is enough to
// reconstruct the global one, because earlier chunks parse completely).
void ParseChunk(const char* begin, const char* end, ChunkResult& out) {
  const char* cursor = begin;
  while (cursor < end) {
    const char* newline = static_cast<const char*>(
        std::memchr(cursor, '\n', static_cast<std::size_t>(end - cursor)));
    const char* next = newline == nullptr ? end : newline + 1;
    const char* line_end = newline == nullptr ? end : newline;
    ++out.lines;
    if (line_end > cursor && line_end[-1] == '\r') --line_end;  // CRLF

    const char* p = cursor;
    while (p < line_end && (*p == ' ' || *p == '\t')) ++p;
    if (p == line_end || *p == '#') {
      cursor = next;
      continue;
    }

    std::uint64_t ids[2] = {0, 0};
    ParseError error = ParseError::kNone;
    for (std::uint64_t& id : ids) {
      while (p < line_end && (*p == ' ' || *p == '\t')) ++p;
      const auto [ptr, ec] = std::from_chars(p, line_end, id);
      if (ec == std::errc::result_out_of_range) {
        error = ParseError::kIdTooLarge;
        break;
      }
      if (ec != std::errc() || ptr == p) {
        error = ParseError::kMalformed;
        break;
      }
      p = ptr;
    }
    if (error == ParseError::kNone &&
        (ids[0] >= kInvalidNode || ids[1] >= kInvalidNode)) {
      error = ParseError::kIdTooLarge;
    }
    if (error != ParseError::kNone) {
      out.error = error;
      out.error_line = out.lines;
      return;
    }
    const NodeId u = static_cast<NodeId>(ids[0]);
    const NodeId v = static_cast<NodeId>(ids[1]);
    out.edges.emplace_back(u, v);
    out.max_id = std::max(out.max_id, std::max(u, v));
    cursor = next;
  }
}

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open edge list: " + path);
  }
  std::string buffer;
  char chunk[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    buffer.append(chunk, got);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return Status::Internal("read failed: " + path);
  return buffer;
}

}  // namespace

StatusOr<Graph> LoadEdgeList(const std::string& path, bool symmetrize,
                             std::size_t parse_threads) {
  StatusOr<std::string> contents = ReadWholeFile(path);
  if (!contents.ok()) return contents.status();
  const std::string& buffer = contents.value();

  // Node count declared by the SaveEdgeList header comment, if present.
  std::uint64_t declared_nodes = 0;
  if (buffer.rfind(kEdgeListHeader, 0) == 0) {
    const char* p = buffer.data() + sizeof(kEdgeListHeader) - 1;
    const char* line_end = buffer.data() + buffer.size();
    if (const char* newline = static_cast<const char*>(
            std::memchr(p, '\n', static_cast<std::size_t>(line_end - p)))) {
      line_end = newline;
    }
    while (p < line_end && *p == ' ') ++p;
    std::from_chars(p, line_end, declared_nodes);
  }

  std::size_t threads = parse_threads;
  if (threads == 0) {
    threads = buffer.size() >= kParallelParseThreshold
                  ? ThreadPool::DefaultThreads()
                  : 1;
  }
  threads = std::max<std::size_t>(1, threads);

  // Newline-aligned chunk boundaries.
  const char* base = buffer.data();
  const char* end = base + buffer.size();
  std::vector<const char*> bounds{base};
  for (std::size_t i = 1; i < threads; ++i) {
    const char* target = base + buffer.size() * i / threads;
    if (target <= bounds.back()) continue;
    const char* newline = static_cast<const char*>(std::memchr(
        target, '\n', static_cast<std::size_t>(end - target)));
    if (newline == nullptr) break;  // remainder is one final line
    if (newline + 1 > bounds.back() && newline + 1 < end) {
      bounds.push_back(newline + 1);
    }
  }
  bounds.push_back(end);

  const std::size_t num_chunks = bounds.size() - 1;
  std::vector<ChunkResult> results(num_chunks);
  if (num_chunks == 1) {
    ParseChunk(bounds[0], bounds[1], results[0]);
  } else {
    ThreadPool pool(num_chunks);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      pool.Submit([&bounds, &results, c] {
        ParseChunk(bounds[c], bounds[c + 1], results[c]);
      });
    }
    pool.Wait();
  }

  // The earliest failed chunk carries the earliest bad line; chunks before
  // it parsed completely, so their line counts are exact.
  std::size_t line_base = 0;
  for (const ChunkResult& result : results) {
    if (result.error != ParseError::kNone) {
      const std::size_t line = line_base + result.error_line;
      if (result.error == ParseError::kMalformed) {
        return Status::InvalidArgument(path + ": malformed line " +
                                       std::to_string(line));
      }
      return Status::OutOfRange(path + ": node id too large at line " +
                                std::to_string(line));
    }
    line_base += result.lines;
  }

  std::size_t total_edges = 0;
  NodeId max_id = 0;
  bool any_edges = false;
  for (const ChunkResult& result : results) {
    total_edges += result.edges.size();
    if (!result.edges.empty()) {
      any_edges = true;
      max_id = std::max(max_id, result.max_id);
    }
  }
  std::uint64_t num_nodes =
      any_edges ? static_cast<std::uint64_t>(max_id) + 1 : 0;
  num_nodes = std::max(num_nodes, declared_nodes);
  if (num_nodes >= kInvalidNode) {
    return Status::OutOfRange("node count too large: " + path);
  }

  GraphBuilder builder(static_cast<NodeId>(num_nodes), symmetrize);
  builder.Reserve(total_edges);
  for (const ChunkResult& result : results) {
    for (const auto& [u, v] : result.edges) builder.AddEdge(u, v);
  }
  return std::move(builder).Build();
}

namespace {

constexpr std::uint64_t kBinaryMagic = 0x52455341'43433031ULL;  // "RESACC01"

bool WriteAll(std::FILE* file, const void* data, std::size_t bytes) {
  return std::fwrite(data, 1, bytes, file) == bytes;
}

bool ReadAll(std::FILE* file, void* data, std::size_t bytes) {
  return std::fread(data, 1, bytes, file) == bytes;
}

bool HasSuffix(const std::string& path, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
}

}  // namespace

Status SaveBinary(const Graph& graph, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open for write: " + path);
  }
  const std::uint64_t magic = kBinaryMagic;
  const std::uint64_t num_nodes = graph.num_nodes();
  const std::uint64_t num_edges = graph.num_edges();
  bool ok = WriteAll(file, &magic, sizeof(magic)) &&
            WriteAll(file, &num_nodes, sizeof(num_nodes)) &&
            WriteAll(file, &num_edges, sizeof(num_edges));
  // Out-adjacency, node by node: degree-prefixed neighbour runs keep the
  // writer independent of Graph's internal layout.
  for (NodeId u = 0; ok && u < graph.num_nodes(); ++u) {
    const auto neighbors = graph.OutNeighbors(u);
    const std::uint32_t degree = static_cast<std::uint32_t>(neighbors.size());
    ok = WriteAll(file, &degree, sizeof(degree)) &&
         (neighbors.empty() ||
          WriteAll(file, neighbors.data(), neighbors.size() * sizeof(NodeId)));
  }
  std::fclose(file);
  if (!ok) return Status::Internal("short write: " + path);
  return Status::Ok();
}

StatusOr<Graph> LoadBinary(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open binary graph: " + path);
  }
  std::uint64_t magic = 0;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  if (!ReadAll(file, &magic, sizeof(magic)) ||
      !ReadAll(file, &num_nodes, sizeof(num_nodes)) ||
      !ReadAll(file, &num_edges, sizeof(num_edges))) {
    std::fclose(file);
    return Status::InvalidArgument("truncated header: " + path);
  }
  if (magic != kBinaryMagic) {
    std::fclose(file);
    return Status::InvalidArgument("bad magic (not a resacc graph): " + path);
  }
  if (num_nodes >= kInvalidNode) {
    std::fclose(file);
    return Status::OutOfRange("node count too large: " + path);
  }

  GraphBuilder builder(static_cast<NodeId>(num_nodes));
  builder.Reserve(num_edges);
  std::vector<NodeId> neighbors;
  std::uint64_t degree_total = 0;
  for (NodeId u = 0; u < num_nodes; ++u) {
    std::uint32_t degree = 0;
    if (!ReadAll(file, &degree, sizeof(degree)) || degree > num_edges) {
      std::fclose(file);
      return Status::InvalidArgument("truncated adjacency: " + path);
    }
    degree_total += degree;
    neighbors.resize(degree);
    if (degree > 0 &&
        !ReadAll(file, neighbors.data(), degree * sizeof(NodeId))) {
      std::fclose(file);
      return Status::InvalidArgument("truncated adjacency: " + path);
    }
    for (NodeId v : neighbors) {
      if (v >= num_nodes) {
        std::fclose(file);
        return Status::OutOfRange("edge target out of range: " + path);
      }
      builder.AddEdge(u, v);
    }
  }
  std::fclose(file);
  // Per-node reads can all succeed on a file truncated (or corrupted) at a
  // node-record boundary; the header's edge count is the cross-check.
  if (degree_total != num_edges) {
    return Status::InvalidArgument(
        "edge count mismatch (header says " + std::to_string(num_edges) +
        ", adjacency has " + std::to_string(degree_total) + "): " + path);
  }
  return std::move(builder).Build();
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open for write: " + path);
  }
  std::fprintf(file, "%s %u nodes, %llu edges\n", kEdgeListHeader,
               graph.num_nodes(),
               static_cast<unsigned long long>(graph.num_edges()));
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      std::fprintf(file, "%u\t%u\n", u, v);
    }
  }
  std::fclose(file);
  return Status::Ok();
}

StatusOr<Graph> LoadGraphAuto(const std::string& path, bool symmetrize) {
  if (HasSuffix(path, ".rsg")) return LoadSnapshot(path);
  if (HasSuffix(path, ".bin")) return LoadBinary(path);
  return LoadEdgeList(path, symmetrize);
}

Status SaveGraphAuto(const Graph& graph, const std::string& path) {
  if (HasSuffix(path, ".rsg")) return SaveSnapshot(graph, path);
  if (HasSuffix(path, ".bin")) return SaveBinary(graph, path);
  return SaveEdgeList(graph, path);
}

}  // namespace resacc

#include "resacc/graph/graph_io.h"

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "resacc/graph/graph_builder.h"

namespace resacc {

StatusOr<Graph> LoadEdgeList(const std::string& path, bool symmetrize) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::NotFound("cannot open edge list: " + path);
  }

  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId max_id = 0;
  char line[256];
  std::size_t line_number = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    ++line_number;
    if (line[0] == '#' || line[0] == '\n' || line[0] == '\0') continue;
    unsigned long long from = 0;
    unsigned long long to = 0;
    if (std::sscanf(line, "%llu %llu", &from, &to) != 2) {
      std::fclose(file);
      return Status::InvalidArgument(path + ": malformed line " +
                                     std::to_string(line_number));
    }
    if (from >= kInvalidNode || to >= kInvalidNode) {
      std::fclose(file);
      return Status::OutOfRange(path + ": node id too large at line " +
                                std::to_string(line_number));
    }
    const NodeId u = static_cast<NodeId>(from);
    const NodeId v = static_cast<NodeId>(to);
    edges.emplace_back(u, v);
    max_id = std::max(max_id, std::max(u, v));
  }
  std::fclose(file);

  const NodeId num_nodes = edges.empty() ? 0 : max_id + 1;
  GraphBuilder builder(num_nodes, symmetrize);
  builder.Reserve(edges.size());
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return std::move(builder).Build();
}

namespace {

constexpr std::uint64_t kBinaryMagic = 0x52455341'43433031ULL;  // "RESACC01"

bool WriteAll(std::FILE* file, const void* data, std::size_t bytes) {
  return std::fwrite(data, 1, bytes, file) == bytes;
}

bool ReadAll(std::FILE* file, void* data, std::size_t bytes) {
  return std::fread(data, 1, bytes, file) == bytes;
}

}  // namespace

Status SaveBinary(const Graph& graph, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open for write: " + path);
  }
  const std::uint64_t magic = kBinaryMagic;
  const std::uint64_t num_nodes = graph.num_nodes();
  const std::uint64_t num_edges = graph.num_edges();
  bool ok = WriteAll(file, &magic, sizeof(magic)) &&
            WriteAll(file, &num_nodes, sizeof(num_nodes)) &&
            WriteAll(file, &num_edges, sizeof(num_edges));
  // Out-adjacency, node by node: degree-prefixed neighbour runs keep the
  // writer independent of Graph's internal layout.
  for (NodeId u = 0; ok && u < graph.num_nodes(); ++u) {
    const auto neighbors = graph.OutNeighbors(u);
    const std::uint32_t degree = static_cast<std::uint32_t>(neighbors.size());
    ok = WriteAll(file, &degree, sizeof(degree)) &&
         (neighbors.empty() ||
          WriteAll(file, neighbors.data(), neighbors.size() * sizeof(NodeId)));
  }
  std::fclose(file);
  if (!ok) return Status::Internal("short write: " + path);
  return Status::Ok();
}

StatusOr<Graph> LoadBinary(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open binary graph: " + path);
  }
  std::uint64_t magic = 0;
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  if (!ReadAll(file, &magic, sizeof(magic)) ||
      !ReadAll(file, &num_nodes, sizeof(num_nodes)) ||
      !ReadAll(file, &num_edges, sizeof(num_edges))) {
    std::fclose(file);
    return Status::InvalidArgument("truncated header: " + path);
  }
  if (magic != kBinaryMagic) {
    std::fclose(file);
    return Status::InvalidArgument("bad magic (not a resacc graph): " + path);
  }
  if (num_nodes >= kInvalidNode) {
    std::fclose(file);
    return Status::OutOfRange("node count too large: " + path);
  }

  GraphBuilder builder(static_cast<NodeId>(num_nodes));
  builder.Reserve(num_edges);
  std::vector<NodeId> neighbors;
  for (NodeId u = 0; u < num_nodes; ++u) {
    std::uint32_t degree = 0;
    if (!ReadAll(file, &degree, sizeof(degree)) || degree > num_edges) {
      std::fclose(file);
      return Status::InvalidArgument("truncated adjacency: " + path);
    }
    neighbors.resize(degree);
    if (degree > 0 &&
        !ReadAll(file, neighbors.data(), degree * sizeof(NodeId))) {
      std::fclose(file);
      return Status::InvalidArgument("truncated adjacency: " + path);
    }
    for (NodeId v : neighbors) {
      if (v >= num_nodes) {
        std::fclose(file);
        return Status::OutOfRange("edge target out of range: " + path);
      }
      builder.AddEdge(u, v);
    }
  }
  std::fclose(file);
  return std::move(builder).Build();
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open for write: " + path);
  }
  std::fprintf(file, "# resacc edge list: %u nodes, %llu edges\n",
               graph.num_nodes(),
               static_cast<unsigned long long>(graph.num_edges()));
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      std::fprintf(file, "%u\t%u\n", u, v);
    }
  }
  std::fclose(file);
  return Status::Ok();
}

}  // namespace resacc
